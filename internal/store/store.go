// Package store maintains a broker's subscription state under a
// coverage policy: the active (uncovered) set that drives routing and
// matching, and the passive (covered) set organized as a cover forest.
// It implements the paper's Algorithm 5 — match publications against
// the active set first and descend into covered subscriptions only on
// a match — together with the Section 4.4 multi-level optimization and
// the Section 5 cancellation rule (promote covered subscriptions when
// their coverer unsubscribes).
package store

import (
	"cmp"
	"errors"
	"fmt"
	"slices"
	"sort"

	"probsum/internal/core"
	"probsum/internal/pairwise"
	"probsum/internal/subscription"
)

// ID identifies a subscription within a store.
type ID int64

// Policy selects how arriving subscriptions are reduced.
type Policy int

// Coverage policies.
const (
	// PolicyNone keeps every subscription active (flooding baseline).
	PolicyNone Policy = iota + 1
	// PolicyPairwise marks a subscription covered only when a single
	// active subscription covers it (classical deterministic systems).
	PolicyPairwise
	// PolicyGroup marks a subscription covered when the probabilistic
	// checker decides the active set jointly covers it (the paper's
	// contribution).
	PolicyGroup
)

// String returns the policy name.
func (p Policy) String() string {
	switch p {
	case PolicyNone:
		return "none"
	case PolicyPairwise:
		return "pairwise"
	case PolicyGroup:
		return "group"
	default:
		return "unknown"
	}
}

// Status describes where a subscription currently lives.
type Status int

// Status values.
const (
	StatusActive Status = iota + 1
	StatusCovered
)

// String returns the status name.
func (s Status) String() string {
	if s == StatusActive {
		return "active"
	}
	return "covered"
}

// ErrDuplicateID is returned when subscribing with an ID already in use.
var ErrDuplicateID = errors.New("store: duplicate subscription id")

// node is one subscription in the cover forest.
type node struct {
	id       ID
	sub      subscription.Subscription
	status   Status
	coverers map[ID]struct{} // nodes whose union covers this one
	children map[ID]struct{} // nodes listing this one as coverer
}

// SubscribeResult reports what Subscribe did.
type SubscribeResult struct {
	// Status is where the new subscription was placed.
	Status Status
	// Coverers lists the subscriptions that jointly cover it (empty
	// when active). For pairwise coverage it has exactly one element.
	Coverers []ID
	// Demoted lists previously active subscriptions moved to the
	// covered set because the new subscription covers them (only with
	// reverse pruning enabled).
	Demoted []ID
	// Checker carries the probabilistic decision detail under
	// PolicyGroup; zero otherwise. Its CoveringRow and ReducedSet
	// indices refer to positions in the ID-ordered active set at
	// decision time (as returned by ActiveIDs), regardless of any
	// internal candidate pruning.
	Checker core.Result
}

// UnsubscribeResult reports what Unsubscribe did.
type UnsubscribeResult struct {
	// Existed reports whether the ID was present.
	Existed bool
	// WasActive reports whether the removed subscription was active.
	WasActive bool
	// Promoted lists covered subscriptions promoted to active because
	// their cover no longer holds without the removed subscription.
	Promoted []ID
}

// Option configures a Store.
type Option func(*Store)

// WithChecker supplies the probabilistic checker used by PolicyGroup
// (and by promotion re-checks). Ignored by other policies.
func WithChecker(c *core.Checker) Option {
	return func(st *Store) { st.checker = c }
}

// WithReversePrune enables demoting existing active subscriptions that
// a newly arriving subscription covers pairwise, building the
// multi-level cover forest of Section 4.4.
func WithReversePrune(enabled bool) Option {
	return func(st *Store) { st.reversePrune = enabled }
}

// WithCandidatePruning toggles the per-attribute candidate index that
// restricts coverage checks to active subscriptions intersecting the
// arriving one (default on). Disabling it hands the full active set to
// the coverage decision, as the pre-index implementation did; the
// switch exists for the DESIGN.md ablation and for equivalence tests.
func WithCandidatePruning(enabled bool) Option {
	return func(st *Store) { st.pruning = enabled }
}

// Store is a broker-local subscription table. It is not safe for
// concurrent use; brokers own one store each and serialize access.
//
// The active set is maintained incrementally: activeIDs/activeSubs are
// kept sorted by ID across every status change, and the per-attribute
// candidate index (see index.go) stays in lockstep, so Subscribe never
// rescans or re-sorts the whole set.
type Store struct {
	policy       Policy
	checker      *core.Checker
	reversePrune bool
	pruning      bool
	nodes        map[ID]*node
	activeIDs    []ID // sorted; parallel cache of active set
	activeSubs   []subscription.Subscription
	idx          attrIndex
	mismatched   int // active subscriptions disagreeing with idx.m; pruning off while > 0

	// Reusable hot-path buffers.
	candNodes []*node
	candIDs   []ID
	candSubs  []subscription.Subscription
	checkRes  core.Result
}

// New returns an empty store with the given policy. PolicyGroup
// requires a checker (a default one is created when none is supplied).
// The checker becomes store-owned: it carries a random stream and
// reusable scratch, so it must not be shared with another store or
// goroutine.
func New(policy Policy, opts ...Option) (*Store, error) {
	if policy < PolicyNone || policy > PolicyGroup {
		return nil, fmt.Errorf("store: invalid policy %d", policy)
	}
	st := &Store{policy: policy, nodes: make(map[ID]*node), pruning: true}
	for _, opt := range opts {
		opt(st)
	}
	if policy == PolicyGroup && st.checker == nil {
		c, err := core.NewChecker()
		if err != nil {
			return nil, err
		}
		st.checker = c
	}
	return st, nil
}

// Policy returns the store's coverage policy.
func (st *Store) Policy() Policy { return st.policy }

// activate inserts n into the sorted active caches and the candidate
// index. Nodes whose attribute count disagrees with the index are
// counted instead of indexed; pruning stays off while any are active.
func (st *Store) activate(n *node) {
	pos, _ := slices.BinarySearch(st.activeIDs, n.id)
	st.activeIDs = slices.Insert(st.activeIDs, pos, n.id)
	st.activeSubs = slices.Insert(st.activeSubs, pos, n.sub)
	st.idx.add(n)
	if st.idx.m != 0 && n.sub.Len() != st.idx.m {
		st.mismatched++
	}
}

// deactivate removes n from the sorted active caches and the index.
// Draining the active set resets the index entirely, so a store
// repopulated under a different attribute count regains pruning.
func (st *Store) deactivate(n *node) {
	pos, ok := slices.BinarySearch(st.activeIDs, n.id)
	if !ok {
		return
	}
	st.activeIDs = slices.Delete(st.activeIDs, pos, pos+1)
	st.activeSubs = slices.Delete(st.activeSubs, pos, pos+1)
	st.idx.remove(n)
	if st.idx.m != 0 && n.sub.Len() != st.idx.m {
		st.mismatched--
	}
	if len(st.activeIDs) == 0 {
		st.idx = attrIndex{}
		st.mismatched = 0
	}
}

// candidates returns the IDs and subscriptions the coverage decision
// for s must consider: with pruning, the active rows whose boxes
// intersect s (sorted by ID); otherwise — or when the index reports
// that pruning cannot shed at least half the set — the full active
// set. The returned slices are store-owned scratch, valid until the
// next call.
func (st *Store) candidates(s subscription.Subscription) ([]ID, []subscription.Subscription) {
	if !st.pruning || st.mismatched > 0 || len(st.activeIDs) == 0 || s.Len() != st.idx.m {
		return st.activeIDs, st.activeSubs
	}
	cand, ok := st.idx.overlapCandidates(s, st.candNodes[:0])
	st.candNodes = cand
	if !ok {
		return st.activeIDs, st.activeSubs
	}
	// Only the surviving candidates get sorted — the 1-D shortlist was
	// already filtered down to true intersections by the index.
	slices.SortFunc(cand, func(a, b *node) int { return cmp.Compare(a.id, b.id) })
	ids := st.candIDs[:0]
	subs := st.candSubs[:0]
	for _, n := range cand {
		ids = append(ids, n.id)
		subs = append(subs, n.sub)
	}
	st.candIDs = ids
	st.candSubs = subs
	return ids, subs
}

// ActiveIDs returns the sorted IDs of the active set.
func (st *Store) ActiveIDs() []ID {
	out := make([]ID, len(st.activeIDs))
	copy(out, st.activeIDs)
	return out
}

// ActiveSubscriptions returns the active subscriptions ordered by ID.
func (st *Store) ActiveSubscriptions() []subscription.Subscription {
	out := make([]subscription.Subscription, len(st.activeSubs))
	copy(out, st.activeSubs)
	return out
}

// ActiveLen returns the active set size.
func (st *Store) ActiveLen() int { return len(st.activeIDs) }

// CoveredLen returns the covered set size.
func (st *Store) CoveredLen() int { return len(st.nodes) - st.ActiveLen() }

// Len returns the total number of stored subscriptions.
func (st *Store) Len() int { return len(st.nodes) }

// Get returns the subscription and status for id.
func (st *Store) Get(id ID) (subscription.Subscription, Status, bool) {
	n, ok := st.nodes[id]
	if !ok {
		return subscription.Subscription{}, 0, false
	}
	return n.sub, n.status, true
}

// decideCoverage classifies s against the current active set. With
// pruning enabled only the candidate rows intersecting s are handed to
// the pairwise scan or the probabilistic checker — sound, because a
// subscription disjoint from s contributes nothing to any cover of s.
func (st *Store) decideCoverage(s subscription.Subscription) (Status, []ID, core.Result, error) {
	switch st.policy {
	case PolicyNone:
		return StatusActive, nil, core.Result{}, nil
	case PolicyPairwise:
		ids, subs := st.candidates(s)
		if i := pairwise.CoveredBySingle(s, subs); i >= 0 {
			return StatusCovered, []ID{ids[i]}, core.Result{}, nil
		}
		return StatusActive, nil, core.Result{}, nil
	default: // PolicyGroup
		ids, subs := st.candidates(s)
		if err := st.checker.CoveredInto(&st.checkRes, s, subs); err != nil {
			return 0, nil, core.Result{}, err
		}
		// Copy the result: checkRes and its ReducedSet are reused by
		// the next check, while SubscribeResult.Checker escapes to the
		// caller.
		res := st.checkRes
		res.ReducedSet = slices.Clone(res.ReducedSet)
		coverers := st.resolveCoverers(ids, &res)
		// Remap CoveringRow/ReducedSet from candidate positions to
		// positions in the ID-ordered active set, the documented frame
		// of reference for SubscribeResult.Checker (the candidate
		// shortlist is internal scratch a caller can never see).
		if res.CoveringRow >= 0 {
			res.CoveringRow = st.activePos(ids[res.CoveringRow])
		}
		for j, idx := range res.ReducedSet {
			res.ReducedSet[j] = st.activePos(ids[idx])
		}
		if !res.Decision.IsCovered() {
			return StatusActive, nil, res, nil
		}
		return StatusCovered, coverers, res, nil
	}
}

// resolveCoverers maps a group-coverage result's candidate indices to
// subscription IDs.
func (st *Store) resolveCoverers(ids []ID, res *core.Result) []ID {
	if !res.Decision.IsCovered() {
		return nil
	}
	if res.Reason == core.ReasonPairwiseCover {
		return []ID{ids[res.CoveringRow]}
	}
	coverers := make([]ID, 0, len(res.ReducedSet))
	for _, idx := range res.ReducedSet {
		coverers = append(coverers, ids[idx])
	}
	if len(coverers) == 0 {
		// MCS was disabled or returned no detail; fall back to the
		// whole candidate set as the covering group.
		coverers = append(coverers, ids...)
	}
	return coverers
}

// activePos returns id's position in the ID-ordered active set.
func (st *Store) activePos(id ID) int {
	pos, _ := slices.BinarySearch(st.activeIDs, id)
	return pos
}

// Subscribe inserts a subscription under a fresh ID and classifies it.
func (st *Store) Subscribe(id ID, s subscription.Subscription) (SubscribeResult, error) {
	res, ok, err := st.SubscribeCovered(id, s)
	if err != nil || ok {
		return res, err
	}
	// SubscribeCovered already validated id and s.
	ares := st.activateNew(id, s)
	// Keep the decision detail from the coverage check the active
	// placement was based on.
	ares.Checker = res.Checker
	return ares, nil
}

// SubscribeCovered decides coverage for s against the current active
// set and inserts it ONLY when covered, reporting ok=true. When the
// set does not cover s nothing is inserted; the returned result still
// carries the checker detail so the caller can reuse the decision.
// Together with activateNew it is the building block the sharded
// store uses to consult several shards before activating anywhere;
// Subscribe is exactly SubscribeCovered followed by activateNew.
func (st *Store) SubscribeCovered(id ID, s subscription.Subscription) (SubscribeResult, bool, error) {
	if _, dup := st.nodes[id]; dup {
		return SubscribeResult{}, false, fmt.Errorf("%w: %d", ErrDuplicateID, id)
	}
	if !s.IsSatisfiable() {
		return SubscribeResult{}, false, core.ErrUnsatisfiable
	}
	status, coverers, checkRes, err := st.decideCoverage(s)
	if err != nil {
		return SubscribeResult{}, false, err
	}
	if status != StatusCovered {
		return SubscribeResult{Status: StatusActive, Checker: checkRes}, false, nil
	}
	st.insert(id, s, StatusCovered, coverers)
	return SubscribeResult{Status: StatusCovered, Coverers: coverers, Checker: checkRes}, true, nil
}

// activateNew inserts s directly into the active set, skipping the
// coverage decision — the caller has already decided (for example the
// sharded store, after finding no shard whose active set covers s) and
// guarantees id is fresh and s satisfiable. Reverse pruning, when
// enabled, still demotes actives s covers.
func (st *Store) activateNew(id ID, s subscription.Subscription) SubscribeResult {
	n := st.insert(id, s, StatusActive, nil)
	res := SubscribeResult{Status: StatusActive}
	if st.reversePrune {
		res.Demoted = st.demoteCoveredBy(n)
	}
	return res
}

// insert links a decided subscription into the forest and, when
// active, the sorted caches and candidate index.
func (st *Store) insert(id ID, s subscription.Subscription, status Status, coverers []ID) *node {
	n := &node{
		id:       id,
		sub:      s,
		status:   status,
		coverers: make(map[ID]struct{}, len(coverers)),
		children: make(map[ID]struct{}),
	}
	for _, c := range coverers {
		n.coverers[c] = struct{}{}
		st.nodes[c].children[id] = struct{}{}
	}
	st.nodes[id] = n
	if status == StatusActive {
		st.activate(n)
	}
	return n
}

// removeActiveLeaf removes an active subscription that has no covered
// dependents, without running the promotion cascade (nothing depends
// on it). It reports whether the removal happened; the sharded store
// uses it to retire an active original after migrating it into
// another shard as covered.
func (st *Store) removeActiveLeaf(id ID) bool {
	n, ok := st.nodes[id]
	if !ok || n.status != StatusActive || len(n.children) > 0 {
		return false
	}
	delete(st.nodes, id)
	st.deactivate(n)
	return true
}

// demoteCoveredBy moves active subscriptions covered by the new node
// into the covered set beneath it, preserving their own children
// (multi-level forest). A subscription covered by n.sub is contained
// in it, hence intersects it, so the candidate index narrows the scan.
func (st *Store) demoteCoveredBy(n *node) []ID {
	var demoted []ID
	ids, subs := st.candidates(n.sub)
	for i, id := range ids {
		if id == n.id {
			continue
		}
		if n.sub.Covers(subs[i]) {
			old := st.nodes[id]
			old.status = StatusCovered
			old.coverers = map[ID]struct{}{n.id: {}}
			n.children[id] = struct{}{}
			demoted = append(demoted, id)
		}
	}
	// Deactivate after the scan: ids may alias the live active caches.
	for _, id := range demoted {
		st.deactivate(st.nodes[id])
	}
	return demoted
}

// Unsubscribe removes id. When an active subscription leaves, covered
// subscriptions that depended on it are re-checked against the
// remaining active set and promoted when no longer covered, as Section
// 5 of the paper prescribes.
func (st *Store) Unsubscribe(id ID) (UnsubscribeResult, error) {
	n, ok := st.nodes[id]
	if !ok {
		return UnsubscribeResult{}, nil
	}
	res := UnsubscribeResult{Existed: true, WasActive: n.status == StatusActive}

	// Unlink from coverers.
	for c := range n.coverers {
		delete(st.nodes[c].children, id)
	}
	delete(st.nodes, id)
	if res.WasActive {
		st.deactivate(n)
	}

	// Children losing a coverer must be re-validated; process in ID
	// order for determinism. Promotions can cascade: a promoted child
	// re-enters the active set and may itself keep others covered, so
	// each child is checked against the then-current active set.
	children := make([]ID, 0, len(n.children))
	for c := range n.children {
		children = append(children, c)
	}
	sort.Slice(children, func(i, j int) bool { return children[i] < children[j] })

	for _, cid := range children {
		child := st.nodes[cid]
		delete(child.coverers, id)
		status, coverers, _, err := st.decideCoverage(child.sub)
		if err != nil {
			return res, err
		}
		// Detach from remaining coverers before rewiring.
		for c := range child.coverers {
			delete(st.nodes[c].children, cid)
		}
		child.coverers = make(map[ID]struct{}, len(coverers))
		if status == StatusCovered {
			for _, c := range coverers {
				child.coverers[c] = struct{}{}
				st.nodes[c].children[cid] = struct{}{}
			}
			child.status = StatusCovered
			continue
		}
		child.status = StatusActive
		st.activate(child)
		res.Promoted = append(res.Promoted, cid)
	}
	return res, nil
}

// Match implements the multi-level optimization of Section 4.4: match
// the active set, then descend through the cover forest, testing a
// covered subscription only when one of its coverers (transitively)
// matched. Results are sorted by ID.
func (st *Store) Match(p subscription.Publication) []ID {
	var out []ID
	frontier := make([]ID, 0, 8)
	for i, sub := range st.activeSubs {
		if sub.Matches(p) {
			out = append(out, st.activeIDs[i])
			frontier = append(frontier, st.activeIDs[i])
		}
	}
	visited := make(map[ID]bool, len(frontier))
	for _, id := range frontier {
		visited[id] = true
	}
	for len(frontier) > 0 {
		id := frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]
		children := make([]ID, 0, len(st.nodes[id].children))
		for c := range st.nodes[id].children {
			children = append(children, c)
		}
		sort.Slice(children, func(i, j int) bool { return children[i] < children[j] })
		for _, cid := range children {
			if visited[cid] {
				continue
			}
			visited[cid] = true
			if st.nodes[cid].sub.Matches(p) {
				out = append(out, cid)
				frontier = append(frontier, cid)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// MatchTwoPhase is the literal Algorithm 5: match the active set; if
// any active subscription matched, additionally scan the entire
// covered set. It exists as the paper-faithful reference; Match is the
// optimized variant and returns identical results.
func (st *Store) MatchTwoPhase(p subscription.Publication) []ID {
	var out []ID
	matched := false
	for i, sub := range st.activeSubs {
		if sub.Matches(p) {
			out = append(out, st.activeIDs[i])
			matched = true
		}
	}
	if matched {
		for id, n := range st.nodes {
			if n.status == StatusCovered && n.sub.Matches(p) {
				out = append(out, id)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
