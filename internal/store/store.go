// Package store maintains a broker's subscription state under a
// coverage policy: the active (uncovered) set that drives routing and
// matching, and the passive (covered) set organized as a cover forest.
// It implements the paper's Algorithm 5 — match publications against
// the active set first and descend into covered subscriptions only on
// a match — together with the Section 4.4 multi-level optimization and
// the Section 5 cancellation rule (promote covered subscriptions when
// their coverer unsubscribes).
package store

import (
	"errors"
	"fmt"
	"sort"

	"probsum/internal/core"
	"probsum/internal/pairwise"
	"probsum/internal/subscription"
)

// ID identifies a subscription within a store.
type ID int64

// Policy selects how arriving subscriptions are reduced.
type Policy int

// Coverage policies.
const (
	// PolicyNone keeps every subscription active (flooding baseline).
	PolicyNone Policy = iota + 1
	// PolicyPairwise marks a subscription covered only when a single
	// active subscription covers it (classical deterministic systems).
	PolicyPairwise
	// PolicyGroup marks a subscription covered when the probabilistic
	// checker decides the active set jointly covers it (the paper's
	// contribution).
	PolicyGroup
)

// String returns the policy name.
func (p Policy) String() string {
	switch p {
	case PolicyNone:
		return "none"
	case PolicyPairwise:
		return "pairwise"
	case PolicyGroup:
		return "group"
	default:
		return "unknown"
	}
}

// Status describes where a subscription currently lives.
type Status int

// Status values.
const (
	StatusActive Status = iota + 1
	StatusCovered
)

// String returns the status name.
func (s Status) String() string {
	if s == StatusActive {
		return "active"
	}
	return "covered"
}

// ErrDuplicateID is returned when subscribing with an ID already in use.
var ErrDuplicateID = errors.New("store: duplicate subscription id")

// node is one subscription in the cover forest.
type node struct {
	id       ID
	sub      subscription.Subscription
	status   Status
	coverers map[ID]struct{} // nodes whose union covers this one
	children map[ID]struct{} // nodes listing this one as coverer
}

// SubscribeResult reports what Subscribe did.
type SubscribeResult struct {
	// Status is where the new subscription was placed.
	Status Status
	// Coverers lists the subscriptions that jointly cover it (empty
	// when active). For pairwise coverage it has exactly one element.
	Coverers []ID
	// Demoted lists previously active subscriptions moved to the
	// covered set because the new subscription covers them (only with
	// reverse pruning enabled).
	Demoted []ID
	// Checker carries the probabilistic decision detail under
	// PolicyGroup; zero otherwise.
	Checker core.Result
}

// UnsubscribeResult reports what Unsubscribe did.
type UnsubscribeResult struct {
	// Existed reports whether the ID was present.
	Existed bool
	// WasActive reports whether the removed subscription was active.
	WasActive bool
	// Promoted lists covered subscriptions promoted to active because
	// their cover no longer holds without the removed subscription.
	Promoted []ID
}

// Option configures a Store.
type Option func(*Store)

// WithChecker supplies the probabilistic checker used by PolicyGroup
// (and by promotion re-checks). Ignored by other policies.
func WithChecker(c *core.Checker) Option {
	return func(st *Store) { st.checker = c }
}

// WithReversePrune enables demoting existing active subscriptions that
// a newly arriving subscription covers pairwise, building the
// multi-level cover forest of Section 4.4.
func WithReversePrune(enabled bool) Option {
	return func(st *Store) { st.reversePrune = enabled }
}

// Store is a broker-local subscription table. It is not safe for
// concurrent use; brokers own one store each and serialize access.
type Store struct {
	policy       Policy
	checker      *core.Checker
	reversePrune bool
	nodes        map[ID]*node
	activeIDs    []ID // sorted; parallel cache of active set
	activeSubs   []subscription.Subscription
	activeDirty  bool
}

// New returns an empty store with the given policy. PolicyGroup
// requires a checker (a default one is created when none is supplied).
func New(policy Policy, opts ...Option) (*Store, error) {
	if policy < PolicyNone || policy > PolicyGroup {
		return nil, fmt.Errorf("store: invalid policy %d", policy)
	}
	st := &Store{policy: policy, nodes: make(map[ID]*node)}
	for _, opt := range opts {
		opt(st)
	}
	if policy == PolicyGroup && st.checker == nil {
		c, err := core.NewChecker()
		if err != nil {
			return nil, err
		}
		st.checker = c
	}
	return st, nil
}

// Policy returns the store's coverage policy.
func (st *Store) Policy() Policy { return st.policy }

// refreshActive rebuilds the sorted active-set caches when needed.
func (st *Store) refreshActive() {
	if !st.activeDirty && st.activeIDs != nil {
		return
	}
	st.activeIDs = st.activeIDs[:0]
	for id, n := range st.nodes {
		if n.status == StatusActive {
			st.activeIDs = append(st.activeIDs, id)
		}
	}
	sort.Slice(st.activeIDs, func(i, j int) bool { return st.activeIDs[i] < st.activeIDs[j] })
	st.activeSubs = st.activeSubs[:0]
	for _, id := range st.activeIDs {
		st.activeSubs = append(st.activeSubs, st.nodes[id].sub)
	}
	st.activeDirty = false
}

// ActiveIDs returns the sorted IDs of the active set.
func (st *Store) ActiveIDs() []ID {
	st.refreshActive()
	out := make([]ID, len(st.activeIDs))
	copy(out, st.activeIDs)
	return out
}

// ActiveSubscriptions returns the active subscriptions ordered by ID.
func (st *Store) ActiveSubscriptions() []subscription.Subscription {
	st.refreshActive()
	out := make([]subscription.Subscription, len(st.activeSubs))
	copy(out, st.activeSubs)
	return out
}

// ActiveLen returns the active set size.
func (st *Store) ActiveLen() int {
	st.refreshActive()
	return len(st.activeIDs)
}

// CoveredLen returns the covered set size.
func (st *Store) CoveredLen() int { return len(st.nodes) - st.ActiveLen() }

// Len returns the total number of stored subscriptions.
func (st *Store) Len() int { return len(st.nodes) }

// Get returns the subscription and status for id.
func (st *Store) Get(id ID) (subscription.Subscription, Status, bool) {
	n, ok := st.nodes[id]
	if !ok {
		return subscription.Subscription{}, 0, false
	}
	return n.sub, n.status, true
}

// decideCoverage classifies s against the current active set.
func (st *Store) decideCoverage(s subscription.Subscription) (Status, []ID, core.Result, error) {
	st.refreshActive()
	switch st.policy {
	case PolicyNone:
		return StatusActive, nil, core.Result{}, nil
	case PolicyPairwise:
		if i := pairwise.CoveredBySingle(s, st.activeSubs); i >= 0 {
			return StatusCovered, []ID{st.activeIDs[i]}, core.Result{}, nil
		}
		return StatusActive, nil, core.Result{}, nil
	default: // PolicyGroup
		res, err := st.checker.Covered(s, st.activeSubs)
		if err != nil {
			return 0, nil, core.Result{}, err
		}
		if !res.Decision.IsCovered() {
			return StatusActive, nil, res, nil
		}
		if res.Reason == core.ReasonPairwiseCover {
			return StatusCovered, []ID{st.activeIDs[res.CoveringRow]}, res, nil
		}
		coverers := make([]ID, 0, len(res.ReducedSet))
		for _, idx := range res.ReducedSet {
			coverers = append(coverers, st.activeIDs[idx])
		}
		if len(coverers) == 0 {
			// MCS was disabled or returned no detail; fall back to the
			// whole active set as the covering group.
			coverers = append(coverers, st.activeIDs...)
		}
		return StatusCovered, coverers, res, nil
	}
}

// Subscribe inserts a subscription under a fresh ID and classifies it.
func (st *Store) Subscribe(id ID, s subscription.Subscription) (SubscribeResult, error) {
	if _, dup := st.nodes[id]; dup {
		return SubscribeResult{}, fmt.Errorf("%w: %d", ErrDuplicateID, id)
	}
	if !s.IsSatisfiable() {
		return SubscribeResult{}, core.ErrUnsatisfiable
	}
	status, coverers, checkRes, err := st.decideCoverage(s)
	if err != nil {
		return SubscribeResult{}, err
	}
	n := &node{
		id:       id,
		sub:      s,
		status:   status,
		coverers: make(map[ID]struct{}, len(coverers)),
		children: make(map[ID]struct{}),
	}
	for _, c := range coverers {
		n.coverers[c] = struct{}{}
		st.nodes[c].children[id] = struct{}{}
	}
	st.nodes[id] = n
	st.activeDirty = true

	res := SubscribeResult{Status: status, Coverers: coverers, Checker: checkRes}
	if status == StatusActive && st.reversePrune {
		res.Demoted = st.demoteCoveredBy(n)
	}
	return res, nil
}

// demoteCoveredBy moves active subscriptions covered by the new node
// into the covered set beneath it, preserving their own children
// (multi-level forest).
func (st *Store) demoteCoveredBy(n *node) []ID {
	st.refreshActive()
	var demoted []ID
	for i, id := range st.activeIDs {
		if id == n.id {
			continue
		}
		if n.sub.Covers(st.activeSubs[i]) {
			old := st.nodes[id]
			old.status = StatusCovered
			old.coverers = map[ID]struct{}{n.id: {}}
			n.children[id] = struct{}{}
			demoted = append(demoted, id)
		}
	}
	if demoted != nil {
		st.activeDirty = true
	}
	return demoted
}

// Unsubscribe removes id. When an active subscription leaves, covered
// subscriptions that depended on it are re-checked against the
// remaining active set and promoted when no longer covered, as Section
// 5 of the paper prescribes.
func (st *Store) Unsubscribe(id ID) (UnsubscribeResult, error) {
	n, ok := st.nodes[id]
	if !ok {
		return UnsubscribeResult{}, nil
	}
	res := UnsubscribeResult{Existed: true, WasActive: n.status == StatusActive}

	// Unlink from coverers.
	for c := range n.coverers {
		delete(st.nodes[c].children, id)
	}
	delete(st.nodes, id)
	st.activeDirty = true

	// Children losing a coverer must be re-validated; process in ID
	// order for determinism. Promotions can cascade: a promoted child
	// re-enters the active set and may itself keep others covered, so
	// each child is checked against the then-current active set.
	children := make([]ID, 0, len(n.children))
	for c := range n.children {
		children = append(children, c)
	}
	sort.Slice(children, func(i, j int) bool { return children[i] < children[j] })

	for _, cid := range children {
		child := st.nodes[cid]
		delete(child.coverers, id)
		status, coverers, _, err := st.decideCoverage(child.sub)
		if err != nil {
			return res, err
		}
		// Detach from remaining coverers before rewiring.
		for c := range child.coverers {
			delete(st.nodes[c].children, cid)
		}
		child.coverers = make(map[ID]struct{}, len(coverers))
		if status == StatusCovered {
			for _, c := range coverers {
				child.coverers[c] = struct{}{}
				st.nodes[c].children[cid] = struct{}{}
			}
			child.status = StatusCovered
			continue
		}
		child.status = StatusActive
		st.activeDirty = true
		res.Promoted = append(res.Promoted, cid)
	}
	return res, nil
}

// Match implements the multi-level optimization of Section 4.4: match
// the active set, then descend through the cover forest, testing a
// covered subscription only when one of its coverers (transitively)
// matched. Results are sorted by ID.
func (st *Store) Match(p subscription.Publication) []ID {
	st.refreshActive()
	var out []ID
	frontier := make([]ID, 0, 8)
	for i, sub := range st.activeSubs {
		if sub.Matches(p) {
			out = append(out, st.activeIDs[i])
			frontier = append(frontier, st.activeIDs[i])
		}
	}
	visited := make(map[ID]bool, len(frontier))
	for _, id := range frontier {
		visited[id] = true
	}
	for len(frontier) > 0 {
		id := frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]
		children := make([]ID, 0, len(st.nodes[id].children))
		for c := range st.nodes[id].children {
			children = append(children, c)
		}
		sort.Slice(children, func(i, j int) bool { return children[i] < children[j] })
		for _, cid := range children {
			if visited[cid] {
				continue
			}
			visited[cid] = true
			if st.nodes[cid].sub.Matches(p) {
				out = append(out, cid)
				frontier = append(frontier, cid)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// MatchTwoPhase is the literal Algorithm 5: match the active set; if
// any active subscription matched, additionally scan the entire
// covered set. It exists as the paper-faithful reference; Match is the
// optimized variant and returns identical results.
func (st *Store) MatchTwoPhase(p subscription.Publication) []ID {
	st.refreshActive()
	var out []ID
	matched := false
	for i, sub := range st.activeSubs {
		if sub.Matches(p) {
			out = append(out, st.activeIDs[i])
			matched = true
		}
	}
	if matched {
		for id, n := range st.nodes {
			if n.status == StatusCovered && n.sub.Matches(p) {
				out = append(out, id)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
