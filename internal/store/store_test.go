package store

import (
	"errors"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"probsum/internal/core"
	"probsum/internal/interval"
	"probsum/internal/subscription"
)

func box(lo1, hi1, lo2, hi2 int64) subscription.Subscription {
	return subscription.New(interval.New(lo1, hi1), interval.New(lo2, hi2))
}

func groupStore(t *testing.T) *Store {
	t.Helper()
	checker, err := core.NewChecker(core.WithSeed(42, 43), core.WithErrorProbability(1e-9))
	if err != nil {
		t.Fatal(err)
	}
	st, err := New(PolicyGroup, WithChecker(checker))
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestPolicyNoneKeepsEverything(t *testing.T) {
	st, err := New(PolicyNone)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 5; i++ {
		res, err := st.Subscribe(ID(i), box(0, 10, 0, 10))
		if err != nil {
			t.Fatal(err)
		}
		if res.Status != StatusActive {
			t.Fatalf("sub %d: status %v", i, res.Status)
		}
	}
	if st.ActiveLen() != 5 || st.CoveredLen() != 0 {
		t.Errorf("active=%d covered=%d", st.ActiveLen(), st.CoveredLen())
	}
}

func TestPolicyPairwise(t *testing.T) {
	st, err := New(PolicyPairwise)
	if err != nil {
		t.Fatal(err)
	}
	if res, _ := st.Subscribe(1, box(0, 10, 0, 10)); res.Status != StatusActive {
		t.Fatal("first subscription must be active")
	}
	res, err := st.Subscribe(2, box(2, 8, 2, 8))
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusCovered || len(res.Coverers) != 1 || res.Coverers[0] != 1 {
		t.Errorf("covered result = %+v", res)
	}
	// Union-covered but not single-covered subscription stays active
	// under the pairwise policy.
	if res, _ := st.Subscribe(3, box(5, 20, 0, 10)); res.Status != StatusActive {
		t.Error("partially overlapping subscription must stay active")
	}
	if res, _ := st.Subscribe(4, box(1, 15, 1, 9)); res.Status != StatusActive {
		t.Error("union-covered subscription must stay active under pairwise")
	}
}

func TestPolicyGroupDetectsUnionCover(t *testing.T) {
	st := groupStore(t)
	// The paper's Table 3 configuration.
	if res, _ := st.Subscribe(1, box(820, 850, 1001, 1007)); res.Status != StatusActive {
		t.Fatal("s1 must be active")
	}
	if res, _ := st.Subscribe(2, box(840, 880, 1002, 1009)); res.Status != StatusActive {
		t.Fatal("s2 must be active")
	}
	res, err := st.Subscribe(3, box(830, 870, 1003, 1006))
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusCovered {
		t.Fatalf("s must be group-covered, got %v (checker: %+v)", res.Status, res.Checker)
	}
	if len(res.Coverers) == 0 {
		t.Error("group cover must record coverers")
	}
	if st.ActiveLen() != 2 || st.CoveredLen() != 1 {
		t.Errorf("active=%d covered=%d", st.ActiveLen(), st.CoveredLen())
	}
}

func TestSubscribeErrors(t *testing.T) {
	st, err := New(PolicyPairwise)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Subscribe(1, box(0, 10, 0, 10)); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Subscribe(1, box(0, 5, 0, 5)); !errors.Is(err, ErrDuplicateID) {
		t.Errorf("duplicate id error = %v", err)
	}
	empty := subscription.New(interval.Empty(), interval.New(0, 1))
	if _, err := st.Subscribe(2, empty); !errors.Is(err, core.ErrUnsatisfiable) {
		t.Errorf("unsatisfiable error = %v", err)
	}
	if _, err := New(Policy(0)); err == nil {
		t.Error("invalid policy accepted")
	}
}

func TestUnsubscribePromotesCovered(t *testing.T) {
	st, err := New(PolicyPairwise)
	if err != nil {
		t.Fatal(err)
	}
	st.Subscribe(1, box(0, 10, 0, 10))
	res, _ := st.Subscribe(2, box(2, 8, 2, 8))
	if res.Status != StatusCovered {
		t.Fatal("setup: 2 must be covered by 1")
	}
	un, err := st.Unsubscribe(1)
	if err != nil {
		t.Fatal(err)
	}
	if !un.Existed || !un.WasActive {
		t.Fatalf("unsubscribe result = %+v", un)
	}
	if len(un.Promoted) != 1 || un.Promoted[0] != 2 {
		t.Fatalf("promoted = %v, want [2]", un.Promoted)
	}
	if _, status, ok := st.Get(2); !ok || status != StatusActive {
		t.Errorf("subscription 2 should now be active")
	}
}

func TestUnsubscribeKeepsCoveredWhenStillCovered(t *testing.T) {
	st, err := New(PolicyPairwise)
	if err != nil {
		t.Fatal(err)
	}
	st.Subscribe(1, box(0, 10, 0, 10))
	st.Subscribe(2, box(0, 12, 0, 9))          // overlaps 1 but is not covered by it
	res, _ := st.Subscribe(3, box(2, 8, 2, 8)) // covered by 1 (first hit)
	if res.Status != StatusCovered {
		t.Fatal("setup: 3 must be covered")
	}
	un, err := st.Unsubscribe(res.Coverers[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(un.Promoted) != 0 {
		t.Errorf("3 is still covered by the remaining subscription; promoted=%v", un.Promoted)
	}
	if _, status, _ := st.Get(3); status != StatusCovered {
		t.Error("3 must remain covered")
	}
}

func TestUnsubscribeUnknownID(t *testing.T) {
	st, _ := New(PolicyNone)
	res, err := st.Unsubscribe(99)
	if err != nil {
		t.Fatal(err)
	}
	if res.Existed {
		t.Error("unknown id reported as existing")
	}
}

func TestGroupUnsubscribePromotion(t *testing.T) {
	st := groupStore(t)
	st.Subscribe(1, box(820, 850, 1001, 1007))
	st.Subscribe(2, box(840, 880, 1002, 1009))
	res, _ := st.Subscribe(3, box(830, 870, 1003, 1006))
	if res.Status != StatusCovered {
		t.Fatal("setup: 3 must be group-covered")
	}
	// Removing either coverer breaks the union cover.
	un, err := st.Unsubscribe(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(un.Promoted) != 1 || un.Promoted[0] != 3 {
		t.Fatalf("promoted = %v, want [3]", un.Promoted)
	}
}

func TestReversePruneBuildsForest(t *testing.T) {
	st, err := New(PolicyPairwise, WithReversePrune(true))
	if err != nil {
		t.Fatal(err)
	}
	st.Subscribe(1, box(2, 4, 2, 4))
	st.Subscribe(2, box(6, 8, 6, 8))
	res, err := st.Subscribe(3, box(0, 10, 0, 10))
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusActive {
		t.Fatal("covering subscription must be active")
	}
	if len(res.Demoted) != 2 {
		t.Fatalf("demoted = %v, want both earlier subscriptions", res.Demoted)
	}
	if st.ActiveLen() != 1 || st.CoveredLen() != 2 {
		t.Errorf("active=%d covered=%d", st.ActiveLen(), st.CoveredLen())
	}
	// Unsubscribing the coverer promotes both.
	un, err := st.Unsubscribe(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(un.Promoted) != 2 {
		t.Errorf("promoted = %v, want 2 entries", un.Promoted)
	}
}

func TestMatchTwoPhaseSemantics(t *testing.T) {
	st, err := New(PolicyPairwise)
	if err != nil {
		t.Fatal(err)
	}
	st.Subscribe(1, box(0, 10, 0, 10))
	st.Subscribe(2, box(2, 8, 2, 8)) // covered by 1

	// Publication inside both: two-phase finds both.
	got := st.MatchTwoPhase(subscription.NewPublication(5, 5))
	if len(got) != 2 {
		t.Errorf("MatchTwoPhase = %v, want both ids", got)
	}
	// Publication inside 1 only.
	got = st.MatchTwoPhase(subscription.NewPublication(9, 9))
	if len(got) != 1 || got[0] != 1 {
		t.Errorf("MatchTwoPhase = %v, want [1]", got)
	}
	// Publication outside everything: covered set must not be scanned
	// (observable as empty result).
	got = st.MatchTwoPhase(subscription.NewPublication(20, 20))
	if len(got) != 0 {
		t.Errorf("MatchTwoPhase = %v, want empty", got)
	}
}

func TestMatchEqualsTwoPhase(t *testing.T) {
	// The forest-based Match must agree with the literal Algorithm 5
	// whenever coverage decisions are exact (pairwise policy).
	cfg := &quick.Config{MaxCount: 120}
	f := func(seed1, seed2 uint64) bool {
		r := rand.New(rand.NewPCG(seed1, seed2))
		st, err := New(PolicyPairwise, WithReversePrune(r.IntN(2) == 0))
		if err != nil {
			return false
		}
		for i := int64(1); i <= 25; i++ {
			lo1, lo2 := r.Int64N(20), r.Int64N(20)
			sub := box(lo1, lo1+r.Int64N(20), lo2, lo2+r.Int64N(20))
			if _, err := st.Subscribe(ID(i), sub); err != nil {
				return false
			}
			// Occasionally remove a random earlier subscription.
			if r.IntN(5) == 0 {
				if _, err := st.Unsubscribe(ID(r.Int64N(i) + 1)); err != nil {
					return false
				}
			}
		}
		for trial := 0; trial < 30; trial++ {
			p := subscription.NewPublication(r.Int64N(45), r.Int64N(45))
			a, b := st.Match(p), st.MatchTwoPhase(p)
			if len(a) != len(b) {
				t.Logf("mismatch %v vs %v", a, b)
				return false
			}
			for i := range a {
				if a[i] != b[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestMatchFindsAllStoredMatches(t *testing.T) {
	// With exact coverage decisions, Match must equal brute force over
	// all stored subscriptions.
	cfg := &quick.Config{MaxCount: 120}
	f := func(seed1, seed2 uint64) bool {
		r := rand.New(rand.NewPCG(seed1, seed2))
		st, err := New(PolicyPairwise)
		if err != nil {
			return false
		}
		subs := make(map[ID]subscription.Subscription)
		for i := int64(1); i <= 20; i++ {
			lo1, lo2 := r.Int64N(20), r.Int64N(20)
			sub := box(lo1, lo1+r.Int64N(20), lo2, lo2+r.Int64N(20))
			if _, err := st.Subscribe(ID(i), sub); err != nil {
				return false
			}
			subs[ID(i)] = sub
		}
		for trial := 0; trial < 20; trial++ {
			p := subscription.NewPublication(r.Int64N(45), r.Int64N(45))
			got := st.Match(p)
			want := make(map[ID]bool)
			for id, sub := range subs {
				if sub.Matches(p) {
					want[id] = true
				}
			}
			if len(got) != len(want) {
				return false
			}
			for _, id := range got {
				if !want[id] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestPolicyAndStatusStrings(t *testing.T) {
	if PolicyNone.String() != "none" || PolicyPairwise.String() != "pairwise" ||
		PolicyGroup.String() != "group" || Policy(9).String() != "unknown" {
		t.Error("policy strings wrong")
	}
	if StatusActive.String() != "active" || StatusCovered.String() != "covered" {
		t.Error("status strings wrong")
	}
}

func TestActiveAccessors(t *testing.T) {
	st, _ := New(PolicyPairwise)
	st.Subscribe(5, box(0, 5, 0, 5))
	st.Subscribe(3, box(10, 15, 10, 15))
	ids := st.ActiveIDs()
	if len(ids) != 2 || ids[0] != 3 || ids[1] != 5 {
		t.Errorf("ActiveIDs = %v, want sorted [3 5]", ids)
	}
	subs := st.ActiveSubscriptions()
	if len(subs) != 2 || !subs[0].Equal(box(10, 15, 10, 15)) {
		t.Errorf("ActiveSubscriptions misordered: %v", subs)
	}
	if st.Len() != 2 {
		t.Errorf("Len = %d", st.Len())
	}
}
