package store

import (
	"math"
	"math/rand/v2"
	"slices"
	"sync"
	"testing"

	"probsum/internal/core"
	"probsum/internal/interval"
	"probsum/internal/subscription"
)

// randomBox returns a random box over [0,99]^m.
func randomBox(rng *rand.Rand, m int) subscription.Subscription {
	bounds := make([]interval.Interval, m)
	for a := range bounds {
		lo := rng.Int64N(80)
		bounds[a] = interval.New(lo, lo+1+rng.Int64N(100-lo-1))
	}
	return subscription.Subscription{Bounds: bounds}
}

func randomPoint(rng *rand.Rand, m int) subscription.Publication {
	vals := make([]int64, m)
	for a := range vals {
		vals[a] = rng.Int64N(100)
	}
	return subscription.Publication{Values: vals}
}

// compareStates fails when the sharded table and the oracle disagree
// on the active set, sizes, or Match results for sample points.
func compareStates(t *testing.T, step int, sh *Sharded, activeIDs []ID, total int, match func(subscription.Publication) []ID, rng *rand.Rand, m int) {
	t.Helper()
	if got := sh.ActiveIDs(); !slices.Equal(got, activeIDs) {
		t.Fatalf("step %d: active set mismatch:\n sharded %v\n oracle  %v", step, got, activeIDs)
	}
	if snap := sh.Snapshot(); snap.Len != total {
		t.Fatalf("step %d: Len = %d, oracle %d", step, snap.Len, total)
	}
	for probe := 0; probe < 4; probe++ {
		p := randomPoint(rng, m)
		if got, want := sh.Match(p), match(p); !slices.Equal(got, want) {
			t.Fatalf("step %d: Match(%v) = %v, oracle %v", step, p, got, want)
		}
	}
}

// TestShardedSingleShardParity pins WithShards(1) to exact Store
// behavior: the same interleaved per-item/batch/unsubscribe script on
// a 1-shard Sharded and a raw Store (checkers seeded identically) must
// agree on every result, the active set, and Match — decision for
// decision, under both policies.
func TestShardedSingleShardParity(t *testing.T) {
	const m = 3
	for _, policy := range []Policy{PolicyPairwise, PolicyGroup} {
		t.Run(policy.String(), func(t *testing.T) {
			copts := []core.Option{core.WithSeed(11, 12), core.WithMaxTrials(5000)}
			var oracleOpts []Option
			if policy == PolicyGroup {
				chk, err := core.NewChecker(copts...)
				if err != nil {
					t.Fatal(err)
				}
				oracleOpts = append(oracleOpts, WithChecker(chk))
			}
			oracle, err := New(policy, oracleOpts...)
			if err != nil {
				t.Fatal(err)
			}
			sh, err := NewSharded(policy, WithShards(1), WithShardCheckerOptions(copts...))
			if err != nil {
				t.Fatal(err)
			}

			rng := rand.New(rand.NewPCG(21, 22))
			probeRNG1 := rand.New(rand.NewPCG(31, 32))
			live := []ID{}
			next := ID(0)
			for step := 0; step < 300; step++ {
				switch op := rng.IntN(10); {
				case op < 5: // per-item subscribe
					next++
					s := randomBox(rng, m)
					want, werr := oracle.Subscribe(next, s)
					got, gerr := sh.Subscribe(next, s)
					if (werr == nil) != (gerr == nil) {
						t.Fatalf("step %d: subscribe err mismatch: %v vs %v", step, werr, gerr)
					}
					if werr == nil {
						if got.Status != want.Status || !slices.Equal(got.Coverers, want.Coverers) {
							t.Fatalf("step %d: subscribe result mismatch:\n sharded %+v\n oracle  %+v", step, got, want)
						}
						live = append(live, next)
					}
				case op < 7: // batch subscribe
					n := 2 + rng.IntN(6)
					ids := make([]ID, n)
					subs := make([]subscription.Subscription, n)
					for i := range ids {
						next++
						ids[i] = next
						subs[i] = randomBox(rng, m)
					}
					want, werr := oracle.SubscribeBatch(ids, subs)
					got, gerr := sh.SubscribeBatch(ids, subs)
					if (werr == nil) != (gerr == nil) {
						t.Fatalf("step %d: batch err mismatch: %v vs %v", step, werr, gerr)
					}
					for i := range want {
						if got[i].Status != want[i].Status || !slices.Equal(got[i].Coverers, want[i].Coverers) {
							t.Fatalf("step %d item %d: batch result mismatch:\n sharded %+v\n oracle  %+v", step, i, got[i], want[i])
						}
					}
					live = append(live, ids...)
				case len(live) > 0: // unsubscribe
					i := rng.IntN(len(live))
					id := live[i]
					live = slices.Delete(live, i, i+1)
					want, werr := oracle.Unsubscribe(id)
					got, gerr := sh.Unsubscribe(id)
					if (werr == nil) != (gerr == nil) {
						t.Fatalf("step %d: unsubscribe err mismatch: %v vs %v", step, werr, gerr)
					}
					if got.Existed != want.Existed || got.WasActive != want.WasActive ||
						!slices.Equal(got.Promoted, want.Promoted) {
						t.Fatalf("step %d: unsubscribe result mismatch:\n sharded %+v\n oracle  %+v", step, got, want)
					}
				}
				compareStates(t, step, sh, oracle.ActiveIDs(), oracle.Len(), oracle.Match, probeRNG1, m)
			}
			if sh.Metrics().Subscribes == 0 {
				t.Fatal("metrics recorded no subscribes")
			}
		})
	}
}

// TestShardedCrossShardPairwiseEquivalence runs the same churn script
// (with batches) on a 4-shard and a 1-shard pairwise table. Pairwise
// coverage is a single-coverer question, which the cross-shard
// admission pass answers over every shard, and promotion re-offers
// promoted subscriptions across shards — so the sharded table lands on
// the same active set and Match results as the sequential one.
func TestShardedCrossShardPairwiseEquivalence(t *testing.T) {
	const m = 3
	flat, err := NewSharded(PolicyPairwise, WithShards(1))
	if err != nil {
		t.Fatal(err)
	}
	sh, err := NewSharded(PolicyPairwise, WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(41, 42))
	probeRNG := rand.New(rand.NewPCG(51, 52))
	live := []ID{}
	next := ID(0)
	for step := 0; step < 400; step++ {
		switch op := rng.IntN(10); {
		case op < 6:
			n := 1 + rng.IntN(8)
			ids := make([]ID, n)
			subs := make([]subscription.Subscription, n)
			for i := range ids {
				next++
				ids[i] = next
				subs[i] = randomBox(rng, m)
			}
			if _, err := flat.SubscribeBatch(ids, subs); err != nil {
				t.Fatal(err)
			}
			if _, err := sh.SubscribeBatch(ids, subs); err != nil {
				t.Fatal(err)
			}
			live = append(live, ids...)
		case len(live) > 0:
			i := rng.IntN(len(live))
			id := live[i]
			live = slices.Delete(live, i, i+1)
			if _, err := flat.Unsubscribe(id); err != nil {
				t.Fatal(err)
			}
			if _, err := sh.Unsubscribe(id); err != nil {
				t.Fatal(err)
			}
		}
		compareStates(t, step, sh, flat.ActiveIDs(), flat.Snapshot().Len, flat.Match, probeRNG, m)
	}
	if sh.Metrics().CrossShardSuppressed == 0 {
		t.Fatal("script never exercised cross-shard coverage; weaken the boxes")
	}
}

// TestShardedGroupPerShardUnionSemantics pins the documented
// weakening: a union cover whose members are split across shards is
// not seen by a sharded table (the subscription stays active — the
// sound direction), while the 1-shard table suppresses it.
func TestShardedGroupPerShardUnionSemantics(t *testing.T) {
	// Two halves whose union covers s, neither alone.
	left := subscription.New(interval.New(0, 60), interval.New(0, 99))
	right := subscription.New(interval.New(50, 99), interval.New(0, 99))
	s := subscription.New(interval.New(20, 80), interval.New(10, 90))

	copts := []core.Option{core.WithSeed(61, 62), core.WithErrorProbability(1e-9)}
	build := func(shards int, router Router) *Sharded {
		t.Helper()
		opts := []ShardedOption{WithShards(shards), WithShardCheckerOptions(copts...)}
		if router != nil {
			opts = append(opts, WithShardRouter(router))
		}
		sh, err := NewSharded(PolicyGroup, opts...)
		if err != nil {
			t.Fatal(err)
		}
		return sh
	}
	// Route by ID parity so left (1) and right (2) land in different
	// shards and s (3) homes with left.
	router := func(id ID, _ subscription.Subscription) uint64 { return uint64(id) }

	flat := build(1, nil)
	split := build(2, router)
	for _, sh := range []*Sharded{flat, split} {
		if _, err := sh.Subscribe(1, left); err != nil {
			t.Fatal(err)
		}
		if _, err := sh.Subscribe(2, right); err != nil {
			t.Fatal(err)
		}
	}
	fres, err := flat.Subscribe(3, s)
	if err != nil {
		t.Fatal(err)
	}
	if fres.Status != StatusCovered {
		t.Fatalf("1-shard table should cover s by the union, got %v", fres.Status)
	}
	sres, err := split.Subscribe(3, s)
	if err != nil {
		t.Fatal(err)
	}
	if sres.Status != StatusActive {
		t.Fatalf("split table should keep s active (per-shard unions), got %v", sres.Status)
	}
}

// TestShardedPromotionMigration pins the cross-shard merge on
// cancellation: when the coverer of a covered subscription leaves, and
// an equivalent cover lives in ANOTHER shard, the promoted
// subscription migrates there (covered) instead of surfacing active.
func TestShardedPromotionMigration(t *testing.T) {
	wideA := subscription.New(interval.New(0, 90), interval.New(0, 90))
	wideB := subscription.New(interval.New(0, 95), interval.New(0, 95))
	small := subscription.New(interval.New(10, 20), interval.New(10, 20))

	router := func(id ID, _ subscription.Subscription) uint64 { return uint64(id) }
	sh, err := NewSharded(PolicyPairwise, WithShards(2), WithShardRouter(router))
	if err != nil {
		t.Fatal(err)
	}
	// wideA (id 2) -> shard 0; wideB (id 1) -> shard 1;
	// small (id 4) homes in shard 0 and is covered by wideA there.
	if _, err := sh.Subscribe(2, wideA); err != nil {
		t.Fatal(err)
	}
	if _, err := sh.Subscribe(1, wideB); err != nil {
		t.Fatal(err)
	}
	res, err := sh.Subscribe(4, small)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusCovered || !slices.Equal(res.Coverers, []ID{2}) {
		t.Fatalf("small should be covered by wideA, got %+v", res)
	}

	ures, err := sh.Unsubscribe(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(ures.Promoted) != 0 {
		t.Fatalf("promotion should have migrated, got Promoted=%v", ures.Promoted)
	}
	sub, status, ok := sh.Get(4)
	if !ok || status != StatusCovered {
		t.Fatalf("small should be covered in the other shard, got ok=%v status=%v", ok, status)
	}
	if !sub.Equal(small) {
		t.Fatalf("migrated subscription changed: %v", sub)
	}
	if got := sh.Metrics().Migrations; got != 1 {
		t.Fatalf("Migrations = %d, want 1", got)
	}
	// The migrated subscription must still be matchable and must
	// promote normally when its new coverer leaves too.
	p := subscription.NewPublication(15, 15)
	if got := sh.Match(p); !slices.Equal(got, []ID{1, 4}) {
		t.Fatalf("Match after migration = %v, want [1 4]", got)
	}
	ures, err = sh.Unsubscribe(1)
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(ures.Promoted, []ID{4}) {
		t.Fatalf("Promoted = %v, want [4]", ures.Promoted)
	}
	if got := sh.ActiveIDs(); !slices.Equal(got, []ID{4}) {
		t.Fatalf("ActiveIDs = %v, want [4]", got)
	}
}

// TestShardedConcurrentChurn hammers a 4-shard pairwise table from
// concurrent goroutines (run under -race) and then checks the final
// state against a brute-force oracle over the surviving subscriptions:
// Match must return exactly the stored subscriptions containing each
// probe point, and the size accounting must balance.
func TestShardedConcurrentChurn(t *testing.T) {
	const (
		m          = 3
		goroutines = 8
		perG       = 150
	)
	sh, err := NewSharded(PolicyPairwise, WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	type kept struct {
		id  ID
		sub subscription.Subscription
	}
	remaining := make([][]kept, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(uint64(g)+100, uint64(g)*7+1))
			base := ID(g * 1_000_000)
			var mine []kept
			for i := 0; i < perG; i++ {
				switch op := rng.IntN(10); {
				case op < 5:
					id := base + ID(i)
					s := randomBox(rng, m)
					if _, err := sh.Subscribe(id, s); err != nil {
						t.Errorf("g%d: subscribe: %v", g, err)
						return
					}
					mine = append(mine, kept{id, s})
				case op < 7:
					n := 2 + rng.IntN(4)
					ids := make([]ID, n)
					subs := make([]subscription.Subscription, n)
					for j := range ids {
						ids[j] = base + ID(i*10+j+perG*10)
						subs[j] = randomBox(rng, m)
					}
					if _, err := sh.SubscribeBatch(ids, subs); err != nil {
						t.Errorf("g%d: batch: %v", g, err)
						return
					}
					for j := range ids {
						mine = append(mine, kept{ids[j], subs[j]})
					}
				case op < 8 && len(mine) > 0:
					j := rng.IntN(len(mine))
					if _, err := sh.Unsubscribe(mine[j].id); err != nil {
						t.Errorf("g%d: unsubscribe: %v", g, err)
						return
					}
					mine = slices.Delete(mine, j, j+1)
				default:
					sh.Match(randomPoint(rng, m))
				}
			}
			remaining[g] = mine
		}(g)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	var all []kept
	for _, mine := range remaining {
		all = append(all, mine...)
	}
	snap := sh.Snapshot()
	if snap.Len != len(all) {
		t.Fatalf("Len = %d, want %d survivors", snap.Len, len(all))
	}
	if snap.Active+snap.Covered != snap.Len {
		t.Fatalf("active %d + covered %d != len %d", snap.Active, snap.Covered, snap.Len)
	}
	if len(snap.Shards) != 4 {
		t.Fatalf("Snapshot has %d shards, want 4", len(snap.Shards))
	}
	probeRNG := rand.New(rand.NewPCG(71, 72))
	for probe := 0; probe < 50; probe++ {
		p := randomPoint(probeRNG, m)
		var want []ID
		for _, k := range all {
			if k.sub.Matches(p) {
				want = append(want, k.id)
			}
		}
		slices.Sort(want)
		if got := sh.Match(p); !slices.Equal(got, want) {
			t.Fatalf("probe %d: Match(%v) = %v, want %v", probe, p, got, want)
		}
	}
	// Every survivor is retrievable with its own subscription.
	for _, k := range all {
		sub, _, ok := sh.Get(k.id)
		if !ok || !sub.Equal(k.sub) {
			t.Fatalf("Get(%d) = (%v, ok=%v), want stored sub", k.id, sub, ok)
		}
	}
}

// TestShardedValidation covers constructor and admission errors.
func TestShardedValidation(t *testing.T) {
	if _, err := NewSharded(Policy(99)); err == nil {
		t.Error("invalid policy accepted")
	}
	if _, err := NewSharded(PolicyPairwise, WithShards(0)); err == nil {
		t.Error("zero shards accepted")
	}
	sh, err := NewSharded(PolicyPairwise, WithShards(2))
	if err != nil {
		t.Fatal(err)
	}
	s := subscription.New(interval.New(0, 9))
	if _, err := sh.Subscribe(1, s); err != nil {
		t.Fatal(err)
	}
	if _, err := sh.Subscribe(1, s); err == nil {
		t.Error("duplicate ID accepted")
	}
	bad := subscription.New(interval.Empty())
	if _, err := sh.Subscribe(2, bad); err == nil {
		t.Error("unsatisfiable subscription accepted")
	}
	// A failed admission must release its reservation.
	if _, err := sh.Subscribe(2, s); err != nil {
		t.Errorf("ID 2 should be reusable after failed admission: %v", err)
	}
	if _, err := sh.SubscribeBatch([]ID{3, 3}, []subscription.Subscription{s, s}); err == nil {
		t.Error("in-batch duplicate accepted")
	}
	if _, err := sh.SubscribeBatch([]ID{4}, nil); err == nil {
		t.Error("length mismatch accepted")
	}
	if res, err := sh.Unsubscribe(999); err != nil || res.Existed {
		t.Errorf("unknown unsubscribe = (%+v, %v)", res, err)
	}
}

// TestShardedHugeDomainRouting guards the router against schemas whose
// domain point-count overflows int64 (e.g. the full int64 range):
// routing must fall back to a safe grid instead of dividing by zero.
func TestShardedHugeDomainRouting(t *testing.T) {
	schema, err := subscription.NewSchema(
		[]string{"x"},
		[]interval.Interval{interval.New(math.MinInt64, math.MaxInt64)},
	)
	if err != nil {
		t.Fatal(err)
	}
	sh, err := NewSharded(PolicyPairwise, WithShards(4), WithShardSchema(schema))
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(1); i <= 8; i++ {
		s := subscription.New(interval.New(i*1000, i*1000+50))
		if _, err := sh.Subscribe(ID(i), s); err != nil {
			t.Fatalf("subscribe %d: %v", i, err)
		}
	}
	if sh.Snapshot().Len != 8 {
		t.Fatalf("Len = %d, want 8", sh.Snapshot().Len)
	}
}
