package store

import (
	"fmt"
	"math/rand/v2"
	"testing"

	"probsum/internal/interval"
	"probsum/internal/subscription"
)

// randomBoxes builds a deterministic mixed workload of broad parents
// and narrow children over a 2-D domain.
func randomBoxes(seed uint64, n int) []subscription.Subscription {
	rng := rand.New(rand.NewPCG(seed, seed|1))
	out := make([]subscription.Subscription, n)
	for i := range out {
		if i%4 == 0 { // broad parent
			lo1, lo2 := rng.Int64N(40), rng.Int64N(40)
			out[i] = subscription.New(
				interval.New(lo1, lo1+40+rng.Int64N(20)),
				interval.New(lo2, lo2+40+rng.Int64N(20)))
		} else { // narrow child
			lo1, lo2 := rng.Int64N(80), rng.Int64N(80)
			out[i] = subscription.New(
				interval.New(lo1, lo1+rng.Int64N(15)),
				interval.New(lo2, lo2+rng.Int64N(15)))
		}
	}
	return out
}

// TestUnsubscribeBatchMatchesPerItem removes the same burst through
// UnsubscribeBatch and through a per-item loop on an identically
// populated pairwise store, then cross-checks membership and Match
// behavior. Forest shapes may differ; the stored set and the answers
// must not.
func TestUnsubscribeBatchMatchesPerItem(t *testing.T) {
	subs := randomBoxes(7, 200)
	build := func() *Store {
		st, err := New(PolicyPairwise)
		if err != nil {
			t.Fatal(err)
		}
		for i, s := range subs {
			if _, err := st.Subscribe(ID(i), s); err != nil {
				t.Fatal(err)
			}
		}
		return st
	}
	burst := make([]ID, 0, 60)
	for i := 0; i < 60; i++ {
		burst = append(burst, ID(i*3)) // hits parents and children alike
	}

	batch := build()
	bres, err := batch.UnsubscribeBatch(burst)
	if err != nil {
		t.Fatal(err)
	}
	if bres.Removed != len(burst) {
		t.Fatalf("Removed = %d, want %d", bres.Removed, len(burst))
	}

	loop := build()
	for _, id := range burst {
		if _, err := loop.Unsubscribe(id); err != nil {
			t.Fatal(err)
		}
	}

	if batch.Len() != loop.Len() {
		t.Fatalf("Len: batch %d, loop %d", batch.Len(), loop.Len())
	}
	for i := range subs {
		_, _, okB := batch.Get(ID(i))
		_, _, okL := loop.Get(ID(i))
		if okB != okL {
			t.Fatalf("id %d: batch present=%v, loop present=%v", i, okB, okL)
		}
	}
	// Match must agree everywhere: same stored membership, and every
	// stored subscription reachable through either forest.
	rng := rand.New(rand.NewPCG(99, 100))
	for p := 0; p < 200; p++ {
		pub := subscription.NewPublication(rng.Int64N(100), rng.Int64N(100))
		got := fmt.Sprint(batch.Match(pub))
		want := fmt.Sprint(loop.Match(pub))
		if got != want {
			t.Fatalf("Match(%v): batch %v, loop %v", pub, got, want)
		}
	}
}

// TestUnsubscribeBatchPromotes checks the core cancellation semantics:
// removing a coverer promotes its children, unless the burst removes
// them too.
func TestUnsubscribeBatchPromotes(t *testing.T) {
	st, err := New(PolicyPairwise)
	if err != nil {
		t.Fatal(err)
	}
	parent := box(0, 100, 0, 100)
	childA := box(10, 20, 10, 20)
	childB := box(30, 40, 30, 40)
	for id, s := range []subscription.Subscription{parent, childA, childB} {
		if _, err := st.Subscribe(ID(id+1), s); err != nil {
			t.Fatal(err)
		}
	}
	if st.ActiveLen() != 1 {
		t.Fatalf("setup: active = %d, want 1 (children covered)", st.ActiveLen())
	}

	res, err := st.UnsubscribeBatch([]ID{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Removed != 2 {
		t.Fatalf("Removed = %d, want 2", res.Removed)
	}
	if fmt.Sprint(res.Promoted) != "[2]" {
		t.Fatalf("Promoted = %v, want [2] (childB was removed with the burst)", res.Promoted)
	}
	if _, status, ok := st.Get(2); !ok || status != StatusActive {
		t.Fatalf("childA: ok=%v status=%v, want active", ok, status)
	}
	if _, _, ok := st.Get(3); ok {
		t.Fatal("childB still present after burst removal")
	}
}

// TestUnsubscribeBatchSharedFrontier verifies the batch re-validates a
// child that lost several coverers only once: a child covered by the
// union of two parents (group policy) survives their joint removal
// only if something else still covers it.
func TestUnsubscribeBatchEdgeCases(t *testing.T) {
	st, err := New(PolicyPairwise)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Subscribe(1, box(0, 50, 0, 50)); err != nil {
		t.Fatal(err)
	}
	// Unknown IDs and duplicates are skipped, not errors.
	res, err := st.UnsubscribeBatch([]ID{9, 1, 1, 42})
	if err != nil {
		t.Fatal(err)
	}
	if res.Removed != 1 || len(res.Promoted) != 0 {
		t.Fatalf("res = %+v, want Removed=1, no promotions", res)
	}
	if st.Len() != 0 {
		t.Fatalf("Len = %d, want 0", st.Len())
	}
	// Empty burst is a no-op.
	if res, err := st.UnsubscribeBatch(nil); err != nil || res.Removed != 0 {
		t.Fatalf("empty burst: res=%+v err=%v", res, err)
	}
}

// TestShardedUnsubscribeBatch exercises the cross-shard path: removal
// groups per shard, promotions re-offered (and possibly migrated) to
// other shards, placement map consistent afterwards.
func TestShardedUnsubscribeBatch(t *testing.T) {
	for _, shards := range []int{1, 4} {
		t.Run(fmt.Sprintf("%dshards", shards), func(t *testing.T) {
			sh, err := NewSharded(PolicyPairwise, WithShards(shards))
			if err != nil {
				t.Fatal(err)
			}
			subs := randomBoxes(11, 160)
			for i, s := range subs {
				if _, err := sh.Subscribe(ID(i), s); err != nil {
					t.Fatal(err)
				}
			}
			burst := []ID{0, 4, 8, 12, 16, 20, 24, 28, 32, 36, 40} // the broad parents
			res, err := sh.UnsubscribeBatch(burst)
			if err != nil {
				t.Fatal(err)
			}
			if res.Removed != len(burst) {
				t.Fatalf("Removed = %d, want %d", res.Removed, len(burst))
			}
			for _, id := range burst {
				if _, _, ok := sh.Get(id); ok {
					t.Fatalf("id %d still present", id)
				}
			}
			if got := sh.Snapshot().Len; got != len(subs)-len(burst) {
				t.Fatalf("Len = %d, want %d", got, len(subs)-len(burst))
			}
			// Every survivor is reachable and every promoted ID active.
			for _, pid := range res.Promoted {
				_, status, ok := sh.Get(pid)
				if !ok || status != StatusActive {
					t.Fatalf("promoted %d: ok=%v status=%v", pid, ok, status)
				}
			}
			m := sh.Metrics()
			if m.Unsubscribes != uint64(len(burst)) {
				t.Fatalf("Unsubscribes = %d, want %d", m.Unsubscribes, len(burst))
			}
		})
	}
}

// TestShardedMetricsPerShard pins the new occupancy metrics: the
// per-shard occupancy sums to the snapshot total and placements cover
// every admitted subscription.
func TestShardedMetricsPerShard(t *testing.T) {
	sh, err := NewSharded(PolicyPairwise, WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	subs := randomBoxes(13, 100)
	for i, s := range subs {
		if _, err := sh.Subscribe(ID(i), s); err != nil {
			t.Fatal(err)
		}
	}
	m := sh.Metrics()
	if len(m.ShardOccupancy) != 4 || len(m.ShardPlacements) != 4 {
		t.Fatalf("per-shard slices sized %d/%d, want 4/4", len(m.ShardOccupancy), len(m.ShardPlacements))
	}
	occ, placed := 0, uint64(0)
	for j := range m.ShardOccupancy {
		occ += m.ShardOccupancy[j]
		placed += m.ShardPlacements[j]
	}
	snap := sh.Snapshot()
	if occ != snap.Len {
		t.Fatalf("sum(ShardOccupancy) = %d, snapshot Len = %d", occ, snap.Len)
	}
	if placed < uint64(len(subs)) {
		t.Fatalf("sum(ShardPlacements) = %d, want >= %d", placed, len(subs))
	}
	for j, s := range snap.Shards {
		if m.ShardOccupancy[j] != s.Len {
			t.Fatalf("shard %d occupancy %d != snapshot %d", j, m.ShardOccupancy[j], s.Len)
		}
	}
}
