package store

import (
	"math/rand/v2"
	"testing"

	"probsum/internal/core"
	"probsum/internal/interval"
	"probsum/internal/subscription"
)

// TestGroupChurnSoundness hammers a group-policy store with random
// subscribe/unsubscribe churn over a tiny domain and checks the two
// invariants the broker relies on after every step:
//
//  1. every covered subscription is genuinely covered by the union of
//     the current ACTIVE set (checked with the exhaustive oracle —
//     with δ=1e-12 on 2-D toy boxes a false cover is impossible in
//     practice), and
//  2. no active subscription is pairwise-covered by another active one
//     at admission time is NOT required (group policy may keep
//     union-covered members admitted earlier), but every stored
//     subscription must still be findable via Match.
func TestGroupChurnSoundness(t *testing.T) {
	checker, err := core.NewChecker(core.WithSeed(1, 9), core.WithErrorProbability(1e-12))
	if err != nil {
		t.Fatal(err)
	}
	st, err := New(PolicyGroup, WithChecker(checker))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(123, 456))
	nextID := ID(0)
	live := make(map[ID]subscription.Subscription)

	randBox := func() subscription.Subscription {
		lo1, lo2 := rng.Int64N(25), rng.Int64N(25)
		return subscription.New(
			interval.New(lo1, lo1+rng.Int64N(30-lo1)),
			interval.New(lo2, lo2+rng.Int64N(30-lo2)),
		)
	}

	verify := func(step int) {
		t.Helper()
		active := st.ActiveSubscriptions()
		for id, sub := range live {
			_, status, ok := st.Get(id)
			if !ok {
				t.Fatalf("step %d: subscription %d vanished", step, id)
			}
			if status != StatusCovered {
				continue
			}
			covered, err := core.ExhaustiveCover(sub, active)
			if err != nil {
				t.Fatal(err)
			}
			if !covered {
				t.Fatalf("step %d: covered subscription %d (%v) is not covered by the active set",
					step, id, sub)
			}
		}
		// Spot-check Match completeness on a few random points.
		for probe := 0; probe < 10; probe++ {
			p := subscription.NewPublication(rng.Int64N(31), rng.Int64N(31))
			got := make(map[ID]bool)
			for _, id := range st.Match(p) {
				got[id] = true
			}
			for id, sub := range live {
				if sub.Matches(p) && !got[id] {
					t.Fatalf("step %d: Match missed %d for %v", step, id, p)
				}
			}
		}
	}

	for step := 0; step < 300; step++ {
		if len(live) == 0 || rng.IntN(3) != 0 {
			nextID++
			sub := randBox()
			if _, err := st.Subscribe(nextID, sub); err != nil {
				t.Fatal(err)
			}
			live[nextID] = sub
		} else {
			// Remove a random live subscription.
			var victim ID
			n := rng.IntN(len(live))
			for id := range live {
				if n == 0 {
					victim = id
					break
				}
				n--
			}
			if _, err := st.Unsubscribe(victim); err != nil {
				t.Fatal(err)
			}
			delete(live, victim)
		}
		if step%10 == 0 {
			verify(step)
		}
	}
	verify(300)
}
