package store

// Batch unsubscribe: a cancellation burst through per-ID Unsubscribe
// re-runs the promotion cascade once per removed subscription — a
// covered child that lost two of its coverers to the same burst is
// re-validated twice, and children of later removals are checked
// against active sets that still contain earlier removals' survivors.
// UnsubscribeBatch shares ONE cascade frontier across the burst: all
// removals are unlinked first, then every surviving subscription that
// lost at least one coverer is re-validated exactly once against the
// post-removal active set (in ID order, so promotions cascade
// deterministically, each child seeing the promotions before it).
//
// The fixed point can differ from per-item removal the same way batch
// subscribe differs from per-item subscribe: both are sound (a
// subscription is only left covered when the surviving active set
// covers it), but borderline probabilistic decisions see different
// active sets. Two stores fed the same burst agree exactly.

import (
	"slices"
	"sort"
)

// UnsubscribeBatchResult reports what UnsubscribeBatch did.
type UnsubscribeBatchResult struct {
	// Removed counts the burst IDs that existed and were removed
	// (unknown and duplicate IDs are skipped).
	Removed int
	// Promoted lists covered subscriptions promoted to active because
	// their cover no longer holds without the removed set, in ID order.
	Promoted []ID
}

// UnsubscribeBatch removes a burst of subscriptions in one call,
// running the promotion cascade once over the union of orphaned
// children instead of once per removal. Unknown IDs are skipped.
func (st *Store) UnsubscribeBatch(ids []ID) (UnsubscribeBatchResult, error) {
	var res UnsubscribeBatchResult
	if len(ids) == 0 {
		return res, nil
	}
	// Phase 1: unlink and remove every burst member, collecting the
	// shared frontier of surviving children that lost a coverer.
	removed := make(map[ID]struct{}, len(ids))
	frontier := make(map[ID]struct{})
	for _, id := range ids {
		n, ok := st.nodes[id]
		if !ok {
			continue // unknown, or removed earlier in this burst
		}
		removed[id] = struct{}{}
		res.Removed++
		for c := range n.coverers {
			if cn, ok := st.nodes[c]; ok {
				delete(cn.children, id)
			}
		}
		delete(st.nodes, id)
		if n.status == StatusActive {
			st.deactivate(n)
		}
		for c := range n.children {
			frontier[c] = struct{}{}
		}
	}

	// Phase 2: re-validate each orphan once against the post-removal
	// active set, in ID order. Promotions activate immediately, so a
	// later orphan can be kept covered by an earlier one's promotion —
	// the same then-current-set semantics as the per-item cascade.
	orphans := make([]ID, 0, len(frontier))
	for c := range frontier {
		if _, gone := removed[c]; gone {
			continue // the child was itself part of the burst
		}
		orphans = append(orphans, c)
	}
	sort.Slice(orphans, func(i, j int) bool { return orphans[i] < orphans[j] })

	for _, cid := range orphans {
		child := st.nodes[cid]
		for c := range child.coverers {
			if _, gone := removed[c]; gone {
				delete(child.coverers, c)
			}
		}
		status, coverers, _, err := st.decideCoverage(child.sub)
		if err != nil {
			return res, err
		}
		// Detach from remaining coverers before rewiring.
		for c := range child.coverers {
			delete(st.nodes[c].children, cid)
		}
		child.coverers = make(map[ID]struct{}, len(coverers))
		if status == StatusCovered {
			for _, c := range coverers {
				child.coverers[c] = struct{}{}
				st.nodes[c].children[cid] = struct{}{}
			}
			child.status = StatusCovered
			continue
		}
		child.status = StatusActive
		st.activate(child)
		res.Promoted = append(res.Promoted, cid)
	}
	return res, nil
}

// UnsubscribeBatch removes a burst across shards: burst members are
// grouped by their home shard and each shard runs its shared-frontier
// cascade once; promotions then go through the cross-shard re-cover
// (and migration) exactly like single unsubscribes. The placement lock
// is held throughout, so the burst is atomic with respect to
// concurrent lookups.
func (sh *Sharded) UnsubscribeBatch(ids []ID) (UnsubscribeBatchResult, error) {
	var res UnsubscribeBatchResult
	if len(ids) == 0 {
		return res, nil
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()

	perShard := make([][]ID, len(sh.shards))
	for _, id := range ids {
		j, ok := sh.placement[id]
		if !ok || j == placePending {
			continue
		}
		perShard[j] = append(perShard[j], id)
	}

	var promoted []struct {
		shard int
		id    ID
	}
	for j, group := range perShard {
		if len(group) == 0 {
			continue
		}
		slot := sh.shards[j]
		slot.mu.Lock()
		sres, err := slot.st.UnsubscribeBatch(group)
		slot.mu.Unlock()
		// The store's removal phase always completes before its cascade
		// can error, so this shard's group is gone either way; drop the
		// placements only now, so an error leaves LATER shards' groups
		// still placed (and removable) rather than stranded.
		for _, id := range group {
			delete(sh.placement, id)
		}
		res.Removed += sres.Removed
		sh.metrics.unsubscribes.Add(uint64(sres.Removed))
		if err != nil {
			// Promotions already made stay active (sound); report what
			// we know and stop.
			res.Promoted = append(res.Promoted, sres.Promoted...)
			return res, err
		}
		for _, pid := range sres.Promoted {
			promoted = append(promoted, struct {
				shard int
				id    ID
			}{j, pid})
		}
	}

	if len(sh.shards) == 1 {
		for _, p := range promoted {
			res.Promoted = append(res.Promoted, p.id)
		}
	} else {
		for _, p := range promoted {
			migrated, err := sh.recoverPromoted(p.shard, p.id)
			if err != nil {
				res.Promoted = append(res.Promoted, p.id)
				slices.Sort(res.Promoted)
				return res, err
			}
			if !migrated {
				res.Promoted = append(res.Promoted, p.id)
			}
		}
		// Promotions were collected shard by shard; restore the
		// documented ID order.
		slices.Sort(res.Promoted)
	}
	sh.metrics.promotions.Add(uint64(len(res.Promoted)))
	return res, nil
}
