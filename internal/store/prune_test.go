package store

import (
	"math/rand/v2"
	"slices"
	"testing"

	"probsum/internal/core"
	"probsum/internal/interval"
	"probsum/internal/subscription"
	"probsum/internal/workload"
)

// subscribeStream builds a deterministic arrival sequence with enough
// overlap for coverage decisions to fire both ways.
func subscribeStream(t *testing.T, seed1, seed2 uint64, n, m int) []subscription.Subscription {
	t.Helper()
	rng := rand.New(rand.NewPCG(seed1, seed2))
	stream, err := workload.NewComparisonStream(rng, workload.DefaultComparisonConfig(m))
	if err != nil {
		t.Fatal(err)
	}
	subs := make([]subscription.Subscription, n)
	for i := range subs {
		subs[i] = stream.Next()
	}
	return subs
}

// driveEquivalence feeds the same subscribe/unsubscribe sequence to a
// pruned and an unpruned store and requires identical observable
// behavior after every operation: statuses, coverers, demotions,
// promotions, and the active ID set.
func driveEquivalence(t *testing.T, mkStore func() *Store) {
	t.Helper()
	pruned := mkStore()
	full := mkStore()
	WithCandidatePruning(false)(full)

	subs := subscribeStream(t, 41, 42, 400, 6)
	rng := rand.New(rand.NewPCG(43, 44))
	live := make([]ID, 0, len(subs))
	for i, s := range subs {
		id := ID(i)
		rp, err := pruned.Subscribe(id, s)
		if err != nil {
			t.Fatalf("pruned subscribe %d: %v", i, err)
		}
		rf, err := full.Subscribe(id, s)
		if err != nil {
			t.Fatalf("full subscribe %d: %v", i, err)
		}
		if rp.Status != rf.Status {
			t.Fatalf("subscribe %d: pruned status %v, full status %v", i, rp.Status, rf.Status)
		}
		if !slices.Equal(rp.Coverers, rf.Coverers) {
			t.Fatalf("subscribe %d: pruned coverers %v, full coverers %v", i, rp.Coverers, rf.Coverers)
		}
		if !slices.Equal(rp.Demoted, rf.Demoted) {
			t.Fatalf("subscribe %d: pruned demoted %v, full demoted %v", i, rp.Demoted, rf.Demoted)
		}
		live = append(live, id)

		// Churn: occasionally remove a random live subscription so the
		// promotion path runs under pruning too.
		if i%5 == 4 && len(live) > 0 {
			j := rng.IntN(len(live))
			victim := live[j]
			live = slices.Delete(live, j, j+1)
			up, err := pruned.Unsubscribe(victim)
			if err != nil {
				t.Fatalf("pruned unsubscribe %d: %v", victim, err)
			}
			uf, err := full.Unsubscribe(victim)
			if err != nil {
				t.Fatalf("full unsubscribe %d: %v", victim, err)
			}
			if up.WasActive != uf.WasActive || !slices.Equal(up.Promoted, uf.Promoted) {
				t.Fatalf("unsubscribe %d: pruned (active=%v promoted=%v), full (active=%v promoted=%v)",
					victim, up.WasActive, up.Promoted, uf.WasActive, uf.Promoted)
			}
		}
		if !slices.Equal(pruned.ActiveIDs(), full.ActiveIDs()) {
			t.Fatalf("after op %d: pruned active %v != full active %v", i, pruned.ActiveIDs(), full.ActiveIDs())
		}
	}
	if pruned.ActiveLen() == pruned.Len() {
		t.Fatal("no subscription was ever covered; workload lost its teeth")
	}
}

func TestPrunedEquivalencePairwise(t *testing.T) {
	driveEquivalence(t, func() *Store {
		st, err := New(PolicyPairwise, WithReversePrune(true))
		if err != nil {
			t.Fatal(err)
		}
		return st
	})
}

func TestPrunedEquivalenceGroup(t *testing.T) {
	driveEquivalence(t, func() *Store {
		checker, err := core.NewChecker(core.WithSeed(51, 52))
		if err != nil {
			t.Fatal(err)
		}
		st, err := New(PolicyGroup, WithChecker(checker), WithReversePrune(true))
		if err != nil {
			t.Fatal(err)
		}
		return st
	})
}

// TestCandidateIndexConsistency churns a store and cross-checks the
// candidate set against a brute-force scan of the active set after
// every operation: candidates must be exactly the active rows whose
// boxes intersect the probe.
func TestCandidateIndexConsistency(t *testing.T) {
	st, err := New(PolicyPairwise, WithReversePrune(true))
	if err != nil {
		t.Fatal(err)
	}
	subs := subscribeStream(t, 61, 62, 300, 5)
	probes := subscribeStream(t, 63, 64, 50, 5)
	rng := rand.New(rand.NewPCG(65, 66))
	var live []ID
	for i, s := range subs {
		id := ID(i)
		if _, err := st.Subscribe(id, s); err != nil {
			t.Fatal(err)
		}
		live = append(live, id)
		if i%4 == 3 && len(live) > 0 {
			j := rng.IntN(len(live))
			victim := live[j]
			live = slices.Delete(live, j, j+1)
			if _, err := st.Unsubscribe(victim); err != nil {
				t.Fatal(err)
			}
		}

		probe := probes[i%len(probes)]
		gotIDs, gotSubs := st.candidates(probe)
		var want []ID
		for p, aid := range st.activeIDs {
			if st.activeSubs[p].Intersects(probe) {
				want = append(want, aid)
			}
		}
		// Soundness: every active row intersecting the probe must be a
		// candidate (dropping one could flip a coverage answer), and
		// every candidate must be active. Exact equality is not
		// required — the index legitimately hands back the full active
		// set when pruning would not pay off.
		for _, id := range want {
			if !slices.Contains(gotIDs, id) {
				t.Fatalf("op %d: intersecting row %d missing from candidates %v", i, id, gotIDs)
			}
		}
		for p, id := range gotIDs {
			if !slices.Contains(st.activeIDs, id) {
				t.Fatalf("op %d: candidate %d is not active", i, id)
			}
			if !st.nodes[id].sub.Equal(gotSubs[p]) {
				t.Fatalf("op %d: candidate sub mismatch at %d", i, p)
			}
		}
	}
}

// TestGroupPrunedSoundness checks pruned group decisions against the
// exhaustive oracle on a small domain: a NotCovered decision is
// witness-backed and must be exactly right; a covered decision must
// agree with the oracle (failure probability bounded by δ per check
// and pinned by the fixed seed).
func TestGroupPrunedSoundness(t *testing.T) {
	checker, err := core.NewChecker(core.WithSeed(71, 72))
	if err != nil {
		t.Fatal(err)
	}
	st, err := New(PolicyGroup, WithChecker(checker))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(73, 74))
	dom := interval.New(0, 15)
	randSub := func() subscription.Subscription {
		bounds := make([]interval.Interval, 2)
		for a := range bounds {
			lo := dom.Lo + rng.Int64N(dom.Count())
			hi := lo + rng.Int64N(dom.Hi-lo+1)
			bounds[a] = interval.New(lo, hi)
		}
		return subscription.Subscription{Bounds: bounds}
	}
	for i := 0; i < 300; i++ {
		s := randSub()
		active := st.ActiveSubscriptions()
		oracle, err := core.ExhaustiveCover(s, active)
		if err != nil {
			t.Fatal(err)
		}
		res, err := st.Subscribe(ID(i), s)
		if err != nil {
			t.Fatal(err)
		}
		covered := res.Status == StatusCovered
		if covered != oracle {
			t.Fatalf("subscription %d (%v): store says covered=%v, oracle says %v", i, s, covered, oracle)
		}
	}
	if st.CoveredLen() == 0 {
		t.Fatal("nothing was covered; workload lost its teeth")
	}
}
