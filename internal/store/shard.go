package store

// Sharded is the concurrency layer over Store: N hash-sharded Store
// instances, each guarded by its own mutex and owning its own checker,
// with a cross-shard merge for coverage decisions that span shards.
//
// # Semantics
//
// Every subscription lives in exactly one shard, so the cover forest
// (coverers, children, promotion cascades) stays shard-local. An
// arriving subscription is checked against its home shard first, then
// against every other shard; it is admitted as covered into the FIRST
// shard whose active set covers it, and activated in its home shard
// only when no shard covers it. Group coverage is therefore weakened
// to PER-SHARD UNIONS: a set of subscriptions spread across shards is
// never considered jointly, so a sharded table may keep subscriptions
// active that a single store would suppress. That weakening is sound —
// it errs toward forwarding, never toward losing publications. The
// same holds for reverse pruning (demotion scans only the home shard)
// and for races between concurrent subscribers: every interleaving
// resolves toward keeping subscriptions active. WithShards(1) restores
// the exact single-store semantics — decision for decision, including
// checker streams — which the equivalence tests pin.
//
// When an unsubscription promotes covered subscriptions, the merge
// layer re-offers each promoted subscription to the other shards and
// MIGRATES it (covered, into the covering shard) when one still covers
// it, so cancellation does not leak permanently-uncovered actives just
// because the replacement cover lives elsewhere.
//
// # Routing
//
// The home shard comes from a schema-aware hash of the subscription's
// dominant bound — the most selective attribute, judged relative to
// its domain when a schema is supplied — quantized coarsely so boxes
// concentrated in the same region of the same attribute tend to share
// a shard and coverage relations stay intra-shard. Subscriptions with
// no constrained attribute (and callers that configure no schema and
// pass zero-attribute subscriptions) fall back to an ID hash. Routing
// is a placement heuristic only; correctness never depends on it.

import (
	"fmt"
	"slices"
	"sync"
	"sync/atomic"

	"probsum/internal/core"
	"probsum/internal/subscription"
)

// Router maps a subscription to a shard-selection hash; the shard is
// the hash modulo the shard count.
type Router func(id ID, s subscription.Subscription) uint64

// ShardedOption configures a Sharded store.
type ShardedOption func(*shardedConfig)

type shardedConfig struct {
	shards       int
	seed         uint64
	copts        []core.Option
	reversePrune bool
	pruning      bool
	schema       *subscription.Schema
	router       Router
	rendezvous   bool
}

// WithShards sets the shard count (default 1). One shard reproduces
// Store semantics exactly; more shards trade the per-shard-union
// weakening documented on Sharded for concurrency.
func WithShards(n int) ShardedOption {
	return func(c *shardedConfig) { c.shards = n }
}

// WithShardSeed sets the base seed of the checker pool that per-shard
// checkers are drawn from under PolicyGroup (default 1). With one
// shard the checker is built directly from the checker options
// instead, so an explicit core.WithSeed there is honored — that is
// what makes WithShards(1) bit-identical to a seeded Store.
func WithShardSeed(seed uint64) ShardedOption {
	return func(c *shardedConfig) { c.seed = seed }
}

// WithShardCheckerOptions appends checker options (error probability,
// trial cap, …) applied to every per-shard checker.
func WithShardCheckerOptions(opts ...core.Option) ShardedOption {
	return func(c *shardedConfig) { c.copts = append(c.copts, opts...) }
}

// WithShardReversePrune enables reverse pruning in every shard. With
// more than one shard, demotion scans only the arriving subscription's
// home shard (see the semantics note on Sharded).
func WithShardReversePrune(enabled bool) ShardedOption {
	return func(c *shardedConfig) { c.reversePrune = enabled }
}

// WithShardCandidatePruning toggles the per-attribute candidate index
// in every shard (default on).
func WithShardCandidatePruning(enabled bool) ShardedOption {
	return func(c *shardedConfig) { c.pruning = enabled }
}

// WithShardSchema makes the default router schema-aware: attribute
// selectivity is judged relative to each domain, and unconstrained
// attributes never dominate.
func WithShardSchema(schema *subscription.Schema) ShardedOption {
	return func(c *shardedConfig) { c.schema = schema }
}

// WithShardRouter replaces the routing hash entirely.
func WithShardRouter(r Router) ShardedOption {
	return func(c *shardedConfig) { c.router = r }
}

// WithShardRendezvous enables balance-first placement. The router's
// value is treated as a placement KEY (a fine sixty-four-cell
// dominant-bound key by default) and every shard ranks it by salted
// hash — rendezvous (highest-random-weight) hashing, so coarse-key
// modulo clumping disappears and a shard-count change moves only ~1/n
// of the keys. Activation then picks the LESS-OCCUPIED of the two
// top-ranked shards (power of two choices over the lifetime placement
// counters), which is what actually balances workloads where coverage
// concentrates storage: covered subscriptions always live with their
// coverer, so a broad subscription drags its whole covered population
// into its shard and only load-aware activation can spread those
// piles. The tradeoff is weaker placement locality — nearby boxes
// share a shard less often, so cross-shard suppression does more of
// the coverage work (sound: admission checks every shard).
func WithShardRendezvous(enabled bool) ShardedOption {
	return func(c *shardedConfig) { c.rendezvous = enabled }
}

// shardSlot is one shard: a Store and the mutex serializing it.
type shardSlot struct {
	mu sync.Mutex
	st *Store
}

// Sharded is a concurrency-safe, hash-sharded subscription table.
// All methods are safe for concurrent callers.
type Sharded struct {
	policy Policy
	router Router
	shards []*shardSlot
	// salts is non-nil when rendezvous placement is enabled (see
	// WithShardRendezvous): one placement salt per shard.
	salts []uint64

	// mu guards placement. Unsubscribe holds it across the whole
	// promotion/migration sequence so a subscription is never observed
	// half-migrated; Subscribe/SubscribeBatch take it only around map
	// operations and NEVER while holding a shard lock, which is what
	// keeps the two lock orders deadlock-free.
	mu        sync.Mutex
	placement map[ID]int // shard index, or placePending during admission

	metrics shardedCounters
}

// placePending marks an ID reserved by an in-flight Subscribe.
const placePending = -1

// shardedCounters are the cumulative activity counters.
type shardedCounters struct {
	subscribes   atomic.Uint64
	suppressed   atomic.Uint64 // admitted covered (any shard)
	crossShard   atomic.Uint64 // … of which a non-home shard covered
	batches      atomic.Uint64
	batchItems   atomic.Uint64
	unsubscribes atomic.Uint64
	promotions   atomic.Uint64
	migrations   atomic.Uint64
	matches      atomic.Uint64
	// placed counts, per shard, the subscriptions that landed there
	// (admissions and migrations) — the routing-skew measure.
	placed []atomic.Uint64
}

// ShardStats sizes one shard.
type ShardStats struct {
	Len     int
	Active  int
	Covered int
}

// ShardedSnapshot is a point-in-time size report.
type ShardedSnapshot struct {
	Shards  []ShardStats
	Len     int
	Active  int
	Covered int
}

// ShardedMetrics are cumulative operation counters.
type ShardedMetrics struct {
	// Subscribes counts Subscribe calls plus SubscribeBatch items.
	Subscribes uint64
	// Suppressed counts arrivals admitted covered; CrossShardSuppressed
	// is the subset a non-home shard covered.
	Suppressed           uint64
	CrossShardSuppressed uint64
	// Batches and BatchItems count SubscribeBatch calls and their items.
	Batches    uint64
	BatchItems uint64
	// Unsubscribes counts removals of present subscriptions; Promotions
	// counts covered subscriptions those removals re-activated (after
	// cross-shard re-cover); Migrations counts promoted subscriptions
	// re-covered by — and moved into — another shard instead.
	Unsubscribes uint64
	Promotions   uint64
	Migrations   uint64
	// Matches counts Match calls.
	Matches uint64
	// ShardPlacements counts, per shard, the subscriptions placed there
	// over the table's lifetime (admissions plus migrations), and
	// ShardOccupancy is the CURRENT per-shard stored-subscription count
	// — together they make routing skew (shard clumping) measurable
	// from the public API without a separate Snapshot call.
	ShardPlacements []uint64
	ShardOccupancy  []int
}

// NewSharded builds a sharded table. PolicyGroup shards draw their
// checkers from a core.CheckerPool seeded by WithShardSeed — except
// with a single shard, where the checker is built directly from the
// checker options so explicit seeding is honored.
func NewSharded(policy Policy, opts ...ShardedOption) (*Sharded, error) {
	if policy < PolicyNone || policy > PolicyGroup {
		return nil, fmt.Errorf("store: invalid policy %d", policy)
	}
	cfg := shardedConfig{shards: 1, seed: 1, pruning: true}
	for _, opt := range opts {
		opt(&cfg)
	}
	if cfg.shards < 1 {
		return nil, fmt.Errorf("store: invalid shard count %d", cfg.shards)
	}
	router := cfg.router
	if router == nil {
		if cfg.rendezvous {
			// Rendezvous placement wants key DIVERSITY (many fine cells
			// spread evenly); the coarse default wants locality.
			router = dominantBoundKey(cfg.schema, 64, 6)
		} else {
			router = dominantBoundRouter(cfg.schema)
		}
	}
	var pool *core.CheckerPool
	if policy == PolicyGroup && cfg.shards > 1 {
		p, err := core.NewCheckerPool(cfg.seed, cfg.copts...)
		if err != nil {
			return nil, err
		}
		pool = p
	}
	sh := &Sharded{
		policy:    policy,
		router:    router,
		shards:    make([]*shardSlot, cfg.shards),
		placement: make(map[ID]int),
	}
	if cfg.rendezvous {
		sh.salts = make([]uint64, cfg.shards)
		for j := range sh.salts {
			sh.salts[j] = mix64(uint64(j)*0x9e3779b97f4a7c15 + 0x6a09e667f3bcc909)
		}
	}
	sh.metrics.placed = make([]atomic.Uint64, cfg.shards)
	for j := range sh.shards {
		sopts := []Option{
			WithReversePrune(cfg.reversePrune),
			WithCandidatePruning(cfg.pruning),
		}
		if policy == PolicyGroup {
			var checker *core.Checker
			var err error
			if pool != nil {
				checker = pool.Get() // one independent stream per shard
			} else if checker, err = core.NewChecker(cfg.copts...); err != nil {
				return nil, err
			}
			sopts = append(sopts, WithChecker(checker))
		}
		st, err := New(policy, sopts...)
		if err != nil {
			return nil, err
		}
		sh.shards[j] = &shardSlot{st: st}
	}
	return sh, nil
}

// mix64 is a splitmix64 finalizer.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// dominantBoundKey returns a placement-key function hashing the most
// selective attribute's index together with a quantization of its
// interval midpoint into the given number of cells per domain. With a
// schema, selectivity is width relative to the domain, the midpoint is
// quantized into cells of the domain, and attributes bounded by their
// full domain are skipped; without one, selectivity is absolute width
// and the midpoint falls on a fixed grid of the given shift. No
// dominant bound (or no bounds) keys by ID.
func dominantBoundKey(schema *subscription.Schema, cells int64, shift uint) func(ID, subscription.Subscription) uint64 {
	return func(id ID, s subscription.Subscription) uint64 {
		best, bestSel := -1, 0.0
		for a, b := range s.Bounds {
			if b.IsEmpty() {
				continue
			}
			sel := float64(b.Count())
			if schema != nil {
				if a >= schema.Len() || b.ContainsInterval(schema.Domain(a)) {
					continue
				}
				sel /= float64(schema.Domain(a).Count())
			}
			if best < 0 || sel < bestSel {
				best, bestSel = a, sel
			}
		}
		if best < 0 {
			return mix64(uint64(id))
		}
		b := s.Bounds[best]
		mid := b.Lo + (b.Hi-b.Lo)/2
		cell := mid >> shift
		if schema != nil {
			// Divide-by-width form so huge domains neither overflow the
			// product nor (when Count itself overflows to <= 0) divide
			// by zero.
			if step := schema.Domain(best).Count() / cells; step > 0 {
				cell = (mid - schema.Domain(best).Lo) / step
			}
		}
		return mix64(uint64(best)<<32 ^ uint64(cell))
	}
}

// dominantBoundRouter returns the default Router: the dominant-bound
// key at a COARSE sixteen-cell quantization, so boxes concentrated in
// the same region of the same attribute tend to share a shard and
// coverage relations stay intra-shard. The cost is clumping: sixteen
// coarse cells modulo a small shard count can land most of a skewed
// workload in one shard (the stockticker example used to put 245 of
// 392 subscriptions in one of four) — WithShardRendezvous is the
// balance-first alternative.
func dominantBoundRouter(schema *subscription.Schema) Router {
	return dominantBoundKey(schema, 16, 10)
}

// home returns the shard index for a subscription. Under rendezvous
// placement the router value is a KEY: every shard ranks it by salted
// hash and the less-placed of the two top-ranked shards wins (power
// of two choices over the lifetime placement counters — racy reads,
// but placement is a heuristic and single-threaded admission is
// deterministic).
func (sh *Sharded) home(id ID, s subscription.Subscription) int {
	if len(sh.shards) == 1 {
		return 0
	}
	h := sh.router(id, s)
	if sh.salts == nil {
		return int(h % uint64(len(sh.shards)))
	}
	top, second := -1, -1
	var wTop, wSecond uint64
	for j := range sh.salts {
		w := mix64(h ^ sh.salts[j])
		switch {
		case top < 0 || w > wTop:
			second, wSecond = top, wTop
			top, wTop = j, w
		case second < 0 || w > wSecond:
			second, wSecond = j, w
		}
	}
	if sh.metrics.placed[second].Load() < sh.metrics.placed[top].Load() {
		return second
	}
	return top
}

// reserve claims an ID for an in-flight admission.
func (sh *Sharded) reserve(id ID) error {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, dup := sh.placement[id]; dup {
		return fmt.Errorf("%w: %d", ErrDuplicateID, id)
	}
	sh.placement[id] = placePending
	return nil
}

// place finalizes a reservation. It only upgrades a still-pending
// entry: between admission into a shard and this call, a concurrent
// Unsubscribe of the coverer can promote AND migrate the new
// subscription (recoverPromoted runs under sh.mu and records the
// destination shard), and that placement must win.
func (sh *Sharded) place(id ID, shard int) {
	sh.mu.Lock()
	if j, ok := sh.placement[id]; ok && j == placePending {
		sh.placement[id] = shard
	}
	sh.mu.Unlock()
}

func (sh *Sharded) unreserve(id ID) {
	sh.mu.Lock()
	delete(sh.placement, id)
	sh.mu.Unlock()
}

// Policy returns the coverage policy.
func (sh *Sharded) Policy() Policy { return sh.policy }

// ShardCount returns the number of shards.
func (sh *Sharded) ShardCount() int { return len(sh.shards) }

// Subscribe admits one subscription: covered into the first shard
// whose active set covers it (home shard first), active into its home
// shard otherwise.
func (sh *Sharded) Subscribe(id ID, s subscription.Subscription) (SubscribeResult, error) {
	if err := sh.reserve(id); err != nil {
		return SubscribeResult{}, err
	}
	if !s.IsSatisfiable() {
		sh.unreserve(id)
		return SubscribeResult{}, core.ErrUnsatisfiable
	}
	sh.metrics.subscribes.Add(1)
	home := sh.home(id, s)
	res, shard, err := sh.admit(id, s, home, nil)
	if err != nil {
		sh.unreserve(id)
		return SubscribeResult{}, err
	}
	sh.place(id, shard)
	sh.metrics.placed[shard].Add(1)
	if res.Status == StatusCovered {
		sh.metrics.suppressed.Add(1)
		if shard != home {
			sh.metrics.crossShard.Add(1)
		}
	}
	return res, nil
}

// admit runs the cross-shard admission for one validated, reserved
// subscription and returns the result and the shard it landed in.
// When locked is non-nil the caller already holds EVERY shard lock
// (the batch path) and admit must not lock; otherwise admit locks one
// shard at a time.
func (sh *Sharded) admit(id ID, s subscription.Subscription, home int, locked []*shardSlot) (SubscribeResult, int, error) {
	var homeDecision SubscribeResult
	decided := false
	if sh.policy != PolicyNone {
		for off := 0; off < len(sh.shards); off++ {
			j := (home + off) % len(sh.shards)
			slot := sh.shards[j]
			if locked == nil {
				slot.mu.Lock()
			}
			res, ok, err := slot.st.SubscribeCovered(id, s)
			if locked == nil {
				slot.mu.Unlock()
			}
			if err != nil {
				return SubscribeResult{}, 0, err
			}
			if j == home {
				homeDecision, decided = res, true
			}
			if ok {
				return res, j, nil
			}
		}
	}
	slot := sh.shards[home]
	if locked == nil {
		slot.mu.Lock()
	}
	// Reservation guarantees a fresh ID and the caller validated
	// satisfiability, so activation cannot fail.
	res := slot.st.activateNew(id, s)
	if locked == nil {
		slot.mu.Unlock()
	}
	if decided {
		res.Checker = homeDecision.Checker
	}
	return res, home, nil
}

// SubscribeBatch admits a burst in one call, holding every shard lock
// for the duration so the whole burst is one critical section: items
// are processed in the deterministic descending-volume batchOrder (the
// same order Store.SubscribeBatch uses, so WithShards(1) batches match
// a single store exactly), each seeing the previous items' effects.
// Results are in input order. Validation happens before any insertion;
// a mid-batch checker error aborts with earlier items admitted.
func (sh *Sharded) SubscribeBatch(ids []ID, subs []subscription.Subscription) ([]SubscribeResult, error) {
	if len(ids) != len(subs) {
		return nil, fmt.Errorf("store: batch of %d ids but %d subscriptions", len(ids), len(subs))
	}
	for i, s := range subs {
		if !s.IsSatisfiable() {
			return nil, fmt.Errorf("batch item %d (id %d): %w", i, ids[i], core.ErrUnsatisfiable)
		}
	}
	if err := sh.reserveAll(ids); err != nil {
		return nil, err
	}
	sh.metrics.batches.Add(1)
	sh.metrics.batchItems.Add(uint64(len(ids)))
	sh.metrics.subscribes.Add(uint64(len(ids)))

	homes := make([]int, len(ids))
	perShard := make([]int, len(sh.shards))
	for i, id := range ids {
		homes[i] = sh.home(id, subs[i])
		perShard[homes[i]]++
	}

	for _, slot := range sh.shards {
		slot.mu.Lock()
	}
	for j, n := range perShard {
		if n > 0 {
			sh.shards[j].st.growActive(n)
		}
	}
	order := batchOrder(ids, subs)
	out := make([]SubscribeResult, len(ids))
	placed := make([]int, len(ids))
	var batchErr error
	done := 0
	for _, i := range order {
		res, shard, err := sh.admit(ids[i], subs[i], homes[i], sh.shards)
		if err != nil {
			batchErr = fmt.Errorf("batch item %d (id %d): %w", i, ids[i], err)
			break
		}
		out[i], placed[i] = res, shard
		done++
		sh.metrics.placed[shard].Add(1)
		if res.Status == StatusCovered {
			sh.metrics.suppressed.Add(1)
			if shard != homes[i] {
				sh.metrics.crossShard.Add(1)
			}
		}
	}
	for _, slot := range sh.shards {
		slot.mu.Unlock()
	}

	sh.mu.Lock()
	for pos, i := range order {
		if pos >= done {
			delete(sh.placement, ids[i]) // aborted remainder
		} else if j, ok := sh.placement[ids[i]]; ok && j == placePending {
			// See place(): a concurrent migration may already have
			// recorded a newer shard for this item.
			sh.placement[ids[i]] = placed[i]
		}
	}
	sh.mu.Unlock()
	if batchErr != nil {
		return nil, batchErr
	}
	return out, nil
}

// reserveAll claims every batch ID or none.
func (sh *Sharded) reserveAll(ids []ID) error {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	for i, id := range ids {
		if _, dup := sh.placement[id]; dup {
			for _, undo := range ids[:i] {
				delete(sh.placement, undo)
			}
			return fmt.Errorf("%w: %d", ErrDuplicateID, id)
		}
		sh.placement[id] = placePending
	}
	return nil
}

// Unsubscribe removes id, running the owning shard's promotion cascade
// and then the cross-shard merge: each promoted subscription is
// re-offered to the other shards and migrated (covered) into one that
// still covers it. Promoted lists only the subscriptions left active
// after that. The placement lock is held throughout so concurrent
// callers never observe a half-migrated subscription.
func (sh *Sharded) Unsubscribe(id ID) (UnsubscribeResult, error) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	j, ok := sh.placement[id]
	if !ok || j == placePending {
		return UnsubscribeResult{}, nil
	}
	slot := sh.shards[j]
	slot.mu.Lock()
	res, err := slot.st.Unsubscribe(id)
	slot.mu.Unlock()
	delete(sh.placement, id)
	if err != nil {
		return res, err
	}
	sh.metrics.unsubscribes.Add(1)
	if len(sh.shards) > 1 && len(res.Promoted) > 0 {
		kept := make([]ID, 0, len(res.Promoted))
		for i, pid := range res.Promoted {
			migrated, merr := sh.recoverPromoted(j, pid)
			if merr != nil {
				// pid and the un-checked remainder are still active.
				res.Promoted = append(kept, res.Promoted[i:]...)
				return res, merr
			}
			if !migrated {
				kept = append(kept, pid)
			}
		}
		res.Promoted = kept
	}
	sh.metrics.promotions.Add(uint64(len(res.Promoted)))
	return res, nil
}

// recoverPromoted re-offers a just-promoted subscription to the other
// shards. If one still covers it, the covered copy is inserted there
// and the active original retired from its old shard — unless it
// acquired dependents during the cascade, in which case it stays
// active and the copy is withdrawn. Reports whether the migration
// happened. Caller holds sh.mu.
func (sh *Sharded) recoverPromoted(from int, pid ID) (bool, error) {
	fromSlot := sh.shards[from]
	fromSlot.mu.Lock()
	sub, status, ok := fromSlot.st.Get(pid)
	fromSlot.mu.Unlock()
	if !ok || status != StatusActive {
		return false, nil
	}
	for off := 1; off < len(sh.shards); off++ {
		j := (from + off) % len(sh.shards)
		slot := sh.shards[j]
		slot.mu.Lock()
		_, covered, err := slot.st.SubscribeCovered(pid, sub)
		slot.mu.Unlock()
		if err != nil {
			return false, err
		}
		if !covered {
			continue
		}
		// Covered copy now lives in shard j; retire the original.
		fromSlot.mu.Lock()
		removed := fromSlot.st.removeActiveLeaf(pid)
		fromSlot.mu.Unlock()
		if removed {
			sh.placement[pid] = j
			sh.metrics.migrations.Add(1)
			sh.metrics.placed[j].Add(1)
			return true, nil
		}
		// The cascade re-covered something beneath pid: keep it active
		// and withdraw the copy (covered nodes have no dependents, so
		// this is a plain removal).
		slot.mu.Lock()
		_, err = slot.st.Unsubscribe(pid)
		slot.mu.Unlock()
		return false, err
	}
	return false, nil
}

// Match returns the IDs of every stored subscription matching p,
// merged across shards in ascending order. Shards are queried one at
// a time; the result is a consistent snapshot per shard, not across
// shards (concurrent churn lands on one side or the other).
func (sh *Sharded) Match(p subscription.Publication) []ID {
	sh.metrics.matches.Add(1)
	var out []ID
	for _, slot := range sh.shards {
		slot.mu.Lock()
		ids := slot.st.Match(p)
		slot.mu.Unlock()
		out = append(out, ids...)
	}
	slices.Sort(out)
	return slices.Compact(out) // a mid-migration ID can appear twice
}

// Get returns the subscription and status for id.
func (sh *Sharded) Get(id ID) (subscription.Subscription, Status, bool) {
	sh.mu.Lock()
	j, ok := sh.placement[id]
	sh.mu.Unlock()
	if !ok || j == placePending {
		return subscription.Subscription{}, 0, false
	}
	slot := sh.shards[j]
	slot.mu.Lock()
	defer slot.mu.Unlock()
	return slot.st.Get(id)
}

// ActiveIDs returns the sorted IDs of the active set across shards.
func (sh *Sharded) ActiveIDs() []ID {
	var out []ID
	for _, slot := range sh.shards {
		slot.mu.Lock()
		out = append(out, slot.st.activeIDs...)
		slot.mu.Unlock()
	}
	slices.Sort(out)
	return out
}

// Snapshot reports current sizes, per shard and total.
func (sh *Sharded) Snapshot() ShardedSnapshot {
	snap := ShardedSnapshot{Shards: make([]ShardStats, len(sh.shards))}
	for j, slot := range sh.shards {
		slot.mu.Lock()
		s := ShardStats{
			Len:     slot.st.Len(),
			Active:  slot.st.ActiveLen(),
			Covered: slot.st.CoveredLen(),
		}
		slot.mu.Unlock()
		snap.Shards[j] = s
		snap.Len += s.Len
		snap.Active += s.Active
		snap.Covered += s.Covered
	}
	return snap
}

// Metrics reports the cumulative operation counters plus the current
// per-shard occupancy.
func (sh *Sharded) Metrics() ShardedMetrics {
	m := ShardedMetrics{
		Subscribes:           sh.metrics.subscribes.Load(),
		Suppressed:           sh.metrics.suppressed.Load(),
		CrossShardSuppressed: sh.metrics.crossShard.Load(),
		Batches:              sh.metrics.batches.Load(),
		BatchItems:           sh.metrics.batchItems.Load(),
		Unsubscribes:         sh.metrics.unsubscribes.Load(),
		Promotions:           sh.metrics.promotions.Load(),
		Migrations:           sh.metrics.migrations.Load(),
		Matches:              sh.metrics.matches.Load(),
		ShardPlacements:      make([]uint64, len(sh.shards)),
		ShardOccupancy:       make([]int, len(sh.shards)),
	}
	for j, slot := range sh.shards {
		m.ShardPlacements[j] = sh.metrics.placed[j].Load()
		slot.mu.Lock()
		m.ShardOccupancy[j] = slot.st.Len()
		slot.mu.Unlock()
	}
	return m
}
