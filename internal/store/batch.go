package store

// Batch subscribe: arrival bursts re-run the candidate query and the
// conflict table once per subscription, and every activation pays a
// sorted-cache memmove. SubscribeBatch amortizes the burst three ways:
//
//   - the burst is processed in descending box-volume order (ties by
//     ID), so the subscriptions most likely to cover others activate
//     first and the rest fall to the cheap pairwise fast path instead
//     of a full probabilistic check against a grown active set;
//   - the sorted active caches are grown once for the whole burst, so
//     activations never re-allocate mid-batch;
//   - validation (duplicates, satisfiability) happens up front, so the
//     per-item loop is decision + insert only.
//
// Because the processing order is volume-sorted rather than arrival
// order, a burst can reach a different (smaller or equal active set)
// fixed point than the same subscriptions subscribed one at a time in
// arrival order; both are sound. The order is deterministic, so two
// stores fed the same burst through SubscribeBatch agree exactly.

import (
	"cmp"
	"fmt"
	"slices"

	"probsum/internal/core"
	"probsum/internal/subscription"
)

// batchOrder returns the processing order for a burst: indices sorted
// by descending box log-volume, ties broken by ascending ID. Shared by
// Store.SubscribeBatch and Sharded.SubscribeBatch so the two paths
// make identical decision sequences.
func batchOrder(ids []ID, subs []subscription.Subscription) []int {
	measure := make([]float64, len(subs))
	for i, s := range subs {
		var lv float64
		for _, b := range s.Bounds {
			lv += b.LogCount()
		}
		measure[i] = lv
	}
	order := make([]int, len(ids))
	for i := range order {
		order[i] = i
	}
	slices.SortFunc(order, func(a, b int) int {
		if c := cmp.Compare(measure[b], measure[a]); c != 0 {
			return c
		}
		return cmp.Compare(ids[a], ids[b])
	})
	return order
}

// validateBatch rejects length mismatches, duplicate IDs (against the
// store and within the burst) and unsatisfiable subscriptions before
// any state changes.
func (st *Store) validateBatch(ids []ID, subs []subscription.Subscription) error {
	if len(ids) != len(subs) {
		return fmt.Errorf("store: batch of %d ids but %d subscriptions", len(ids), len(subs))
	}
	seen := make(map[ID]struct{}, len(ids))
	for i, id := range ids {
		if _, dup := st.nodes[id]; dup {
			return fmt.Errorf("%w: %d", ErrDuplicateID, id)
		}
		if _, dup := seen[id]; dup {
			return fmt.Errorf("%w: %d (twice in batch)", ErrDuplicateID, id)
		}
		seen[id] = struct{}{}
		if !subs[i].IsSatisfiable() {
			return fmt.Errorf("batch item %d (id %d): %w", i, id, core.ErrUnsatisfiable)
		}
	}
	return nil
}

// growActive reserves room for n more activations so a burst of
// inserts into the sorted caches never re-allocates mid-batch.
func (st *Store) growActive(n int) {
	st.activeIDs = slices.Grow(st.activeIDs, n)
	st.activeSubs = slices.Grow(st.activeSubs, n)
}

// SubscribeBatch subscribes a burst in one call. Results are returned
// in input order; processing happens in batchOrder (descending volume)
// so within-burst coverage is found on the first pass. The whole burst
// is validated before any insertion; a mid-batch checker error (the
// only error class left after validation) aborts the batch with items
// already processed remaining subscribed.
func (st *Store) SubscribeBatch(ids []ID, subs []subscription.Subscription) ([]SubscribeResult, error) {
	if err := st.validateBatch(ids, subs); err != nil {
		return nil, err
	}
	st.growActive(len(ids))
	out := make([]SubscribeResult, len(ids))
	for _, i := range batchOrder(ids, subs) {
		res, err := st.Subscribe(ids[i], subs[i])
		if err != nil {
			return nil, fmt.Errorf("batch item %d (id %d): %w", i, ids[i], err)
		}
		out[i] = res
	}
	return out, nil
}
