package store

// This file implements the per-attribute candidate index that makes
// Subscribe sublinear in the active-set size. The observation (shared
// with index-based subscription aggregation in large-scale systems
// such as Shi et al.'s) is that only active subscriptions whose box
// INTERSECTS the tested subscription s can participate in covering s:
// a disjoint subscription contributes no point of s to the union, so
// removing it changes neither the pairwise nor the group-coverage
// answer. The index therefore reduces the coverage candidate set from
// the whole active set to the rows overlapping s before any conflict
// table is built.
//
// Structure: per attribute, two slices of (bound, id) pairs kept
// sorted — one by each subscription's lower bound, one by its upper
// bound. For a query s and attribute a, the rows intersecting s on a
// are exactly  {i : lo_i <= s.hi}  minus  {i : hi_i < s.lo};  both
// set sizes come from binary searches, so the index can pick the
// cheapest attribute to enumerate (the one whose 1-D pre-filter emits
// the fewest rows) in O(m log k), then verify full box intersection
// only on that shortlist. Insertions and removals are binary-search
// positioned memmoves, keeping the index exactly in sync with the
// active set on subscribe/unsubscribe/promote/demote.

import (
	"cmp"
	"slices"
	"sort"

	"probsum/internal/subscription"
)

// boundEntry pairs one bound value with the active node that owns it.
// Holding the node pointer keeps the enumeration free of map lookups:
// the intersection filter reads n.sub straight off the entry.
type boundEntry struct {
	v int64
	n *node
}

// cmpBoundEntry orders by value, then owner ID, so entries are unique
// and removal can locate the exact element.
func cmpBoundEntry(a, b boundEntry) int {
	if c := cmp.Compare(a.v, b.v); c != 0 {
		return c
	}
	return cmp.Compare(a.n.id, b.n.id)
}

// attrIndex is the per-attribute sorted-bounds index over the active
// set. The zero value is ready; the first add fixes the attribute
// count. Subscriptions with a different attribute count are not
// indexed (the store disables pruning when it holds a mixed-schema
// active set, so the index is never consulted for them).
type attrIndex struct {
	m    int
	byLo [][]boundEntry // byLo[a] sorted ascending by lower bound
	byHi [][]boundEntry // byHi[a] sorted ascending by upper bound
}

// add indexes an active node.
func (ix *attrIndex) add(n *node) {
	if ix.m == 0 {
		ix.m = n.sub.Len()
		ix.byLo = make([][]boundEntry, ix.m)
		ix.byHi = make([][]boundEntry, ix.m)
	}
	if n.sub.Len() != ix.m {
		return
	}
	for a, b := range n.sub.Bounds {
		ix.byLo[a] = insertSorted(ix.byLo[a], boundEntry{v: b.Lo, n: n})
		ix.byHi[a] = insertSorted(ix.byHi[a], boundEntry{v: b.Hi, n: n})
	}
}

// remove un-indexes a previously added node.
func (ix *attrIndex) remove(n *node) {
	if ix.m == 0 || n.sub.Len() != ix.m {
		return
	}
	for a, b := range n.sub.Bounds {
		ix.byLo[a] = removeSorted(ix.byLo[a], boundEntry{v: b.Lo, n: n})
		ix.byHi[a] = removeSorted(ix.byHi[a], boundEntry{v: b.Hi, n: n})
	}
}

func insertSorted(arr []boundEntry, e boundEntry) []boundEntry {
	pos, _ := slices.BinarySearchFunc(arr, e, cmpBoundEntry)
	return slices.Insert(arr, pos, e)
}

func removeSorted(arr []boundEntry, e boundEntry) []boundEntry {
	pos, ok := slices.BinarySearchFunc(arr, e, cmpBoundEntry)
	if !ok {
		return arr
	}
	return slices.Delete(arr, pos, pos+1)
}

// countLE returns how many entries have value <= x.
func countLE(arr []boundEntry, x int64) int {
	return sort.Search(len(arr), func(i int) bool { return arr[i].v > x })
}

// firstGE returns the index of the first entry with value >= x.
func firstGE(arr []boundEntry, x int64) int {
	return sort.Search(len(arr), func(i int) bool { return arr[i].v >= x })
}

// overlapCandidates appends to out the nodes whose boxes intersect s,
// found through the cheapest 1-D pre-filter, and returns the extended
// slice (unsorted) with ok=true. When even the best shortlist keeps at
// least half the set, pruning cannot pay for its own enumeration — the
// function returns ok=false and the caller scans the full active set,
// whose early-exit coverage checks are already cheap on such dense
// workloads. s must have the index's attribute count.
func (ix *attrIndex) overlapCandidates(s subscription.Subscription, out []*node) ([]*node, bool) {
	k := 0
	if ix.m > 0 {
		k = len(ix.byLo[0])
	}
	if k == 0 {
		return out, true
	}
	// Pick the attribute and side whose 1-D shortlist is smallest.
	bestAttr, bestLowSide, bestCost := 0, true, k+1
	for a := 0; a < ix.m; a++ {
		b := s.Bounds[a]
		if nLo := countLE(ix.byLo[a], b.Hi); nLo < bestCost {
			bestAttr, bestLowSide, bestCost = a, true, nLo
		}
		if nHi := k - firstGE(ix.byHi[a], b.Lo); nHi < bestCost {
			bestAttr, bestLowSide, bestCost = a, false, nHi
		}
	}
	if 2*bestCost >= k {
		return out, false
	}
	var shortlist []boundEntry
	if bestLowSide {
		shortlist = ix.byLo[bestAttr][:bestCost]
	} else {
		arr := ix.byHi[bestAttr]
		shortlist = arr[len(arr)-bestCost:]
	}
	// Inline the box-intersection filter: the shortlist can be an
	// order of magnitude larger than the survivor set, so the per-entry
	// test must be a handful of compares with an early exit, not a
	// method call per attribute.
	sb := s.Bounds
	for _, e := range shortlist {
		eb := e.n.sub.Bounds
		hit := true
		for a := range sb {
			if eb[a].Lo > sb[a].Hi || eb[a].Hi < sb[a].Lo {
				hit = false
				break
			}
		}
		if hit {
			out = append(out, e.n)
		}
	}
	return out, true
}
