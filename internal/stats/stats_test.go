package stats

import (
	"math"
	"testing"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMean(t *testing.T) {
	if !almost(Mean([]float64{1, 2, 3, 4}), 2.5) {
		t.Error("mean wrong")
	}
	if Mean(nil) != 0 {
		t.Error("empty mean should be 0")
	}
}

func TestStdDev(t *testing.T) {
	if !almost(StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9}), 2.138089935299395) {
		t.Errorf("stddev = %g", StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9}))
	}
	if StdDev([]float64{5}) != 0 {
		t.Error("single-sample stddev should be 0")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	tests := []struct {
		q    float64
		want float64
	}{
		{q: 0, want: 1},
		{q: 1, want: 4},
		{q: 0.5, want: 2.5},
		{q: 0.25, want: 1.75},
		{q: -1, want: 1},
		{q: 2, want: 4},
	}
	for _, tc := range tests {
		if got := Quantile(xs, tc.q); !almost(got, tc.want) {
			t.Errorf("Quantile(%g) = %g, want %g", tc.q, got, tc.want)
		}
	}
	if Quantile(nil, 0.5) != 0 {
		t.Error("empty quantile should be 0")
	}
	// Input must not be mutated.
	if xs[0] != 4 {
		t.Error("Quantile sorted its input")
	}
}

func TestRatio(t *testing.T) {
	if !almost(Ratio(1, 4), 0.25) {
		t.Error("ratio wrong")
	}
	if Ratio(1, 0) != 0 {
		t.Error("division by zero should yield 0")
	}
}

func TestMinMax(t *testing.T) {
	min, max := MinMax([]float64{3, -1, 7, 0})
	if min != -1 || max != 7 {
		t.Errorf("MinMax = %g, %g", min, max)
	}
	min, max = MinMax(nil)
	if min != 0 || max != 0 {
		t.Error("empty MinMax should be 0,0")
	}
}
