// Package stats provides the small set of summary statistics the
// experiment harness reports: means, standard deviations, quantiles,
// and safe ratios.
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the sample standard deviation (n-1 denominator), or 0
// for fewer than two samples.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	mean := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - mean
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(xs)-1))
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics. It returns 0 for an empty
// slice and does not modify its input.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Ratio returns num/den, or 0 when den is 0.
func Ratio(num, den float64) float64 {
	if den == 0 {
		return 0
	}
	return num / den
}

// MinMax returns the smallest and largest values, or (0, 0) for an
// empty slice.
func MinMax(xs []float64) (min, max float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max
}
