package persist

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func replayAll(t *testing.T, s Store) ([][]byte, ReplayStats) {
	t.Helper()
	var recs [][]byte
	stats, err := s.Replay(func(rec []byte) error {
		recs = append(recs, append([]byte(nil), rec...))
		return nil
	})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	return recs, stats
}

func TestDirStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]byte{[]byte("alpha"), []byte(""), bytes.Repeat([]byte{0xAB}, 5000)}
	for _, r := range want {
		if err := s.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	recs, stats := replayAll(t, s2)
	if stats.Records != len(want) || stats.Truncated {
		t.Fatalf("stats = %+v, want %d records untruncated", stats, len(want))
	}
	for i := range want {
		if !bytes.Equal(recs[i], want[i]) {
			t.Fatalf("record %d = %q, want %q", i, recs[i], want[i])
		}
	}
	// Appending after a replay must extend, not clobber.
	if err := s2.Append([]byte("post")); err != nil {
		t.Fatal(err)
	}
	if err := s2.Sync(); err != nil {
		t.Fatal(err)
	}
	recs, _ = replayAll(t, s2)
	if len(recs) != 4 || string(recs[3]) != "post" {
		t.Fatalf("after append got %d records, last %q", len(recs), recs[len(recs)-1])
	}
}

func TestDirStoreTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []string{"one", "two", "three"} {
		if err := s.Append([]byte(r)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(dir, journalName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name  string
		bytes []byte
	}{
		{"torn header", append(append([]byte(nil), data...), 0x05, 0x00)},
		{"torn payload", func() []byte {
			d := append([]byte(nil), data...)
			return appendRecord(d, []byte("tail"))[:len(data)+recHeaderLen+2]
		}()},
		{"corrupt crc", func() []byte {
			d := appendRecord(append([]byte(nil), data...), []byte("tail"))
			d[len(d)-1] ^= 0xFF
			return d
		}()},
		{"mid-file corruption drops rest", func() []byte {
			d := appendRecord(append([]byte(nil), data...), []byte("tail"))
			// Flip a byte of record "two"'s payload: three and tail must
			// also be dropped because scanning cannot resync.
			d[len(journalMagic)+recHeaderLen+3+recHeaderLen] ^= 0xFF
			return d
		}()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := os.WriteFile(path, tc.bytes, 0o644); err != nil {
				t.Fatal(err)
			}
			s, err := Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			recs, stats := replayAll(t, s)
			wantRecs := 3
			if tc.name == "mid-file corruption drops rest" {
				wantRecs = 1
			}
			if len(recs) != wantRecs {
				t.Fatalf("recovered %d records, want %d", len(recs), wantRecs)
			}
			if !stats.Truncated || stats.DroppedBytes == 0 {
				t.Fatalf("stats = %+v, want truncation reported", stats)
			}
			// The file itself must have been truncated to the valid
			// prefix so future appends are clean.
			onDisk, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if len(onDisk) >= len(tc.bytes) {
				t.Fatalf("journal not truncated: %d bytes on disk", len(onDisk))
			}
			if err := s.Append([]byte("fresh")); err != nil {
				t.Fatal(err)
			}
			if err := s.Sync(); err != nil {
				t.Fatal(err)
			}
			recs, stats = replayAll(t, s)
			if len(recs) != wantRecs+1 || string(recs[len(recs)-1]) != "fresh" {
				t.Fatalf("append after truncation: got %d records %q", len(recs), recs)
			}
			// Restore the full valid journal for the next subcase.
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestDirStoreRejectsForeignFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, journalName)
	if err := os.WriteFile(path, []byte("definitely not a journal"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil {
		t.Fatal("Open accepted a non-journal file")
	}
}

func TestDirStoreTornMagicRecovers(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, journalName)
	if err := os.WriteFile(path, journalMagic[:3], 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Open(dir)
	if err != nil {
		t.Fatalf("Open on torn magic: %v", err)
	}
	defer s.Close()
	recs, stats := replayAll(t, s)
	if len(recs) != 0 || !stats.Truncated {
		t.Fatalf("got %d records, stats %+v", len(recs), stats)
	}
}

func TestDirStoreSnapshotCompactsJournal(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append([]byte("pre")); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteSnapshot([]byte("state-v1")); err != nil {
		t.Fatal(err)
	}
	if err := s.Append([]byte("post")); err != nil {
		t.Fatal(err)
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	snap, ok, err := s2.LoadSnapshot()
	if err != nil || !ok || string(snap) != "state-v1" {
		t.Fatalf("snapshot = %q ok=%v err=%v", snap, ok, err)
	}
	recs, _ := replayAll(t, s2)
	if len(recs) != 1 || string(recs[0]) != "post" {
		t.Fatalf("journal after snapshot = %q, want only post", recs)
	}
}

func TestDirStoreCorruptSnapshotIsAnError(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.WriteSnapshot([]byte("good")); err != nil {
		t.Fatal(err)
	}
	s.Close()
	path := filepath.Join(dir, snapshotName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if _, _, err := s2.LoadSnapshot(); err == nil {
		t.Fatal("corrupt snapshot loaded without error")
	}
}

func TestMemStoreCrashDropsUnsyncedTail(t *testing.T) {
	s := NewMemStore()
	if err := s.Append([]byte("a")); err != nil {
		t.Fatal(err)
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := s.Append([]byte("b")); err != nil {
		t.Fatal(err)
	}
	s.Crash()
	recs, _ := replayAll(t, s)
	if len(recs) != 1 || string(recs[0]) != "a" {
		t.Fatalf("after crash: %q, want only the synced record", recs)
	}
	if s.Crashes() != 1 {
		t.Fatalf("crashes = %d", s.Crashes())
	}

	// Snapshot implies durability; crash right after must keep it.
	if err := s.WriteSnapshot([]byte("snap")); err != nil {
		t.Fatal(err)
	}
	if err := s.Append([]byte("c")); err != nil {
		t.Fatal(err)
	}
	s.Crash()
	snap, ok, _ := s.LoadSnapshot()
	if !ok || string(snap) != "snap" {
		t.Fatalf("snapshot lost: %q ok=%v", snap, ok)
	}
	recs, _ = replayAll(t, s)
	if len(recs) != 0 {
		t.Fatalf("unsynced post-snapshot record survived: %q", recs)
	}
}

func TestScanJournalNeverPanics(t *testing.T) {
	inputs := [][]byte{
		nil,
		{0x00},
		journalMagic[:],
		append(append([]byte(nil), journalMagic[:]...), 0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0),
	}
	for _, in := range inputs {
		if _, err := ScanJournal(in, func([]byte) error { return nil }); err != nil {
			t.Fatalf("ScanJournal(%x): %v", in, err)
		}
	}
}
