// Package persist gives a broker crash-durable state: an append-only
// journal of CRC-framed records with torn-tail recovery, plus a
// snapshot that is replaced atomically and truncates the journal it
// compacts. The package stores opaque byte records — what a record
// means (a subscription arrival, a neighbor attach, a dedup entry) is
// the caller's business, which keeps persist free of import cycles
// with the broker and wire layers.
//
// Durability model: Append buffers a record into the journal file;
// Sync makes everything appended so far survive a crash. A crash
// between Append and Sync may lose the unsynced tail — and may leave
// a torn, partially written record at the end of the file. Open scans
// the journal, keeps the longest valid prefix, and truncates the rest,
// so recovery always replays a clean sequence of records.
//
// WriteSnapshot is the compaction point: the snapshot payload is
// written to a temp file, fsynced, and renamed over the previous
// snapshot before the journal is reset. If the process dies between
// the rename and the reset, recovery sees the new snapshot plus the
// old journal records — callers must therefore apply journal records
// idempotently (the broker replay path tolerates re-applied
// subscriptions by construction).
package persist

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// File layout inside a DirStore directory.
const (
	journalName  = "journal.wal"
	snapshotName = "snapshot.bin"
	snapshotTemp = "snapshot.tmp"
)

// Magic prefixes distinguish the two files (and reject files that are
// not ours at all). Both are 8 bytes so the record scanner can treat
// "shorter than magic" uniformly as an empty store.
var (
	journalMagic  = [8]byte{'P', 'S', 'U', 'M', 'W', 'A', 'L', '1'}
	snapshotMagic = [8]byte{'P', 'S', 'U', 'M', 'S', 'N', 'P', '1'}
)

// Record framing: 4-byte little-endian payload length, 4-byte IEEE
// CRC32 of the payload, then the payload bytes. The CRC covers the
// payload only; a corrupted length field is caught either by the
// bounds check or by the CRC of whatever bytes it points at.
const (
	recHeaderLen = 8
	// MaxRecord bounds a single record. It matches the wire codec's
	// payload cap: anything larger is a corrupt length field, not data.
	MaxRecord = 16 << 20
)

// ReplayStats reports what a journal scan found.
type ReplayStats struct {
	// Records is the number of valid records replayed.
	Records int
	// Truncated reports that the journal ended in a torn or corrupt
	// record (or a bad magic) and the tail was discarded.
	Truncated bool
	// DroppedBytes counts the bytes discarded after the last valid
	// record.
	DroppedBytes int64
}

// Store is the persistence surface a broker journal runs against.
// Implementations must be safe for use from a single goroutine; the
// caller (pubsub.BrokerJournal) serializes access.
type Store interface {
	// LoadSnapshot returns the current snapshot payload, or ok=false
	// when no snapshot has ever been written.
	LoadSnapshot() (payload []byte, ok bool, err error)
	// WriteSnapshot atomically replaces the snapshot and resets the
	// journal: records appended before the call are compacted into the
	// snapshot and will not be replayed again.
	WriteSnapshot(payload []byte) error
	// Append adds one record to the journal. The record is not crash
	// durable until Sync returns.
	Append(rec []byte) error
	// Sync makes all appended records crash durable.
	Sync() error
	// Replay calls fn for every journal record in append order. The
	// slice passed to fn is only valid during the call.
	Replay(fn func(rec []byte) error) (ReplayStats, error)
	// Close releases resources. The store must not be used after.
	Close() error
}

// appendRecord frames one record into buf.
func appendRecord(buf []byte, payload []byte) []byte {
	var hdr [recHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	buf = append(buf, hdr[:]...)
	return append(buf, payload...)
}

// scanRecords walks framed records in data (which excludes any file
// magic), calling fn for each valid one, and returns the length of the
// valid prefix. Scanning stops — without error — at the first torn or
// corrupt record: a truncated header, a length beyond the remaining
// bytes or MaxRecord, or a CRC mismatch. An error from fn aborts the
// scan and is returned as-is.
func scanRecords(data []byte, fn func(rec []byte) error) (validLen int, stats ReplayStats, err error) {
	off := 0
	for {
		if len(data)-off < recHeaderLen {
			break
		}
		n := int(binary.LittleEndian.Uint32(data[off : off+4]))
		sum := binary.LittleEndian.Uint32(data[off+4 : off+8])
		if n > MaxRecord || n > len(data)-off-recHeaderLen {
			break
		}
		payload := data[off+recHeaderLen : off+recHeaderLen+n]
		if crc32.ChecksumIEEE(payload) != sum {
			break
		}
		if fn != nil {
			if err := fn(payload); err != nil {
				return off, stats, err
			}
		}
		off += recHeaderLen + n
		stats.Records++
	}
	if off < len(data) {
		stats.Truncated = true
		stats.DroppedBytes = int64(len(data) - off)
	}
	return off, stats, nil
}

// ScanJournal replays a raw journal image (magic included) from
// memory: fn is called for every valid record and the stats report
// how much tail, if any, was unrecoverable. It never panics on
// corrupt input — a bad or missing magic simply means zero records.
// This is the entry point the log-replay fuzzer drives.
func ScanJournal(data []byte, fn func(rec []byte) error) (ReplayStats, error) {
	body, ok := journalBody(data)
	if !ok {
		return ReplayStats{Truncated: len(data) > 0, DroppedBytes: int64(len(data))}, nil
	}
	_, stats, err := scanRecords(body, fn)
	return stats, err
}

// journalBody strips and validates the journal magic.
func journalBody(data []byte) ([]byte, bool) {
	if len(data) < len(journalMagic) {
		return nil, false
	}
	for i, b := range journalMagic {
		if data[i] != b {
			return nil, false
		}
	}
	return data[len(journalMagic):], true
}

// DirStore persists to a directory: journal.wal plus snapshot.bin.
type DirStore struct {
	mu  sync.Mutex
	dir string
	f   *os.File // journal, positioned at its valid end
	// openStats captures what the opening scan found, surfaced through
	// the first Replay so recovery can report torn-tail truncation.
	openStats ReplayStats
}

// Open opens (creating if needed) the persistent store in dir. The
// journal is scanned for its longest valid prefix and physically
// truncated there, so later appends never follow garbage.
func Open(dir string) (*DirStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}
	path := filepath.Join(dir, journalName)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}
	s := &DirStore{dir: dir, f: f}
	if err := s.recoverJournal(); err != nil {
		f.Close()
		return nil, err
	}
	return s, nil
}

// recoverJournal validates the magic, finds the longest valid record
// prefix, and truncates the file to it.
func (s *DirStore) recoverJournal() error {
	data, err := io.ReadAll(s.f)
	if err != nil {
		return fmt.Errorf("persist: read journal: %w", err)
	}
	if len(data) == 0 {
		if _, err := s.f.Write(journalMagic[:]); err != nil {
			return fmt.Errorf("persist: init journal: %w", err)
		}
		return s.f.Sync()
	}
	body, ok := journalBody(data)
	if !ok {
		// Torn inside the magic itself (a crash during init), or a file
		// that is not ours. A valid prefix of the magic is recoverable —
		// rewrite it; anything else is refused rather than clobbered.
		if isMagicPrefix(data) {
			s.openStats = ReplayStats{Truncated: true, DroppedBytes: int64(len(data))}
			return s.resetJournal()
		}
		return fmt.Errorf("persist: %s is not a journal", filepath.Join(s.dir, journalName))
	}
	validLen, stats, _ := scanRecords(body, nil)
	s.openStats = stats
	end := int64(len(journalMagic) + validLen)
	if end < int64(len(data)) {
		if err := s.f.Truncate(end); err != nil {
			return fmt.Errorf("persist: truncate torn tail: %w", err)
		}
		if err := s.f.Sync(); err != nil {
			return err
		}
	}
	_, err = s.f.Seek(end, io.SeekStart)
	return err
}

func isMagicPrefix(data []byte) bool {
	if len(data) >= len(journalMagic) {
		return false
	}
	for i := range data {
		if data[i] != journalMagic[i] {
			return false
		}
	}
	return true
}

// resetJournal truncates the journal to just its magic.
func (s *DirStore) resetJournal() error {
	if err := s.f.Truncate(0); err != nil {
		return fmt.Errorf("persist: reset journal: %w", err)
	}
	if _, err := s.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	if _, err := s.f.Write(journalMagic[:]); err != nil {
		return fmt.Errorf("persist: reset journal: %w", err)
	}
	return s.f.Sync()
}

// LoadSnapshot reads and validates snapshot.bin.
func (s *DirStore) LoadSnapshot() ([]byte, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	data, err := os.ReadFile(filepath.Join(s.dir, snapshotName))
	if errors.Is(err, os.ErrNotExist) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("persist: read snapshot: %w", err)
	}
	payload, err := decodeSnapshot(data)
	if err != nil {
		return nil, false, err
	}
	return payload, true, nil
}

// decodeSnapshot validates magic + single-record framing.
func decodeSnapshot(data []byte) ([]byte, error) {
	if len(data) < len(snapshotMagic)+recHeaderLen {
		return nil, errors.New("persist: snapshot too short")
	}
	for i, b := range snapshotMagic {
		if data[i] != b {
			return nil, errors.New("persist: bad snapshot magic")
		}
	}
	body := data[len(snapshotMagic):]
	n := int(binary.LittleEndian.Uint32(body[0:4]))
	sum := binary.LittleEndian.Uint32(body[4:8])
	if n != len(body)-recHeaderLen {
		return nil, errors.New("persist: snapshot length mismatch")
	}
	payload := body[recHeaderLen:]
	if crc32.ChecksumIEEE(payload) != sum {
		return nil, errors.New("persist: snapshot checksum mismatch")
	}
	return payload, nil
}

// WriteSnapshot atomically replaces the snapshot, then resets the
// journal it compacts.
func (s *DirStore) WriteSnapshot(payload []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	buf := make([]byte, 0, len(snapshotMagic)+recHeaderLen+len(payload))
	buf = append(buf, snapshotMagic[:]...)
	buf = appendRecord(buf, payload)
	tmp := filepath.Join(s.dir, snapshotTemp)
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("persist: snapshot temp: %w", err)
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		return fmt.Errorf("persist: write snapshot: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, snapshotName)); err != nil {
		return fmt.Errorf("persist: publish snapshot: %w", err)
	}
	if err := syncDir(s.dir); err != nil {
		return err
	}
	return s.resetJournal()
}

// Append frames one record onto the journal.
func (s *DirStore) Append(rec []byte) error {
	if len(rec) > MaxRecord {
		return fmt.Errorf("persist: record of %d bytes exceeds cap", len(rec))
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	_, err := s.f.Write(appendRecord(nil, rec))
	if err != nil {
		return fmt.Errorf("persist: append: %w", err)
	}
	return nil
}

// Sync fsyncs the journal.
func (s *DirStore) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.f.Sync()
}

// Replay re-reads the journal and calls fn per record. The first call
// after Open also carries the torn-tail stats the opening scan found.
func (s *DirStore) Replay(fn func(rec []byte) error) (ReplayStats, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, err := s.f.Seek(0, io.SeekStart); err != nil {
		return ReplayStats{}, err
	}
	data, err := io.ReadAll(s.f)
	if err != nil {
		return ReplayStats{}, fmt.Errorf("persist: read journal: %w", err)
	}
	body, ok := journalBody(data)
	if !ok {
		return ReplayStats{}, errors.New("persist: journal lost its magic")
	}
	_, stats, err := scanRecords(body, fn)
	if err != nil {
		return stats, err
	}
	stats.Truncated = stats.Truncated || s.openStats.Truncated
	stats.DroppedBytes += s.openStats.DroppedBytes
	if _, err := s.f.Seek(0, io.SeekEnd); err != nil {
		return stats, err
	}
	return stats, nil
}

// Close closes the journal file.
func (s *DirStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.f.Close()
}

// syncDir fsyncs a directory so a rename inside it is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	// Some filesystems refuse fsync on directories; a rename that
	// reaches the directory entry without it still recovers correctly
	// (the old snapshot plus full journal), so the error is best-effort.
	_ = d.Sync()
	return nil
}

// MemStore is an in-memory Store for tests and the simnet chaos
// harness. It models the durability boundary exactly: records
// appended after the last Sync are lost by Crash, the way a real
// crash loses an unsynced journal tail.
type MemStore struct {
	mu       sync.Mutex
	snapshot []byte
	hasSnap  bool
	records  [][]byte
	synced   int // records[:synced] survive a crash
	crashes  int
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore { return &MemStore{} }

// LoadSnapshot returns the current snapshot payload.
func (s *MemStore) LoadSnapshot() ([]byte, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.hasSnap {
		return nil, false, nil
	}
	out := make([]byte, len(s.snapshot))
	copy(out, s.snapshot)
	return out, true, nil
}

// WriteSnapshot replaces the snapshot and compacts away the journal.
func (s *MemStore) WriteSnapshot(payload []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.snapshot = append([]byte(nil), payload...)
	s.hasSnap = true
	s.records = nil
	s.synced = 0
	return nil
}

// Append adds a record to the (unsynced) journal tail.
func (s *MemStore) Append(rec []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.records = append(s.records, append([]byte(nil), rec...))
	return nil
}

// Sync marks every appended record crash-survivable.
func (s *MemStore) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.synced = len(s.records)
	return nil
}

// Replay walks the journal records in order.
func (s *MemStore) Replay(fn func(rec []byte) error) (ReplayStats, error) {
	s.mu.Lock()
	recs := s.records
	s.mu.Unlock()
	var stats ReplayStats
	for _, r := range recs {
		if err := fn(r); err != nil {
			return stats, err
		}
		stats.Records++
	}
	return stats, nil
}

// Close is a no-op.
func (s *MemStore) Close() error { return nil }

// Crash simulates a kill -9: every record appended since the last
// Sync (or snapshot) vanishes, exactly as an unsynced file tail would.
func (s *MemStore) Crash() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.records = s.records[:s.synced]
	s.crashes++
}

// Crashes reports how many times Crash has been called (chaos
// bookkeeping).
func (s *MemStore) Crashes() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.crashes
}

var (
	_ Store = (*DirStore)(nil)
	_ Store = (*MemStore)(nil)
)
