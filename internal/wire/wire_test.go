package wire

import (
	"testing"
	"time"

	"probsum/internal/broker"
	"probsum/internal/interval"
	"probsum/internal/store"
	"probsum/internal/subscription"
	"probsum/subsume"
)

func box(lo1, hi1, lo2, hi2 int64) subscription.Subscription {
	return subscription.New(interval.New(lo1, hi1), interval.New(lo2, hi2))
}

func startServer(t *testing.T, id string, policy store.Policy) *Server {
	t.Helper()
	b, err := broker.New(id, policy, broker.WithSeed(3),
		broker.WithTableOptions(subsume.WithTableChecker(
			subsume.WithErrorProbability(1e-9),
			subsume.WithMaxTrials(10_000))))
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewServer(b, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// recvWithTimeout wraps Client.Recv with a deadline so a broken
// routing path fails the test instead of hanging it.
func recvWithTimeout(t *testing.T, c *Client, d time.Duration) (broker.Message, bool) {
	t.Helper()
	type result struct {
		msg broker.Message
		err error
	}
	ch := make(chan result, 1)
	go func() {
		m, err := c.Recv()
		ch <- result{m, err}
	}()
	select {
	case r := <-ch:
		if r.err != nil {
			t.Fatalf("recv: %v", r.err)
		}
		return r.msg, true
	case <-time.After(d):
		return broker.Message{}, false
	}
}

func TestSingleBrokerLoopback(t *testing.T) {
	srv := startServer(t, "B1", store.PolicyPairwise)
	sub, err := Dial(srv.Addr().String(), "alice")
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	pub, err := Dial(srv.Addr().String(), "bob")
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()

	if err := sub.Subscribe("s1", box(0, 50, 0, 50)); err != nil {
		t.Fatal(err)
	}
	// Give the subscription time to register before publishing.
	time.Sleep(50 * time.Millisecond)
	if err := pub.Publish("p1", subscription.NewPublication(25, 25)); err != nil {
		t.Fatal(err)
	}
	msg, ok := recvWithTimeout(t, sub, 2*time.Second)
	if !ok {
		t.Fatal("notification did not arrive")
	}
	if msg.Kind != broker.MsgNotify || msg.SubID != "s1" || msg.PubID != "p1" {
		t.Fatalf("notification = %+v", msg)
	}
}

func TestTwoBrokerOverlay(t *testing.T) {
	s1 := startServer(t, "B1", store.PolicyPairwise)
	s2 := startServer(t, "B2", store.PolicyPairwise)
	// Bidirectional overlay link: each side dials the other.
	if err := s1.ConnectPeer("B2", s2.Addr().String()); err != nil {
		t.Fatal(err)
	}
	if err := s2.ConnectPeer("B1", s1.Addr().String()); err != nil {
		t.Fatal(err)
	}

	sub, err := Dial(s1.Addr().String(), "alice")
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	pub, err := Dial(s2.Addr().String(), "bob")
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()

	if err := sub.Subscribe("s1", box(10, 20, 10, 20)); err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond)
	if err := pub.Publish("p1", subscription.NewPublication(15, 15)); err != nil {
		t.Fatal(err)
	}
	if _, ok := recvWithTimeout(t, sub, 2*time.Second); !ok {
		t.Fatal("cross-broker notification did not arrive")
	}

	// Unsubscribe and verify silence.
	if err := sub.Unsubscribe("s1"); err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond)
	if err := pub.Publish("p2", subscription.NewPublication(15, 15)); err != nil {
		t.Fatal(err)
	}
	if msg, ok := recvWithTimeout(t, sub, 300*time.Millisecond); ok {
		t.Fatalf("unexpected delivery after unsubscribe: %+v", msg)
	}
}

func TestCoverageSuppressionOverTCP(t *testing.T) {
	s1 := startServer(t, "B1", store.PolicyPairwise)
	s2 := startServer(t, "B2", store.PolicyPairwise)
	if err := s1.ConnectPeer("B2", s2.Addr().String()); err != nil {
		t.Fatal(err)
	}
	if err := s2.ConnectPeer("B1", s1.Addr().String()); err != nil {
		t.Fatal(err)
	}
	sub, err := Dial(s1.Addr().String(), "alice")
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	if err := sub.Subscribe("big", box(0, 100, 0, 100)); err != nil {
		t.Fatal(err)
	}
	if err := sub.Subscribe("small", box(40, 60, 40, 60)); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		m := s1.Broker().Metrics()
		if m.SubsSuppressed >= 1 && m.SubsForwarded == 1 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("suppression not observed: %+v", s1.Broker().Metrics())
}

func TestDialErrors(t *testing.T) {
	if _, err := Dial("127.0.0.1:1", "x"); err == nil {
		t.Error("dial to closed port succeeded")
	}
	srv := startServer(t, "B1", store.PolicyNone)
	if err := srv.ConnectPeer("ghost", "127.0.0.1:1"); err == nil {
		t.Error("peer dial to closed port succeeded")
	}
}
