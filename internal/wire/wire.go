// Package wire runs brokers over real TCP connections using
// newline-delimited JSON frames, turning the pure state machine of
// package broker into a deployable daemon. Peer brokers hold one
// outbound connection per direction (A dials B and B dials A), so no
// connection multiplexing is needed; clients hold a single duplex
// connection on which notifications are pushed.
//
// The frame protocol: the first frame on any connection is a hello
// identifying the sender; every later frame carries one
// broker.Message. Handler execution is serialized per server, so the
// broker state machine needs no internal locking.
package wire

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"

	"probsum/internal/broker"
	"probsum/internal/subscription"
)

// Frame is the on-the-wire envelope.
type Frame struct {
	// Hello identifies the sender on the first frame of a connection.
	Hello string `json:"hello,omitempty"`
	// Client marks a hello as coming from a client (not a broker).
	Client bool `json:"client,omitempty"`
	// Msg carries one protocol message on subsequent frames.
	Msg *broker.Message `json:"msg,omitempty"`
}

// Server hosts one broker behind a TCP listener.
type Server struct {
	b  *broker.Broker
	ln net.Listener

	mu    sync.Mutex // serializes broker.Handle and peer map access
	peers map[string]*json.Encoder
	conns map[string]net.Conn

	wg     sync.WaitGroup
	closed chan struct{}
}

// NewServer starts listening on addr (e.g. "127.0.0.1:0") for the
// given broker. The accept loop starts immediately.
func NewServer(b *broker.Broker, addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("wire: listen %s: %w", addr, err)
	}
	s := &Server{
		b:      b,
		ln:     ln,
		peers:  make(map[string]*json.Encoder),
		conns:  make(map[string]net.Conn),
		closed: make(chan struct{}),
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound listener address.
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// Broker exposes the underlying state machine (read-only use such as
// metrics; all mutation goes through connections).
func (s *Server) Broker() *broker.Broker { return s.b }

// ConnectPeer dials a neighbor broker at addr, registers the overlay
// link, and starts relaying. The peer learns our identity from the
// hello frame; for a bidirectional overlay the peer must dial back
// (its own ConnectPeer), which the hello also enables implicitly: an
// inbound broker hello auto-registers the neighbor link.
func (s *Server) ConnectPeer(id, addr string) error {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return fmt.Errorf("wire: dial peer %s at %s: %w", id, addr, err)
	}
	enc := json.NewEncoder(conn)
	if err := enc.Encode(Frame{Hello: s.b.ID()}); err != nil {
		conn.Close()
		return fmt.Errorf("wire: hello to %s: %w", id, err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.b.ConnectNeighbor(id); err != nil {
		conn.Close()
		return err
	}
	if old, ok := s.conns["peer:"+id]; ok {
		old.Close()
	}
	s.peers[id] = enc
	s.conns["peer:"+id] = conn
	return nil
}

// acceptLoop admits connections until the listener closes.
func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			select {
			case <-s.closed:
				return
			default:
			}
			if errors.Is(err, net.ErrClosed) {
				return
			}
			continue
		}
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

// serveConn reads the hello, registers the port, then feeds messages
// into the broker.
func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer conn.Close()
	dec := json.NewDecoder(conn)
	var hello Frame
	if err := dec.Decode(&hello); err != nil || hello.Hello == "" {
		return
	}
	from := hello.Hello
	enc := json.NewEncoder(conn)

	s.mu.Lock()
	if hello.Client {
		s.b.AttachClient(from)
		if old, ok := s.conns["client:"+from]; ok {
			old.Close()
		}
		s.peers[from] = enc
		s.conns["client:"+from] = conn
	} else {
		if err := s.b.ConnectNeighbor(from); err != nil {
			s.mu.Unlock()
			return
		}
		// Track the inbound peer connection so Close can unblock this
		// goroutine; without this, two servers closing in opposite
		// order deadlock on each other's reader goroutines.
		if old, ok := s.conns["in:"+from]; ok {
			old.Close()
		}
		s.conns["in:"+from] = conn
	}
	s.mu.Unlock()

	for {
		var fr Frame
		if err := dec.Decode(&fr); err != nil {
			return
		}
		if fr.Msg == nil {
			continue
		}
		if err := s.dispatch(from, *fr.Msg); err != nil {
			return
		}
	}
}

// dispatch runs one message through the broker and fans out the
// results to connected ports. Unreachable ports are skipped: TCP
// overlays tolerate transient peer absence exactly like the paper's
// lossy environments.
func (s *Server) dispatch(from string, msg broker.Message) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	outs, err := s.b.Handle(from, msg)
	if err != nil {
		return err
	}
	for _, o := range outs {
		if enc, ok := s.peers[o.To]; ok {
			// Encode errors mean the peer vanished; drop the message.
			_ = enc.Encode(Frame{Msg: &o.Msg})
		}
	}
	return nil
}

// Close shuts the listener and every connection down and waits for
// all connection goroutines to exit.
func (s *Server) Close() error {
	close(s.closed)
	err := s.ln.Close()
	s.mu.Lock()
	for _, c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

// Client is a subscriber/publisher endpoint over TCP.
type Client struct {
	name string
	conn net.Conn
	enc  *json.Encoder
	dec  *json.Decoder
	mu   sync.Mutex // serializes writes
}

// Dial connects a client to a broker server.
func Dial(addr, name string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("wire: dial %s: %w", addr, err)
	}
	c := &Client{name: name, conn: conn, enc: json.NewEncoder(conn), dec: json.NewDecoder(conn)}
	if err := c.enc.Encode(Frame{Hello: name, Client: true}); err != nil {
		conn.Close()
		return nil, fmt.Errorf("wire: hello: %w", err)
	}
	return c, nil
}

// send encodes one message.
func (c *Client) send(msg broker.Message) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.enc.Encode(Frame{Msg: &msg}); err != nil {
		return fmt.Errorf("wire: send: %w", err)
	}
	return nil
}

// Subscribe announces a subscription under a globally unique ID.
func (c *Client) Subscribe(subID string, s subscription.Subscription) error {
	return c.send(broker.Message{Kind: broker.MsgSubscribe, SubID: subID, Sub: s})
}

// Unsubscribe cancels a subscription.
func (c *Client) Unsubscribe(subID string) error {
	return c.send(broker.Message{Kind: broker.MsgUnsubscribe, SubID: subID})
}

// Publish sends a publication.
func (c *Client) Publish(pubID string, p subscription.Publication) error {
	return c.send(broker.Message{Kind: broker.MsgPublish, PubID: pubID, Pub: p})
}

// Recv blocks until the next notification arrives.
func (c *Client) Recv() (broker.Message, error) {
	for {
		var fr Frame
		if err := c.dec.Decode(&fr); err != nil {
			return broker.Message{}, fmt.Errorf("wire: recv: %w", err)
		}
		if fr.Msg != nil {
			return *fr.Msg, nil
		}
	}
}

// Close terminates the connection.
func (c *Client) Close() error { return c.conn.Close() }
