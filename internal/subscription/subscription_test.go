package subscription

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"probsum/internal/interval"
)

func TestNewSchemaValidation(t *testing.T) {
	tests := []struct {
		name    string
		names   []string
		domains []interval.Interval
		wantErr bool
	}{
		{
			name:    "valid",
			names:   []string{"a", "b"},
			domains: []interval.Interval{interval.New(0, 9), interval.New(0, 9)},
		},
		{
			name:    "length mismatch",
			names:   []string{"a"},
			domains: []interval.Interval{interval.New(0, 9), interval.New(0, 9)},
			wantErr: true,
		},
		{
			name:    "duplicate name",
			names:   []string{"a", "a"},
			domains: []interval.Interval{interval.New(0, 9), interval.New(0, 9)},
			wantErr: true,
		},
		{
			name:    "empty name",
			names:   []string{""},
			domains: []interval.Interval{interval.New(0, 9)},
			wantErr: true,
		},
		{
			name:    "empty domain",
			names:   []string{"a"},
			domains: []interval.Interval{interval.Empty()},
			wantErr: true,
		},
		{name: "no attributes", wantErr: true},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			_, err := NewSchema(tc.names, tc.domains)
			if (err != nil) != tc.wantErr {
				t.Errorf("NewSchema error = %v, wantErr %v", err, tc.wantErr)
			}
		})
	}
}

func TestUniformSchema(t *testing.T) {
	s := UniformSchema(3, 0, 999)
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	if s.Name(1) != "x2" {
		t.Errorf("Name(1) = %q", s.Name(1))
	}
	if i, ok := s.AttributeIndex("x3"); !ok || i != 2 {
		t.Errorf("AttributeIndex(x3) = %d, %v", i, ok)
	}
	if _, ok := s.AttributeIndex("nope"); ok {
		t.Error("unexpected attribute found")
	}
}

func TestCoversAndIntersects(t *testing.T) {
	s := New(interval.New(0, 10), interval.New(0, 10))
	tests := []struct {
		name           string
		other          Subscription
		covers         bool
		intersects     bool
		coveredByOther bool
	}{
		{
			name:       "proper subset",
			other:      New(interval.New(2, 8), interval.New(3, 7)),
			covers:     true,
			intersects: true,
		},
		{
			name:           "equal",
			other:          New(interval.New(0, 10), interval.New(0, 10)),
			covers:         true,
			intersects:     true,
			coveredByOther: true,
		},
		{
			name:       "partial overlap",
			other:      New(interval.New(5, 15), interval.New(0, 10)),
			intersects: true,
		},
		{
			name:  "disjoint on one attribute",
			other: New(interval.New(11, 15), interval.New(0, 10)),
		},
		{
			name:  "wrong arity",
			other: New(interval.New(0, 10)),
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := s.Covers(tc.other); got != tc.covers {
				t.Errorf("Covers = %v, want %v", got, tc.covers)
			}
			if got := s.Intersects(tc.other); got != tc.intersects {
				t.Errorf("Intersects = %v, want %v", got, tc.intersects)
			}
			if got := tc.other.Covers(s); got != tc.coveredByOther {
				t.Errorf("reverse Covers = %v, want %v", got, tc.coveredByOther)
			}
		})
	}
}

func TestPaperTable1BikeRental(t *testing.T) {
	// Table 1 of the paper: bicycle rental subscriptions and
	// publications. Dates are encoded as seconds; brand X=1, Y=2, *=any.
	schema, err := NewSchema(
		[]string{"bID", "size", "brand", "rpID", "date"},
		[]interval.Interval{
			interval.New(1, 100000),
			interval.New(10, 30),
			interval.New(1, 100),
			interval.New(1, 1000),
			interval.New(0, 1<<40),
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	const (
		t1600 = 1143820800 // 2006-03-31T16:00:00Z
		t2000 = 1143835200 // 2006-03-31T20:00:00Z
		t1200 = 1143806400 // 2006-03-31T12:00:00Z
		t1400 = 1143813600 // 2006-03-31T14:00:00Z
		t1823 = 1143829385 // 2006-03-31T18:23:05Z
		t1223 = 1143807785 // 2006-03-31T12:23:05Z
	)
	s1 := New(
		interval.New(1000, 1999), interval.Point(19), interval.Point(1),
		interval.New(820, 840), interval.New(t1600, t2000),
	)
	s2 := New(
		interval.New(1, 1999), interval.New(17, 19), schema.Domain(2),
		interval.New(10, 12), interval.New(t1200, t1400),
	)
	p1 := NewPublication(1036, 19, 1, 825, t1823)
	p2 := NewPublication(1035, 17, 2, 11, t1223)

	if err := s1.Validate(schema); err != nil {
		t.Fatalf("s1 invalid: %v", err)
	}
	if err := s2.Validate(schema); err != nil {
		t.Fatalf("s2 invalid: %v", err)
	}
	if !s1.Matches(p1) {
		t.Error("p1 should match s1")
	}
	if s1.Matches(p2) {
		t.Error("p2 should not match s1")
	}
	if !s2.Matches(p2) {
		t.Error("p2 should match s2")
	}
	if s2.Matches(p1) {
		t.Error("p1 should not match s2")
	}
}

func TestSizeAndLogSize(t *testing.T) {
	s := New(interval.New(0, 9), interval.New(0, 99))
	if got := s.Size(); math.Abs(got-1000) > 1e-9 {
		t.Errorf("Size = %g, want 1000", got)
	}
	empty := New(interval.New(0, 9), interval.Empty())
	if got := empty.Size(); got != 0 {
		t.Errorf("empty Size = %g", got)
	}
	if !math.IsInf(empty.LogSize(), -1) {
		t.Errorf("empty LogSize = %g, want -Inf", empty.LogSize())
	}
	// Wide 20-dimensional box must not overflow.
	bounds := make([]interval.Interval, 20)
	for i := range bounds {
		bounds[i] = interval.New(0, 1<<40)
	}
	wide := Subscription{Bounds: bounds}
	if got := wide.LogSize(); math.IsInf(got, 1) || got < 0 {
		t.Errorf("wide LogSize = %g", got)
	}
}

func TestContainsPointAndMatches(t *testing.T) {
	s := New(interval.New(0, 10), interval.New(5, 6))
	if !s.ContainsPoint([]int64{10, 5}) {
		t.Error("corner point should be inside")
	}
	if s.ContainsPoint([]int64{11, 5}) {
		t.Error("outside x1")
	}
	if s.ContainsPoint([]int64{5}) {
		t.Error("wrong arity should be false")
	}
	p := NewPublication(3, 6)
	if !s.Matches(p) {
		t.Error("publication should match")
	}
	box := p.AsBox()
	if !s.Covers(box) {
		t.Error("point box should be covered")
	}
}

func TestIntersectErrors(t *testing.T) {
	a := New(interval.New(0, 5), interval.New(0, 5))
	b := New(interval.New(3, 9))
	if _, err := a.Intersect(b); err == nil {
		t.Error("expected schema mismatch error")
	}
	c := New(interval.New(3, 9), interval.New(9, 12))
	got, err := a.Intersect(c)
	if err != nil {
		t.Fatal(err)
	}
	if got.IsSatisfiable() {
		t.Errorf("intersection %v should be empty", got)
	}
}

func TestValidate(t *testing.T) {
	schema := UniformSchema(2, 0, 100)
	tests := []struct {
		name    string
		sub     Subscription
		wantErr bool
	}{
		{name: "ok", sub: New(interval.New(0, 50), interval.New(20, 100))},
		{name: "arity", sub: New(interval.New(0, 50)), wantErr: true},
		{name: "outside domain", sub: New(interval.New(0, 101), interval.New(0, 1)), wantErr: true},
		{name: "empty bound", sub: New(interval.Empty(), interval.New(0, 1)), wantErr: true},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.sub.Validate(schema)
			if (err != nil) != tc.wantErr {
				t.Errorf("Validate error = %v, wantErr %v", err, tc.wantErr)
			}
		})
	}
	if err := ValidatePublication(NewPublication(5, 5), schema); err != nil {
		t.Errorf("valid publication rejected: %v", err)
	}
	if err := ValidatePublication(NewPublication(5), schema); err == nil {
		t.Error("short publication accepted")
	}
	if err := ValidatePublication(NewPublication(5, 101), schema); err == nil {
		t.Error("out-of-domain publication accepted")
	}
}

// genBox returns a random satisfiable 3-attribute box within [0,99]^3.
func genBox(r *rand.Rand) Subscription {
	bounds := make([]interval.Interval, 3)
	for i := range bounds {
		lo := r.Int64N(90)
		bounds[i] = interval.New(lo, lo+r.Int64N(100-lo))
	}
	return Subscription{Bounds: bounds}
}

func TestCoverMatchesPointSemantics(t *testing.T) {
	// a.Covers(b) must agree with "every sampled point of b is in a".
	cfg := &quick.Config{MaxCount: 300}
	f := func(seed1, seed2 uint64) bool {
		r := rand.New(rand.NewPCG(seed1, seed2))
		a, b := genBox(r), genBox(r)
		covers := a.Covers(b)
		for i := 0; i < 50; i++ {
			p := make([]int64, 3)
			for j, iv := range b.Bounds {
				p[j] = iv.Lo + r.Int64N(iv.Count())
			}
			if covers && !a.ContainsPoint(p) {
				return false
			}
		}
		if !covers {
			// There must exist a corner of b outside a; check all corners.
			found := false
			for mask := 0; mask < 8; mask++ {
				p := make([]int64, 3)
				for j, iv := range b.Bounds {
					if mask&(1<<j) != 0 {
						p[j] = iv.Hi
					} else {
						p[j] = iv.Lo
					}
				}
				if !a.ContainsPoint(p) {
					found = true
					break
				}
			}
			return found
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestIntersectsSymmetricProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 500}
	f := func(seed1, seed2 uint64) bool {
		r := rand.New(rand.NewPCG(seed1, seed2))
		a, b := genBox(r), genBox(r)
		if a.Intersects(b) != b.Intersects(a) {
			return false
		}
		inter, err := a.Intersect(b)
		if err != nil {
			return false
		}
		return inter.IsSatisfiable() == a.Intersects(b)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestStringForms(t *testing.T) {
	s := New(interval.New(1, 2), interval.New(3, 4))
	if got := s.String(); got != "[1,2]x[3,4]" {
		t.Errorf("Subscription.String = %q", got)
	}
	p := NewPublication(7, 8)
	if got := p.String(); got != "(7,8)" {
		t.Errorf("Publication.String = %q", got)
	}
}
