package subscription

import (
	"testing"

	"probsum/internal/interval"
)

func TestSubscriptionJSONRoundTrip(t *testing.T) {
	schema := UniformSchema(3, 0, 1000)
	s := New(interval.New(10, 20), schema.Domain(1), interval.New(0, 5))
	data, err := MarshalSubscription(s, schema)
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalSubscription(data, schema)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(s) {
		t.Errorf("round trip mismatch: %v vs %v", got, s)
	}
}

func TestSubscriptionJSONOmitsFullDomain(t *testing.T) {
	schema := UniformSchema(2, 0, 9)
	s := New(interval.New(1, 3), schema.Domain(1))
	data, err := MarshalSubscription(s, schema)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != `{"x1":[1,3]}` {
		t.Errorf("encoded = %s, want only constrained attribute", data)
	}
}

func TestUnmarshalSubscriptionErrors(t *testing.T) {
	schema := UniformSchema(2, 0, 9)
	tests := []struct {
		name string
		data string
	}{
		{name: "bad json", data: `{`},
		{name: "unknown attribute", data: `{"zz":[1,2]}`},
		{name: "outside domain", data: `{"x1":[1,99]}`},
		{name: "empty bound", data: `{"x1":[5,2]}`},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := UnmarshalSubscription([]byte(tc.data), schema); err == nil {
				t.Error("expected error")
			}
		})
	}
}

func TestPublicationJSONRoundTrip(t *testing.T) {
	schema := UniformSchema(3, 0, 1000)
	p := NewPublication(1, 500, 1000)
	data, err := MarshalPublication(p, schema)
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalPublication(data, schema)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Values) != 3 || got.Values[0] != 1 || got.Values[1] != 500 || got.Values[2] != 1000 {
		t.Errorf("round trip mismatch: %v", got)
	}
}

func TestUnmarshalPublicationErrors(t *testing.T) {
	schema := UniformSchema(2, 0, 9)
	tests := []struct {
		name string
		data string
	}{
		{name: "bad json", data: `[`},
		{name: "missing attribute", data: `{"x1":3}`},
		{name: "unknown attribute", data: `{"x1":3,"zz":4}`},
		{name: "outside domain", data: `{"x1":3,"x2":99}`},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := UnmarshalPublication([]byte(tc.data), schema); err == nil {
				t.Error("expected error")
			}
		})
	}
}

func TestSchemaJSONRoundTrip(t *testing.T) {
	schema, err := NewSchema(
		[]string{"cpu", "disk"},
		[]interval.Interval{interval.New(0, 4000), interval.New(0, 1<<30)},
	)
	if err != nil {
		t.Fatal(err)
	}
	data, err := MarshalSchema(schema)
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalSchema(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 || got.Name(0) != "cpu" || !got.Domain(1).Equal(interval.New(0, 1<<30)) {
		t.Errorf("round trip mismatch: %+v", got)
	}
	if _, err := UnmarshalSchema([]byte(`{`)); err == nil {
		t.Error("expected error for malformed schema")
	}
}
