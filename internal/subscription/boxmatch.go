package subscription

// The paper models publications from imprecise sources (sensor noise,
// value ranges) as convex polyhedra rather than points (Section 1,
// following Liu & Jacobsen's approximate-matching model). A box
// publication matches a subscription under one of two semantics:
// conservatively — every possible value satisfies the subscription —
// or optimistically — some possible value does.

// BoxMatchMode selects the matching semantics for box publications.
type BoxMatchMode int

// Box-publication matching modes.
const (
	// MatchCertain matches only when the subscription covers the
	// entire publication box: delivery is justified no matter which
	// point the imprecise publication denotes.
	MatchCertain BoxMatchMode = iota + 1
	// MatchPossible matches when the publication box intersects the
	// subscription: delivery is justified for at least one possible
	// value.
	MatchPossible
)

// String returns the mode name.
func (m BoxMatchMode) String() string {
	switch m {
	case MatchCertain:
		return "certain"
	case MatchPossible:
		return "possible"
	default:
		return "unknown"
	}
}

// MatchesBox reports whether the subscription matches a box
// publication under the given mode. An empty box matches nothing.
func (s Subscription) MatchesBox(box Subscription, mode BoxMatchMode) bool {
	if !box.IsSatisfiable() {
		return false
	}
	if mode == MatchCertain {
		return s.Covers(box)
	}
	return s.Intersects(box)
}
