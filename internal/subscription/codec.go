package subscription

import (
	"encoding/json"
	"fmt"

	"probsum/internal/interval"
)

// wireSubscription is the JSON shape of a subscription: a map from
// attribute name to [lo, hi]. It requires a schema to decode positions.
type wireSubscription map[string][2]int64

// MarshalSubscription encodes a subscription as JSON using the schema's
// attribute names. Attributes bound by the full domain are omitted,
// mirroring the paper's "(-inf,+inf) means the attribute is not
// significant" convention.
func MarshalSubscription(s Subscription, schema *Schema) ([]byte, error) {
	if err := s.Validate(schema); err != nil {
		return nil, err
	}
	w := make(wireSubscription, len(s.Bounds))
	for i, b := range s.Bounds {
		if b.Equal(schema.Domain(i)) {
			continue
		}
		w[schema.Name(i)] = [2]int64{b.Lo, b.Hi}
	}
	return json.Marshal(w)
}

// UnmarshalSubscription decodes a subscription encoded by
// MarshalSubscription. Unmentioned attributes default to their full
// domain.
func UnmarshalSubscription(data []byte, schema *Schema) (Subscription, error) {
	var w wireSubscription
	if err := json.Unmarshal(data, &w); err != nil {
		return Subscription{}, fmt.Errorf("subscription: decode: %w", err)
	}
	s := FullOver(schema)
	for name, pair := range w {
		i, ok := schema.AttributeIndex(name)
		if !ok {
			return Subscription{}, fmt.Errorf("subscription: unknown attribute %q", name)
		}
		s.Bounds[i] = interval.New(pair[0], pair[1])
	}
	if err := s.Validate(schema); err != nil {
		return Subscription{}, err
	}
	return s, nil
}

// MarshalPublication encodes a publication as a JSON object mapping
// attribute names to values. All attributes must be present.
func MarshalPublication(p Publication, schema *Schema) ([]byte, error) {
	if err := ValidatePublication(p, schema); err != nil {
		return nil, err
	}
	w := make(map[string]int64, len(p.Values))
	for i, v := range p.Values {
		w[schema.Name(i)] = v
	}
	return json.Marshal(w)
}

// UnmarshalPublication decodes a publication encoded by
// MarshalPublication.
func UnmarshalPublication(data []byte, schema *Schema) (Publication, error) {
	var w map[string]int64
	if err := json.Unmarshal(data, &w); err != nil {
		return Publication{}, fmt.Errorf("subscription: decode: %w", err)
	}
	p := Publication{Values: make([]int64, schema.Len())}
	seen := 0
	for name, v := range w {
		i, ok := schema.AttributeIndex(name)
		if !ok {
			return Publication{}, fmt.Errorf("subscription: unknown attribute %q", name)
		}
		p.Values[i] = v
		seen++
	}
	if seen != schema.Len() {
		return Publication{}, fmt.Errorf("subscription: publication has %d of %d attributes", seen, schema.Len())
	}
	if err := ValidatePublication(p, schema); err != nil {
		return Publication{}, err
	}
	return p, nil
}

// MarshalSchema encodes the schema itself (names and domains).
func MarshalSchema(s *Schema) ([]byte, error) {
	type wireAttr struct {
		Name string `json:"name"`
		Lo   int64  `json:"lo"`
		Hi   int64  `json:"hi"`
	}
	attrs := make([]wireAttr, s.Len())
	for i := range attrs {
		d := s.Domain(i)
		attrs[i] = wireAttr{Name: s.Name(i), Lo: d.Lo, Hi: d.Hi}
	}
	return json.Marshal(attrs)
}

// UnmarshalSchema decodes a schema encoded by MarshalSchema.
func UnmarshalSchema(data []byte) (*Schema, error) {
	type wireAttr struct {
		Name string `json:"name"`
		Lo   int64  `json:"lo"`
		Hi   int64  `json:"hi"`
	}
	var attrs []wireAttr
	if err := json.Unmarshal(data, &attrs); err != nil {
		return nil, fmt.Errorf("subscription: decode schema: %w", err)
	}
	names := make([]string, len(attrs))
	domains := make([]interval.Interval, len(attrs))
	for i, a := range attrs {
		names[i] = a.Name
		domains[i] = interval.New(a.Lo, a.Hi)
	}
	return NewSchema(names, domains)
}
