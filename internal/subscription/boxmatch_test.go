package subscription

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"probsum/internal/interval"
)

func TestMatchesBoxModes(t *testing.T) {
	s := New(interval.New(0, 10), interval.New(0, 10))
	tests := []struct {
		name     string
		box      Subscription
		certain  bool
		possible bool
	}{
		{
			name:     "inside",
			box:      New(interval.New(2, 8), interval.New(2, 8)),
			certain:  true,
			possible: true,
		},
		{
			name:     "straddles boundary",
			box:      New(interval.New(5, 15), interval.New(2, 8)),
			possible: true,
		},
		{
			name: "disjoint",
			box:  New(interval.New(20, 30), interval.New(2, 8)),
		},
		{
			name: "empty box",
			box:  New(interval.Empty(), interval.New(2, 8)),
		},
		{
			name:     "point box on corner",
			box:      New(interval.Point(10), interval.Point(10)),
			certain:  true,
			possible: true,
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := s.MatchesBox(tc.box, MatchCertain); got != tc.certain {
				t.Errorf("MatchCertain = %v, want %v", got, tc.certain)
			}
			if got := s.MatchesBox(tc.box, MatchPossible); got != tc.possible {
				t.Errorf("MatchPossible = %v, want %v", got, tc.possible)
			}
		})
	}
}

func TestMatchesBoxConsistentWithPoints(t *testing.T) {
	// MatchCertain ⇒ every sampled point matches; MatchPossible ⇔ some
	// point of the box matches (verified exhaustively on small boxes).
	cfg := &quick.Config{MaxCount: 300}
	f := func(seed1, seed2 uint64) bool {
		r := rand.New(rand.NewPCG(seed1, seed2))
		mk := func() Subscription {
			lo1, lo2 := r.Int64N(15), r.Int64N(15)
			return New(
				interval.New(lo1, lo1+r.Int64N(10)),
				interval.New(lo2, lo2+r.Int64N(10)),
			)
		}
		s, box := mk(), mk()
		anyMatch, allMatch := false, true
		for x := box.Bounds[0].Lo; x <= box.Bounds[0].Hi; x++ {
			for y := box.Bounds[1].Lo; y <= box.Bounds[1].Hi; y++ {
				if s.ContainsPoint([]int64{x, y}) {
					anyMatch = true
				} else {
					allMatch = false
				}
			}
		}
		if s.MatchesBox(box, MatchPossible) != anyMatch {
			return false
		}
		return s.MatchesBox(box, MatchCertain) == allMatch
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestBoxMatchModeString(t *testing.T) {
	if MatchCertain.String() != "certain" || MatchPossible.String() != "possible" ||
		BoxMatchMode(9).String() != "unknown" {
		t.Error("mode strings wrong")
	}
}
