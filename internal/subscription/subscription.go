// Package subscription defines the data model of the paper: schemas of
// ordered finite attribute domains, subscriptions as conjunctions of
// range predicates (axis-aligned boxes), and publications as points or
// boxes in the attribute space.
//
// Per Definition 1 of the paper every subscription constrains the same
// set of m attributes; an unconstrained attribute is simply bounded by
// the full domain of that attribute, which is not a restriction.
package subscription

import (
	"errors"
	"fmt"
	"math"
	"strings"

	"probsum/internal/interval"
)

// ErrSchemaMismatch is returned when two values defined over different
// schemas (different attribute counts) are combined.
var ErrSchemaMismatch = errors.New("subscription: schema mismatch")

// Schema describes the attribute space: attribute names and their
// domains (ordered finite sets modeled as integer ranges).
type Schema struct {
	names   []string
	domains []interval.Interval
	index   map[string]int
}

// NewSchema builds a schema from parallel name/domain slices.
// Names must be unique and non-empty, domains non-empty.
func NewSchema(names []string, domains []interval.Interval) (*Schema, error) {
	if len(names) != len(domains) {
		return nil, fmt.Errorf("subscription: %d names but %d domains", len(names), len(domains))
	}
	if len(names) == 0 {
		return nil, errors.New("subscription: schema needs at least one attribute")
	}
	s := &Schema{
		names:   make([]string, len(names)),
		domains: make([]interval.Interval, len(domains)),
		index:   make(map[string]int, len(names)),
	}
	for i, name := range names {
		if name == "" {
			return nil, fmt.Errorf("subscription: attribute %d has empty name", i)
		}
		if _, dup := s.index[name]; dup {
			return nil, fmt.Errorf("subscription: duplicate attribute %q", name)
		}
		if domains[i].IsEmpty() {
			return nil, fmt.Errorf("subscription: attribute %q has empty domain", name)
		}
		s.names[i] = name
		s.domains[i] = domains[i]
		s.index[name] = i
	}
	return s, nil
}

// UniformSchema builds a schema with m attributes named x1..xm, each
// over the domain [lo, hi]. It is the shape used throughout the paper's
// evaluation.
func UniformSchema(m int, lo, hi int64) *Schema {
	names := make([]string, m)
	domains := make([]interval.Interval, m)
	for i := range names {
		names[i] = fmt.Sprintf("x%d", i+1)
		domains[i] = interval.New(lo, hi)
	}
	s, err := NewSchema(names, domains)
	if err != nil {
		// Only reachable with m <= 0 or lo > hi, which are programmer
		// errors on this constructor's contract.
		panic(err)
	}
	return s
}

// Len returns the number of attributes m.
func (s *Schema) Len() int { return len(s.names) }

// Name returns the name of attribute i.
func (s *Schema) Name(i int) string { return s.names[i] }

// Domain returns the domain of attribute i.
func (s *Schema) Domain(i int) interval.Interval { return s.domains[i] }

// AttributeIndex returns the index of the named attribute.
func (s *Schema) AttributeIndex(name string) (int, bool) {
	i, ok := s.index[name]
	return i, ok
}

// Subscription is a conjunction of range predicates: geometrically an
// axis-aligned box in the m-dimensional attribute space. Bounds[i] is
// the allowed interval for attribute i.
type Subscription struct {
	Bounds []interval.Interval
}

// New returns a subscription with the given per-attribute bounds.
// The caller keeps ownership of nothing: the slice is copied.
func New(bounds ...interval.Interval) Subscription {
	out := make([]interval.Interval, len(bounds))
	copy(out, bounds)
	return Subscription{Bounds: out}
}

// FullOver returns the subscription that accepts every point of the
// schema, i.e. all predicates are the trivial domain bounds.
func FullOver(schema *Schema) Subscription {
	bounds := make([]interval.Interval, schema.Len())
	for i := range bounds {
		bounds[i] = schema.Domain(i)
	}
	return Subscription{Bounds: bounds}
}

// Clone returns a deep copy of the subscription.
func (s Subscription) Clone() Subscription {
	return New(s.Bounds...)
}

// Len returns the number of attributes the subscription constrains.
func (s Subscription) Len() int { return len(s.Bounds) }

// IsSatisfiable reports whether at least one point satisfies every
// predicate, i.e. no per-attribute bound is empty.
func (s Subscription) IsSatisfiable() bool {
	for _, b := range s.Bounds {
		if b.IsEmpty() {
			return false
		}
	}
	return len(s.Bounds) > 0
}

// Covers reports whether s covers other: every point of other satisfies
// s. Both must share the attribute count.
func (s Subscription) Covers(other Subscription) bool {
	if len(s.Bounds) != len(other.Bounds) {
		return false
	}
	for i, b := range s.Bounds {
		if !b.ContainsInterval(other.Bounds[i]) {
			return false
		}
	}
	return true
}

// Intersects reports whether the two boxes share at least one point.
func (s Subscription) Intersects(other Subscription) bool {
	if len(s.Bounds) != len(other.Bounds) {
		return false
	}
	for i, b := range s.Bounds {
		if !b.Intersects(other.Bounds[i]) {
			return false
		}
	}
	return len(s.Bounds) > 0
}

// Intersect returns the box intersection of the two subscriptions.
func (s Subscription) Intersect(other Subscription) (Subscription, error) {
	if len(s.Bounds) != len(other.Bounds) {
		return Subscription{}, ErrSchemaMismatch
	}
	out := make([]interval.Interval, len(s.Bounds))
	for i, b := range s.Bounds {
		out[i] = b.Intersect(other.Bounds[i])
	}
	return Subscription{Bounds: out}, nil
}

// ContainsPoint reports whether the point p (one value per attribute)
// satisfies the subscription.
func (s Subscription) ContainsPoint(p []int64) bool {
	if len(p) != len(s.Bounds) {
		return false
	}
	for i, b := range s.Bounds {
		if !b.Contains(p[i]) {
			return false
		}
	}
	return true
}

// LogSize returns ln I(s), the natural log of the number of integer
// points inside the box. Empty boxes yield -Inf.
func (s Subscription) LogSize() float64 {
	total := 0.0
	for _, b := range s.Bounds {
		total += b.LogCount()
	}
	return total
}

// Size returns I(s) as a float64 (the point count can exceed int64 for
// large m). Empty boxes yield 0.
func (s Subscription) Size() float64 {
	if !s.IsSatisfiable() {
		return 0
	}
	return math.Exp(s.LogSize())
}

// Equal reports whether the two subscriptions denote the same box.
func (s Subscription) Equal(other Subscription) bool {
	if len(s.Bounds) != len(other.Bounds) {
		return false
	}
	for i, b := range s.Bounds {
		if !b.Equal(other.Bounds[i]) {
			return false
		}
	}
	return true
}

// String renders the box as "[l1,h1]x[l2,h2]x...".
func (s Subscription) String() string {
	var sb strings.Builder
	for i, b := range s.Bounds {
		if i > 0 {
			sb.WriteByte('x')
		}
		sb.WriteString(b.String())
	}
	return sb.String()
}

// Publication is a point in the attribute space (Definition 6). The
// paper also admits box publications for imprecise sources; a box
// publication is represented directly as a Subscription and matched via
// Covers.
type Publication struct {
	Values []int64
}

// NewPublication returns a publication with the given attribute values.
func NewPublication(values ...int64) Publication {
	out := make([]int64, len(values))
	copy(out, values)
	return Publication{Values: out}
}

// AsBox converts the point publication into a degenerate box, enabling
// uniform treatment with imprecise (box) publications.
func (p Publication) AsBox() Subscription {
	bounds := make([]interval.Interval, len(p.Values))
	for i, v := range p.Values {
		bounds[i] = interval.Point(v)
	}
	return Subscription{Bounds: bounds}
}

// Len returns the number of attribute values.
func (p Publication) Len() int { return len(p.Values) }

// String renders the point as "(v1,v2,...)".
func (p Publication) String() string {
	var sb strings.Builder
	sb.WriteByte('(')
	for i, v := range p.Values {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%d", v)
	}
	sb.WriteByte(')')
	return sb.String()
}

// Matches reports whether subscription s matches publication p, i.e.
// p lies inside the box s.
func (s Subscription) Matches(p Publication) bool {
	return s.ContainsPoint(p.Values)
}

// Validate checks the subscription against a schema: the attribute
// count matches and every bound is a satisfiable subset of its domain.
func (s Subscription) Validate(schema *Schema) error {
	if len(s.Bounds) != schema.Len() {
		return fmt.Errorf("%w: subscription has %d attributes, schema has %d",
			ErrSchemaMismatch, len(s.Bounds), schema.Len())
	}
	for i, b := range s.Bounds {
		if b.IsEmpty() {
			return fmt.Errorf("subscription: attribute %s has empty bound", schema.Name(i))
		}
		if !schema.Domain(i).ContainsInterval(b) {
			return fmt.Errorf("subscription: attribute %s bound %s exceeds domain %s",
				schema.Name(i), b, schema.Domain(i))
		}
	}
	return nil
}

// ValidatePublication checks a publication against a schema.
func ValidatePublication(p Publication, schema *Schema) error {
	if len(p.Values) != schema.Len() {
		return fmt.Errorf("%w: publication has %d attributes, schema has %d",
			ErrSchemaMismatch, len(p.Values), schema.Len())
	}
	for i, v := range p.Values {
		if !schema.Domain(i).Contains(v) {
			return fmt.Errorf("subscription: publication value %d for %s outside domain %s",
				v, schema.Name(i), schema.Domain(i))
		}
	}
	return nil
}
