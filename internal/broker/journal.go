// Durability hooks: the broker stays a pure state machine, but every
// state-changing arrival can be recorded through a Journal so a
// restarted process replays itself back to the pre-crash routing
// state. The broker knows nothing about encodings or files — the
// pubsub layer implements Journal over internal/persist and reuses
// the wire codec for record payloads, which keeps this package free
// of I/O and import cycles.
package broker

import (
	"sort"

	"probsum/subsume"
)

// Journal receives the broker's durability events. RecordMessage and
// RecordAttach are called with the broker's exclusive lock held (so
// record order is exactly application order) and must not call back
// into the broker; RecordPubSeen is called under the shared lock from
// concurrent publish handlers and must be safe for concurrent use.
// Implementations swallow their own I/O errors (a broker does not
// fail routing because a disk write failed).
type Journal interface {
	// RecordAttach records a port registration: a neighbor link
	// (client=false) or a local client (client=true).
	RecordAttach(port string, client bool)
	// RecordMessage records one state-changing arrival (subscribe /
	// unsubscribe / their batches / sync-roots) after it was applied.
	RecordMessage(from string, msg *Message)
	// RecordPubSeen records the first sighting of a publication ID.
	RecordPubSeen(pubID string)
}

// SetJournal attaches (or, with nil, detaches) the durability
// journal. Attach AFTER recovery replay so replayed operations are
// not re-recorded.
func (b *Broker) SetJournal(j Journal) {
	if j == nil {
		b.journal.Store(nil)
		return
	}
	b.journal.Store(&j)
}

// SnapshotOp is one operation of a compacted state snapshot. Exactly
// one of the three shapes is populated:
//
//   - Attach: a port registration (Port, Client)
//   - Message: a synthesized arrival (From, Msg)
//   - PubIDs: a chunk of publication IDs in the dedup window
//
// Replaying the ops against a fresh broker — attaches first, then
// messages through Handle with outputs discarded, then MarkPubsSeen —
// rebuilds an equivalent routing state: same reverse paths, same
// received sets, same dedup window. Coverage tables are rebuilt by
// re-admission, so active/covered classifications may legitimately
// differ from the live table that was snapshotted; the digest
// reconciliation protocol squares any resulting divergence with the
// peers, which is what lets recovery skip the full re-announce.
type SnapshotOp struct {
	Attach bool
	Client bool
	Port   string

	From string
	Msg  *Message

	PubIDs []string
}

// pubIDChunk bounds one PubIDs op so a single persisted record stays
// well under the record cap.
const pubIDChunk = 4096

// SnapshotTo freezes the broker (exclusive lock) and hands fn the
// compacted operation list. The freeze is what makes journal
// compaction atomic: while fn runs, no new operation can be applied
// or recorded, so a journal implementation can persist the snapshot
// and discard its pending records without losing a racing write.
func (b *Broker) SnapshotTo(fn func(ops []SnapshotOp) error) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	return fn(b.snapshotOpsLocked())
}

// SnapshotOps returns the compacted operation list under the shared
// lock — a consistent read-only snapshot, for callers that do not
// need the compaction atomicity of SnapshotTo (tests, inspection).
func (b *Broker) SnapshotOps() []SnapshotOp {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.snapshotOpsLocked()
}

// snapshotOpsLocked builds the compacted operation list; any mode of
// the state lock suffices (it only reads).
//
// +mustlock:mu (shared)
func (b *Broker) snapshotOpsLocked() []SnapshotOp {
	var ops []SnapshotOp
	for _, c := range sortedKeys(b.clients) {
		ops = append(ops, SnapshotOp{Attach: true, Client: true, Port: c})
	}
	for _, n := range sortedKeys(b.neighbors) {
		ops = append(ops, SnapshotOp{Attach: true, Port: n})
	}
	// Subscriptions in ascending numeric-ID order — admission order —
	// each synthesized as a subscribe from its first-arrival port.
	ids := make([]subsumeIDSlice, 0, len(b.idToSub))
	for sid, subID := range b.idToSub {
		ids = append(ids, subsumeIDSlice{sid, subID})
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i].id < ids[j].id })
	for _, e := range ids {
		src, ok := b.source[e.subID]
		if !ok {
			continue
		}
		sub, ok := b.in[src][e.subID]
		if !ok {
			continue
		}
		ops = append(ops, SnapshotOp{From: src, Msg: &Message{Kind: MsgSubscribe, SubID: e.subID, Sub: sub}})
	}
	// Duplicate receptions: copies that arrived over non-source links
	// still count toward those links' digests. Synthesized as
	// subscribes that replay down the duplicate path.
	for _, port := range sortedKeys(b.neighbors) {
		set := b.recv[port]
		if len(set) == 0 {
			continue
		}
		var dups []BatchSub
		for _, subID := range sortedKeys(set) {
			src, ok := b.source[subID]
			if !ok || src == port {
				continue
			}
			sub, ok := b.in[src][subID]
			if !ok {
				continue
			}
			dups = append(dups, BatchSub{SubID: subID, Sub: sub})
		}
		if len(dups) > 0 {
			ops = append(ops, SnapshotOp{From: port, Msg: &Message{Kind: MsgSubscribeBatch, Subs: dups}})
		}
	}
	// The publication-dedup window, chunked.
	pubIDs := b.seenPubs.ids()
	sort.Strings(pubIDs)
	for len(pubIDs) > 0 {
		n := len(pubIDs)
		if n > pubIDChunk {
			n = pubIDChunk
		}
		ops = append(ops, SnapshotOp{PubIDs: pubIDs[:n]})
		pubIDs = pubIDs[n:]
	}
	return ops
}

type subsumeIDSlice struct {
	id    subsume.ID
	subID string
}

// SubscriptionCount returns the number of live subscriptions in the
// routing state (recovery-stats and test hook).
func (b *Broker) SubscriptionCount() int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return len(b.source)
}

// PortCounts returns the number of registered client and neighbor
// ports (recovery-stats hook).
func (b *Broker) PortCounts() (clients, neighbors int) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return len(b.clients), len(b.neighbors)
}

// MarkPubsSeen seeds the publication-dedup window (recovery replay of
// PubIDs ops). Already-known IDs are no-ops; nothing is counted in
// the metrics.
func (b *Broker) MarkPubsSeen(pubIDs []string) {
	for _, id := range pubIDs {
		b.seenPubs.seen(id)
	}
}

// ids enumerates the tracked publication IDs across both generations
// (deduplicated).
func (d *pubDedup) ids() []string {
	g := d.gens.Load()
	seen := make(map[string]bool)
	for _, gen := range []*dedupGen{g.cur, g.prev} {
		gen.m.Range(func(k, _ any) bool {
			seen[k.(string)] = true
			return true
		})
	}
	out := make([]string, 0, len(seen))
	for id := range seen {
		out = append(out, id)
	}
	return out
}
