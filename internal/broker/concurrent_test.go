package broker

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"probsum/internal/store"
	"probsum/internal/subscription"
)

// TestConcurrentPublish drives the concurrency contract the TCP
// transport relies on: publications from many goroutines run in
// parallel (shared lock) while subscribes/unsubscribes interleave
// (exclusive lock), with duplicate suppression and metrics staying
// exact. Run under -race in CI.
func TestConcurrentPublish(t *testing.T) {
	b := newBroker(t, store.PolicyPairwise)
	if err := b.ConnectNeighbor("N1"); err != nil {
		t.Fatal(err)
	}
	b.AttachClient("C0")
	for g := 0; g < 4; g++ {
		b.AttachClient(fmt.Sprintf("P%d", g))
	}
	// A standing subscription so publishes do real matching work.
	if _, err := b.Handle("C0", Message{Kind: MsgSubscribe, SubID: "base", Sub: box(0, 100, 0, 100)}); err != nil {
		t.Fatal(err)
	}

	const (
		goroutines = 4
		pubsEach   = 200
	)
	var notified atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			port := fmt.Sprintf("P%d", g)
			for i := 0; i < pubsEach; i++ {
				// Every 8th operation is a subscription churn on the
				// exclusive path, racing the shared publish path.
				if i%8 == 0 {
					subID := fmt.Sprintf("s%d-%d", g, i)
					if _, err := b.Handle(port, Message{Kind: MsgSubscribe, SubID: subID, Sub: box(10, 20, 10, 20)}); err != nil {
						t.Error(err)
						return
					}
					if _, err := b.Handle(port, Message{Kind: MsgUnsubscribe, SubID: subID}); err != nil {
						t.Error(err)
						return
					}
				}
				outs, err := b.Handle(port, Message{
					Kind:  MsgPublish,
					PubID: fmt.Sprintf("p%d-%d", g, i),
					Pub:   subscription.NewPublication(50, 50),
				})
				if err != nil {
					t.Error(err)
					return
				}
				for _, o := range outs {
					if o.Msg.Kind == MsgNotify && o.To == "C0" {
						notified.Add(1)
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	total := goroutines * pubsEach
	m := b.Metrics()
	if m.PubsReceived != total {
		t.Errorf("PubsReceived = %d, want %d", m.PubsReceived, total)
	}
	// Every publication matched the standing subscription exactly once.
	if got := notified.Load(); got != int64(total) {
		t.Errorf("notifications to C0 = %d, want %d", got, total)
	}
	if m.Notifications != total {
		t.Errorf("Notifications metric = %d, want %d", m.Notifications, total)
	}

	// Duplicate suppression is exact under racing re-publishes.
	var dupWg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		dupWg.Add(1)
		go func(g int) {
			defer dupWg.Done()
			for i := 0; i < 50; i++ {
				if _, err := b.Handle(fmt.Sprintf("P%d", g), Message{Kind: MsgPublish, PubID: "dup", Pub: subscription.NewPublication(1, 1)}); err != nil {
					t.Error(err)
				}
			}
		}(g)
	}
	dupWg.Wait()
	m = b.Metrics()
	if m.PubsReceived != total+1 {
		t.Errorf("after dup storm: PubsReceived = %d, want %d", m.PubsReceived, total+1)
	}
	if m.DupPubsDropped != goroutines*50-1 {
		t.Errorf("DupPubsDropped = %d, want %d", m.DupPubsDropped, goroutines*50-1)
	}
}
