package broker

// Observability pins: the publish-stage observer must add zero
// allocations to the publish hot path, Metrics snapshots must be
// torn-free under concurrent mutation (-race), and the observer must
// actually time both stages.

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"probsum/internal/obs"
	"probsum/internal/store"
	"probsum/internal/subscription"
)

func TestPublishObserverTimesStages(t *testing.T) {
	b := newBroker(t, store.PolicyPairwise)
	b.AttachClient("C1")
	if _, err := b.Handle("C1", Message{Kind: MsgSubscribe, SubID: "s", Sub: box(0, 100, 0, 100)}); err != nil {
		t.Fatal(err)
	}
	// Manual clock: each call advances 1µs, so every stage measures a
	// deterministic nonzero duration.
	now := time.Unix(0, 0)
	po := &PublishObserver{
		Clock: func() time.Time { now = now.Add(time.Microsecond); return now },
		Match: obs.NewHistogram(),
		Route: obs.NewHistogram(),
	}
	b.SetPublishObserver(po)
	for i := 0; i < 5; i++ {
		if _, err := b.Handle("C2", Message{Kind: MsgPublish, PubID: fmt.Sprintf("p%d", i),
			Pub: subscription.NewPublication(5, 5)}); err != nil {
			t.Fatal(err)
		}
	}
	if c := po.Match.Snapshot().Count; c != 5 {
		t.Errorf("match observations = %d, want 5", c)
	}
	if c := po.Route.Snapshot().Count; c != 5 {
		t.Errorf("route observations = %d, want 5", c)
	}
	// Detach: further publishes must not observe (or read the clock).
	b.SetPublishObserver(nil)
	calls := 0
	po.Clock = func() time.Time { calls++; return time.Unix(0, 0) }
	if _, err := b.Handle("C2", Message{Kind: MsgPublish, PubID: "pX",
		Pub: subscription.NewPublication(5, 5)}); err != nil {
		t.Fatal(err)
	}
	if calls != 0 || po.Match.Snapshot().Count != 5 {
		t.Error("detached observer still invoked")
	}
}

func TestSetPublishObserverValidates(t *testing.T) {
	b := newBroker(t, store.PolicyNone)
	defer func() {
		if recover() == nil {
			t.Error("incomplete observer accepted")
		}
	}()
	b.SetPublishObserver(&PublishObserver{Clock: time.Now})
}

// TestPublishObserverZeroAlloc pins the acceptance criterion:
// attaching the stage observer adds zero allocations per publish.
func TestPublishObserverZeroAlloc(t *testing.T) {
	mkBroker := func() *Broker {
		b := newBroker(t, store.PolicyPairwise)
		b.AttachClient("C1")
		if _, err := b.Handle("C1", Message{Kind: MsgSubscribe, SubID: "s", Sub: box(0, 100, 0, 100)}); err != nil {
			t.Fatal(err)
		}
		return b
	}
	// Pre-generate distinct PubIDs so dedup never short-circuits and
	// ID formatting stays out of the measured region.
	const runs = 2000
	ids := make([]string, runs+10)
	for i := range ids {
		ids[i] = fmt.Sprintf("pub-%06d", i)
	}
	measure := func(b *Broker) float64 {
		i := 0
		return testing.AllocsPerRun(runs, func() {
			msg := Message{Kind: MsgPublish, PubID: ids[i%len(ids)], Pub: subscription.NewPublication(5, 5)}
			i++
			if _, err := b.Handle("C2", msg); err != nil {
				t.Fatal(err)
			}
		})
	}
	base := measure(mkBroker())
	withObs := mkBroker()
	withObs.SetPublishObserver(&PublishObserver{
		Clock: time.Now,
		Match: obs.NewHistogram(),
		Route: obs.NewHistogram(),
	})
	observed := measure(withObs)
	if observed > base {
		t.Fatalf("observer adds allocations on the publish path: %.2f with vs %.2f without", observed, base)
	}
}

// TestMetricsSnapshotTornFree hammers every counter from concurrent
// writers while snapshotting and Add-ing; under -race this pins that
// counters.snapshot and Metrics.Add are data-race free, and it checks
// the final sums are exact (no lost increments).
func TestMetricsSnapshotTornFree(t *testing.T) {
	var c counters
	const (
		writers = 8
		perW    = 10000
	)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			var total Metrics
			for {
				select {
				case <-stop:
					return
				default:
				}
				s := c.snapshot()
				// Counters only move forward; a torn read could not be
				// negative, but Add must also be race-free.
				total.Add(s)
				if s.PubsReceived < 0 || s.Notifications < 0 {
					t.Error("negative snapshot")
					return
				}
			}
		}()
	}
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				c.pubsReceived.Add(1)
				c.notifications.Add(1)
				c.subsReceived.Add(1)
			}
		}()
	}
	wg.Wait()
	close(stop)
	readers.Wait()
	s := c.snapshot()
	want := writers * perW
	if s.PubsReceived != want || s.Notifications != want || s.SubsReceived != want {
		t.Fatalf("lost increments: %+v, want %d each", s, want)
	}
	var sum Metrics
	sum.Add(s)
	sum.Add(s)
	if sum.PubsReceived != 2*want {
		t.Fatalf("Add = %d, want %d", sum.PubsReceived, 2*want)
	}
}
