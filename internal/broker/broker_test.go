package broker

import (
	"fmt"
	"maps"
	"math/rand/v2"
	"testing"

	"probsum/internal/interval"
	"probsum/internal/store"
	"probsum/internal/subscription"
	"probsum/subsume"
)

func box(lo1, hi1, lo2, hi2 int64) subscription.Subscription {
	return subscription.New(interval.New(lo1, hi1), interval.New(lo2, hi2))
}

func newBroker(t *testing.T, policy store.Policy) *Broker {
	t.Helper()
	b, err := New("B", policy, WithSeed(5),
		WithTableOptions(subsume.WithTableChecker(
			subsume.WithErrorProbability(1e-9),
			subsume.WithMaxTrials(10_000))))
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestNewValidation(t *testing.T) {
	if _, err := New("", store.PolicyNone); err == nil {
		t.Error("empty id accepted")
	}
	if b, err := New("B", store.Policy(42)); err != nil {
		t.Fatal(err)
	} else if err := b.ConnectNeighbor("n1"); err == nil {
		t.Error("invalid policy accepted at ConnectNeighbor")
	}
	b := newBroker(t, store.PolicyNone)
	if err := b.ConnectNeighbor("B"); err == nil {
		t.Error("self neighbor accepted")
	}
	if err := b.ConnectNeighbor("N1"); err != nil {
		t.Fatal(err)
	}
	if err := b.ConnectNeighbor("N1"); err != nil {
		t.Errorf("idempotent reconnect errored: %v", err)
	}
	if got := b.Neighbors(); len(got) != 1 || got[0] != "N1" {
		t.Errorf("Neighbors = %v", got)
	}
}

func TestSubscribeForwardsToAllButSource(t *testing.T) {
	b := newBroker(t, store.PolicyNone)
	for _, n := range []string{"N1", "N2", "N3"} {
		if err := b.ConnectNeighbor(n); err != nil {
			t.Fatal(err)
		}
	}
	out, err := b.Handle("N1", Message{Kind: MsgSubscribe, SubID: "s1", Sub: box(0, 5, 0, 5)})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("forwarded to %d neighbors, want 2", len(out))
	}
	for _, o := range out {
		if o.To == "N1" {
			t.Error("forwarded back to the source")
		}
		if o.Msg.Kind != MsgSubscribe || o.Msg.SubID != "s1" {
			t.Errorf("unexpected message %+v", o.Msg)
		}
	}
}

func TestDuplicateSubscriptionDropped(t *testing.T) {
	b := newBroker(t, store.PolicyNone)
	b.ConnectNeighbor("N1")
	b.ConnectNeighbor("N2")
	msg := Message{Kind: MsgSubscribe, SubID: "s1", Sub: box(0, 5, 0, 5)}
	if _, err := b.Handle("N1", msg); err != nil {
		t.Fatal(err)
	}
	out, err := b.Handle("N2", msg)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		t.Errorf("duplicate produced output: %v", out)
	}
	if b.Metrics().DupSubsDropped != 1 {
		t.Errorf("DupSubsDropped = %d", b.Metrics().DupSubsDropped)
	}
}

func TestCoverageSuppressionPairwise(t *testing.T) {
	b := newBroker(t, store.PolicyPairwise)
	b.ConnectNeighbor("N1")
	b.ConnectNeighbor("N2")
	if _, err := b.Handle("N1", Message{Kind: MsgSubscribe, SubID: "big", Sub: box(0, 100, 0, 100)}); err != nil {
		t.Fatal(err)
	}
	out, err := b.Handle("N1", Message{Kind: MsgSubscribe, SubID: "small", Sub: box(40, 60, 40, 60)})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Errorf("covered subscription forwarded: %v", out)
	}
	m := b.Metrics()
	if m.SubsSuppressed != 1 {
		t.Errorf("SubsSuppressed = %d, want 1", m.SubsSuppressed)
	}
	// But a subscription arriving from N2 must still be forwarded to
	// N1 even though it is covered toward N2's side.
	out, err = b.Handle("N2", Message{Kind: MsgSubscribe, SubID: "fromN2", Sub: box(41, 59, 41, 59)})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].To != "N1" {
		t.Errorf("per-neighbor tables broken: %v", out)
	}
}

func TestPublishReversePath(t *testing.T) {
	b := newBroker(t, store.PolicyPairwise)
	b.ConnectNeighbor("N1")
	b.ConnectNeighbor("N2")
	b.AttachClient("C1")
	if _, err := b.Handle("N1", Message{Kind: MsgSubscribe, SubID: "s1", Sub: box(0, 10, 0, 10)}); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Handle("C1", Message{Kind: MsgSubscribe, SubID: "c1s", Sub: box(5, 15, 5, 15)}); err != nil {
		t.Fatal(err)
	}
	out, err := b.Handle("N2", Message{Kind: MsgPublish, PubID: "p1", Pub: subscription.NewPublication(7, 7)})
	if err != nil {
		t.Fatal(err)
	}
	var toN1, toC1 int
	for _, o := range out {
		switch {
		case o.To == "N1" && o.Msg.Kind == MsgPublish:
			toN1++
		case o.To == "C1" && o.Msg.Kind == MsgNotify:
			toC1++
		default:
			t.Errorf("unexpected outbound %+v", o)
		}
	}
	if toN1 != 1 || toC1 != 1 {
		t.Errorf("forwarding: toN1=%d toC1=%d, want 1 and 1", toN1, toC1)
	}
	// Publication matching nothing goes nowhere.
	out, err = b.Handle("N2", Message{Kind: MsgPublish, PubID: "p2", Pub: subscription.NewPublication(90, 90)})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Errorf("non-matching publication produced %v", out)
	}
	// Duplicate publication dropped.
	out, err = b.Handle("N1", Message{Kind: MsgPublish, PubID: "p1", Pub: subscription.NewPublication(7, 7)})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 || b.Metrics().DupPubsDropped != 1 {
		t.Errorf("duplicate publication handling: out=%v dups=%d", out, b.Metrics().DupPubsDropped)
	}
}

func TestUnsubscribeForwardsAlongTree(t *testing.T) {
	b := newBroker(t, store.PolicyPairwise)
	b.ConnectNeighbor("N1")
	b.ConnectNeighbor("N2")
	if _, err := b.Handle("N1", Message{Kind: MsgSubscribe, SubID: "s1", Sub: box(0, 10, 0, 10)}); err != nil {
		t.Fatal(err)
	}
	// Unsubscribe from the wrong port is ignored.
	out, err := b.Handle("N2", Message{Kind: MsgUnsubscribe, SubID: "s1"})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Errorf("unsubscribe from non-source port produced %v", out)
	}
	// From the right port it propagates.
	out, err = b.Handle("N1", Message{Kind: MsgUnsubscribe, SubID: "s1"})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].To != "N2" || out[0].Msg.Kind != MsgUnsubscribe {
		t.Errorf("unsubscribe propagation = %v", out)
	}
	// Unknown subscription: no-op.
	out, err = b.Handle("N1", Message{Kind: MsgUnsubscribe, SubID: "nope"})
	if err != nil || len(out) != 0 {
		t.Errorf("unknown unsubscribe: out=%v err=%v", out, err)
	}
}

func TestUnsubscribeTriggersPromotionForwarding(t *testing.T) {
	b := newBroker(t, store.PolicyPairwise)
	b.ConnectNeighbor("N1")
	b.ConnectNeighbor("N2")
	if _, err := b.Handle("N1", Message{Kind: MsgSubscribe, SubID: "big", Sub: box(0, 100, 0, 100)}); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Handle("N1", Message{Kind: MsgSubscribe, SubID: "small", Sub: box(40, 60, 40, 60)}); err != nil {
		t.Fatal(err)
	}
	out, err := b.Handle("N1", Message{Kind: MsgUnsubscribe, SubID: "big"})
	if err != nil {
		t.Fatal(err)
	}
	// Expect the unsubscribe toward N2 plus the late forward of small.
	var sawUnsub, sawLateSub bool
	for _, o := range out {
		if o.To != "N2" {
			t.Errorf("message to unexpected port %s", o.To)
		}
		switch {
		case o.Msg.Kind == MsgUnsubscribe && o.Msg.SubID == "big":
			sawUnsub = true
		case o.Msg.Kind == MsgSubscribe && o.Msg.SubID == "small":
			sawLateSub = true
		}
	}
	if !sawUnsub || !sawLateSub {
		t.Errorf("out = %+v, want unsubscribe(big) and subscribe(small)", out)
	}
	if b.Metrics().Promotions != 1 {
		t.Errorf("Promotions = %d, want 1", b.Metrics().Promotions)
	}
}

func TestHandleErrors(t *testing.T) {
	b := newBroker(t, store.PolicyNone)
	if _, err := b.Handle("x", Message{Kind: MsgNotify}); err == nil {
		t.Error("notify accepted by broker")
	}
	if _, err := b.Handle("x", Message{Kind: MsgSubscribe}); err == nil {
		t.Error("subscribe without id accepted")
	}
	if _, err := b.Handle("x", Message{Kind: MsgPublish}); err == nil {
		t.Error("publish without id accepted")
	}
}

func TestMsgKindString(t *testing.T) {
	for k, want := range map[MsgKind]string{
		MsgSubscribe:   "subscribe",
		MsgUnsubscribe: "unsubscribe",
		MsgPublish:     "publish",
		MsgNotify:      "notify",
		MsgKind(42):    "unknown",
	} {
		if got := k.String(); got != want {
			t.Errorf("MsgKind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

// TestPublishItreeMatchesLinearReference cross-checks the
// interval-tree publish path against the linear scan it replaced:
// for random churn and random publications, handlePublish must emit
// exactly the notifications and forwards a direct scan of the
// reverse-path tables predicts.
func TestPublishItreeMatchesLinearReference(t *testing.T) {
	rng := rand.New(rand.NewPCG(17, 18))
	b := newBroker(t, store.PolicyNone) // flood: every sub reaches every table
	for _, n := range []string{"n1", "n2"} {
		if err := b.ConnectNeighbor(n); err != nil {
			t.Fatal(err)
		}
	}
	b.AttachClient("c1")
	b.AttachClient("c2")
	ports := []string{"n1", "n2", "c1", "c2"}

	randomBox := func() subscription.Subscription {
		lo1, lo2 := rng.Int64N(80), rng.Int64N(80)
		return box(lo1, lo1+rng.Int64N(100-lo1), lo2, lo2+rng.Int64N(100-lo2))
	}
	var live []string
	for step := 0; step < 300; step++ {
		switch op := rng.IntN(10); {
		case op < 4: // subscribe from a random port
			subID := fmt.Sprintf("s%d", step)
			from := ports[rng.IntN(len(ports))]
			if _, err := b.Handle(from, Message{Kind: MsgSubscribe, SubID: subID, Sub: randomBox()}); err != nil {
				t.Fatal(err)
			}
			live = append(live, subID)
		case op < 5 && len(live) > 0: // unsubscribe via its source port
			i := rng.IntN(len(live))
			subID := live[i]
			live = append(live[:i], live[i+1:]...)
			src := b.source[subID]
			if _, err := b.Handle(src, Message{Kind: MsgUnsubscribe, SubID: subID}); err != nil {
				t.Fatal(err)
			}
		default: // publish and cross-check
			from := ports[rng.IntN(len(ports))]
			pub := subscription.NewPublication(rng.Int64N(101), rng.Int64N(101))

			wantNotify := map[string]bool{} // "port/subID"
			wantForward := map[string]bool{}
			for port, subs := range b.in {
				if port == from {
					continue
				}
				for subID, sub := range subs {
					if !sub.Matches(pub) {
						continue
					}
					if b.clients[port] {
						wantNotify[port+"/"+subID] = true
					} else if b.neighbors[port] {
						wantForward[port] = true
					}
				}
			}
			out, err := b.Handle(from, Message{Kind: MsgPublish, PubID: fmt.Sprintf("p%d", step), Pub: pub})
			if err != nil {
				t.Fatal(err)
			}
			gotNotify := map[string]bool{}
			gotForward := map[string]bool{}
			for _, o := range out {
				switch o.Msg.Kind {
				case MsgNotify:
					gotNotify[o.To+"/"+o.Msg.SubID] = true
				case MsgPublish:
					gotForward[o.To] = true
				default:
					t.Fatalf("unexpected outbound kind %v", o.Msg.Kind)
				}
			}
			if !maps.Equal(gotNotify, wantNotify) {
				t.Fatalf("step %d: notifications %v, reference %v", step, gotNotify, wantNotify)
			}
			if !maps.Equal(gotForward, wantForward) {
				t.Fatalf("step %d: forwards %v, reference %v", step, gotForward, wantForward)
			}
		}
	}
}

// TestConnectNeighborPinsSingleShard guards the broker invariant that
// per-neighbor tables are single-shard with independent per-neighbor
// checker streams, even when caller table options say otherwise.
func TestConnectNeighborPinsSingleShard(t *testing.T) {
	b, err := New("B", store.PolicyGroup, WithTableOptions(subsume.WithShards(4)))
	if err != nil {
		t.Fatal(err)
	}
	if err := b.ConnectNeighbor("n1"); err != nil {
		t.Fatal(err)
	}
	if got := b.out["n1"].Shards(); got != 1 {
		t.Fatalf("per-neighbor table has %d shards, want 1", got)
	}
}

// TestDupAnnouncementCreatesReversePath pins the cycle-gradient fix:
// when a subscription already known via one port is announced again
// over another (the inevitable duplicate on any cyclic overlay), the
// announcing port must join the reverse-path set — it leads to a
// broker that suppressed covered subscriptions behind this
// announcement, and publications that never forward toward it are
// silently lost there. The cancellation paths must retire exactly the
// registrations the announcements created.
func TestDupAnnouncementCreatesReversePath(t *testing.T) {
	b := newBroker(t, store.PolicyPairwise)
	for _, n := range []string{"X", "Y"} {
		if err := b.ConnectNeighbor(n); err != nil {
			t.Fatal(err)
		}
	}
	w := box(0, 100, 0, 100)
	sub := func(from string) {
		if _, err := b.Handle(from, Message{Kind: MsgSubscribe, SubID: "w", Sub: w}); err != nil {
			t.Fatal(err)
		}
	}
	pubTargets := func(pubID string) map[string]bool {
		outs, err := b.Handle("X", Message{Kind: MsgPublish, PubID: pubID,
			Pub: subscription.NewPublication(50, 50)})
		if err != nil {
			t.Fatal(err)
		}
		to := make(map[string]bool)
		for _, o := range outs {
			if o.Msg.Kind == MsgPublish {
				to[o.To] = true
			}
		}
		return to
	}

	sub("X") // first arrival: reverse path toward X
	if to := pubTargets("p1"); to["Y"] {
		t.Fatal("publication forwarded to Y before Y announced anything")
	}
	sub("Y") // cycle duplicate: dropped as a re-flood, but Y is a valid path now
	if to := pubTargets("p2"); !to["Y"] {
		t.Error("publication not forwarded to the duplicate announcer Y — covered subscriptions behind Y are unreachable")
	}
	// Y retires its copy: the gradient toward Y goes with it, while the
	// owning path via X keeps the subscription alive.
	if _, err := b.Handle("Y", Message{Kind: MsgUnsubscribe, SubID: "w"}); err != nil {
		t.Fatal(err)
	}
	if to := pubTargets("p3"); to["Y"] {
		t.Error("publication still forwarded to Y after Y cancelled its copy")
	}
	if _, ok := b.KnowsSubscription("w"); !ok {
		t.Fatal("non-owner cancellation removed the subscription entirely")
	}
	// The owner cancels: everything goes.
	if _, err := b.Handle("X", Message{Kind: MsgUnsubscribe, SubID: "w"}); err != nil {
		t.Fatal(err)
	}
	if _, ok := b.KnowsSubscription("w"); ok {
		t.Fatal("owner cancellation left the subscription behind")
	}
	if to := pubTargets("p4"); len(to) != 0 {
		t.Errorf("publication forwarded to %v after full cancellation", to)
	}
}
