package broker

import (
	"fmt"
	"testing"

	"probsum/internal/store"
	"probsum/internal/subscription"
)

// TestPubDedupBounded is the ISSUE 4 soak test: a long-running broker
// fed far more distinct publications than its dedup limit must keep
// its duplicate-suppression memory bounded (~2·limit entries) while
// still catching duplicates inside the horizon.
func TestPubDedupBounded(t *testing.T) {
	const limit = 512
	b, err := New("B1", store.PolicyNone, WithDedupLimit(limit))
	if err != nil {
		t.Fatal(err)
	}
	b.AttachClient("pub")

	publish := func(id string) Metrics {
		if _, err := b.Handle("pub", Message{Kind: MsgPublish, PubID: id,
			Pub: subscription.NewPublication(1)}); err != nil {
			t.Fatal(err)
		}
		return b.Metrics()
	}

	const total = 20 * limit
	for i := 0; i < total; i++ {
		publish(fmt.Sprintf("p%d", i))
		if size := b.dedupSize(); size > 2*limit {
			t.Fatalf("after %d pubs the dedup set holds %d entries (> 2×%d)", i+1, size, limit)
		}
	}
	if got := b.Metrics().PubsReceived; got != total {
		t.Fatalf("PubsReceived = %d, want %d", got, total)
	}

	// A duplicate inside the horizon is still suppressed, even when a
	// rotation happened between the two arrivals: publish a fresh ID,
	// rotate by filling a full generation, then repeat it.
	before := publish("dup-probe").DupPubsDropped
	for i := 0; i < limit; i++ {
		publish(fmt.Sprintf("fill%d", i))
	}
	if got := publish("dup-probe").DupPubsDropped; got != before+1 {
		t.Fatalf("duplicate within the horizon not suppressed: drops %d -> %d", before, got)
	}

	// Beyond the horizon (2×limit newer IDs) the ID has been forgotten
	// — the documented at-least-once trade for the memory bound.
	for i := 0; i < 2*limit; i++ {
		publish(fmt.Sprintf("flush%d", i))
	}
	pubsBefore := b.Metrics().PubsReceived
	if got := publish("dup-probe").PubsReceived; got != pubsBefore+1 {
		t.Fatal("a publication beyond the dedup horizon should be processed again")
	}
}

// TestPubDedupRotationBoundary pins the horizon at its exact edge: an
// ID re-sighted while the current generation sits one insert short of
// rotation must survive the NEXT rotation too, because the documented
// horizon — at least limit newer distinct IDs — restarts from the
// LAST sighting. Without refreshing previous-generation hits into the
// current generation, the re-sighted ID rotates away with its old
// generation and a duplicate slips through after exactly limit newer
// IDs.
func TestPubDedupRotationBoundary(t *testing.T) {
	const limit = 8
	b, err := New("B1", store.PolicyNone, WithDedupLimit(limit))
	if err != nil {
		t.Fatal(err)
	}
	b.AttachClient("pub")

	publish := func(id string) Metrics {
		if _, err := b.Handle("pub", Message{Kind: MsgPublish, PubID: id,
			Pub: subscription.NewPublication(1)}); err != nil {
			t.Fatal(err)
		}
		if size := b.dedupSize(); size > 2*limit {
			t.Fatalf("dedup set holds %d entries (> 2×%d)", size, limit)
		}
		return b.Metrics()
	}

	publish("X")
	// Fill to the rotation: X's generation becomes previous.
	for i := 0; i < limit-1; i++ {
		publish(fmt.Sprintf("a%d", i))
	}
	// Re-sight X out of the previous generation — still a duplicate,
	// and the horizon restarts here.
	before := b.Metrics().DupPubsDropped
	if got := publish("X").DupPubsDropped; got != before+1 {
		t.Fatalf("X not suppressed from the previous generation: drops %d -> %d", before, got)
	}
	// Exactly limit newer distinct IDs — the minimum horizon from the
	// re-sighting.
	for i := 0; i < limit; i++ {
		publish(fmt.Sprintf("b%d", i))
	}
	before = b.Metrics().DupPubsDropped
	if got := publish("X").DupPubsDropped; got != before+1 {
		t.Fatalf("X processed again after exactly %d newer IDs since its last sighting (horizon must be ≥ %d): drops %d -> %d",
			limit, limit, before, got)
	}
}

// TestPubDedupDefaultUnchanged pins that within the default horizon
// the broker behaves exactly as the old unbounded set.
func TestPubDedupDefaultUnchanged(t *testing.T) {
	b, err := New("B1", store.PolicyNone)
	if err != nil {
		t.Fatal(err)
	}
	b.AttachClient("pub")
	for i := 0; i < 1000; i++ {
		id := fmt.Sprintf("p%d", i%100) // every ID repeated 10 times
		if _, err := b.Handle("pub", Message{Kind: MsgPublish, PubID: id,
			Pub: subscription.NewPublication(1)}); err != nil {
			t.Fatal(err)
		}
	}
	m := b.Metrics()
	if m.PubsReceived != 100 || m.DupPubsDropped != 900 {
		t.Fatalf("received %d / dropped %d, want 100 / 900", m.PubsReceived, m.DupPubsDropped)
	}
}
