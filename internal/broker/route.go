// Rendezvous routing: the structured alternative to flooding
// subscriptions on every overlay link (DESIGN.md §14).
//
// A Router (implemented by the cluster layer over its SWIM member
// view) maps attribute-space regions to rendezvous brokers and picks
// the overlay next hop toward any member. With a router attached,
// client subscriptions are no longer announced on every link: they
// travel hop-by-hop toward the rendezvous broker of each attribute
// cell they span, as MsgRouteAnnounce frames, and every broker along
// the path installs the normal reverse-path state. Publications are
// routed toward the rendezvous of their own cell, where the reverse
// paths of all matching subscriptions converge — matching pub and sub
// meet at the rendezvous at the latest, and reverse-path delivery
// takes over from wherever they first meet.
//
// Flooding remains the oracle and the universal safety valve: any
// routing decision that cannot be made (no router — including journal
// replay, an unroutable target, no strictly closer neighbor) degrades
// to the flood path for that subscription or publication, which is
// always correct and merely costs traffic. Coverage aggregation still
// applies along routed paths: subscriptions sharing a (link, target)
// pair are reduced through a per-pair coverage table, so a broad
// routed subscription suppresses the narrow ones behind it exactly as
// flooded ones are suppressed per link.
package broker

import (
	"fmt"
	"sort"

	"probsum/internal/match"
	"probsum/internal/store"
	"probsum/internal/subscription"
	"probsum/subsume"
)

// Router supplies rendezvous routing decisions. Implementations must
// be safe for concurrent callers and must not call back into the
// broker while servicing a lookup (the broker holds its routing lock).
type Router interface {
	// Targets returns the rendezvous broker IDs responsible for the
	// attribute-space cells the subscription spans, deduplicated. ok is
	// false when the subscription should flood instead (it spans too
	// many cells, or the member view is unusable).
	Targets(sub subscription.Subscription) (targets []string, ok bool)
	// PubTarget returns the rendezvous broker of the publication's
	// cell; ok false floods.
	PubTarget(pub subscription.Publication) (target string, ok bool)
	// NextHop returns the neighbor strictly closer to target on the
	// overlay; ok false (no progress, target unknown) floods.
	NextHop(target string) (hop string, ok bool)
}

// SetRouter attaches (or, with nil, detaches) the rendezvous router.
// Without a router every subscription floods, exactly as before the
// routing layer existed — flood mode is the rollback knob.
func (b *Broker) SetRouter(r Router) {
	if r == nil {
		b.router.Store(nil)
		return
	}
	b.router.Store(&r)
}

// routerLocked returns the attached router, if any.
func (b *Broker) routerLocked() Router {
	if p := b.router.Load(); p != nil {
		return *p
	}
	return nil
}

// routeFwdSet records the forwarding decision for (subID, target):
// hop is the neighbor the announce went to, "" when the subscription
// terminated here (this broker is the rendezvous) or degraded to
// flood for that target.
//
// +mustlock:mu
func (b *Broker) routeFwdSet(subID, target, hop string) {
	m := b.routeFwd[subID]
	if m == nil {
		m = make(map[string]string)
		b.routeFwd[subID] = m
	}
	m[target] = hop
}

// routeTableLocked returns (creating if needed) the coverage table for
// routed subscriptions forwarded to neighbor hop toward target. One
// table per (link, target) pair: subscriptions bound for different
// rendezvous must not suppress each other — their announce paths
// diverge downstream — while those sharing the pair aggregate under
// the same coverage policy as flooded ones.
//
// +mustlock:mu
func (b *Broker) routeTableLocked(hop, target string) (*subsume.Table, error) {
	byTarget := b.routeOut[hop]
	if byTarget == nil {
		byTarget = make(map[string]*subsume.Table)
		b.routeOut[hop] = byTarget
	}
	if tbl := byTarget[target]; tbl != nil {
		return tbl, nil
	}
	policy, err := tablePolicy(b.policy)
	if err != nil {
		return nil, fmt.Errorf("broker %s: route table %s->%s: %w", b.id, hop, target, err)
	}
	opts := append(append([]subsume.TableOption{}, b.tableOpts...), subsume.WithShards(1))
	if b.policy == store.PolicyGroup {
		opts = append(opts, subsume.WithTableChecker(
			subsume.WithSeed(b.seed^fnv1a(b.id), fnv1a(hop+"\x00"+target)|1),
		))
	}
	tbl, err := subsume.NewTable(policy, opts...)
	if err != nil {
		return nil, fmt.Errorf("broker %s: route table %s->%s: %w", b.id, hop, target, err)
	}
	byTarget[target] = tbl
	return tbl, nil
}

// routeSubLocked attempts the routed path for one client-origin
// subscription that was just installed. It either routes the
// subscription toward every rendezvous target (returning the announce
// frames and routed=true) or declines entirely (routed=false, no
// state touched) so the caller floods — partial routing is never left
// behind.
//
// +mustlock:mu
func (b *Broker) routeSubLocked(from, subID string, sub subscription.Subscription) ([]Outbound, bool, error) {
	r := b.routerLocked()
	if r == nil || !b.clients[from] {
		return nil, false, nil
	}
	targets, ok := r.Targets(sub)
	if !ok || len(targets) == 0 {
		return nil, false, nil
	}
	sort.Strings(targets)
	// Resolve every hop before admitting anything: one unroutable
	// target floods the whole subscription.
	hops := make([]string, len(targets))
	for i, t := range targets {
		if t == b.id {
			continue // terminal at the origin
		}
		hop, ok := r.NextHop(t)
		if !ok || hop == from || !b.neighbors[hop] {
			return nil, false, nil
		}
		hops[i] = hop
	}
	id := b.outIDs[subID]
	var out []Outbound
	for i, t := range targets {
		if hops[i] == "" {
			b.routeFwdSet(subID, t, "")
			continue
		}
		tbl, err := b.routeTableLocked(hops[i], t)
		if err != nil {
			return nil, false, err
		}
		res, err := tbl.Subscribe(id, sub)
		if err != nil {
			return nil, false, fmt.Errorf("broker %s: route %s toward %s: %w", b.id, subID, t, err)
		}
		b.routeFwdSet(subID, t, hops[i])
		if res.Status == store.StatusActive {
			b.metrics.routeForwards.Add(1)
			out = append(out, Outbound{To: hops[i], Msg: Message{
				Kind:   MsgRouteAnnounce,
				Target: t,
				Subs:   []BatchSub{{SubID: subID, Sub: sub}},
			}})
		} else {
			b.metrics.subsSuppressed.Add(1)
		}
	}
	b.metrics.routedSubs.Add(1)
	return out, true, nil
}

// routeSubBatchLocked runs routeSubLocked over a freshly installed
// batch, returning the routed announce frames and the items that must
// flood instead.
//
// +mustlock:mu
func (b *Broker) routeSubBatchLocked(from string, fresh []BatchSub) ([]Outbound, []BatchSub, error) {
	if b.routerLocked() == nil || !b.clients[from] {
		return nil, fresh, nil
	}
	var out []Outbound
	flood := make([]BatchSub, 0, len(fresh))
	for _, it := range fresh {
		o, routed, err := b.routeSubLocked(from, it.SubID, it.Sub)
		if err != nil {
			return nil, nil, err
		}
		if routed {
			out = append(out, o...)
		} else {
			flood = append(flood, it)
		}
	}
	return out, flood, nil
}

// handleRouteAnnounce relays routed subscriptions one hop closer to
// their rendezvous. Reverse-path state installs exactly as for a
// SUBBATCH arrival (first arrival defines the path, duplicate copies
// balance the digest); the forwarding decision is per (subscription,
// target), so a second rendezvous path through this broker still
// propagates even when the subscription itself is already known.
// Journaled like the other state-changing kinds; on replay the router
// is absent and the fallback floods, which digest reconciliation then
// reconciles with the neighbors — safe, never lossy.
//
// +mustlock:mu
func (b *Broker) handleRouteAnnounce(from string, msg Message) ([]Outbound, error) {
	if msg.Target == "" {
		return nil, fmt.Errorf("broker %s: route-announce without target", b.id)
	}
	for _, it := range msg.Subs {
		if it.SubID == "" {
			return nil, fmt.Errorf("broker %s: route-announce item without SubID", b.id)
		}
		if !it.Sub.IsSatisfiable() {
			return nil, fmt.Errorf("broker %s: route-announce item %s is unsatisfiable", b.id, it.SubID)
		}
	}
	pending := make([]BatchSub, 0, len(msg.Subs))
	for _, it := range msg.Subs {
		b.recvAdd(from, it.SubID)
		if _, seen := b.source[it.SubID]; !seen {
			b.metrics.subsReceived.Add(1)
			b.source[it.SubID] = from
			if b.in[from] == nil {
				b.in[from] = make(map[string]subscription.Subscription)
			}
			b.in[from][it.SubID] = it.Sub
			b.matcher(from).Add(match.ID(b.storeID(it.SubID)), it.Sub)
		} else {
			// A known subscription announced again over another port:
			// record the additional reverse path, exactly as the flood
			// path does for cycle duplicates.
			b.recordDupPathLocked(from, it.SubID, it.Sub)
		}
		if fwd := b.routeFwd[it.SubID]; fwd != nil {
			if _, done := fwd[msg.Target]; done {
				b.metrics.dupSubsDropped.Add(1)
				continue
			}
		}
		pending = append(pending, it)
	}
	if len(pending) == 0 {
		return nil, nil
	}
	if msg.Target == b.id {
		// This broker IS the rendezvous: the announce terminates, the
		// reverse paths installed above are what publications routed
		// here fan out over.
		for _, it := range pending {
			b.routeFwdSet(it.SubID, msg.Target, "")
		}
		return nil, nil
	}
	hop := ""
	if r := b.routerLocked(); r != nil {
		if h, ok := r.NextHop(msg.Target); ok && h != from && b.neighbors[h] {
			hop = h
		}
	}
	if hop == "" {
		// No routed progress (router absent — e.g. journal replay — or
		// the overlay offers no closer neighbor): degrade these items to
		// flood from here on out.
		for _, it := range pending {
			b.routeFwdSet(it.SubID, msg.Target, "")
		}
		return b.floodRoutedLocked(from, pending)
	}
	tbl, err := b.routeTableLocked(hop, msg.Target)
	if err != nil {
		return nil, err
	}
	ids := make([]subsume.ID, 0, len(pending))
	subs := make([]subscription.Subscription, 0, len(pending))
	items := make([]BatchSub, 0, len(pending))
	for _, it := range pending {
		id := b.outIDs[it.SubID]
		if _, _, exists := tbl.Get(id); exists {
			// Already admitted toward this (hop, target) pair by an
			// earlier path; nothing new to announce.
			continue
		}
		ids = append(ids, id)
		subs = append(subs, it.Sub)
		items = append(items, it)
	}
	for _, it := range pending {
		b.routeFwdSet(it.SubID, msg.Target, hop)
	}
	if len(ids) == 0 {
		return nil, nil
	}
	results, err := tbl.SubscribeBatch(ids, subs)
	if err != nil {
		return nil, fmt.Errorf("broker %s: route toward %s via %s: %w", b.id, msg.Target, hop, err)
	}
	fwd := make([]BatchSub, 0, len(items))
	for i, res := range results {
		if res.Status == store.StatusActive {
			fwd = append(fwd, items[i])
		}
	}
	b.metrics.routeForwards.Add(int64(len(fwd)))
	b.metrics.subsSuppressed.Add(int64(len(items) - len(fwd)))
	if len(fwd) == 0 {
		return nil, nil
	}
	return []Outbound{{To: hop, Msg: Message{Kind: MsgRouteAnnounce, Target: msg.Target, Subs: fwd}}}, nil
}

// floodRoutedLocked admits routed items into every per-neighbor flood
// table (except the arrival port) and emits the active subset as one
// SUBBATCH per neighbor — the mid-path degradation of a route that
// cannot progress. Items a table already holds (a neighbor backfill
// raced the route) are skipped for that neighbor.
//
// +mustlock:mu
func (b *Broker) floodRoutedLocked(from string, items []BatchSub) ([]Outbound, error) {
	var out []Outbound
	for _, n := range sortedKeys(b.neighbors) {
		if n == from {
			continue
		}
		tbl := b.out[n]
		ids := make([]subsume.ID, 0, len(items))
		subs := make([]subscription.Subscription, 0, len(items))
		kept := make([]BatchSub, 0, len(items))
		for _, it := range items {
			id := b.outIDs[it.SubID]
			if _, _, exists := tbl.Get(id); exists {
				continue
			}
			ids = append(ids, id)
			subs = append(subs, it.Sub)
			kept = append(kept, it)
		}
		if len(ids) == 0 {
			continue
		}
		results, err := tbl.SubscribeBatch(ids, subs)
		if err != nil {
			return nil, fmt.Errorf("broker %s: neighbor %s: %w", b.id, n, err)
		}
		fwd := make([]BatchSub, 0, len(kept))
		for i, res := range results {
			if res.Status == store.StatusActive {
				fwd = append(fwd, kept[i])
			}
		}
		b.metrics.subsForwarded.Add(int64(len(fwd)))
		b.metrics.subsSuppressed.Add(int64(len(kept) - len(fwd)))
		if len(fwd) > 0 {
			out = append(out, Outbound{To: n, Msg: Message{Kind: MsgSubscribeBatch, Subs: fwd}})
		}
	}
	return out, nil
}

// routeUnsubLocked tears down the routed forwarding state of one
// subscription being removed: per recorded (target → hop) entry the
// routed coverage table drops it, the cancellation follows the
// announce path as a plain unsubscribe, and promotions the removal
// uncovered are re-announced toward the same rendezvous.
//
// +mustlock:mu
func (b *Broker) routeUnsubLocked(subID string, id subsume.ID) ([]Outbound, error) {
	fwd := b.routeFwd[subID]
	if fwd == nil {
		return nil, nil
	}
	delete(b.routeFwd, subID)
	targets := make([]string, 0, len(fwd))
	for t := range fwd {
		targets = append(targets, t)
	}
	sort.Strings(targets)
	var out []Outbound
	for _, t := range targets {
		hop := fwd[t]
		if hop == "" {
			continue // terminal or flooded: the flood tables own it
		}
		byTarget := b.routeOut[hop]
		if byTarget == nil {
			continue
		}
		tbl := byTarget[t]
		if tbl == nil {
			continue
		}
		res, err := tbl.Unsubscribe(id)
		if err != nil {
			return out, fmt.Errorf("broker %s: route unsub %s toward %s: %w", b.id, subID, t, err)
		}
		if !res.Existed {
			continue
		}
		if res.WasActive {
			b.metrics.unsubsForwarded.Add(1)
			out = append(out, Outbound{To: hop, Msg: Message{Kind: MsgUnsubscribe, SubID: subID}})
		}
		promoted := make([]BatchSub, 0, len(res.Promoted))
		for _, pid := range res.Promoted {
			sub, _, found := tbl.Get(pid)
			if !found {
				continue
			}
			pSubID := b.idToSub[pid]
			if pSubID == "" {
				continue
			}
			b.metrics.promotions.Add(1)
			b.metrics.routeForwards.Add(1)
			promoted = append(promoted, BatchSub{SubID: pSubID, Sub: sub})
		}
		if len(promoted) > 0 {
			out = append(out, Outbound{To: hop, Msg: Message{Kind: MsgRouteAnnounce, Target: t, Subs: promoted}})
		}
	}
	return out, nil
}

// routePublishLocked extends a publication's reverse-path forwards
// with one routed forward toward the rendezvous of its cell, so a
// publication and the subscriptions matching it meet at the rendezvous
// at the latest. No progress toward the rendezvous floods the
// publication instead — bounded by every broker's dedup window, and
// the reason routed delivery can never lose what flooding would have
// delivered. Runs on the publish path: read-only against the routing
// state, safe under the shared lock.
//
// +mustlock:mu (shared)
func (b *Broker) routePublishLocked(from string, msg Message, out []Outbound) []Outbound {
	r := b.routerLocked()
	if r == nil {
		return out
	}
	t, ok := r.PubTarget(msg.Pub)
	if !ok || t == b.id {
		return out
	}
	sentTo := func(n string) bool {
		for _, o := range out {
			if o.To == n && o.Msg.Kind == MsgPublish {
				return true
			}
		}
		return false
	}
	if hop, ok := r.NextHop(t); ok && hop != from && b.neighbors[hop] {
		if !sentTo(hop) {
			b.metrics.routedPubs.Add(1)
			b.metrics.pubsForwarded.Add(1)
			out = append(out, Outbound{To: hop, Msg: msg})
		}
		return out
	}
	for _, n := range sortedKeys(b.neighbors) {
		if n == from || sentTo(n) {
			continue
		}
		b.metrics.pubsForwarded.Add(1)
		out = append(out, Outbound{To: n, Msg: msg})
	}
	return out
}

// ReannounceRoutes recomputes the rendezvous of every client-owned
// routed subscription against the current member view and emits the
// announces for targets whose next hop changed (or that are new) —
// the re-routing step the cluster layer kicks when membership changes
// (a rendezvous died, a closer overlay path appeared). Old paths are
// left in place: extra reverse-path state only widens delivery and is
// garbage-collected by unsubscribe and digest reconciliation.
//brokervet:allow journalcheck route state is re-derived, never journaled: replay runs with no router attached (subscriptions flood, which is always correct) and the cluster layer kicks ReannounceRoutes again after recovery
func (b *Broker) ReannounceRoutes() []Outbound {
	r := b.routerLocked()
	if r == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	subIDs := make([]string, 0, len(b.routeFwd))
	for subID := range b.routeFwd {
		if b.clients[b.source[subID]] {
			subIDs = append(subIDs, subID)
		}
	}
	sort.Strings(subIDs)
	var out []Outbound
	for _, subID := range subIDs {
		src := b.source[subID]
		sub, ok := b.in[src][subID]
		if !ok {
			continue
		}
		targets, ok := r.Targets(sub)
		if !ok {
			continue
		}
		sort.Strings(targets)
		id := b.outIDs[subID]
		for _, t := range targets {
			if t == b.id {
				b.routeFwdSet(subID, t, "")
				continue
			}
			prev, had := b.routeFwd[subID][t]
			if had && prev == "" {
				continue // already terminal or flooded for this target
			}
			hop, ok := r.NextHop(t)
			if !ok || hop == src || !b.neighbors[hop] {
				continue
			}
			if had && prev == hop {
				continue
			}
			tbl, err := b.routeTableLocked(hop, t)
			if err != nil {
				continue
			}
			active := false
			if _, status, exists := tbl.Get(id); exists {
				active = status == store.StatusActive
			} else if res, err := tbl.Subscribe(id, sub); err == nil {
				active = res.Status == store.StatusActive
			} else {
				continue
			}
			b.routeFwdSet(subID, t, hop)
			if active {
				b.metrics.routeForwards.Add(1)
				out = append(out, Outbound{To: hop, Msg: Message{
					Kind:   MsgRouteAnnounce,
					Target: t,
					Subs:   []BatchSub{{SubID: subID, Sub: sub}},
				}})
			}
		}
	}
	return out
}

// HasRoutedClientSubs reports whether any client-owned subscription
// currently has routed forwarding state — the cheap pre-check the
// cluster layer's re-route kick uses to skip brokers with nothing to
// re-announce.
func (b *Broker) HasRoutedClientSubs() bool {
	b.mu.RLock()
	defer b.mu.RUnlock()
	for subID := range b.routeFwd {
		if b.clients[b.source[subID]] {
			return true
		}
	}
	return false
}

// RouteTableStats sizes the routed forwarding state: how many
// (neighbor, target) coverage tables exist and the total routed
// entries they hold (active and covered). The scale harness compares
// this against the flood baseline's per-link table growth.
func (b *Broker) RouteTableStats() (tables, entries int) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	for _, byTarget := range b.routeOut {
		for _, tbl := range byTarget {
			tables++
			entries += tbl.Len()
		}
	}
	return tables, entries
}

// RouteTargetLoad reports the routed-entry count per rendezvous
// target, summed over neighbors — a direct view of per-owner load for
// the hot-cell question the rendezvous rungs keep asking. The metrics
// endpoint exports it as a labeled gauge family.
func (b *Broker) RouteTargetLoad() map[string]int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	out := make(map[string]int)
	for _, byTarget := range b.routeOut {
		for target, tbl := range byTarget {
			out[target] += tbl.Len()
		}
	}
	return out
}

// CountControlDrop counts one control frame dropped before reaching a
// peer (its cluster capability still unknown mid-handshake, or its
// wire vocabulary predates the kind). The transport calls it at every
// silent-drop site so lost probes are visible in Metrics instead of
// surfacing only as spurious suspicion.
func (b *Broker) CountControlDrop() { b.metrics.controlDropped.Add(1) }

// sentActiveLocked visits every subscription this broker actively
// announced toward peer, across the flood table and every routed
// (peer, target) table, each subscription once — the sender-side
// ground truth the link digest and the sync listing are built from.
//
// +mustlock:mu (shared)
func (b *Broker) sentActiveLocked(peer string, visit func(subID string, sid subsume.ID, tbl *subsume.Table)) bool {
	tbl, ok := b.out[peer]
	if !ok {
		return false
	}
	seen := make(map[string]bool)
	for _, sid := range tbl.ActiveIDs() {
		subID := b.idToSub[sid]
		if subID == "" || seen[subID] {
			continue
		}
		seen[subID] = true
		visit(subID, sid, tbl)
	}
	for _, target := range sortedKeysTables(b.routeOut[peer]) {
		rt := b.routeOut[peer][target]
		for _, sid := range rt.ActiveIDs() {
			subID := b.idToSub[sid]
			if subID == "" || seen[subID] {
				continue
			}
			seen[subID] = true
			visit(subID, sid, rt)
		}
	}
	return true
}

// sortedKeysTables lists a target-table map's keys in order.
func sortedKeysTables(m map[string]*subsume.Table) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
