package broker

import (
	"fmt"
	"testing"

	"probsum/internal/store"
	"probsum/internal/subscription"
)

// deliver pushes every outbound message addressed to one of the given
// brokers into that broker, returning the next wave — a two-broker
// micro-simulator for digest exchanges.
func deliver(t *testing.T, out []Outbound, fromID string, brokers map[string]*Broker) []Outbound {
	t.Helper()
	var next []Outbound
	for _, o := range out {
		dst, ok := brokers[o.To]
		if !ok {
			continue
		}
		o2, err := dst.Handle(fromID, o.Msg)
		if err != nil {
			t.Fatalf("deliver %v to %s: %v", o.Msg.Kind, o.To, err)
		}
		next = append(next, o2...)
	}
	return next
}

func TestRecvTrackingAndDigestAgreement(t *testing.T) {
	a := newBroker(t, store.PolicyPairwise)
	c, err := New("C", store.PolicyPairwise)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.ConnectNeighbor("C"); err != nil {
		t.Fatal(err)
	}
	if err := c.ConnectNeighbor("B"); err != nil {
		t.Fatal(err)
	}
	a.AttachClient("cl")

	// Subscribe via A's client: A forwards to C.
	for i := 0; i < 20; i++ {
		out, err := a.Handle("cl", Message{Kind: MsgSubscribe, SubID: fmt.Sprintf("s%02d", i), Sub: box(int64(i*10), int64(i*10+5), 0, 5)})
		if err != nil {
			t.Fatal(err)
		}
		for _, o := range out {
			if o.To != "C" {
				continue
			}
			if _, err := c.Handle("B", o.Msg); err != nil {
				t.Fatal(err)
			}
		}
	}

	da, ok := a.LinkDigest("C")
	if !ok {
		t.Fatal("no digest for link to C")
	}
	dc := c.ReceivedDigest("B")
	if da != dc {
		t.Fatalf("digests disagree after clean sync: sent %+v received %+v", da, dc)
	}
	if got := len(c.ReceivedFrom("B")); got != int(da.Count) {
		t.Fatalf("recv set has %d entries, digest count %d", got, da.Count)
	}

	// A clean unsubscribe keeps them agreeing.
	out, err := a.Handle("cl", Message{Kind: MsgUnsubscribe, SubID: "s03"})
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range out {
		if o.To == "C" {
			if _, err := c.Handle("B", o.Msg); err != nil {
				t.Fatal(err)
			}
		}
	}
	da, _ = a.LinkDigest("C")
	if dc := c.ReceivedDigest("B"); da != dc {
		t.Fatalf("digests disagree after unsubscribe: %+v vs %+v", da, dc)
	}
}

// TestDigestSyncRepairsLostSubscription models a link that dropped a
// SUBSCRIBE (crash, lossy link): the receiver never saw it, the
// sender's table has it active. One gossip digest + sync round must
// deliver it.
func TestDigestSyncRepairsLostSubscription(t *testing.T) {
	a := newBroker(t, store.PolicyNone) // id "B"
	c, err := New("C", store.PolicyNone)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.ConnectNeighbor("C"); err != nil {
		t.Fatal(err)
	}
	if err := c.ConnectNeighbor("B"); err != nil {
		t.Fatal(err)
	}
	a.AttachClient("cl")

	// s-lost is forwarded toward C but the frame is "dropped".
	if _, err := a.Handle("cl", Message{Kind: MsgSubscribe, SubID: "s-lost", Sub: box(0, 5, 0, 5)}); err != nil {
		t.Fatal(err)
	}
	if len(c.ReceivedFrom("B")) != 0 {
		t.Fatal("setup: C received the dropped frame")
	}

	// Gossip from A toward C carries A's link digest.
	d, ok := a.LinkDigest("C")
	if !ok {
		t.Fatal(err)
	}
	brokers := map[string]*Broker{"B": a, "C": c}
	wave, err := c.Handle("B", Message{Kind: MsgGossip, Digest: &d})
	if err != nil {
		t.Fatal(err)
	}
	if len(wave) != 1 || wave[0].Msg.Kind != MsgSyncRequest {
		t.Fatalf("expected one sync request, got %+v", wave)
	}
	if got := c.Metrics().SyncRequests; got != 1 {
		t.Fatalf("SyncRequests = %d", got)
	}
	// Request -> A, roots -> C, possible onward forwards ignored.
	wave = deliver(t, wave, "C", brokers) // A answers with roots
	if len(wave) != 1 || wave[0].Msg.Kind != MsgSyncRoots {
		t.Fatalf("expected one sync-roots, got %+v", wave)
	}
	deliver(t, wave, "B", brokers)

	if src, ok := c.KnowsSubscription("s-lost"); !ok || src != "B" {
		t.Fatalf("s-lost not repaired: src=%q ok=%v", src, ok)
	}
	da, _ := a.LinkDigest("C")
	if dc := c.ReceivedDigest("B"); da != dc {
		t.Fatalf("digests still disagree after sync: %+v vs %+v", da, dc)
	}
	if got := a.Metrics().SyncRootsResent; got != 1 {
		t.Fatalf("SyncRootsResent = %d", got)
	}

	// A matching publication at C now routes back to A.
	out, err := c.Handle("x", Message{Kind: MsgPublish, PubID: "p1", Pub: subscription.NewPublication(3, 3)})
	if err != nil {
		t.Fatal(err)
	}
	foundFwd := false
	for _, o := range out {
		if o.To == "B" && o.Msg.Kind == MsgPublish {
			foundFwd = true
		}
	}
	if !foundFwd {
		t.Fatal("publication not forwarded along the repaired reverse path")
	}
}

// TestDigestSyncPrunesStaleReversePath is the regression test for the
// dead-link unsubscribe bug: the sender processed an Unsubscribe while
// its link to the neighbor was down, so the neighbor keeps the
// subscription — and its reverse-path entry — forever. The digest
// exchange must garbage-collect it and run the full downstream
// cancellation (promotions included).
func TestDigestSyncPrunesStaleReversePath(t *testing.T) {
	a := newBroker(t, store.PolicyPairwise) // id "B"
	c, err := New("C", store.PolicyPairwise)
	if err != nil {
		t.Fatal(err)
	}
	d, err := New("D", store.PolicyPairwise)
	if err != nil {
		t.Fatal(err)
	}
	for _, pair := range []struct {
		b    *Broker
		peer string
	}{{a, "C"}, {c, "B"}, {c, "D"}, {d, "C"}} {
		if err := pair.b.ConnectNeighbor(pair.peer); err != nil {
			t.Fatal(err)
		}
	}
	a.AttachClient("cl")
	brokers := map[string]*Broker{"B": a, "C": c, "D": d}

	// Broad root s-broad (covers s-narrow) announced B -> C -> D.
	send := func(from string, b *Broker, msg Message) []Outbound {
		t.Helper()
		out, err := b.Handle(from, msg)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	wave := send("cl", a, Message{Kind: MsgSubscribe, SubID: "s-broad", Sub: box(0, 100, 0, 100)})
	wave = deliver(t, wave, "B", brokers)
	deliver(t, wave, "C", brokers)
	// Narrow sub from D's side: covered at C toward B? No — announce
	// via C's client port so C suppresses it toward both B and D.
	c.AttachClient("cc")
	send("cc", c, Message{Kind: MsgSubscribe, SubID: "s-narrow", Sub: box(10, 20, 10, 20)})

	if src, ok := d.KnowsSubscription("s-broad"); !ok || src != "C" {
		t.Fatalf("setup: D missing s-broad (src=%q ok=%v)", src, ok)
	}

	// The link C->D "dies": C processes the unsubscribe of s-broad but
	// D never hears about it. Simulate by dropping C's outputs.
	wave = send("cl", a, Message{Kind: MsgUnsubscribe, SubID: "s-broad"})
	for _, o := range wave {
		if o.To == "C" {
			send("B", c, o.Msg) // C's outputs toward D are dropped
		}
	}
	if _, ok := d.KnowsSubscription("s-broad"); !ok {
		t.Fatal("setup: D should still hold the stale s-broad")
	}

	// Digest gossip C -> D detects the divergence; the sync exchange
	// prunes the stale entry and promotes/announces s-narrow.
	dg, ok := c.LinkDigest("D")
	if !ok {
		t.Fatal("no digest for link C->D")
	}
	wave = send("C", d, Message{Kind: MsgGossip, Digest: &dg})
	for len(wave) > 0 {
		// Alternate delivery: requests go to C, roots go to D.
		var next []Outbound
		for _, o := range wave {
			dst := brokers[o.To]
			if dst == nil {
				continue
			}
			fromID := map[string]string{"C": "D", "D": "C"}[o.To]
			next = append(next, send(fromID, dst, o.Msg)...)
		}
		wave = next
	}

	if _, ok := d.KnowsSubscription("s-broad"); ok {
		t.Fatal("stale s-broad not pruned by digest GC")
	}
	if src, ok := d.KnowsSubscription("s-narrow"); !ok || src != "C" {
		t.Fatalf("promoted s-narrow not announced to D (src=%q ok=%v)", src, ok)
	}
	dcd, _ := c.LinkDigest("D")
	if ddc := d.ReceivedDigest("C"); dcd != ddc {
		t.Fatalf("digests disagree after GC: %+v vs %+v", dcd, ddc)
	}
	if d.Metrics().SyncStalePruned == 0 {
		t.Fatal("SyncStalePruned not counted")
	}
	// No stale reverse-path entry: a publication matching only the old
	// broad box must not be forwarded from D to C.
	out := send("x", d, Message{Kind: MsgPublish, PubID: "p-stale", Pub: subscription.NewPublication(90, 90)})
	for _, o := range out {
		if o.To == "C" {
			t.Fatalf("publication still routed along pruned reverse path: %+v", o)
		}
	}
}

func TestSnapshotOpsRebuildEquivalentBroker(t *testing.T) {
	b := newBroker(t, store.PolicyPairwise)
	for _, n := range []string{"N1", "N2"} {
		if err := b.ConnectNeighbor(n); err != nil {
			t.Fatal(err)
		}
	}
	b.AttachClient("cl")
	msgs := []Message{
		{Kind: MsgSubscribe, SubID: "s1", Sub: box(0, 50, 0, 50)},
		{Kind: MsgSubscribe, SubID: "s2", Sub: box(5, 10, 5, 10)},
	}
	for _, m := range msgs {
		if _, err := b.Handle("N1", m); err != nil {
			t.Fatal(err)
		}
	}
	// A duplicate copy of s1 over N2, and a client sub.
	if _, err := b.Handle("N2", Message{Kind: MsgSubscribe, SubID: "s1", Sub: box(0, 50, 0, 50)}); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Handle("cl", Message{Kind: MsgSubscribe, SubID: "s-local", Sub: box(20, 30, 20, 30)}); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Handle("N1", Message{Kind: MsgPublish, PubID: "p1", Pub: subscription.NewPublication(25, 25)}); err != nil {
		t.Fatal(err)
	}

	ops := b.SnapshotOps()
	b2 := newBroker(t, store.PolicyPairwise)
	for _, op := range ops {
		switch {
		case op.Attach && op.Client:
			b2.AttachClient(op.Port)
		case op.Attach:
			if err := b2.ConnectNeighbor(op.Port); err != nil {
				t.Fatal(err)
			}
		case op.Msg != nil:
			if _, err := b2.Handle(op.From, *op.Msg); err != nil {
				t.Fatal(err)
			}
		default:
			b2.MarkPubsSeen(op.PubIDs)
		}
	}

	for _, subID := range []string{"s1", "s2", "s-local"} {
		srcWant, _ := b.KnowsSubscription(subID)
		src, ok := b2.KnowsSubscription(subID)
		if !ok || src != srcWant {
			t.Fatalf("sub %s: src=%q ok=%v, want %q", subID, src, ok, srcWant)
		}
	}
	for _, n := range []string{"N1", "N2"} {
		want := b.ReceivedFrom(n)
		got := b2.ReceivedFrom(n)
		if len(want) != len(got) {
			t.Fatalf("recv[%s]: got %v want %v", n, got, want)
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("recv[%s]: got %v want %v", n, got, want)
			}
		}
	}
	// Dedup window restored: p1 must be dropped as a duplicate.
	out, err := b2.Handle("N1", Message{Kind: MsgPublish, PubID: "p1", Pub: subscription.NewPublication(25, 25)})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Fatalf("replayed pub p1 not deduplicated: %+v", out)
	}
	if b2.Metrics().DupPubsDropped != 1 {
		t.Fatalf("DupPubsDropped = %d", b2.Metrics().DupPubsDropped)
	}
}
