// Link-digest reconciliation: the per-link anti-entropy protocol that
// detects and repairs routing-state divergence after crashes.
//
// Each side of an overlay link summarizes the subscriptions the link
// carries as a two-level hash tree: every subscription ID hashes into
// one of DigestBuckets buckets, a bucket's value is the XOR of its
// members' hashes, and the root folds the bucket values together with
// the set size. The SENDER digests the active set of its outgoing
// coverage table for the link (exactly the subscriptions it believes
// it announced); the RECEIVER digests its recv set (exactly the live
// subscriptions that actually arrived over the link, duplicate copies
// included).
//
// The exchange rides the membership layer: gossip toward a link
// piggybacks the sender's LinkDigest (wire v3). On mismatch the
// receiver answers with ONE MsgSyncRequest carrying its per-bucket
// hashes; the sender replies with ONE MsgSyncRoots carrying only the
// differing buckets' roots; the receiver admits missing roots as ONE
// batch and garbage-collects received entries the sender no longer
// vouches for — including the stale reverse-path entries a crashed or
// dead-linked peer left behind, which is how an Unsubscribe whose
// forward link died finally reaches the neighbor (see
// handleSyncRoots). The exchange is bounded: one round per gossip
// interval per link, one request and one reply per round, payload
// proportional to the diverged buckets only.
package broker

import (
	"encoding/binary"
	"sort"

	"probsum/internal/store"
	"probsum/subsume"
)

// DigestBuckets is the fan-out of the link digest's bucket level.
const DigestBuckets = 64

// LinkDigest summarizes one side's view of the subscription set a
// link carries. Two views agree iff Count and Root both match.
type LinkDigest struct {
	// Count is the number of subscriptions in the set.
	Count uint32 `json:"count"`
	// Root folds the DigestBuckets bucket hashes and the count.
	Root uint64 `json:"root"`
}

// subDigestHash maps a subscription ID into the digest space. The raw
// FNV-1a hash is finalized with a splitmix64-style avalanche so the
// top bits (the bucket index) and the XOR-combined low bits stay
// decorrelated even for near-identical IDs.
func subDigestHash(subID string) uint64 {
	h := fnv1a(subID)
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// digestBucket returns the bucket index of a subscription ID.
func digestBucket(subID string) int {
	return int(subDigestHash(subID) >> 58) // top 6 bits, DigestBuckets=64
}

// foldDigest folds per-bucket hashes and a set size into a LinkDigest.
func foldDigest(count int, buckets *[DigestBuckets]uint64) LinkDigest {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	var b [8]byte
	h := uint64(offset)
	for _, v := range buckets {
		binary.LittleEndian.PutUint64(b[:], v)
		for _, by := range b {
			h ^= uint64(by)
			h *= prime
		}
	}
	h ^= uint64(count)
	h *= prime
	return LinkDigest{Count: uint32(count), Root: h}
}

// recvAdd marks subID as received (and live) over neighbor port from.
// Client ports are not tracked: digests cover overlay links only.
//
// +mustlock:mu
func (b *Broker) recvAdd(from, subID string) {
	if !b.neighbors[from] {
		return
	}
	set := b.recv[from]
	if set == nil {
		set = make(map[string]bool)
		b.recv[from] = set
	}
	set[subID] = true
}

// recvDel clears subID from port from's received set.
//
// +mustlock:mu
func (b *Broker) recvDel(from, subID string) {
	if set := b.recv[from]; set != nil {
		delete(set, subID)
	}
}

// recvDelAll clears subID from every port's received set — called
// when the subscription is removed locally, so copies received over
// other links stop counting toward their digests (those senders are
// dropping the subscription too; their own unsubscribe copies then
// arrive as no-ops).
//
// +mustlock:mu
func (b *Broker) recvDelAll(subID string) {
	for _, set := range b.recv {
		delete(set, subID)
	}
}

// outDigestLocked digests the active set announced to peer — the
// flood table unioned with every routed (peer, target) table, each
// subscription once (see sentActiveLocked; double-counting would XOR
// a hash out of its bucket). Shared lock must be held.
//
// +mustlock:mu (shared)
func (b *Broker) outDigestLocked(peer string) (LinkDigest, [DigestBuckets]uint64, bool) {
	var buckets [DigestBuckets]uint64
	count := 0
	ok := b.sentActiveLocked(peer, func(subID string, _ subsume.ID, _ *subsume.Table) {
		h := subDigestHash(subID)
		buckets[h>>58] ^= h
		count++
	})
	if !ok {
		return LinkDigest{}, buckets, false
	}
	return foldDigest(count, &buckets), buckets, true
}

// recvDigestLocked digests the received set for peer (the
// receiver-side view). Shared lock must be held.
//
// +mustlock:mu (shared)
func (b *Broker) recvDigestLocked(peer string) (LinkDigest, [DigestBuckets]uint64) {
	var buckets [DigestBuckets]uint64
	count := 0
	for subID := range b.recv[peer] {
		h := subDigestHash(subID)
		buckets[h>>58] ^= h
		count++
	}
	return foldDigest(count, &buckets), buckets
}

// LinkDigest returns this broker's sender-side digest for the link to
// peer: a summary of the subscriptions it believes it announced. The
// membership layer piggybacks it on gossip toward the peer.
func (b *Broker) LinkDigest(peer string) (LinkDigest, bool) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	d, _, ok := b.outDigestLocked(peer)
	return d, ok
}

// ReceivedDigest returns this broker's receiver-side digest for the
// link from peer. Convergence tests compare it against the peer's
// LinkDigest.
func (b *Broker) ReceivedDigest(peer string) LinkDigest {
	b.mu.RLock()
	defer b.mu.RUnlock()
	d, _ := b.recvDigestLocked(peer)
	return d
}

// ReceivedFrom returns the sorted live subscription IDs received over
// neighbor port peer (test hook for stale-entry assertions).
func (b *Broker) ReceivedFrom(peer string) []string {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return sortedKeys(b.recv[peer])
}

// KnowsSubscription reports whether subID is in the broker's routing
// state, and from which port it arrived first.
func (b *Broker) KnowsSubscription(subID string) (source string, ok bool) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	source, ok = b.source[subID]
	return source, ok
}

// checkLinkDigest compares a digest gossiped by neighbor from against
// what this broker actually received over that link, and starts a
// sync exchange on mismatch. Called from Handle without locks held.
func (b *Broker) checkLinkDigest(from string, d LinkDigest) []Outbound {
	b.mu.RLock()
	defer b.mu.RUnlock()
	if !b.neighbors[from] {
		return nil
	}
	mine, buckets := b.recvDigestLocked(from)
	if mine == d {
		return nil
	}
	b.metrics.syncRequests.Add(1)
	return []Outbound{{To: from, Msg: Message{
		Kind:    MsgSyncRequest,
		Buckets: append([]uint64(nil), buckets[:]...),
	}}}
}

// handleSyncRequest answers a neighbor's digest-mismatch request: for
// every bucket where the neighbor's received-set hash differs from
// this broker's sent-set hash, reply with the bucket's full root set.
// Runs under the shared lock (read-only).
//
// +mustlock:mu (shared)
func (b *Broker) handleSyncRequest(from string, msg Message) ([]Outbound, error) {
	if !b.neighbors[from] {
		return nil, nil
	}
	_, mine, ok := b.outDigestLocked(from)
	if !ok {
		return nil, nil
	}
	var theirs [DigestBuckets]uint64
	copy(theirs[:], msg.Buckets)
	var mask uint64
	for i := range mine {
		if mine[i] != theirs[i] {
			mask |= 1 << uint(i)
		}
	}
	if mask == 0 {
		// Bucket hashes agree but the root (or count) did not — an XOR
		// collision or a raced snapshot. Re-list every bucket so the
		// receiver can settle the difference conclusively.
		mask = ^uint64(0)
	}
	var subs []BatchSub
	b.sentActiveLocked(from, func(subID string, sid subsume.ID, tbl *subsume.Table) {
		if mask&(1<<uint(digestBucket(subID))) == 0 {
			return
		}
		sub, status, found := tbl.Get(sid)
		if !found || status != store.StatusActive {
			return
		}
		subs = append(subs, BatchSub{SubID: subID, Sub: sub})
	})
	b.metrics.syncRootsResent.Add(int64(len(subs)))
	return []Outbound{{To: from, Msg: Message{
		Kind: MsgSyncRoots,
		Mask: mask,
		Subs: subs,
	}}}, nil
}

// handleSyncRoots applies a neighbor's authoritative root listing for
// the masked buckets. Two repairs happen:
//
//  1. Roots listed but never received are admitted through the normal
//     batch-subscribe path — missing state flows in as ONE SUBBATCH
//     and propagates onward to this broker's other neighbors.
//  2. Received entries in a masked bucket that the listing omits are
//     stale: the sender no longer stands behind them. Entries whose
//     reverse path points at the sender run the FULL unsubscribe
//     machinery (removal, downstream UNSUBBATCH, Section 5
//     promotions) — this is exactly the repair for an Unsubscribe
//     that was processed while the link to this broker was dead and
//     left the table here permanently inflated. Copies received from
//     the sender but owned by another port just stop counting toward
//     this link's digest.
//
// Runs under the exclusive lock (called from Handle).
//
// +mustlock:mu
func (b *Broker) handleSyncRoots(from string, msg Message) ([]Outbound, error) {
	if !b.neighbors[from] {
		return nil, nil
	}
	listed := make(map[string]bool, len(msg.Subs))
	for _, it := range msg.Subs {
		listed[it.SubID] = true
	}
	var out []Outbound
	// Admit roots we have not received over this link. Known
	// subscriptions take the duplicate path (recv bookkeeping only);
	// unknown ones are fresh arrivals from this port.
	missing := make([]BatchSub, 0, len(msg.Subs))
	for _, it := range msg.Subs {
		if set := b.recv[from]; set != nil && set[it.SubID] {
			continue
		}
		missing = append(missing, it)
	}
	if len(missing) > 0 {
		o, err := b.handleSubscribeBatch(from, Message{Kind: MsgSubscribeBatch, Subs: missing})
		if err != nil {
			return nil, err
		}
		out = append(out, o...)
	}
	// Collect stale entries: received over this link, in a masked
	// bucket, absent from the authoritative listing.
	var staleOwned []string // reverse path points at the sender
	staleOther := 0
	for subID := range b.recv[from] {
		if listed[subID] {
			continue
		}
		if msg.Mask&(1<<uint(digestBucket(subID))) == 0 {
			continue
		}
		if b.source[subID] == from {
			staleOwned = append(staleOwned, subID)
		} else {
			b.recvDel(from, subID)
			b.dropPathLocked(from, subID)
			staleOther++
		}
	}
	if len(staleOwned) > 0 {
		// Sorted so the downstream cancellation is deterministic
		// regardless of map iteration order.
		sort.Strings(staleOwned)
		o, err := b.handleUnsubscribeBatch(from, Message{Kind: MsgUnsubscribeBatch, SubIDs: staleOwned})
		if err != nil {
			return out, err
		}
		out = append(out, o...)
	}
	b.metrics.syncStalePruned.Add(int64(len(staleOwned) + staleOther))
	return out, nil
}
