// Package broker implements a content-based publish/subscribe broker
// as a pure state machine: messages in, messages out, no I/O. That
// makes brokers deterministic under the simulator (package simnet) and
// reusable behind the TCP transport (pubsub's TCP path).
//
// Routing follows the paper's Section 2: subscriptions flood the
// overlay with duplicate suppression (first arrival defines the
// reverse path), and each broker keeps one outgoing coverage table per
// neighbor so a subscription is forwarded to a neighbor only when the
// subscriptions already sent to that neighbor do not cover it — under
// the configured policy (flooding, pairwise, or the paper's
// probabilistic group coverage). Publications travel the reverse paths
// of matching subscriptions. Unsubscriptions promote covered
// subscriptions per Section 5.
package broker

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"probsum/internal/match"
	"probsum/internal/obs"
	"probsum/internal/store"
	"probsum/internal/subscription"
	"probsum/subsume"
)

// MsgKind enumerates protocol messages.
type MsgKind int

// Protocol message kinds.
const (
	// MsgSubscribe announces a subscription along the overlay.
	MsgSubscribe MsgKind = iota + 1
	// MsgUnsubscribe cancels a previously announced subscription.
	MsgUnsubscribe
	// MsgPublish carries a publication toward subscribers.
	MsgPublish
	// MsgNotify delivers a matched publication to a local client.
	MsgNotify
	// MsgSubscribeBatch announces an ordered burst of subscriptions
	// admitted into each per-neighbor coverage table as ONE batch call,
	// so within-burst coverage is found immediately (broad
	// subscriptions suppress the narrow ones arriving alongside them).
	MsgSubscribeBatch
	// MsgUnsubscribeBatch cancels a burst of subscriptions with one
	// shared promotion-cascade frontier per neighbor table.
	MsgUnsubscribeBatch
	// MsgPublishBatch carries a producer-side burst of publications in
	// one frame; the broker processes the run under a single shared-lock
	// acquisition (the wire-reader coalescing path, made deliberate) and
	// re-forwards the matching publications per neighbor as one batch.
	MsgPublishBatch
	// MsgPing probes a neighbor's liveness (cluster failure detector).
	// Control kinds are not routing traffic: the broker hands them to
	// the registered ControlHandler (the cluster membership layer) and
	// drops them silently when none is registered.
	MsgPing
	// MsgPong answers a ping, echoing its sequence number.
	MsgPong
	// MsgGossip carries an anti-entropy snapshot of the sender's member
	// list (cluster membership). It may piggyback a LinkDigest of the
	// subscriptions the sender believes this link carries (wire v3);
	// the receiving broker compares it against what it actually
	// received and starts a sync exchange on mismatch.
	MsgGossip
	// MsgSyncRequest asks a neighbor to re-sync this link: the sender's
	// digest disagreed with the receiver's, and the frame carries the
	// receiver's per-bucket hashes so the neighbor can answer with only
	// the differing buckets.
	MsgSyncRequest
	// MsgSyncRoots answers a MsgSyncRequest: the roots the sender's
	// table holds in the differing buckets (Mask), admitted by the
	// receiver as ONE batch; received subscriptions in those buckets
	// that are absent from the frame are stale and garbage-collected.
	MsgSyncRoots
	// MsgPingReq is the SWIM indirect probe (wire v4). With Ack unset
	// it asks the receiving relay to ping Target on the origin's
	// behalf; with Ack set it is the relay's answer back to the origin
	// confirming Target responded. Either direction may piggyback
	// membership deltas in Members.
	MsgPingReq
	// MsgGossipDelta carries a bounded batch of membership updates
	// (wire v4) instead of MsgGossip's full member-list snapshot. Like
	// MsgGossip it may piggyback a LinkDigest for subscription-set
	// reconciliation on the link.
	MsgGossipDelta
	// MsgRouteAnnounce routes a batch of subscriptions hop-by-hop
	// toward the rendezvous broker named in Target (wire v5) instead of
	// flooding them on every link. Each broker on the path installs the
	// normal reverse-path state and relays the uncovered subset one hop
	// closer; at the rendezvous the announce terminates. Peers that
	// predate the kind receive the flood form (MsgSubscribeBatch)
	// instead — see the transport's version gate.
	MsgRouteAnnounce
)

// String returns the message kind name.
func (k MsgKind) String() string {
	switch k {
	case MsgSubscribe:
		return "subscribe"
	case MsgUnsubscribe:
		return "unsubscribe"
	case MsgPublish:
		return "publish"
	case MsgNotify:
		return "notify"
	case MsgSubscribeBatch:
		return "subscribe-batch"
	case MsgUnsubscribeBatch:
		return "unsubscribe-batch"
	case MsgPublishBatch:
		return "publish-batch"
	case MsgPing:
		return "ping"
	case MsgPong:
		return "pong"
	case MsgGossip:
		return "gossip"
	case MsgSyncRequest:
		return "sync-request"
	case MsgSyncRoots:
		return "sync-roots"
	case MsgPingReq:
		return "ping-req"
	case MsgGossipDelta:
		return "gossip-delta"
	case MsgRouteAnnounce:
		return "route-announce"
	default:
		return "unknown"
	}
}

// IsControl reports whether k is an overlay-control kind (cluster
// ping/pong/gossip and the v4 indirect-probe/delta-gossip kinds)
// rather than routing traffic. Control messages are dispatched to the
// ControlHandler and never touch coverage tables.
func (k MsgKind) IsControl() bool {
	switch k {
	case MsgPing, MsgPong, MsgGossip, MsgPingReq, MsgGossipDelta:
		return true
	}
	return false
}

// BatchSub pairs a subscription with its globally unique identifier
// inside a MsgSubscribeBatch burst.
type BatchSub struct {
	SubID string                    `json:"sub_id"`
	Sub   subscription.Subscription `json:"sub"`
}

// BatchPub pairs a publication with its globally unique identifier
// inside a MsgPublishBatch burst.
type BatchPub struct {
	PubID string                   `json:"pub_id"`
	Pub   subscription.Publication `json:"pub"`
}

// Member states carried in gossip frames. The numeric order matters:
// at equal incarnation the more severe state wins a merge.
const (
	MemberAlive   uint8 = 0
	MemberSuspect uint8 = 1
	MemberDead    uint8 = 2
)

// MemberInfo is one member-list entry of a MsgGossip frame: the wire
// form of the cluster layer's membership record.
type MemberInfo struct {
	ID          string `json:"id"`
	Addr        string `json:"addr,omitempty"`
	Incarnation uint64 `json:"inc"`
	State       uint8  `json:"state"`
}

// Message is the single wire format exchanged between ports (neighbor
// brokers and local clients).
type Message struct {
	Kind MsgKind `json:"kind"`
	// SubID is the globally unique subscription identifier for
	// subscribe/unsubscribe; Notify echoes the matched subscription.
	SubID string `json:"sub_id,omitempty"`
	// Sub is the subscription payload for MsgSubscribe.
	Sub subscription.Subscription `json:"sub,omitempty"`
	// PubID uniquely identifies a publication for duplicate
	// suppression on cyclic overlays.
	PubID string `json:"pub_id,omitempty"`
	// Pub is the publication payload for MsgPublish / MsgNotify.
	Pub subscription.Publication `json:"pub,omitempty"`
	// Subs is the MsgSubscribeBatch payload, in arrival order.
	Subs []BatchSub `json:"subs,omitempty"`
	// SubIDs is the MsgUnsubscribeBatch payload.
	SubIDs []string `json:"sub_ids,omitempty"`
	// Pubs is the MsgPublishBatch payload, in arrival order.
	Pubs []BatchPub `json:"pubs,omitempty"`
	// Seq is the MsgPing sequence number, echoed by MsgPong; for
	// MsgPingReq it is the origin's request sequence, echoed by the
	// relay's ack.
	Seq uint64 `json:"seq,omitempty"`
	// Members is the MsgGossip payload (the sender's full member
	// list), the MsgGossipDelta payload (a bounded update batch), or a
	// piggybacked delta batch on MsgPing/MsgPong/MsgPingReq (wire v4;
	// stripped toward older peers).
	Members []MemberInfo `json:"members,omitempty"`
	// Target names the member a MsgPingReq asks a relay to probe (or,
	// on the ack, the member the relay confirmed alive).
	Target string `json:"target,omitempty"`
	// Ack marks a MsgPingReq as the relay's answer to the origin
	// rather than a probe request toward the relay.
	Ack bool `json:"ack,omitempty"`
	// Digest optionally piggybacks on MsgGossip / MsgGossipDelta: the
	// sender's subscription-set digest for this link (wire v3;
	// stripped toward older peers).
	Digest *LinkDigest `json:"digest,omitempty"`
	// MemberHash is the MsgGossipDelta anti-entropy digest: an
	// order-independent hash of the sender's entire member view (never
	// zero on the wire). A receiver whose own view still hashes
	// differently after merging the frame's deltas answers with one
	// full snapshot — the completeness backstop that lets steady-state
	// dissemination stay delta-only without rumors starving on their
	// retransmit budgets.
	MemberHash uint64 `json:"member_hash,omitempty"`
	// Buckets is the MsgSyncRequest payload: the requester's
	// DigestBuckets per-bucket hashes of what it received on the link.
	Buckets []uint64 `json:"buckets,omitempty"`
	// Mask marks which digest buckets a MsgSyncRoots frame re-syncs
	// (bit i set = bucket i's full root set is in Subs).
	Mask uint64 `json:"mask,omitempty"`
}

// Outbound pairs a message with its destination port.
type Outbound struct {
	To  string
	Msg Message
}

// Metrics counts broker activity; the evaluation experiments read
// these to compare coverage policies.
type Metrics struct {
	SubsReceived    int // subscribe messages processed (non-duplicate)
	SubsForwarded   int // subscribe messages sent to neighbors
	SubsSuppressed  int // per-neighbor forwards suppressed by coverage
	DupSubsDropped  int // duplicate subscription arrivals dropped
	UnsubsForwarded int
	PubsReceived    int
	PubsForwarded   int
	DupPubsDropped  int
	Notifications   int
	Promotions      int // covered subscriptions promoted after unsubscribe
	SyncRequests    int // digest mismatches that started a sync exchange
	SyncRootsResent int // roots re-sent while answering sync requests
	SyncStalePruned int // stale reverse-path entries pruned by sync
	ControlDropped  int // control frames dropped before reaching a peer
	RoutedSubs      int // client subscriptions routed toward rendezvous
	RouteForwards   int // route-announce forwards sent to neighbors
	RoutedPubs      int // publications forwarded toward their rendezvous
}

// Add accumulates another broker's counters into m — the one
// summation used by every consumer that aggregates over brokers
// (simulator totals, transport settling, examples).
func (m *Metrics) Add(o Metrics) {
	m.SubsReceived += o.SubsReceived
	m.SubsForwarded += o.SubsForwarded
	m.SubsSuppressed += o.SubsSuppressed
	m.DupSubsDropped += o.DupSubsDropped
	m.UnsubsForwarded += o.UnsubsForwarded
	m.PubsReceived += o.PubsReceived
	m.PubsForwarded += o.PubsForwarded
	m.DupPubsDropped += o.DupPubsDropped
	m.Notifications += o.Notifications
	m.Promotions += o.Promotions
	m.SyncRequests += o.SyncRequests
	m.SyncRootsResent += o.SyncRootsResent
	m.SyncStalePruned += o.SyncStalePruned
	m.ControlDropped += o.ControlDropped
	m.RoutedSubs += o.RoutedSubs
	m.RouteForwards += o.RouteForwards
	m.RoutedPubs += o.RoutedPubs
}

// counters is the internal, atomically updated form of Metrics, so the
// publish path can count under the shared (read) lock.
type counters struct {
	subsReceived    atomic.Int64
	subsForwarded   atomic.Int64
	subsSuppressed  atomic.Int64
	dupSubsDropped  atomic.Int64
	unsubsForwarded atomic.Int64
	pubsReceived    atomic.Int64
	pubsForwarded   atomic.Int64
	dupPubsDropped  atomic.Int64
	notifications   atomic.Int64
	promotions      atomic.Int64
	syncRequests    atomic.Int64
	syncRootsResent atomic.Int64
	syncStalePruned atomic.Int64
	controlDropped  atomic.Int64
	routedSubs      atomic.Int64
	routeForwards   atomic.Int64
	routedPubs      atomic.Int64
}

// snapshot converts the counters to the public Metrics form.
func (c *counters) snapshot() Metrics {
	return Metrics{
		SubsReceived:    int(c.subsReceived.Load()),
		SubsForwarded:   int(c.subsForwarded.Load()),
		SubsSuppressed:  int(c.subsSuppressed.Load()),
		DupSubsDropped:  int(c.dupSubsDropped.Load()),
		UnsubsForwarded: int(c.unsubsForwarded.Load()),
		PubsReceived:    int(c.pubsReceived.Load()),
		PubsForwarded:   int(c.pubsForwarded.Load()),
		DupPubsDropped:  int(c.dupPubsDropped.Load()),
		Notifications:   int(c.notifications.Load()),
		Promotions:      int(c.promotions.Load()),
		SyncRequests:    int(c.syncRequests.Load()),
		SyncRootsResent: int(c.syncRootsResent.Load()),
		SyncStalePruned: int(c.syncStalePruned.Load()),
		ControlDropped:  int(c.controlDropped.Load()),
		RoutedSubs:      int(c.routedSubs.Load()),
		RouteForwards:   int(c.routeForwards.Load()),
		RoutedPubs:      int(c.routedPubs.Load()),
	}
}

// Option configures a Broker.
type Option func(*Broker)

// WithSeed sets the base seed mixed with the broker and neighbor
// identities so every per-neighbor coverage table gets an independent,
// reproducible checker stream under store.PolicyGroup (default 1).
//
// Each coverage table owns its checker instance outright — this is a
// deliberate design point, not an accident of construction: a Checker
// carries a non-thread-safe random stream plus the reusable
// zero-allocation scratch of the hot path, so sharing one across
// tables (or across the transports that drive different brokers
// concurrently) would race on both. Callers that multiplex many
// short-lived checks across goroutines should use core.CheckerPool
// instead of reaching into a broker's tables.
func WithSeed(seed uint64) Option {
	return func(b *Broker) { b.seed = seed }
}

// WithDedupLimit bounds the publication-deduplication memory: the
// broker remembers at least the last n distinct publication IDs (and
// at most ~2n, see pubDedup). The default is 65536. Publications
// re-arriving after more than the horizon of newer distinct
// publications may be processed again — the same at-least-once
// tolerance the protocol already has for lossy links, traded here for
// a memory bound on long-running brokers.
func WithDedupLimit(n int) Option {
	return func(b *Broker) {
		if n > 0 {
			b.dedupLimit = n
		}
	}
}

// WithTableOptions appends subsume table options applied to every
// per-neighbor coverage table — error probability, trial cap,
// candidate-pruning ablation, and so on (pubsub.Config converts to
// exactly these). The broker's per-neighbor checker seed is applied
// after them, so a WithSeed among the checker options is overridden
// to keep table streams independent.
func WithTableOptions(opts ...subsume.TableOption) Option {
	return func(b *Broker) { b.tableOpts = append(b.tableOpts, opts...) }
}

// Broker is a single node of the overlay.
//
// Concurrency: Handle serializes subscription-state changes (subscribe
// and unsubscribe take an exclusive lock) but lets publications run
// concurrently — handlePublish only reads the routing state, matching
// through the concurrency-safe per-port ITreeIndex, deduplicating
// through a bounded atomic generation ring and counting through
// atomic metrics. Driven
// from a single goroutine (the simulator) the broker behaves exactly
// as before: all locks are uncontended and every decision sequence is
// deterministic. Driven from the TCP transport's per-connection
// goroutines, publish matching parallelizes across connections while
// coverage-table admission stays ordered per port.
type Broker struct {
	id        string
	policy    store.Policy
	seed      uint64
	tableOpts []subsume.TableOption

	// mu guards the routing state below: exclusive for subscribe /
	// unsubscribe / topology changes, shared for publish.
	mu sync.RWMutex

	// +guarded_by:mu
	neighbors map[string]bool
	// +guarded_by:mu
	clients map[string]bool

	// out holds one coverage table per neighbor: the subscriptions this
	// broker has forwarded to that neighbor, reduced under the policy.
	// +guarded_by:mu
	out map[string]*subsume.Table
	// outIDs maps subscription IDs to per-broker numeric IDs; idToSub
	// is its inverse, used when promotions must be re-announced.
	// +guarded_by:mu
	outIDs map[string]subsume.ID
	// +guarded_by:mu
	idToSub map[subsume.ID]string
	// +guarded_by:mu
	nextID subsume.ID

	// in records, per port, the subscriptions received from that port:
	// the reverse-path routing table.
	// +guarded_by:mu
	in map[string]map[string]subscription.Subscription
	// matchers indexes each port's reverse-path table with the
	// interval-tree matcher, so handlePublish runs stabbing queries
	// instead of a linear scan per publication.
	// +guarded_by:mu
	matchers map[string]*match.ITreeIndex
	// source records the first-arrival port of each known subscription.
	// +guarded_by:mu
	source map[string]string
	// recv records, per NEIGHBOR port, every live subscription ID that
	// arrived over it — including duplicate copies the first-arrival
	// rule dropped from routing. This is the receiver's ground truth
	// for the digest reconciliation protocol: the sender digests the
	// active set of its outgoing table for the link, the receiver
	// digests recv, and a mismatch starts an anti-entropy exchange
	// (see digest.go).
	// +guarded_by:mu
	recv map[string]map[string]bool

	// routeOut holds the routed counterpart of out: per neighbor, per
	// rendezvous target, the coverage table of subscriptions forwarded
	// to that neighbor toward that target (see route.go). Subscriptions
	// bound for different rendezvous never suppress each other.
	// +guarded_by:mu
	routeOut map[string]map[string]*subsume.Table
	// routeFwd records, per routed subscription, the forwarding
	// decision taken per rendezvous target: the neighbor the announce
	// went to, or "" when it terminated here or degraded to flood.
	// +guarded_by:mu
	routeFwd map[string]map[string]string
	// router, when attached, supplies rendezvous routing decisions.
	// Atomic because the publish path consults it under the shared
	// lock. Nil means flood mode — the pre-routing behavior and the
	// rollback knob.
	router atomic.Pointer[Router]

	// seenPubs deduplicates publications on cyclic overlays. It is a
	// bounded generation ring (see pubDedup) so long-running brokers
	// do not grow memory without limit; lookups and inserts run under
	// the shared lock, racing on atomics instead of b.mu.
	dedupLimit int
	seenPubs   pubDedup

	// journal, when attached, records every state-changing arrival so a
	// restarted broker can replay itself back (see Journal). Stored as
	// an atomic pointer because the publish path records first-seen
	// publication IDs under the shared lock.
	journal atomic.Pointer[Journal]

	// control dispatches overlay-control messages (ping/pong/gossip)
	// to the cluster membership layer, outside the routing state and
	// its locks. Nil when no cluster layer is attached; control frames
	// are then dropped, so a broker without membership tolerates a
	// misdirected gossip instead of killing the link.
	control atomic.Pointer[ControlHandler]

	// pubObs, when attached, times the broker-side publish stages
	// (matching, routing) into observability histograms. Atomic because
	// the publish path reads it under the shared lock; nil (the
	// default) keeps the path free of clock reads entirely.
	pubObs atomic.Pointer[PublishObserver]

	metrics counters
}

// ControlHandler processes one overlay-control message from a port and
// returns the messages to emit (e.g. the pong answering a ping). It is
// called from Handle without any broker lock held and must be safe for
// concurrent callers.
type ControlHandler func(from string, msg Message) []Outbound

// SetControlHandler registers the cluster layer's control dispatcher.
// Pass nil to detach; control frames are then dropped again.
func (b *Broker) SetControlHandler(h ControlHandler) {
	if h == nil {
		b.control.Store(nil)
		return
	}
	b.control.Store(&h)
}

// PublishObserver times the broker-side stages of the publish path:
// matching (interval-tree stabbing plus neighbor reverse-path scan)
// and routing (rendezvous forwarding). The clock is injected so
// simulated harnesses time with simulated clocks and the broker stays
// clockcheck-clean; both histograms and the clock must be non-nil.
// Observation is two clock reads and two atomic adds per publication
// — zero allocations (pinned by TestPublishObserverZeroAlloc).
type PublishObserver struct {
	Clock func() time.Time
	Match *obs.Histogram
	Route *obs.Histogram
}

// SetPublishObserver attaches stage timing to the publish path. Pass
// nil to detach (publishes then skip the clock entirely).
func (b *Broker) SetPublishObserver(o *PublishObserver) {
	if o == nil {
		b.pubObs.Store(nil)
		return
	}
	if o.Clock == nil || o.Match == nil || o.Route == nil {
		panic("broker: PublishObserver needs Clock, Match, and Route")
	}
	b.pubObs.Store(o)
}

// pubDedup is a bounded duplicate-suppression set: two sync.Map
// generations of at most limit entries each. Inserts go to the
// current generation; when it fills, the previous generation is
// dropped and the current one takes its place. An ID is a duplicate
// when either generation holds it, so the horizon — the number of
// newer distinct IDs after which a repeat can slip through — is at
// least limit and the memory bound is ~2·limit entries. Concurrent
// inserts during a rotation can land in the generation that just
// became previous; they stay findable, and the one-rotation-at-a-time
// mutex keeps the bound intact.
type pubDedup struct {
	limit int64
	mu    sync.Mutex // serializes rotation, not lookups
	// gens is read lock-free on the publish path; mu serializes the
	// generation swap in rotate.
	// +guarded_by:mu (writes)
	gens atomic.Pointer[dedupGens]
}

type dedupGens struct {
	cur  *dedupGen
	prev *dedupGen
}

type dedupGen struct {
	m sync.Map
	n atomic.Int64
}

func (d *pubDedup) init(limit int) {
	d.limit = int64(limit)
	//brokervet:allow lockcheck constructor path: the broker is not shared yet
	d.gens.Store(&dedupGens{cur: &dedupGen{}, prev: &dedupGen{}})
}

// seen records id and reports whether it was already known.
func (d *pubDedup) seen(id string) bool {
	g := d.gens.Load()
	if _, ok := g.prev.m.Load(id); ok {
		// Refresh a previous-generation hit into the current generation.
		// Without this, an ID re-sighted just before its generation
		// rotates away is dropped with it — the documented at-least-limit
		// horizon from the LAST sighting would shrink to as little as one
		// newer distinct ID when the current generation sits at the
		// rotation boundary.
		if _, loaded := g.cur.m.LoadOrStore(id, struct{}{}); !loaded {
			if g.cur.n.Add(1) >= d.limit {
				d.rotate(g)
			}
		}
		return true
	}
	if _, loaded := g.cur.m.LoadOrStore(id, struct{}{}); loaded {
		return true
	}
	if g.cur.n.Add(1) >= d.limit {
		d.rotate(g)
	}
	return false
}

// rotate retires the previous generation. Only the first caller that
// observed the full generation rotates; latecomers see the new
// pointer and return.
func (d *pubDedup) rotate(old *dedupGens) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.gens.Load() != old {
		return
	}
	d.gens.Store(&dedupGens{cur: &dedupGen{}, prev: old.cur})
}

// size counts the tracked IDs across both generations (test hook for
// the memory bound).
func (d *pubDedup) size() int {
	g := d.gens.Load()
	n := 0
	for _, gen := range []*dedupGen{g.cur, g.prev} {
		gen.m.Range(func(any, any) bool { n++; return true })
	}
	return n
}

// New creates a broker. Policy selects subscription-forwarding
// reduction; see store.Policy.
func New(id string, policy store.Policy, opts ...Option) (*Broker, error) {
	if id == "" {
		return nil, fmt.Errorf("broker: empty id")
	}
	b := &Broker{
		id:         id,
		policy:     policy,
		seed:       1,
		dedupLimit: 65536,
		neighbors:  make(map[string]bool),
		clients:    make(map[string]bool),
		out:        make(map[string]*subsume.Table),
		outIDs:     make(map[string]subsume.ID),
		idToSub:    make(map[subsume.ID]string),
		in:         make(map[string]map[string]subscription.Subscription),
		matchers:   make(map[string]*match.ITreeIndex),
		source:     make(map[string]string),
		recv:       make(map[string]map[string]bool),
		routeOut:   make(map[string]map[string]*subsume.Table),
		routeFwd:   make(map[string]map[string]string),
	}
	for _, opt := range opts {
		opt(b)
	}
	b.seenPubs.init(b.dedupLimit)
	return b, nil
}

// tablePolicy converts the store-level policy to the public one.
func tablePolicy(p store.Policy) (subsume.Policy, error) {
	switch p {
	case store.PolicyNone:
		return subsume.Flood, nil
	case store.PolicyPairwise:
		return subsume.Pairwise, nil
	case store.PolicyGroup:
		return subsume.Group, nil
	default:
		return 0, fmt.Errorf("invalid policy %d", p)
	}
}

// ID returns the broker identifier.
func (b *Broker) ID() string { return b.id }

// Metrics returns a copy of the activity counters.
func (b *Broker) Metrics() Metrics { return b.metrics.snapshot() }

// NeighborTableMetrics returns the coverage-table operation counters
// for one neighbor port — how the subscriptions forwarded to that
// neighbor were admitted (per-item vs batch, suppressed, promoted).
// Tests use it to assert that wire bursts reach batch admission as
// single calls; operators can read it to size per-link routing state.
func (b *Broker) NeighborTableMetrics(id string) (subsume.TableMetrics, bool) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	t, ok := b.out[id]
	if !ok {
		return subsume.TableMetrics{}, false
	}
	return t.Metrics(), true
}

// dedupSize reports the tracked publication-ID count (test hook for
// the WithDedupLimit memory bound).
func (b *Broker) dedupSize() int { return b.seenPubs.size() }

// Neighbors returns the connected neighbor ports, sorted.
func (b *Broker) Neighbors() []string {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return sortedKeys(b.neighbors)
}

// Clients returns the attached client ports, sorted.
func (b *Broker) Clients() []string {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return sortedKeys(b.clients)
}

func sortedKeys(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// fnv1a hashes a string into a 64-bit seed component.
func fnv1a(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

// ConnectNeighbor registers a neighbor port and creates its outgoing
// coverage table through the public subsume.Table API. Tables are
// single-shard: a broker serializes access itself, and one shard keeps
// the exact sequential coverage semantics the simulator equivalence
// tests pin. The per-neighbor checker seed is applied after any
// caller-supplied table options, so every table keeps an independent,
// reproducible stream (see WithSeed).
func (b *Broker) ConnectNeighbor(id string) error {
	if id == b.id {
		return fmt.Errorf("broker %s: cannot neighbor itself", b.id)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.neighbors[id] {
		return nil
	}
	policy, err := tablePolicy(b.policy)
	if err != nil {
		return fmt.Errorf("broker %s: neighbor %s: %w", b.id, id, err)
	}
	// Caller options first; WithShards(1) and the per-neighbor seed
	// come after so they always win — single-shard tables and
	// independent checker streams are broker invariants, not knobs.
	opts := append(append([]subsume.TableOption{}, b.tableOpts...), subsume.WithShards(1))
	if b.policy == store.PolicyGroup {
		opts = append(opts, subsume.WithTableChecker(
			subsume.WithSeed(b.seed^fnv1a(b.id), fnv1a(id)|1),
		))
	}
	tbl, err := subsume.NewTable(policy, opts...)
	if err != nil {
		return fmt.Errorf("broker %s: neighbor %s: %w", b.id, id, err)
	}
	// Backfill: admit every subscription already known from OTHER
	// ports, exactly as if it arrived now that the link exists. This
	// keeps the invariant that every neighbor table holds every
	// non-duplicate subscription (active or covered) regardless of
	// when the link formed — a broker that gains a neighbor mid-life
	// (cluster healing, late joins) then has a correct root set for
	// the transport to synchronize over the new link (see
	// NeighborRoots). One batch call, ascending-ID order, so the
	// admission is deterministic and coverage within the backfill is
	// found immediately.
	ids := make([]subsume.ID, 0, len(b.source))
	for subID, src := range b.source {
		if src == id {
			continue
		}
		if sid, ok := b.outIDs[subID]; ok {
			ids = append(ids, sid)
		}
	}
	if len(ids) > 0 {
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		subs := make([]subscription.Subscription, len(ids))
		for i, sid := range ids {
			subs[i] = b.in[b.source[b.idToSub[sid]]][b.idToSub[sid]]
		}
		if _, err := tbl.SubscribeBatch(ids, subs); err != nil {
			return fmt.Errorf("broker %s: neighbor %s backfill: %w", b.id, id, err)
		}
	}
	b.neighbors[id] = true
	b.out[id] = tbl
	if j := b.journal.Load(); j != nil {
		(*j).RecordAttach(id, false)
	}
	return nil
}

// AttachClient registers a local client port. Attaching an already
// attached client is a no-op, so a reconnecting TCP client keeps its
// reverse-path state.
func (b *Broker) AttachClient(id string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	fresh := !b.clients[id]
	b.clients[id] = true
	if b.in[id] == nil {
		b.in[id] = make(map[string]subscription.Subscription)
	}
	if fresh {
		if j := b.journal.Load(); j != nil {
			(*j).RecordAttach(id, true)
		}
	}
}

// Handle processes one message arriving on port from and returns the
// messages to emit. It is the broker's entire behavior. Subscribe and
// unsubscribe are mutually exclusive; publishes from different callers
// run concurrently (see the type comment).
func (b *Broker) Handle(from string, msg Message) ([]Outbound, error) {
	switch msg.Kind {
	case MsgSubscribe, MsgUnsubscribe, MsgSubscribeBatch, MsgUnsubscribeBatch, MsgSyncRoots, MsgRouteAnnounce:
		// State-changing kinds: handled under the exclusive lock and —
		// on success — journaled inside the same critical section, so
		// the journal's record order is exactly the application order.
		b.mu.Lock()
		defer b.mu.Unlock()
		var out []Outbound
		var err error
		switch msg.Kind {
		case MsgSubscribe:
			out, err = b.handleSubscribe(from, msg)
		case MsgUnsubscribe:
			out, err = b.handleUnsubscribe(from, msg)
		case MsgSubscribeBatch:
			out, err = b.handleSubscribeBatch(from, msg)
		case MsgUnsubscribeBatch:
			out, err = b.handleUnsubscribeBatch(from, msg)
		case MsgSyncRoots:
			out, err = b.handleSyncRoots(from, msg)
		case MsgRouteAnnounce:
			out, err = b.handleRouteAnnounce(from, msg)
		}
		if err == nil {
			if j := b.journal.Load(); j != nil {
				(*j).RecordMessage(from, &msg)
			}
		}
		return out, err
	case MsgPublish:
		b.mu.RLock()
		defer b.mu.RUnlock()
		return b.handlePublish(from, msg)
	case MsgPublishBatch:
		b.mu.RLock()
		defer b.mu.RUnlock()
		return b.handlePublishBatchMsg(from, msg)
	case MsgSyncRequest:
		b.mu.RLock()
		defer b.mu.RUnlock()
		return b.handleSyncRequest(from, msg)
	case MsgPing, MsgPong, MsgGossip, MsgPingReq, MsgGossipDelta:
		var out []Outbound
		if (msg.Kind == MsgGossip || msg.Kind == MsgGossipDelta) && msg.Digest != nil {
			// Digest reconciliation is broker state, not membership:
			// check it here so links converge even when no cluster
			// layer is attached to consume the gossip itself.
			out = b.checkLinkDigest(from, *msg.Digest)
		}
		if h := b.control.Load(); h != nil {
			out = append(out, (*h)(from, msg)...)
		}
		return out, nil
	default:
		return nil, fmt.Errorf("broker %s: unexpected message kind %v from %s", b.id, msg.Kind, from)
	}
}

// HandlePublishBatch processes a run of MsgPublish messages arriving
// back-to-back on one port under a SINGLE shared-lock acquisition —
// the wire readers coalesce queued publish frames into one call so a
// high-rate connection pays the RWMutex once per run instead of once
// per frame. Outputs are the concatenation of the per-message outputs
// in input order, so per-destination delivery order is exactly what a
// per-message loop would produce.
func (b *Broker) HandlePublishBatch(from string, msgs []Message) ([]Outbound, error) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	var out []Outbound
	for i := range msgs {
		if msgs[i].Kind != MsgPublish {
			return out, fmt.Errorf("broker %s: non-publish kind %v in publish batch from %s", b.id, msgs[i].Kind, from)
		}
		o, err := b.handlePublish(from, msgs[i])
		if err != nil {
			return out, err
		}
		out = append(out, o...)
	}
	return out, nil
}

// storeID returns (allocating if needed) the numeric per-broker ID for
// a subscription identifier.
//
// +mustlock:mu
func (b *Broker) storeID(subID string) subsume.ID {
	if id, ok := b.outIDs[subID]; ok {
		return id
	}
	b.nextID++
	b.outIDs[subID] = b.nextID
	b.idToSub[b.nextID] = subID
	return b.nextID
}

// matcher returns (creating if needed) the reverse-path matcher for a
// port.
//
// +mustlock:mu
func (b *Broker) matcher(port string) *match.ITreeIndex {
	m := b.matchers[port]
	if m == nil {
		m = match.NewITreeIndex()
		b.matchers[port] = m
	}
	return m
}

// handleSubscribe admits one subscription, installing its reverse
// path and forwarding it to uncovered neighbors.
//
// +mustlock:mu
func (b *Broker) handleSubscribe(from string, msg Message) ([]Outbound, error) {
	if msg.SubID == "" {
		return nil, fmt.Errorf("broker %s: subscribe without SubID", b.id)
	}
	if _, seen := b.source[msg.SubID]; seen {
		// Duplicate arrival over a cycle: the first arrival defined
		// the forwarding tree, so the re-flood is dropped — but the
		// announcing port is still a valid reverse path and MUST be
		// recorded (see recordDupPathLocked), and the link digest
		// still balances.
		b.recvAdd(from, msg.SubID)
		b.recordDupPathLocked(from, msg.SubID, msg.Sub)
		b.metrics.dupSubsDropped.Add(1)
		return nil, nil
	}
	b.metrics.subsReceived.Add(1)
	b.source[msg.SubID] = from
	b.recvAdd(from, msg.SubID)
	if b.in[from] == nil {
		b.in[from] = make(map[string]subscription.Subscription)
	}
	b.in[from][msg.SubID] = msg.Sub

	id := b.storeID(msg.SubID)
	b.matcher(from).Add(match.ID(id), msg.Sub)
	// Routed path first: with a router attached, a client subscription
	// travels toward its rendezvous brokers instead of every link. A
	// declined route (no router, relayed arrival, unroutable target)
	// falls through to the flood below.
	if outs, routed, err := b.routeSubLocked(from, msg.SubID, msg.Sub); routed || err != nil {
		return outs, err
	}
	var out []Outbound
	for _, n := range sortedKeys(b.neighbors) {
		if n == from {
			continue
		}
		res, err := b.out[n].Subscribe(id, msg.Sub)
		if err != nil {
			return nil, fmt.Errorf("broker %s: neighbor %s: %w", b.id, n, err)
		}
		if res.Status == store.StatusActive {
			b.metrics.subsForwarded.Add(1)
			out = append(out, Outbound{To: n, Msg: msg})
		} else {
			b.metrics.subsSuppressed.Add(1)
		}
	}
	return out, nil
}

// recordDupPathLocked registers a duplicate subscription announcement
// from a neighbor port in the reverse-path state: the port announced
// the subscription, so matching publications arriving here must be
// forwarded toward it even though the re-flood itself is dropped. On
// a cyclic overlay each subscription's announcements form a
// first-arrival tree, and when a broker suppresses a covered client
// subscription it relies on the covering roots it announced pulling
// publications back in — announcements that land at the neighbors as
// exactly these duplicates. Dropping them without recording the port
// severs that gradient and silently loses deliveries to any covered
// subscription off the covering root's own tree (caught at n=200 by
// the scale harness's flood-vs-routed delivery gate).
//
// +mustlock:mu
func (b *Broker) recordDupPathLocked(from, subID string, sub subscription.Subscription) {
	if !b.neighbors[from] || b.source[subID] == from {
		return
	}
	if b.in[from] == nil {
		b.in[from] = make(map[string]subscription.Subscription)
	}
	if _, ok := b.in[from][subID]; ok {
		return
	}
	b.in[from][subID] = sub
	b.matcher(from).Add(match.ID(b.storeID(subID)), sub)
}

// dropPathLocked removes one port's reverse-path registration of a
// subscription, if present — the inverse of recordDupPathLocked,
// applied when the port cancels its copy or a digest sync declares it
// stale.
//
// +mustlock:mu
func (b *Broker) dropPathLocked(port, subID string) {
	set := b.in[port]
	if set == nil {
		return
	}
	if _, ok := set[subID]; !ok {
		return
	}
	delete(set, subID)
	if id, ok := b.outIDs[subID]; ok {
		b.matcher(port).Remove(match.ID(id))
	}
}

// dropAllPathsLocked removes every port's reverse-path registration of
// a subscription (full cancellation along the owning tree). Must run
// before the subID→ID mappings are deleted.
//
// +mustlock:mu
func (b *Broker) dropAllPathsLocked(subID string) {
	for port := range b.in {
		b.dropPathLocked(port, subID)
	}
}

// handleUnsubscribe cancels one subscription and late-forwards the
// promotions its removal uncovered.
//
// +mustlock:mu
func (b *Broker) handleUnsubscribe(from string, msg Message) ([]Outbound, error) {
	// Whatever the routing outcome, the sending port no longer carries
	// this subscription: balance the link digest first.
	b.recvDel(from, msg.SubID)
	src, known := b.source[msg.SubID]
	if !known {
		return nil, nil // unsubscribe for an unknown subscription
	}
	if src != from {
		// Unsubscriptions follow the same tree as the subscription;
		// copies arriving over other links only retire that port's
		// duplicate reverse path.
		b.dropPathLocked(from, msg.SubID)
		return nil, nil
	}
	delete(b.source, msg.SubID)
	b.recvDelAll(msg.SubID)

	id, ok := b.outIDs[msg.SubID]
	if !ok {
		delete(b.in[from], msg.SubID)
		return nil, nil
	}
	b.dropAllPathsLocked(msg.SubID)
	delete(b.outIDs, msg.SubID)
	delete(b.idToSub, id)

	// Tear down the routed forwarding state first: the cancellation
	// follows the announce path toward each rendezvous (see route.go).
	out, err := b.routeUnsubLocked(msg.SubID, id)
	if err != nil {
		return nil, err
	}
	for _, n := range sortedKeys(b.neighbors) {
		if n == from {
			continue
		}
		res, err := b.out[n].Unsubscribe(id)
		if err != nil {
			return nil, fmt.Errorf("broker %s: neighbor %s: %w", b.id, n, err)
		}
		if !res.Existed {
			continue
		}
		if res.WasActive {
			// The neighbor knew this subscription: propagate the
			// cancellation.
			b.metrics.unsubsForwarded.Add(1)
			out = append(out, Outbound{To: n, Msg: msg})
		}
		// Late-forward promoted subscriptions: they were suppressed
		// while covered and must now reach the neighbor (Section 5).
		for _, pid := range res.Promoted {
			sub, _, found := b.out[n].Get(pid)
			if !found {
				continue
			}
			subID := b.idToSub[pid]
			if subID == "" {
				continue
			}
			b.metrics.promotions.Add(1)
			b.metrics.subsForwarded.Add(1)
			out = append(out, Outbound{To: n, Msg: Message{Kind: MsgSubscribe, SubID: subID, Sub: sub}})
		}
	}
	return out, nil
}

// handleSubscribeBatch admits a subscription burst. Per neighbor the
// whole burst goes through ONE Table.SubscribeBatch call — within-
// burst coverage is found immediately, so a broad subscription
// suppresses the narrow ones arriving alongside it — and the items
// admitted active for that neighbor are forwarded as ONE
// MsgSubscribeBatch, keeping the burst batched end to end across the
// overlay. Duplicate arrivals (cycle copies, or repeats within the
// burst) are dropped exactly as on the per-item path.
//
// +mustlock:mu
func (b *Broker) handleSubscribeBatch(from string, msg Message) ([]Outbound, error) {
	// Validate before mutating anything: the wire is untrusted, and a
	// mid-loop abort would leave earlier items registered in the
	// reverse-path state but never admitted or forwarded. (The
	// coverage tables also reject unsatisfiable boxes, but only after
	// this handler has touched state — catch them here first.)
	for _, it := range msg.Subs {
		if it.SubID == "" {
			return nil, fmt.Errorf("broker %s: subscribe batch item without SubID", b.id)
		}
		if !it.Sub.IsSatisfiable() {
			return nil, fmt.Errorf("broker %s: subscribe batch item %s is unsatisfiable", b.id, it.SubID)
		}
	}
	fresh := make([]BatchSub, 0, len(msg.Subs))
	for _, it := range msg.Subs {
		b.recvAdd(from, it.SubID)
		if _, seen := b.source[it.SubID]; seen {
			b.recordDupPathLocked(from, it.SubID, it.Sub)
			b.metrics.dupSubsDropped.Add(1)
			continue
		}
		b.metrics.subsReceived.Add(1)
		b.source[it.SubID] = from
		if b.in[from] == nil {
			b.in[from] = make(map[string]subscription.Subscription)
		}
		b.in[from][it.SubID] = it.Sub
		b.matcher(from).Add(match.ID(b.storeID(it.SubID)), it.Sub)
		fresh = append(fresh, it)
	}
	if len(fresh) == 0 {
		return nil, nil
	}
	// Routed path first (see handleSubscribe): routable items leave as
	// route announces, the rest flood as one batch per neighbor.
	out, fresh, err := b.routeSubBatchLocked(from, fresh)
	if err != nil {
		return nil, err
	}
	if len(fresh) == 0 {
		return out, nil
	}
	ids := make([]subsume.ID, len(fresh))
	subs := make([]subscription.Subscription, len(fresh))
	for i, it := range fresh {
		ids[i] = b.outIDs[it.SubID]
		subs[i] = it.Sub
	}
	for _, n := range sortedKeys(b.neighbors) {
		if n == from {
			continue
		}
		results, err := b.out[n].SubscribeBatch(ids, subs)
		if err != nil {
			return nil, fmt.Errorf("broker %s: neighbor %s: %w", b.id, n, err)
		}
		fwd := make([]BatchSub, 0, len(fresh))
		for i, res := range results {
			if res.Status == store.StatusActive {
				fwd = append(fwd, fresh[i])
			}
		}
		b.metrics.subsForwarded.Add(int64(len(fwd)))
		b.metrics.subsSuppressed.Add(int64(len(fresh) - len(fwd)))
		if len(fwd) > 0 {
			out = append(out, Outbound{To: n, Msg: Message{Kind: MsgSubscribeBatch, Subs: fwd}})
		}
	}
	return out, nil
}

// handleUnsubscribeBatch cancels a burst. Per neighbor the removal
// runs through ONE Table.UnsubscribeBatch call (one shared
// promotion-cascade frontier), the subscriptions that neighbor knew
// are forwarded as ONE MsgUnsubscribeBatch, and the promotions the
// burst caused are late-forwarded as ONE MsgSubscribeBatch.
//
// +mustlock:mu
func (b *Broker) handleUnsubscribeBatch(from string, msg Message) ([]Outbound, error) {
	subIDs := make([]string, 0, len(msg.SubIDs))
	ids := make([]subsume.ID, 0, len(msg.SubIDs))
	for _, subID := range msg.SubIDs {
		b.recvDel(from, subID)
		src, known := b.source[subID]
		if !known || src != from {
			// Unknown cancellations are dropped; copies arriving over
			// other links retire that port's duplicate reverse path,
			// as on the per-item path.
			if known {
				b.dropPathLocked(from, subID)
			}
			continue
		}
		id, ok := b.outIDs[subID]
		if !ok {
			continue
		}
		delete(b.source, subID)
		b.recvDelAll(subID)
		b.dropAllPathsLocked(subID)
		delete(b.outIDs, subID)
		delete(b.idToSub, id)
		subIDs = append(subIDs, subID)
		ids = append(ids, id)
	}
	if len(ids) == 0 {
		return nil, nil
	}
	var out []Outbound
	// Routed teardown first, per item (see route.go).
	for i, subID := range subIDs {
		o, err := b.routeUnsubLocked(subID, ids[i])
		if err != nil {
			return nil, err
		}
		out = append(out, o...)
	}
	for _, n := range sortedKeys(b.neighbors) {
		if n == from {
			continue
		}
		tbl := b.out[n]
		// The neighbor must see the cancellation of exactly the
		// subscriptions it was sent — the ones active in its table
		// before the removal.
		fwd := make([]string, 0, len(ids))
		for i, id := range ids {
			if _, status, ok := tbl.Get(id); ok && status == store.StatusActive {
				fwd = append(fwd, subIDs[i])
			}
		}
		res, err := tbl.UnsubscribeBatch(ids)
		if err != nil {
			return nil, fmt.Errorf("broker %s: neighbor %s: %w", b.id, n, err)
		}
		if len(fwd) > 0 {
			b.metrics.unsubsForwarded.Add(int64(len(fwd)))
			out = append(out, Outbound{To: n, Msg: Message{Kind: MsgUnsubscribeBatch, SubIDs: fwd}})
		}
		// Late-forward promoted subscriptions (Section 5), batched.
		promoted := make([]BatchSub, 0, len(res.Promoted))
		for _, pid := range res.Promoted {
			sub, _, found := tbl.Get(pid)
			if !found {
				continue
			}
			subID := b.idToSub[pid]
			if subID == "" {
				continue
			}
			b.metrics.promotions.Add(1)
			b.metrics.subsForwarded.Add(1)
			promoted = append(promoted, BatchSub{SubID: subID, Sub: sub})
		}
		if len(promoted) > 0 {
			out = append(out, Outbound{To: n, Msg: Message{Kind: MsgSubscribeBatch, Subs: promoted}})
		}
	}
	return out, nil
}

// handlePublishBatchMsg processes a deliberate producer-side
// publication burst (MsgPublishBatch) under the SHARED lock already
// held by Handle — one lock acquisition for the whole frame, the
// wire-reader coalescing path made deliberate. Each item runs the
// per-publication path (dedup, local delivery, reverse-path matching);
// forwards are re-grouped into ONE MsgPublishBatch per neighbor,
// preserving arrival order, so the burst stays batched end to end
// across the overlay (the wire layer splits it again for peers that
// predate the kind).
//
// +mustlock:mu (shared)
func (b *Broker) handlePublishBatchMsg(from string, msg Message) ([]Outbound, error) {
	var out []Outbound
	var fwd map[string][]BatchPub
	for i := range msg.Pubs {
		it := &msg.Pubs[i]
		o, err := b.handlePublish(from, Message{Kind: MsgPublish, PubID: it.PubID, Pub: it.Pub})
		if err != nil {
			return out, fmt.Errorf("broker %s: publish batch item %d: %w", b.id, i, err)
		}
		for _, ob := range o {
			if ob.Msg.Kind == MsgPublish && b.neighbors[ob.To] {
				if fwd == nil {
					fwd = make(map[string][]BatchPub)
				}
				fwd[ob.To] = append(fwd[ob.To], BatchPub{PubID: it.PubID, Pub: it.Pub})
			} else {
				out = append(out, ob)
			}
		}
	}
	for _, n := range sortedKeys(b.neighbors) {
		if batch := fwd[n]; len(batch) > 0 {
			out = append(out, Outbound{To: n, Msg: Message{Kind: MsgPublishBatch, Pubs: batch}})
		}
	}
	return out, nil
}

// NeighborRoots exports the ACTIVE subscriptions announced to a
// neighbor — the forwarding roots the neighbor must know for routing
// to work, exactly the set a healed or restarted peer is re-announced
// as one SUBBATCH (cluster healing protocol). The set unions the
// flood table with every routed (neighbor, target) table, each
// subscription once. Covered subscriptions are omitted by
// construction: the neighbor never saw them, and their coverers are
// in the set. Flood-table IDs come first in admission order
// (ascending numeric ID), routed ones after, per target.
func (b *Broker) NeighborRoots(id string) []BatchSub {
	b.mu.RLock()
	defer b.mu.RUnlock()
	var out []BatchSub
	b.sentActiveLocked(id, func(subID string, sid subsume.ID, tbl *subsume.Table) {
		sub, _, found := tbl.Get(sid)
		if !found {
			return
		}
		out = append(out, BatchSub{SubID: subID, Sub: sub})
	})
	return out
}

// handlePublish runs under the SHARED lock: everything it touches is
// either read-only routing state (maps mutated only under the
// exclusive lock), the concurrency-safe matchers, or atomics.
//
// +mustlock:mu (shared)
func (b *Broker) handlePublish(from string, msg Message) ([]Outbound, error) {
	if msg.PubID == "" {
		return nil, fmt.Errorf("broker %s: publish without PubID", b.id)
	}
	if b.seenPubs.seen(msg.PubID) {
		b.metrics.dupPubsDropped.Add(1)
		return nil, nil
	}
	b.metrics.pubsReceived.Add(1)
	if j := b.journal.Load(); j != nil {
		// First sighting of this publication: journal the ID so a
		// restarted broker keeps its dedup window (at-most-once across
		// the restart, for IDs that reached the synced journal).
		(*j).RecordPubSeen(msg.PubID)
	}

	po := b.pubObs.Load()
	var stageT0 time.Time
	if po != nil {
		stageT0 = po.Clock()
	}

	var out []Outbound
	// Deliver to local clients whose subscriptions match. The per-port
	// interval-tree matcher answers in O(m log k + hits) instead of
	// scanning the port's reverse-path table linearly.
	for _, c := range sortedKeys(b.clients) {
		if c == from {
			continue
		}
		m := b.matchers[c]
		if m == nil || m.Len() == 0 {
			continue
		}
		for _, nid := range m.Match(msg.Pub) {
			subID := b.idToSub[subsume.ID(nid)]
			if subID == "" {
				continue
			}
			b.metrics.notifications.Add(1)
			out = append(out, Outbound{To: c, Msg: Message{
				Kind:  MsgNotify,
				SubID: subID,
				PubID: msg.PubID,
				Pub:   msg.Pub,
			}})
		}
	}
	// Reverse-path forwarding: send to every neighbor that announced a
	// matching subscription.
	for _, n := range sortedKeys(b.neighbors) {
		if n == from {
			continue
		}
		m := b.matchers[n]
		if m == nil || m.Len() == 0 {
			continue
		}
		if m.MatchAny(msg.Pub) {
			b.metrics.pubsForwarded.Add(1)
			out = append(out, Outbound{To: n, Msg: msg})
		}
	}
	if po != nil {
		t1 := po.Clock()
		po.Match.Observe(t1.Sub(stageT0))
		stageT0 = t1
	}
	// With a router attached, also push the publication toward the
	// rendezvous of its cell, where the reverse paths of every matching
	// subscription converge (see route.go).
	out = b.routePublishLocked(from, msg, out)
	if po != nil {
		po.Route.Observe(po.Clock().Sub(stageT0))
	}
	sortOutbound(out)
	return out, nil
}

// sortOutbound orders messages deterministically (by destination, then
// subscription ID) so simulation runs are reproducible regardless of
// map iteration order.
func sortOutbound(out []Outbound) {
	sort.Slice(out, func(i, j int) bool {
		if out[i].To != out[j].To {
			return out[i].To < out[j].To
		}
		return out[i].Msg.SubID < out[j].Msg.SubID
	})
}
