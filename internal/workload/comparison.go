package workload

import (
	"fmt"
	"math/rand/v2"
	"sort"

	"probsum/internal/dist"
	"probsum/internal/interval"
	"probsum/internal/subscription"
)

// ComparisonConfig parameterizes the paper's Section 6.4 comparison
// workload: subscription attributes are chosen by popularity
// (Zipf, skew 2.0), range centers cluster around popular values
// (Pareto, skew 1.0 — "similar interests"), and range sizes are
// normally distributed.
type ComparisonConfig struct {
	// M is the number of attributes in the schema.
	M int
	// Domain is the per-attribute value range (default [0, 9999]).
	Domain interval.Interval
	// AttrSkew is the Zipf skew for attribute popularity (paper: 2.0).
	AttrSkew float64
	// CenterSkew is the Pareto shape for range centers (paper: 1.0).
	CenterSkew float64
	// WidthMeanFrac and WidthStdFrac set the normal distribution of
	// range widths as fractions of the domain extent.
	WidthMeanFrac, WidthStdFrac float64
	// MinAttrs/MaxAttrs bound how many attributes a subscription
	// constrains (unconstrained attributes take the full domain).
	MinAttrs, MaxAttrs int
}

// DefaultComparisonConfig returns the parameters used for the Figure
// 13/14 reproduction. Width fractions are calibrated so that the
// popular corner of the attribute space is densely covered, matching
// the paper's "moderately populated, overlapping interests" setting.
func DefaultComparisonConfig(m int) ComparisonConfig {
	return ComparisonConfig{
		M:             m,
		Domain:        interval.New(0, 9999),
		AttrSkew:      2.0,
		CenterSkew:    1.0,
		WidthMeanFrac: 0.15,
		WidthStdFrac:  0.10,
		MinAttrs:      1,
		MaxAttrs:      5,
	}
}

// ComparisonStream generates the subscription arrival sequence.
type ComparisonStream struct {
	cfg    ComparisonConfig
	rng    *rand.Rand
	zipf   *dist.Zipf
	pareto *dist.Pareto
	normal *dist.Normal
}

// NewComparisonStream validates the config and builds the stream.
func NewComparisonStream(rng *rand.Rand, cfg ComparisonConfig) (*ComparisonStream, error) {
	if cfg.M < 1 {
		return nil, fmt.Errorf("workload: comparison needs at least one attribute")
	}
	if cfg.Domain.IsEmpty() || (cfg.Domain == interval.Interval{}) {
		cfg.Domain = interval.New(0, 9999)
	}
	if cfg.MinAttrs < 1 {
		cfg.MinAttrs = 1
	}
	if cfg.MaxAttrs < cfg.MinAttrs {
		cfg.MaxAttrs = cfg.MinAttrs
	}
	if cfg.MaxAttrs > cfg.M {
		cfg.MaxAttrs = cfg.M
	}
	z, err := dist.NewZipf(rng, cfg.AttrSkew, uint64(cfg.M))
	if err != nil {
		return nil, err
	}
	p, err := dist.NewPareto(rng, cfg.CenterSkew)
	if err != nil {
		return nil, err
	}
	span := float64(cfg.Domain.Count())
	n, err := dist.NewNormal(rng, cfg.WidthMeanFrac*span, cfg.WidthStdFrac*span)
	if err != nil {
		return nil, err
	}
	return &ComparisonStream{cfg: cfg, rng: rng, zipf: z, pareto: p, normal: n}, nil
}

// Schema returns the uniform schema the stream's subscriptions live in.
func (cs *ComparisonStream) Schema() *subscription.Schema {
	return subscription.UniformSchema(cs.cfg.M, cs.cfg.Domain.Lo, cs.cfg.Domain.Hi)
}

// Next generates the next subscription.
func (cs *ComparisonStream) Next() subscription.Subscription {
	cfg := cs.cfg
	bounds := make([]interval.Interval, cfg.M)
	for a := range bounds {
		bounds[a] = cfg.Domain
	}
	nAttrs := cfg.MinAttrs
	if cfg.MaxAttrs > cfg.MinAttrs {
		nAttrs += cs.rng.IntN(cfg.MaxAttrs - cfg.MinAttrs + 1)
	}
	chosen := make(map[int]bool, nAttrs)
	for len(chosen) < nAttrs {
		a := int(cs.zipf.Draw())
		if chosen[a] {
			// Collision on a popular attribute: fall back to a uniform
			// draw so the loop terminates quickly even for small m.
			a = cs.rng.IntN(cfg.M)
		}
		chosen[a] = true
	}
	// Draw bounds in ascending attribute order: iterating the map
	// directly would consume the rng in map order, making the stream
	// nondeterministic across runs despite a fixed seed.
	attrs := make([]int, 0, len(chosen))
	for a := range chosen {
		attrs = append(attrs, a)
	}
	sort.Ints(attrs)
	for _, a := range attrs {
		center := cs.pareto.DrawInDomain(cfg.Domain.Lo, cfg.Domain.Hi)
		width := cs.normal.DrawWidth(cfg.Domain.Count())
		lo := center - width/2
		hi := lo + width - 1
		if lo < cfg.Domain.Lo {
			lo = cfg.Domain.Lo
		}
		if hi > cfg.Domain.Hi {
			hi = cfg.Domain.Hi
		}
		if hi < lo {
			hi = lo
		}
		bounds[a] = interval.New(lo, hi)
	}
	return subscription.Subscription{Bounds: bounds}
}
