// Package workload generates the subscription populations of the
// paper's six evaluation scenarios (Section 6):
//
//	(1.a) pairwise covering   — one subscription covers s outright
//	(1.b) redundant covering  — the first 20% of S jointly cover s, the
//	                            remaining 80% are redundant partial coverers
//	(2.a) no intersection     — S is disjoint from s
//	(2.b) non-cover           — S leaves a gap slab over x1 uncovered
//	(2.c) extreme non-cover   — S covers everything except a narrow gap
//	(1-2) comparison          — a popularity-skewed stream of subscriptions
//
// All generators take a seeded *rand.Rand and are deterministic. Each
// Instance records its ground truth (cover relation, redundant members,
// gap position), which the experiments use as the denominator of the
// paper's reduction and false-decision metrics, and Validate() proves
// the construction's invariants so experiments never measure a
// malformed instance.
package workload

import (
	"fmt"
	"math/rand/v2"

	"probsum/internal/dist"
	"probsum/internal/interval"
	"probsum/internal/subscription"
)

// Config carries the common scenario parameters.
type Config struct {
	// K is the number of existing subscriptions.
	K int
	// M is the number of attributes.
	M int
	// Domain is the value range of every attribute; the zero value
	// defaults to [0, 9999].
	Domain interval.Interval
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.Domain.IsEmpty() || (c.Domain == interval.Interval{}) {
		c.Domain = interval.New(0, 9999)
	}
	return c
}

// Instance is one generated subsumption problem.
type Instance struct {
	// S is the tested subscription, Set the existing subscriptions.
	S   subscription.Subscription
	Set []subscription.Subscription
	// Covered is the ground-truth answer to s ⊑ ∨Set.
	Covered bool
	// RedundantIdx lists the indices of set members that are redundant
	// for the covering question (the paper's reduction denominator).
	RedundantIdx []int
	// GapAttr/Gap describe the uncovered slab for the non-cover
	// scenarios; GapAttr is -1 otherwise.
	GapAttr int
	Gap     interval.Interval
}

// RhoTrue returns the exact witness density for gap-based non-cover
// instances: the fraction of s's extent on the gap attribute that the
// gap occupies (the rest of s is fully covered there by construction in
// scenario 2.c). It returns 0 when the instance has no gap.
func (in Instance) RhoTrue() float64 {
	if in.GapAttr < 0 || in.Gap.IsEmpty() {
		return 0
	}
	return float64(in.Gap.Count()) / float64(in.S.Bounds[in.GapAttr].Count())
}

// testedSubscription draws s with at least marginFrac of the domain
// left free on each side of every attribute, so set members can extend
// beyond s and disjoint members fit in the domain.
func testedSubscription(rng *rand.Rand, cfg Config) subscription.Subscription {
	bounds := make([]interval.Interval, cfg.M)
	for a := 0; a < cfg.M; a++ {
		dom := cfg.Domain
		span := dom.Count()
		margin := span / 5
		width := span/5 + rng.Int64N(span/4) // 20%..45% of the domain
		lo := dom.Lo + margin + rng.Int64N(span-2*margin-width+1)
		bounds[a] = interval.New(lo, lo+width-1)
	}
	return subscription.Subscription{Bounds: bounds}
}

// intersectingRange returns a random interval that intersects target
// and stays inside dom: one endpoint is drawn inside target, the other
// anywhere in the domain.
func intersectingRange(rng *rand.Rand, dom, target interval.Interval) interval.Interval {
	p1 := dist.UniformIn(rng, target.Lo, target.Hi)
	p2 := dist.UniformIn(rng, dom.Lo, dom.Hi)
	if p1 <= p2 {
		return interval.New(p1, p2)
	}
	return interval.New(p2, p1)
}

// coveringRange returns an interval containing target, extended
// outward by random amounts within dom.
func coveringRange(rng *rand.Rand, dom, target interval.Interval) interval.Interval {
	lo := target.Lo - rng.Int64N(target.Lo-dom.Lo+1)
	hi := target.Hi + rng.Int64N(dom.Hi-target.Hi+1)
	return interval.New(lo, hi)
}

// PairwiseCovering builds scenario 1.a: set[coverIdx] covers s alone;
// the others are random boxes intersecting s.
func PairwiseCovering(rng *rand.Rand, cfg Config) Instance {
	cfg = cfg.withDefaults()
	s := testedSubscription(rng, cfg)
	set := make([]subscription.Subscription, cfg.K)
	coverIdx := rng.IntN(cfg.K)
	for i := range set {
		bounds := make([]interval.Interval, cfg.M)
		for a := 0; a < cfg.M; a++ {
			if i == coverIdx {
				bounds[a] = coveringRange(rng, cfg.Domain, s.Bounds[a])
			} else {
				bounds[a] = intersectingRange(rng, cfg.Domain, s.Bounds[a])
			}
		}
		set[i] = subscription.Subscription{Bounds: bounds}
	}
	// Everything except the coverer is redundant.
	red := make([]int, 0, cfg.K-1)
	for i := range set {
		if i != coverIdx {
			red = append(red, i)
		}
	}
	return Instance{S: s, Set: set, Covered: true, RedundantIdx: red, GapAttr: -1}
}

// NoIntersection builds scenario 2.a: every set member misses s
// entirely on at least one attribute.
func NoIntersection(rng *rand.Rand, cfg Config) Instance {
	cfg = cfg.withDefaults()
	s := testedSubscription(rng, cfg)
	set := make([]subscription.Subscription, cfg.K)
	for i := range set {
		bounds := make([]interval.Interval, cfg.M)
		for a := 0; a < cfg.M; a++ {
			bounds[a] = intersectingRange(rng, cfg.Domain, s.Bounds[a])
		}
		// Push the box outside s on one random attribute; s leaves
		// room on both sides by construction.
		a := rng.IntN(cfg.M)
		sb := s.Bounds[a]
		if rng.IntN(2) == 0 && sb.Lo-cfg.Domain.Lo >= 2 {
			bounds[a] = interval.New(cfg.Domain.Lo, sb.Lo-1-rng.Int64N(sb.Lo-cfg.Domain.Lo-1))
		} else {
			bounds[a] = interval.New(sb.Hi+1+rng.Int64N(cfg.Domain.Hi-sb.Hi-1), cfg.Domain.Hi)
		}
		set[i] = subscription.Subscription{Bounds: bounds}
	}
	red := make([]int, cfg.K)
	for i := range red {
		red[i] = i
	}
	return Instance{S: s, Set: set, Covered: false, RedundantIdx: red, GapAttr: -1}
}

// RedundantCovering builds scenario 1.b: the first ceil(0.2·K) members
// tile s along a random axis (jointly covering it, none alone), and
// the remaining 80% are random partial coverers that intersect s on
// every attribute — redundant by construction.
func RedundantCovering(rng *rand.Rand, cfg Config) Instance {
	cfg = cfg.withDefaults()
	s := testedSubscription(rng, cfg)
	ax := rng.IntN(cfg.M)

	core := (cfg.K + 4) / 5 // ceil(0.2 K)
	if core < 2 {
		core = 2
	}
	if core > cfg.K {
		core = cfg.K
	}
	set := make([]subscription.Subscription, 0, cfg.K)

	// Distinct internal cut points partition s along ax into core
	// pieces.
	axr := s.Bounds[ax]
	cuts := distinctSorted(rng, axr.Lo+1, axr.Hi, core-1)
	prev := axr.Lo
	for i := 0; i < core; i++ {
		end := axr.Hi
		if i < len(cuts) {
			end = cuts[i] - 1
		}
		bounds := make([]interval.Interval, cfg.M)
		for a := 0; a < cfg.M; a++ {
			if a == ax {
				bounds[a] = interval.New(prev, end)
			} else {
				bounds[a] = coveringRange(rng, cfg.Domain, s.Bounds[a])
			}
		}
		set = append(set, subscription.Subscription{Bounds: bounds})
		if i < len(cuts) {
			prev = cuts[i]
		}
	}

	// Redundant partial coverers: each intersects s on every attribute
	// and leaves part of s uncovered on one (occasionally two)
	// attributes, so none covers s alone. The uncovered direction is a
	// per-attribute property of the instance (anchored ranges such as
	// "price below a budget" all miss the same side — the paper's
	// similar-interest setting); a small fraction of rows flip their
	// direction, which is what creates conflicting entries and keeps
	// the MCS reduction below 100%.
	red := make([]int, 0, cfg.K-core)
	missTop := make([]bool, cfg.M)
	for a := range missTop {
		missTop[a] = rng.IntN(2) == 0
	}
	const flipProb = 0.02
	for i := core; i < cfg.K; i++ {
		bounds := make([]interval.Interval, cfg.M)
		for a := 0; a < cfg.M; a++ {
			bounds[a] = coveringRange(rng, cfg.Domain, s.Bounds[a])
		}
		nPartial := 1
		if rng.IntN(8) == 0 {
			nPartial = 2
		}
		for p := 0; p < nPartial; p++ {
			a := rng.IntN(cfg.M)
			dir := missTop[a]
			if rng.Float64() < flipProb {
				dir = !dir
			}
			bounds[a] = anchoredPartialRange(rng, cfg.Domain, s.Bounds[a], dir)
		}
		set = append(set, subscription.Subscription{Bounds: bounds})
		red = append(red, i)
	}
	return Instance{S: s, Set: set, Covered: true, RedundantIdx: red, GapAttr: -1}
}

// anchoredPartialRange returns a range that covers target from one end
// (extending beyond it into the domain) and strictly misses the other
// end: with missTop it covers [<= target.Lo, v] for some v < target.Hi,
// otherwise [u, >= target.Hi] for some u > target.Lo. Anchoring means
// the range produces exactly one conflict-table entry.
func anchoredPartialRange(rng *rand.Rand, dom, target interval.Interval, missTop bool) interval.Interval {
	if target.Count() < 2 {
		return target
	}
	if missTop {
		hi := dist.UniformIn(rng, target.Lo, target.Hi-1)
		lo := target.Lo - rng.Int64N(target.Lo-dom.Lo+1)
		return interval.New(lo, hi)
	}
	lo := dist.UniformIn(rng, target.Lo+1, target.Hi)
	hi := target.Hi + rng.Int64N(dom.Hi-target.Hi+1)
	return interval.New(lo, hi)
}

// distinctSorted draws n distinct values from [lo, hi], sorted
// ascending.
func distinctSorted(rng *rand.Rand, lo, hi int64, n int) []int64 {
	seen := make(map[int64]bool, n)
	out := make([]int64, 0, n)
	for len(out) < n {
		v := dist.UniformIn(rng, lo, hi)
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	// Insertion sort: n is small.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// NonCover builds scenario 2.b: a gap slab over x1 (attribute 0) is
// kept clear of every set member; the other attributes are random
// ranges intersecting s. gapFrac is the gap width as a fraction of s's
// extent on x1.
func NonCover(rng *rand.Rand, cfg Config, gapFrac float64) Instance {
	cfg = cfg.withDefaults()
	s := testedSubscription(rng, cfg)
	axr := s.Bounds[0]
	gapWidth := int64(gapFrac * float64(axr.Count()))
	if gapWidth < 1 {
		gapWidth = 1
	}
	// The gap sits strictly inside s's x1 extent so members exist on
	// both sides.
	gapLo := axr.Lo + 1 + rng.Int64N(axr.Count()-gapWidth-1)
	gap := interval.New(gapLo, gapLo+gapWidth-1)

	set := make([]subscription.Subscription, cfg.K)
	red := make([]int, cfg.K)
	missTop := make([]bool, cfg.M)
	for a := range missTop {
		missTop[a] = rng.IntN(2) == 0
	}
	for i := range set {
		bounds := make([]interval.Interval, cfg.M)
		// x1: a range on one side of the gap, still intersecting s.
		// Most ranges are anchored beyond s's edge (one conflict-table
		// entry); a small fraction float freely on their side of the
		// gap, creating the conflicting entries that exercise MCS.
		floating := rng.IntN(16) == 0
		if rng.IntN(2) == 0 {
			hi := dist.UniformIn(rng, axr.Lo, gap.Lo-1)
			lo := cfg.Domain.Lo
			if floating {
				lo = dist.UniformIn(rng, cfg.Domain.Lo, hi)
			} else {
				lo = axr.Lo - rng.Int64N(axr.Lo-cfg.Domain.Lo+1)
			}
			bounds[0] = interval.New(lo, hi)
		} else {
			lo := dist.UniformIn(rng, gap.Hi+1, axr.Hi)
			hi := cfg.Domain.Hi
			if floating {
				hi = dist.UniformIn(rng, lo, cfg.Domain.Hi)
			} else {
				hi = axr.Hi + rng.Int64N(cfg.Domain.Hi-axr.Hi+1)
			}
			bounds[0] = interval.New(lo, hi)
		}
		// Other attributes: mostly covering s outright, occasionally
		// anchored-partial ("generated randomly" in the paper, but
		// biased wide so subscriptions overlap heavily).
		for a := 1; a < cfg.M; a++ {
			if rng.IntN(8) == 0 {
				dir := missTop[a]
				if rng.Float64() < 0.02 {
					dir = !dir
				}
				bounds[a] = anchoredPartialRange(rng, cfg.Domain, s.Bounds[a], dir)
			} else {
				bounds[a] = coveringRange(rng, cfg.Domain, s.Bounds[a])
			}
		}
		set[i] = subscription.Subscription{Bounds: bounds}
		red[i] = i
	}
	return Instance{S: s, Set: set, Covered: false, RedundantIdx: red, GapAttr: 0, Gap: gap}
}

// ExtremeNonCover builds scenario 2.c: the set covers s entirely
// except for a gap of gapFrac·|x1|, positioned a fixed 0.5% of |x1|
// below s's upper x1 bound. The fixed offset makes Algorithm 2's
// witness-density estimate exceed the truth by (gap+offset)/gap — a
// factor 2 at the smallest paper gap (0.5%) shrinking toward 1 as the
// gap grows, which reproduces the paper's Figure 12 false-decision
// trend (decreasing with gap size; see DESIGN.md). Half the members
// cover the slab left of the gap, half the slab right of it; all
// cover s completely on the other attributes.
func ExtremeNonCover(rng *rand.Rand, cfg Config, gapFrac float64) Instance {
	cfg = cfg.withDefaults()
	if cfg.K < 2 {
		cfg.K = 2
	}
	s := testedSubscription(rng, cfg)
	axr := s.Bounds[0]
	gapWidth := int64(gapFrac * float64(axr.Count()))
	if gapWidth < 1 {
		gapWidth = 1
	}
	offset := int64(0.005 * float64(axr.Count()))
	if offset < 1 {
		offset = 1
	}
	gapHi := axr.Hi - offset
	gap := interval.New(gapHi-gapWidth+1, gapHi)

	set := make([]subscription.Subscription, cfg.K)
	red := make([]int, cfg.K)
	left := cfg.K / 2
	for i := range set {
		bounds := make([]interval.Interval, cfg.M)
		if i < left {
			// Left slab [<= s.Lo, c] with c <= gap.Lo-1; the first
			// reaches the gap edge exactly so the union covers the
			// whole left part.
			c := gap.Lo - 1
			if i > 0 {
				jitter := 4 * gapWidth
				if c-jitter < axr.Lo {
					jitter = c - axr.Lo
				}
				c -= rng.Int64N(jitter + 1)
			}
			lo := axr.Lo - rng.Int64N(axr.Lo-cfg.Domain.Lo+1)
			bounds[0] = interval.New(lo, c)
		} else {
			// Right slab [c', >= s.Hi] with c' >= gap.Hi+1.
			c := gap.Hi + 1
			if i > left {
				jitter := min64(4*gapWidth, axr.Hi-c)
				c += rng.Int64N(jitter + 1)
			}
			hi := axr.Hi + rng.Int64N(cfg.Domain.Hi-axr.Hi+1)
			bounds[0] = interval.New(c, hi)
		}
		for a := 1; a < cfg.M; a++ {
			bounds[a] = coveringRange(rng, cfg.Domain, s.Bounds[a])
		}
		set[i] = subscription.Subscription{Bounds: bounds}
		red[i] = i
	}
	return Instance{S: s, Set: set, Covered: false, RedundantIdx: red, GapAttr: 0, Gap: gap}
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// Validate proves the instance's construction invariants: s and all
// members are satisfiable and intersect/avoid s as the scenario
// demands, the claimed cover relation holds, and for gap scenarios the
// gap slab is untouched. It is used by tests and (cheaply) by the
// experiment harness.
func (in Instance) Validate() error {
	if !in.S.IsSatisfiable() {
		return fmt.Errorf("workload: s unsatisfiable: %v", in.S)
	}
	for i, si := range in.Set {
		if !si.IsSatisfiable() {
			return fmt.Errorf("workload: set[%d] unsatisfiable: %v", i, si)
		}
	}
	if in.GapAttr >= 0 {
		if in.Covered {
			return fmt.Errorf("workload: gap instance claims covered")
		}
		for i, si := range in.Set {
			if si.Bounds[in.GapAttr].Intersects(in.Gap) {
				return fmt.Errorf("workload: set[%d] intersects the gap %v on attr %d", i, in.Gap, in.GapAttr)
			}
		}
		if !in.S.Bounds[in.GapAttr].ContainsInterval(in.Gap) {
			return fmt.Errorf("workload: gap %v outside s", in.Gap)
		}
		return nil
	}
	if in.Covered {
		return in.validateCovered()
	}
	// Non-gap non-covered instances (2.a): every member must miss s.
	for i, si := range in.Set {
		if si.Intersects(in.S) && si.Covers(in.S) {
			return fmt.Errorf("workload: set[%d] unexpectedly covers s", i)
		}
	}
	return nil
}

// validateCovered checks cover ground truth for the covering
// scenarios: either some single member covers s (1.a), or the
// non-redundant core tiles s along one axis while covering it fully on
// all others (1.b).
func (in Instance) validateCovered() error {
	redundant := make(map[int]bool, len(in.RedundantIdx))
	for _, i := range in.RedundantIdx {
		redundant[i] = true
	}
	var coreIdx []int
	for i := range in.Set {
		if !redundant[i] {
			coreIdx = append(coreIdx, i)
		}
	}
	if len(coreIdx) == 1 {
		if !in.Set[coreIdx[0]].Covers(in.S) {
			return fmt.Errorf("workload: designated coverer %d does not cover s", coreIdx[0])
		}
		return nil
	}
	// Tiling core: find the axis where cores do not fully cover s.
	m := in.S.Len()
	for ax := 0; ax < m; ax++ {
		full := true
		for _, i := range coreIdx {
			if !in.Set[i].Bounds[ax].ContainsInterval(in.S.Bounds[ax]) {
				full = false
				break
			}
		}
		if full {
			continue
		}
		// All other axes must be fully covered by every core member.
		for a := 0; a < m; a++ {
			if a == ax {
				continue
			}
			for _, i := range coreIdx {
				if !in.Set[i].Bounds[a].ContainsInterval(in.S.Bounds[a]) {
					return fmt.Errorf("workload: core %d misses s on axis %d besides tiling axis %d", i, a, ax)
				}
			}
		}
		var u interval.Union
		for _, i := range coreIdx {
			u.Add(in.Set[i].Bounds[ax].Intersect(in.S.Bounds[ax]))
		}
		if !u.Covers(in.S.Bounds[ax]) {
			return fmt.Errorf("workload: core tiling leaves gaps on axis %d: %v", ax, u.Gaps(in.S.Bounds[ax]))
		}
		// No single core member may cover s alone.
		for _, i := range coreIdx {
			if in.Set[i].Covers(in.S) {
				return fmt.Errorf("workload: core %d pairwise-covers s", i)
			}
		}
		return nil
	}
	return fmt.Errorf("workload: could not identify tiling axis")
}
