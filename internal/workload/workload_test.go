package workload

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"probsum/internal/conflict"
	"probsum/internal/core"
	"probsum/internal/interval"
	"probsum/internal/subscription"
)

func rng(seed uint64) *rand.Rand { return rand.New(rand.NewPCG(seed, seed^0xabcdef)) }

func smallCfg() Config {
	return Config{K: 12, M: 3, Domain: interval.New(0, 999)}
}

func TestPairwiseCoveringInvariants(t *testing.T) {
	for seed := uint64(1); seed <= 40; seed++ {
		in := PairwiseCovering(rng(seed), smallCfg())
		if err := in.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !in.Covered {
			t.Fatal("1.a must be covered")
		}
		if len(in.RedundantIdx) != len(in.Set)-1 {
			t.Fatalf("redundant count = %d", len(in.RedundantIdx))
		}
		// The conflict table must detect the pairwise cover.
		tbl, err := conflict.Build(in.S, in.Set)
		if err != nil {
			t.Fatal(err)
		}
		if tbl.PairwiseCoverRow() < 0 {
			t.Fatal("Corollary 1 should fire for scenario 1.a")
		}
	}
}

func TestNoIntersectionInvariants(t *testing.T) {
	for seed := uint64(1); seed <= 40; seed++ {
		in := NoIntersection(rng(seed), smallCfg())
		if err := in.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for i, si := range in.Set {
			if si.Intersects(in.S) {
				t.Fatalf("seed %d: set[%d] intersects s", seed, i)
			}
		}
	}
}

func TestRedundantCoveringInvariants(t *testing.T) {
	for seed := uint64(1); seed <= 40; seed++ {
		in := RedundantCovering(rng(seed), smallCfg())
		if err := in.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		// No member may cover s alone (pairwise coverage must not be
		// able to reduce this scenario — the paper's difficult case).
		for i, si := range in.Set {
			if si.Covers(in.S) {
				t.Fatalf("seed %d: set[%d] pairwise-covers s", seed, i)
			}
		}
		// Roughly 20% core.
		core := len(in.Set) - len(in.RedundantIdx)
		if core < 2 || core > len(in.Set)/2 {
			t.Fatalf("seed %d: core size %d of %d", seed, core, len(in.Set))
		}
		// Every member intersects s.
		for i, si := range in.Set {
			if !si.Intersects(in.S) {
				t.Fatalf("seed %d: set[%d] does not intersect s", seed, i)
			}
		}
	}
}

func TestRedundantCoveringExhaustiveGroundTruth(t *testing.T) {
	// On tiny domains the oracle can verify the union cover exactly.
	cfg := Config{K: 8, M: 2, Domain: interval.New(0, 60)}
	for seed := uint64(1); seed <= 25; seed++ {
		in := RedundantCovering(rng(seed), cfg)
		covered, err := core.ExhaustiveCover(in.S, in.Set)
		if err != nil {
			t.Fatal(err)
		}
		if !covered {
			t.Fatalf("seed %d: constructed covering instance is not covered", seed)
		}
		// Dropping the redundant members must preserve the cover.
		coreOnly := make([]subscription.Subscription, 0)
		redundant := make(map[int]bool)
		for _, i := range in.RedundantIdx {
			redundant[i] = true
		}
		for i, si := range in.Set {
			if !redundant[i] {
				coreOnly = append(coreOnly, si)
			}
		}
		covered, err = core.ExhaustiveCover(in.S, coreOnly)
		if err != nil {
			t.Fatal(err)
		}
		if !covered {
			t.Fatalf("seed %d: core alone does not cover s", seed)
		}
	}
}

func TestNonCoverInvariants(t *testing.T) {
	for seed := uint64(1); seed <= 40; seed++ {
		in := NonCover(rng(seed), smallCfg(), 0.05)
		if err := in.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if in.Covered || in.GapAttr != 0 || in.Gap.IsEmpty() {
			t.Fatalf("seed %d: bad gap metadata %+v", seed, in)
		}
		// Members still intersect s on x1.
		for i, si := range in.Set {
			if !si.Bounds[0].Intersects(in.S.Bounds[0]) {
				t.Fatalf("seed %d: set[%d] misses s on x1", seed, i)
			}
		}
	}
}

func TestNonCoverOracleAgreement(t *testing.T) {
	cfg := Config{K: 6, M: 2, Domain: interval.New(0, 60)}
	for seed := uint64(1); seed <= 25; seed++ {
		in := NonCover(rng(seed), cfg, 0.1)
		covered, err := core.ExhaustiveCover(in.S, in.Set)
		if err != nil {
			t.Fatal(err)
		}
		if covered {
			t.Fatalf("seed %d: gap instance is covered", seed)
		}
	}
}

func TestExtremeNonCoverInvariants(t *testing.T) {
	cfg := Config{K: 50, M: 5, Domain: interval.New(0, 9999)}
	for seed := uint64(1); seed <= 30; seed++ {
		in := ExtremeNonCover(rng(seed), cfg, 0.02)
		if err := in.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		// Everything except the gap slab is covered: left and right
		// unions reach the gap edges, and all other attributes are
		// covered outright.
		axr := in.S.Bounds[0]
		var u interval.Union
		for _, si := range in.Set {
			u.Add(si.Bounds[0].Intersect(axr))
		}
		gaps := u.Gaps(axr)
		if len(gaps) != 1 || !gaps[0].Equal(in.Gap) {
			t.Fatalf("seed %d: uncovered x1 region %v, want exactly the gap %v", seed, gaps, in.Gap)
		}
		for i, si := range in.Set {
			for a := 1; a < cfg.M; a++ {
				if !si.Bounds[a].ContainsInterval(in.S.Bounds[a]) {
					t.Fatalf("seed %d: set[%d] misses s on attr %d", seed, i, a)
				}
			}
		}
		// The witness density ground truth.
		if rho := in.RhoTrue(); rho <= 0 || rho > 0.05 {
			t.Fatalf("seed %d: rho = %g", seed, rho)
		}
	}
}

func TestExtremeNonCoverRhoEstimateOffset(t *testing.T) {
	// DESIGN.md calibration: Algorithm 2's estimate equals the true
	// witness density plus the fixed 0.5% edge offset — a factor ~2 at
	// gap 0.5%, shrinking toward 1 for wide gaps.
	cfg := Config{K: 50, M: 5, Domain: interval.New(0, 9999)}
	for _, gapFrac := range []float64{0.005, 0.02, 0.045} {
		for seed := uint64(1); seed <= 5; seed++ {
			in := ExtremeNonCover(rng(seed), cfg, gapFrac)
			tbl, err := conflict.Build(in.S, in.Set)
			if err != nil {
				t.Fatal(err)
			}
			est := core.EstimateRho(tbl, nil)
			truth := in.RhoTrue()
			wantRatio := (gapFrac + 0.005) / gapFrac
			ratio := est / truth
			if ratio < wantRatio*0.85 || ratio > wantRatio*1.15 {
				t.Errorf("gap %.3f seed %d: rho estimate/true = %.3f, want ~%.3f",
					gapFrac, seed, ratio, wantRatio)
			}
		}
	}
}

func TestGeneratorsAreDeterministic(t *testing.T) {
	a := RedundantCovering(rng(7), smallCfg())
	b := RedundantCovering(rng(7), smallCfg())
	if !a.S.Equal(b.S) || len(a.Set) != len(b.Set) {
		t.Fatal("same seed produced different instances")
	}
	for i := range a.Set {
		if !a.Set[i].Equal(b.Set[i]) {
			t.Fatalf("set[%d] differs", i)
		}
	}
}

func TestComparisonStream(t *testing.T) {
	cfg := DefaultComparisonConfig(10)
	cs, err := NewComparisonStream(rng(3), cfg)
	if err != nil {
		t.Fatal(err)
	}
	schema := cs.Schema()
	constrainedCounts := make([]int, cfg.M)
	for i := 0; i < 500; i++ {
		s := cs.Next()
		if err := s.Validate(schema); err != nil {
			t.Fatalf("subscription %d invalid: %v", i, err)
		}
		nc := 0
		for a, b := range s.Bounds {
			if !b.Equal(schema.Domain(a)) {
				constrainedCounts[a]++
				nc++
			}
		}
		if nc < cfg.MinAttrs || nc > cfg.MaxAttrs {
			t.Fatalf("subscription %d constrains %d attributes", i, nc)
		}
	}
	// Zipf popularity: attribute 0 must be constrained far more often
	// than attribute m-1.
	if constrainedCounts[0] <= constrainedCounts[cfg.M-1]*2 {
		t.Errorf("popularity skew missing: %v", constrainedCounts)
	}
}

func TestComparisonStreamConfigValidation(t *testing.T) {
	if _, err := NewComparisonStream(rng(1), ComparisonConfig{M: 0}); err == nil {
		t.Error("m=0 accepted")
	}
	bad := DefaultComparisonConfig(5)
	bad.AttrSkew = 0.5
	if _, err := NewComparisonStream(rng(1), bad); err == nil {
		t.Error("invalid zipf skew accepted")
	}
	// MaxAttrs beyond m is clamped, MinAttrs below 1 is raised.
	cfg := DefaultComparisonConfig(2)
	cfg.MinAttrs, cfg.MaxAttrs = 0, 99
	cs, err := NewComparisonStream(rng(1), cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := cs.Next()
	if s.Len() != 2 {
		t.Errorf("len = %d", s.Len())
	}
}

func TestValidateCatchesCorruptedInstances(t *testing.T) {
	in := NonCover(rng(5), smallCfg(), 0.05)
	// Corrupt: a member that intersects the gap.
	in.Set[0].Bounds[0] = in.Gap
	if err := in.Validate(); err == nil {
		t.Error("gap violation not caught")
	}

	in2 := RedundantCovering(rng(5), smallCfg())
	// Corrupt: punch a hole in the core tiling.
	redundant := make(map[int]bool)
	for _, i := range in2.RedundantIdx {
		redundant[i] = true
	}
	for i := range in2.Set {
		if !redundant[i] {
			in2.Set[i].Bounds[0] = interval.New(in2.S.Bounds[0].Lo, in2.S.Bounds[0].Lo)
			in2.Set[i].Bounds[1] = interval.New(in2.S.Bounds[1].Lo, in2.S.Bounds[1].Lo)
		}
	}
	if err := in2.Validate(); err == nil {
		t.Error("broken tiling not caught")
	}
}

func TestInstancePropertyRandomConfigs(t *testing.T) {
	cfg := &quick.Config{MaxCount: 60}
	f := func(seed1, seed2 uint64) bool {
		r := rand.New(rand.NewPCG(seed1, seed2))
		c := Config{K: 4 + r.IntN(20), M: 2 + r.IntN(5), Domain: interval.New(0, 2000)}
		gens := []func() Instance{
			func() Instance { return PairwiseCovering(r, c) },
			func() Instance { return RedundantCovering(r, c) },
			func() Instance { return NoIntersection(r, c) },
			func() Instance { return NonCover(r, c, 0.03) },
			func() Instance { return ExtremeNonCover(r, c, 0.03) },
		}
		for _, gen := range gens {
			if err := gen().Validate(); err != nil {
				t.Log(err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
