// Package lockcheck enforces the repo's annotated lock discipline:
//
//   - a field marked `// +guarded_by:mu` may be read only while the
//     receiver's mu is held (shared or exclusive) and written only
//     while it is held exclusively — so publish-path code mutating
//     broker state under RLock is a finding, not a race-detector
//     coin flip;
//   - the `(writes)` variant checks writes only, for fields read
//     lock-free through an atomic whose updates mu serializes;
//   - a method marked `// +mustlock:mu` (or `(shared)`) must be
//     called with the receiver's lock already held at that level,
//     and its body is analyzed starting in that state;
//   - a path that acquires a lock and then returns without either
//     unlocking or deferring the unlock is flagged.
//
// Only method bodies are checked: constructors publish the value
// before any concurrent access exists, and tests exercise internals
// deliberately. The escape hatch is `//brokervet:allow lockcheck
// <reason>` on or above the flagged line.
package lockcheck

import (
	"go/ast"
	"go/token"
	"go/types"

	"probsum/internal/analysis"
)

// Analyzer is the lockcheck pass.
var Analyzer = &analysis.Analyzer{
	Name: "lockcheck",
	Doc:  "check +guarded_by / +mustlock lock-discipline annotations",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	files := pass.NonTestFiles()
	guards := analysis.CollectGuards(pass, files, true)
	mustlocks := analysis.CollectMustLocks(pass, files, true)
	if len(guards) == 0 && len(mustlocks) == 0 {
		return nil
	}

	// Types with any +mustlock method: their other methods must be
	// walked too, so unlocked calls to the annotated helpers are seen.
	mlTypes := make(map[*types.Named]bool)
	for mfn := range mustlocks {
		if named := recvNamed(mfn); named != nil {
			mlTypes[named] = true
		}
	}

	for _, f := range files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			named := recvNamed(fn)
			if named == nil {
				continue
			}
			fieldGuards := guards[named]
			_, hasML := mustlocks[fn]
			if len(fieldGuards) == 0 && !hasML && !mlTypes[named] {
				continue
			}
			checkMethod(pass, fd, fn, named, fieldGuards, mustlocks)
		}
	}
	return nil
}

// checkMethod walks one method under the lock-state interpreter.
func checkMethod(pass *analysis.Pass, fd *ast.FuncDecl, fn *types.Func, named *types.Named,
	fieldGuards map[string]analysis.FieldGuard, mustlocks map[*types.Func]analysis.MustLock) {

	// Track every lock any guard or annotation on this type names.
	lockSet := make(map[string]bool)
	for _, g := range fieldGuards {
		lockSet[g.Lock] = true
	}
	for mfn, m := range mustlocks {
		if recvNamed(mfn) == named {
			lockSet[m.Lock] = true
		}
	}
	locks := make([]string, 0, len(lockSet))
	for l := range lockSet {
		locks = append(locks, l)
	}

	entry := make(map[string]analysis.LockLevel)
	if ml, ok := mustlocks[fn]; ok {
		entry[ml.Lock] = ml.Level
	}

	recvName := "recv"
	if len(fd.Recv.List) > 0 && len(fd.Recv.List[0].Names) > 0 {
		recvName = fd.Recv.List[0].Names[0].Name
	}

	analysis.WalkMethod(fd, analysis.MethodWalk{
		Info:  pass.TypesInfo,
		Locks: locks,
		Entry: entry,
		Access: func(sel *ast.SelectorExpr, field string, write bool, st analysis.State) {
			g, ok := fieldGuards[field]
			if !ok {
				return
			}
			level := st.Level(g.Lock)
			if write && level < analysis.Exclusive {
				pass.Reportf(sel.Pos(),
					"write to %s-guarded field %s.%s requires %s.%s held exclusively (held: %s)",
					g.Lock, recvName, field, recvName, g.Lock, level)
				return
			}
			if !write && !g.WritesOnly && level < analysis.Shared {
				pass.Reportf(sel.Pos(),
					"read of %s-guarded field %s.%s without holding %s.%s",
					g.Lock, recvName, field, recvName, g.Lock)
			}
		},
		Call: func(call *ast.CallExpr, st analysis.State) {
			callee, ok := sameRecvCallee(pass.TypesInfo, call, fd)
			if !ok {
				return
			}
			ml, ok := mustlocks[callee]
			if !ok {
				return
			}
			if st.Level(ml.Lock) < ml.Level {
				pass.Reportf(call.Pos(),
					"call to %s.%s requires %s.%s held %s (held: %s)",
					recvName, callee.Name(), recvName, ml.Lock, ml.Level, st.Level(ml.Lock))
			}
		},
		Return: func(pos token.Pos, st analysis.State) {
			for _, lock := range locks {
				ls := st[lock]
				if ls.Level > analysis.Unlocked && ls.AcquiredHere && !ls.Deferred {
					pass.Reportf(pos,
						"return while %s.%s is still held with no deferred unlock (early return leaks the lock)",
						recvName, lock)
				}
			}
		},
	})
}

// sameRecvCallee resolves calls of the form recv.method(...) where
// recv is the enclosing method's receiver variable.
func sameRecvCallee(info *types.Info, call *ast.CallExpr, fd *ast.FuncDecl) (*types.Func, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return nil, false
	}
	recvObj := info.Defs[fd.Recv.List[0].Names[0]]
	if recvObj == nil || info.Uses[id] != recvObj {
		return nil, false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	return fn, ok
}

// recvNamed mirrors analysis.recvNamed for this package's use.
func recvNamed(fn *types.Func) *types.Named {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}
