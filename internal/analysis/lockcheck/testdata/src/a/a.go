// Package a is the lockcheck fixture: a miniature broker with
// +guarded_by fields and +mustlock helpers, exercising the positive
// and negative paths of the lock-discipline checks.
package a

import (
	"sync"
	"sync/atomic"
)

type Broker struct {
	mu sync.RWMutex
	// +guarded_by:mu
	routes map[string]string
	// +guarded_by:mu
	n int
	// +guarded_by:mu (writes)
	gen atomic.Pointer[int]
}

// Correct usage: no diagnostics on any of these.

func (b *Broker) goodRead() string {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.routes["x"]
}

func (b *Broker) goodWrite(k, v string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.routes[k] = v
	b.n++
}

func (b *Broker) goodExplicitUnlock() int {
	b.mu.RLock()
	n := b.n
	b.mu.RUnlock()
	return n
}

// Violations.

func (b *Broker) badRead() string {
	return b.routes["x"] // want `read of mu-guarded field b\.routes without holding b\.mu`
}

func (b *Broker) badWriteUnderRLock(k, v string) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	b.routes[k] = v // want `write to mu-guarded field b\.routes requires b\.mu held exclusively \(held: shared \(RLock\)\)`
}

func (b *Broker) badDelete(k string) {
	delete(b.routes, k) // want `write to mu-guarded field b\.routes requires b\.mu held exclusively \(held: unlocked\)`
}

func (b *Broker) leakyReturn(cond bool) int {
	b.mu.Lock()
	if cond {
		return 0 // want `return while b\.mu is still held with no deferred unlock`
	}
	b.mu.Unlock()
	return 1
}

// The goroutine body runs after the method returns: its lock state is
// empty regardless of what the spawning method holds.
func (b *Broker) badGoroutineWrite() {
	b.mu.Lock()
	defer b.mu.Unlock()
	go func() {
		b.n++ // want `write to mu-guarded field b\.n requires b\.mu held exclusively \(held: unlocked\)`
	}()
}

// Closures run synchronously in their enclosing method, so they
// inherit its lock state: no diagnostic here.
func (b *Broker) goodClosureWrite() {
	b.mu.Lock()
	defer b.mu.Unlock()
	f := func() { b.n++ }
	f()
}

// +mustlock call-site enforcement.

// dropLocked removes one route; the caller holds mu exclusively.
//
// +mustlock:mu
func (b *Broker) dropLocked(k string) {
	delete(b.routes, k)
}

// sizeLocked reads the count; any mode of mu suffices.
//
// +mustlock:mu (shared)
func (b *Broker) sizeLocked() int {
	return b.n
}

func (b *Broker) goodCalls(k string) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.dropLocked(k)
	return b.sizeLocked()
}

func (b *Broker) badExclusiveCall(k string) {
	b.dropLocked(k) // want `call to b\.dropLocked requires b\.mu held exclusive \(Lock\) \(held: unlocked\)`
}

func (b *Broker) badSharedCall() int {
	return b.sizeLocked() // want `call to b\.sizeLocked requires b\.mu held shared \(RLock\) \(held: unlocked\)`
}

func (b *Broker) badUpgradeCall(k string) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	b.dropLocked(k) // want `call to b\.dropLocked requires b\.mu held exclusive \(Lock\) \(held: shared \(RLock\)\)`
}

// Writes-only guard: lock-free reads through the atomic are fine,
// mutations still need the lock.

func (b *Broker) goodGenRead() *int {
	return b.gen.Load()
}

func (b *Broker) badGenWrite(p *int) {
	b.gen.Store(p) // want `write to mu-guarded field b\.gen requires b\.mu held exclusively \(held: unlocked\)`
}

func (b *Broker) goodGenWrite(p *int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.gen.Store(p)
}

// Suppression: the allow comment swallows the diagnostic.

func (b *Broker) suppressedRead() int {
	//brokervet:allow lockcheck stale read is fine here: metrics snapshot
	return b.n
}

// Annotation validation: a guard or mustlock naming a lock the struct
// does not have is itself a finding.

type badGuard struct {
	// +guarded_by:lock
	x int // want `\+guarded_by:lock: struct badGuard has no sync\.Mutex or sync\.RWMutex field named "lock"`
}

// oops names a lock its receiver does not declare.
//
// +mustlock:missing
func (g *badGuard) oops() int { // want `\+mustlock:missing: receiver of oops has no sync\.Mutex or sync\.RWMutex field named "missing"`
	return 0
}
