package lockcheck_test

import (
	"path/filepath"
	"testing"

	"probsum/internal/analysis/analysistest"
	"probsum/internal/analysis/lockcheck"
)

func TestLockcheck(t *testing.T) {
	analysistest.Run(t, lockcheck.Analyzer, filepath.Join("testdata", "src", "a"))
}
