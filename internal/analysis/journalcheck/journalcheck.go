// Package journalcheck guards the durability contract between the
// broker's in-memory state machine and its write-ahead journal
// (DESIGN.md §11): recovery replays the journal through the normal
// admission paths, so the journal and the guarded state must move
// under the same critical section.
//
// Two rules, over any type whose methods append to a *Journal-named
// type (the broker.Journal interface, pubsub.BrokerJournal):
//
//  1. lock discipline at append sites — RecordMessage / RecordAttach
//     record state transitions and must be called with the receiver's
//     state lock held exclusively; RecordPubSeen records the dedup
//     window and may run under the shared (publish-path) lock;
//  2. completeness — once a type journals at all, every exported
//     method that (transitively, via same-receiver calls) mutates a
//     +guarded_by field must also, on some path, append to the
//     journal. That is what keeps a new admission endpoint from
//     silently escaping recovery.
//
// Intentionally unjournaled mutators (state that recovery re-derives)
// carry `//brokervet:allow journalcheck <reason>`.
package journalcheck

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"

	"probsum/internal/analysis"
)

// Analyzer is the journalcheck pass.
var Analyzer = &analysis.Analyzer{
	Name: "journalcheck",
	Doc:  "check journal appends run under the state lock and that exported mutators journal",
	Run:  run,
}

// methodInfo is what the pass learns about one method.
type methodInfo struct {
	decl     *ast.FuncDecl
	named    *types.Named
	journals bool // directly contains a Record* append
	mutates  bool // directly writes a guarded field of its receiver
	callees  []*types.Func
}

func run(pass *analysis.Pass) error {
	files := pass.NonTestFiles()
	guards := analysis.CollectGuards(pass, files, false)
	mustlocks := analysis.CollectMustLocks(pass, files, false)

	methods := make(map[*types.Func]*methodInfo)
	byType := make(map[*types.Named][]*types.Func)

	for _, f := range files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			named := recvNamed(fn)
			if named == nil {
				continue
			}
			mi := &methodInfo{decl: fd, named: named}
			methods[fn] = mi
			byType[named] = append(byType[named], fn)

			locks := trackedLocks(named, guards, mustlocks)
			entry := make(map[string]analysis.LockLevel)
			if ml, ok := mustlocks[fn]; ok {
				entry[ml.Lock] = ml.Level
			}
			fieldGuards := guards[named]

			analysis.WalkMethod(fd, analysis.MethodWalk{
				Info:  pass.TypesInfo,
				Locks: locks,
				Entry: entry,
				Access: func(_ *ast.SelectorExpr, field string, write bool, _ analysis.State) {
					if write {
						if _, guarded := fieldGuards[field]; guarded {
							mi.mutates = true
						}
					}
				},
				Call: func(call *ast.CallExpr, st analysis.State) {
					if callee := sameRecvCallee(pass.TypesInfo, call, fd); callee != nil {
						mi.callees = append(mi.callees, callee)
					}
					append_, ok := journalAppend(pass.TypesInfo, call)
					if !ok {
						return
					}
					mi.journals = true
					required := analysis.Exclusive
					if append_.Name() == "RecordPubSeen" {
						required = analysis.Shared
					}
					held := analysis.Unlocked
					for _, l := range locks {
						if lv := st.Level(l); lv > held {
							held = lv
						}
					}
					if held < required {
						pass.Reportf(call.Pos(),
							"journal append %s must run with the receiver's state lock held %s (held: %s): recovery replays the journal as the lock-ordered truth",
							append_.Name(), required, held)
					}
				},
			})
		}
	}

	// Completeness: in types that journal at all, exported mutators
	// must journal on some path.
	journaledTypes := make(map[*types.Named]bool)
	for _, mi := range methods {
		if mi.journals {
			journaledTypes[mi.named] = true
		}
	}
	var flagged []*methodInfo
	for named := range journaledTypes {
		for _, fn := range byType[named] {
			mi := methods[fn]
			if !fn.Exported() {
				continue
			}
			if closure(fn, methods, func(m *methodInfo) bool { return m.mutates }) &&
				!closure(fn, methods, func(m *methodInfo) bool { return m.journals }) {
				flagged = append(flagged, mi)
			}
		}
	}
	sort.Slice(flagged, func(i, j int) bool { return flagged[i].decl.Pos() < flagged[j].decl.Pos() })
	for _, mi := range flagged {
		pass.Reportf(mi.decl.Pos(),
			"exported method %s.%s mutates journaled state but no path appends to the journal: a crash after it loses the mutation on recovery",
			mi.named.Obj().Name(), mi.decl.Name.Name)
	}
	return nil
}

// closure reports whether pred holds for fn or any same-receiver
// method it transitively calls.
func closure(fn *types.Func, methods map[*types.Func]*methodInfo, pred func(*methodInfo) bool) bool {
	visited := make(map[*types.Func]bool)
	var visit func(*types.Func) bool
	visit = func(f *types.Func) bool {
		if visited[f] {
			return false
		}
		visited[f] = true
		mi, ok := methods[f]
		if !ok {
			return false
		}
		if pred(mi) {
			return true
		}
		for _, c := range mi.callees {
			if visit(c) {
				return true
			}
		}
		return false
	}
	return visit(fn)
}

// journalAppend recognizes calls to Record* methods of a
// *Journal-named type.
func journalAppend(info *types.Info, call *ast.CallExpr) (*types.Func, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || !strings.HasPrefix(fn.Name(), "Record") {
		return nil, false
	}
	named := recvNamed(fn)
	if named == nil || !strings.Contains(named.Obj().Name(), "Journal") {
		return nil, false
	}
	return fn, true
}

// trackedLocks returns the receiver locks worth tracking for a type:
// every lock its guards and mustlock annotations name, or a bare
// mutex field called mu as fallback.
func trackedLocks(named *types.Named, guards analysis.Guards, mustlocks map[*types.Func]analysis.MustLock) []string {
	set := make(map[string]bool)
	for _, g := range guards[named] {
		set[g.Lock] = true
	}
	for fn, ml := range mustlocks {
		if recvNamed(fn) == named {
			set[ml.Lock] = true
		}
	}
	if len(set) == 0 {
		if st, ok := named.Underlying().(*types.Struct); ok {
			for i := 0; i < st.NumFields(); i++ {
				f := st.Field(i)
				if f.Name() == "mu" {
					set["mu"] = true
				}
			}
		}
	}
	out := make([]string, 0, len(set))
	for l := range set {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}

// sameRecvCallee resolves recv.method(...) calls on the enclosing
// method's receiver.
func sameRecvCallee(info *types.Info, call *ast.CallExpr, fd *ast.FuncDecl) *types.Func {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return nil
	}
	recvObj := info.Defs[fd.Recv.List[0].Names[0]]
	if recvObj == nil || info.Uses[id] != recvObj {
		return nil
	}
	fn, _ := info.Uses[sel.Sel].(*types.Func)
	return fn
}

// recvNamed returns the named receiver type of a method, through a
// pointer.
func recvNamed(fn *types.Func) *types.Named {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := types.Unalias(t).(*types.Named); ok {
		return n
	}
	return nil
}
