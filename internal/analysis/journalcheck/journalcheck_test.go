package journalcheck_test

import (
	"path/filepath"
	"testing"

	"probsum/internal/analysis/analysistest"
	"probsum/internal/analysis/journalcheck"
)

func TestJournalcheck(t *testing.T) {
	analysistest.Run(t, journalcheck.Analyzer, filepath.Join("testdata", "src", "a"))
}
