// Package a is the journalcheck fixture: a miniature broker whose
// journal appends must run under the state lock, and whose exported
// mutators must journal on some path.
package a

import "sync"

// Journal stands in for the broker's write-ahead journal: the
// analyzer keys on Record* methods of *Journal*-named types.
type Journal struct{}

func (j *Journal) RecordMessage(from string)  {}
func (j *Journal) RecordAttach(port string)   {}
func (j *Journal) RecordPubSeen(pubID string) {}

type Broker struct {
	mu      sync.RWMutex
	journal *Journal
	// +guarded_by:mu
	routes map[string]string
	// +guarded_by:mu
	seen map[string]bool
}

// Good: append under the exclusive lock, mutation journaled.
func (b *Broker) Handle(from string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.routes[from] = from
	b.journal.RecordMessage(from)
}

// Good: the dedup-window append may run under the shared lock.
func (b *Broker) Publish(pubID string) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	b.journal.RecordPubSeen(pubID)
}

// Bad: a state-transition append under only the shared lock.
func (b *Broker) badSharedAppend(from string) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	b.journal.RecordAttach(from) // want `journal append RecordAttach must run with the receiver's state lock held exclusive \(Lock\) \(held: shared \(RLock\)\)`
}

// Bad: a dedup append with no lock at all.
func (b *Broker) badUnlockedAppend(pubID string) {
	b.journal.RecordPubSeen(pubID) // want `journal append RecordPubSeen must run with the receiver's state lock held shared \(RLock\) \(held: unlocked\)`
}

// applyLocked mutates and journals under a caller-held lock: the
// +mustlock entry state makes its direct append legal, and callers
// inherit both facts through the same-receiver call closure.
//
// +mustlock:mu
func (b *Broker) applyLocked(from string) {
	b.routes[from] = from
	b.journal.RecordMessage(from)
}

// Good: mutation and journal append both happen via the helper.
func (b *Broker) Admit(from string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.applyLocked(from)
}

// dropLocked mutates without journaling.
//
// +mustlock:mu
func (b *Broker) dropLocked(k string) {
	delete(b.routes, k)
}

// Bad: an exported mutator with no journal append on any path.
func (b *Broker) Detach(k string) { // want `exported method Broker\.Detach mutates journaled state but no path appends to the journal`
	b.mu.Lock()
	defer b.mu.Unlock()
	delete(b.routes, k)
}

// Bad: escaping journaling through an unexported helper is still
// caught by the transitive closure.
func (b *Broker) Purge(k string) { // want `exported method Broker\.Purge mutates journaled state but no path appends to the journal`
	b.mu.Lock()
	defer b.mu.Unlock()
	b.dropLocked(k)
}

// Unexported mutators are their exported callers' problem, not
// findings themselves.
func (b *Broker) internalTouch(k string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.seen[k] = true
}

// Reset drops all state; recovery re-derives it wholesale, so the
// missing append is deliberate.
//brokervet:allow journalcheck reset runs only before recovery replay, nothing to journal
func (b *Broker) Reset() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.routes = map[string]string{}
}
