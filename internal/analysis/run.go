package analysis

// The driver: apply a set of analyzers to loaded packages, validate
// and apply //brokervet:allow suppressions, and render findings.

import (
	"fmt"
	"go/token"
	"sort"
)

// A Finding is one unsuppressed diagnostic, resolved to a file
// position.
type Finding struct {
	Analyzer string
	Position token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s (%s)", f.Position, f.Message, f.Analyzer)
}

// RunAnalyzers applies every analyzer to every package, drops
// diagnostics covered by a //brokervet:allow comment, and flags
// malformed suppressions (unknown analyzer name, missing reason) as
// findings in their own right. The returned error reflects analyzer
// failures, not findings.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) ([]Finding, error) {
	var findings []Finding
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}

	for _, pkg := range pkgs {
		allows := CollectAllows(pkg.Fset, pkg.Files)
		for _, lines := range allows {
			for _, as := range lines {
				for _, a := range as {
					switch {
					case a.Analyzer == "" || !known[a.Analyzer]:
						findings = append(findings, Finding{
							Analyzer: "brokervet",
							Position: pkg.Fset.Position(a.Pos),
							Message:  fmt.Sprintf("brokervet:allow names no known analyzer (have %q; want one of the suite)", a.Analyzer),
						})
					case a.Reason == "":
						findings = append(findings, Finding{
							Analyzer: "brokervet",
							Position: pkg.Fset.Position(a.Pos),
							Message:  fmt.Sprintf("brokervet:allow %s needs a reason: //brokervet:allow %s <why this is safe>", a.Analyzer, a.Analyzer),
						})
					}
				}
			}
		}

		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
			}
			if err := a.Run(pass); err != nil {
				return findings, fmt.Errorf("%s on %s: %v", a.Name, pkg.ImportPath, err)
			}
			for _, d := range pass.diags {
				if Suppressed(pkg.Fset, allows, a.Name, d.Pos) {
					continue
				}
				findings = append(findings, Finding{
					Analyzer: a.Name,
					Position: pkg.Fset.Position(d.Pos),
					Message:  d.Message,
				})
			}
		}
	}

	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i].Position, findings[j].Position
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return findings[i].Message < findings[j].Message
	})
	return findings, nil
}

// RunOnPass applies one analyzer to an already-built pass and returns
// the diagnostics that survive suppression filtering. Test harnesses
// (analysistest) use this entry point.
func RunOnPass(a *Analyzer, pass *Pass) ([]Diagnostic, error) {
	pass.Analyzer = a
	if err := a.Run(pass); err != nil {
		return nil, err
	}
	allows := CollectAllows(pass.Fset, pass.Files)
	var out []Diagnostic
	for _, d := range pass.diags {
		if Suppressed(pass.Fset, allows, a.Name, d.Pos) {
			continue
		}
		out = append(out, d)
	}
	return out, nil
}
