// Package a is the clockcheck fixture for a determinism-critical
// package: wall-clock reads and global-source randomness are findings,
// injected clocks and seeded sources are not.
package a

import (
	"math/rand/v2"
	"time"
)

type node struct {
	clock func() time.Time
	rng   *rand.Rand
}

func (n *node) badNow() time.Time {
	return time.Now() // want `time\.Now in determinism-critical package a`
}

func (n *node) badSleep() {
	time.Sleep(time.Millisecond) // want `time\.Sleep in determinism-critical package a`
}

func (n *node) badTicker() *time.Ticker {
	return time.NewTicker(time.Second) // want `time\.NewTicker in determinism-critical package a`
}

// Referencing the function as a value is just as non-deterministic as
// calling it.
func (n *node) badValueRef() {
	n.clock = time.Now // want `time\.Now in determinism-critical package a`
}

func (n *node) badGlobalRand() int {
	return rand.IntN(10) // want `package-level rand\.IntN uses the implicitly seeded global source`
}

// The approved patterns: injected clock, explicitly seeded source,
// time arithmetic on values.

func newNode(seed uint64, clock func() time.Time) *node {
	return &node{clock: clock, rng: rand.New(rand.NewPCG(seed, 0))}
}

func (n *node) goodClock() time.Time {
	return n.clock()
}

func (n *node) goodSeededDraw() int {
	return n.rng.IntN(10)
}

func (n *node) goodArithmetic(t time.Time) time.Time {
	return t.Add(3 * time.Second).Truncate(time.Second)
}

// The escape hatch for real-TCP paths.
func (n *node) allowedTicker() *time.Ticker {
	//brokervet:allow clockcheck real-socket pacing only; logic still reads n.clock
	return time.NewTicker(time.Second)
}
