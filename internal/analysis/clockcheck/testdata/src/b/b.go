// Package b is the clockcheck fixture for a package OUTSIDE the
// determinism-critical set: the same wall-clock calls draw no
// diagnostics.
package b

import "time"

func Uptime(start time.Time) time.Duration {
	return time.Since(start)
}

func Pause() {
	time.Sleep(time.Millisecond)
}
