package clockcheck_test

import (
	"path/filepath"
	"testing"

	"probsum/internal/analysis/analysistest"
	"probsum/internal/analysis/clockcheck"
)

func TestClockcheckCritical(t *testing.T) {
	a := clockcheck.New([]string{"a"})
	analysistest.Run(t, a, filepath.Join("testdata", "src", "a"))
}

func TestClockcheckNonCritical(t *testing.T) {
	// Package b is not in the critical set: its wall-clock calls must
	// produce no diagnostics (the fixture has no want comments).
	a := clockcheck.New([]string{"a"})
	analysistest.Run(t, a, filepath.Join("testdata", "src", "b"))
}
