// Package clockcheck keeps determinism-critical packages off the wall
// clock and unseeded randomness. The chaos harness (cluster.RunChaos)
// replays seeded fault schedules against an oracle run of the same
// seed; one stray time.Now or time.Sleep in the cluster or simnet
// layers and the oracle comparison degrades into a flake generator.
//
// In the configured packages the analyzer forbids referencing:
//
//   - time.Now, time.Since, time.Until, time.Sleep, time.After,
//     time.AfterFunc, time.Tick, time.NewTimer, time.NewTicker
//     (construct values from the injected Clock instead; time.Time /
//     time.Duration arithmetic is fine), and
//   - package-level math/rand and math/rand/v2 functions, which draw
//     from the shared implicitly-seeded source (methods on an
//     explicitly seeded *rand.Rand are fine).
//
// Real-TCP paths that genuinely need a ticker opt out per line with
// `//brokervet:allow clockcheck <reason>`.
package clockcheck

import (
	"go/ast"
	"go/types"
	"strings"

	"probsum/internal/analysis"
)

// forbiddenTime are the time package functions that read or wait on
// the wall clock.
var forbiddenTime = map[string]bool{
	"Now": true, "Since": true, "Until": true,
	"Sleep": true, "After": true, "AfterFunc": true,
	"Tick": true, "NewTimer": true, "NewTicker": true,
}

// randConstructors are the package-level math/rand(/v2) functions
// that build explicitly seeded sources — the approved pattern.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewPCG": true,
	"NewZipf": true, "NewChaCha8": true,
}

// New returns a clockcheck analyzer restricted to the given import
// paths (test-binary variants like "pkg [pkg.test]" are normalized
// before matching).
func New(criticalPkgs []string) *analysis.Analyzer {
	critical := make(map[string]bool, len(criticalPkgs))
	for _, p := range criticalPkgs {
		critical[p] = true
	}
	return &analysis.Analyzer{
		Name: "clockcheck",
		Doc:  "forbid wall-clock time and unseeded randomness in determinism-critical packages",
		Run: func(pass *analysis.Pass) error {
			path := pass.Pkg.Path()
			if i := strings.IndexByte(path, ' '); i >= 0 {
				path = path[:i]
			}
			if !critical[path] {
				return nil
			}
			return run(pass)
		},
	}
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.NonTestFiles() {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			sig, ok := fn.Type().(*types.Signature)
			if !ok || sig.Recv() != nil {
				// Methods are fine: time.Time arithmetic, draws from an
				// explicitly seeded *rand.Rand.
				return true
			}
			switch fn.Pkg().Path() {
			case "time":
				if forbiddenTime[fn.Name()] {
					pass.Reportf(sel.Pos(),
						"time.%s in determinism-critical package %s: draw time from the injected Clock (cfg.Clock / simnet.Clock) so seeded chaos runs stay replayable",
						fn.Name(), pass.Pkg.Path())
				}
			case "math/rand", "math/rand/v2":
				if randConstructors[fn.Name()] {
					return true
				}
				pass.Reportf(sel.Pos(),
					"package-level %s.%s uses the implicitly seeded global source: draw from an explicitly seeded *rand.Rand instead",
					fn.Pkg().Name(), fn.Name())
			}
			return true
		})
	}
	return nil
}
