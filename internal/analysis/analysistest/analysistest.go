// Package analysistest runs one analyzer over a fixture package and
// checks its diagnostics against `// want "regexp"` comments, the
// same contract as golang.org/x/tools' analysistest. Fixtures live
// under testdata/src/<name>/ and may import only the standard
// library: they are typechecked from source with go/importer's
// "source" compiler, which needs no pre-built export data.
package analysistest

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"probsum/internal/analysis"
)

// wantRe pulls the expectation list off a `// want` comment;
// expectations are double-quoted or backquoted regexps.
var (
	wantRe    = regexp.MustCompile(`//\s*want\s+(.*)$`)
	literalRe = regexp.MustCompile("`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\"")
)

// expectation is one `// want` entry: a pattern that must match
// exactly one diagnostic on its line.
type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// Run applies the analyzer to the fixture package rooted at dir and
// reports mismatches between diagnostics and want comments through t.
func Run(t *testing.T, a *analysis.Analyzer, dir string) {
	t.Helper()

	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading fixture dir %s: %v", dir, err)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Fatalf("parsing fixture %s: %v", path, err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		t.Fatalf("no fixture files in %s", dir)
	}

	info := analysis.NewTypesInfo()
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	pkg, err := conf.Check(filepath.Base(dir), fset, files, info)
	if err != nil {
		t.Fatalf("typechecking fixture %s: %v", dir, err)
	}

	pass := &analysis.Pass{
		Fset:      fset,
		Files:     files,
		Pkg:       pkg,
		TypesInfo: info,
	}
	diags, err := analysis.RunOnPass(a, pass)
	if err != nil {
		t.Fatalf("%s on fixture %s: %v", a.Name, dir, err)
	}

	wants := collectWants(t, fset, files)

	// Match every diagnostic against an expectation on its line.
	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		if w := findWant(wants, pos.Filename, pos.Line, d.Message); w != nil {
			w.matched = true
			continue
		}
		t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.pattern)
		}
	}
}

// collectWants parses the fixtures' want comments.
func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) []*expectation {
	t.Helper()
	var out []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				lits := literalRe.FindAllStringSubmatch(m[1], -1)
				if len(lits) == 0 {
					t.Errorf("%s: malformed want comment: %s", pos, c.Text)
					continue
				}
				for _, lit := range lits {
					text := lit[1]
					if text == "" {
						text = lit[2]
					}
					re, err := regexp.Compile(text)
					if err != nil {
						t.Errorf("%s: bad want pattern %q: %v", pos, text, err)
						continue
					}
					out = append(out, &expectation{file: pos.Filename, line: pos.Line, pattern: re})
				}
			}
		}
	}
	return out
}

// findWant returns the first unmatched expectation on file:line whose
// pattern matches msg.
func findWant(wants []*expectation, file string, line int, msg string) *expectation {
	for _, w := range wants {
		if !w.matched && w.file == file && w.line == line && w.pattern.MatchString(msg) {
			return w
		}
	}
	return nil
}
