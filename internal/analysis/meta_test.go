package analysis_test

// Meta-tests over the real tree: the full brokervet suite must be
// clean on the repository as committed, the load-bearing +guarded_by
// annotations must actually exist (a refactor that renames a field and
// silently drops its annotation weakens every analyzer downstream),
// and the vettool protocol must interoperate with `go vet`.

import (
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
	"testing"

	"probsum/internal/analysis"
	"probsum/internal/analysis/brokervet"
)

// repoRoot walks up from the test's working directory to go.mod.
func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod found above test directory")
		}
		dir = parent
	}
}

func loadTree(t *testing.T) []*analysis.Package {
	t.Helper()
	pkgs, err := analysis.Load(repoRoot(t), "./...")
	if err != nil {
		t.Fatalf("loading tree: %v", err)
	}
	return pkgs
}

// TestBrokervetCleanOnTree is the pin: the committed tree carries zero
// unsuppressed findings from the full suite. Any new violation of the
// lock, clock, wire, or journal invariants fails this test before it
// fails CI's brokervet step.
func TestBrokervetCleanOnTree(t *testing.T) {
	findings, err := analysis.RunAnalyzers(loadTree(t), brokervet.Suite())
	if err != nil {
		t.Fatalf("running suite: %v", err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}

// TestGuardAnnotationsPresent asserts the invariant-bearing fields are
// still annotated. The set is the contract reviewers rely on:
// dropping an annotation silently shrinks lockcheck's and
// journalcheck's coverage, so the expected sets live here in full.
func TestGuardAnnotationsPresent(t *testing.T) {
	expected := map[string]map[string][]string{
		"probsum/internal/broker": {
			"Broker": {"neighbors", "clients", "out", "outIDs", "idToSub",
				"nextID", "in", "matchers", "source", "recv"},
			"pubDedup": {"gens"},
		},
		"probsum/pubsub": {
			"tcpServer":     {"ports", "readers", "peerCodec", "peerClu", "hooks"},
			"BrokerJournal": {"unsynced", "err"},
			"notifyQueue":   {"stats"},
			"Client":        {"stats"},
			"ClientStats":   {"pending", "raw"},
		},
		"probsum/pubsub/cluster": {
			"Node": {"rng", "self", "members", "lastGossip", "metrics"},
		},
		"probsum/internal/obs": {
			"FlightRecorder": {"ring", "next", "total"},
			"Registry":       {"counters", "gauges", "gaugeVecs", "hists", "links", "kindName"},
		},
	}

	byPath := make(map[string]*analysis.Package)
	for _, p := range loadTree(t) {
		byPath[p.ImportPath] = p
	}
	for path, typeFields := range expected {
		pkg, ok := byPath[path]
		if !ok {
			t.Errorf("package %s not in tree", path)
			continue
		}
		pass := &analysis.Pass{
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.TypesInfo,
		}
		guards := analysis.CollectGuards(pass, pass.NonTestFiles(), false)
		byName := make(map[string]map[string]analysis.FieldGuard)
		for named, fields := range guards {
			byName[named.Obj().Name()] = fields
		}
		for typeName, fields := range typeFields {
			got := byName[typeName]
			if got == nil {
				t.Errorf("%s: type %s has no +guarded_by annotations", path, typeName)
				continue
			}
			for _, f := range fields {
				if _, ok := got[f]; !ok {
					t.Errorf("%s: field %s.%s lost its +guarded_by annotation", path, typeName, f)
				}
			}
		}
	}
}

// TestMetricsMethodsExist anchors the metrics-snapshot contract: the
// snapshot entry points lockcheck audits on every run (they must read
// only atomics or lock-held copies — TestBrokervetCleanOnTree proves
// the discipline) are still present under their audited names.
func TestMetricsMethodsExist(t *testing.T) {
	byPath := make(map[string]*analysis.Package)
	for _, p := range loadTree(t) {
		byPath[p.ImportPath] = p
	}
	for path, want := range map[string]map[string][]string{
		"probsum/internal/broker": {"Broker": {"Metrics", "NeighborTableMetrics"}},
		"probsum/pubsub/cluster":  {"Node": {"Metrics"}},
	} {
		pkg, ok := byPath[path]
		if !ok {
			t.Fatalf("package %s not in tree", path)
		}
		for typeName, methods := range want {
			obj := pkg.Types.Scope().Lookup(typeName)
			if obj == nil {
				t.Errorf("%s: type %s not found", path, typeName)
				continue
			}
			named, ok := obj.Type().(*types.Named)
			if !ok {
				t.Errorf("%s: %s is not a named type", path, typeName)
				continue
			}
			for _, m := range methods {
				found := false
				for i := 0; i < named.NumMethods(); i++ {
					if named.Method(i).Name() == m {
						found = true
						break
					}
				}
				if !found {
					t.Errorf("%s: audited snapshot method %s.%s is gone", path, typeName, m)
				}
			}
		}
	}
}

// TestVettoolProtocol builds cmd/brokervet and drives it through `go
// vet -vettool=`, the unitchecker-style .cfg protocol: the run must
// succeed on a clean package with no setup beyond the go toolchain.
func TestVettoolProtocol(t *testing.T) {
	root := repoRoot(t)
	bin := filepath.Join(t.TempDir(), "brokervet")
	build := exec.Command("go", "build", "-o", bin, "./cmd/brokervet")
	build.Dir = root
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building brokervet: %v\n%s", err, out)
	}
	vet := exec.Command("go", "vet", "-vettool="+bin, "./internal/analysis/brokervet")
	vet.Dir = root
	if out, err := vet.CombinedOutput(); err != nil {
		t.Fatalf("go vet -vettool failed: %v\n%s", err, out)
	}
}
