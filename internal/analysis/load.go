package analysis

// Package loading without golang.org/x/tools/go/packages: shell out
// to `go list -export` for the dependency graph plus compiled export
// data, parse the target packages' sources, and typecheck them with
// the gc export-data importer. One `go list` invocation covers any
// number of patterns, and dependencies are never re-typechecked from
// source — the compiler already did that work, we just read its
// .a files. Loading probsum/pubsub (88 transitive deps) this way
// takes ~300ms warm.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// A Package is one typechecked target package.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	TypesInfo  *types.Info
}

// listPkg is the subset of `go list -json` output the loader needs.
type listPkg struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	DepOnly    bool
	Incomplete bool
	Error      *struct{ Err string }
}

// Load typechecks the packages matching patterns (relative to dir)
// and returns them in `go list` order. The tree must compile: a
// package with list or type errors fails the whole load, which is the
// behavior a vet-style gate wants.
func Load(dir string, patterns ...string) ([]*Package, error) {
	args := append([]string{
		"list", "-e", "-export", "-deps",
		"-json=ImportPath,Dir,GoFiles,Export,DepOnly,Incomplete,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	exports := make(map[string]string)
	var targets []listPkg
	dec := json.NewDecoder(&stdout)
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("package %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly {
			targets = append(targets, p)
		}
	}

	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		exp, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(exp)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)

	var out []*Package
	for _, t := range targets {
		pkg, err := typecheck(fset, imp, t)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// typecheck parses and checks one target package against the shared
// importer.
func typecheck(fset *token.FileSet, imp types.Importer, t listPkg) (*Package, error) {
	var files []*ast.File
	for _, name := range t.GoFiles {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(t.Dir, name)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %v", path, err)
		}
		files = append(files, f)
	}
	info := NewTypesInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(t.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typechecking %s: %v", t.ImportPath, err)
	}
	return &Package{
		ImportPath: t.ImportPath,
		Dir:        t.Dir,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		TypesInfo:  info,
	}, nil
}

// NewTypesInfo returns a types.Info with every map the analyzers
// consult populated.
func NewTypesInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
}
