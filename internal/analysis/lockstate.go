package analysis

// The lock-state walker: a small abstract interpreter over method
// bodies that tracks, per receiver mutex field, whether the lock is
// held shared or exclusively on every path. lockcheck and
// journalcheck both drive it through callbacks — one checks guarded
// field accesses, the other journal append sites.
//
// The model is deliberately simple and errs toward reporting:
//
//   - state is a map lockField → {level, acquiredHere, deferred},
//     merged at join points by taking the weakest level;
//   - only `recv.lock.Lock/RLock/Unlock/RUnlock()` statements change
//     state, so TryLock and locks reached through locals are invisible
//     (the repo has neither);
//   - function literals inherit the surrounding state (they run
//     synchronously in every current caller) but forget acquiredHere,
//     and `go` statements start from an empty state;
//   - a branch that returns/breaks/panics stops contributing to the
//     merge, which is what makes early-return paths visible.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LockLevel is how strongly a lock is held.
type LockLevel int

const (
	Unlocked LockLevel = iota
	Shared
	Exclusive
)

func (l LockLevel) String() string {
	switch l {
	case Shared:
		return "shared (RLock)"
	case Exclusive:
		return "exclusive (Lock)"
	}
	return "unlocked"
}

// LockState is the walker's knowledge of one lock at one program
// point.
type LockState struct {
	Level LockLevel
	// AcquiredHere: the current function (not a caller or an
	// enclosing closure) took the lock.
	AcquiredHere bool
	// Deferred: an unlock for this lock is registered via defer.
	Deferred bool
}

// State maps lock field name → state. Callbacks must treat it as
// read-only.
type State map[string]LockState

// Level returns the held level of the named lock.
func (s State) Level(lock string) LockLevel { return s[lock].Level }

// MethodWalk configures one walk over a method body.
type MethodWalk struct {
	Info *types.Info
	// Locks are the receiver mutex field names to track.
	Locks []string
	// Entry is the lock state on entry (from +mustlock annotations).
	Entry map[string]LockLevel
	// Access fires for every read or write of a receiver field.
	Access func(sel *ast.SelectorExpr, field string, write bool, st State)
	// Call fires for every call expression, with the state at the
	// call site (empty state for `go` calls, which run later).
	Call func(call *ast.CallExpr, st State)
	// Return fires at every return statement and at the implicit
	// fall-off-the-end point, with the state at that exit.
	Return func(pos token.Pos, st State)
}

// atomicWriteMethods are method names that mutate their receiver;
// calling one on a guarded field counts as a write to that field
// (atomic.Pointer.Store on pubDedup's generation pair is the
// motivating case).
var atomicWriteMethods = map[string]bool{
	"Store": true, "Swap": true, "CompareAndSwap": true,
	"Add": true, "Delete": true, "LoadOrStore": true,
	"LoadAndDelete": true, "Or": true, "And": true,
}

// WalkMethod interprets fd's body under cfg. Methods without a body
// or without a named receiver are walked with no lock tracking.
func WalkMethod(fd *ast.FuncDecl, cfg MethodWalk) {
	if fd.Body == nil {
		return
	}
	w := &methodWalker{cfg: cfg}
	if fd.Recv != nil && len(fd.Recv.List) > 0 && len(fd.Recv.List[0].Names) > 0 {
		name := fd.Recv.List[0].Names[0]
		if name.Name != "_" {
			w.recv = cfg.Info.Defs[name]
		}
	}
	st := make(State, len(cfg.Locks))
	for _, lock := range cfg.Locks {
		st[lock] = LockState{Level: cfg.Entry[lock]}
	}
	out, terminated := w.walkStmts(fd.Body.List, st)
	if !terminated && cfg.Return != nil {
		cfg.Return(fd.Body.Rbrace, out)
	}
}

type methodWalker struct {
	cfg  MethodWalk
	recv types.Object
}

func cloneState(s State) State {
	out := make(State, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

// mergeStates joins two reachable states: weakest level wins, a lock
// counts as acquired-here or deferred only as its surviving branches
// say.
func mergeStates(a, b State) State {
	out := make(State, len(a))
	for k, av := range a {
		bv := b[k]
		m := LockState{
			Level:        min(av.Level, bv.Level),
			AcquiredHere: av.AcquiredHere || bv.AcquiredHere,
			Deferred:     av.Deferred && bv.Deferred,
		}
		if m.Level == Unlocked {
			m = LockState{}
		}
		out[k] = m
	}
	return out
}

// walkStmts interprets a statement list sequentially. It returns the
// exit state and whether every path through the list terminates
// (returns, branches away, or panics) before falling off the end.
func (w *methodWalker) walkStmts(list []ast.Stmt, st State) (State, bool) {
	for _, s := range list {
		var terminated bool
		st, terminated = w.walkStmt(s, st)
		if terminated {
			return st, true
		}
	}
	return st, false
}

func (w *methodWalker) walkStmt(s ast.Stmt, st State) (State, bool) {
	switch x := s.(type) {
	case *ast.ExprStmt:
		if lock, op, ok := w.lockOp(x.X); ok {
			return applyLockOp(st, lock, op), false
		}
		w.walkExpr(x.X, st, nil)
		return st, false

	case *ast.DeferStmt:
		if lock, op, ok := w.lockOp(x.Call); ok && (op == opUnlock || op == opRUnlock) {
			ls := st[lock]
			ls.Deferred = true
			st = cloneState(st)
			st[lock] = ls
			return st, false
		}
		for _, a := range x.Call.Args {
			w.walkExpr(a, st, nil)
		}
		if fl, ok := x.Call.Fun.(*ast.FuncLit); ok {
			w.walkClosure(fl, st)
		} else {
			w.walkExpr(x.Call.Fun, st, nil)
			if w.cfg.Call != nil {
				w.cfg.Call(x.Call, st)
			}
		}
		return st, false

	case *ast.AssignStmt:
		writes := make(map[ast.Expr]bool)
		for _, lhs := range x.Lhs {
			if sel := w.writeTargetSel(lhs); sel != nil {
				writes[sel] = true
			}
		}
		for _, e := range x.Rhs {
			w.walkExpr(e, st, writes)
		}
		for _, e := range x.Lhs {
			w.walkExpr(e, st, writes)
		}
		return st, false

	case *ast.IncDecStmt:
		writes := make(map[ast.Expr]bool)
		if sel := w.writeTargetSel(x.X); sel != nil {
			writes[sel] = true
		}
		w.walkExpr(x.X, st, writes)
		return st, false

	case *ast.IfStmt:
		if x.Init != nil {
			st, _ = w.walkStmt(x.Init, st)
		}
		w.walkExpr(x.Cond, st, nil)
		var outs []State
		thenOut, thenTerm := w.walkStmts(x.Body.List, cloneState(st))
		if !thenTerm {
			outs = append(outs, thenOut)
		}
		if x.Else != nil {
			elseOut, elseTerm := w.walkStmt(x.Else, cloneState(st))
			if !elseTerm {
				outs = append(outs, elseOut)
			}
		} else {
			outs = append(outs, st)
		}
		return mergeAll(outs, st)

	case *ast.BlockStmt:
		return w.walkStmts(x.List, st)

	case *ast.ReturnStmt:
		for _, e := range x.Results {
			w.walkExpr(e, st, nil)
		}
		if w.cfg.Return != nil {
			w.cfg.Return(x.Pos(), st)
		}
		return st, true

	case *ast.BranchStmt:
		// break/continue/goto leave this statement list; the merge at
		// the enclosing loop/switch stays conservative without
		// modeling the exact target.
		return st, true

	case *ast.ForStmt:
		if x.Init != nil {
			st, _ = w.walkStmt(x.Init, st)
		}
		if x.Cond != nil {
			w.walkExpr(x.Cond, st, nil)
		}
		bodyOut, bodyTerm := w.walkStmts(x.Body.List, cloneState(st))
		if x.Post != nil && !bodyTerm {
			bodyOut, _ = w.walkStmt(x.Post, bodyOut)
		}
		if bodyTerm {
			return st, false
		}
		return mergeStates(st, bodyOut), false

	case *ast.RangeStmt:
		w.walkExpr(x.X, st, nil)
		writes := make(map[ast.Expr]bool)
		for _, e := range []ast.Expr{x.Key, x.Value} {
			if e == nil {
				continue
			}
			if sel := w.writeTargetSel(e); sel != nil {
				writes[sel] = true
			}
			w.walkExpr(e, st, writes)
		}
		bodyOut, bodyTerm := w.walkStmts(x.Body.List, cloneState(st))
		if bodyTerm {
			return st, false
		}
		return mergeStates(st, bodyOut), false

	case *ast.SwitchStmt:
		if x.Init != nil {
			st, _ = w.walkStmt(x.Init, st)
		}
		if x.Tag != nil {
			w.walkExpr(x.Tag, st, nil)
		}
		return w.walkCases(x.Body.List, st)

	case *ast.TypeSwitchStmt:
		if x.Init != nil {
			st, _ = w.walkStmt(x.Init, st)
		}
		st, _ = w.walkStmt(x.Assign, st)
		return w.walkCases(x.Body.List, st)

	case *ast.SelectStmt:
		if len(x.Body.List) == 0 {
			return st, true // select{} blocks forever
		}
		var outs []State
		for _, c := range x.Body.List {
			cc := c.(*ast.CommClause)
			branch := cloneState(st)
			if cc.Comm != nil {
				branch, _ = w.walkStmt(cc.Comm, branch)
			}
			out, term := w.walkStmts(cc.Body, branch)
			if !term {
				outs = append(outs, out)
			}
		}
		return mergeAll(outs, st)

	case *ast.GoStmt:
		// Arguments are evaluated now, in the current goroutine and
		// lock state; the call itself runs later with no locks held.
		for _, a := range x.Call.Args {
			w.walkExpr(a, st, nil)
		}
		fresh := make(State, len(st))
		for k := range st {
			fresh[k] = LockState{}
		}
		if fl, ok := x.Call.Fun.(*ast.FuncLit); ok {
			w.walkClosure(fl, fresh)
		} else {
			w.walkExpr(x.Call.Fun, st, nil)
			if w.cfg.Call != nil {
				w.cfg.Call(x.Call, fresh)
			}
		}
		return st, false

	case *ast.LabeledStmt:
		return w.walkStmt(x.Stmt, st)

	case *ast.DeclStmt:
		if gd, ok := x.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.walkExpr(v, st, nil)
					}
				}
			}
		}
		return st, false

	case *ast.SendStmt:
		w.walkExpr(x.Chan, st, nil)
		w.walkExpr(x.Value, st, nil)
		return st, false
	}
	return st, false
}

// walkCases handles switch / type-switch clause lists.
func (w *methodWalker) walkCases(clauses []ast.Stmt, st State) (State, bool) {
	hasDefault := false
	var outs []State
	for _, c := range clauses {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
		}
		for _, e := range cc.List {
			w.walkExpr(e, st, nil)
		}
		out, term := w.walkStmts(cc.Body, cloneState(st))
		if !term {
			outs = append(outs, out)
		}
	}
	if !hasDefault {
		outs = append(outs, st)
	}
	return mergeAll(outs, st)
}

// mergeAll joins the surviving branch states; with none, the
// statement terminates on every path.
func mergeAll(outs []State, entry State) (State, bool) {
	if len(outs) == 0 {
		return entry, true
	}
	out := outs[0]
	for _, o := range outs[1:] {
		out = mergeStates(out, o)
	}
	return out, false
}

// walkClosure interprets a function literal's body. It inherits the
// surrounding lock state (closures here run synchronously under their
// caller) but is not blamed for locks the enclosing method acquired.
func (w *methodWalker) walkClosure(fl *ast.FuncLit, st State) {
	inner := cloneState(st)
	for k, ls := range inner {
		ls.AcquiredHere = false
		inner[k] = ls
	}
	out, terminated := w.walkStmts(fl.Body.List, inner)
	if !terminated && w.cfg.Return != nil {
		w.cfg.Return(fl.Body.Rbrace, out)
	}
}

type lockOpKind int

const (
	opLock lockOpKind = iota
	opRLock
	opUnlock
	opRUnlock
)

// lockOp recognizes recv.<lock>.Lock() and friends for tracked locks.
func (w *methodWalker) lockOp(e ast.Expr) (string, lockOpKind, bool) {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return "", 0, false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", 0, false
	}
	var op lockOpKind
	switch sel.Sel.Name {
	case "Lock":
		op = opLock
	case "RLock":
		op = opRLock
	case "Unlock":
		op = opUnlock
	case "RUnlock":
		op = opRUnlock
	default:
		return "", 0, false
	}
	inner, ok := sel.X.(*ast.SelectorExpr)
	if !ok {
		return "", 0, false
	}
	field, ok := w.recvField(inner)
	if !ok || !w.tracked(field) {
		return "", 0, false
	}
	return field, op, true
}

func (w *methodWalker) tracked(field string) bool {
	for _, l := range w.cfg.Locks {
		if l == field {
			return true
		}
	}
	return false
}

func applyLockOp(st State, lock string, op lockOpKind) State {
	out := cloneState(st)
	switch op {
	case opLock:
		out[lock] = LockState{Level: Exclusive, AcquiredHere: true}
	case opRLock:
		out[lock] = LockState{Level: Shared, AcquiredHere: true}
	case opUnlock, opRUnlock:
		out[lock] = LockState{}
	}
	return out
}

// writeTargetSel peels an assignment target down to the receiver
// field being mutated: `b.routes[k] = v`, `*b.p = v`, `b.self.Inc++`
// all resolve to their receiver-rooted field selector.
func (w *methodWalker) writeTargetSel(e ast.Expr) *ast.SelectorExpr {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SelectorExpr:
			if _, ok := w.recvField(x); ok {
				return x
			}
			e = x.X
		default:
			return nil
		}
	}
}

// recvField reports whether sel is a field selection on the walked
// method's receiver variable, and which field.
func (w *methodWalker) recvField(sel *ast.SelectorExpr) (string, bool) {
	id, ok := sel.X.(*ast.Ident)
	if !ok || w.recv == nil {
		return "", false
	}
	if w.cfg.Info.Uses[id] != w.recv {
		return "", false
	}
	if s, ok := w.cfg.Info.Selections[sel]; ok && s.Kind() != types.FieldVal {
		return "", false
	}
	return sel.Sel.Name, true
}

// walkExpr traverses an expression, firing Access for receiver field
// selections (writes per the writes set) and Call for call
// expressions, and interpreting function literals inline.
func (w *methodWalker) walkExpr(e ast.Expr, st State, writes map[ast.Expr]bool) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			w.walkClosure(x, st)
			return false
		case *ast.CallExpr:
			if id, ok := x.Fun.(*ast.Ident); ok && len(x.Args) > 0 {
				if b, ok := w.cfg.Info.Uses[id].(*types.Builtin); ok && b.Name() == "delete" {
					if sel := w.writeTargetSel(x.Args[0]); sel != nil {
						if writes == nil {
							writes = make(map[ast.Expr]bool)
						}
						writes[sel] = true
					}
				}
			}
			if sel, ok := x.Fun.(*ast.SelectorExpr); ok && atomicWriteMethods[sel.Sel.Name] {
				if inner, ok := sel.X.(*ast.SelectorExpr); ok {
					if _, isField := w.recvField(inner); isField {
						if writes == nil {
							writes = make(map[ast.Expr]bool)
						}
						writes[inner] = true
					}
				}
			}
			if w.cfg.Call != nil {
				w.cfg.Call(x, st)
			}
			return true
		case *ast.SelectorExpr:
			if field, ok := w.recvField(x); ok && w.cfg.Access != nil {
				w.cfg.Access(x, field, writes[x], st)
			}
			return true
		}
		return true
	})
}
