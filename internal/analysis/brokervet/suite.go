// Package brokervet assembles the repo's analyzer suite with its
// repo-specific configuration. cmd/brokervet and the clean-tree tests
// both build the suite from here so they can never disagree about
// what is enforced.
package brokervet

import (
	"probsum/internal/analysis"
	"probsum/internal/analysis/clockcheck"
	"probsum/internal/analysis/journalcheck"
	"probsum/internal/analysis/lockcheck"
	"probsum/internal/analysis/wirecheck"
)

// CriticalPackages are the determinism-critical packages clockcheck
// polices: everything the seeded chaos harness (cluster.RunChaos) and
// the simnet oracle runs execute. The broker core is included because
// both transports replay it deterministically, and the observability
// layer because its histograms and flight recorder run inside those
// deterministic paths — every timestamp it touches must come from an
// injected clock, never the wall.
var CriticalPackages = []string{
	"probsum/pubsub/cluster",
	"probsum/internal/simnet",
	"probsum/internal/broker",
	"probsum/internal/obs",
}

// Suite returns the brokervet analyzers in reporting order.
func Suite() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		lockcheck.Analyzer,
		clockcheck.New(CriticalPackages),
		wirecheck.Analyzer,
		journalcheck.Analyzer,
	}
}
