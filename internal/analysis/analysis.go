// Package analysis is a minimal, dependency-free re-implementation of
// the golang.org/x/tools/go/analysis surface that brokervet's
// analyzers are written against. The container this repo builds in has
// no module proxy access, so rather than vendor x/tools the suite
// defines the same shape — Analyzer, Pass, Diagnostic — over the
// standard library's go/ast + go/types, plus the three pieces every
// brokervet pass shares:
//
//   - annotation parsing: `+guarded_by:<lock>` on struct fields,
//     `+mustlock:<lock>` on methods, `+wirecheck:gate` on send paths
//   - suppression comments: `//brokervet:allow <analyzer> <reason>`
//   - a package loader (load.go) and the lock-state walker
//     (lockstate.go)
//
// Analyzers are pure functions of a typed package; they keep no state
// between packages and export no facts. That forfeits cross-package
// fact propagation (gVisor's checklocks uses it for exported APIs) but
// every invariant brokervet enforces is package-local by construction:
// the guarded fields, the codec switches, and the journal call sites
// are all unexported.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// An Analyzer describes one brokervet pass.
type Analyzer struct {
	// Name identifies the pass in diagnostics and in
	// //brokervet:allow suppressions.
	Name string
	// Doc is the one-paragraph description printed by cmd/brokervet.
	Doc string
	// Run applies the pass to one package and reports findings
	// through pass.Report.
	Run func(*Pass) error
}

// A Pass is one application of an analyzer to one package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags []Diagnostic
}

// A Diagnostic is one finding.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Report records one finding.
func (p *Pass) Report(d Diagnostic) { p.diags = append(p.diags, d) }

// Reportf records one formatted finding.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// NonTestFiles returns the pass's files excluding _test.go files.
// brokervet enforces its invariants on production code: tests reach
// into internals (poking guarded fields after quiescence, real sleeps
// around real sockets) deliberately, and the race detector plus the
// deterministic harnesses own that ground.
func (p *Pass) NonTestFiles() []*ast.File {
	out := make([]*ast.File, 0, len(p.Files))
	for _, f := range p.Files {
		if strings.HasSuffix(p.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		out = append(out, f)
	}
	return out
}

// ---------------------------------------------------------------------------
// Annotations

var (
	guardedRe  = regexp.MustCompile(`\+guarded_by:([A-Za-z_][A-Za-z0-9_]*)(\s*\(writes\))?`)
	mustlockRe = regexp.MustCompile(`\+mustlock:([A-Za-z_][A-Za-z0-9_]*)(\s*\(shared\))?`)
	gateRe     = regexp.MustCompile(`\+wirecheck:gate`)
)

// FieldGuard is one `+guarded_by:<lock>` annotation on a struct field:
// reads of the field require at least the shared mode of the named
// lock, writes its exclusive mode. The `(writes)` form checks writes
// only — for fields read lock-free through an atomic but whose
// updates are serialized by the lock (pubDedup's generation pointer).
type FieldGuard struct {
	Lock       string
	WritesOnly bool
	// Pos is the annotated field's position (where validation
	// diagnostics anchor).
	Pos token.Pos
}

// Guards maps a named struct type to its annotated fields.
type Guards map[*types.Named]map[string]FieldGuard

// CollectGuards parses every `+guarded_by` annotation in files and,
// when report is set, validates that the named lock is a sync.Mutex /
// sync.RWMutex field of the same struct (only one analyzer should
// report validation, or findings double up). Fields whose annotation
// fails validation are still returned (so dependent checks do not
// cascade), with the guard as written.
func CollectGuards(pass *Pass, files []*ast.File, report bool) Guards {
	guards := make(Guards)
	for _, f := range files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				obj, ok := pass.TypesInfo.Defs[ts.Name]
				if !ok {
					continue
				}
				named, ok := obj.Type().(*types.Named)
				if !ok {
					continue
				}
				for _, field := range st.Fields.List {
					guard, ok := parseGuard(field)
					if !ok {
						continue
					}
					if report && !structHasLockField(named, guard.Lock) {
						pass.Reportf(field.Pos(),
							"+guarded_by:%s: struct %s has no sync.Mutex or sync.RWMutex field named %q",
							guard.Lock, named.Obj().Name(), guard.Lock)
					}
					if guards[named] == nil {
						guards[named] = make(map[string]FieldGuard)
					}
					for _, name := range field.Names {
						guards[named][name.Name] = guard
					}
				}
			}
		}
	}
	return guards
}

// parseGuard extracts a +guarded_by annotation from a field's doc or
// trailing comment.
func parseGuard(field *ast.Field) (FieldGuard, bool) {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		if m := guardedRe.FindStringSubmatch(cg.Text()); m != nil {
			return FieldGuard{Lock: m[1], WritesOnly: m[2] != "", Pos: field.Pos()}, true
		}
	}
	return FieldGuard{}, false
}

// structHasLockField reports whether the named struct type declares a
// field lock of a mutex type.
func structHasLockField(named *types.Named, lock string) bool {
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if f.Name() == lock && isMutexType(f.Type()) {
			return true
		}
	}
	return false
}

// isMutexType reports whether t is sync.Mutex or sync.RWMutex
// (possibly behind a pointer).
func isMutexType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// MustLock is one `+mustlock:<lock>` annotation on a method: callers
// must hold the receiver's named lock — exclusively by default, at
// least shared with the `(shared)` form — before calling, and the
// method body is analyzed starting in that lock state.
type MustLock struct {
	Lock  string
	Level LockLevel
}

// CollectMustLocks parses `+mustlock` annotations on method
// declarations and, when report is set, validates that the named lock
// is a mutex field of the receiver's struct.
func CollectMustLocks(pass *Pass, files []*ast.File, report bool) map[*types.Func]MustLock {
	out := make(map[*types.Func]MustLock)
	for _, f := range files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil || fd.Recv == nil {
				continue
			}
			m := mustlockRe.FindStringSubmatch(fd.Doc.Text())
			if m == nil {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			ml := MustLock{Lock: m[1], Level: Exclusive}
			if m[2] != "" {
				ml.Level = Shared
			}
			if named := recvNamed(fn); report && (named == nil || !structHasLockField(named, ml.Lock)) {
				pass.Reportf(fd.Pos(),
					"+mustlock:%s: receiver of %s has no sync.Mutex or sync.RWMutex field named %q",
					ml.Lock, fd.Name.Name, ml.Lock)
			}
			out[fn] = ml
		}
	}
	return out
}

// IsGateFunc reports whether the declaration carries a
// `+wirecheck:gate` annotation.
func IsGateFunc(fd *ast.FuncDecl) bool {
	return fd.Doc != nil && gateRe.MatchString(fd.Doc.Text())
}

// recvNamed returns the named type of a method's receiver (through a
// pointer), or nil.
func recvNamed(fn *types.Func) *types.Named {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// ---------------------------------------------------------------------------
// Suppressions

// allowRe matches suppression comments. Like any Go directive the
// comment must start exactly with `//brokervet:allow` (no space), so
// prose that merely mentions the syntax does not suppress anything.
// The reason is mandatory: a suppression without a recorded why is
// itself a finding.
var allowRe = regexp.MustCompile(`^//brokervet:allow(?:\s+(\S+))?\s*(.*)$`)

// Allow is one parsed suppression comment.
type Allow struct {
	Analyzer string
	Reason   string
	Pos      token.Pos
}

// CollectAllows gathers the //brokervet:allow comments of all files,
// keyed by file name and line. A suppression applies to diagnostics
// on its own line and on the line directly below (the "annotation
// above the statement" form).
func CollectAllows(fset *token.FileSet, files []*ast.File) map[string]map[int][]Allow {
	out := make(map[string]map[int][]Allow)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := allowRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				if out[pos.Filename] == nil {
					out[pos.Filename] = make(map[int][]Allow)
				}
				a := Allow{Analyzer: m[1], Reason: strings.TrimSpace(m[2]), Pos: c.Pos()}
				out[pos.Filename][pos.Line] = append(out[pos.Filename][pos.Line], a)
			}
		}
	}
	return out
}

// Suppressed reports whether a diagnostic of the named analyzer at
// pos is covered by an allow comment on the same line or the line
// above.
func Suppressed(fset *token.FileSet, allows map[string]map[int][]Allow, analyzer string, pos token.Pos) bool {
	p := fset.Position(pos)
	lines := allows[p.Filename]
	if lines == nil {
		return false
	}
	for _, line := range []int{p.Line, p.Line - 1} {
		for _, a := range lines[line] {
			if a.Analyzer == analyzer {
				return true
			}
		}
	}
	return false
}
