// Package wirecheck machine-checks the wire protocol's growth rules.
// The codec is versioned (hello/ack-negotiated, DESIGN.md §§9–11) and
// every PR that adds a frame kind or a field must keep three promises
// that historically lived in review comments:
//
//  1. exhaustiveness — every Msg* kind of the MsgKind enum is handled
//     in the binary encode switch reachable from MarshalFrame and the
//     decode switch reachable from UnmarshalFrame;
//  2. a total version registry — the codec package declares
//     frameMinCodec mapping every kind to the minimum negotiated
//     codec that may carry it, and every kind above the JSON baseline
//     has a version-gated case in a `+wirecheck:gate` send path (the
//     "added a frame, forgot the gate" bug class the fuzz corpus only
//     finds after the fact);
//  3. field symmetry — within the binary switches, a Message field
//     serialized for a kind must be decoded for that kind and vice
//     versa (the "added a field on one side" bug class).
//
// The analyzer activates only in packages that declare MarshalFrame /
// UnmarshalFrame over a type named MsgKind; everything else is out of
// scope by construction.
package wirecheck

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"probsum/internal/analysis"
)

// Analyzer is the wirecheck pass.
var Analyzer = &analysis.Analyzer{
	Name: "wirecheck",
	Doc:  "check Msg* codec exhaustiveness, frameMinCodec totality, version gating, and encode/decode field symmetry",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	files := pass.NonTestFiles()
	marshal := findFuncDecl(pass, files, "MarshalFrame")
	unmarshal := findFuncDecl(pass, files, "UnmarshalFrame")
	if marshal == nil && unmarshal == nil {
		return nil
	}
	kindType := findKindType(pass)
	if kindType == nil {
		return nil
	}
	kinds := kindConsts(pass, kindType)
	if len(kinds) == 0 {
		return nil
	}

	graph := buildCallGraph(pass, files)

	// Rule 1: exhaustiveness of the binary switches.
	encode := collectSide(pass, graph, marshal, kindType)
	decode := collectSide(pass, graph, unmarshal, kindType)
	reportMissingKinds(pass, marshal, "encode switch reachable from MarshalFrame", kinds, encode)
	reportMissingKinds(pass, unmarshal, "decode switch reachable from UnmarshalFrame", kinds, decode)

	// Rule 2: frameMinCodec totality + version gating.
	reg := findRegistry(pass, files, kindType)
	if reg == nil {
		if marshal != nil {
			pass.Reportf(marshal.Pos(),
				"package declares MarshalFrame but no frameMinCodec registry: map every MsgKind to the minimum negotiated codec that may carry it")
		}
	} else {
		var missing []string
		for name := range kinds {
			if _, ok := reg.min[name]; !ok {
				missing = append(missing, name)
			}
		}
		sort.Strings(missing)
		for _, name := range missing {
			pass.Reportf(reg.pos,
				"%s has no frameMinCodec entry: every frame kind must declare the minimum codec that may carry it", name)
		}
		checkGates(pass, files, kindType, reg)
	}

	// Rule 3: encode/decode field symmetry per kind.
	if marshal != nil && unmarshal != nil {
		checkFieldSymmetry(pass, kinds, encode, decode)
	}
	return nil
}

// ---------------------------------------------------------------------------
// Kind discovery

// findKindType locates the named type called MsgKind that this
// package's frame kinds are constants of — declared locally or
// imported.
func findKindType(pass *analysis.Pass) *types.Named {
	for _, m := range []map[*ast.Ident]types.Object{pass.TypesInfo.Defs, pass.TypesInfo.Uses} {
		for _, obj := range m {
			if obj == nil {
				continue
			}
			tn, ok := obj.(*types.TypeName)
			if ok && tn.Name() == "MsgKind" {
				if named, ok := tn.Type().(*types.Named); ok {
					return named
				}
			}
			if c, ok := obj.(*types.Const); ok {
				if named, ok := c.Type().(*types.Named); ok && named.Obj().Name() == "MsgKind" {
					return named
				}
			}
		}
	}
	return nil
}

// kindConsts enumerates the Msg*-named constants of the kind type
// from its defining package's scope.
func kindConsts(pass *analysis.Pass, kindType *types.Named) map[string]*types.Const {
	pkg := kindType.Obj().Pkg()
	if pkg == nil {
		return nil
	}
	out := make(map[string]*types.Const)
	scope := pkg.Scope()
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !strings.HasPrefix(name, "Msg") {
			continue
		}
		if types.Identical(c.Type(), kindType) {
			out[name] = c
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// Reachability

// buildCallGraph over-approximates the package-local call graph: an
// edge exists wherever a function's body references another
// package-level function or method.
func buildCallGraph(pass *analysis.Pass, files []*ast.File) map[*types.Func][]*ast.FuncDecl {
	decls := make(map[*types.Func]*ast.FuncDecl)
	for _, f := range files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok {
				if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
					decls[fn] = fd
				}
			}
		}
	}
	graph := make(map[*types.Func][]*ast.FuncDecl)
	for fn, fd := range decls {
		if fd.Body == nil {
			continue
		}
		seen := make(map[*types.Func]bool)
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			callee, ok := pass.TypesInfo.Uses[id].(*types.Func)
			if !ok || seen[callee] {
				return true
			}
			if target, ok := decls[callee]; ok {
				seen[callee] = true
				graph[fn] = append(graph[fn], target)
			}
			return true
		})
	}
	return graph
}

// reachableDecls returns root plus every package-level function its
// body transitively references.
func reachableDecls(pass *analysis.Pass, graph map[*types.Func][]*ast.FuncDecl, root *ast.FuncDecl) []*ast.FuncDecl {
	rootFn, ok := pass.TypesInfo.Defs[root.Name].(*types.Func)
	if !ok {
		return []*ast.FuncDecl{root}
	}
	visited := map[*types.Func]bool{rootFn: true}
	out := []*ast.FuncDecl{root}
	queue := []*types.Func{rootFn}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		for _, fd := range graph[fn] {
			callee, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok || visited[callee] {
				continue
			}
			visited[callee] = true
			out = append(out, fd)
			queue = append(queue, callee)
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// Switch collection

// sideInfo is what one side (encode or decode) of the codec covers.
type sideInfo struct {
	covered map[string]token.Pos      // kind → first case clause position
	fields  map[string]map[string]bool // kind → Message fields touched in its cases
}

// collectSide gathers the kind-switch coverage reachable from root.
func collectSide(pass *analysis.Pass, graph map[*types.Func][]*ast.FuncDecl, root *ast.FuncDecl, kindType *types.Named) *sideInfo {
	if root == nil {
		return nil
	}
	side := &sideInfo{
		covered: make(map[string]token.Pos),
		fields:  make(map[string]map[string]bool),
	}
	msgType := findMessageType(pass, kindType)
	for _, fd := range reachableDecls(pass, graph, root) {
		if fd.Body == nil {
			continue
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			tv, ok := pass.TypesInfo.Types[sw.Tag]
			if !ok || !sameNamed(tv.Type, kindType) {
				return true
			}
			for _, c := range sw.Body.List {
				cc, ok := c.(*ast.CaseClause)
				if !ok {
					continue
				}
				var caseKinds []string
				for _, e := range cc.List {
					if name, ok := kindConstName(pass, e, kindType); ok {
						caseKinds = append(caseKinds, name)
						if _, seen := side.covered[name]; !seen {
							side.covered[name] = cc.Pos()
						}
					}
				}
				if msgType == nil || len(caseKinds) == 0 {
					continue
				}
				touched := messageFields(pass, cc, msgType)
				for _, k := range caseKinds {
					if side.fields[k] == nil {
						side.fields[k] = make(map[string]bool)
					}
					for f := range touched {
						side.fields[k][f] = true
					}
				}
			}
			return true
		})
	}
	return side
}

// kindConstName resolves a case expression to a Msg* constant name.
func kindConstName(pass *analysis.Pass, e ast.Expr, kindType *types.Named) (string, bool) {
	var id *ast.Ident
	switch x := e.(type) {
	case *ast.Ident:
		id = x
	case *ast.SelectorExpr:
		id = x.Sel
	default:
		return "", false
	}
	c, ok := pass.TypesInfo.Uses[id].(*types.Const)
	if !ok || !types.Identical(c.Type(), kindType) {
		return "", false
	}
	return c.Name(), true
}

// findMessageType locates the frame struct: the named struct type
// with a Kind field of the kind type, searched in the kind type's
// package and the current one.
func findMessageType(pass *analysis.Pass, kindType *types.Named) *types.Named {
	scopes := []*types.Scope{pass.Pkg.Scope()}
	if p := kindType.Obj().Pkg(); p != nil {
		scopes = append(scopes, p.Scope())
	}
	for _, scope := range scopes {
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok {
				continue
			}
			st, ok := named.Underlying().(*types.Struct)
			if !ok {
				continue
			}
			for i := 0; i < st.NumFields(); i++ {
				f := st.Field(i)
				if f.Name() == "Kind" && types.Identical(f.Type(), kindType) {
					return named
				}
			}
		}
	}
	return nil
}

// messageFields collects the frame-struct fields a case body touches:
// selector reads/writes on Message-typed expressions plus composite
// literal keys, Kind excluded.
func messageFields(pass *analysis.Pass, cc *ast.CaseClause, msgType *types.Named) map[string]bool {
	out := make(map[string]bool)
	for _, s := range cc.Body {
		ast.Inspect(s, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.SelectorExpr:
				tv, ok := pass.TypesInfo.Types[x.X]
				if !ok || !sameNamed(tv.Type, msgType) {
					return true
				}
				if sel, ok := pass.TypesInfo.Selections[x]; !ok || sel.Kind() != types.FieldVal {
					return true
				}
				if x.Sel.Name != "Kind" {
					out[x.Sel.Name] = true
				}
			case *ast.CompositeLit:
				tv, ok := pass.TypesInfo.Types[x]
				if !ok || !sameNamed(tv.Type, msgType) {
					return true
				}
				for _, elt := range x.Elts {
					if kv, ok := elt.(*ast.KeyValueExpr); ok {
						if id, ok := kv.Key.(*ast.Ident); ok && id.Name != "Kind" {
							out[id.Name] = true
						}
					}
				}
			}
			return true
		})
	}
	return out
}

// sameNamed compares a (possibly pointer-wrapped, possibly aliased)
// type against a named type.
func sameNamed(t types.Type, named *types.Named) bool {
	t = types.Unalias(t)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	n, ok := t.(*types.Named)
	return ok && n.Obj() == named.Obj()
}

// reportMissingKinds flags kinds absent from a side's switches.
func reportMissingKinds(pass *analysis.Pass, root *ast.FuncDecl, where string, kinds map[string]*types.Const, side *sideInfo) {
	if root == nil || side == nil {
		return
	}
	var missing []string
	for name := range kinds {
		if _, ok := side.covered[name]; !ok {
			missing = append(missing, name)
		}
	}
	sort.Strings(missing)
	for _, name := range missing {
		pass.Reportf(root.Pos(), "%s is not handled in the %s", name, where)
	}
}

// ---------------------------------------------------------------------------
// frameMinCodec registry + gates

type registry struct {
	pos       token.Pos
	min       map[string]int64  // kind name → minimum codec
	entryPos  map[string]token.Pos
	codecType *types.Named // the registry's value type (WireCodec)
}

// findRegistry locates the package-level frameMinCodec composite
// literal and decodes its constant entries.
func findRegistry(pass *analysis.Pass, files []*ast.File, kindType *types.Named) *registry {
	for _, f := range files {
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if name.Name != "frameMinCodec" || i >= len(vs.Values) {
						continue
					}
					cl, ok := vs.Values[i].(*ast.CompositeLit)
					if !ok {
						continue
					}
					reg := &registry{
						pos:      name.Pos(),
						min:      make(map[string]int64),
						entryPos: make(map[string]token.Pos),
					}
					if obj := pass.TypesInfo.Defs[name]; obj != nil {
						if m, ok := obj.Type().Underlying().(*types.Map); ok {
							if n, ok := types.Unalias(m.Elem()).(*types.Named); ok {
								reg.codecType = n
							}
						}
					}
					for _, elt := range cl.Elts {
						kv, ok := elt.(*ast.KeyValueExpr)
						if !ok {
							continue
						}
						kname, ok := kindConstName(pass, kv.Key, kindType)
						if !ok {
							continue
						}
						tv, ok := pass.TypesInfo.Types[kv.Value]
						if !ok || tv.Value == nil {
							continue
						}
						v, ok := constant.Int64Val(tv.Value)
						if !ok {
							continue
						}
						reg.min[kname] = v
						reg.entryPos[kname] = kv.Key.Pos()
					}
					return reg
				}
			}
		}
	}
	return nil
}

// checkGates verifies that every kind above the JSON baseline has a
// version-gated case in a +wirecheck:gate function.
func checkGates(pass *analysis.Pass, files []*ast.File, kindType *types.Named, reg *registry) {
	var gated []string
	for name, v := range reg.min {
		if v >= 1 {
			gated = append(gated, name)
		}
	}
	if len(gated) == 0 {
		return
	}
	sort.Strings(gated)

	var gateFuncs []*ast.FuncDecl
	for _, f := range files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && analysis.IsGateFunc(fd) {
				gateFuncs = append(gateFuncs, fd)
			}
		}
	}
	if len(gateFuncs) == 0 {
		pass.Reportf(reg.pos,
			"frameMinCodec has kinds above the JSON baseline but no function is annotated +wirecheck:gate to version-gate their sends")
		return
	}

	// kind → (seen in a gate case, that case is guarded, case pos)
	type gateState struct {
		seen    bool
		guarded bool
		pos     token.Pos
	}
	states := make(map[string]*gateState)
	for _, name := range gated {
		states[name] = &gateState{}
	}
	for _, fd := range gateFuncs {
		if fd.Body == nil {
			continue
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			tv, ok := pass.TypesInfo.Types[sw.Tag]
			if !ok || !sameNamed(tv.Type, kindType) {
				return true
			}
			for _, c := range sw.Body.List {
				cc, ok := c.(*ast.CaseClause)
				if !ok {
					continue
				}
				guarded := caseHasVersionGuard(pass, cc, reg.codecType)
				for _, e := range cc.List {
					name, ok := kindConstName(pass, e, kindType)
					if !ok {
						continue
					}
					st, tracked := states[name]
					if !tracked {
						continue
					}
					if !st.seen {
						st.seen, st.guarded, st.pos = true, guarded, cc.Pos()
					} else if guarded {
						st.guarded = true
					}
				}
			}
			return true
		})
	}
	for _, name := range gated {
		st := states[name]
		switch {
		case !st.seen:
			pass.Reportf(reg.entryPos[name],
				"%s requires codec ≥ %d but no +wirecheck:gate function has a case for it: sends to older peers are unguarded",
				name, reg.min[name])
		case !st.guarded:
			pass.Reportf(st.pos,
				"%s requires codec ≥ %d but this gate case has no negotiated-version check (compare the peer's codec or cluster version before sending)",
				name, reg.min[name])
		}
	}
}

// caseHasVersionGuard looks for a comparison against the negotiated
// codec type or an atomic .Load() (the cluster-version handshake bit)
// inside the case body.
func caseHasVersionGuard(pass *analysis.Pass, cc *ast.CaseClause, codecType *types.Named) bool {
	found := false
	for _, s := range cc.Body {
		ast.Inspect(s, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || !isComparison(be.Op) {
				return true
			}
			for _, operand := range []ast.Expr{be.X, be.Y} {
				if codecType != nil {
					if tv, ok := pass.TypesInfo.Types[operand]; ok && sameNamed(tv.Type, codecType) {
						found = true
					}
				}
				if call, ok := operand.(*ast.CallExpr); ok {
					if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Load" {
						found = true
					}
				}
			}
			return true
		})
	}
	return found
}

func isComparison(op token.Token) bool {
	switch op {
	case token.LSS, token.LEQ, token.GTR, token.GEQ, token.EQL, token.NEQ:
		return true
	}
	return false
}

// ---------------------------------------------------------------------------
// Field symmetry

func checkFieldSymmetry(pass *analysis.Pass, kinds map[string]*types.Const, encode, decode *sideInfo) {
	if encode == nil || decode == nil {
		return
	}
	var names []string
	for name := range kinds {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		encPos, encOK := encode.covered[name]
		decPos, decOK := decode.covered[name]
		if !encOK || !decOK {
			continue // exhaustiveness already reported
		}
		for _, f := range sortedDiff(encode.fields[name], decode.fields[name]) {
			pass.Reportf(encPos,
				"field %s of %s is serialized in the encode switch but never decoded: the peer silently drops it", f, name)
		}
		for _, f := range sortedDiff(decode.fields[name], encode.fields[name]) {
			pass.Reportf(decPos,
				"field %s of %s is decoded but never serialized in the encode switch: it can only ever be zero on the wire", f, name)
		}
	}
}

func sortedDiff(a, b map[string]bool) []string {
	var out []string
	for f := range a {
		if !b[f] {
			out = append(out, f)
		}
	}
	sort.Strings(out)
	return out
}

// findFuncDecl locates a package-level function by name.
func findFuncDecl(pass *analysis.Pass, files []*ast.File, name string) *ast.FuncDecl {
	for _, f := range files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Recv == nil && fd.Name.Name == name {
				return fd
			}
		}
	}
	return nil
}
