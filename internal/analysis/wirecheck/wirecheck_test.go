package wirecheck_test

import (
	"path/filepath"
	"testing"

	"probsum/internal/analysis/analysistest"
	"probsum/internal/analysis/wirecheck"
)

func TestWirecheckViolations(t *testing.T) {
	analysistest.Run(t, wirecheck.Analyzer, filepath.Join("testdata", "src", "a"))
}

func TestWirecheckClean(t *testing.T) {
	// Package b is a complete, correctly gated codec: zero diagnostics
	// expected (the fixture has no want comments).
	analysistest.Run(t, wirecheck.Analyzer, filepath.Join("testdata", "src", "b"))
}
