// Package a is the wirecheck violation fixture: a miniature versioned
// codec where one kind is missing everywhere (MsgD), one is missing
// from the decode switch (MsgB), one has asymmetric fields (MsgC), one
// has an ungated send case (MsgE), and one has no gate case at all
// (MsgF). MsgA and MsgG are fully correct.
package a

type MsgKind uint8

const (
	MsgA MsgKind = iota
	MsgB
	MsgC
	MsgD
	MsgE
	MsgF
	MsgG
)

type Message struct {
	Kind MsgKind
	A    string
	B    int
	C1   string
	C2   string
	E    int
	F    int
	G    int
}

type WireCodec uint8

const (
	CodecJSON WireCodec = iota
	CodecBinary
	CodecBinary2
)

var frameMinCodec = map[MsgKind]WireCodec{ // want `MsgD has no frameMinCodec entry`
	MsgA: CodecJSON,
	MsgB: CodecJSON,
	MsgC: CodecJSON,
	MsgE: CodecBinary2,
	MsgF: CodecBinary, // want `MsgF requires codec ≥ 1 but no \+wirecheck:gate function has a case for it`
	MsgG: CodecBinary,
}

func MarshalFrame(m *Message) []byte { // want `MsgD is not handled in the encode switch reachable from MarshalFrame`
	return encodeBody(m)
}

// encodeBody is only reachable from MarshalFrame: its switch must
// still be found through the call graph.
func encodeBody(m *Message) []byte {
	var buf []byte
	switch m.Kind {
	case MsgA:
		buf = appendString(buf, m.A)
	case MsgB:
		buf = append(buf, byte(m.B))
	case MsgC: // want `field C2 of MsgC is serialized in the encode switch but never decoded`
		buf = appendString(buf, m.C1)
		buf = appendString(buf, m.C2)
	case MsgE:
		buf = append(buf, byte(m.E))
	case MsgF:
		buf = append(buf, byte(m.F))
	case MsgG:
		buf = append(buf, byte(m.G))
	}
	return buf
}

func UnmarshalFrame(data []byte) *Message { // want `MsgB is not handled in the decode switch reachable from UnmarshalFrame` `MsgD is not handled in the decode switch reachable from UnmarshalFrame`
	var m Message
	m.Kind = MsgKind(data[0])
	switch m.Kind {
	case MsgA:
		m.A = string(data[1:])
	case MsgC: // want `field B of MsgC is decoded but never serialized in the encode switch`
		m.C1 = string(data[1:])
		m.B = len(data)
	case MsgE:
		m.E = int(data[1])
	case MsgF:
		m.F = int(data[1])
	case MsgG:
		m.G = int(data[1])
	}
	return &m
}

// send is the version-gated vocabulary switch of this fixture.
//
// +wirecheck:gate
func send(peer WireCodec, m *Message) []byte {
	switch m.Kind {
	case MsgE: // want `MsgE requires codec ≥ 2 but this gate case has no negotiated-version check`
		return MarshalFrame(m)
	case MsgG:
		if peer < CodecBinary {
			return nil
		}
		return MarshalFrame(m)
	}
	return MarshalFrame(m)
}

func appendString(buf []byte, s string) []byte {
	buf = append(buf, byte(len(s)))
	return append(buf, s...)
}
