// Package b is the wirecheck clean fixture: a complete codec — total
// registry, symmetric switches, a guarded gate case — that must
// produce no diagnostics.
package b

type MsgKind uint8

const (
	MsgX MsgKind = iota
	MsgY
)

type Message struct {
	Kind MsgKind
	X    string
	Y    int
}

type WireCodec uint8

const (
	CodecJSON WireCodec = iota
	CodecBinary
)

var frameMinCodec = map[MsgKind]WireCodec{
	MsgX: CodecJSON,
	MsgY: CodecBinary,
}

func MarshalFrame(m *Message) []byte {
	var buf []byte
	switch m.Kind {
	case MsgX:
		buf = append(buf, byte(len(m.X)))
		buf = append(buf, m.X...)
	case MsgY:
		buf = append(buf, byte(m.Y))
	}
	return buf
}

func UnmarshalFrame(data []byte) *Message {
	var m Message
	m.Kind = MsgKind(data[0])
	switch m.Kind {
	case MsgX:
		m.X = string(data[1:])
	case MsgY:
		m.Y = int(data[1])
	}
	return &m
}

// send gates version-dependent kinds on the negotiated codec.
//
// +wirecheck:gate
func send(peer WireCodec, m *Message) []byte {
	switch m.Kind {
	case MsgY:
		if peer < CodecBinary {
			return nil
		}
	}
	return MarshalFrame(m)
}
