// Package pairwise implements the classical pairwise covering baseline
// the paper compares against (Section 6.4): a subscription is dropped
// only when a single existing subscription covers it. This is the
// strategy of deterministic systems such as SIENA and REBECA, which
// cannot detect group coverage and therefore retain strictly more
// subscriptions than the probabilistic group checker.
package pairwise

import (
	"probsum/internal/subscription"
)

// CoveredBySingle reports whether any member of set covers s on its
// own, returning the index of the first coverer or -1. It allocates
// nothing and exits at the first per-attribute violation, so callers
// on the hot path (store.Subscribe) hand it pruned candidate slices
// directly.
func CoveredBySingle(s subscription.Subscription, set []subscription.Subscription) int {
	for i, si := range set {
		if si.Covers(s) {
			return i
		}
	}
	return -1
}

// Set maintains an active subscription set under the pairwise covering
// reduction. The zero value is ready to use.
type Set struct {
	active []subscription.Subscription
	// PruneReverse additionally removes existing subscriptions covered
	// by a newly added one (both directions of the pairwise relation).
	PruneReverse bool
}

// Add offers a subscription to the set. It reports whether s was kept
// (true) or dropped because an existing subscription covers it (false).
// With PruneReverse enabled, existing subscriptions covered by s are
// removed when s is kept.
func (p *Set) Add(s subscription.Subscription) bool {
	if CoveredBySingle(s, p.active) >= 0 {
		return false
	}
	if p.PruneReverse {
		kept := p.active[:0]
		for _, old := range p.active {
			if !s.Covers(old) {
				kept = append(kept, old)
			}
		}
		p.active = kept
	}
	p.active = append(p.active, s)
	return true
}

// Len returns the current active set size.
func (p *Set) Len() int { return len(p.active) }

// Active returns a copy of the active subscriptions.
func (p *Set) Active() []subscription.Subscription {
	out := make([]subscription.Subscription, len(p.active))
	copy(out, p.active)
	return out
}
