package pairwise

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"probsum/internal/interval"
	"probsum/internal/subscription"
)

func box(lo1, hi1, lo2, hi2 int64) subscription.Subscription {
	return subscription.New(interval.New(lo1, hi1), interval.New(lo2, hi2))
}

func TestCoveredBySingle(t *testing.T) {
	set := []subscription.Subscription{
		box(0, 10, 0, 10),
		box(5, 20, 5, 20),
	}
	tests := []struct {
		name string
		s    subscription.Subscription
		want int
	}{
		{name: "inside first", s: box(1, 9, 1, 9), want: 0},
		{name: "inside second", s: box(6, 19, 6, 19), want: 1},
		{name: "inside union only", s: box(1, 19, 6, 9), want: -1},
		{name: "outside", s: box(30, 40, 30, 40), want: -1},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := CoveredBySingle(tc.s, set); got != tc.want {
				t.Errorf("CoveredBySingle = %d, want %d", got, tc.want)
			}
		})
	}
}

func TestSetAddDropsCovered(t *testing.T) {
	var p Set
	if !p.Add(box(0, 10, 0, 10)) {
		t.Fatal("first subscription must be kept")
	}
	if p.Add(box(2, 8, 2, 8)) {
		t.Error("covered subscription must be dropped")
	}
	if p.Len() != 1 {
		t.Errorf("Len = %d, want 1", p.Len())
	}
	if !p.Add(box(5, 20, 5, 20)) {
		t.Error("partially overlapping subscription must be kept")
	}
	if p.Len() != 2 {
		t.Errorf("Len = %d, want 2", p.Len())
	}
}

func TestSetPruneReverse(t *testing.T) {
	p := Set{PruneReverse: true}
	p.Add(box(2, 4, 2, 4))
	p.Add(box(6, 8, 6, 8))
	p.Add(box(20, 30, 20, 30))
	// A subscription covering the first two replaces them.
	if !p.Add(box(0, 10, 0, 10)) {
		t.Fatal("covering subscription must be kept")
	}
	if p.Len() != 2 {
		t.Errorf("Len = %d, want 2 after reverse pruning", p.Len())
	}
	active := p.Active()
	for _, s := range active {
		if s.Equal(box(2, 4, 2, 4)) || s.Equal(box(6, 8, 6, 8)) {
			t.Errorf("pruned subscription still present: %v", s)
		}
	}
}

func TestSetNoPruneReverseKeeps(t *testing.T) {
	var p Set
	p.Add(box(2, 4, 2, 4))
	p.Add(box(0, 10, 0, 10))
	if p.Len() != 2 {
		t.Errorf("Len = %d, want 2 without reverse pruning", p.Len())
	}
}

func TestActiveReturnsCopy(t *testing.T) {
	var p Set
	p.Add(box(0, 10, 0, 10))
	a := p.Active()
	a[0] = box(99, 99, 99, 99)
	if !p.Active()[0].Equal(box(0, 10, 0, 10)) {
		t.Error("Active must return a copy")
	}
}

func TestSetInvariantNoPairwiseCover(t *testing.T) {
	// After any Add sequence with PruneReverse, no member covers
	// another.
	cfg := &quick.Config{MaxCount: 200}
	f := func(seed1, seed2 uint64) bool {
		r := rand.New(rand.NewPCG(seed1, seed2))
		p := Set{PruneReverse: true}
		for i := 0; i < 30; i++ {
			lo1, lo2 := r.Int64N(20), r.Int64N(20)
			p.Add(box(lo1, lo1+r.Int64N(20), lo2, lo2+r.Int64N(20)))
		}
		active := p.Active()
		for i, a := range active {
			for j, b := range active {
				if i != j && a.Covers(b) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
