// Package interval implements closed integer intervals and the small
// amount of interval algebra the subsumption algorithms rely on.
//
// Attribute values in the paper's data model are elements of ordered
// finite sets, so every predicate bounds an attribute from below and
// above; an interval [Lo, Hi] (both ends inclusive) represents the
// conjunction x >= Lo AND x <= Hi. The empty interval is any interval
// with Lo > Hi; Empty() is the canonical one.
package interval

import (
	"fmt"
	"math"
)

// Interval is a closed integer interval [Lo, Hi]. It is empty when
// Lo > Hi. The zero value is the single point {0}.
type Interval struct {
	Lo int64 `json:"lo"`
	Hi int64 `json:"hi"`
}

// New returns the interval [lo, hi].
func New(lo, hi int64) Interval { return Interval{Lo: lo, Hi: hi} }

// Point returns the degenerate interval [v, v].
func Point(v int64) Interval { return Interval{Lo: v, Hi: v} }

// Empty returns the canonical empty interval.
func Empty() Interval { return Interval{Lo: 1, Hi: 0} }

// Full returns the interval covering the entire usable int64 domain.
// The extremes are backed off by one to keep Count and complement
// computations free of overflow.
func Full() Interval {
	return Interval{Lo: math.MinInt64 / 4, Hi: math.MaxInt64 / 4}
}

// IsEmpty reports whether the interval contains no points.
func (iv Interval) IsEmpty() bool { return iv.Lo > iv.Hi }

// Contains reports whether v lies inside the interval.
func (iv Interval) Contains(v int64) bool { return iv.Lo <= v && v <= iv.Hi }

// ContainsInterval reports whether other is a subset of iv.
// The empty interval is a subset of everything.
func (iv Interval) ContainsInterval(other Interval) bool {
	if other.IsEmpty() {
		return true
	}
	return iv.Lo <= other.Lo && other.Hi <= iv.Hi
}

// Intersect returns the intersection of the two intervals.
func (iv Interval) Intersect(other Interval) Interval {
	lo, hi := iv.Lo, iv.Hi
	if other.Lo > lo {
		lo = other.Lo
	}
	if other.Hi < hi {
		hi = other.Hi
	}
	return Interval{Lo: lo, Hi: hi}
}

// Intersects reports whether the two intervals share at least one point.
func (iv Interval) Intersects(other Interval) bool {
	return !iv.Intersect(other).IsEmpty()
}

// Hull returns the smallest interval containing both inputs. The hull of
// an empty interval and x is x.
func (iv Interval) Hull(other Interval) Interval {
	if iv.IsEmpty() {
		return other
	}
	if other.IsEmpty() {
		return iv
	}
	lo, hi := iv.Lo, iv.Hi
	if other.Lo < lo {
		lo = other.Lo
	}
	if other.Hi > hi {
		hi = other.Hi
	}
	return Interval{Lo: lo, Hi: hi}
}

// Count returns the number of integer points in the interval.
// Empty intervals have zero points.
func (iv Interval) Count() int64 {
	if iv.IsEmpty() {
		return 0
	}
	return iv.Hi - iv.Lo + 1
}

// LogCount returns the natural logarithm of Count. It is used to compute
// the size of high-dimensional boxes without overflowing int64.
// The log of an empty interval is -Inf.
func (iv Interval) LogCount() float64 {
	if iv.IsEmpty() {
		return math.Inf(-1)
	}
	return math.Log(float64(iv.Hi-iv.Lo) + 1)
}

// Below returns the part of iv strictly below v, i.e. iv ∩ {x < v}.
func (iv Interval) Below(v int64) Interval {
	out := iv
	if v-1 < out.Hi {
		out.Hi = v - 1
	}
	return out
}

// Above returns the part of iv strictly above v, i.e. iv ∩ {x > v}.
func (iv Interval) Above(v int64) Interval {
	out := iv
	if v+1 > out.Lo {
		out.Lo = v + 1
	}
	return out
}

// Equal reports whether the two intervals contain exactly the same
// points. All empty intervals are equal to each other.
func (iv Interval) Equal(other Interval) bool {
	if iv.IsEmpty() || other.IsEmpty() {
		return iv.IsEmpty() && other.IsEmpty()
	}
	return iv == other
}

// String renders the interval as "[lo,hi]" or "∅".
func (iv Interval) String() string {
	if iv.IsEmpty() {
		return "∅"
	}
	return fmt.Sprintf("[%d,%d]", iv.Lo, iv.Hi)
}

// Union is a set of disjoint, sorted, non-adjacent intervals. It is used
// by workload generators to verify one-dimensional coverage exactly.
type Union struct {
	parts []Interval
}

// Add inserts an interval into the union, merging overlapping or
// adjacent parts.
func (u *Union) Add(iv Interval) {
	if iv.IsEmpty() {
		return
	}
	merged := iv
	out := make([]Interval, 0, len(u.parts)+1)
	inserted := false
	for _, p := range u.parts {
		switch {
		case p.Hi < merged.Lo-1:
			out = append(out, p)
		case p.Lo > merged.Hi+1:
			if !inserted {
				out = append(out, merged)
				inserted = true
			}
			out = append(out, p)
		default: // overlapping or adjacent: absorb into merged
			merged = merged.Hull(p)
		}
	}
	if !inserted {
		out = append(out, merged)
	}
	u.parts = out
}

// Covers reports whether the union fully contains iv.
func (u *Union) Covers(iv Interval) bool {
	if iv.IsEmpty() {
		return true
	}
	for _, p := range u.parts {
		if p.Lo <= iv.Lo && iv.Hi <= p.Hi {
			return true
		}
	}
	return false
}

// Gaps returns the maximal sub-intervals of within that the union does
// not cover.
func (u *Union) Gaps(within Interval) []Interval {
	var gaps []Interval
	cur := within
	for _, p := range u.parts {
		if p.Hi < cur.Lo {
			continue
		}
		if p.Lo > cur.Hi {
			break
		}
		if p.Lo > cur.Lo {
			gaps = append(gaps, Interval{Lo: cur.Lo, Hi: p.Lo - 1})
		}
		if p.Hi+1 > cur.Lo {
			cur.Lo = p.Hi + 1
		}
		if cur.IsEmpty() {
			return gaps
		}
	}
	if !cur.IsEmpty() {
		gaps = append(gaps, cur)
	}
	return gaps
}

// Parts returns a copy of the disjoint intervals forming the union.
func (u *Union) Parts() []Interval {
	out := make([]Interval, len(u.parts))
	copy(out, u.parts)
	return out
}
