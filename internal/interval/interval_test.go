package interval

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestBasicPredicates(t *testing.T) {
	tests := []struct {
		name    string
		iv      Interval
		empty   bool
		count   int64
		inside  []int64
		outside []int64
	}{
		{name: "point", iv: Point(5), count: 1, inside: []int64{5}, outside: []int64{4, 6}},
		{name: "range", iv: New(-3, 3), count: 7, inside: []int64{-3, 0, 3}, outside: []int64{-4, 4}},
		{name: "empty", iv: Empty(), empty: true, count: 0, outside: []int64{0, 1}},
		{name: "inverted", iv: New(10, 2), empty: true, count: 0, outside: []int64{2, 5, 10}},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.iv.IsEmpty(); got != tc.empty {
				t.Errorf("IsEmpty() = %v, want %v", got, tc.empty)
			}
			if got := tc.iv.Count(); got != tc.count {
				t.Errorf("Count() = %d, want %d", got, tc.count)
			}
			for _, v := range tc.inside {
				if !tc.iv.Contains(v) {
					t.Errorf("Contains(%d) = false, want true", v)
				}
			}
			for _, v := range tc.outside {
				if tc.iv.Contains(v) {
					t.Errorf("Contains(%d) = true, want false", v)
				}
			}
		})
	}
}

func TestIntersect(t *testing.T) {
	tests := []struct {
		name string
		a, b Interval
		want Interval
	}{
		{name: "overlap", a: New(0, 10), b: New(5, 15), want: New(5, 10)},
		{name: "nested", a: New(0, 10), b: New(3, 4), want: New(3, 4)},
		{name: "touching", a: New(0, 5), b: New(5, 9), want: Point(5)},
		{name: "disjoint", a: New(0, 4), b: New(6, 9), want: Empty()},
		{name: "adjacent integers disjoint", a: New(0, 4), b: New(5, 9), want: Empty()},
		{name: "with empty", a: New(0, 4), b: Empty(), want: Empty()},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.a.Intersect(tc.b); !got.Equal(tc.want) {
				t.Errorf("Intersect = %v, want %v", got, tc.want)
			}
			if got := tc.a.Intersects(tc.b); got != !tc.want.IsEmpty() {
				t.Errorf("Intersects = %v, want %v", got, !tc.want.IsEmpty())
			}
		})
	}
}

func TestContainsInterval(t *testing.T) {
	tests := []struct {
		name string
		a, b Interval
		want bool
	}{
		{name: "proper subset", a: New(0, 10), b: New(2, 8), want: true},
		{name: "equal", a: New(0, 10), b: New(0, 10), want: true},
		{name: "overhang left", a: New(0, 10), b: New(-1, 5), want: false},
		{name: "overhang right", a: New(0, 10), b: New(5, 11), want: false},
		{name: "empty subset of anything", a: New(3, 4), b: Empty(), want: true},
		{name: "empty contains empty", a: Empty(), b: Empty(), want: true},
		{name: "empty contains nothing else", a: Empty(), b: Point(0), want: false},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.a.ContainsInterval(tc.b); got != tc.want {
				t.Errorf("ContainsInterval = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestBelowAbove(t *testing.T) {
	iv := New(10, 20)
	tests := []struct {
		name string
		got  Interval
		want Interval
	}{
		{name: "below mid", got: iv.Below(15), want: New(10, 14)},
		{name: "below low edge", got: iv.Below(10), want: Empty()},
		{name: "below beyond high", got: iv.Below(25), want: New(10, 20)},
		{name: "above mid", got: iv.Above(15), want: New(16, 20)},
		{name: "above high edge", got: iv.Above(20), want: Empty()},
		{name: "above beyond low", got: iv.Above(5), want: New(10, 20)},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if !tc.got.Equal(tc.want) {
				t.Errorf("got %v, want %v", tc.got, tc.want)
			}
		})
	}
}

func TestHull(t *testing.T) {
	if got := New(0, 2).Hull(New(5, 9)); !got.Equal(New(0, 9)) {
		t.Errorf("Hull = %v, want [0,9]", got)
	}
	if got := Empty().Hull(New(5, 9)); !got.Equal(New(5, 9)) {
		t.Errorf("Hull with empty = %v, want [5,9]", got)
	}
}

// genInterval produces a random small interval, empty about 1/5 of the
// time.
func genInterval(r *rand.Rand) Interval {
	lo := r.Int64N(200) - 100
	width := r.Int64N(50) - 10 // negative width => empty
	return Interval{Lo: lo, Hi: lo + width}
}

func TestIntersectionProperties(t *testing.T) {
	cfg := &quick.Config{MaxCount: 2000}
	// Commutativity, idempotence, and point-level agreement.
	f := func(seed1, seed2 uint64) bool {
		r := rand.New(rand.NewPCG(seed1, seed2))
		a, b := genInterval(r), genInterval(r)
		ab, ba := a.Intersect(b), b.Intersect(a)
		if !ab.Equal(ba) {
			return false
		}
		if !a.Intersect(a).Equal(a) && !a.IsEmpty() {
			return false
		}
		// Membership in the intersection == membership in both.
		for v := int64(-120); v <= 120; v += 7 {
			if ab.Contains(v) != (a.Contains(v) && b.Contains(v)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestContainmentTransitive(t *testing.T) {
	cfg := &quick.Config{MaxCount: 2000}
	f := func(seed1, seed2 uint64) bool {
		r := rand.New(rand.NewPCG(seed1, seed2))
		a, b, c := genInterval(r), genInterval(r), genInterval(r)
		if a.ContainsInterval(b) && b.ContainsInterval(c) {
			return a.ContainsInterval(c)
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestBelowAboveDisjointCoverProperty(t *testing.T) {
	// Below(v), {v}, Above(v) partition any interval containing v.
	cfg := &quick.Config{MaxCount: 2000}
	f := func(seed1, seed2 uint64) bool {
		r := rand.New(rand.NewPCG(seed1, seed2))
		iv := genInterval(r)
		if iv.IsEmpty() {
			return true
		}
		v := iv.Lo + r.Int64N(iv.Count())
		below, above := iv.Below(v), iv.Above(v)
		if below.Intersects(above) {
			return false
		}
		return below.Count()+1+above.Count() == iv.Count()
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestUnionAddAndCovers(t *testing.T) {
	var u Union
	u.Add(New(0, 4))
	u.Add(New(10, 14))
	u.Add(New(5, 9)) // bridges the gap (adjacent both sides)
	parts := u.Parts()
	if len(parts) != 1 || !parts[0].Equal(New(0, 14)) {
		t.Fatalf("expected single merged part [0,14], got %v", parts)
	}
	if !u.Covers(New(3, 12)) {
		t.Error("union should cover [3,12]")
	}
	if u.Covers(New(3, 15)) {
		t.Error("union should not cover [3,15]")
	}
}

func TestUnionGaps(t *testing.T) {
	var u Union
	u.Add(New(2, 4))
	u.Add(New(8, 10))
	gaps := u.Gaps(New(0, 12))
	want := []Interval{New(0, 1), New(5, 7), New(11, 12)}
	if len(gaps) != len(want) {
		t.Fatalf("gaps = %v, want %v", gaps, want)
	}
	for i := range want {
		if !gaps[i].Equal(want[i]) {
			t.Errorf("gap %d = %v, want %v", i, gaps[i], want[i])
		}
	}
	if g := u.Gaps(New(2, 4)); len(g) != 0 {
		t.Errorf("expected no gaps inside a covered range, got %v", g)
	}
}

func TestUnionMatchesBruteForce(t *testing.T) {
	cfg := &quick.Config{MaxCount: 500}
	f := func(seed1, seed2 uint64) bool {
		r := rand.New(rand.NewPCG(seed1, seed2))
		var u Union
		covered := make(map[int64]bool)
		for i := 0; i < 8; i++ {
			iv := genInterval(r)
			u.Add(iv)
			for v := iv.Lo; v <= iv.Hi; v++ {
				covered[v] = true
			}
		}
		// Every probe interval must agree with brute-force membership.
		probe := genInterval(r)
		if probe.IsEmpty() {
			return true
		}
		all := true
		for v := probe.Lo; v <= probe.Hi; v++ {
			if !covered[v] {
				all = false
				break
			}
		}
		if u.Covers(probe) != all {
			return false
		}
		// Gaps must be exactly the uncovered points.
		gapPoints := make(map[int64]bool)
		for _, g := range u.Gaps(probe) {
			for v := g.Lo; v <= g.Hi; v++ {
				gapPoints[v] = true
			}
		}
		for v := probe.Lo; v <= probe.Hi; v++ {
			if gapPoints[v] == covered[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestStringRendering(t *testing.T) {
	if got := New(3, 9).String(); got != "[3,9]" {
		t.Errorf("String = %q", got)
	}
	if got := Empty().String(); got != "∅" {
		t.Errorf("empty String = %q", got)
	}
}
