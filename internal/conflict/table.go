// Package conflict implements the conflict table of the paper
// (Definition 2) together with the structural results built on it:
// pairwise cover detection (Corollary 1), reverse cover (Corollary 2),
// the sorted-row polyhedron-witness condition (Corollary 3), and
// conflicting / conflict-free entries (Definition 5, Proposition 3).
//
// A conflict table T relates a tested subscription s to the set
// S = {s1 … sk}: the entry for row i, attribute a, side Low is the
// negated predicate {x_a < lo_i^a}; it is defined iff s ∧ {x_a < lo_i^a}
// is satisfiable, i.e. iff part of s sticks out below si on attribute a.
// Defined entries are exactly the directions in which si fails to cover
// s.
package conflict

import (
	"cmp"
	"fmt"
	"slices"
	"strings"

	"probsum/internal/interval"
	"probsum/internal/subscription"
)

// Side distinguishes the two simple predicates each attribute
// contributes to a subscription: the lower bound x >= lo and the upper
// bound x <= hi. A conflict-table entry negates one of them.
type Side int

// The two predicate sides. SideLow denotes the negated lower bound
// {x < lo}; SideHigh the negated upper bound {x > hi}.
const (
	SideLow  Side = 0
	SideHigh Side = 1
)

// String returns "low" or "high".
func (sd Side) String() string {
	if sd == SideLow {
		return "low"
	}
	return "high"
}

// EntryRef identifies one cell of the conflict table.
type EntryRef struct {
	Row  int
	Attr int
	Side Side
}

// Table is the k x 2m conflict table relating subscription S0 to the
// subscription set Subs. It stores which entries are defined; entry
// bound values are read from the subscriptions themselves.
type Table struct {
	s    subscription.Subscription
	subs []subscription.Subscription
	m    int

	defined []bool // row-major, index row*(2m) + 2*attr + side
	ti      []int  // number of defined entries per row
}

// Build constructs the conflict table for subscription s against the
// set subs in O(m*k). All subscriptions must share s's attribute count;
// violating rows yield an error.
func Build(s subscription.Subscription, subs []subscription.Subscription) (*Table, error) {
	t := new(Table)
	if err := t.Reset(s, subs); err != nil {
		return nil, err
	}
	return t, nil
}

// Reset rebuilds the table in place for s against subs, reusing the
// backing storage of any previous build. It is the allocation-free
// core of Build: a caller that owns a Table and calls Reset per query
// performs zero steady-state allocations once the buffers have grown
// to the workload's high-water mark.
func (t *Table) Reset(s subscription.Subscription, subs []subscription.Subscription) error {
	m := s.Len()
	if m == 0 {
		return fmt.Errorf("conflict: tested subscription has no attributes")
	}
	t.s = s
	t.subs = subs
	t.m = m
	n := len(subs) * 2 * m
	if cap(t.defined) < n {
		t.defined = make([]bool, n)
	} else {
		t.defined = t.defined[:n]
		clear(t.defined)
	}
	if cap(t.ti) < len(subs) {
		t.ti = make([]int, len(subs))
	} else {
		t.ti = t.ti[:len(subs)]
	}
	for i, si := range subs {
		if si.Len() != m {
			return fmt.Errorf("conflict: subscription %d has %d attributes, want %d: %w",
				i, si.Len(), m, subscription.ErrSchemaMismatch)
		}
		base := i * 2 * m
		count := 0
		for a := 0; a < m; a++ {
			sb := s.Bounds[a]
			// {x_a < lo_i} intersects s iff s reaches below lo_i.
			if si.Bounds[a].Lo > sb.Lo {
				t.defined[base+2*a] = true
				count++
			}
			// {x_a > hi_i} intersects s iff s reaches above hi_i.
			if si.Bounds[a].Hi < sb.Hi {
				t.defined[base+2*a+1] = true
				count++
			}
		}
		t.ti[i] = count
	}
	return nil
}

// K returns the number of rows (subscriptions in the set).
func (t *Table) K() int { return len(t.subs) }

// M returns the number of attributes.
func (t *Table) M() int { return t.m }

// Subscription returns the tested subscription s.
func (t *Table) Subscription() subscription.Subscription { return t.s }

// Set returns the subscription set S the table was built against.
// Callers must not mutate the returned slice.
func (t *Table) Set() []subscription.Subscription { return t.subs }

// Defined reports whether the entry for (row, attr, side) is defined.
func (t *Table) Defined(row, attr int, side Side) bool {
	return t.defined[row*2*t.m+2*attr+int(side)]
}

// DefinedRef reports whether the referenced entry is defined.
func (t *Table) DefinedRef(e EntryRef) bool {
	return t.Defined(e.Row, e.Attr, e.Side)
}

// RowCount returns t_i, the number of defined entries in row i.
func (t *Table) RowCount(i int) int { return t.ti[i] }

// Bound returns the bound value of the referenced entry: lo_i^a for the
// low side, hi_i^a for the high side.
func (t *Table) Bound(e EntryRef) int64 {
	b := t.subs[e.Row].Bounds[e.Attr]
	if e.Side == SideLow {
		return b.Lo
	}
	return b.Hi
}

// Region returns the slice of s, along entry e's attribute, that the
// negated predicate selects: s.Bounds[a] ∩ {x < lo} or ∩ {x > hi}.
// For a defined entry the region is non-empty.
func (t *Table) Region(e EntryRef) interval.Interval {
	sb := t.s.Bounds[e.Attr]
	if e.Side == SideLow {
		return sb.Below(t.Bound(e))
	}
	return sb.Above(t.Bound(e))
}

// GapWidth returns the number of integer points of s selected by entry
// e along its attribute — the one-sided uncovered gap used by the
// paper's Algorithm 2 to approximate the smallest polyhedron witness.
func (t *Table) GapWidth(e EntryRef) int64 {
	return t.Region(e).Count()
}

// PairwiseCoverRow implements Corollary 1: if every entry of row i is
// undefined, s is covered by s_i alone. It returns the first such row,
// or -1 when no single subscription covers s.
func (t *Table) PairwiseCoverRow() int {
	for i, n := range t.ti {
		if n == 0 {
			return i
		}
	}
	return -1
}

// RowCoveredByS implements Corollary 2: if every entry of row i is
// defined, s strictly sticks out beyond s_i in every direction, hence s
// covers s_i.
func (t *Table) RowCoveredByS(i int) bool {
	return t.ti[i] == 2*t.m
}

// Conflicting implements Definition 5: two defined entries of different
// rows conflict iff s ∧ e1 ∧ e2 is unsatisfiable. Entries on different
// attributes never conflict (the box product of non-empty slices is
// non-empty); same-side entries never conflict; opposite sides conflict
// iff the two regions of s do not overlap.
func (t *Table) Conflicting(e1, e2 EntryRef) bool {
	if e1.Row == e2.Row {
		return false
	}
	if e1.Attr != e2.Attr || e1.Side == e2.Side {
		return false
	}
	return !t.Region(e1).Intersects(t.Region(e2))
}

// DefinedEntries returns the defined entries of row i in attribute
// order (low before high).
func (t *Table) DefinedEntries(i int) []EntryRef {
	out := make([]EntryRef, 0, t.ti[i])
	for a := 0; a < t.m; a++ {
		if t.Defined(i, a, SideLow) {
			out = append(out, EntryRef{Row: i, Attr: a, Side: SideLow})
		}
		if t.Defined(i, a, SideHigh) {
			out = append(out, EntryRef{Row: i, Attr: a, Side: SideHigh})
		}
	}
	return out
}

// Scratch holds the reusable buffers of the allocation-free table
// algorithm variants (SortedRowConditionScratch, GreedyWitnessScratch)
// and of the MCS reduction's analysis passes. The zero value is ready
// to use; buffers grow to the workload's high-water mark and are
// reused afterwards. A Scratch must not be shared across goroutines.
type Scratch struct {
	counts     []int
	rows       []int
	eliminated []uint64 // bitset indexed like Table.defined
	box        []interval.Interval

	// An is the reusable extrema analysis for MCS passes.
	An Analysis
}

// SortedRowCondition implements the test of Corollary 3 over the rows
// selected by alive (nil means all rows): sort the defined-entry counts
// ascending; if the j-th smallest count is >= j (1-based) for all j, a
// polyhedron witness exists and s is not covered. The function only
// evaluates the condition; use GreedyWitness to materialize and verify
// the witness.
func (t *Table) SortedRowCondition(alive []bool) bool {
	return t.SortedRowConditionScratch(alive, new(Scratch))
}

// SortedRowConditionScratch is SortedRowCondition writing its working
// set into sc instead of allocating.
func (t *Table) SortedRowConditionScratch(alive []bool, sc *Scratch) bool {
	counts := sc.counts[:0]
	for i, n := range t.ti {
		if alive == nil || alive[i] {
			counts = append(counts, n)
		}
	}
	sc.counts = counts
	if len(counts) == 0 {
		return true // vacuously: an empty set cannot cover a non-empty s
	}
	slices.Sort(counts)
	for j, n := range counts {
		if n < j+1 {
			return false
		}
	}
	return true
}

// GreedyWitness attempts to construct a polyhedron witness to non-cover
// (Definition 3) by the elimination argument of Corollary 3: process
// rows in ascending order of defined entries, pick any non-eliminated
// entry, and eliminate the (at most one per row) conflicting entry from
// the remaining rows. The returned box is verified non-empty; ok is
// false when construction fails, which can only happen if the sorted
// row condition does not hold.
func (t *Table) GreedyWitness(alive []bool) (subscription.Subscription, bool) {
	return t.GreedyWitnessScratch(alive, new(Scratch))
}

// GreedyWitnessScratch is GreedyWitness with all intermediate state
// (row ordering, the elimination set as a bitset, the working box) in
// sc. Only a successful construction allocates: the verified witness
// box is cloned out of the scratch so it stays valid across reuse.
func (t *Table) GreedyWitnessScratch(alive []bool, sc *Scratch) (subscription.Subscription, bool) {
	rows := sc.rows[:0]
	for i := range t.ti {
		if alive == nil || alive[i] {
			rows = append(rows, i)
		}
	}
	sc.rows = rows
	slices.SortFunc(rows, func(a, b int) int { return cmp.Compare(t.ti[a], t.ti[b]) })

	// Elimination bitset, one bit per table entry.
	words := (len(t.defined) + 63) / 64
	if cap(sc.eliminated) < words {
		sc.eliminated = make([]uint64, words)
	} else {
		sc.eliminated = sc.eliminated[:words]
		clear(sc.eliminated)
	}
	elim := sc.eliminated
	bit := func(e EntryRef) int { return e.Row*2*t.m + 2*e.Attr + int(e.Side) }

	// Witness box accumulates s ∧ chosen negated predicates.
	if cap(sc.box) < t.m {
		sc.box = make([]interval.Interval, t.m)
	} else {
		sc.box = sc.box[:t.m]
	}
	box := sc.box
	copy(box, t.s.Bounds)

	for _, r := range rows {
		chosen := EntryRef{Row: -1}
	pick:
		for a := 0; a < t.m; a++ {
			for side := SideLow; side <= SideHigh; side++ {
				if !t.Defined(r, a, side) {
					continue
				}
				e := EntryRef{Row: r, Attr: a, Side: side}
				if i := bit(e); elim[i/64]&(1<<(i%64)) != 0 {
					continue
				}
				// The entry must still intersect the current box slice;
				// elimination bookkeeping guarantees this, but verify to
				// keep the path sound regardless of input.
				if !t.Region(e).Intersects(box[a]) {
					continue
				}
				chosen = e
				break pick
			}
		}
		if chosen.Row == -1 {
			return subscription.Subscription{}, false
		}
		// Narrow the box by the chosen negated predicate.
		if chosen.Side == SideLow {
			box[chosen.Attr] = box[chosen.Attr].Below(t.Bound(chosen))
		} else {
			box[chosen.Attr] = box[chosen.Attr].Above(t.Bound(chosen))
		}
		// Eliminate conflicting entries from all other rows: only the
		// opposite side of the same attribute can conflict.
		opp := SideHigh
		if chosen.Side == SideHigh {
			opp = SideLow
		}
		for _, r2 := range rows {
			if r2 == r {
				continue
			}
			e2 := EntryRef{Row: r2, Attr: chosen.Attr, Side: opp}
			if t.DefinedRef(e2) && t.Conflicting(chosen, e2) {
				i := bit(e2)
				elim[i/64] |= 1 << (i % 64)
			}
		}
	}
	for _, b := range box {
		if b.IsEmpty() {
			return subscription.Subscription{}, false
		}
	}
	return subscription.New(box...), true
}

// String renders the table in the layout of the paper's Table 5: one
// row per subscription, one column pair per attribute, "undef" for
// undefined entries and the negated predicate otherwise.
func (t *Table) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "s = %s\n", t.s)
	for i := range t.subs {
		fmt.Fprintf(&sb, "s%-3d", i+1)
		for a := 0; a < t.m; a++ {
			if t.Defined(i, a, SideLow) {
				fmt.Fprintf(&sb, " | x%d<%d", a+1, t.subs[i].Bounds[a].Lo)
			} else {
				fmt.Fprintf(&sb, " | undef")
			}
			if t.Defined(i, a, SideHigh) {
				fmt.Fprintf(&sb, " | x%d>%d", a+1, t.subs[i].Bounds[a].Hi)
			} else {
				fmt.Fprintf(&sb, " | undef")
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
