// Package conflict implements the conflict table of the paper
// (Definition 2) together with the structural results built on it:
// pairwise cover detection (Corollary 1), reverse cover (Corollary 2),
// the sorted-row polyhedron-witness condition (Corollary 3), and
// conflicting / conflict-free entries (Definition 5, Proposition 3).
//
// A conflict table T relates a tested subscription s to the set
// S = {s1 … sk}: the entry for row i, attribute a, side Low is the
// negated predicate {x_a < lo_i^a}; it is defined iff s ∧ {x_a < lo_i^a}
// is satisfiable, i.e. iff part of s sticks out below si on attribute a.
// Defined entries are exactly the directions in which si fails to cover
// s.
package conflict

import (
	"fmt"
	"sort"
	"strings"

	"probsum/internal/interval"
	"probsum/internal/subscription"
)

// Side distinguishes the two simple predicates each attribute
// contributes to a subscription: the lower bound x >= lo and the upper
// bound x <= hi. A conflict-table entry negates one of them.
type Side int

// The two predicate sides. SideLow denotes the negated lower bound
// {x < lo}; SideHigh the negated upper bound {x > hi}.
const (
	SideLow  Side = 0
	SideHigh Side = 1
)

// String returns "low" or "high".
func (sd Side) String() string {
	if sd == SideLow {
		return "low"
	}
	return "high"
}

// EntryRef identifies one cell of the conflict table.
type EntryRef struct {
	Row  int
	Attr int
	Side Side
}

// Table is the k x 2m conflict table relating subscription S0 to the
// subscription set Subs. It stores which entries are defined; entry
// bound values are read from the subscriptions themselves.
type Table struct {
	s    subscription.Subscription
	subs []subscription.Subscription
	m    int

	defined []bool // row-major, index row*(2m) + 2*attr + side
	ti      []int  // number of defined entries per row
}

// Build constructs the conflict table for subscription s against the
// set subs in O(m*k). All subscriptions must share s's attribute count;
// violating rows yield an error.
func Build(s subscription.Subscription, subs []subscription.Subscription) (*Table, error) {
	m := s.Len()
	if m == 0 {
		return nil, fmt.Errorf("conflict: tested subscription has no attributes")
	}
	t := &Table{
		s:       s,
		subs:    subs,
		m:       m,
		defined: make([]bool, len(subs)*2*m),
		ti:      make([]int, len(subs)),
	}
	for i, si := range subs {
		if si.Len() != m {
			return nil, fmt.Errorf("conflict: subscription %d has %d attributes, want %d: %w",
				i, si.Len(), m, subscription.ErrSchemaMismatch)
		}
		base := i * 2 * m
		count := 0
		for a := 0; a < m; a++ {
			sb := s.Bounds[a]
			// {x_a < lo_i} intersects s iff s reaches below lo_i.
			if si.Bounds[a].Lo > sb.Lo {
				t.defined[base+2*a] = true
				count++
			}
			// {x_a > hi_i} intersects s iff s reaches above hi_i.
			if si.Bounds[a].Hi < sb.Hi {
				t.defined[base+2*a+1] = true
				count++
			}
		}
		t.ti[i] = count
	}
	return t, nil
}

// K returns the number of rows (subscriptions in the set).
func (t *Table) K() int { return len(t.subs) }

// M returns the number of attributes.
func (t *Table) M() int { return t.m }

// Subscription returns the tested subscription s.
func (t *Table) Subscription() subscription.Subscription { return t.s }

// Set returns the subscription set S the table was built against.
// Callers must not mutate the returned slice.
func (t *Table) Set() []subscription.Subscription { return t.subs }

// Defined reports whether the entry for (row, attr, side) is defined.
func (t *Table) Defined(row, attr int, side Side) bool {
	return t.defined[row*2*t.m+2*attr+int(side)]
}

// DefinedRef reports whether the referenced entry is defined.
func (t *Table) DefinedRef(e EntryRef) bool {
	return t.Defined(e.Row, e.Attr, e.Side)
}

// RowCount returns t_i, the number of defined entries in row i.
func (t *Table) RowCount(i int) int { return t.ti[i] }

// Bound returns the bound value of the referenced entry: lo_i^a for the
// low side, hi_i^a for the high side.
func (t *Table) Bound(e EntryRef) int64 {
	b := t.subs[e.Row].Bounds[e.Attr]
	if e.Side == SideLow {
		return b.Lo
	}
	return b.Hi
}

// Region returns the slice of s, along entry e's attribute, that the
// negated predicate selects: s.Bounds[a] ∩ {x < lo} or ∩ {x > hi}.
// For a defined entry the region is non-empty.
func (t *Table) Region(e EntryRef) interval.Interval {
	sb := t.s.Bounds[e.Attr]
	if e.Side == SideLow {
		return sb.Below(t.Bound(e))
	}
	return sb.Above(t.Bound(e))
}

// GapWidth returns the number of integer points of s selected by entry
// e along its attribute — the one-sided uncovered gap used by the
// paper's Algorithm 2 to approximate the smallest polyhedron witness.
func (t *Table) GapWidth(e EntryRef) int64 {
	return t.Region(e).Count()
}

// PairwiseCoverRow implements Corollary 1: if every entry of row i is
// undefined, s is covered by s_i alone. It returns the first such row,
// or -1 when no single subscription covers s.
func (t *Table) PairwiseCoverRow() int {
	for i, n := range t.ti {
		if n == 0 {
			return i
		}
	}
	return -1
}

// RowCoveredByS implements Corollary 2: if every entry of row i is
// defined, s strictly sticks out beyond s_i in every direction, hence s
// covers s_i.
func (t *Table) RowCoveredByS(i int) bool {
	return t.ti[i] == 2*t.m
}

// Conflicting implements Definition 5: two defined entries of different
// rows conflict iff s ∧ e1 ∧ e2 is unsatisfiable. Entries on different
// attributes never conflict (the box product of non-empty slices is
// non-empty); same-side entries never conflict; opposite sides conflict
// iff the two regions of s do not overlap.
func (t *Table) Conflicting(e1, e2 EntryRef) bool {
	if e1.Row == e2.Row {
		return false
	}
	if e1.Attr != e2.Attr || e1.Side == e2.Side {
		return false
	}
	return !t.Region(e1).Intersects(t.Region(e2))
}

// DefinedEntries returns the defined entries of row i in attribute
// order (low before high).
func (t *Table) DefinedEntries(i int) []EntryRef {
	out := make([]EntryRef, 0, t.ti[i])
	for a := 0; a < t.m; a++ {
		if t.Defined(i, a, SideLow) {
			out = append(out, EntryRef{Row: i, Attr: a, Side: SideLow})
		}
		if t.Defined(i, a, SideHigh) {
			out = append(out, EntryRef{Row: i, Attr: a, Side: SideHigh})
		}
	}
	return out
}

// SortedRowCondition implements the test of Corollary 3 over the rows
// selected by alive (nil means all rows): sort the defined-entry counts
// ascending; if the j-th smallest count is >= j (1-based) for all j, a
// polyhedron witness exists and s is not covered. The function only
// evaluates the condition; use GreedyWitness to materialize and verify
// the witness.
func (t *Table) SortedRowCondition(alive []bool) bool {
	counts := make([]int, 0, len(t.ti))
	for i, n := range t.ti {
		if alive == nil || alive[i] {
			counts = append(counts, n)
		}
	}
	if len(counts) == 0 {
		return true // vacuously: an empty set cannot cover a non-empty s
	}
	sort.Ints(counts)
	for j, n := range counts {
		if n < j+1 {
			return false
		}
	}
	return true
}

// GreedyWitness attempts to construct a polyhedron witness to non-cover
// (Definition 3) by the elimination argument of Corollary 3: process
// rows in ascending order of defined entries, pick any non-eliminated
// entry, and eliminate the (at most one per row) conflicting entry from
// the remaining rows. The returned box is verified non-empty; ok is
// false when construction fails, which can only happen if the sorted
// row condition does not hold.
func (t *Table) GreedyWitness(alive []bool) (subscription.Subscription, bool) {
	rows := make([]int, 0, len(t.ti))
	for i := range t.ti {
		if alive == nil || alive[i] {
			rows = append(rows, i)
		}
	}
	sort.Slice(rows, func(a, b int) bool { return t.ti[rows[a]] < t.ti[rows[b]] })

	// Witness box accumulates s ∧ chosen negated predicates.
	box := t.s.Clone()
	eliminated := make(map[EntryRef]bool)
	for _, r := range rows {
		chosen := EntryRef{Row: -1}
		for _, e := range t.DefinedEntries(r) {
			if eliminated[e] {
				continue
			}
			// The entry must still intersect the current box slice;
			// elimination bookkeeping guarantees this, but verify to
			// keep the path sound regardless of input.
			if !t.Region(e).Intersects(box.Bounds[e.Attr]) {
				continue
			}
			chosen = e
			break
		}
		if chosen.Row == -1 {
			return subscription.Subscription{}, false
		}
		// Narrow the box by the chosen negated predicate.
		if chosen.Side == SideLow {
			box.Bounds[chosen.Attr] = box.Bounds[chosen.Attr].Below(t.Bound(chosen))
		} else {
			box.Bounds[chosen.Attr] = box.Bounds[chosen.Attr].Above(t.Bound(chosen))
		}
		// Eliminate conflicting entries from all other rows: only the
		// opposite side of the same attribute can conflict.
		opp := SideHigh
		if chosen.Side == SideHigh {
			opp = SideLow
		}
		for _, r2 := range rows {
			if r2 == r {
				continue
			}
			e2 := EntryRef{Row: r2, Attr: chosen.Attr, Side: opp}
			if t.DefinedRef(e2) && t.Conflicting(chosen, e2) {
				eliminated[e2] = true
			}
		}
	}
	if !box.IsSatisfiable() {
		return subscription.Subscription{}, false
	}
	return box, true
}

// String renders the table in the layout of the paper's Table 5: one
// row per subscription, one column pair per attribute, "undef" for
// undefined entries and the negated predicate otherwise.
func (t *Table) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "s = %s\n", t.s)
	for i := range t.subs {
		fmt.Fprintf(&sb, "s%-3d", i+1)
		for a := 0; a < t.m; a++ {
			if t.Defined(i, a, SideLow) {
				fmt.Fprintf(&sb, " | x%d<%d", a+1, t.subs[i].Bounds[a].Lo)
			} else {
				fmt.Fprintf(&sb, " | undef")
			}
			if t.Defined(i, a, SideHigh) {
				fmt.Fprintf(&sb, " | x%d>%d", a+1, t.subs[i].Bounds[a].Hi)
			} else {
				fmt.Fprintf(&sb, " | undef")
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
