package conflict

import (
	"math/rand/v2"
	"strings"
	"testing"
	"testing/quick"

	"probsum/internal/interval"
	"probsum/internal/subscription"
)

// Fixtures from the paper, Section 3 and 4.2.

// paperCoverExample returns s, s1, s2 from Table 3: s ⊑ (s1 ∨ s2).
func paperCoverExample() (subscription.Subscription, []subscription.Subscription) {
	s := subscription.New(interval.New(830, 870), interval.New(1003, 1006))
	s1 := subscription.New(interval.New(820, 850), interval.New(1001, 1007))
	s2 := subscription.New(interval.New(840, 880), interval.New(1002, 1009))
	return s, []subscription.Subscription{s1, s2}
}

// paperNonCoverExample returns s, s1, s2 from Table 6: s ⋢ (s1 ∨ s2),
// with polyhedron witness [871,890] x [1003,1006].
func paperNonCoverExample() (subscription.Subscription, []subscription.Subscription) {
	s := subscription.New(interval.New(830, 890), interval.New(1003, 1006))
	s1 := subscription.New(interval.New(820, 850), interval.New(1002, 1009))
	s2 := subscription.New(interval.New(840, 870), interval.New(1001, 1007))
	return s, []subscription.Subscription{s1, s2}
}

// paperConflictFreeExample returns s, s1, s2, s3 from Table 7 (with the
// s3 bounds as intended by Figure 4/Table 8; see DESIGN.md).
func paperConflictFreeExample() (subscription.Subscription, []subscription.Subscription) {
	s := subscription.New(interval.New(830, 870), interval.New(1003, 1006))
	s1 := subscription.New(interval.New(820, 850), interval.New(1001, 1007))
	s2 := subscription.New(interval.New(840, 880), interval.New(1002, 1009))
	s3 := subscription.New(interval.New(810, 890), interval.New(1004, 1005))
	return s, []subscription.Subscription{s1, s2, s3}
}

func TestPaperTable5(t *testing.T) {
	// The conflict table for Table 3 must reproduce Table 5 exactly:
	// row s1 defines only {x1 > 850}, row s2 only {x1 < 840}.
	s, set := paperCoverExample()
	tbl, err := Build(s, set)
	if err != nil {
		t.Fatal(err)
	}
	type cell struct {
		row  int
		attr int
		side Side
	}
	defined := map[cell]bool{
		{0, 0, SideHigh}: true,
		{1, 0, SideLow}:  true,
	}
	for row := 0; row < 2; row++ {
		for attr := 0; attr < 2; attr++ {
			for _, side := range []Side{SideLow, SideHigh} {
				want := defined[cell{row, attr, side}]
				if got := tbl.Defined(row, attr, side); got != want {
					t.Errorf("Defined(s%d, x%d, %v) = %v, want %v", row+1, attr+1, side, got, want)
				}
			}
		}
	}
	if tbl.RowCount(0) != 1 || tbl.RowCount(1) != 1 {
		t.Errorf("row counts = %d, %d, want 1, 1", tbl.RowCount(0), tbl.RowCount(1))
	}
	if got := tbl.Bound(EntryRef{Row: 0, Attr: 0, Side: SideHigh}); got != 850 {
		t.Errorf("bound = %d, want 850", got)
	}
	if got := tbl.Region(EntryRef{Row: 0, Attr: 0, Side: SideHigh}); !got.Equal(interval.New(851, 870)) {
		t.Errorf("region = %v, want [851,870]", got)
	}
	// s is covered, so the sorted-row condition must fail (t = [1,1]
	// cannot dominate [1,2]).
	if tbl.SortedRowCondition(nil) {
		t.Error("sorted-row condition should not hold for a covered subscription")
	}
	if _, ok := tbl.GreedyWitness(nil); ok {
		t.Error("greedy witness must not be constructible when s is covered")
	}
}

func TestPaperTable6Witness(t *testing.T) {
	s, set := paperNonCoverExample()
	tbl, err := Build(s, set)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.RowCount(0) != 1 || tbl.RowCount(1) != 2 {
		t.Fatalf("row counts = %d, %d, want 1, 2", tbl.RowCount(0), tbl.RowCount(1))
	}
	if !tbl.SortedRowCondition(nil) {
		t.Fatal("sorted-row condition should hold (t sorted = [1,2])")
	}
	witness, ok := tbl.GreedyWitness(nil)
	if !ok {
		t.Fatal("greedy witness construction failed")
	}
	if !witness.IsSatisfiable() {
		t.Fatal("witness must be non-empty")
	}
	if !s.Covers(witness) {
		t.Errorf("witness %v must be inside s %v", witness, s)
	}
	for i, si := range set {
		if witness.Intersects(si) {
			t.Errorf("witness %v intersects s%d %v", witness, i+1, si)
		}
	}
	// The paper's witness is exactly [871,890] x [1003,1006].
	want := subscription.New(interval.New(871, 890), interval.New(1003, 1006))
	if !witness.Equal(want) {
		t.Errorf("witness = %v, want %v", witness, want)
	}
}

func TestPaperTable8ConflictFree(t *testing.T) {
	s, set := paperConflictFreeExample()
	tbl, err := Build(s, set)
	if err != nil {
		t.Fatal(err)
	}
	// Table 8 layout: s1 defines {x1>850}, s2 defines {x1<840},
	// s3 defines {x2<1004} and {x2>1005}.
	if tbl.RowCount(0) != 1 || tbl.RowCount(1) != 1 || tbl.RowCount(2) != 2 {
		t.Fatalf("row counts = %d,%d,%d want 1,1,2",
			tbl.RowCount(0), tbl.RowCount(1), tbl.RowCount(2))
	}
	if !tbl.Defined(2, 1, SideLow) || !tbl.Defined(2, 1, SideHigh) {
		t.Fatal("s3 must define both x2 entries")
	}

	an := NewAnalysis(tbl, nil)
	// s3's entries are conflict-free; s1/s2's x1 entries conflict with
	// each other ({x1>850} vs {x1<840} share no point of s).
	if got := an.RowConflictFreeCount(2); got != 2 {
		t.Errorf("fc(s3) = %d, want 2", got)
	}
	if got := an.RowConflictFreeCount(0); got != 0 {
		t.Errorf("fc(s1) = %d, want 0", got)
	}
	if got := an.RowConflictFreeCount(1); got != 0 {
		t.Errorf("fc(s2) = %d, want 0", got)
	}
	e1 := EntryRef{Row: 0, Attr: 0, Side: SideHigh}
	e2 := EntryRef{Row: 1, Attr: 0, Side: SideLow}
	if !tbl.Conflicting(e1, e2) || !tbl.Conflicting(e2, e1) {
		t.Error("s1/s2 x1 entries must conflict symmetrically")
	}
}

func TestCorollary1PairwiseCover(t *testing.T) {
	s := subscription.New(interval.New(10, 20), interval.New(10, 20))
	big := subscription.New(interval.New(0, 100), interval.New(0, 100))
	partial := subscription.New(interval.New(15, 100), interval.New(0, 100))
	tbl, err := Build(s, []subscription.Subscription{partial, big})
	if err != nil {
		t.Fatal(err)
	}
	if got := tbl.PairwiseCoverRow(); got != 1 {
		t.Errorf("PairwiseCoverRow = %d, want 1", got)
	}
	tbl2, err := Build(s, []subscription.Subscription{partial})
	if err != nil {
		t.Fatal(err)
	}
	if got := tbl2.PairwiseCoverRow(); got != -1 {
		t.Errorf("PairwiseCoverRow = %d, want -1", got)
	}
}

func TestCorollary2RowCoveredByS(t *testing.T) {
	s := subscription.New(interval.New(0, 100), interval.New(0, 100))
	inner := subscription.New(interval.New(10, 20), interval.New(10, 20))
	touching := subscription.New(interval.New(0, 20), interval.New(10, 20))
	tbl, err := Build(s, []subscription.Subscription{inner, touching})
	if err != nil {
		t.Fatal(err)
	}
	if !tbl.RowCoveredByS(0) {
		t.Error("strictly interior subscription must have all entries defined")
	}
	if tbl.RowCoveredByS(1) {
		t.Error("touching subscription must have an undefined entry")
	}
}

func TestBuildErrors(t *testing.T) {
	s := subscription.New(interval.New(0, 10))
	bad := subscription.New(interval.New(0, 10), interval.New(0, 10))
	if _, err := Build(s, []subscription.Subscription{bad}); err == nil {
		t.Error("expected arity mismatch error")
	}
	if _, err := Build(subscription.Subscription{}, nil); err == nil {
		t.Error("expected error for zero-attribute subscription")
	}
}

func TestStringRendering(t *testing.T) {
	s, set := paperCoverExample()
	tbl, err := Build(s, set)
	if err != nil {
		t.Fatal(err)
	}
	out := tbl.String()
	for _, want := range []string{"x1>850", "x1<840", "undef"} {
		if !strings.Contains(out, want) {
			t.Errorf("String() missing %q:\n%s", want, out)
		}
	}
}

// genInstance builds a random subsumption instance over small domains.
func genInstance(r *rand.Rand, m, k int, domain int64) (subscription.Subscription, []subscription.Subscription) {
	box := func() subscription.Subscription {
		bounds := make([]interval.Interval, m)
		for a := range bounds {
			lo := r.Int64N(domain)
			bounds[a] = interval.New(lo, lo+r.Int64N(domain-lo))
		}
		return subscription.Subscription{Bounds: bounds}
	}
	s := box()
	set := make([]subscription.Subscription, k)
	for i := range set {
		set[i] = box()
	}
	return s, set
}

func TestDefinedMatchesSatisfiabilityDefinition(t *testing.T) {
	// Definition 2: entry defined iff s ∧ ¬predicate is satisfiable,
	// which equals the entry's region being non-empty.
	cfg := &quick.Config{MaxCount: 400}
	f := func(seed1, seed2 uint64) bool {
		r := rand.New(rand.NewPCG(seed1, seed2))
		s, set := genInstance(r, 1+r.IntN(4), 1+r.IntN(6), 30)
		tbl, err := Build(s, set)
		if err != nil {
			return false
		}
		for i := range set {
			for a := 0; a < tbl.M(); a++ {
				for _, side := range []Side{SideLow, SideHigh} {
					e := EntryRef{Row: i, Attr: a, Side: side}
					region := tbl.Region(e)
					if tbl.Defined(i, a, side) != !region.IsEmpty() {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestConflictingMatchesDefinition(t *testing.T) {
	// Definition 5: entries conflict iff s ∧ e1 ∧ e2 is unsatisfiable.
	// Verify against direct box construction.
	cfg := &quick.Config{MaxCount: 300}
	f := func(seed1, seed2 uint64) bool {
		r := rand.New(rand.NewPCG(seed1, seed2))
		s, set := genInstance(r, 1+r.IntN(3), 2+r.IntN(4), 25)
		tbl, err := Build(s, set)
		if err != nil {
			return false
		}
		var entries []EntryRef
		for i := range set {
			entries = append(entries, tbl.DefinedEntries(i)...)
		}
		for _, e1 := range entries {
			for _, e2 := range entries {
				if e1.Row == e2.Row {
					continue
				}
				// Build s ∧ e1 ∧ e2 directly.
				box := s.Clone()
				for _, e := range []EntryRef{e1, e2} {
					if e.Side == SideLow {
						box.Bounds[e.Attr] = box.Bounds[e.Attr].Below(tbl.Bound(e))
					} else {
						box.Bounds[e.Attr] = box.Bounds[e.Attr].Above(tbl.Bound(e))
					}
				}
				if tbl.Conflicting(e1, e2) == box.IsSatisfiable() {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestAnalysisMatchesNaive(t *testing.T) {
	cfg := &quick.Config{MaxCount: 300}
	f := func(seed1, seed2 uint64) bool {
		r := rand.New(rand.NewPCG(seed1, seed2))
		s, set := genInstance(r, 1+r.IntN(4), 2+r.IntN(8), 40)
		tbl, err := Build(s, set)
		if err != nil {
			return false
		}
		// Random alive mask, biased towards alive.
		alive := make([]bool, len(set))
		for i := range alive {
			alive[i] = r.IntN(4) != 0
		}
		an := NewAnalysis(tbl, alive)
		for i := range set {
			if !alive[i] {
				continue
			}
			fast := an.RowConflictFreeCount(i)
			slow := tbl.RowConflictFreeCountNaive(i, alive)
			if fast != slow {
				t.Logf("row %d: fast=%d naive=%d", i, fast, slow)
				return false
			}
			if an.RowHasConflictFree(i) != (slow >= 1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestGreedyWitnessSoundness(t *testing.T) {
	// Whenever GreedyWitness returns ok, the box must be a genuine
	// polyhedron witness: inside s, disjoint from every set member.
	cfg := &quick.Config{MaxCount: 500}
	f := func(seed1, seed2 uint64) bool {
		r := rand.New(rand.NewPCG(seed1, seed2))
		s, set := genInstance(r, 1+r.IntN(4), 1+r.IntN(8), 30)
		tbl, err := Build(s, set)
		if err != nil {
			return false
		}
		witness, ok := tbl.GreedyWitness(nil)
		if !ok {
			return true
		}
		if !witness.IsSatisfiable() || !s.Covers(witness) {
			return false
		}
		for _, si := range set {
			if witness.Intersects(si) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestSortedRowConditionImpliesWitness(t *testing.T) {
	// Corollary 3: when the sorted-row condition holds, the greedy
	// construction must succeed.
	cfg := &quick.Config{MaxCount: 500}
	f := func(seed1, seed2 uint64) bool {
		r := rand.New(rand.NewPCG(seed1, seed2))
		s, set := genInstance(r, 1+r.IntN(4), 1+r.IntN(8), 30)
		tbl, err := Build(s, set)
		if err != nil {
			return false
		}
		if !tbl.SortedRowCondition(nil) {
			return true
		}
		_, ok := tbl.GreedyWitness(nil)
		return ok
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
