package conflict

// This file implements conflict-free entry detection (Definition 5,
// Proposition 3). The naive test compares every pair of defined entries
// and costs O(m^2 k^2) per table; the Analysis type exploits the
// geometry of range predicates to answer "does this entry conflict with
// anything" in O(1):
//
// Entries conflict only when they are opposite bounds of the same
// attribute whose selected slices of s do not overlap. For a low entry
// {x_a < u} the most conflicting counterpart is the defined high entry
// with the LARGEST bound v (conflict is monotone in v), and vice versa
// for high entries, so per attribute it suffices to track the top-2
// high bounds and bottom-2 low bounds over the alive rows (top-2 so the
// entry's own row can be excluded).

// boundAt pairs a bound value with the row that contributed it.
type boundAt struct {
	value int64
	row   int
}

// Analysis holds per-attribute extrema of defined entry bounds over a
// subset of rows, enabling O(1) conflict-freeness tests.
type Analysis struct {
	t *Table
	// maxHigh[a][0] is the largest defined high-entry bound on
	// attribute a, maxHigh[a][1] the second largest; row -1 marks
	// absence. minLow mirrors this with the smallest low-entry bounds.
	maxHigh [][2]boundAt
	minLow  [][2]boundAt
}

// NewAnalysis scans the alive rows (nil means all) and records the
// per-attribute extrema in O(m*k).
func NewAnalysis(t *Table, alive []bool) *Analysis {
	an := new(Analysis)
	an.Reset(t, alive)
	return an
}

// Reset re-runs the extrema scan in place, reusing the analysis's
// backing storage; NewAnalysis is Reset on a fresh Analysis. The MCS
// fixpoint loop calls this once per pass without allocating.
func (an *Analysis) Reset(t *Table, alive []bool) {
	an.t = t
	if cap(an.maxHigh) < t.m || cap(an.minLow) < t.m {
		an.maxHigh = make([][2]boundAt, t.m)
		an.minLow = make([][2]boundAt, t.m)
	} else {
		an.maxHigh = an.maxHigh[:t.m]
		an.minLow = an.minLow[:t.m]
	}
	for a := 0; a < t.m; a++ {
		an.maxHigh[a] = [2]boundAt{{row: -1}, {row: -1}}
		an.minLow[a] = [2]boundAt{{row: -1}, {row: -1}}
	}
	for i := range t.subs {
		if alive != nil && !alive[i] {
			continue
		}
		for a := 0; a < t.m; a++ {
			if t.Defined(i, a, SideLow) {
				v := t.subs[i].Bounds[a].Lo
				e := &an.minLow[a]
				switch {
				case e[0].row == -1 || v < e[0].value:
					e[1] = e[0]
					e[0] = boundAt{value: v, row: i}
				case e[1].row == -1 || v < e[1].value:
					e[1] = boundAt{value: v, row: i}
				}
			}
			if t.Defined(i, a, SideHigh) {
				v := t.subs[i].Bounds[a].Hi
				e := &an.maxHigh[a]
				switch {
				case e[0].row == -1 || v > e[0].value:
					e[1] = e[0]
					e[0] = boundAt{value: v, row: i}
				case e[1].row == -1 || v > e[1].value:
					e[1] = boundAt{value: v, row: i}
				}
			}
		}
	}
}

// conflictLowHigh reports whether a low entry with bound u and a high
// entry with bound v on attribute a conflict: the slices
// s ∩ {x_a < u} and s ∩ {x_a > v} share no integer point.
func (an *Analysis) conflictLowHigh(a int, u, v int64) bool {
	sb := an.t.s.Bounds[a]
	return !sb.Below(u).Intersects(sb.Above(v))
}

// EntryConflictFree reports whether the defined entry e conflicts with
// no defined entry of any other alive row, in O(1).
func (an *Analysis) EntryConflictFree(e EntryRef) bool {
	if e.Side == SideLow {
		u := an.t.Bound(e)
		peak := an.maxHigh[e.Attr][0]
		if peak.row == e.Row {
			peak = an.maxHigh[e.Attr][1]
		}
		if peak.row == -1 {
			return true
		}
		return !an.conflictLowHigh(e.Attr, u, peak.value)
	}
	v := an.t.Bound(e)
	trough := an.minLow[e.Attr][0]
	if trough.row == e.Row {
		trough = an.minLow[e.Attr][1]
	}
	if trough.row == -1 {
		return true
	}
	return !an.conflictLowHigh(e.Attr, trough.value, v)
}

// RowConflictFreeCount returns fc_i, the number of conflict-free
// defined entries in row i, in O(m).
func (an *Analysis) RowConflictFreeCount(i int) int {
	count := 0
	for a := 0; a < an.t.m; a++ {
		if an.t.Defined(i, a, SideLow) && an.EntryConflictFree(EntryRef{Row: i, Attr: a, Side: SideLow}) {
			count++
		}
		if an.t.Defined(i, a, SideHigh) && an.EntryConflictFree(EntryRef{Row: i, Attr: a, Side: SideHigh}) {
			count++
		}
	}
	return count
}

// RowHasConflictFree reports whether fc_i >= 1, short-circuiting at the
// first conflict-free entry.
func (an *Analysis) RowHasConflictFree(i int) bool {
	for a := 0; a < an.t.m; a++ {
		if an.t.Defined(i, a, SideLow) && an.EntryConflictFree(EntryRef{Row: i, Attr: a, Side: SideLow}) {
			return true
		}
		if an.t.Defined(i, a, SideHigh) && an.EntryConflictFree(EntryRef{Row: i, Attr: a, Side: SideHigh}) {
			return true
		}
	}
	return false
}

// RowConflictFreeCountNaive computes fc_i by comparing entry pairs
// directly, in O(m^2 k). It exists as a cross-check oracle for tests.
func (t *Table) RowConflictFreeCountNaive(i int, alive []bool) int {
	count := 0
	for _, e := range t.DefinedEntries(i) {
		free := true
	scan:
		for j := range t.subs {
			if j == i || (alive != nil && !alive[j]) {
				continue
			}
			for _, e2 := range t.DefinedEntries(j) {
				if t.Conflicting(e, e2) {
					free = false
					break scan
				}
			}
		}
		if free {
			count++
		}
	}
	return count
}
