package obs

// Per-link frame accounting. A LinkStats is owned by one transport
// link (e.g. a tcpPort) and counts frames sent/received by wire kind.
// Counting is a single atomic add into a fixed array indexed by the
// kind's integer value — zero allocations on the frame path. The
// array is sized with headroom over the current MsgKind range so new
// kinds don't need an obs change; out-of-range kinds clamp into the
// last slot rather than panicking.

import "sync/atomic"

// linkKindSlots bounds the per-kind arrays. MsgKind currently tops
// out at 15 (MsgRouteAnnounce); 24 leaves room to grow.
const linkKindSlots = 24

// LinkStats counts frames by wire kind for one link.
type LinkStats struct {
	sent [linkKindSlots]atomic.Uint64
	recv [linkKindSlots]atomic.Uint64
}

func clampKind(kind int) int {
	if kind < 0 || kind >= linkKindSlots {
		return linkKindSlots - 1
	}
	return kind
}

// Sent records one outbound frame of the given kind.
func (l *LinkStats) Sent(kind int) { l.sent[clampKind(kind)].Add(1) }

// Recv records one inbound frame of the given kind.
func (l *LinkStats) Recv(kind int) { l.recv[clampKind(kind)].Add(1) }

// LinkSnapshot is a point-in-time copy of one link's counters.
type LinkSnapshot struct {
	Sent [linkKindSlots]uint64
	Recv [linkKindSlots]uint64
}

// Snapshot copies the current counts.
func (l *LinkStats) Snapshot() LinkSnapshot {
	var s LinkSnapshot
	for i := range l.sent {
		s.Sent[i] = l.sent[i].Load()
		s.Recv[i] = l.recv[i].Load()
	}
	return s
}
