package obs

// Exposition: Prometheus text format and JSON, plus an http.Handler
// serving /metrics (text), /metrics.json, and /flight. Hand-rolled on
// the stdlib — the whole point of internal/obs is zero dependencies.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// namePrefix is prepended to every exported series.
const namePrefix = "probsum_"

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return s
}

func (s regSnapshot) kind(i int) string {
	if s.kindName != nil {
		return s.kindName(i)
	}
	return "kind_" + strconv.Itoa(i)
}

// WritePrometheus renders every registered series in the Prometheus
// text exposition format.
func (r *Registry) WritePrometheus(w io.Writer) error {
	s := r.snapshot()
	var b strings.Builder

	for _, n := range s.counterNames {
		fmt.Fprintf(&b, "# TYPE %s%s counter\n%s%s %d\n", namePrefix, n, namePrefix, n, s.counters[n]())
	}
	for _, n := range s.gaugeNames {
		fmt.Fprintf(&b, "# TYPE %s%s gauge\n%s%s %d\n", namePrefix, n, namePrefix, n, s.gauges[n]())
	}
	for _, n := range s.vecNames {
		fmt.Fprintf(&b, "# TYPE %s%s gauge\n", namePrefix, n)
		// Collect then sort so scrapes are deterministic.
		type lv struct {
			label string
			v     int64
		}
		var rows []lv
		s.vecs[n](func(label string, v int64) { rows = append(rows, lv{label, v}) })
		sort.Slice(rows, func(i, j int) bool { return rows[i].label < rows[j].label })
		for _, row := range rows {
			fmt.Fprintf(&b, "%s%s{id=%q} %d\n", namePrefix, n, escapeLabel(row.label), row.v)
		}
	}
	for _, n := range s.histNames {
		h := s.hists[n]
		fmt.Fprintf(&b, "# TYPE %s%s histogram\n", namePrefix, n)
		cum := uint64(0)
		for i, c := range h.Buckets {
			cum += c
			if c == 0 {
				continue
			}
			fmt.Fprintf(&b, "%s%s_bucket{le=\"%d\"} %d\n", namePrefix, n, BucketUpperNs(i), cum)
		}
		fmt.Fprintf(&b, "%s%s_bucket{le=\"+Inf\"} %d\n", namePrefix, n, h.Count)
		fmt.Fprintf(&b, "%s%s_sum %d\n", namePrefix, n, h.SumNs)
		fmt.Fprintf(&b, "%s%s_count %d\n", namePrefix, n, h.Count)
	}
	if len(s.linkNames) > 0 {
		fmt.Fprintf(&b, "# TYPE %slink_frames_sent_total counter\n", namePrefix)
		s.writeLinkDir(&b, "sent", func(l LinkSnapshot) [linkKindSlots]uint64 { return l.Sent })
		fmt.Fprintf(&b, "# TYPE %slink_frames_recv_total counter\n", namePrefix)
		s.writeLinkDir(&b, "recv", func(l LinkSnapshot) [linkKindSlots]uint64 { return l.Recv })
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func (s regSnapshot) writeLinkDir(b *strings.Builder, dir string, pick func(LinkSnapshot) [linkKindSlots]uint64) {
	for _, name := range s.linkNames {
		counts := pick(s.links[name])
		for k, c := range counts {
			if c == 0 {
				continue
			}
			fmt.Fprintf(b, "%slink_frames_%s_total{link=%q,kind=%q} %d\n",
				namePrefix, dir, escapeLabel(name), escapeLabel(s.kind(k)), c)
		}
	}
}

// JSONHistogram is the JSON form of one histogram.
type JSONHistogram struct {
	Count  uint64 `json:"count"`
	SumNs  int64  `json:"sum_ns"`
	MaxNs  int64  `json:"max_ns"`
	P50Ns  int64  `json:"p50_ns"`
	P99Ns  int64  `json:"p99_ns"`
	P999Ns int64  `json:"p999_ns"`
}

// JSONLink is the JSON form of one link's frame counts, keyed by
// wire-kind name.
type JSONLink struct {
	Sent map[string]uint64 `json:"sent,omitempty"`
	Recv map[string]uint64 `json:"recv,omitempty"`
}

// JSONMetrics is the /metrics.json document.
type JSONMetrics struct {
	Counters   map[string]int64            `json:"counters,omitempty"`
	Gauges     map[string]int64            `json:"gauges,omitempty"`
	GaugeVecs  map[string]map[string]int64 `json:"gauge_vecs,omitempty"`
	Histograms map[string]JSONHistogram    `json:"histograms,omitempty"`
	Links      map[string]JSONLink         `json:"links,omitempty"`
}

// JSON builds the /metrics.json document.
func (r *Registry) JSON() JSONMetrics {
	s := r.snapshot()
	out := JSONMetrics{
		Counters:   make(map[string]int64, len(s.counterNames)),
		Gauges:     make(map[string]int64, len(s.gaugeNames)),
		GaugeVecs:  make(map[string]map[string]int64, len(s.vecNames)),
		Histograms: make(map[string]JSONHistogram, len(s.histNames)),
		Links:      make(map[string]JSONLink, len(s.linkNames)),
	}
	for _, n := range s.counterNames {
		out.Counters[n] = s.counters[n]()
	}
	for _, n := range s.gaugeNames {
		out.Gauges[n] = s.gauges[n]()
	}
	for _, n := range s.vecNames {
		m := make(map[string]int64)
		s.vecs[n](func(label string, v int64) { m[label] = v })
		out.GaugeVecs[n] = m
	}
	for _, n := range s.histNames {
		h := s.hists[n]
		out.Histograms[n] = JSONHistogram{
			Count: h.Count, SumNs: h.SumNs, MaxNs: h.MaxNs,
			P50Ns: h.Quantile(0.50), P99Ns: h.Quantile(0.99), P999Ns: h.Quantile(0.999),
		}
	}
	for _, name := range s.linkNames {
		l := s.links[name]
		jl := JSONLink{Sent: map[string]uint64{}, Recv: map[string]uint64{}}
		for k, c := range l.Sent {
			if c != 0 {
				jl.Sent[s.kind(k)] = c
			}
		}
		for k, c := range l.Recv {
			if c != 0 {
				jl.Recv[s.kind(k)] = c
			}
		}
		out.Links[name] = jl
	}
	return out
}

// Handler returns an http.Handler serving:
//
//	/metrics       Prometheus text exposition
//	/metrics.json  JSON document (counters, gauges, histograms, links)
//	/flight        flight-recorder dump (text; ?json=1 for JSON)
func (r *Registry) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(r.JSON())
	})
	mux.HandleFunc("/flight", func(w http.ResponseWriter, req *http.Request) {
		fr := r.Flight()
		if req.URL.Query().Get("json") != "" {
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			_ = enc.Encode(fr.Events())
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		for _, line := range fr.Dump() {
			fmt.Fprintln(w, line)
		}
	})
	return mux
}
