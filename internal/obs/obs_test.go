package obs

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	h := NewHistogram()
	// 1000 observations at ~1µs, 10 at ~1ms: p50 lands in the µs
	// bucket, p99/p999 must not exceed max.
	for i := 0; i < 1000; i++ {
		h.Observe(1 * time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(1 * time.Millisecond)
	}
	s := h.Snapshot()
	if s.Count != 1010 {
		t.Fatalf("count = %d, want 1010", s.Count)
	}
	if s.MaxNs != int64(time.Millisecond) {
		t.Fatalf("max = %d, want %d", s.MaxNs, int64(time.Millisecond))
	}
	p50 := s.Quantile(0.50)
	if p50 < 512 || p50 > 2048 {
		t.Fatalf("p50 = %dns, want within [512, 2048] (log2 bucket around 1µs)", p50)
	}
	p999 := s.Quantile(0.999)
	if p999 > s.MaxNs {
		t.Fatalf("p999 = %d > max %d", p999, s.MaxNs)
	}
	if p999 < int64(512*time.Microsecond) {
		t.Fatalf("p999 = %dns, want in the ms bucket", p999)
	}
	if mean := s.MeanNs(); mean < 1000 || mean > 20000 {
		t.Fatalf("mean = %dns, want ~11µs", mean)
	}
}

func TestHistogramNegativeAndHuge(t *testing.T) {
	h := NewHistogram()
	h.Observe(-5 * time.Second) // clamped to bucket 0
	h.Observe(1 << 62)          // clamped to last bucket
	s := h.Snapshot()
	if s.Buckets[0] != 1 || s.Buckets[histBuckets-1] != 1 {
		t.Fatalf("clamping failed: %v", s.Buckets)
	}
	if s.Count != 2 {
		t.Fatalf("count = %d", s.Count)
	}
}

func TestHistogramEmptyQuantile(t *testing.T) {
	if q := (HistSnapshot{}).Quantile(0.99); q != 0 {
		t.Fatalf("empty quantile = %d, want 0", q)
	}
}

func TestLinkStatsClamp(t *testing.T) {
	var l LinkStats
	l.Sent(3)
	l.Sent(3)
	l.Recv(-1)
	l.Recv(999)
	s := l.Snapshot()
	if s.Sent[3] != 2 {
		t.Fatalf("sent[3] = %d", s.Sent[3])
	}
	if s.Recv[linkKindSlots-1] != 2 {
		t.Fatalf("out-of-range kinds must clamp to last slot: %v", s.Recv)
	}
}

func TestFlightRecorderRingEviction(t *testing.T) {
	now := time.Unix(100, 0)
	fr := NewFlightRecorder(4, func() time.Time { return now })
	for i := 0; i < 10; i++ {
		fr.Record("ev", "b1", string(rune('a'+i)))
	}
	evs := fr.Events()
	if len(evs) != 4 {
		t.Fatalf("len = %d, want 4", len(evs))
	}
	for i, ev := range evs {
		want := string(rune('a' + 6 + i)) // oldest-first: g h i j
		if ev.Detail != want {
			t.Fatalf("evs[%d].Detail = %q, want %q", i, ev.Detail, want)
		}
	}
	if fr.Total() != 10 {
		t.Fatalf("total = %d, want 10", fr.Total())
	}
	if len(fr.Dump()) != 4 {
		t.Fatalf("dump len = %d", len(fr.Dump()))
	}
}

func TestFlightRecorderNilSafe(t *testing.T) {
	var fr *FlightRecorder
	fr.Record("x", "y", "z")
	fr.Recordf("x", "y", "%d", 1)
	if fr.Events() != nil || fr.Total() != 0 || len(fr.Dump()) != 0 {
		t.Fatal("nil recorder must be inert")
	}
}

func TestRegistryPrometheusRendering(t *testing.T) {
	fr := NewFlightRecorder(8, func() time.Time { return time.Unix(0, 0) })
	r := NewRegistry(fr)
	r.RegisterCounter("pubs_received", func() int64 { return 42 })
	r.RegisterGauge("queue_depth", func() int64 { return 7 })
	r.RegisterGaugeVec("link_queue_depth", func(emit func(string, int64)) {
		emit("b2", 3)
		emit("b1", 1)
	})
	r.Histogram("publish_match_ns").Observe(900 * time.Nanosecond)
	r.SetKindNamer(func(k int) string {
		if k == 5 {
			return "publish"
		}
		return "other"
	})
	r.Link("b2").Sent(5)
	r.Link("b2").Recv(5)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"probsum_pubs_received 42",
		"probsum_queue_depth 7",
		`probsum_link_queue_depth{id="b1"} 1`,
		`probsum_link_queue_depth{id="b2"} 3`,
		`probsum_publish_match_ns_bucket{le="1024"} 1`,
		`probsum_publish_match_ns_bucket{le="+Inf"} 1`,
		"probsum_publish_match_ns_sum 900",
		"probsum_publish_match_ns_count 1",
		`probsum_link_frames_sent_total{link="b2",kind="publish"} 1`,
		`probsum_link_frames_recv_total{link="b2",kind="publish"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
	// Deterministic: two scrapes render identically.
	var sb2 strings.Builder
	if err := r.WritePrometheus(&sb2); err != nil {
		t.Fatal(err)
	}
	if sb2.String() != out {
		t.Fatal("scrape output not deterministic")
	}
}

func TestRegistryJSONAndHandler(t *testing.T) {
	fr := NewFlightRecorder(8, func() time.Time { return time.Unix(9, 0) })
	r := NewRegistry(fr)
	r.RegisterCounter("pubs_received", func() int64 { return 2 })
	r.Histogram("notify_ns").Observe(time.Millisecond)
	fr.Record("suspect", "b1", "b3 missed ack")

	srv := httptest.NewServer(r.Handler())
	defer srv.Close()

	get := func(path string) string {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var sb strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := resp.Body.Read(buf)
			sb.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return sb.String()
	}

	if body := get("/metrics"); !strings.Contains(body, "probsum_pubs_received 2") {
		t.Fatalf("/metrics missing counter:\n%s", body)
	}
	var doc JSONMetrics
	if err := json.Unmarshal([]byte(get("/metrics.json")), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Counters["pubs_received"] != 2 {
		t.Fatalf("json counters = %v", doc.Counters)
	}
	if h := doc.Histograms["notify_ns"]; h.Count != 1 || h.P50Ns == 0 {
		t.Fatalf("json histogram = %+v", h)
	}
	if body := get("/flight"); !strings.Contains(body, "suspect") || !strings.Contains(body, "b3 missed ack") {
		t.Fatalf("/flight missing event:\n%s", body)
	}
	if body := get("/flight?json=1"); !strings.Contains(body, `"kind": "suspect"`) {
		t.Fatalf("/flight?json=1 missing event:\n%s", body)
	}
}

// TestRegistryConcurrency exercises registration, observation, and
// scraping from many goroutines under -race.
func TestRegistryConcurrency(t *testing.T) {
	fr := NewFlightRecorder(64, func() time.Time { return time.Unix(0, 0) })
	r := NewRegistry(fr)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			h := r.Histogram("h")
			l := r.Link("peer")
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				h.Observe(time.Duration(i) * time.Nanosecond)
				l.Sent(i % 8)
				l.Recv(i % 8)
				fr.Record("tick", "g", "x")
			}
		}(g)
	}
	for i := 0; i < 20; i++ {
		var sb strings.Builder
		if err := r.WritePrometheus(&sb); err != nil {
			t.Fatal(err)
		}
		_ = r.JSON()
		_ = fr.Dump()
	}
	close(stop)
	wg.Wait()
}
