package obs

// Log2-bucketed latency histogram. Buckets are powers of two in
// nanoseconds: bucket i holds observations with bits.Len64(ns) == i,
// i.e. [2^(i-1), 2^i). Forty buckets cover 1ns to ~9 minutes, which
// spans everything a publish path can plausibly take. Observe is a
// single atomic add on a fixed array — zero allocations, safe from
// any goroutine — so it can sit on the hot path.
//
// The histogram never reads the clock itself; callers time with an
// injected clock and hand the duration in. That keeps internal/obs
// clockcheck-clean (it is in brokervet.CriticalPackages).

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// histBuckets is the fixed bucket count: bits.Len64 of a nanosecond
// duration, clamped. 2^39 ns ≈ 9.2 minutes.
const histBuckets = 40

// Histogram is a fixed-size log2 latency histogram. The zero value is
// NOT ready; use NewHistogram (the struct is large, so it lives behind
// a pointer anyway).
type Histogram struct {
	buckets [histBuckets]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Int64 // total nanoseconds
	max     atomic.Int64 // high-water nanoseconds (monotone CAS)
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// Observe records one duration. Negative durations (clock skew under
// a manual clock) count into bucket 0 rather than corrupting the
// index. Zero allocations.
func (h *Histogram) Observe(d time.Duration) {
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	i := bits.Len64(uint64(ns))
	if i >= histBuckets {
		i = histBuckets - 1
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(ns)
	for {
		cur := h.max.Load()
		if ns <= cur || h.max.CompareAndSwap(cur, ns) {
			return
		}
	}
}

// HistSnapshot is a point-in-time copy of a histogram. Buckets may be
// mutually torn with respect to count under concurrent observation;
// quantiles treat Buckets as authoritative.
type HistSnapshot struct {
	Buckets [histBuckets]uint64
	Count   uint64
	SumNs   int64
	MaxNs   int64
}

// Snapshot copies the current bucket counts.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	s.Count = h.count.Load()
	s.SumNs = h.sum.Load()
	s.MaxNs = h.max.Load()
	return s
}

// BucketUpperNs returns the exclusive upper bound of bucket i in
// nanoseconds (2^i), with the final bucket unbounded (reported as
// MaxNs by callers that care).
func BucketUpperNs(i int) int64 {
	if i >= 63 {
		return int64(1) << 62
	}
	return int64(1) << uint(i)
}

// Quantile returns an estimate of the q-th quantile (0 < q <= 1) in
// nanoseconds, using the upper bound of the bucket containing the
// rank. Log2 buckets make this coarse (within 2x); exact percentiles
// need raw samples (see paperbench, which keeps its own).
func (s HistSnapshot) Quantile(q float64) int64 {
	total := uint64(0)
	for _, b := range s.Buckets {
		total += b
	}
	if total == 0 {
		return 0
	}
	rank := uint64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	cum := uint64(0)
	for i, b := range s.Buckets {
		cum += b
		if cum > rank {
			up := BucketUpperNs(i)
			if s.MaxNs > 0 && up > s.MaxNs {
				up = s.MaxNs
			}
			return up
		}
	}
	return s.MaxNs
}

// MeanNs returns the arithmetic mean in nanoseconds.
func (s HistSnapshot) MeanNs() int64 {
	if s.Count == 0 {
		return 0
	}
	return s.SumNs / int64(s.Count)
}
