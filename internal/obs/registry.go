package obs

// Registry is the broker-wide catalog of observable series. It is
// deliberately pull-based: hot paths own their atomic counters and
// histograms directly (no registry lookup per event); the registry
// holds callbacks and pointers that a scrape walks. Registration is
// rare (startup, peer connect), scraping is rare (human or CI curl),
// so one mutex over plain maps is plenty.

import (
	"sort"
	"sync"
)

// Registry catalogs counters, gauges, histograms, and per-link frame
// stats for one broker process.
type Registry struct {
	flight *FlightRecorder

	mu sync.Mutex
	// +guarded_by:mu
	counters map[string]func() int64
	// +guarded_by:mu
	gauges map[string]func() int64
	// +guarded_by:mu
	gaugeVecs map[string]func(emit func(label string, v int64))
	// +guarded_by:mu
	hists map[string]*Histogram
	// +guarded_by:mu
	links map[string]*LinkStats
	// +guarded_by:mu
	kindName func(int) string
}

// NewRegistry returns an empty registry with the given flight
// recorder (nil is allowed; Flight() then returns nil and recording
// is a no-op).
func NewRegistry(flight *FlightRecorder) *Registry {
	return &Registry{
		flight:    flight,
		counters:  make(map[string]func() int64),
		gauges:    make(map[string]func() int64),
		gaugeVecs: make(map[string]func(emit func(label string, v int64))),
		hists:     make(map[string]*Histogram),
		links:     make(map[string]*LinkStats),
	}
}

// Flight returns the registry's flight recorder (may be nil).
func (r *Registry) Flight() *FlightRecorder {
	if r == nil {
		return nil
	}
	return r.flight
}

// RegisterCounter registers a monotone series read via fn at scrape
// time. Re-registering a name replaces the previous reader.
func (r *Registry) RegisterCounter(name string, fn func() int64) {
	r.mu.Lock()
	r.counters[name] = fn
	r.mu.Unlock()
}

// RegisterGauge registers a point-in-time series read via fn.
func (r *Registry) RegisterGauge(name string, fn func() int64) {
	r.mu.Lock()
	r.gauges[name] = fn
	r.mu.Unlock()
}

// RegisterGaugeVec registers a labeled gauge family: at scrape time
// collect is called and must invoke emit once per label value.
func (r *Registry) RegisterGaugeVec(name string, collect func(emit func(label string, v int64))) {
	r.mu.Lock()
	r.gaugeVecs[name] = collect
	r.mu.Unlock()
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = NewHistogram()
		r.hists[name] = h
	}
	return h
}

// Link returns the LinkStats for the named peer link, creating it on
// first use. The returned pointer is stable for the life of the
// registry, so transports cache it per connection.
func (r *Registry) Link(name string) *LinkStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	l := r.links[name]
	if l == nil {
		l = &LinkStats{}
		r.links[name] = l
	}
	return l
}

// SetKindNamer installs the wire-kind → name mapping used when
// rendering per-link frame counts. Without one, kinds render as
// "kind_<n>". (obs cannot import pubsub — that would be a cycle.)
func (r *Registry) SetKindNamer(fn func(int) string) {
	r.mu.Lock()
	r.kindName = fn
	r.mu.Unlock()
}

// snapshot captures everything a render needs under one lock hold,
// then reads the callbacks outside it (callbacks may take broker
// locks of their own and must not be called under r.mu).
type regSnapshot struct {
	counterNames []string
	counters     map[string]func() int64
	gaugeNames   []string
	gauges       map[string]func() int64
	vecNames     []string
	vecs         map[string]func(emit func(label string, v int64))
	histNames    []string
	hists        map[string]HistSnapshot
	linkNames    []string
	links        map[string]LinkSnapshot
	kindName     func(int) string
}

func (r *Registry) snapshot() regSnapshot {
	r.mu.Lock()
	s := regSnapshot{
		counters: make(map[string]func() int64, len(r.counters)),
		gauges:   make(map[string]func() int64, len(r.gauges)),
		vecs:     make(map[string]func(emit func(label string, v int64)), len(r.gaugeVecs)),
		hists:    make(map[string]HistSnapshot, len(r.hists)),
		links:    make(map[string]LinkSnapshot, len(r.links)),
		kindName: r.kindName,
	}
	for n, fn := range r.counters {
		s.counterNames = append(s.counterNames, n)
		s.counters[n] = fn
	}
	for n, fn := range r.gauges {
		s.gaugeNames = append(s.gaugeNames, n)
		s.gauges[n] = fn
	}
	for n, fn := range r.gaugeVecs {
		s.vecNames = append(s.vecNames, n)
		s.vecs[n] = fn
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for n, h := range r.hists {
		s.histNames = append(s.histNames, n)
		hists[n] = h
	}
	links := make(map[string]*LinkStats, len(r.links))
	for n, l := range r.links {
		s.linkNames = append(s.linkNames, n)
		links[n] = l
	}
	r.mu.Unlock()

	// Atomic snapshots happen outside the registry lock; they are
	// lock-free and safe against concurrent observation.
	for n, h := range hists {
		s.hists[n] = h.Snapshot()
	}
	for n, l := range links {
		s.links[n] = l.Snapshot()
	}
	sort.Strings(s.counterNames)
	sort.Strings(s.gaugeNames)
	sort.Strings(s.vecNames)
	sort.Strings(s.histNames)
	sort.Strings(s.linkNames)
	return s
}
