package obs

// FlightRecorder: a bounded in-memory ring of recent broker events
// (frame drops, suspicions, digest repairs, re-announces, crashes in
// the chaos harness). It trades completeness for a hard memory bound:
// when the ring is full the oldest event is overwritten. The recorder
// never reads the wall clock itself — the clock is injected at
// construction so simulated harnesses stamp events with simulated
// time (and internal/obs stays clockcheck-clean).

import (
	"fmt"
	"sync"
	"time"
)

// FlightEvent is one recorded event.
type FlightEvent struct {
	Time   time.Time `json:"time"`
	Kind   string    `json:"kind"`   // e.g. "suspect", "frame_drop", "digest_repair"
	Origin string    `json:"origin"` // broker/node that observed it
	Detail string    `json:"detail"`
}

// FlightRecorder holds the most recent events, up to a fixed cap.
type FlightRecorder struct {
	clock func() time.Time

	mu sync.Mutex
	// +guarded_by:mu
	ring []FlightEvent
	// +guarded_by:mu
	next int
	// +guarded_by:mu
	total uint64
}

// NewFlightRecorder returns a recorder keeping the last cap events,
// stamping each with the injected clock. cap <= 0 defaults to 256.
func NewFlightRecorder(cap int, clock func() time.Time) *FlightRecorder {
	if cap <= 0 {
		cap = 256
	}
	return &FlightRecorder{clock: clock, ring: make([]FlightEvent, 0, cap)}
}

// Record appends one event, evicting the oldest if the ring is full.
func (fr *FlightRecorder) Record(kind, origin, detail string) {
	if fr == nil {
		return
	}
	ev := FlightEvent{Time: fr.clock(), Kind: kind, Origin: origin, Detail: detail}
	fr.mu.Lock()
	if len(fr.ring) < cap(fr.ring) {
		fr.ring = append(fr.ring, ev)
	} else {
		fr.ring[fr.next] = ev
		fr.next = (fr.next + 1) % len(fr.ring)
	}
	fr.total++
	fr.mu.Unlock()
}

// Recordf is Record with a formatted detail. Not for hot paths.
func (fr *FlightRecorder) Recordf(kind, origin, format string, args ...any) {
	if fr == nil {
		return
	}
	fr.Record(kind, origin, fmt.Sprintf(format, args...))
}

// Events returns the recorded events oldest-first.
func (fr *FlightRecorder) Events() []FlightEvent {
	if fr == nil {
		return nil
	}
	fr.mu.Lock()
	defer fr.mu.Unlock()
	out := make([]FlightEvent, 0, len(fr.ring))
	out = append(out, fr.ring[fr.next:]...)
	out = append(out, fr.ring[:fr.next]...)
	return out
}

// Total returns how many events were ever recorded (including ones
// that have since been evicted).
func (fr *FlightRecorder) Total() uint64 {
	if fr == nil {
		return 0
	}
	fr.mu.Lock()
	defer fr.mu.Unlock()
	return fr.total
}

// Dump renders the events one per line, oldest-first, for failure
// reports and the /flight endpoint's text form.
func (fr *FlightRecorder) Dump() []string {
	evs := fr.Events()
	out := make([]string, len(evs))
	for i, ev := range evs {
		out[i] = fmt.Sprintf("%s %-14s %-12s %s",
			ev.Time.UTC().Format("15:04:05.000000"), ev.Kind, ev.Origin, ev.Detail)
	}
	return out
}
