package obs

// Hot-path allocation pins. The acceptance bar for this layer is
// "instrumentation adds zero allocations on the publish hot path":
// Observe, LinkStats counting, and a full stage timing (clock read +
// Sub + Observe) must all be alloc-free.

import (
	"testing"
	"time"
)

func TestObserveZeroAlloc(t *testing.T) {
	h := NewHistogram()
	if n := testing.AllocsPerRun(1000, func() { h.Observe(1234 * time.Nanosecond) }); n != 0 {
		t.Fatalf("Histogram.Observe allocates %v per op, want 0", n)
	}
}

func TestLinkStatsZeroAlloc(t *testing.T) {
	var l LinkStats
	if n := testing.AllocsPerRun(1000, func() { l.Sent(5); l.Recv(5) }); n != 0 {
		t.Fatalf("LinkStats counting allocates %v per op, want 0", n)
	}
}

// TestStageTimingZeroAlloc pins the full instrumentation pattern used
// on the publish path: read the injected clock, do "work", read it
// again, observe the difference.
func TestStageTimingZeroAlloc(t *testing.T) {
	h := NewHistogram()
	clock := time.Now
	if n := testing.AllocsPerRun(1000, func() {
		t0 := clock()
		h.Observe(clock().Sub(t0))
	}); n != 0 {
		t.Fatalf("stage timing allocates %v per op, want 0", n)
	}
}
