package simnet

import (
	"fmt"
	"testing"

	"probsum/internal/broker"
	"probsum/internal/interval"
	"probsum/internal/store"
	"probsum/internal/subscription"
	"probsum/subsume"
)

func box(lo1, hi1, lo2, hi2 int64) subscription.Subscription {
	return subscription.New(interval.New(lo1, hi1), interval.New(lo2, hi2))
}

// TestFigure1DeliveryTrees replays the worked example of the paper's
// Section 2 on the Figure 1 overlay: s2 ⊑ s1, subscription s2's
// flooding is pruned by coverage, and the delivery trees of the two
// publications match the broker sets the paper lists.
func TestFigure1DeliveryTrees(t *testing.T) {
	n := New()
	if err := BuildFigure1(n, store.PolicyPairwise); err != nil {
		t.Fatal(err)
	}
	for client, at := range map[string]string{
		"S1": "B1", "S2": "B6", "P1": "B9", "P2": "B5",
	} {
		if err := n.AttachClient(client, at); err != nil {
			t.Fatal(err)
		}
	}

	// s1 is broad, s2 ⊑ s1.
	s1 := box(0, 100, 0, 100)
	s2 := box(40, 60, 40, 60)
	if err := n.ClientSubscribe("S1", "s1", s1); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Run(); err != nil {
		t.Fatal(err)
	}
	// s1 floods the whole tree: every broker except B1 receives it
	// exactly once (8 subscribe messages on 8 links of the tree).
	if got := n.TotalMetrics().SubsForwarded; got != 8 {
		t.Errorf("s1 flooding sent %d messages, want 8", got)
	}

	if err := n.ClientSubscribe("S2", "s2", s2); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Run(); err != nil {
		t.Fatal(err)
	}
	// s2 travels B6→B4, then B4→B3 (s1 came from B3, so B4 never sent
	// s1 there), then B3→B1 — but is suppressed toward B5, B7 and B2
	// where s1 was already forwarded.
	m := n.TotalMetrics()
	if got := m.SubsForwarded - 8; got != 3 {
		t.Errorf("s2 forwarded over %d links, want 3 (B6→B4, B4→B3, B3→B1)", got)
	}
	if m.SubsSuppressed == 0 {
		t.Error("expected coverage suppression for s2")
	}

	// n1 matches both subscriptions: the delivery tree from P1@B9 is
	// B9, B7, B4, B3, B1, B6 (paper text).
	if err := n.ClientPublish("P1", "n1", subscription.NewPublication(50, 50)); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Run(); err != nil {
		t.Fatal(err)
	}
	wantTree1 := map[string]bool{"B9": true, "B7": true, "B4": true, "B3": true, "B1": true, "B6": true}
	for _, id := range n.BrokerIDs() {
		got := n.Broker(id).Metrics().PubsReceived
		want := 0
		if wantTree1[id] {
			want = 1
		}
		if got != want {
			t.Errorf("after n1: broker %s received %d publications, want %d", id, got, want)
		}
	}
	if len(n.Delivered("S1")) != 1 || len(n.Delivered("S2")) != 1 {
		t.Errorf("n1 deliveries: S1=%d S2=%d, want 1 and 1",
			len(n.Delivered("S1")), len(n.Delivered("S2")))
	}

	// n2 matches only s1: delivery tree from P2@B5 is B5, B4, B3, B1.
	if err := n.ClientPublish("P2", "n2", subscription.NewPublication(10, 10)); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Run(); err != nil {
		t.Fatal(err)
	}
	wantTree2 := map[string]bool{"B5": true, "B4": true, "B3": true, "B1": true}
	for _, id := range n.BrokerIDs() {
		got := n.Broker(id).Metrics().PubsReceived
		want := 0
		if wantTree1[id] {
			want++
		}
		if wantTree2[id] {
			want++
		}
		if got != want {
			t.Errorf("after n2: broker %s received %d publications, want %d", id, got, want)
		}
	}
	if len(n.Delivered("S1")) != 2 {
		t.Errorf("S1 should have both notifications, got %d", len(n.Delivered("S1")))
	}
	if len(n.Delivered("S2")) != 1 {
		t.Errorf("S2 should not receive n2; got %d notifications", len(n.Delivered("S2")))
	}
}

func TestChainPropagationAndGroupCoverage(t *testing.T) {
	n := New()
	if err := BuildChain(n, 5, store.PolicyGroup,
		broker.WithSeed(77),
		broker.WithTableOptions(subsume.WithTableChecker(
			subsume.WithErrorProbability(1e-9),
			subsume.WithMaxTrials(10_000)))); err != nil {
		t.Fatal(err)
	}
	n.AttachClient("sub1", "B1")
	n.AttachClient("sub2", "B1")
	n.AttachClient("pub", "B5")

	// Two halves that jointly cover a later subscription.
	n.ClientSubscribe("sub1", "left", box(0, 60, 0, 100))
	n.ClientSubscribe("sub1", "right", box(40, 100, 0, 100))
	if _, err := n.Run(); err != nil {
		t.Fatal(err)
	}
	base := n.TotalMetrics().SubsForwarded
	if base != 8 {
		t.Fatalf("two subscriptions over 4 links = %d forwards, want 8", base)
	}

	// A subscription covered by the union of the two: suppressed at B1
	// already, so no forwards at all.
	n.ClientSubscribe("sub2", "mid", box(20, 80, 10, 90))
	if _, err := n.Run(); err != nil {
		t.Fatal(err)
	}
	if got := n.TotalMetrics().SubsForwarded - base; got != 0 {
		t.Errorf("union-covered subscription forwarded %d times, want 0", got)
	}

	// Publications matching "mid" still arrive at the subscriber
	// because the covering subscriptions route them.
	n.ClientPublish("pub", "p1", subscription.NewPublication(50, 50))
	if _, err := n.Run(); err != nil {
		t.Fatal(err)
	}
	got := n.Delivered("sub2")
	if len(got) != 1 || got[0].SubID != "mid" {
		t.Errorf("sub2 deliveries = %+v, want one notification for mid", got)
	}
}

func TestUnsubscribePromotionPropagates(t *testing.T) {
	n := New()
	if err := BuildChain(n, 3, store.PolicyPairwise); err != nil {
		t.Fatal(err)
	}
	n.AttachClient("c1", "B1")
	n.AttachClient("c2", "B1")
	n.AttachClient("pub", "B3")

	n.ClientSubscribe("c1", "big", box(0, 100, 0, 100))
	n.ClientSubscribe("c2", "small", box(40, 60, 40, 60))
	if _, err := n.Run(); err != nil {
		t.Fatal(err)
	}
	// small is suppressed everywhere (covered by big).
	if got := n.TotalMetrics().SubsForwarded; got != 2 {
		t.Fatalf("forwards = %d, want 2 (big over both links)", got)
	}

	// Cancel big: small must be late-forwarded so routing still works.
	n.ClientUnsubscribe("c1", "big")
	if _, err := n.Run(); err != nil {
		t.Fatal(err)
	}
	m := n.TotalMetrics()
	if m.Promotions == 0 {
		t.Error("expected promotions after unsubscribing the coverer")
	}

	n.ClientPublish("pub", "p1", subscription.NewPublication(50, 50))
	if _, err := n.Run(); err != nil {
		t.Fatal(err)
	}
	if got := n.Delivered("c2"); len(got) != 1 {
		t.Errorf("c2 deliveries = %d, want 1 (via promoted subscription)", len(got))
	}
	if got := n.Delivered("c1"); len(got) != 0 {
		t.Errorf("c1 unsubscribed but received %d notifications", len(got))
	}
}

func TestCyclicTopologyDeduplication(t *testing.T) {
	n := New()
	for i := 1; i <= 3; i++ {
		if err := n.AddBroker(fmt.Sprintf("B%d", i), store.PolicyPairwise); err != nil {
			t.Fatal(err)
		}
	}
	// Triangle: cycles must not loop messages forever.
	for _, e := range [][2]string{{"B1", "B2"}, {"B2", "B3"}, {"B1", "B3"}} {
		if err := n.Connect(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	n.AttachClient("sub", "B1")
	n.AttachClient("pub", "B3")
	n.ClientSubscribe("sub", "s", box(0, 10, 0, 10))
	steps, err := n.Run()
	if err != nil {
		t.Fatal(err)
	}
	if steps > 20 {
		t.Errorf("subscription flooding took %d steps; dedup failed?", steps)
	}
	if n.TotalMetrics().DupSubsDropped == 0 {
		t.Error("expected duplicate subscription drops on the cycle")
	}
	n.ClientPublish("pub", "p", subscription.NewPublication(5, 5))
	if _, err := n.Run(); err != nil {
		t.Fatal(err)
	}
	if got := n.Delivered("sub"); len(got) != 1 {
		t.Errorf("deliveries = %d, want exactly 1 despite the cycle", len(got))
	}
}

func TestGridBroadcastAllSubscribersNotified(t *testing.T) {
	n := New()
	if err := BuildGrid(n, 3, 3, store.PolicyPairwise); err != nil {
		t.Fatal(err)
	}
	// One subscriber per corner, publisher in the center.
	corners := []string{"B1_1", "B3_1", "B1_3", "B3_3"}
	for i, at := range corners {
		client := fmt.Sprintf("c%d", i)
		if err := n.AttachClient(client, at); err != nil {
			t.Fatal(err)
		}
		if err := n.ClientSubscribe(client, fmt.Sprintf("s%d", i), box(0, 50, 0, 50)); err != nil {
			t.Fatal(err)
		}
	}
	n.AttachClient("pub", "B2_2")
	if _, err := n.Run(); err != nil {
		t.Fatal(err)
	}
	n.ClientPublish("pub", "p", subscription.NewPublication(25, 25))
	if _, err := n.Run(); err != nil {
		t.Fatal(err)
	}
	for i := range corners {
		if got := n.Delivered(fmt.Sprintf("c%d", i)); len(got) != 1 {
			t.Errorf("corner client c%d got %d notifications, want 1", i, len(got))
		}
	}
}

func TestFailureInjectionDuplicatesAreIdempotent(t *testing.T) {
	n := New(WithFailures(0, 0.5, 99))
	if err := BuildChain(n, 4, store.PolicyPairwise); err != nil {
		t.Fatal(err)
	}
	n.AttachClient("sub", "B1")
	n.AttachClient("pub", "B4")
	n.ClientSubscribe("sub", "s", box(0, 10, 0, 10))
	if _, err := n.Run(); err != nil {
		t.Fatal(err)
	}
	n.ClientPublish("pub", "p", subscription.NewPublication(5, 5))
	if _, err := n.Run(); err != nil {
		t.Fatal(err)
	}
	if n.Duplicated() == 0 {
		t.Skip("no duplicates injected with this seed")
	}
	if got := n.Delivered("sub"); len(got) != 1 {
		t.Errorf("deliveries = %d, want exactly 1 despite duplicated messages", len(got))
	}
}

func TestFailureInjectionDropsLoseMessages(t *testing.T) {
	n := New(WithFailures(1.0, 0, 7)) // drop everything broker-to-broker
	if err := BuildChain(n, 3, store.PolicyPairwise); err != nil {
		t.Fatal(err)
	}
	n.AttachClient("sub", "B1")
	n.AttachClient("pub", "B3")
	n.ClientSubscribe("sub", "s", box(0, 10, 0, 10))
	if _, err := n.Run(); err != nil {
		t.Fatal(err)
	}
	if n.Dropped() == 0 {
		t.Fatal("expected drops")
	}
	n.ClientPublish("pub", "p", subscription.NewPublication(5, 5))
	if _, err := n.Run(); err != nil {
		t.Fatal(err)
	}
	if got := n.Delivered("sub"); len(got) != 0 {
		t.Errorf("deliveries = %d, want 0 when the link drops everything", len(got))
	}
}

func TestNetworkConfigErrors(t *testing.T) {
	n := New()
	if err := n.Connect("a", "b"); err == nil {
		t.Error("connect unknown brokers accepted")
	}
	if err := n.AttachClient("c", "nope"); err == nil {
		t.Error("attach to unknown broker accepted")
	}
	if err := n.ClientSubscribe("ghost", "s", box(0, 1, 0, 1)); err == nil {
		t.Error("subscribe from unknown client accepted")
	}
	if err := n.AddBroker("B1", store.PolicyNone); err != nil {
		t.Fatal(err)
	}
	if err := n.AddBroker("B1", store.PolicyNone); err == nil {
		t.Error("duplicate broker accepted")
	}
	if err := n.AttachClient("c", "B1"); err != nil {
		t.Fatal(err)
	}
	if err := n.AttachClient("c", "B1"); err == nil {
		t.Error("duplicate client accepted")
	}
}

func TestStarTopologyFanout(t *testing.T) {
	n := New()
	if err := BuildStar(n, 5, store.PolicyPairwise); err != nil {
		t.Fatal(err)
	}
	n.AttachClient("sub", "B2")
	n.AttachClient("pub", "B5")
	n.ClientSubscribe("sub", "s", box(0, 10, 0, 10))
	if _, err := n.Run(); err != nil {
		t.Fatal(err)
	}
	// The hub forwards to its other three leaves: 1 + 3 messages.
	if got := n.TotalMetrics().SubsForwarded; got != 4 {
		t.Errorf("forwards = %d, want 4", got)
	}
	n.ClientPublish("pub", "p", subscription.NewPublication(1, 1))
	if _, err := n.Run(); err != nil {
		t.Fatal(err)
	}
	if got := n.Delivered("sub"); len(got) != 1 {
		t.Errorf("deliveries = %d, want 1", len(got))
	}
}
