// Package simnet runs a network of brokers deterministically in a
// single goroutine: messages are processed in FIFO order, client
// deliveries are recorded, and optional failure injection (message
// drop and duplication) exercises the protocol's idempotence. All
// randomness is seeded, so a run is a pure function of its inputs.
// Brokers carry internal locking for the concurrent TCP transport,
// but driven from this single goroutine every lock is uncontended and
// every decision sequence is exactly the sequential one — the
// equivalence tests in this package pin that.
package simnet

import (
	"fmt"
	"math/rand/v2"
	"sort"

	"probsum/internal/broker"
	"probsum/internal/store"
	"probsum/internal/subscription"
)

// item is one in-flight message addressed to a broker.
type item struct {
	to   string // destination broker
	from string // arrival port at the destination
	msg  broker.Message
}

// Option configures a Network.
type Option func(*Network)

// WithFailures enables failure injection on broker-to-broker links:
// each message is independently dropped with probability drop and
// duplicated with probability dup, using the seeded stream.
func WithFailures(drop, dup float64, seed uint64) Option {
	return func(n *Network) {
		n.dropRate = drop
		n.dupRate = dup
		n.rng = rand.New(rand.NewPCG(seed, seed|1))
	}
}

// WithMaxSteps overrides the runaway guard (default one million
// processed messages per Run call).
func WithMaxSteps(steps int) Option {
	return func(n *Network) { n.maxSteps = steps }
}

// WithDelays enables seeded delay injection on broker-to-broker
// links: each message is independently deferred with probability
// delay — set aside and re-enqueued only once the network would
// otherwise go quiescent, the deterministic analogue of a late packet
// overtaken by everything sent after it. The stream is separate from
// the drop/dup stream, so enabling delays does not perturb existing
// seeded runs.
func WithDelays(delay float64, seed uint64) Option {
	return func(n *Network) {
		n.delayRate = delay
		n.delayRng = rand.New(rand.NewPCG(seed^0xde1a, seed|1))
	}
}

// Network is a deterministic in-memory broker overlay.
type Network struct {
	brokers  map[string]*broker.Broker
	clientAt map[string]string // client port -> broker id
	queue    []item
	head     int

	// delivered records notify messages per client, in arrival order.
	delivered map[string][]broker.Message

	dropRate  float64
	dupRate   float64
	rng       *rand.Rand
	delayRate float64
	delayRng  *rand.Rand
	delayedQ  []item
	maxSteps  int

	// downLinks holds partitioned broker pairs (normalized order):
	// every message crossing a down link is dropped, in both
	// directions — the deterministic form of a network partition.
	downLinks map[[2]string]bool

	// crashed marks broker IDs that were CrashBroker'd and not yet
	// restarted: traffic toward them is dropped, like packets to a
	// dead process.
	crashed map[string]bool

	dropped     int
	duplicated  int
	delayed     int
	partitioned int
	crashLost   int
}

// New returns an empty network.
func New(opts ...Option) *Network {
	n := &Network{
		brokers:   make(map[string]*broker.Broker),
		clientAt:  make(map[string]string),
		delivered: make(map[string][]broker.Message),
		maxSteps:  1_000_000,
	}
	for _, opt := range opts {
		opt(n)
	}
	return n
}

// AddBroker creates a broker in the network.
func (n *Network) AddBroker(id string, policy store.Policy, opts ...broker.Option) error {
	if _, dup := n.brokers[id]; dup {
		return fmt.Errorf("simnet: duplicate broker %s", id)
	}
	b, err := broker.New(id, policy, opts...)
	if err != nil {
		return err
	}
	n.brokers[id] = b
	return nil
}

// Broker returns the broker with the given id, or nil.
func (n *Network) Broker(id string) *broker.Broker { return n.brokers[id] }

// BrokerIDs returns all broker identifiers, sorted.
func (n *Network) BrokerIDs() []string {
	out := make([]string, 0, len(n.brokers))
	for id := range n.brokers {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Connect links two brokers bidirectionally. Links made after traffic
// has flowed are synchronized: each side's coverage roots for the new
// neighbor (the table backfill ConnectNeighbor performs) are enqueued
// as one SUBBATCH toward it, so a late link carries the subscriptions
// it would have carried had it always existed. Pre-traffic wiring —
// every static topology — synchronizes nothing, so existing runs are
// byte-for-byte unchanged. Call Run to process the sync.
func (n *Network) Connect(a, b string) error {
	ba, ok := n.brokers[a]
	if !ok {
		return fmt.Errorf("simnet: unknown broker %s", a)
	}
	bb, ok := n.brokers[b]
	if !ok {
		return fmt.Errorf("simnet: unknown broker %s", b)
	}
	if err := ba.ConnectNeighbor(b); err != nil {
		return err
	}
	if err := bb.ConnectNeighbor(a); err != nil {
		return err
	}
	for _, dir := range []struct {
		from *broker.Broker
		to   string
	}{{ba, b}, {bb, a}} {
		if roots := dir.from.NeighborRoots(dir.to); len(roots) > 0 {
			n.route(dir.from.ID(), broker.Outbound{To: dir.to, Msg: broker.Message{Kind: broker.MsgSubscribeBatch, Subs: roots}})
		}
	}
	return nil
}

// AttachClient binds a client port to a broker.
func (n *Network) AttachClient(client, brokerID string) error {
	b, ok := n.brokers[brokerID]
	if !ok {
		return fmt.Errorf("simnet: unknown broker %s", brokerID)
	}
	if _, dup := n.clientAt[client]; dup {
		return fmt.Errorf("simnet: duplicate client %s", client)
	}
	b.AttachClient(client)
	n.clientAt[client] = brokerID
	return nil
}

// enqueueFromClient injects a client-originated message.
func (n *Network) enqueueFromClient(client string, msg broker.Message) error {
	bid, ok := n.clientAt[client]
	if !ok {
		return fmt.Errorf("simnet: unknown client %s", client)
	}
	n.queue = append(n.queue, item{to: bid, from: client, msg: msg})
	return nil
}

// ClientSubscribe issues a subscription from a client.
func (n *Network) ClientSubscribe(client, subID string, sub subscription.Subscription) error {
	return n.enqueueFromClient(client, broker.Message{Kind: broker.MsgSubscribe, SubID: subID, Sub: sub})
}

// ClientUnsubscribe cancels a subscription from a client.
func (n *Network) ClientUnsubscribe(client, subID string) error {
	return n.enqueueFromClient(client, broker.Message{Kind: broker.MsgUnsubscribe, SubID: subID})
}

// ClientSubscribeBatch issues a subscription burst from a client as a
// single batch message (one batch admission per broker table).
func (n *Network) ClientSubscribeBatch(client string, subs []broker.BatchSub) error {
	return n.enqueueFromClient(client, broker.Message{Kind: broker.MsgSubscribeBatch, Subs: subs})
}

// ClientUnsubscribeBatch cancels a burst of subscriptions from a
// client as a single batch message.
func (n *Network) ClientUnsubscribeBatch(client string, subIDs []string) error {
	return n.enqueueFromClient(client, broker.Message{Kind: broker.MsgUnsubscribeBatch, SubIDs: subIDs})
}

// ClientPublish issues a publication from a client.
func (n *Network) ClientPublish(client, pubID string, pub subscription.Publication) error {
	return n.enqueueFromClient(client, broker.Message{Kind: broker.MsgPublish, PubID: pubID, Pub: pub})
}

// ClientPublishBatch issues a publication burst from a client as a
// single PUBBATCH message (one shared-lock acquisition per broker).
func (n *Network) ClientPublishBatch(client string, pubs []broker.BatchPub) error {
	return n.enqueueFromClient(client, broker.Message{Kind: broker.MsgPublishBatch, Pubs: pubs})
}

// Run processes queued messages until the network is quiescent,
// returning the number of messages processed. Delayed messages (see
// WithDelays) are re-enqueued each time the immediate queue drains,
// until nothing is left anywhere.
func (n *Network) Run() (int, error) {
	steps := 0
	for {
		for n.head < len(n.queue) {
			if steps >= n.maxSteps {
				return steps, fmt.Errorf("simnet: exceeded %d steps; possible routing loop", n.maxSteps)
			}
			it := n.queue[n.head]
			n.head++
			steps++

			b := n.brokers[it.to]
			if b == nil {
				// Destination crashed after this message was queued; the
				// bytes die with the process.
				n.crashLost++
				continue
			}
			outs, err := b.Handle(it.from, it.msg)
			if err != nil {
				return steps, fmt.Errorf("simnet: broker %s: %w", it.to, err)
			}
			for _, o := range outs {
				n.route(b.ID(), o)
			}
			// Compact the consumed prefix occasionally.
			if n.head > 4096 && n.head*2 > len(n.queue) {
				n.queue = append([]item(nil), n.queue[n.head:]...)
				n.head = 0
			}
		}
		if len(n.delayedQ) == 0 {
			return steps, nil
		}
		n.queue = append(n.queue, n.delayedQ...)
		n.delayedQ = nil
	}
}

// linkKey normalizes a broker pair for the partition set.
func linkKey(a, b string) [2]string {
	if a > b {
		a, b = b, a
	}
	return [2]string{a, b}
}

// SetLink controls the broker-to-broker link between a and b: a down
// link drops every message crossing it (both directions), modeling a
// network partition deterministically. Links start up; healing a link
// does not replay what was dropped — recovering lost routing state is
// the cluster layer's healing protocol, which the partition tests
// exercise.
func (n *Network) SetLink(a, b string, up bool) {
	if n.downLinks == nil {
		n.downLinks = make(map[[2]string]bool)
	}
	if up {
		delete(n.downLinks, linkKey(a, b))
	} else {
		n.downLinks[linkKey(a, b)] = true
	}
}

// LinkUp reports whether the a–b link is currently passing messages.
func (n *Network) LinkUp(a, b string) bool {
	return !n.downLinks[linkKey(a, b)]
}

// PartitionDropped reports how many messages down links discarded.
func (n *Network) PartitionDropped() int { return n.partitioned }

// CrashBroker kills a broker abruptly — the deterministic kill -9.
// The broker object is discarded with everything it had in memory;
// messages already queued toward it and everything sent until a
// restart are lost, exactly as packets to a dead process would be.
// Neighbors keep their routing entries for it (nobody told them),
// which is precisely the divergence the digest reconciliation
// protocol exists to repair.
func (n *Network) CrashBroker(id string) error {
	if _, ok := n.brokers[id]; !ok {
		return fmt.Errorf("simnet: unknown broker %s", id)
	}
	delete(n.brokers, id)
	if n.crashed == nil {
		n.crashed = make(map[string]bool)
	}
	n.crashed[id] = true
	return nil
}

// RestartBroker installs a broker under an ID that previously
// crashed — typically a fresh instance recovered from a durability
// store. Traffic toward the ID flows again; nothing lost while it
// was down is replayed.
func (n *Network) RestartBroker(id string, b *broker.Broker) error {
	if !n.crashed[id] {
		return fmt.Errorf("simnet: broker %s did not crash", id)
	}
	if b == nil {
		return fmt.Errorf("simnet: nil broker for %s", id)
	}
	delete(n.crashed, id)
	n.brokers[id] = b
	return nil
}

// Crashed reports whether id is currently crashed.
func (n *Network) Crashed(id string) bool { return n.crashed[id] }

// SetFailureRates adjusts the drop/dup/delay probabilities mid-run
// without touching the seeded streams — how a chaos scenario turns
// injection off for its deterministic probe phase. Rates for streams
// that were never enabled (no WithFailures / WithDelays option) stay
// inert.
func (n *Network) SetFailureRates(drop, dup, delay float64) {
	n.dropRate, n.dupRate, n.delayRate = drop, dup, delay
}

// CrashLost reports how many messages died with crashed brokers.
func (n *Network) CrashLost() int { return n.crashLost }

// Delayed reports how many messages delay injection deferred.
func (n *Network) Delayed() int { return n.delayed }

// Inject enqueues a broker-originated message onto the overlay — the
// entry point for layers above the routing protocol (the cluster
// membership layer's pings and gossip). The message crosses the same
// links, partitions, and failure injection as routed traffic; call Run
// to process it.
func (n *Network) Inject(fromBroker string, o broker.Outbound) {
	n.route(fromBroker, o)
}

// route delivers one outbound message from a broker: to a client
// mailbox or onto the link toward a neighbor broker (with optional
// failure injection).
func (n *Network) route(fromBroker string, o broker.Outbound) {
	if o.Msg.Kind == broker.MsgNotify {
		n.delivered[o.To] = append(n.delivered[o.To], o.Msg)
		return
	}
	if n.crashed[o.To] {
		n.crashLost++
		return
	}
	if _, isBroker := n.brokers[o.To]; !isBroker {
		// Non-notify message addressed to a client: deliver it as-is
		// (clients may observe raw publishes in some setups).
		n.delivered[o.To] = append(n.delivered[o.To], o.Msg)
		return
	}
	if n.downLinks[linkKey(fromBroker, o.To)] {
		n.partitioned++
		return
	}
	copies := 1
	if n.rng != nil {
		if n.rng.Float64() < n.dropRate {
			n.dropped++
			return
		}
		if n.rng.Float64() < n.dupRate {
			n.duplicated++
			copies = 2
		}
	}
	for i := 0; i < copies; i++ {
		it := item{to: o.To, from: fromBroker, msg: o.Msg}
		if n.delayRng != nil && n.delayRng.Float64() < n.delayRate {
			n.delayed++
			n.delayedQ = append(n.delayedQ, it)
			continue
		}
		n.queue = append(n.queue, it)
	}
}

// Delivered returns the notifications received by a client, in order.
func (n *Network) Delivered(client string) []broker.Message {
	msgs := n.delivered[client]
	out := make([]broker.Message, len(msgs))
	copy(out, msgs)
	return out
}

// ClearDeliveries empties all client mailboxes (useful between
// experiment phases).
func (n *Network) ClearDeliveries() {
	n.delivered = make(map[string][]broker.Message)
}

// Dropped and Duplicated report failure-injection activity.
func (n *Network) Dropped() int { return n.dropped }

// Duplicated reports how many messages were duplicated in flight.
func (n *Network) Duplicated() int { return n.duplicated }

// TotalMetrics sums the metrics over all brokers.
func (n *Network) TotalMetrics() broker.Metrics {
	var total broker.Metrics
	for _, b := range n.brokers {
		total.Add(b.Metrics())
	}
	return total
}
