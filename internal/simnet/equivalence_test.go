package simnet

import (
	"fmt"
	"math/rand/v2"
	"testing"

	"probsum/internal/broker"
	"probsum/internal/interval"
	"probsum/internal/store"
	"probsum/internal/subscription"
	"probsum/subsume"
)

// randomScript is a reproducible client workload: subscriptions, some
// unsubscriptions, then publications.
type randomScript struct {
	subs   map[string]subscription.Subscription // subID -> sub (by client)
	subAt  map[string]string                    // subID -> client
	cancel []string
	pubs   []subscription.Publication
}

func makeScript(seed uint64, clients []string, nSubs, nCancel, nPubs int) randomScript {
	r := rand.New(rand.NewPCG(seed, seed^0xf00d))
	sc := randomScript{
		subs:  make(map[string]subscription.Subscription),
		subAt: make(map[string]string),
	}
	ids := make([]string, 0, nSubs)
	for i := 0; i < nSubs; i++ {
		id := fmt.Sprintf("s%d", i)
		lo1, lo2 := r.Int64N(60), r.Int64N(60)
		sub := subscription.New(
			interval.New(lo1, lo1+r.Int64N(100-lo1)),
			interval.New(lo2, lo2+r.Int64N(100-lo2)),
		)
		sc.subs[id] = sub
		sc.subAt[id] = clients[r.IntN(len(clients))]
		ids = append(ids, id)
	}
	for i := 0; i < nCancel && i < len(ids); i++ {
		sc.cancel = append(sc.cancel, ids[r.IntN(len(ids))])
	}
	for i := 0; i < nPubs; i++ {
		sc.pubs = append(sc.pubs, subscription.NewPublication(r.Int64N(101), r.Int64N(101)))
	}
	return sc
}

// runScript executes the script on a fresh random topology under the
// given policy and returns, per client, the set of (pubID, subID)
// deliveries.
func runScript(t *testing.T, topoSeed uint64, policy store.Policy, sc randomScript, clients []string) map[string]map[string]bool {
	t.Helper()
	n := New()
	if err := BuildRandomConnected(n, 6, 2, topoSeed, policy,
		broker.WithSeed(topoSeed|1),
		broker.WithTableOptions(subsume.WithTableChecker(
			subsume.WithErrorProbability(1e-12),
			subsume.WithMaxTrials(50_000)))); err != nil {
		t.Fatal(err)
	}
	brokers := n.BrokerIDs()
	for i, c := range clients {
		if err := n.AttachClient(c, brokers[i%len(brokers)]); err != nil {
			t.Fatal(err)
		}
	}
	n.AttachClient("publisher", brokers[len(brokers)-1])

	// Subscriptions in a deterministic order.
	for i := 0; ; i++ {
		id := fmt.Sprintf("s%d", i)
		sub, ok := sc.subs[id]
		if !ok {
			break
		}
		if err := n.ClientSubscribe(sc.subAt[id], id, sub); err != nil {
			t.Fatal(err)
		}
		if _, err := n.Run(); err != nil {
			t.Fatal(err)
		}
	}
	for _, id := range sc.cancel {
		if err := n.ClientUnsubscribe(sc.subAt[id], id); err != nil {
			t.Fatal(err)
		}
		if _, err := n.Run(); err != nil {
			t.Fatal(err)
		}
	}
	for i, p := range sc.pubs {
		if err := n.ClientPublish("publisher", fmt.Sprintf("p%d", i), p); err != nil {
			t.Fatal(err)
		}
		if _, err := n.Run(); err != nil {
			t.Fatal(err)
		}
	}

	out := make(map[string]map[string]bool, len(clients))
	for _, c := range clients {
		set := make(map[string]bool)
		for _, m := range n.Delivered(c) {
			set[m.PubID+"|"+m.SubID] = true
		}
		out[c] = set
	}
	return out
}

// TestPolicyDeliveryEquivalence checks the central end-to-end
// guarantee: pairwise covering is a pure traffic optimization
// (delivers exactly what flooding delivers), and group covering with a
// tiny δ delivers the same on these workloads — any difference would
// be either a routing bug or a (vanishingly unlikely) false cover.
func TestPolicyDeliveryEquivalence(t *testing.T) {
	clients := []string{"c0", "c1", "c2"}
	for seed := uint64(1); seed <= 8; seed++ {
		sc := makeScript(seed, clients, 20, 4, 25)
		flood := runScript(t, seed, store.PolicyNone, sc, clients)
		pair := runScript(t, seed, store.PolicyPairwise, sc, clients)
		group := runScript(t, seed, store.PolicyGroup, sc, clients)
		for _, c := range clients {
			if len(pair[c]) != len(flood[c]) {
				t.Errorf("seed %d client %s: pairwise delivered %d, flood %d",
					seed, c, len(pair[c]), len(flood[c]))
			}
			for key := range flood[c] {
				if !pair[c][key] {
					t.Errorf("seed %d client %s: pairwise lost %s", seed, c, key)
				}
				if !group[c][key] {
					t.Errorf("seed %d client %s: group lost %s", seed, c, key)
				}
			}
			// No spurious deliveries either.
			for key := range group[c] {
				if !flood[c][key] {
					t.Errorf("seed %d client %s: group delivered spurious %s", seed, c, key)
				}
			}
		}
	}
}

// TestGroupPolicySavesTraffic verifies the reason the probabilistic
// policy exists: it forwards no more subscription messages than
// pairwise, which forwards no more than flooding.
func TestGroupPolicySavesTraffic(t *testing.T) {
	clients := []string{"c0", "c1", "c2"}
	totals := map[store.Policy]int{}
	for seed := uint64(1); seed <= 8; seed++ {
		sc := makeScript(seed, clients, 25, 0, 1)
		for _, policy := range []store.Policy{store.PolicyNone, store.PolicyPairwise, store.PolicyGroup} {
			n := New()
			if err := BuildRandomConnected(n, 6, 2, seed, policy,
				broker.WithSeed(seed|1),
				broker.WithTableOptions(subsume.WithTableChecker(
					subsume.WithErrorProbability(1e-12),
					subsume.WithMaxTrials(50_000)))); err != nil {
				t.Fatal(err)
			}
			brokers := n.BrokerIDs()
			for i, c := range clients {
				if err := n.AttachClient(c, brokers[i%len(brokers)]); err != nil {
					t.Fatal(err)
				}
			}
			for i := 0; ; i++ {
				id := fmt.Sprintf("s%d", i)
				sub, ok := sc.subs[id]
				if !ok {
					break
				}
				if err := n.ClientSubscribe(sc.subAt[id], id, sub); err != nil {
					t.Fatal(err)
				}
			}
			if _, err := n.Run(); err != nil {
				t.Fatal(err)
			}
			totals[policy] += n.TotalMetrics().SubsForwarded
		}
	}
	if !(totals[store.PolicyGroup] <= totals[store.PolicyPairwise] &&
		totals[store.PolicyPairwise] <= totals[store.PolicyNone]) {
		t.Errorf("forwarded totals: flood=%d pairwise=%d group=%d; want flood >= pairwise >= group",
			totals[store.PolicyNone], totals[store.PolicyPairwise], totals[store.PolicyGroup])
	}
	if totals[store.PolicyGroup] == totals[store.PolicyNone] {
		t.Error("coverage policies saved nothing on an overlapping workload")
	}
}
