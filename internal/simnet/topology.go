package simnet

import (
	"fmt"
	"math/rand/v2"

	"probsum/internal/broker"
	"probsum/internal/store"
)

// BuildChain creates brokers B1..Bn connected in a line, as in the
// paper's Section 5 propagation analysis.
func BuildChain(n *Network, count int, policy store.Policy, opts ...broker.Option) error {
	if count < 1 {
		return fmt.Errorf("simnet: chain needs at least one broker")
	}
	for i := 1; i <= count; i++ {
		if err := n.AddBroker(fmt.Sprintf("B%d", i), policy, opts...); err != nil {
			return err
		}
	}
	for i := 1; i < count; i++ {
		if err := n.Connect(fmt.Sprintf("B%d", i), fmt.Sprintf("B%d", i+1)); err != nil {
			return err
		}
	}
	return nil
}

// BuildStar creates a hub broker B1 with count-1 leaves.
func BuildStar(n *Network, count int, policy store.Policy, opts ...broker.Option) error {
	if count < 1 {
		return fmt.Errorf("simnet: star needs at least one broker")
	}
	for i := 1; i <= count; i++ {
		if err := n.AddBroker(fmt.Sprintf("B%d", i), policy, opts...); err != nil {
			return err
		}
	}
	for i := 2; i <= count; i++ {
		if err := n.Connect("B1", fmt.Sprintf("B%d", i)); err != nil {
			return err
		}
	}
	return nil
}

// BuildGrid creates a w x h grid with 4-neighborhood links; broker
// names are Bx_y with 1-based coordinates.
func BuildGrid(n *Network, w, h int, policy store.Policy, opts ...broker.Option) error {
	if w < 1 || h < 1 {
		return fmt.Errorf("simnet: grid needs positive dimensions")
	}
	name := func(x, y int) string { return fmt.Sprintf("B%d_%d", x, y) }
	for y := 1; y <= h; y++ {
		for x := 1; x <= w; x++ {
			if err := n.AddBroker(name(x, y), policy, opts...); err != nil {
				return err
			}
		}
	}
	for y := 1; y <= h; y++ {
		for x := 1; x <= w; x++ {
			if x < w {
				if err := n.Connect(name(x, y), name(x+1, y)); err != nil {
					return err
				}
			}
			if y < h {
				if err := n.Connect(name(x, y), name(x, y+1)); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// BuildRandomConnected creates count brokers wired as a random spanning
// tree plus extra random edges, reproducibly from the seed.
func BuildRandomConnected(n *Network, count, extraEdges int, seed uint64, policy store.Policy, opts ...broker.Option) error {
	if count < 1 {
		return fmt.Errorf("simnet: need at least one broker")
	}
	rng := rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))
	names := make([]string, count)
	for i := range names {
		names[i] = fmt.Sprintf("B%d", i+1)
		if err := n.AddBroker(names[i], policy, opts...); err != nil {
			return err
		}
	}
	// Random spanning tree: connect each new node to a random earlier
	// one.
	for i := 1; i < count; i++ {
		j := rng.IntN(i)
		if err := n.Connect(names[i], names[j]); err != nil {
			return err
		}
	}
	for e := 0; e < extraEdges; e++ {
		a, b := rng.IntN(count), rng.IntN(count)
		if a == b {
			continue
		}
		if err := n.Connect(names[a], names[b]); err != nil {
			return err
		}
	}
	return nil
}

// BuildFigure1 reproduces the nine-broker overlay of the paper's
// Figure 1: a tree rooted near B4 with subscribers at B1/B6 and
// publishers at B9/B5. Edges: B1–B3, B2–B3, B3–B4, B4–B5, B4–B6,
// B4–B7, B7–B8, B7–B9 (B8's placement is the only edge not pinned by
// the text; it is irrelevant to the delivery trees the paper traces).
func BuildFigure1(n *Network, policy store.Policy, opts ...broker.Option) error {
	for i := 1; i <= 9; i++ {
		if err := n.AddBroker(fmt.Sprintf("B%d", i), policy, opts...); err != nil {
			return err
		}
	}
	edges := [][2]string{
		{"B1", "B3"}, {"B2", "B3"}, {"B3", "B4"},
		{"B4", "B5"}, {"B4", "B6"}, {"B4", "B7"},
		{"B7", "B8"}, {"B7", "B9"},
	}
	for _, e := range edges {
		if err := n.Connect(e[0], e[1]); err != nil {
			return err
		}
	}
	return nil
}
