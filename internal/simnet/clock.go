package simnet

import "time"

// Clock is a manual, deterministic clock for driving time-based
// protocol layers (the cluster failure detector and reconnect
// backoff) under the simulator: tests advance it explicitly, so every
// suspect/dead transition and every backoff expiry happens at an
// exactly reproducible instant instead of riding the wall clock.
type Clock struct {
	t time.Time
}

// NewClock returns a clock starting at the Unix epoch — an arbitrary
// but fixed origin, so simulated timestamps are stable across runs.
func NewClock() *Clock { return &Clock{t: time.Unix(0, 0)} }

// Now returns the current simulated instant.
func (c *Clock) Now() time.Time { return c.t }

// Advance moves the clock forward by d and returns the new instant.
func (c *Clock) Advance(d time.Duration) time.Time {
	c.t = c.t.Add(d)
	return c.t
}
