// Package core implements the paper's primary contribution: the
// probabilistic cover algorithm for the general subsumption problem.
// It decides whether a subscription s is covered by the disjunction of
// a set of subscriptions S = {s1 … sk} by combining
//
//   - fast deterministic decisions read off the conflict table
//     (Algorithm 4: Corollary 1 pairwise cover, Corollary 3 polyhedron
//     witness, empty minimized cover set),
//   - the Minimized Cover Set reduction (Algorithm 3, MCS), and
//   - the Monte-Carlo Random Simple Predicates Cover (Algorithm 1,
//     RSPC) whose trial budget d is derived from a caller-chosen error
//     probability δ via the witness-density estimate ρw (Algorithm 2).
//
// A NO answer is always exact: it is backed by an explicit point or
// polyhedron witness. A YES answer is exact on the pairwise path and
// probabilistic otherwise, wrong with probability at most δ ≤ (1-ρw)^d
// (Proposition 1).
package core

import (
	"probsum/internal/subscription"
)

// Decision is the outcome of a subsumption check.
type Decision int

// Decision values.
const (
	// NotCovered is a definite NO: a witness proves s ⋢ S.
	NotCovered Decision = iota + 1
	// Covered is a definite YES: a single subscription covers s.
	Covered
	// CoveredProbably is RSPC's probabilistic YES: no witness was found
	// in d trials, so s ⊑ S with error probability at most δ.
	CoveredProbably
)

// String returns a human-readable decision name.
func (d Decision) String() string {
	switch d {
	case NotCovered:
		return "not-covered"
	case Covered:
		return "covered"
	case CoveredProbably:
		return "covered-probably"
	default:
		return "unknown"
	}
}

// IsCovered reports whether the decision treats s as covered (exactly
// or probabilistically), i.e. whether a broker would suppress it.
func (d Decision) IsCovered() bool { return d == Covered || d == CoveredProbably }

// Reason records which stage of the pipeline produced the decision.
type Reason int

// Reason values, in pipeline order.
const (
	// ReasonPairwiseCover: some row of the conflict table is entirely
	// undefined, so that subscription alone covers s (Corollary 1).
	ReasonPairwiseCover Reason = iota + 1
	// ReasonPolyhedronWitness: the sorted-row condition held and the
	// greedy construction produced a verified polyhedron witness
	// (Corollary 3).
	ReasonPolyhedronWitness
	// ReasonEmptyMCS: the minimized cover set is empty — no candidate
	// subscriptions could jointly cover s.
	ReasonEmptyMCS
	// ReasonPointWitness: RSPC guessed a point inside s that no
	// subscription contains (Definition 4).
	ReasonPointWitness
	// ReasonTrialsExhausted: RSPC performed all d trials without
	// finding a witness.
	ReasonTrialsExhausted
)

// String returns a human-readable reason name.
func (r Reason) String() string {
	switch r {
	case ReasonPairwiseCover:
		return "pairwise-cover"
	case ReasonPolyhedronWitness:
		return "polyhedron-witness"
	case ReasonEmptyMCS:
		return "empty-mcs"
	case ReasonPointWitness:
		return "point-witness"
	case ReasonTrialsExhausted:
		return "trials-exhausted"
	default:
		return "unknown"
	}
}

// Result carries the decision together with the evidence and cost
// accounting the evaluation experiments need.
type Result struct {
	Decision Decision
	Reason   Reason

	// CoveringRow is the index (into the checked set) of the single
	// subscription that covers s on the pairwise path; -1 otherwise.
	CoveringRow int

	// PointWitness is the witness point when Reason is
	// ReasonPointWitness; nil otherwise. The point lies inside s and
	// outside every subscription of the minimized cover set
	// (ReducedSet); by Proposition 4 that proves s is not covered by
	// the full set either, although the point itself may lie inside a
	// subscription MCS removed as redundant.
	PointWitness []int64

	// PolyhedronWitness is the verified witness box when Reason is
	// ReasonPolyhedronWitness.
	PolyhedronWitness subscription.Subscription

	// ReducedSet lists the indices surviving MCS (the non-reducible
	// cover set S'); nil when MCS was disabled or not reached.
	ReducedSet []int

	// Rho is the witness-density estimate ρw computed by Algorithm 2
	// over the reduced set; LogRho is its natural logarithm, exact even
	// when Rho underflows to zero.
	Rho    float64
	LogRho float64

	// Log10D is log10 of the theoretical trial bound d from Equation 1
	// (can reach ~50 in the paper's plots). ExecutedTrials is the
	// number of RSPC guesses actually performed; DCapped reports that
	// the theoretical d exceeded the checker's MaxTrials.
	Log10D         float64
	ExecutedTrials int
	DCapped        bool
}

// resetForReuse clears the result for the next CoveredInto call while
// keeping the ReducedSet capacity, so a reused Result stops allocating
// once it has seen the workload's largest reduced set.
func (r *Result) resetForReuse() {
	reduced := r.ReducedSet[:0]
	*r = Result{CoveringRow: -1, ReducedSet: reduced}
}
