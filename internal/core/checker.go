package core

import (
	"errors"
	"fmt"
	"math"
	"math/rand/v2"

	"probsum/internal/conflict"
	"probsum/internal/subscription"
)

// Checker defaults.
const (
	// DefaultErrorProbability is the δ used when none is configured;
	// the paper's comparison experiment uses 1e-6.
	DefaultErrorProbability = 1e-6
	// DefaultMaxTrials caps executed RSPC guesses. The paper observes
	// that d below 10^5 is practically feasible while theoretical
	// bounds can reach 10^50; runs that hit the cap are flagged in the
	// result.
	DefaultMaxTrials = 100_000
)

// ErrUnsatisfiable is returned when the tested subscription is empty:
// coverage of an empty subscription is vacuous and almost certainly a
// caller bug, so it is reported instead of silently answering YES.
var ErrUnsatisfiable = errors.New("core: tested subscription is unsatisfiable")

// Option configures a Checker.
type Option func(*Checker)

// WithErrorProbability sets the acceptable probability δ of a false
// YES. Must be in (0, 1).
func WithErrorProbability(delta float64) Option {
	return func(c *Checker) { c.delta = delta }
}

// WithMaxTrials caps the number of RSPC guesses per query.
func WithMaxTrials(n int) Option {
	return func(c *Checker) { c.maxTrials = n }
}

// WithSeed fixes the PCG seed of the checker's random stream, making
// every decision sequence reproducible.
func WithSeed(seed1, seed2 uint64) Option {
	return func(c *Checker) { c.rng = rand.New(rand.NewPCG(seed1, seed2)) }
}

// WithMCS enables or disables the Minimized Cover Set reduction.
// Disabling it reproduces the paper's "RSPC without MCS" ablation.
func WithMCS(enabled bool) Option {
	return func(c *Checker) { c.useMCS = enabled }
}

// WithFastPaths enables or disables the deterministic short-circuits of
// Algorithm 4 (pairwise cover and greedy polyhedron witness).
func WithFastPaths(enabled bool) Option {
	return func(c *Checker) { c.useFast = enabled }
}

// Checker answers group-subsumption questions with the full pipeline of
// Algorithm 4. The zero value is not usable; construct with NewChecker.
// A Checker is not safe for concurrent use (it owns a random stream and
// the reusable hot-path buffers); create one per goroutine or table —
// see CheckerPool for concurrent callers.
type Checker struct {
	delta     float64
	maxTrials int
	useMCS    bool
	useFast   bool
	rng       *rand.Rand

	// sc holds the per-checker scratch the zero-allocation path writes
	// into; buffers grow to the workload's high-water mark and are
	// reused across Covered/CoveredInto calls.
	sc scratch
}

// scratch aggregates every buffer the Algorithm 4 pipeline needs, so a
// steady-state CoveredInto call performs no heap allocations.
type scratch struct {
	table conflict.Table
	cs    conflict.Scratch
	alive []bool
	point []int64
	flat  flatSet
}

// NewChecker returns a Checker with the paper's defaults: δ = 1e-6,
// MCS and fast paths enabled, trial cap 100 000, and an unseeded
// (process-random) PCG stream unless WithSeed is given.
func NewChecker(opts ...Option) (*Checker, error) {
	c := &Checker{
		delta:     DefaultErrorProbability,
		maxTrials: DefaultMaxTrials,
		useMCS:    true,
		useFast:   true,
		rng:       rand.New(rand.NewPCG(rand.Uint64(), rand.Uint64())),
	}
	for _, opt := range opts {
		opt(c)
	}
	if c.delta <= 0 || c.delta >= 1 {
		return nil, fmt.Errorf("core: error probability must be in (0,1), got %g", c.delta)
	}
	if c.maxTrials < 1 {
		return nil, fmt.Errorf("core: max trials must be positive, got %d", c.maxTrials)
	}
	return c, nil
}

// Delta returns the configured error probability δ.
func (c *Checker) Delta() float64 { return c.delta }

// Covered decides whether s ⊑ (set[0] ∨ … ∨ set[k-1]) following
// Algorithm 4:
//
//  1. build the conflict table (O(m·k));
//  2. Corollary 1 — a fully undefined row means a single subscription
//     covers s: definite YES;
//  3. Corollary 3 — if the sorted-row condition holds, greedily build
//     and verify a polyhedron witness: definite NO;
//  4. Algorithm 3 — reduce to the minimized cover set S'; if S' is
//     empty: definite NO;
//  5. Algorithms 2+1 — estimate ρw on S', derive the trial bound d for
//     δ, cap it at MaxTrials, and run RSPC: a point witness is a
//     definite NO, otherwise a probabilistic YES.
func (c *Checker) Covered(s subscription.Subscription, set []subscription.Subscription) (Result, error) {
	var res Result
	if err := c.CoveredInto(&res, s, set); err != nil {
		return Result{}, err
	}
	return res, nil
}

// CoveredInto is Covered writing the outcome into res, reusing res's
// slice capacity and the checker's internal scratch. A caller that
// keeps one Result per checker performs zero heap allocations in
// steady state (covered answers); only definite-NO answers allocate,
// to copy their witness out of the scratch. Decisions are identical to
// Covered's for the same random stream.
//
// res is overwritten entirely; any slices previously returned from it
// (ReducedSet in particular) are invalidated by the next call.
func (c *Checker) CoveredInto(res *Result, s subscription.Subscription, set []subscription.Subscription) error {
	if !s.IsSatisfiable() {
		return ErrUnsatisfiable
	}
	res.resetForReuse()
	if len(set) == 0 {
		res.Decision = NotCovered
		res.Reason = ReasonEmptyMCS
		return nil
	}

	table := &c.sc.table
	if err := table.Reset(s, set); err != nil {
		return err
	}

	if c.useFast {
		if row := table.PairwiseCoverRow(); row >= 0 {
			res.Decision = Covered
			res.Reason = ReasonPairwiseCover
			res.CoveringRow = row
			return nil
		}
		if table.SortedRowConditionScratch(nil, &c.sc.cs) {
			if witness, ok := table.GreedyWitnessScratch(nil, &c.sc.cs); ok {
				res.Decision = NotCovered
				res.Reason = ReasonPolyhedronWitness
				res.PolyhedronWitness = witness
				return nil
			}
		}
	}

	var alive []bool
	if c.useMCS {
		if cap(c.sc.alive) < table.K() {
			c.sc.alive = make([]bool, table.K())
		} else {
			c.sc.alive = c.sc.alive[:table.K()]
		}
		mcs := MCSInto(table, c.sc.alive, &c.sc.cs.An)
		for i, ok := range mcs.Alive {
			if ok {
				res.ReducedSet = append(res.ReducedSet, i)
			}
		}
		if mcs.AliveCount == 0 {
			res.Decision = NotCovered
			res.Reason = ReasonEmptyMCS
			return nil
		}
		alive = mcs.Alive
	}

	res.LogRho = EstimateLogRho(table, alive)
	res.Rho = math.Exp(res.LogRho)
	res.Log10D = Log10TrialBound(c.delta, res.LogRho)
	trials := c.maxTrials
	if d := TrialBound(c.delta, res.LogRho); d < float64(trials) {
		trials = int(math.Ceil(d))
	} else {
		res.DCapped = true
	}

	if cap(c.sc.point) < s.Len() {
		c.sc.point = make([]int64, s.Len())
	} else {
		c.sc.point = c.sc.point[:s.Len()]
	}
	c.sc.flat.build(s, set, alive)
	out := rspcFlat(s, &c.sc.flat, trials, c.rng, c.sc.point)
	res.ExecutedTrials = out.Trials
	if out.Found() {
		res.Decision = NotCovered
		res.Reason = ReasonPointWitness
		res.PointWitness = out.Witness
		return nil
	}
	res.Decision = CoveredProbably
	res.Reason = ReasonTrialsExhausted
	return nil
}
