package core

import (
	"math"

	"probsum/internal/conflict"
)

// ln10 converts natural logarithms to base-10 logarithms.
const ln10 = 2.302585092994046

// EstimateLogRho implements Algorithm 2 of the paper: it approximates
// I(sw), the size of the smallest polyhedron witness, by multiplying —
// over every attribute — the minimum one-sided uncovered gap induced by
// any defined conflict-table entry of an alive row (nil alive means all
// rows), with the full extent of s as the starting minimum. It returns
// ln ρw = ln I(sw) − ln I(s), computed in log space so m=20 with wide
// domains cannot overflow.
//
// The estimate is per-subscription, not per-union: it cannot see that a
// union of subscriptions leaves only a sliver uncovered, so it
// overestimates ρw whenever the true gap is interior (see DESIGN.md,
// scenario 2.c). That is faithful to the paper.
func EstimateLogRho(t *conflict.Table, alive []bool) float64 {
	logIsw := 0.0
	logIs := 0.0
	for a := 0; a < t.M(); a++ {
		width := t.Subscription().Bounds[a].Count()
		logIs += math.Log(float64(width))
		minGap := width
		for i := 0; i < t.K(); i++ {
			if alive != nil && !alive[i] {
				continue
			}
			if t.Defined(i, a, conflict.SideLow) {
				if g := t.GapWidth(conflict.EntryRef{Row: i, Attr: a, Side: conflict.SideLow}); g < minGap {
					minGap = g
				}
			}
			if t.Defined(i, a, conflict.SideHigh) {
				if g := t.GapWidth(conflict.EntryRef{Row: i, Attr: a, Side: conflict.SideHigh}); g < minGap {
					minGap = g
				}
			}
		}
		logIsw += math.Log(float64(minGap))
	}
	return logIsw - logIs
}

// EstimateRho returns ρw itself; it may underflow to 0 for large m,
// in which case EstimateLogRho still carries the exact exponent.
func EstimateRho(t *conflict.Table, alive []bool) float64 {
	return math.Exp(EstimateLogRho(t, alive))
}

// TrialBound inverts Equation 1, δ = (1-ρw)^d, returning the number of
// RSPC trials d needed to reach error probability delta given the
// witness-density estimate exp(logRho). The bound is at least 1; it is
// +Inf when ρw is 0 (or underflows) and delta < 1.
func TrialBound(delta, logRho float64) float64 {
	if delta >= 1 {
		return 1
	}
	rho := math.Exp(logRho)
	if rho >= 1 {
		return 1
	}
	if rho == 0 {
		return math.Inf(1)
	}
	d := math.Log(delta) / math.Log1p(-rho)
	if d < 1 {
		return 1
	}
	return d
}

// Log10TrialBound returns log10 of TrialBound, exact even when the
// bound itself overflows float64 (the paper's Figures 7 and 9 plot
// values up to 10^50). For small ρw it uses d ≈ −ln δ ∕ ρw, i.e.
// log10 d = log10(−ln δ) − logRho/ln 10.
func Log10TrialBound(delta, logRho float64) float64 {
	if delta >= 1 {
		return 0
	}
	rho := math.Exp(logRho)
	if rho >= 1 {
		return 0
	}
	// For ρw large enough to be representable, compute directly.
	if rho > 1e-12 {
		return math.Log10(TrialBound(delta, logRho))
	}
	// Otherwise ln(1-ρ) ≈ -ρ, so d ≈ -ln δ / ρ.
	return math.Log10(-math.Log(delta)) - logRho/ln10
}
