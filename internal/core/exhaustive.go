package core

import (
	"fmt"

	"probsum/internal/subscription"
)

// ExhaustiveCoverLimit bounds the number of points ExhaustiveCover is
// willing to enumerate.
const ExhaustiveCoverLimit = 1 << 22

// ExhaustiveCover answers the subsumption question exactly by
// enumerating every integer point of s and testing membership in the
// union. It is exponential in m and exists as the ground-truth oracle
// for tests and for tiny domains; it refuses boxes larger than
// ExhaustiveCoverLimit points.
func ExhaustiveCover(s subscription.Subscription, set []subscription.Subscription) (bool, error) {
	if !s.IsSatisfiable() {
		return true, nil // vacuous
	}
	size := s.Size()
	if size > ExhaustiveCoverLimit {
		return false, fmt.Errorf("core: exhaustive check over %.0f points exceeds limit %d", size, ExhaustiveCoverLimit)
	}
	m := s.Len()
	point := make([]int64, m)
	for a, b := range s.Bounds {
		point[a] = b.Lo
	}
	for {
		if !pointInAnyAlive(point, set, nil) {
			return false, nil
		}
		// Advance odometer.
		a := 0
		for a < m {
			point[a]++
			if point[a] <= s.Bounds[a].Hi {
				break
			}
			point[a] = s.Bounds[a].Lo
			a++
		}
		if a == m {
			return true, nil
		}
	}
}
