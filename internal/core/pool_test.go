package core

import (
	"math/rand/v2"
	"sync"
	"testing"

	"probsum/internal/workload"
)

// TestCheckerPoolConcurrent hammers one pool from many goroutines;
// with the race detector this pins the claim that pooled checkers
// never share an RNG or scratch.
func TestCheckerPoolConcurrent(t *testing.T) {
	pool, err := NewCheckerPool(7, WithMaxTrials(200))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(201, 202))
	instances := make([]workload.Instance, 8)
	for i := range instances {
		instances[i] = workload.RedundantCovering(rng, workload.Config{K: 30, M: 5})
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var res Result
			for i := 0; i < 50; i++ {
				c := pool.Get()
				in := instances[(g+i)%len(instances)]
				if err := c.CoveredInto(&res, in.S, in.Set); err != nil {
					t.Error(err)
				} else if !res.Decision.IsCovered() {
					t.Errorf("goroutine %d iter %d: covered instance judged %v", g, i, res.Decision)
				}
				pool.Put(c)
			}
		}(g)
	}
	wg.Wait()
}

// TestCheckerPoolRejectsBadConfig validates eagerly at construction.
func TestCheckerPoolRejectsBadConfig(t *testing.T) {
	if _, err := NewCheckerPool(1, WithErrorProbability(2)); err == nil {
		t.Fatal("expected error for delta out of range")
	}
}
