package core

import (
	"probsum/internal/conflict"
)

// MCSResult reports what the Minimized Cover Set reduction did.
type MCSResult struct {
	// Alive[i] is true when subscription i survived the reduction.
	Alive []bool
	// AliveCount is the number of surviving subscriptions |S'|.
	AliveCount int
	// Passes is how many scans of the table the fixpoint needed.
	Passes int
}

// Indices returns the surviving row indices in ascending order.
func (r MCSResult) Indices() []int {
	out := make([]int, 0, r.AliveCount)
	for i, ok := range r.Alive {
		if ok {
			out = append(out, i)
		}
	}
	return out
}

// MCS implements Algorithm 3, the Minimized Cover Set: it repeatedly
// removes subscriptions that are redundant for the covering question
// (Proposition 4) — rows with at least one conflict-free entry
// (fc_i >= 1) or with at least as many defined entries as the current
// set size (t_i >= k) — until no rule fires. The surviving set S' has
// the same covering answer as S: s ⊑ S iff s ⊑ S'.
//
// The paper bounds the reduction at O(m²k³); this implementation uses
// per-attribute bound extrema (see package conflict) for O(1)
// conflict-freeness tests, giving O(m·k) per pass and O(m·k²) worst
// case. Removing a row mid-pass only shrinks the set of potential
// conflict partners, so testing against the extrema snapshot taken at
// pass start is conservative and the fixpoint loop picks up the
// remainder — identical final answer, fewer rescans.
func MCS(t *conflict.Table) MCSResult {
	return MCSInto(t, make([]bool, t.K()), new(conflict.Analysis))
}

// MCSInto is MCS writing the survivor flags into alive (which must
// have length t.K(); prior contents are overwritten) and reusing an
// for the per-pass extrema scans. It allocates nothing, making it the
// hot-path entry used by Checker.CoveredInto.
func MCSInto(t *conflict.Table, alive []bool, an *conflict.Analysis) MCSResult {
	k := t.K()
	for i := range alive {
		alive[i] = true
	}
	res := MCSResult{Alive: alive, AliveCount: k}
	for {
		res.Passes++
		an.Reset(t, alive)
		removed := false
		for i := 0; i < k; i++ {
			if !alive[i] {
				continue
			}
			if t.RowCount(i) >= res.AliveCount || an.RowHasConflictFree(i) {
				alive[i] = false
				res.AliveCount--
				removed = true
			}
		}
		if !removed || res.AliveCount == 0 {
			return res
		}
	}
}

// MCSNaive is the literal O(m²k³) transcription of Algorithm 3 using
// pairwise conflict tests. It exists as a cross-check oracle: MCS and
// MCSNaive must select identical survivor sets.
func MCSNaive(t *conflict.Table) MCSResult {
	k := t.K()
	alive := make([]bool, k)
	for i := range alive {
		alive[i] = true
	}
	res := MCSResult{Alive: alive, AliveCount: k}
	for {
		res.Passes++
		removed := false
		for i := 0; i < k; i++ {
			if !alive[i] {
				continue
			}
			if t.RowCount(i) >= res.AliveCount || t.RowConflictFreeCountNaive(i, alive) >= 1 {
				alive[i] = false
				res.AliveCount--
				removed = true
			}
		}
		if !removed || res.AliveCount == 0 {
			return res
		}
	}
}
