package core

import (
	"cmp"
	"math/bits"
	"math/rand/v2"
	"slices"

	"probsum/internal/subscription"
)

// RSPCOutcome is the raw result of a Random-Simple-Predicates-Cover
// run (Algorithm 1).
type RSPCOutcome struct {
	// Witness is the point witness to non-cover, nil when none was
	// found within the trial budget.
	Witness []int64
	// Trials is the number of guesses performed: the index of the
	// successful guess, or the full budget when no witness was found.
	Trials int
}

// Found reports whether a point witness was discovered.
func (o RSPCOutcome) Found() bool { return o.Witness != nil }

// RSPC runs Algorithm 1: it guesses up to trials uniform random points
// inside s and returns the first that lies outside every alive
// subscription (a point witness to non-cover, Definition 4). A found
// witness makes the non-cover answer exact; exhausting the budget
// supports a probabilistic YES with error at most (1-ρw)^trials.
//
// Guessing a point costs O(m) and testing it O(m·k'), so a full run is
// O(d·m·k') with k' the alive count — the paper's headline complexity.
func RSPC(s subscription.Subscription, set []subscription.Subscription, alive []bool, trials int, rng *rand.Rand) RSPCOutcome {
	m := s.Len()
	point := make([]int64, m)
	for trial := 1; trial <= trials; trial++ {
		for a, b := range s.Bounds {
			point[a] = b.Lo + rng.Int64N(b.Hi-b.Lo+1)
		}
		if !pointInAnyAlive(point, set, alive) {
			witness := make([]int64, m)
			copy(witness, point)
			return RSPCOutcome{Witness: witness, Trials: trial}
		}
	}
	return RSPCOutcome{Trials: trials}
}

// pointInAnyAlive reports whether the point lies inside at least one
// alive subscription (nil alive means all).
func pointInAnyAlive(p []int64, set []subscription.Subscription, alive []bool) bool {
	for i := range set {
		if alive != nil && !alive[i] {
			continue
		}
		if set[i].ContainsPoint(p) {
			return true
		}
	}
	return false
}

// flatSet lays the alive subscriptions' bounds out as a flat
// struct-of-arrays — lo and hi as contiguous []int64, row-major — so
// the RSPC inner loop walks linear memory instead of chasing one
// bounds slice per subscription. Rows are additionally
//
//   - restricted to subscriptions that intersect s (a row disjoint
//     from s can never contain a point of s, so dropping it cannot
//     change any membership answer), and
//   - ordered by descending |row ∩ s|, so the rows most likely to
//     contain a uniform random point of s are tested first and the
//     expected early-exit comes sooner.
//
// Neither transform changes whether a point is a witness; only the
// constant factor of the search drops.
type flatSet struct {
	m    int
	rows int
	lo   []int64
	hi   []int64

	// sLo and sWidth cache the tested subscription's per-attribute
	// lower bounds and point counts, so drawing a uniform point is a
	// multiply-shift per attribute with no interval arithmetic.
	sLo    []int64
	sWidth []uint64

	idx  []int     // scratch: selected row indices during build
	keys []float64 // scratch: per-row ordering key, indexed by original row
}

// build populates the flat layout from the alive rows of set (nil
// alive means all rows). It reuses all backing storage.
func (f *flatSet) build(s subscription.Subscription, set []subscription.Subscription, alive []bool) {
	m := s.Len()
	f.m = m
	if cap(f.sLo) < m {
		f.sLo = make([]int64, m)
		f.sWidth = make([]uint64, m)
	} else {
		f.sLo = f.sLo[:m]
		f.sWidth = f.sWidth[:m]
	}
	for a, b := range s.Bounds {
		f.sLo[a] = b.Lo
		f.sWidth[a] = uint64(b.Hi-b.Lo) + 1
	}
	if cap(f.keys) < len(set) {
		f.keys = make([]float64, len(set))
	} else {
		f.keys = f.keys[:len(set)]
	}
	idx := f.idx[:0]
	for i := range set {
		if alive != nil && !alive[i] {
			continue
		}
		// Ordering key: the float64 product of the intersection's
		// per-attribute widths. Relative order is all that matters, so
		// overflow to +Inf for huge boxes merely collapses ties.
		size := 1.0
		empty := false
		for a, b := range set[i].Bounds {
			iv := b.Intersect(s.Bounds[a])
			if iv.IsEmpty() {
				empty = true
				break
			}
			size *= float64(iv.Hi-iv.Lo) + 1
		}
		if empty {
			continue
		}
		f.keys[i] = size
		idx = append(idx, i)
	}
	f.idx = idx
	slices.SortStableFunc(idx, func(a, b int) int { return cmp.Compare(f.keys[b], f.keys[a]) })

	f.rows = len(idx)
	n := f.rows * m
	if cap(f.lo) < n {
		f.lo = make([]int64, n)
		f.hi = make([]int64, n)
	} else {
		f.lo = f.lo[:n]
		f.hi = f.hi[:n]
	}
	for r, i := range idx {
		base := r * m
		for a, b := range set[i].Bounds {
			f.lo[base+a] = b.Lo
			f.hi[base+a] = b.Hi
		}
	}
}

// contains reports whether p lies inside at least one row.
func (f *flatSet) contains(p []int64) bool {
	m := f.m
	if len(p) < m {
		return false
	}
	p = p[:m]
	for base := 0; base+m <= len(f.lo); base += m {
		loRow := f.lo[base : base+m]
		hiRow := f.hi[base : base+m]
		inside := true
		for a, lo := range loRow {
			if v := p[a]; v < lo || v > hiRow[a] {
				inside = false
				break
			}
		}
		if inside {
			return true
		}
	}
	return false
}

// rspcFlat is RSPC against a prebuilt flat layout, writing guesses
// into the caller-owned point buffer. Points are drawn from a
// splitmix64 stream seeded with a single draw from the checker's PCG
// — decisions stay reproducible for a seeded checker, but the draw
// sequence is deliberately not RSPC's: splitmix64 advances in a
// handful of ALU ops, and the [0,width) mapping is a multiply-shift
// (Lemire) with no rejection loop, which together remove the RNG from
// the top of the hot-path profile. The mapping's modulo bias is below
// width/2^64 per attribute — orders of magnitude under any δ a caller
// can configure — and a found witness is still verified exactly by
// the membership test, so NO answers remain exact. The witness copy
// is the lone allocation, on the definite-NO path only.
func rspcFlat(s subscription.Subscription, f *flatSet, trials int, rng *rand.Rand, point []int64) RSPCOutcome {
	state := rng.Uint64()
	m := len(point)
	sLo := f.sLo[:m]
	sWidth := f.sWidth[:m]
	for trial := 1; trial <= trials; trial++ {
		for a, w := range sWidth {
			state += 0x9e3779b97f4a7c15
			z := state
			z ^= z >> 30
			z *= 0xbf58476d1ce4e5b9
			z ^= z >> 27
			z *= 0x94d049bb133111eb
			z ^= z >> 31
			if w == 0 {
				// Width 2^64 wrapped: the attribute spans the whole
				// int64 range, so any 64-bit value is a uniform draw.
				point[a] = int64(z)
				continue
			}
			hi, _ := bits.Mul64(z, w)
			point[a] = sLo[a] + int64(hi)
		}
		if !f.contains(point) {
			witness := make([]int64, len(point))
			copy(witness, point)
			return RSPCOutcome{Witness: witness, Trials: trial}
		}
	}
	return RSPCOutcome{Trials: trials}
}
