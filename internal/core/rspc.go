package core

import (
	"math/rand/v2"

	"probsum/internal/subscription"
)

// RSPCOutcome is the raw result of a Random-Simple-Predicates-Cover
// run (Algorithm 1).
type RSPCOutcome struct {
	// Witness is the point witness to non-cover, nil when none was
	// found within the trial budget.
	Witness []int64
	// Trials is the number of guesses performed: the index of the
	// successful guess, or the full budget when no witness was found.
	Trials int
}

// Found reports whether a point witness was discovered.
func (o RSPCOutcome) Found() bool { return o.Witness != nil }

// RSPC runs Algorithm 1: it guesses up to trials uniform random points
// inside s and returns the first that lies outside every alive
// subscription (a point witness to non-cover, Definition 4). A found
// witness makes the non-cover answer exact; exhausting the budget
// supports a probabilistic YES with error at most (1-ρw)^trials.
//
// Guessing a point costs O(m) and testing it O(m·k'), so a full run is
// O(d·m·k') with k' the alive count — the paper's headline complexity.
func RSPC(s subscription.Subscription, set []subscription.Subscription, alive []bool, trials int, rng *rand.Rand) RSPCOutcome {
	m := s.Len()
	point := make([]int64, m)
	for trial := 1; trial <= trials; trial++ {
		for a, b := range s.Bounds {
			point[a] = b.Lo + rng.Int64N(b.Hi-b.Lo+1)
		}
		if !pointInAnyAlive(point, set, alive) {
			witness := make([]int64, m)
			copy(witness, point)
			return RSPCOutcome{Witness: witness, Trials: trial}
		}
	}
	return RSPCOutcome{Trials: trials}
}

// pointInAnyAlive reports whether the point lies inside at least one
// alive subscription (nil alive means all).
func pointInAnyAlive(p []int64, set []subscription.Subscription, alive []bool) bool {
	for i := range set {
		if alive != nil && !alive[i] {
			continue
		}
		if set[i].ContainsPoint(p) {
			return true
		}
	}
	return false
}
