package core

import (
	"math/rand/v2"
	"testing"

	"probsum/internal/workload"
)

// TestCoveredIntoZeroAllocSteadyState pins the tentpole property of
// the hot path: once the checker's scratch and the reused Result have
// grown to the workload's high-water mark, a covered decision (the
// steady state of a broker absorbing redundant subscriptions) performs
// no heap allocations at all.
func TestCoveredIntoZeroAllocSteadyState(t *testing.T) {
	rng := rand.New(rand.NewPCG(101, 102))
	in := workload.RedundantCovering(rng, workload.Config{K: 100, M: 10})
	checker, err := NewChecker(WithSeed(1, 2), WithMaxTrials(200))
	if err != nil {
		t.Fatal(err)
	}
	var res Result
	// Warm up: grow every buffer.
	if err := checker.CoveredInto(&res, in.S, in.Set); err != nil {
		t.Fatal(err)
	}
	if !res.Decision.IsCovered() {
		t.Fatalf("warm-up decision = %v, want covered", res.Decision)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := checker.CoveredInto(&res, in.S, in.Set); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("CoveredInto steady state allocates %.1f allocs/op, want 0", allocs)
	}
}

// TestCoveredIntoNoCoverAllocBound keeps the definite-NO paths honest:
// they may allocate only to copy a witness out of the scratch, never
// to run the pipeline itself.
func TestCoveredIntoNoCoverAllocBound(t *testing.T) {
	rng := rand.New(rand.NewPCG(103, 104))
	in := workload.NonCover(rng, workload.Config{K: 100, M: 10}, 0.05)
	checker, err := NewChecker(WithSeed(3, 4))
	if err != nil {
		t.Fatal(err)
	}
	var res Result
	if err := checker.CoveredInto(&res, in.S, in.Set); err != nil {
		t.Fatal(err)
	}
	if res.Decision != NotCovered {
		t.Fatalf("decision = %v, want not-covered", res.Decision)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := checker.CoveredInto(&res, in.S, in.Set); err != nil {
			t.Fatal(err)
		}
	})
	// Witness materialization: the point slice or the polyhedron box
	// (bounds slice plus boxing), nothing more.
	if allocs > 3 {
		t.Fatalf("not-covered path allocates %.1f allocs/op, want <= 3 (witness copy only)", allocs)
	}
}

// TestCoveredIntoMatchesCovered locks the wrapper and the in-place
// variant to identical decision sequences: two checkers with the same
// seed, one driven through Covered and one through CoveredInto over
// the same instances, must agree on every field that defines the
// decision.
func TestCoveredIntoMatchesCovered(t *testing.T) {
	rng := rand.New(rand.NewPCG(105, 106))
	a, err := NewChecker(WithSeed(7, 8), WithMaxTrials(500))
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewChecker(WithSeed(7, 8), WithMaxTrials(500))
	if err != nil {
		t.Fatal(err)
	}
	var into Result
	for i := 0; i < 50; i++ {
		var in workload.Instance
		if i%2 == 0 {
			in = workload.RedundantCovering(rng, workload.Config{K: 40, M: 6})
		} else {
			in = workload.NonCover(rng, workload.Config{K: 40, M: 6}, 0.05)
		}
		got, err := a.Covered(in.S, in.Set)
		if err != nil {
			t.Fatal(err)
		}
		if err := b.CoveredInto(&into, in.S, in.Set); err != nil {
			t.Fatal(err)
		}
		if got.Decision != into.Decision || got.Reason != into.Reason ||
			got.CoveringRow != into.CoveringRow || got.ExecutedTrials != into.ExecutedTrials {
			t.Fatalf("instance %d: Covered=(%v,%v,row=%d,trials=%d) CoveredInto=(%v,%v,row=%d,trials=%d)",
				i, got.Decision, got.Reason, got.CoveringRow, got.ExecutedTrials,
				into.Decision, into.Reason, into.CoveringRow, into.ExecutedTrials)
		}
	}
}

// TestRSPCFlatWitnessExact verifies the NO-path guarantee survives the
// flat layout and the fast sampler: every point witness the pipeline
// reports must lie inside s and outside every member of the minimized
// cover set (by Proposition 4 the witness may legitimately fall inside
// a subscription MCS removed as redundant).
func TestRSPCFlatWitnessExact(t *testing.T) {
	rng := rand.New(rand.NewPCG(107, 108))
	// Fast paths and MCS off so non-cover is decided by RSPC alone,
	// not by the polyhedron witness or empty-MCS short-circuits.
	checker, err := NewChecker(WithSeed(9, 10), WithFastPaths(false), WithMCS(false))
	if err != nil {
		t.Fatal(err)
	}
	var res Result
	witnesses := 0
	for i := 0; i < 100; i++ {
		in := workload.NonCover(rng, workload.Config{K: 30, M: 4}, 0.10)
		if err := checker.CoveredInto(&res, in.S, in.Set); err != nil {
			t.Fatal(err)
		}
		if res.Reason != ReasonPointWitness {
			continue
		}
		witnesses++
		if !in.S.ContainsPoint(res.PointWitness) {
			t.Fatalf("instance %d: witness %v outside s %v", i, res.PointWitness, in.S)
		}
		// With MCS disabled the witness search ran over the full set,
		// so the witness must be outside every member.
		for j, sub := range in.Set {
			if sub.ContainsPoint(res.PointWitness) {
				t.Fatalf("instance %d: witness %v inside set[%d] %v", i, res.PointWitness, j, sub)
			}
		}
	}
	if witnesses == 0 {
		t.Fatal("no point witnesses produced; scenario lost its teeth")
	}
}
