package core

import (
	"sync"
	"sync/atomic"
)

// CheckerPool hands out Checkers to concurrent callers. A Checker is
// deliberately stateful — it owns a random stream and the reusable
// zero-allocation scratch — so it must never be shared between
// goroutines. The pool amortizes both costs: checkers returned with
// Put keep their warmed-up buffers for the next Get, and each checker
// created by the pool draws from an independent, reproducibly derived
// random stream (base seed mixed with a per-checker counter), so
// concurrent transports never contend on — or correlate through — a
// shared RNG.
type CheckerPool struct {
	pool sync.Pool
}

// NewCheckerPool builds a pool whose checkers are configured with
// opts. Checkers are seeded from seed combined with a strictly
// increasing creation counter, so no two checkers ever share a
// stream and each checker's stream is a deterministic function of
// (seed, creation index). Note that sync.Pool may drop idle checkers
// at GC, so WHICH stream serves a given Get is not reproducible
// across runs — use a single seeded Checker per goroutine when
// exact decision replay matters. An explicit WithSeed in opts would
// break stream independence and is overridden.
func NewCheckerPool(seed uint64, opts ...Option) (*CheckerPool, error) {
	// Validate the configuration once, eagerly, so Get never fails.
	if _, err := NewChecker(opts...); err != nil {
		return nil, err
	}
	var n atomic.Uint64
	p := &CheckerPool{}
	p.pool.New = func() any {
		i := n.Add(1)
		// splitmix64-style avalanche so consecutive counters produce
		// uncorrelated PCG seed pairs.
		mixed := (seed + i*0x9e3779b97f4a7c15) ^ (seed >> 31)
		withSeed := append(append([]Option(nil), opts...), WithSeed(mixed, i|1))
		c, err := NewChecker(withSeed...)
		if err != nil {
			// Unreachable: the configuration was validated above and
			// WithSeed cannot invalidate it.
			panic(err)
		}
		return c
	}
	return p, nil
}

// Get checks a checker out of the pool, creating one when empty.
func (p *CheckerPool) Get() *Checker { return p.pool.Get().(*Checker) }

// Put returns a checker for reuse. The checker must not be used after
// Put; its scratch buffers stay warm for the next Get.
func (p *CheckerPool) Put(c *Checker) {
	if c != nil {
		p.pool.Put(c)
	}
}
