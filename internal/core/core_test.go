package core

import (
	"errors"
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"probsum/internal/conflict"
	"probsum/internal/interval"
	"probsum/internal/subscription"
)

// Paper fixtures (Section 3 / 4.2).

func paperCoverExample() (subscription.Subscription, []subscription.Subscription) {
	s := subscription.New(interval.New(830, 870), interval.New(1003, 1006))
	s1 := subscription.New(interval.New(820, 850), interval.New(1001, 1007))
	s2 := subscription.New(interval.New(840, 880), interval.New(1002, 1009))
	return s, []subscription.Subscription{s1, s2}
}

func paperNonCoverExample() (subscription.Subscription, []subscription.Subscription) {
	s := subscription.New(interval.New(830, 890), interval.New(1003, 1006))
	s1 := subscription.New(interval.New(820, 850), interval.New(1002, 1009))
	s2 := subscription.New(interval.New(840, 870), interval.New(1001, 1007))
	return s, []subscription.Subscription{s1, s2}
}

func paperConflictFreeExample() (subscription.Subscription, []subscription.Subscription) {
	s := subscription.New(interval.New(830, 870), interval.New(1003, 1006))
	s1 := subscription.New(interval.New(820, 850), interval.New(1001, 1007))
	s2 := subscription.New(interval.New(840, 880), interval.New(1002, 1009))
	s3 := subscription.New(interval.New(810, 890), interval.New(1004, 1005))
	return s, []subscription.Subscription{s1, s2, s3}
}

func mustChecker(t *testing.T, opts ...Option) *Checker {
	t.Helper()
	c, err := NewChecker(opts...)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestExhaustiveCoverPaperExamples(t *testing.T) {
	s, set := paperCoverExample()
	got, err := ExhaustiveCover(s, set)
	if err != nil {
		t.Fatal(err)
	}
	if !got {
		t.Error("Table 3 example: s must be covered by s1 ∨ s2")
	}
	s, set = paperNonCoverExample()
	got, err = ExhaustiveCover(s, set)
	if err != nil {
		t.Fatal(err)
	}
	if got {
		t.Error("Table 6 example: s must not be covered")
	}
}

func TestExhaustiveCoverLimit(t *testing.T) {
	s := subscription.New(interval.New(0, 1<<30), interval.New(0, 1<<30))
	if _, err := ExhaustiveCover(s, nil); err == nil {
		t.Error("expected size-limit error")
	}
}

func TestCheckerPaperCoverExample(t *testing.T) {
	c := mustChecker(t, WithSeed(1, 2), WithErrorProbability(1e-6))
	s, set := paperCoverExample()
	res, err := c.Covered(s, set)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Decision.IsCovered() {
		t.Fatalf("decision = %v, want covered", res.Decision)
	}
	if res.Decision != CoveredProbably || res.Reason != ReasonTrialsExhausted {
		t.Errorf("expected probabilistic YES via exhausted trials, got %v/%v", res.Decision, res.Reason)
	}
	if res.ExecutedTrials == 0 {
		t.Error("expected at least one executed trial")
	}
}

func TestCheckerPaperNonCoverExample(t *testing.T) {
	c := mustChecker(t, WithSeed(1, 2))
	s, set := paperNonCoverExample()
	res, err := c.Covered(s, set)
	if err != nil {
		t.Fatal(err)
	}
	if res.Decision != NotCovered {
		t.Fatalf("decision = %v, want not-covered", res.Decision)
	}
	// The fast path should fire: sorted counts [1,2] dominate [1,2].
	if res.Reason != ReasonPolyhedronWitness {
		t.Errorf("reason = %v, want polyhedron-witness", res.Reason)
	}
	want := subscription.New(interval.New(871, 890), interval.New(1003, 1006))
	if !res.PolyhedronWitness.Equal(want) {
		t.Errorf("witness = %v, want %v", res.PolyhedronWitness, want)
	}
}

func TestCheckerPairwisePath(t *testing.T) {
	c := mustChecker(t, WithSeed(1, 2))
	s := subscription.New(interval.New(10, 20), interval.New(10, 20))
	small := subscription.New(interval.New(12, 14), interval.New(10, 20))
	big := subscription.New(interval.New(0, 100), interval.New(0, 100))
	res, err := c.Covered(s, []subscription.Subscription{small, big})
	if err != nil {
		t.Fatal(err)
	}
	if res.Decision != Covered || res.Reason != ReasonPairwiseCover {
		t.Fatalf("got %v/%v, want covered/pairwise-cover", res.Decision, res.Reason)
	}
	if res.CoveringRow != 1 {
		t.Errorf("covering row = %d, want 1", res.CoveringRow)
	}
}

func TestCheckerEmptySet(t *testing.T) {
	c := mustChecker(t, WithSeed(1, 2))
	s := subscription.New(interval.New(0, 5))
	res, err := c.Covered(s, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Decision != NotCovered {
		t.Errorf("empty set must not cover: %v", res.Decision)
	}
}

func TestCheckerUnsatisfiableSubscription(t *testing.T) {
	c := mustChecker(t)
	s := subscription.New(interval.Empty())
	if _, err := c.Covered(s, nil); !errors.Is(err, ErrUnsatisfiable) {
		t.Errorf("err = %v, want ErrUnsatisfiable", err)
	}
}

func TestCheckerOptionValidation(t *testing.T) {
	if _, err := NewChecker(WithErrorProbability(0)); err == nil {
		t.Error("delta=0 accepted")
	}
	if _, err := NewChecker(WithErrorProbability(1)); err == nil {
		t.Error("delta=1 accepted")
	}
	if _, err := NewChecker(WithMaxTrials(0)); err == nil {
		t.Error("maxTrials=0 accepted")
	}
}

func TestCheckerSeedReproducibility(t *testing.T) {
	s, set := paperNonCoverExample()
	run := func() Result {
		c := mustChecker(t, WithSeed(7, 9), WithFastPaths(false), WithMCS(false))
		res, err := c.Covered(s, set)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	r1, r2 := run(), run()
	if r1.ExecutedTrials != r2.ExecutedTrials {
		t.Errorf("trials differ: %d vs %d", r1.ExecutedTrials, r2.ExecutedTrials)
	}
	if len(r1.PointWitness) != len(r2.PointWitness) {
		t.Fatalf("witness shape differs")
	}
	for i := range r1.PointWitness {
		if r1.PointWitness[i] != r2.PointWitness[i] {
			t.Errorf("witness differs at %d", i)
		}
	}
}

func TestMCSPaperExample(t *testing.T) {
	// Section 4.2 worked example: MCS removes s3 (conflict-free
	// entries) and keeps {s1, s2}.
	s, set := paperConflictFreeExample()
	tbl, err := conflict.Build(s, set)
	if err != nil {
		t.Fatal(err)
	}
	res := MCS(tbl)
	if res.AliveCount != 2 || !res.Alive[0] || !res.Alive[1] || res.Alive[2] {
		t.Errorf("MCS alive = %v, want s1,s2 only", res.Alive)
	}
	want := []int{0, 1}
	got := res.Indices()
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("Indices = %v, want %v", got, want)
	}
	naive := MCSNaive(tbl)
	if naive.AliveCount != res.AliveCount {
		t.Errorf("naive disagreement: %v vs %v", naive.Alive, res.Alive)
	}
}

// genInstance builds a random instance over small domains so the
// exhaustive oracle stays cheap.
func genInstance(r *rand.Rand, m, k int, domain int64) (subscription.Subscription, []subscription.Subscription) {
	box := func(bias bool) subscription.Subscription {
		bounds := make([]interval.Interval, m)
		for a := range bounds {
			lo := r.Int64N(domain)
			width := r.Int64N(domain - lo)
			if bias {
				// Larger boxes make cover cases reachable.
				width = domain - lo - 1
				if width > 0 {
					width = r.Int64N(width) + 1
				}
			}
			bounds[a] = interval.New(lo, lo+width)
		}
		return subscription.Subscription{Bounds: bounds}
	}
	s := box(false)
	set := make([]subscription.Subscription, k)
	for i := range set {
		set[i] = box(true)
	}
	return s, set
}

func TestMCSMatchesNaive(t *testing.T) {
	cfg := &quick.Config{MaxCount: 400}
	f := func(seed1, seed2 uint64) bool {
		r := rand.New(rand.NewPCG(seed1, seed2))
		s, set := genInstance(r, 1+r.IntN(4), 1+r.IntN(10), 25)
		tbl, err := conflict.Build(s, set)
		if err != nil {
			return false
		}
		fast, slow := MCS(tbl), MCSNaive(tbl)
		if fast.AliveCount != slow.AliveCount {
			return false
		}
		for i := range fast.Alive {
			if fast.Alive[i] != slow.Alive[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestMCSPreservesCoverRelation(t *testing.T) {
	// Proposition 4: s ⊑ S iff s ⊑ S' where S' is the minimized set.
	cfg := &quick.Config{MaxCount: 200}
	f := func(seed1, seed2 uint64) bool {
		r := rand.New(rand.NewPCG(seed1, seed2))
		s, set := genInstance(r, 1+r.IntN(3), 1+r.IntN(8), 12)
		tbl, err := conflict.Build(s, set)
		if err != nil {
			return false
		}
		res := MCS(tbl)
		reduced := make([]subscription.Subscription, 0, res.AliveCount)
		for i, ok := range res.Alive {
			if ok {
				reduced = append(reduced, set[i])
			}
		}
		full, err := ExhaustiveCover(s, set)
		if err != nil {
			return false
		}
		mini, err := ExhaustiveCover(s, reduced)
		if err != nil {
			return false
		}
		return full == mini
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestCheckerSoundNo(t *testing.T) {
	// A NO from the checker is always exact: the oracle must agree.
	cfg := &quick.Config{MaxCount: 150}
	c := mustChecker(t, WithSeed(11, 13), WithErrorProbability(1e-9))
	f := func(seed1, seed2 uint64) bool {
		r := rand.New(rand.NewPCG(seed1, seed2))
		s, set := genInstance(r, 1+r.IntN(3), 1+r.IntN(8), 12)
		res, err := c.Covered(s, set)
		if err != nil {
			return false
		}
		truth, err := ExhaustiveCover(s, set)
		if err != nil {
			return false
		}
		if res.Decision == NotCovered && truth {
			return false // claimed NO on a covered instance
		}
		if res.Decision.IsCovered() && !truth {
			// Probabilistic false YES: permitted, but at δ=1e-9 over
			// tiny instances it should effectively never happen.
			t.Logf("false YES on s=%v set=%v", s, set)
			return false
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestCheckerWitnessesAreGenuine(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200}
	c := mustChecker(t, WithSeed(3, 5))
	f := func(seed1, seed2 uint64) bool {
		r := rand.New(rand.NewPCG(seed1, seed2))
		s, set := genInstance(r, 1+r.IntN(3), 1+r.IntN(8), 15)
		res, err := c.Covered(s, set)
		if err != nil || res.Decision != NotCovered {
			return err == nil
		}
		switch res.Reason {
		case ReasonPointWitness:
			if !s.ContainsPoint(res.PointWitness) {
				return false
			}
			// The point witnesses non-coverage of the MCS-reduced set;
			// Proposition 4 lifts that to the full set (soundness of
			// the overall NO is oracle-checked in TestCheckerSoundNo).
			// It may legitimately lie inside a removed redundant
			// subscription, so only the reduced set is asserted here.
			reduced := set
			if res.ReducedSet != nil {
				reduced = make([]subscription.Subscription, 0, len(res.ReducedSet))
				for _, idx := range res.ReducedSet {
					reduced = append(reduced, set[idx])
				}
			}
			for _, si := range reduced {
				if si.ContainsPoint(res.PointWitness) {
					return false
				}
			}
		case ReasonPolyhedronWitness:
			w := res.PolyhedronWitness
			if !w.IsSatisfiable() || !s.Covers(w) {
				return false
			}
			for _, si := range set {
				if w.Intersects(si) {
					return false
				}
			}
		case ReasonEmptyMCS:
			// Fine: soundness is covered by TestCheckerSoundNo.
		default:
			return false
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestCheckerAblationsAgreeWithOracle(t *testing.T) {
	// Disabling MCS and/or fast paths must not change soundness.
	cfg := &quick.Config{MaxCount: 80}
	checkers := []*Checker{
		mustChecker(t, WithSeed(1, 1), WithMCS(false), WithErrorProbability(1e-9)),
		mustChecker(t, WithSeed(2, 2), WithFastPaths(false), WithErrorProbability(1e-9)),
		mustChecker(t, WithSeed(3, 3), WithMCS(false), WithFastPaths(false), WithErrorProbability(1e-9)),
	}
	f := func(seed1, seed2 uint64) bool {
		r := rand.New(rand.NewPCG(seed1, seed2))
		s, set := genInstance(r, 1+r.IntN(3), 1+r.IntN(6), 10)
		truth, err := ExhaustiveCover(s, set)
		if err != nil {
			return false
		}
		for _, c := range checkers {
			res, err := c.Covered(s, set)
			if err != nil {
				return false
			}
			if res.Decision == NotCovered && truth {
				return false
			}
			if res.Decision.IsCovered() && !truth {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestRSPCWitnessIsGenuine(t *testing.T) {
	cfg := &quick.Config{MaxCount: 300}
	rng := rand.New(rand.NewPCG(5, 8))
	f := func(seed1, seed2 uint64) bool {
		r := rand.New(rand.NewPCG(seed1, seed2))
		s, set := genInstance(r, 1+r.IntN(3), 1+r.IntN(6), 20)
		out := RSPC(s, set, nil, 50, rng)
		if !out.Found() {
			return out.Trials == 50
		}
		if out.Trials < 1 || out.Trials > 50 {
			return false
		}
		if !s.ContainsPoint(out.Witness) {
			return false
		}
		for _, si := range set {
			if si.ContainsPoint(out.Witness) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestTrialBoundInvertsEquationOne(t *testing.T) {
	// δ = (1-ρ)^d must hold after rounding d up.
	for _, rho := range []float64{0.5, 0.1, 0.01, 1e-4} {
		for _, delta := range []float64{1e-3, 1e-6, 1e-10} {
			d := TrialBound(delta, math.Log(rho))
			achieved := math.Pow(1-rho, d)
			if achieved > delta*1.0001 {
				t.Errorf("rho=%g delta=%g: d=%g achieves %g", rho, delta, d, achieved)
			}
			// One fewer trial must not suffice (d is tight).
			if d > 1 {
				if under := math.Pow(1-rho, d-1); under < delta*0.9999 {
					t.Errorf("rho=%g delta=%g: d=%g not tight (%g)", rho, delta, d, under)
				}
			}
		}
	}
}

func TestTrialBoundEdgeCases(t *testing.T) {
	if d := TrialBound(1e-6, math.Log(1.0)); d != 1 {
		t.Errorf("rho=1: d=%g, want 1", d)
	}
	if d := TrialBound(1e-6, math.Inf(-1)); !math.IsInf(d, 1) {
		t.Errorf("rho=0: d=%g, want +Inf", d)
	}
	if d := TrialBound(1, math.Log(0.5)); d != 1 {
		t.Errorf("delta>=1: d=%g, want 1", d)
	}
}

func TestLog10TrialBoundMatchesDirect(t *testing.T) {
	for _, rho := range []float64{0.3, 1e-3, 1e-6, 1e-10} {
		for _, delta := range []float64{1e-3, 1e-10} {
			direct := math.Log10(TrialBound(delta, math.Log(rho)))
			viaLog := Log10TrialBound(delta, math.Log(rho))
			if math.Abs(direct-viaLog) > 0.01 {
				t.Errorf("rho=%g delta=%g: direct=%g log-form=%g", rho, delta, direct, viaLog)
			}
		}
	}
	// Extreme exponent that overflows the direct form.
	logRho := -200.0 // rho = e^-200
	got := Log10TrialBound(1e-10, logRho)
	want := math.Log10(-math.Log(1e-10)) - logRho/ln10
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("extreme exponent: got %g, want %g", got, want)
	}
}

func TestEstimateRhoPaperNonCover(t *testing.T) {
	// For the Table 6 example: on x1 the minimum gap over entries is
	// min(width=61, s1.high gap = 890-850 = 40, s2.low gap = 840-830 = 10,
	// s2.high gap = 890-870 = 20) = 10; on x2 no entries, so the full
	// width 4 is used. I(sw) = 10*4 = 40, I(s) = 61*4 = 244.
	s, set := paperNonCoverExample()
	tbl, err := conflict.Build(s, set)
	if err != nil {
		t.Fatal(err)
	}
	rho := EstimateRho(tbl, nil)
	want := 40.0 / 244.0
	if math.Abs(rho-want) > 1e-12 {
		t.Errorf("rho = %g, want %g", rho, want)
	}
}

func TestEstimateRhoRespectsAliveMask(t *testing.T) {
	s, set := paperNonCoverExample()
	tbl, err := conflict.Build(s, set)
	if err != nil {
		t.Fatal(err)
	}
	// With only s1 alive, x1 min gap = 40 (s1's high entry), so
	// rho = (40*4)/(61*4).
	alive := []bool{true, false}
	rho := EstimateRho(tbl, alive)
	want := 40.0 / 61.0
	if math.Abs(rho-want) > 1e-12 {
		t.Errorf("rho = %g, want %g", rho, want)
	}
}

func TestDecisionAndReasonStrings(t *testing.T) {
	for d, want := range map[Decision]string{
		NotCovered:      "not-covered",
		Covered:         "covered",
		CoveredProbably: "covered-probably",
		Decision(99):    "unknown",
	} {
		if got := d.String(); got != want {
			t.Errorf("Decision(%d).String() = %q, want %q", d, got, want)
		}
	}
	for r, want := range map[Reason]string{
		ReasonPairwiseCover:     "pairwise-cover",
		ReasonPolyhedronWitness: "polyhedron-witness",
		ReasonEmptyMCS:          "empty-mcs",
		ReasonPointWitness:      "point-witness",
		ReasonTrialsExhausted:   "trials-exhausted",
		Reason(99):              "unknown",
	} {
		if got := r.String(); got != want {
			t.Errorf("Reason(%d).String() = %q, want %q", r, got, want)
		}
	}
	if NotCovered.IsCovered() || !Covered.IsCovered() || !CoveredProbably.IsCovered() {
		t.Error("IsCovered misclassifies")
	}
}
