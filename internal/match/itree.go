package match

import (
	"sort"

	"probsum/internal/interval"
)

// entry is an interval tagged with the position of its subscription in
// the owning index.
type entry struct {
	iv  interval.Interval
	sub int
}

// itreeNode is a node of a centered (Edelsbrunner) interval tree:
// intervals strictly below the center live in the left subtree,
// strictly above in the right, and intervals crossing the center are
// stored twice — sorted by ascending Lo and by descending Hi — so a
// stabbing query scans only the prefix that can contain the point.
type itreeNode struct {
	center      int64
	left, right *itreeNode
	byLo        []entry // crossing intervals, ascending Lo
	byHi        []entry // crossing intervals, descending Hi
}

// buildITree constructs the tree in O(n log n).
func buildITree(entries []entry) *itreeNode {
	if len(entries) == 0 {
		return nil
	}
	// Median of endpoint values keeps the tree balanced.
	endpoints := make([]int64, 0, 2*len(entries))
	for _, e := range entries {
		endpoints = append(endpoints, e.iv.Lo, e.iv.Hi)
	}
	sort.Slice(endpoints, func(i, j int) bool { return endpoints[i] < endpoints[j] })
	center := endpoints[len(endpoints)/2]

	node := &itreeNode{center: center}
	var left, right []entry
	for _, e := range entries {
		switch {
		case e.iv.Hi < center:
			left = append(left, e)
		case e.iv.Lo > center:
			right = append(right, e)
		default:
			node.byLo = append(node.byLo, e)
		}
	}
	// Guard against degenerate splits (all intervals crossing is fine;
	// all intervals on one side of their own median cannot happen since
	// the median endpoint belongs to some interval).
	node.byHi = make([]entry, len(node.byLo))
	copy(node.byHi, node.byLo)
	sort.Slice(node.byLo, func(i, j int) bool { return node.byLo[i].iv.Lo < node.byLo[j].iv.Lo })
	sort.Slice(node.byHi, func(i, j int) bool { return node.byHi[i].iv.Hi > node.byHi[j].iv.Hi })
	node.left = buildITree(left)
	node.right = buildITree(right)
	return node
}

// stab appends to out the sub positions of every interval containing v.
func (n *itreeNode) stab(v int64, out []int) []int {
	for n != nil {
		switch {
		case v < n.center:
			// Crossing intervals contain v iff their Lo <= v.
			for _, e := range n.byLo {
				if e.iv.Lo > v {
					break
				}
				out = append(out, e.sub)
			}
			n = n.left
		case v > n.center:
			// Crossing intervals contain v iff their Hi >= v.
			for _, e := range n.byHi {
				if e.iv.Hi < v {
					break
				}
				out = append(out, e.sub)
			}
			n = n.right
		default:
			// v == center: every crossing interval contains it.
			for _, e := range n.byLo {
				out = append(out, e.sub)
			}
			return out
		}
	}
	return out
}
