package match

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"probsum/internal/interval"
)

func TestITreeEmpty(t *testing.T) {
	if tree := buildITree(nil); tree != nil {
		t.Error("empty input should build a nil tree")
	}
	var n *itreeNode
	if got := n.stab(5, nil); len(got) != 0 {
		t.Errorf("stab on nil tree = %v", got)
	}
}

func TestITreeSingleAndPointIntervals(t *testing.T) {
	entries := []entry{
		{iv: interval.Point(5), sub: 0},
		{iv: interval.Point(5), sub: 1}, // duplicate point interval
		{iv: interval.New(3, 7), sub: 2},
		{iv: interval.New(9, 9), sub: 3},
	}
	tree := buildITree(entries)
	tests := []struct {
		v    int64
		want []int
	}{
		{v: 5, want: []int{0, 1, 2}},
		{v: 3, want: []int{2}},
		{v: 9, want: []int{3}},
		{v: 8, want: nil},
		{v: -100, want: nil},
	}
	for _, tc := range tests {
		got := tree.stab(tc.v, nil)
		gotSet := make(map[int]bool, len(got))
		for _, s := range got {
			gotSet[s] = true
		}
		if len(got) != len(tc.want) {
			t.Errorf("stab(%d) = %v, want %v", tc.v, got, tc.want)
			continue
		}
		for _, w := range tc.want {
			if !gotSet[w] {
				t.Errorf("stab(%d) = %v, missing %d", tc.v, got, w)
			}
		}
	}
}

func TestITreeMatchesLinearScan(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200}
	f := func(seed1, seed2 uint64) bool {
		r := rand.New(rand.NewPCG(seed1, seed2))
		n := 1 + r.IntN(60)
		entries := make([]entry, n)
		for i := range entries {
			lo := r.Int64N(100)
			entries[i] = entry{iv: interval.New(lo, lo+r.Int64N(100-lo)), sub: i}
		}
		tree := buildITree(entries)
		for probe := 0; probe < 30; probe++ {
			v := r.Int64N(120) - 10
			got := map[int]bool{}
			for _, s := range tree.stab(v, nil) {
				if got[s] {
					return false // duplicate report
				}
				got[s] = true
			}
			for _, e := range entries {
				if e.iv.Contains(v) != got[e.sub] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestITreeDeepSkewedInput(t *testing.T) {
	// Nested intervals force everything to cross high-level centers;
	// disjoint staircases force deep recursion. Both must stay correct.
	var nested, stairs []entry
	for i := 0; i < 200; i++ {
		nested = append(nested, entry{iv: interval.New(int64(i), int64(400-i)), sub: i})
		stairs = append(stairs, entry{iv: interval.New(int64(2*i), int64(2*i)), sub: i})
	}
	nt := buildITree(nested)
	if got := nt.stab(200, nil); len(got) != 200 {
		t.Errorf("nested stab(200) found %d of 200", len(got))
	}
	if got := nt.stab(0, nil); len(got) != 1 {
		t.Errorf("nested stab(0) found %d, want 1", len(got))
	}
	st := buildITree(stairs)
	for _, v := range []int64{0, 100, 398} {
		if got := st.stab(v, nil); len(got) != 1 {
			t.Errorf("stairs stab(%d) found %d, want 1", v, len(got))
		}
	}
	if got := st.stab(399, nil); len(got) != 0 {
		t.Errorf("stairs stab(399) found %d, want 0", len(got))
	}
}
