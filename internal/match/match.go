// Package match implements publication-to-subscription matching, the
// hot path of a content-based broker. Three matchers are provided:
//
//   - BruteForce: O(k·m) linear scan, the correctness oracle.
//   - CountingIndex: the counting algorithm of Yan & García-Molina
//     (the paper's reference [18], the basis of "all existing
//     deterministic algorithms"): each non-trivial predicate is indexed
//     once; a publication match increments a per-subscription counter
//     and a subscription fires when all its non-trivial predicates hit.
//   - Per-attribute centered interval trees answer the stabbing queries
//     in O(log k + out).
//
// Algorithm 5 of the paper (two-phase matching against uncovered, then
// covered subscriptions) is implemented in package store on top of
// these matchers.
package match

import (
	"probsum/internal/subscription"
)

// ID identifies a subscription within a matcher.
type ID int64

// Matcher finds the subscriptions matching a publication.
type Matcher interface {
	// Match returns the IDs of all subscriptions containing the point,
	// in ascending order.
	Match(p subscription.Publication) []ID
	// Len returns the number of indexed subscriptions.
	Len() int
}

// BruteForce is a dynamic matcher that scans every subscription. The
// zero value is ready to use.
type BruteForce struct {
	ids  []ID
	subs []subscription.Subscription
	pos  map[ID]int
}

var _ Matcher = (*BruteForce)(nil)

// Add indexes a subscription under id, replacing any previous entry.
func (b *BruteForce) Add(id ID, s subscription.Subscription) {
	if b.pos == nil {
		b.pos = make(map[ID]int)
	}
	if i, ok := b.pos[id]; ok {
		b.subs[i] = s
		return
	}
	b.pos[id] = len(b.ids)
	b.ids = append(b.ids, id)
	b.subs = append(b.subs, s)
}

// Remove drops the subscription with the given id, if present.
func (b *BruteForce) Remove(id ID) {
	i, ok := b.pos[id]
	if !ok {
		return
	}
	last := len(b.ids) - 1
	b.ids[i] = b.ids[last]
	b.subs[i] = b.subs[last]
	b.pos[b.ids[i]] = i
	b.ids = b.ids[:last]
	b.subs = b.subs[:last]
	delete(b.pos, id)
}

// Match implements Matcher.
func (b *BruteForce) Match(p subscription.Publication) []ID {
	var out []ID
	for i, s := range b.subs {
		if s.Matches(p) {
			out = append(out, b.ids[i])
		}
	}
	sortIDs(out)
	return out
}

// Len implements Matcher.
func (b *BruteForce) Len() int { return len(b.ids) }

// sortIDs sorts a small ID slice in place (insertion sort: match
// result sets are short and mostly ordered already).
func sortIDs(ids []ID) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
}
