package match

import (
	"math/rand/v2"
	"slices"
	"testing"

	"probsum/internal/interval"
	"probsum/internal/subscription"
)

// TestITreeIndexCrossCheck churns a dynamic interval-tree index and
// cross-checks every Match against both the brute-force scan and a
// CountingIndex rebuilt from the same snapshot (the counting algorithm
// is the paper's deterministic reference [18]).
func TestITreeIndexCrossCheck(t *testing.T) {
	const m = 3
	rng := rand.New(rand.NewPCG(3, 4))
	schema := subscription.UniformSchema(m, 0, 999)
	randomSub := func() subscription.Subscription {
		bounds := make([]interval.Interval, m)
		for a := range bounds {
			lo := rng.Int64N(900)
			bounds[a] = interval.New(lo, lo+rng.Int64N(1000-lo))
		}
		return subscription.Subscription{Bounds: bounds}
	}

	idx := NewITreeIndex()
	var bf BruteForce
	live := map[ID]subscription.Subscription{}
	next := ID(0)
	for step := 0; step < 60; step++ {
		// Mutate: a few adds, sometimes a removal or replacement.
		for i := 0; i < 1+rng.IntN(20); i++ {
			next++
			s := randomSub()
			idx.Add(next, s)
			bf.Add(next, s)
			live[next] = s
		}
		if len(live) > 0 && rng.IntN(2) == 0 {
			for id := range live {
				idx.Remove(id)
				bf.Remove(id)
				delete(live, id)
				break
			}
		}
		if len(live) > 0 && rng.IntN(3) == 0 {
			for id := range live {
				s := randomSub()
				idx.Add(id, s) // replacement
				bf.Add(id, s)
				live[id] = s
				break
			}
		}
		if idx.Len() != len(live) {
			t.Fatalf("step %d: Len = %d, want %d", step, idx.Len(), len(live))
		}

		ids := make([]ID, 0, len(live))
		for id := range live {
			ids = append(ids, id)
		}
		slices.Sort(ids)
		subs := make([]subscription.Subscription, len(ids))
		for i, id := range ids {
			subs[i] = live[id]
		}
		counting, err := NewCountingIndex(schema, ids, subs)
		if err != nil {
			t.Fatal(err)
		}
		for probe := 0; probe < 20; probe++ {
			vals := make([]int64, m)
			for a := range vals {
				vals[a] = rng.Int64N(1000)
			}
			p := subscription.Publication{Values: vals}
			got := idx.Match(p)
			if want := bf.Match(p); !slices.Equal(got, want) {
				t.Fatalf("step %d: itree %v, brute force %v", step, got, want)
			}
			if want := counting.Match(p); !slices.Equal(got, want) {
				t.Fatalf("step %d: itree %v, counting %v", step, got, want)
			}
		}
	}
}

// TestITreeIndexMixedSchemas pins the bucketing: subscriptions with
// different attribute counts coexist, and a publication consults only
// its own arity — the same contract as Subscription.Matches.
func TestITreeIndexMixedSchemas(t *testing.T) {
	idx := NewITreeIndex()
	idx.Add(1, subscription.New(interval.New(0, 10)))
	idx.Add(2, subscription.New(interval.New(0, 10), interval.New(0, 10)))
	idx.Add(3, subscription.New(interval.New(5, 20)))

	if got := idx.Match(subscription.NewPublication(7)); !slices.Equal(got, []ID{1, 3}) {
		t.Fatalf("1-D match = %v, want [1 3]", got)
	}
	if got := idx.Match(subscription.NewPublication(7, 7)); !slices.Equal(got, []ID{2}) {
		t.Fatalf("2-D match = %v, want [2]", got)
	}
	if got := idx.Match(subscription.NewPublication(7, 7, 7)); got != nil {
		t.Fatalf("3-D match = %v, want nil", got)
	}
	idx.Remove(1)
	idx.Remove(99) // absent: no-op
	if got := idx.Match(subscription.NewPublication(7)); !slices.Equal(got, []ID{3}) {
		t.Fatalf("after remove = %v, want [3]", got)
	}
}

// TestITreeIndexEmptyBounds guards the buildITree precondition: a
// subscription with an empty bound (lo > hi) must be tolerated — it
// matches nothing — not recurse the tree builder to death. The broker
// feeds this index unvalidated wire input, so this is a hostile-input
// test, covering CountingIndex the same way.
func TestITreeIndexEmptyBounds(t *testing.T) {
	idx := NewITreeIndex()
	idx.Add(1, subscription.New(interval.New(0, 100)))
	idx.Add(2, subscription.New(interval.Empty())) // lo > hi
	if got := idx.Match(subscription.NewPublication(7)); !slices.Equal(got, []ID{1}) {
		t.Fatalf("Match = %v, want [1]", got)
	}
	if !idx.MatchAny(subscription.NewPublication(7)) {
		t.Fatal("MatchAny missed the satisfiable subscription")
	}
	if idx.Len() != 2 {
		t.Fatalf("Len = %d, want 2 (stored, even if unmatchable)", idx.Len())
	}

	schema := subscription.UniformSchema(1, 0, 100)
	counting, err := NewCountingIndex(schema,
		[]ID{1, 2},
		[]subscription.Subscription{
			subscription.New(interval.New(0, 100)),
			subscription.New(interval.Empty()),
		})
	if err != nil {
		t.Fatal(err)
	}
	if got := counting.Match(subscription.NewPublication(7)); !slices.Equal(got, []ID{1}) {
		t.Fatalf("counting Match = %v, want [1]", got)
	}
}

// TestITreeIndexMatchAny cross-checks the existence query against the
// full Match over random churn.
func TestITreeIndexMatchAny(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 10))
	idx := NewITreeIndex()
	for i := 0; i < 200; i++ {
		lo := rng.Int64N(900)
		idx.Add(ID(i), subscription.New(
			interval.New(lo, lo+rng.Int64N(60)),
			interval.New(0, 999), // hull-spanning on the second attribute
		))
	}
	for probe := 0; probe < 300; probe++ {
		p := subscription.NewPublication(rng.Int64N(1000), rng.Int64N(1000))
		if got, want := idx.MatchAny(p), len(idx.Match(p)) > 0; got != want {
			t.Fatalf("MatchAny(%v) = %v, Match says %v", p, got, want)
		}
	}
}
