package match

import (
	"fmt"

	"probsum/internal/subscription"
)

// CountingIndex is a static counting-algorithm matcher built from a
// snapshot of subscriptions. Predicates equal to the attribute's full
// domain are not indexed: a subscription matches when its counter
// reaches its number of non-trivial predicates, and subscriptions with
// no non-trivial predicate match every publication. Rebuild the index
// (or wrap it in store.Store, which rebuilds lazily) when the set
// changes.
type CountingIndex struct {
	ids      []ID
	required []int // non-trivial predicate count per subscription
	trees    []*itreeNode
	matchAll []int // positions with zero non-trivial predicates
	counts   []int // scratch, reused across Match calls
	stamp    []uint32
	epoch    uint32
}

var _ Matcher = (*CountingIndex)(nil)

// NewCountingIndex builds the index for the given subscriptions over
// the schema's domains. IDs and subs must be parallel slices.
func NewCountingIndex(schema *subscription.Schema, ids []ID, subs []subscription.Subscription) (*CountingIndex, error) {
	if len(ids) != len(subs) {
		return nil, fmt.Errorf("match: %d ids but %d subscriptions", len(ids), len(subs))
	}
	m := schema.Len()
	idx := &CountingIndex{
		ids:      append([]ID(nil), ids...),
		required: make([]int, len(subs)),
		trees:    make([]*itreeNode, m),
		counts:   make([]int, len(subs)),
		stamp:    make([]uint32, len(subs)),
	}
	perAttr := make([][]entry, m)
	for i, s := range subs {
		if s.Len() != m {
			return nil, fmt.Errorf("match: subscription %d has %d attributes, want %d: %w",
				i, s.Len(), m, subscription.ErrSchemaMismatch)
		}
		if !s.IsSatisfiable() {
			// An empty bound matches nothing: keep the subscription out
			// of the trees (buildITree requires non-empty intervals)
			// with a counter target it can never reach.
			idx.required[i] = -1
			continue
		}
		for a, b := range s.Bounds {
			if b.ContainsInterval(schema.Domain(a)) {
				continue // trivial predicate: matches everything
			}
			perAttr[a] = append(perAttr[a], entry{iv: b, sub: i})
			idx.required[i]++
		}
		if idx.required[i] == 0 {
			idx.matchAll = append(idx.matchAll, i)
		}
	}
	for a := range perAttr {
		idx.trees[a] = buildITree(perAttr[a])
	}
	return idx, nil
}

// Match implements Matcher in O(m·log k + hits).
func (c *CountingIndex) Match(p subscription.Publication) []ID {
	if len(p.Values) != len(c.trees) {
		return nil
	}
	c.epoch++
	if c.epoch == 0 { // wrapped: reset stamps
		for i := range c.stamp {
			c.stamp[i] = 0
		}
		c.epoch = 1
	}
	var out []ID
	var hits []int
	for a, tree := range c.trees {
		hits = tree.stab(p.Values[a], hits[:0])
		for _, sub := range hits {
			if c.stamp[sub] != c.epoch {
				c.stamp[sub] = c.epoch
				c.counts[sub] = 0
			}
			c.counts[sub]++
			if c.counts[sub] == c.required[sub] {
				out = append(out, c.ids[sub])
			}
		}
	}
	for _, sub := range c.matchAll {
		out = append(out, c.ids[sub])
	}
	sortIDs(out)
	return out
}

// Len implements Matcher.
func (c *CountingIndex) Len() int { return len(c.ids) }
