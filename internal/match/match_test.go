package match

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"probsum/internal/interval"
	"probsum/internal/subscription"
)

func TestBruteForceAddRemove(t *testing.T) {
	var b BruteForce
	s1 := subscription.New(interval.New(0, 10), interval.New(0, 10))
	s2 := subscription.New(interval.New(5, 15), interval.New(5, 15))
	b.Add(1, s1)
	b.Add(2, s2)
	if b.Len() != 2 {
		t.Fatalf("Len = %d", b.Len())
	}
	p := subscription.NewPublication(7, 7)
	got := b.Match(p)
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("Match = %v, want [1 2]", got)
	}
	b.Remove(1)
	got = b.Match(p)
	if len(got) != 1 || got[0] != 2 {
		t.Errorf("after Remove: Match = %v, want [2]", got)
	}
	b.Remove(99) // no-op
	if b.Len() != 1 {
		t.Errorf("Len = %d after removing unknown id", b.Len())
	}
	// Replacing an existing id updates in place.
	b.Add(2, s1)
	if b.Len() != 1 {
		t.Errorf("Len = %d after replace", b.Len())
	}
	if got := b.Match(subscription.NewPublication(0, 0)); len(got) != 1 || got[0] != 2 {
		t.Errorf("replaced subscription not matching: %v", got)
	}
}

func TestCountingIndexTrivialPredicates(t *testing.T) {
	schema := subscription.UniformSchema(2, 0, 99)
	everything := subscription.FullOver(schema)
	constrained := subscription.New(interval.New(10, 20), schema.Domain(1))
	idx, err := NewCountingIndex(schema, []ID{1, 2}, []subscription.Subscription{everything, constrained})
	if err != nil {
		t.Fatal(err)
	}
	got := idx.Match(subscription.NewPublication(15, 50))
	if len(got) != 2 {
		t.Fatalf("Match = %v, want both", got)
	}
	got = idx.Match(subscription.NewPublication(50, 50))
	if len(got) != 1 || got[0] != 1 {
		t.Errorf("Match = %v, want only the unconstrained subscription", got)
	}
}

func TestCountingIndexErrors(t *testing.T) {
	schema := subscription.UniformSchema(2, 0, 99)
	if _, err := NewCountingIndex(schema, []ID{1}, nil); err == nil {
		t.Error("expected parallel-slice error")
	}
	bad := subscription.New(interval.New(0, 5))
	if _, err := NewCountingIndex(schema, []ID{1}, []subscription.Subscription{bad}); err == nil {
		t.Error("expected arity error")
	}
}

func TestCountingIndexWrongArityPublication(t *testing.T) {
	schema := subscription.UniformSchema(2, 0, 99)
	idx, err := NewCountingIndex(schema, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := idx.Match(subscription.NewPublication(1)); got != nil {
		t.Errorf("Match with wrong arity = %v, want nil", got)
	}
}

// genWorkload builds a random subscription population where roughly a
// third of the predicates are trivial (full domain), mimicking the
// paper's partially specified subscriptions.
func genWorkload(r *rand.Rand, schema *subscription.Schema, k int) []subscription.Subscription {
	m := schema.Len()
	subs := make([]subscription.Subscription, k)
	for i := range subs {
		bounds := make([]interval.Interval, m)
		for a := 0; a < m; a++ {
			dom := schema.Domain(a)
			if r.IntN(3) == 0 {
				bounds[a] = dom
				continue
			}
			lo := dom.Lo + r.Int64N(dom.Count())
			hi := lo + r.Int64N(dom.Hi-lo+1)
			bounds[a] = interval.New(lo, hi)
		}
		subs[i] = subscription.Subscription{Bounds: bounds}
	}
	return subs
}

func TestCountingIndexMatchesBruteForce(t *testing.T) {
	cfg := &quick.Config{MaxCount: 120}
	f := func(seed1, seed2 uint64) bool {
		r := rand.New(rand.NewPCG(seed1, seed2))
		m := 1 + r.IntN(4)
		schema := subscription.UniformSchema(m, 0, 60)
		k := 1 + r.IntN(40)
		subs := genWorkload(r, schema, k)
		ids := make([]ID, k)
		var brute BruteForce
		for i := range subs {
			ids[i] = ID(i + 1)
			brute.Add(ids[i], subs[i])
		}
		idx, err := NewCountingIndex(schema, ids, subs)
		if err != nil {
			return false
		}
		for trial := 0; trial < 40; trial++ {
			vals := make([]int64, m)
			for a := range vals {
				vals[a] = r.Int64N(61)
			}
			p := subscription.Publication{Values: vals}
			want := brute.Match(p)
			got := idx.Match(p)
			if len(want) != len(got) {
				t.Logf("mismatch: got %v want %v for %v", got, want, p)
				return false
			}
			for i := range want {
				if want[i] != got[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestCountingIndexEpochReuse(t *testing.T) {
	// Repeated Match calls must not leak counter state across calls.
	schema := subscription.UniformSchema(2, 0, 9)
	s := subscription.New(interval.New(0, 4), interval.New(0, 4))
	idx, err := NewCountingIndex(schema, []ID{1}, []subscription.Subscription{s})
	if err != nil {
		t.Fatal(err)
	}
	inside := subscription.NewPublication(2, 2)
	half := subscription.NewPublication(2, 9) // only x1 predicate hits
	for i := 0; i < 100; i++ {
		if got := idx.Match(half); len(got) != 0 {
			t.Fatalf("iteration %d: half-matching publication matched: %v", i, got)
		}
	}
	if got := idx.Match(inside); len(got) != 1 {
		t.Fatalf("inside publication missed: %v", got)
	}
}

func TestSortIDs(t *testing.T) {
	ids := []ID{5, 1, 4, 1, 3}
	sortIDs(ids)
	want := []ID{1, 1, 3, 4, 5}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("sortIDs = %v", ids)
		}
	}
}
