package match

import (
	"sort"
	"sync"

	"probsum/internal/interval"
	"probsum/internal/subscription"
)

// ITreeIndex is a dynamic matcher over the per-attribute centered
// interval trees: Add and Remove mark the index dirty, and the next
// Match rebuilds the trees lazily, so maintenance is O(1) per change
// and the O(k log k) rebuild is amortized over the publications
// between changes — the broker regime, where publications far
// outnumber subscription churn.
//
// Unlike CountingIndex it needs no schema, yet it keeps the counting
// algorithm's trivial-predicate optimization by inferring a
// pseudo-domain: per attribute, the HULL of the indexed predicates. A
// predicate spanning the whole hull is satisfied by every point any
// predicate on that attribute can accept, so it is exact to leave it
// un-indexed and count it as pre-satisfied — provided the query value
// lies inside the hull; a value outside the hull is outside every
// predicate on that attribute (all are within the hull), so the whole
// bucket misses. On realistic workloads most predicates are the
// unconstrained full domain, which the hull test recovers without
// being told the domain.
//
// Subscriptions are bucketed by attribute count, so sets fed from
// mixed schemas stay matchable: a publication consults only the
// bucket with its own attribute count, mirroring Subscription.Matches
// (which rejects on length mismatch).
//
// All methods are safe for concurrent use. Match and MatchAny run in
// parallel with each other: a bucket's tree structure is immutable
// after its rebuild, and the counting-stab scratch is drawn from a
// per-bucket pool, so concurrent stabs never share state. Add and
// Remove only mark the index dirty under the write lock; the rebuild
// itself happens inside whichever Match observes the dirty flag
// first, with later readers either waiting on the lock or stabbing
// the previous (still-valid) generation they already hold.
type ITreeIndex struct {
	mu      sync.RWMutex
	subs    map[ID]subscription.Subscription
	dirty   bool
	buckets map[int]*itreeBucket
}

// itreeBucket matches subscriptions of one attribute count. Every
// field except the scratch pool is immutable once the rebuild that
// created the bucket returns.
type itreeBucket struct {
	ids      []ID
	hulls    []interval.Interval // per-attribute hull of all predicates
	trees    []*itreeNode        // non-hull-spanning predicates only
	required []int               // indexed-predicate count per position
	matchAll []int               // positions with zero indexed predicates
	scratch  sync.Pool           // *stabScratch sized for this bucket
}

// stabScratch is the per-call state of the counting stab loop.
type stabScratch struct {
	counts []int
	stamp  []uint32
	epoch  uint32
	hits   []int
}

var _ Matcher = (*ITreeIndex)(nil)

// NewITreeIndex returns an empty dynamic matcher.
func NewITreeIndex() *ITreeIndex {
	return &ITreeIndex{subs: make(map[ID]subscription.Subscription)}
}

// Add indexes a subscription under id, replacing any previous entry.
func (x *ITreeIndex) Add(id ID, s subscription.Subscription) {
	x.mu.Lock()
	x.subs[id] = s
	x.dirty = true
	x.mu.Unlock()
}

// Remove drops the subscription with the given id, if present.
func (x *ITreeIndex) Remove(id ID) {
	x.mu.Lock()
	if _, ok := x.subs[id]; ok {
		delete(x.subs, id)
		x.dirty = true
	}
	x.mu.Unlock()
}

// Len implements Matcher.
func (x *ITreeIndex) Len() int {
	x.mu.RLock()
	defer x.mu.RUnlock()
	return len(x.subs)
}

// rebuild reconstructs the per-bucket trees from the current set.
// Caller holds the write lock.
func (x *ITreeIndex) rebuild() {
	x.buckets = make(map[int]*itreeBucket)
	// Deterministic tree shape: insert in ascending ID order.
	ids := make([]ID, 0, len(x.subs))
	for id := range x.subs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		s := x.subs[id]
		if !s.IsSatisfiable() {
			continue // an empty bound matches nothing: keep it out of
			// the trees (buildITree requires non-empty intervals)
		}
		m := s.Len()
		bkt := x.buckets[m]
		if bkt == nil {
			bkt = &itreeBucket{trees: make([]*itreeNode, m)}
			x.buckets[m] = bkt
		}
		bkt.ids = append(bkt.ids, id)
	}
	for m, bkt := range x.buckets {
		bkt.hulls = make([]interval.Interval, m)
		for i, id := range bkt.ids {
			for a, b := range x.subs[id].Bounds {
				if i == 0 {
					bkt.hulls[a] = b
				} else {
					bkt.hulls[a] = bkt.hulls[a].Hull(b)
				}
			}
		}
		perAttr := make([][]entry, m)
		bkt.required = make([]int, len(bkt.ids))
		for pos, id := range bkt.ids {
			for a, b := range x.subs[id].Bounds {
				if b.ContainsInterval(bkt.hulls[a]) {
					continue // hull-spanning: pre-satisfied inside the hull
				}
				perAttr[a] = append(perAttr[a], entry{iv: b, sub: pos})
				bkt.required[pos]++
			}
			if bkt.required[pos] == 0 {
				bkt.matchAll = append(bkt.matchAll, pos)
			}
		}
		for a := range perAttr {
			bkt.trees[a] = buildITree(perAttr[a])
		}
		n := len(bkt.ids)
		bkt.scratch.New = func() any {
			return &stabScratch{counts: make([]int, n), stamp: make([]uint32, n)}
		}
	}
	x.dirty = false
}

// bucketFor rebuilds if dirty and returns the bucket for p's arity —
// nil when no bucket exists or p falls outside a per-attribute hull
// (outside the hull means outside every predicate on that attribute,
// and every subscription carries one). The returned bucket is safe to
// stab after the lock is released: its structure never mutates, only
// its generation gets superseded.
func (x *ITreeIndex) bucketFor(p subscription.Publication) *itreeBucket {
	x.mu.RLock()
	if x.dirty || x.buckets == nil {
		x.mu.RUnlock()
		x.mu.Lock()
		if x.dirty || x.buckets == nil {
			x.rebuild()
		}
		x.mu.Unlock()
		x.mu.RLock()
	}
	bkt := x.buckets[len(p.Values)]
	x.mu.RUnlock()
	if bkt == nil {
		return nil
	}
	for a, hull := range bkt.hulls {
		if !hull.Contains(p.Values[a]) {
			return nil
		}
	}
	return bkt
}

// completions runs the counting stab loop with the given scratch,
// invoking emit for every position whose indexed predicates all
// contain p (matchAll positions are complete by definition and come
// first). emit returning false stops the scan.
func (bkt *itreeBucket) completions(p subscription.Publication, sc *stabScratch, emit func(pos int) bool) {
	for _, pos := range bkt.matchAll {
		if !emit(pos) {
			return
		}
	}
	sc.epoch++
	if sc.epoch == 0 { // wrapped: reset stamps
		for i := range sc.stamp {
			sc.stamp[i] = 0
		}
		sc.epoch = 1
	}
	for a, tree := range bkt.trees {
		sc.hits = tree.stab(p.Values[a], sc.hits[:0])
		for _, pos := range sc.hits {
			if sc.stamp[pos] != sc.epoch {
				sc.stamp[pos] = sc.epoch
				sc.counts[pos] = 0
			}
			sc.counts[pos]++
			if sc.counts[pos] == bkt.required[pos] {
				if !emit(pos) {
					return
				}
			}
		}
	}
}

// Match implements Matcher in O(m·log k + hits) per publication after
// an amortized rebuild. Safe for concurrent callers.
func (x *ITreeIndex) Match(p subscription.Publication) []ID {
	bkt := x.bucketFor(p)
	if bkt == nil {
		return nil
	}
	sc := bkt.scratch.Get().(*stabScratch)
	var out []ID
	bkt.completions(p, sc, func(pos int) bool {
		out = append(out, bkt.ids[pos])
		return true
	})
	bkt.scratch.Put(sc)
	sortIDs(out)
	return out
}

// MatchAny reports whether any indexed subscription matches p,
// returning as soon as one completes — the existence form the broker
// uses for reverse-path forwarding, where the member list is unused.
// Safe for concurrent callers.
func (x *ITreeIndex) MatchAny(p subscription.Publication) bool {
	bkt := x.bucketFor(p)
	if bkt == nil {
		return false
	}
	sc := bkt.scratch.Get().(*stabScratch)
	found := false
	bkt.completions(p, sc, func(int) bool {
		found = true
		return false
	})
	bkt.scratch.Put(sc)
	return found
}
