// Package dist wraps the random distributions the paper's Section 6.4
// comparison workload draws from: Zipf for attribute popularity,
// Pareto for range centers ("similar interests" clustering toward the
// popular corner of the attribute space), and Normal for range widths.
// All draws go through a caller-supplied *rand.Rand so experiment runs
// stay reproducible.
package dist

import (
	"fmt"
	"math"
	"math/rand/v2"
)

// UniformIn returns a uniform integer in [lo, hi]. It tolerates
// degenerate ranges (hi <= lo yields lo), which the workload
// generators rely on at domain edges.
func UniformIn(rng *rand.Rand, lo, hi int64) int64 {
	if hi <= lo {
		return lo
	}
	return lo + rng.Int64N(hi-lo+1)
}

// Zipf draws integers in [0, n) with P(k) proportional to 1/(k+1)^s.
type Zipf struct {
	z *rand.Zipf
}

// NewZipf builds a Zipf source over [0, n) with skew s (must be > 1,
// the paper uses 2.0).
func NewZipf(rng *rand.Rand, s float64, n uint64) (*Zipf, error) {
	if s <= 1 {
		return nil, fmt.Errorf("dist: zipf skew must be > 1, got %g", s)
	}
	if n == 0 {
		return nil, fmt.Errorf("dist: zipf needs a non-empty range")
	}
	return &Zipf{z: rand.NewZipf(rng, s, 1, n-1)}, nil
}

// Draw returns the next Zipf variate in [0, n).
func (z *Zipf) Draw() uint64 { return z.z.Uint64() }

// Pareto draws from a Pareto distribution with shape alpha and scale 1:
// P(X > x) = x^-alpha for x >= 1. Small shapes give heavy tails.
type Pareto struct {
	rng   *rand.Rand
	alpha float64
}

// NewPareto builds a Pareto source with the given shape (must be > 0,
// the paper uses 1.0).
func NewPareto(rng *rand.Rand, alpha float64) (*Pareto, error) {
	if alpha <= 0 {
		return nil, fmt.Errorf("dist: pareto shape must be positive, got %g", alpha)
	}
	return &Pareto{rng: rng, alpha: alpha}, nil
}

// Draw returns the next Pareto variate in [1, +inf).
func (p *Pareto) Draw() float64 {
	// Inverse transform: X = U^(-1/alpha) with U uniform in (0, 1].
	u := 1 - p.rng.Float64() // (0, 1]
	return math.Pow(u, -1/p.alpha)
}

// DrawInDomain maps a Pareto variate into [lo, hi], clustering results
// toward lo (the "popular" end of the domain). The variate's offset
// from the Pareto minimum is scaled to 3% of the domain extent per
// unit, so the median lands near the popular corner while the heavy
// tail still reaches the far end; values beyond the extent clamp to
// hi. The factor is calibrated so the Section 6.4 comparison workload
// produces overlapping interest chains whose union coverage the group
// checker detects well before any single subscription covers them.
func (p *Pareto) DrawInDomain(lo, hi int64) int64 {
	if hi <= lo {
		return lo
	}
	span := float64(hi - lo)
	v := lo + int64((p.Draw()-1)*span*0.03)
	if v > hi {
		v = hi
	}
	if v < lo {
		v = lo
	}
	return v
}

// Normal draws from a normal distribution with the given mean and
// standard deviation.
type Normal struct {
	rng  *rand.Rand
	mean float64
	std  float64
}

// NewNormal builds a normal source. The standard deviation must be
// non-negative.
func NewNormal(rng *rand.Rand, mean, std float64) (*Normal, error) {
	if std < 0 {
		return nil, fmt.Errorf("dist: normal std must be non-negative, got %g", std)
	}
	if math.IsNaN(mean) || math.IsNaN(std) {
		return nil, fmt.Errorf("dist: normal parameters must be numbers")
	}
	return &Normal{rng: rng, mean: mean, std: std}, nil
}

// Draw returns the next normal variate.
func (n *Normal) Draw() float64 {
	return n.mean + n.std*n.rng.NormFloat64()
}

// DrawWidth returns a range width in [1, max]: a normal variate
// rounded to the nearest integer and clamped to the usable extent.
func (n *Normal) DrawWidth(max int64) int64 {
	w := int64(math.Round(n.Draw()))
	if w < 1 {
		w = 1
	}
	if w > max {
		w = max
	}
	return w
}
