package benchcases

// Wire benchmarks (ISSUE 4): codec micro-benchmarks and end-to-end
// TCP bodies shared between pubsub's bench tests and cmd/paperbench's
// benchjson snapshot, so the BENCH_*.json trajectory lines up with
// `go test -bench` output.
//
// WireCodecEncode/Decode are pure CPU and feed the regression gate;
// the TCP bodies measure wall clock over real sockets (scheduler and
// loopback noise included) and stay informational in the gate.

import (
	"context"
	"fmt"
	"math/rand/v2"
	"sync"
	"testing"
	"time"

	"probsum/internal/broker"
	"probsum/internal/interval"
	"probsum/internal/subscription"
	"probsum/pubsub"
)

// wireFrame builds the benchmark frame shapes: "pub" is the
// wire-dominant publish frame (8 attributes), "subbatch" a 64-item
// subscription burst.
func wireFrame(shape string) *pubsub.Frame {
	switch shape {
	case "pub":
		return &pubsub.Frame{Msg: &broker.Message{
			Kind:  broker.MsgPublish,
			PubID: "bench-client/pub-123456",
			Pub:   subscription.NewPublication(17, 4211, 998877, 3, 52, 0, 1<<40, 100),
		}}
	case "subbatch":
		subs := make([]broker.BatchSub, 64)
		for i := range subs {
			lo := int64(i * 13)
			subs[i] = broker.BatchSub{
				SubID: fmt.Sprintf("bench-client/sub-%d", i),
				Sub: subscription.New(
					interval.New(lo, lo+50), interval.New(0, 1000),
					interval.New(lo*7, lo*7+3), interval.New(-500, 500),
				),
			}
		}
		return &pubsub.Frame{Msg: &broker.Message{Kind: broker.MsgSubscribeBatch, Subs: subs}}
	default:
		panic("unknown wire frame shape " + shape)
	}
}

// WireCodecEncode measures marshaling one frame into a reused buffer.
func WireCodecEncode(b *testing.B, codec pubsub.WireCodec, shape string) {
	fr := wireFrame(shape)
	var buf []byte
	var err error
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf, err = pubsub.MarshalFrame(codec, buf[:0], fr)
		if err != nil {
			b.Fatal(err)
		}
	}
}

// WireCodecDecode measures decoding one pre-encoded frame.
func WireCodecDecode(b *testing.B, codec pubsub.WireCodec, shape string) {
	data, err := pubsub.MarshalFrame(codec, nil, wireFrame(shape))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := pubsub.UnmarshalFrame(data); err != nil {
			b.Fatal(err)
		}
	}
}

// TCPPublishPublishers is the concurrent publisher connection count of
// the TCPPublish body.
const TCPPublishPublishers = 4

// TCPPublish is the end-to-end wire benchmark: publish throughput
// through one TCP broker with 4 subscriber connections × 256 random
// boxes and 4 concurrent publisher connections. The reported µs/pub
// covers client encode, socket, broker decode + coalesced dispatch,
// matching, and notification fan-out. dialCodec caps the clients so a
// JSON-pinned run is JSON end to end.
func TCPPublish(b *testing.B, dialCodec pubsub.WireCodec, opts ...pubsub.TCPOption) {
	ctx := context.Background()
	hub, err := pubsub.ListenBroker("HUB", "127.0.0.1:0", pubsub.Pairwise, pubsub.Config{}, opts...)
	if err != nil {
		b.Fatal(err)
	}
	defer func() {
		sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		hub.Shutdown(sctx)
	}()

	rng := rand.New(rand.NewPCG(11, 12))
	const (
		subClients    = 4
		subsPerClient = 256
	)
	var drainers sync.WaitGroup
	for i := 0; i < subClients; i++ {
		sub, err := pubsub.Dial(ctx, hub.Addr(), fmt.Sprintf("sub%d", i), pubsub.WithDialCodec(dialCodec))
		if err != nil {
			b.Fatal(err)
		}
		defer sub.Close()
		for j := 0; j < subsPerClient; j++ {
			lo1, lo2 := rng.Int64N(90), rng.Int64N(90)
			s := subscription.New(interval.New(lo1, lo1+10), interval.New(lo2, lo2+10))
			if err := sub.Subscribe(ctx, fmt.Sprintf("s%d-%d", i, j), s); err != nil {
				b.Fatal(err)
			}
		}
		drainers.Add(1)
		go func(c *pubsub.Client) {
			defer drainers.Done()
			for range c.Notifications() {
			}
		}(sub)
	}
	want := subClients * subsPerClient
	waitFor(b, 10*time.Second, func() bool { return hub.Metrics().SubsReceived == want })

	pubs := make([]*pubsub.Client, TCPPublishPublishers)
	for i := range pubs {
		c, err := pubsub.Dial(ctx, hub.Addr(), fmt.Sprintf("pub%d", i), pubsub.WithDialCodec(dialCodec))
		if err != nil {
			b.Fatal(err)
		}
		defer c.Close()
		pubs[i] = c
	}

	before := hub.Metrics().PubsReceived
	b.ResetTimer()
	var wg sync.WaitGroup
	for i, c := range pubs {
		wg.Add(1)
		go func(i int, c *pubsub.Client) {
			defer wg.Done()
			prng := rand.New(rand.NewPCG(uint64(i), 99))
			for n := i; n < b.N; n += TCPPublishPublishers {
				p := subscription.NewPublication(prng.Int64N(101), prng.Int64N(101))
				if err := c.Publish(ctx, fmt.Sprintf("b%d-%d", i, n), p); err != nil {
					b.Error(err)
					return
				}
			}
		}(i, c)
	}
	wg.Wait()
	// The op ends when the broker has processed the publication, not
	// merely when the frame left the client.
	waitFor(b, 60*time.Second, func() bool { return hub.Metrics().PubsReceived >= before+b.N })
	b.StopTimer()
}

// TCPPublishJSON runs TCPPublish pinned to the PR-3 JSON codec on
// both sides — the committed baseline the binary codec is compared
// against in BENCH_*.json.
func TCPPublishJSON(b *testing.B) {
	TCPPublish(b, pubsub.CodecJSON, pubsub.WithWireCodec(pubsub.CodecJSON))
}

// TCPPublishBinary runs TCPPublish with binary negotiation (the
// default production path).
func TCPPublishBinary(b *testing.B) {
	TCPPublish(b, pubsub.CodecBinary)
}

// TCPPublishSerialized is the pre-pipeline ablation: one global
// dispatch mutex, inline encode (JSON, as the old server was).
func TCPPublishSerialized(b *testing.B) {
	TCPPublish(b, pubsub.CodecJSON, pubsub.WithWireCodec(pubsub.CodecJSON), pubsub.WithSerializedDispatch())
}

// TCPPublishBatchSize is the per-frame burst of the pubbatch variant.
const TCPPublishBatchSize = 16

// TCPPublishBatch is the deliberate producer-side batching variant of
// TCPPublish: the same subscriber population and publisher count, but
// each publisher sends its publications as PUBBATCH frames of
// TCPPublishBatchSize through Client.PublishBatch — one frame encode,
// one socket write, and one broker lock acquisition per batch instead
// of per publication. The reported time is still per publication.
func TCPPublishBatch(b *testing.B) {
	ctx := context.Background()
	hub, err := pubsub.ListenBroker("HUB", "127.0.0.1:0", pubsub.Pairwise, pubsub.Config{})
	if err != nil {
		b.Fatal(err)
	}
	defer func() {
		sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		hub.Shutdown(sctx)
	}()

	rng := rand.New(rand.NewPCG(11, 12))
	const (
		subClients    = 4
		subsPerClient = 256
	)
	var drainers sync.WaitGroup
	for i := 0; i < subClients; i++ {
		sub, err := pubsub.Dial(ctx, hub.Addr(), fmt.Sprintf("sub%d", i))
		if err != nil {
			b.Fatal(err)
		}
		defer sub.Close()
		for j := 0; j < subsPerClient; j++ {
			lo1, lo2 := rng.Int64N(90), rng.Int64N(90)
			s := subscription.New(interval.New(lo1, lo1+10), interval.New(lo2, lo2+10))
			if err := sub.Subscribe(ctx, fmt.Sprintf("s%d-%d", i, j), s); err != nil {
				b.Fatal(err)
			}
		}
		drainers.Add(1)
		go func(c *pubsub.Client) {
			defer drainers.Done()
			for range c.Notifications() {
			}
		}(sub)
	}
	want := subClients * subsPerClient
	waitFor(b, 10*time.Second, func() bool { return hub.Metrics().SubsReceived == want })

	pubs := make([]*pubsub.Client, TCPPublishPublishers)
	for i := range pubs {
		c, err := pubsub.Dial(ctx, hub.Addr(), fmt.Sprintf("pub%d", i))
		if err != nil {
			b.Fatal(err)
		}
		defer c.Close()
		pubs[i] = c
	}

	before := hub.Metrics().PubsReceived
	b.ResetTimer()
	var wg sync.WaitGroup
	for i, c := range pubs {
		wg.Add(1)
		go func(i int, c *pubsub.Client) {
			defer wg.Done()
			prng := rand.New(rand.NewPCG(uint64(i), 99))
			batch := make([]pubsub.BatchPub, 0, TCPPublishBatchSize)
			for n := i; n < b.N; n += TCPPublishPublishers {
				batch = append(batch, pubsub.BatchPub{
					PubID: fmt.Sprintf("b%d-%d", i, n),
					Pub:   subscription.NewPublication(prng.Int64N(101), prng.Int64N(101)),
				})
				if len(batch) == TCPPublishBatchSize {
					if err := c.PublishBatch(ctx, batch); err != nil {
						b.Error(err)
						return
					}
					batch = batch[:0]
				}
			}
			if len(batch) > 0 {
				if err := c.PublishBatch(ctx, batch); err != nil {
					b.Error(err)
				}
			}
		}(i, c)
	}
	wg.Wait()
	waitFor(b, 60*time.Second, func() bool { return hub.Metrics().PubsReceived >= before+b.N })
	b.StopTimer()
}

// TCPSubscribeBurst measures a subscription burst (256 tiles) plus
// its cancellation through one TCP broker: per item (512 frames per
// op) or batched (one SUBBATCH + one UNSUBBATCH per op, admitted as
// one Table batch call each). The table returns to empty every
// iteration, so ops are steady state.
func TCPSubscribeBurst(b *testing.B, batch bool) {
	ctx := context.Background()
	hub, err := pubsub.ListenBroker("HUB", "127.0.0.1:0", pubsub.Pairwise, pubsub.Config{})
	if err != nil {
		b.Fatal(err)
	}
	defer func() {
		sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		hub.Shutdown(sctx)
	}()
	// A peer link so the burst exercises coverage-table admission and
	// forwarding, not just reverse-path bookkeeping.
	peer, err := pubsub.ListenBroker("PEER", "127.0.0.1:0", pubsub.Pairwise, pubsub.Config{})
	if err != nil {
		b.Fatal(err)
	}
	defer func() {
		sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		peer.Shutdown(sctx)
	}()
	if err := hub.ConnectPeer("PEER", peer.Addr()); err != nil {
		b.Fatal(err)
	}
	if err := peer.ConnectPeer("HUB", hub.Addr()); err != nil {
		b.Fatal(err)
	}
	c, err := pubsub.Dial(ctx, hub.Addr(), "burster")
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()

	const burst = 256
	subs := make([]pubsub.BatchSub, burst)
	ids := make([]string, burst)
	received := 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range subs {
			// Non-overlapping tiles: every item admits active and
			// forwards, the worst case for per-frame overhead.
			lo := int64(j * 10)
			ids[j] = fmt.Sprintf("i%d-s%d", i, j)
			subs[j] = pubsub.BatchSub{
				SubID: ids[j],
				Sub:   subscription.New(interval.New(lo, lo+5), interval.New(0, 5)),
			}
		}
		if batch {
			if err := c.SubscribeBatch(ctx, subs); err != nil {
				b.Fatal(err)
			}
		} else {
			for _, it := range subs {
				if err := c.Subscribe(ctx, it.SubID, it.Sub); err != nil {
					b.Fatal(err)
				}
			}
		}
		received += burst
		waitFor(b, 30*time.Second, func() bool { return hub.Metrics().SubsReceived >= received })
		if batch {
			if err := c.UnsubscribeBatch(ctx, ids); err != nil {
				b.Fatal(err)
			}
		} else {
			for _, id := range ids {
				if err := c.Unsubscribe(ctx, id); err != nil {
					b.Fatal(err)
				}
			}
		}
		waitFor(b, 30*time.Second, func() bool { return hub.Metrics().UnsubsForwarded >= received })
	}
	b.StopTimer()
}

func waitFor(b *testing.B, d time.Duration, cond func() bool) {
	b.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			b.Fatal("benchmark condition not reached")
		}
		time.Sleep(200 * time.Microsecond)
	}
}
