// Package benchcases holds the hot-path benchmark bodies shared by
// the repository's bench_test.go and cmd/paperbench's -benchjson
// emitter. Keeping one copy guarantees the BENCH_<date>.json
// trajectory measures exactly what `go test -bench` measures — same
// workloads, same seeds, same loops.
package benchcases

import (
	"math/rand/v2"
	"testing"

	"probsum/internal/core"
	"probsum/internal/interval"
	"probsum/internal/store"
	"probsum/internal/subscription"
	"probsum/internal/workload"
	"probsum/subsume"
)

// Instance builds the canonical micro-benchmark instance (k=100,
// m=10) for scenario "cover" or "noncover".
func Instance(scenario string) workload.Instance {
	rng := rand.New(rand.NewPCG(1, 2))
	cfg := workload.Config{K: 100, M: 10}
	switch scenario {
	case "cover":
		return workload.RedundantCovering(rng, cfg)
	case "noncover":
		return workload.NonCover(rng, cfg, 0.05)
	default:
		panic("unknown scenario " + scenario)
	}
}

// Checker builds the canonical micro-benchmark checker (δ=1e-6, seed
// 1/2, 2000-trial cap).
func Checker(b *testing.B) *core.Checker {
	b.Helper()
	c, err := core.NewChecker(
		core.WithErrorProbability(1e-6),
		core.WithSeed(1, 2),
		core.WithMaxTrials(2000),
	)
	if err != nil {
		b.Fatal(err)
	}
	return c
}

// CoveredInto is the zero-allocation checker benchmark body: the
// Algorithm 4 pipeline through CoveredInto with a reused Result.
func CoveredInto(b *testing.B, scenario string) {
	in := Instance(scenario)
	checker := Checker(b)
	var res core.Result
	if err := checker.CoveredInto(&res, in.S, in.Set); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := checker.CoveredInto(&res, in.S, in.Set); err != nil {
			b.Fatal(err)
		}
	}
}

// tableBurstSchema is the burst-workload attribute space.
func tableBurstSchema() *subsume.Schema { return subsume.UniformSchema(6, 0, 9999) }

// TableBurst builds the burst workload for the Table batch benchmark:
// a shuffled mix of broad "parent" boxes and narrow children shrunk
// inside them — the arrival pattern of a subscriber population with a
// few aggregate interests and many specific ones. Shuffled arrival
// order is the worst case for per-item admission (children arriving
// before their parent are admitted active and checked expensively);
// the batch path re-sorts by volume, so parents admit first and the
// children fall to the pairwise fast path.
func TableBurst(size int) ([]subsume.ID, []subsume.Subscription) {
	rng := rand.New(rand.NewPCG(41, 42))
	m := tableBurstSchema().Len()
	nParents := size / 16
	parents := make([]subsume.Subscription, nParents)
	subs := make([]subsume.Subscription, 0, size)
	for i := range parents {
		bounds := make([]interval.Interval, m)
		for a := range bounds {
			lo := rng.Int64N(6000)
			bounds[a] = interval.New(lo, lo+2000+rng.Int64N(1500))
		}
		parents[i] = subscription.Subscription{Bounds: bounds}
		subs = append(subs, parents[i])
	}
	for len(subs) < size {
		p := parents[rng.IntN(nParents)]
		bounds := make([]interval.Interval, m)
		for a, b := range p.Bounds {
			w := (b.Hi - b.Lo) / 4
			off := rng.Int64N(b.Hi - b.Lo - w)
			bounds[a] = interval.New(b.Lo+off, b.Lo+off+w)
		}
		subs = append(subs, subscription.Subscription{Bounds: bounds})
	}
	rng.Shuffle(len(subs), func(i, j int) { subs[i], subs[j] = subs[j], subs[i] })
	ids := make([]subsume.ID, len(subs))
	for i := range ids {
		ids[i] = subsume.ID(i + 1)
	}
	return ids, subs
}

// TableSubscribeBatch is the Table burst-admission benchmark body:
// one 512-subscription burst per iteration into a fresh Group table,
// through SubscribeBatch (batch=true) or per-item Subscribe in
// arrival order (batch=false). Table construction is excluded from
// the timing.
func TableSubscribeBatch(b *testing.B, batch bool, shards int) {
	ids, subs := TableBurst(512)
	schema := tableBurstSchema()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		tbl, err := subsume.NewTable(subsume.Group,
			subsume.WithShards(shards),
			subsume.WithTableSchema(schema),
			subsume.WithTableSeed(7),
			subsume.WithTableChecker(subsume.WithSeed(43, 44), subsume.WithMaxTrials(2000)),
		)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if batch {
			if _, err := tbl.SubscribeBatch(ids, subs); err != nil {
				b.Fatal(err)
			}
		} else {
			for j, id := range ids {
				if _, err := tbl.Subscribe(id, subs[j]); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
}

// UnsubBurst builds the cancellation-burst workload: 32 overlapping
// "tile" parents (stride 300, width 600 on attribute x1, unbounded
// elsewhere) and 480 children straddling tile boundaries, so each
// child is covered only by the UNION of neighboring tiles — the
// paper's group-coverage regime. Withdrawing the whole tile wall (a
// gateway canceling its aggregate interests) is the worst case for
// per-item removal: every removal orphans children that are then
// re-covered by surviving tiles, only to be orphaned again by the
// next removal, so a child can be re-validated once per tile it
// touches. Returns the admission burst and the cancellation burst
// (the parent IDs).
func UnsubBurst() (ids []subsume.ID, subs []subsume.Subscription, burst []subsume.ID) {
	rng := rand.New(rand.NewPCG(51, 52))
	m := tableBurstSchema().Len()
	const nParents = 32
	full := interval.New(0, 9999)
	for i := 0; i < nParents; i++ {
		bounds := make([]interval.Interval, m)
		for a := range bounds {
			bounds[a] = full
		}
		bounds[0] = interval.New(int64(i)*300, int64(i)*300+600)
		subs = append(subs, subscription.Subscription{Bounds: bounds})
	}
	for len(subs) < 512 {
		bounds := make([]interval.Interval, m)
		x := rng.Int64N(9000)
		bounds[0] = interval.New(x, x+450)
		for a := 1; a < m; a++ {
			lo := rng.Int64N(5000)
			bounds[a] = interval.New(lo, lo+2000+rng.Int64N(2500))
		}
		subs = append(subs, subscription.Subscription{Bounds: bounds})
	}
	ids = make([]subsume.ID, len(subs))
	for i := range ids {
		ids[i] = subsume.ID(i + 1)
	}
	burst = append(burst, ids[:nParents]...)
	return ids, subs, burst
}

// TableUnsubscribeBatch is the Table cancellation-burst benchmark
// body: admit the UnsubBurst workload, then withdraw the tile parents
// per-item (each removal runs its own promotion cascade, repeatedly
// re-validating children that keep finding cover in surviving tiles)
// or through UnsubscribeBatch (one shared cascade frontier: every
// orphaned child is re-validated exactly once against the
// post-removal set). Table construction and admission are excluded
// from the timing.
func TableUnsubscribeBatch(b *testing.B, batch bool, shards int) {
	ids, subs, burst := UnsubBurst()
	schema := tableBurstSchema()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		tbl, err := subsume.NewTable(subsume.Group,
			subsume.WithShards(shards),
			subsume.WithTableSchema(schema),
			subsume.WithTableSeed(7),
			subsume.WithTableChecker(subsume.WithSeed(43, 44), subsume.WithMaxTrials(2000)),
		)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := tbl.SubscribeBatch(ids, subs); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if batch {
			if _, err := tbl.UnsubscribeBatch(burst); err != nil {
				b.Fatal(err)
			}
		} else {
			for _, id := range burst {
				if _, err := tbl.Unsubscribe(id); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
}

// StoreSubscribe is the store arrival benchmark body: one
// subscribe/unsubscribe round-trip against a store pre-filled with
// 1500 Section 6.4 comparison-workload subscriptions.
func StoreSubscribe(b *testing.B, policy store.Policy, pruning bool) {
	rng := rand.New(rand.NewPCG(31, 32))
	stream, err := workload.NewComparisonStream(rng, workload.DefaultComparisonConfig(8))
	if err != nil {
		b.Fatal(err)
	}
	opts := []store.Option{store.WithCandidatePruning(pruning)}
	if policy == store.PolicyGroup {
		checker, err := core.NewChecker(core.WithSeed(33, 34), core.WithMaxTrials(2000))
		if err != nil {
			b.Fatal(err)
		}
		opts = append(opts, store.WithChecker(checker))
	}
	st, err := store.New(policy, opts...)
	if err != nil {
		b.Fatal(err)
	}
	const k = 1500
	for i := 0; i < k; i++ {
		if _, err := st.Subscribe(store.ID(i), stream.Next()); err != nil {
			b.Fatal(err)
		}
	}
	probes := make([]subscription.Subscription, 256)
	for i := range probes {
		probes[i] = stream.Next()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := store.ID(k + 1 + i)
		if _, err := st.Subscribe(id, probes[i%len(probes)]); err != nil {
			b.Fatal(err)
		}
		if _, err := st.Unsubscribe(id); err != nil {
			b.Fatal(err)
		}
	}
}
