package experiments

import (
	"fmt"
	"math/rand/v2"

	"probsum/internal/core"
	"probsum/internal/pairwise"
	"probsum/internal/stats"
	"probsum/internal/subscription"
	"probsum/internal/workload"
)

// ComparisonConfig parameterizes the Figure 13/14 comparison of
// pairwise versus group coverage on a popularity-skewed stream.
type ComparisonConfig struct {
	// Total is the number of incoming subscriptions (paper: 5000).
	Total int
	// Checkpoint is the sampling interval for the growth curves.
	Checkpoint int
	// MValues are the attribute counts (paper: 10, 15, 20).
	MValues []int
	// Delta is the checker error probability (paper: 1e-6).
	Delta float64
	// MaxTrials caps RSPC guesses per arrival; covered arrivals always
	// execute their full budget, so this bounds the experiment's cost.
	MaxTrials int
	// Seed drives all randomness.
	Seed uint64
}

// DefaultComparisonConfig returns the paper's parameters.
func DefaultComparisonConfig() ComparisonConfig {
	return ComparisonConfig{
		Total:      5000,
		Checkpoint: 250,
		MValues:    []int{10, 15, 20},
		Delta:      1e-6,
		MaxTrials:  5000,
		Seed:       1,
	}
}

// comparisonSeries holds the growth curves for one m.
type comparisonSeries struct {
	checkpoints []int
	pairSize    []int
	groupSize   []int
}

var comparisonCache = map[string]map[int]comparisonSeries{}

// runComparison feeds the same subscription stream to a pairwise
// reducer and to the probabilistic group reducer, recording active-set
// sizes at checkpoints.
func runComparison(cfg ComparisonConfig) (map[int]comparisonSeries, error) {
	key := fmt.Sprintf("%+v", cfg)
	if got, ok := comparisonCache[key]; ok {
		return got, nil
	}
	out := make(map[int]comparisonSeries, len(cfg.MValues))
	for _, m := range cfg.MValues {
		seed := cfg.Seed ^ uint64(m)<<32
		rng := rand.New(rand.NewPCG(seed, seed^0xc0ffee))
		stream, err := workload.NewComparisonStream(rng, workload.DefaultComparisonConfig(m))
		if err != nil {
			return nil, err
		}
		checker, err := core.NewChecker(
			core.WithErrorProbability(cfg.Delta),
			core.WithSeed(seed|1, seed^0xbeef),
			core.WithMaxTrials(cfg.MaxTrials),
		)
		if err != nil {
			return nil, err
		}

		var pair pairwise.Set
		var group []subscription.Subscription
		series := comparisonSeries{}
		for i := 1; i <= cfg.Total; i++ {
			s := stream.Next()
			pair.Add(s)
			res, err := checker.Covered(s, group)
			if err != nil {
				return nil, err
			}
			if !res.Decision.IsCovered() {
				group = append(group, s)
			}
			if i%cfg.Checkpoint == 0 || i == cfg.Total {
				series.checkpoints = append(series.checkpoints, i)
				series.pairSize = append(series.pairSize, pair.Len())
				series.groupSize = append(series.groupSize, len(group))
			}
		}
		out[m] = series
	}
	comparisonCache[key] = out
	return out, nil
}

// Fig13 reproduces Figure 13: active subscription set growth under
// pairwise versus group coverage.
func Fig13(cfg ComparisonConfig) (*Table, error) {
	series, err := runComparison(cfg)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "fig13",
		Title: fmt.Sprintf("active set size growth over %d incoming subscriptions", cfg.Total),
	}
	t.Columns = []string{"subs"}
	for _, m := range cfg.MValues {
		t.Columns = append(t.Columns,
			fmt.Sprintf("pairwise(m=%d)", m), fmt.Sprintf("group(m=%d)", m))
	}
	first := series[cfg.MValues[0]]
	for ci, n := range first.checkpoints {
		row := []string{fi(n)}
		for _, m := range cfg.MValues {
			sr := series[m]
			row = append(row, fi(sr.pairSize[ci]), fi(sr.groupSize[ci]))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Fig14 reproduces Figure 14: the ratio of group to pairwise set sizes.
func Fig14(cfg ComparisonConfig) (*Table, error) {
	series, err := runComparison(cfg)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "fig14",
		Title: "group/pairwise active-set size ratio",
	}
	t.Columns = []string{"subs"}
	for _, m := range cfg.MValues {
		t.Columns = append(t.Columns, fmt.Sprintf("ratio(m=%d)", m))
	}
	first := series[cfg.MValues[0]]
	for ci, n := range first.checkpoints {
		row := []string{fi(n)}
		for _, m := range cfg.MValues {
			sr := series[m]
			row = append(row, f(stats.Ratio(float64(sr.groupSize[ci]), float64(sr.pairSize[ci]))))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}
