package experiments

import (
	"bytes"
	"math"
	"strconv"
	"strings"
	"testing"
)

// smallSweep returns a fast sweep configuration for tests.
func smallSweep() SweepConfig {
	return SweepConfig{
		KValues: []int{10, 70, 130},
		MValues: []int{5, 10},
		Runs:    30,
		Delta:   1e-10,
		Seed:    42,
		GapFrac: 0.05,
	}
}

// cell parses a table cell as a float.
func cell(t *testing.T, tbl *Table, row, col int) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(tbl.Rows[row][col], 64)
	if err != nil {
		t.Fatalf("cell (%d,%d) = %q: %v", row, col, tbl.Rows[row][col], err)
	}
	return v
}

func TestFig6ReductionIsHigh(t *testing.T) {
	tbl, err := Fig6(smallSweep())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 || len(tbl.Columns) != 3 {
		t.Fatalf("table shape = %dx%d", len(tbl.Rows), len(tbl.Columns))
	}
	// The paper's headline: MCS removes 70-100% of redundant
	// subscriptions across the sweep.
	for r := range tbl.Rows {
		for c := 1; c < len(tbl.Columns); c++ {
			if v := cell(t, tbl, r, c); v < 0.6 || v > 1.0 {
				t.Errorf("reduction at row %d col %d = %g, want within [0.6, 1]", r, c, v)
			}
		}
	}
}

func TestFig7MCSReducesTrialBound(t *testing.T) {
	tbl, err := Fig7(smallSweep())
	if err != nil {
		t.Fatal(err)
	}
	// Columns: k, before(m=5), after(m=5), before(m=10), after(m=10).
	for r := range tbl.Rows {
		for _, base := range []int{1, 3} {
			before, after := cell(t, tbl, r, base), cell(t, tbl, r, base+1)
			if after > before+1e-9 {
				t.Errorf("row %d: MCS increased log10(d): %g -> %g", r, before, after)
			}
		}
	}
}

func TestFig8NonCoverReductionNearTotal(t *testing.T) {
	tbl, err := Fig8(smallSweep())
	if err != nil {
		t.Fatal(err)
	}
	for r := range tbl.Rows {
		for c := 1; c < len(tbl.Columns); c++ {
			if v := cell(t, tbl, r, c); v < 0.85 {
				t.Errorf("non-cover reduction = %g, want >= 0.85 (paper: 0.88-1.0)", v)
			}
		}
	}
}

func TestFig10ActualIterationsTiny(t *testing.T) {
	tbl, err := Fig10(smallSweep())
	if err != nil {
		t.Fatal(err)
	}
	for r := range tbl.Rows {
		for c := 1; c < len(tbl.Columns); c++ {
			if v := cell(t, tbl, r, c); v > 2 {
				t.Errorf("actual iterations = %g, want < 2 (paper: < 0.5)", v)
			}
		}
	}
}

func smallExtreme() ExtremeConfig {
	return ExtremeConfig{
		K: 50, M: 5,
		GapFracs: []float64{0.005, 0.02, 0.045},
		Deltas:   []float64{1e-3, 1e-10},
		Runs:     200,
		Seed:     7,
	}
}

func TestFig11IterationsScaleInverselyWithGap(t *testing.T) {
	tbl, err := Fig11(smallExtreme())
	if err != nil {
		t.Fatal(err)
	}
	// Iterations at gap 0.5% must exceed those at 4.5% by roughly the
	// gap ratio (geometric hitting time ~ 1/gap).
	first, last := cell(t, tbl, 0, 1), cell(t, tbl, 2, 1)
	if first < 3*last {
		t.Errorf("iterations: gap 0.5%% = %g, gap 4.5%% = %g; want ~9x separation", first, last)
	}
	// Means are similar across error probabilities (paper's
	// observation): within a factor 2.
	for r := range tbl.Rows {
		a, b := cell(t, tbl, r, 1), cell(t, tbl, r, 2)
		if a > 2*b+10 || b > 2*a+10 {
			t.Errorf("row %d: iteration means diverge across deltas: %g vs %g", r, a, b)
		}
	}
}

func TestFig12FalseDecisionsOrderedByDelta(t *testing.T) {
	tbl, err := Fig12(smallExtreme())
	if err != nil {
		t.Fatal(err)
	}
	totalLoose, totalTight := 0.0, 0.0
	for r := range tbl.Rows {
		totalLoose += cell(t, tbl, r, 1) // delta = 1e-3
		totalTight += cell(t, tbl, r, 2) // delta = 1e-10
	}
	if totalTight > totalLoose {
		t.Errorf("false decisions: delta=1e-10 (%g) exceeded delta=1e-3 (%g)", totalTight, totalLoose)
	}
	if totalTight != 0 {
		t.Errorf("delta=1e-10 should produce no false decisions at this scale, got %g", totalTight)
	}
}

func TestFig11xFullPipelineSolvesExtreme(t *testing.T) {
	cfg := smallExtreme()
	cfg.Runs = 50
	tbl, err := Fig11x(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for r := range tbl.Rows {
		if iters := cell(t, tbl, r, 1); iters != 0 {
			t.Errorf("row %d: full pipeline used %g trials, want 0 (MCS empties the set)", r, iters)
		}
		if falseYes := cell(t, tbl, r, 2); falseYes != 0 {
			t.Errorf("row %d: full pipeline made %g false decisions", r, falseYes)
		}
	}
}

func TestComparisonGroupBeatsPairwise(t *testing.T) {
	cfg := ComparisonConfig{
		Total: 600, Checkpoint: 200, MValues: []int{10},
		Delta: 1e-6, MaxTrials: 2000, Seed: 3,
	}
	tbl, err := Fig13(cfg)
	if err != nil {
		t.Fatal(err)
	}
	lastRow := len(tbl.Rows) - 1
	pairSize, groupSize := cell(t, tbl, lastRow, 1), cell(t, tbl, lastRow, 2)
	if groupSize >= pairSize {
		t.Errorf("group set (%g) not smaller than pairwise (%g)", groupSize, pairSize)
	}
	ratioTbl, err := Fig14(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The ratio column must match fig13's sizes and stay below 1.
	for r := range ratioTbl.Rows {
		ratio := cell(t, ratioTbl, r, 1)
		want := cell(t, tbl, r, 2) / cell(t, tbl, r, 1)
		if math.Abs(ratio-want) > 0.01 {
			t.Errorf("row %d: ratio %g, want %g", r, ratio, want)
		}
		if ratio >= 1 {
			t.Errorf("row %d: group/pairwise ratio %g >= 1", r, ratio)
		}
	}
}

func TestEq2ClosedFormMatchesSimulation(t *testing.T) {
	cfg := DefaultEq2Config()
	cfg.Runs = 60_000
	tbl, err := Eq2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for r := range tbl.Rows {
		closed, sim := cell(t, tbl, r, 1), cell(t, tbl, r, 2)
		if math.Abs(closed-sim) > 0.02 {
			t.Errorf("row %d: closed form %g vs simulation %g", r, closed, sim)
		}
		ceiling := cell(t, tbl, r, 3)
		if closed > ceiling+1e-9 {
			t.Errorf("row %d: Eq.2 %g exceeds the no-error ceiling %g", r, closed, ceiling)
		}
	}
	// Monotone non-decreasing in chain length.
	prev := 0.0
	for r := range tbl.Rows {
		v := cell(t, tbl, r, 1)
		if v < prev-1e-12 {
			t.Errorf("Eq.2 decreased at row %d: %g < %g", r, v, prev)
		}
		prev = v
	}
}

func TestEq2Validation(t *testing.T) {
	cfg := DefaultEq2Config()
	cfg.Rho = 0
	if _, err := Eq2(cfg); err == nil {
		t.Error("rho=0 accepted")
	}
}

func TestRegistryRunsEverything(t *testing.T) {
	for _, id := range IDs() {
		tbl, err := Run(id, 0.003)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if tbl.ID != id {
			t.Errorf("table id = %q, want %q", tbl.ID, id)
		}
		if len(tbl.Rows) == 0 || len(tbl.Columns) == 0 {
			t.Errorf("%s: empty table", id)
		}
	}
	if _, err := Run("nope", 1); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestTableRendering(t *testing.T) {
	tbl := &Table{
		ID:      "t",
		Title:   "demo",
		Columns: []string{"a", "long-column"},
		Rows:    [][]string{{"1", "2"}, {"333", "4"}},
		Notes:   []string{"a note"},
	}
	var buf bytes.Buffer
	tbl.Fprint(&buf)
	out := buf.String()
	for _, want := range []string{"== t: demo ==", "long-column", "333", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("ASCII output missing %q:\n%s", want, out)
		}
	}
	buf.Reset()
	if err := tbl.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != "a,long-column\n1,2\n333,4\n" {
		t.Errorf("CSV = %q", got)
	}
}
