package experiments

import (
	"fmt"
	"sort"
)

// Scale shrinks or grows the default experiment configurations: 1.0
// reproduces the paper's run counts, smaller values trade precision
// for speed (used by smoke tests and benchmarks).
type Scale float64

// scaleRuns applies the scale with a floor of one run.
func (s Scale) scaleRuns(runs int) int {
	out := int(float64(runs) * float64(s))
	if out < 1 {
		out = 1
	}
	return out
}

// Runner produces one experiment table.
type Runner func(scale Scale) (*Table, error)

// Registry maps experiment IDs to runners for every table and figure
// of the paper's evaluation (plus the eq2/fig11x extensions).
func Registry() map[string]Runner {
	return map[string]Runner{
		"fig6": func(s Scale) (*Table, error) {
			cfg := DefaultSweepConfig()
			cfg.Runs = s.scaleRuns(cfg.Runs)
			return Fig6(cfg)
		},
		"fig7": func(s Scale) (*Table, error) {
			cfg := DefaultSweepConfig()
			cfg.Runs = s.scaleRuns(cfg.Runs)
			return Fig7(cfg)
		},
		"fig8": func(s Scale) (*Table, error) {
			cfg := DefaultSweepConfig()
			cfg.Runs = s.scaleRuns(cfg.Runs)
			return Fig8(cfg)
		},
		"fig9": func(s Scale) (*Table, error) {
			cfg := DefaultSweepConfig()
			cfg.Runs = s.scaleRuns(cfg.Runs)
			return Fig9(cfg)
		},
		"fig10": func(s Scale) (*Table, error) {
			cfg := DefaultSweepConfig()
			cfg.Runs = s.scaleRuns(cfg.Runs)
			return Fig10(cfg)
		},
		"fig11": func(s Scale) (*Table, error) {
			cfg := DefaultExtremeConfig()
			cfg.Runs = s.scaleRuns(cfg.Runs)
			return Fig11(cfg)
		},
		"fig11x": func(s Scale) (*Table, error) {
			cfg := DefaultExtremeConfig()
			cfg.Runs = s.scaleRuns(cfg.Runs)
			return Fig11x(cfg)
		},
		"fig12": func(s Scale) (*Table, error) {
			cfg := DefaultExtremeConfig()
			cfg.Runs = s.scaleRuns(cfg.Runs)
			return Fig12(cfg)
		},
		"fig13": func(s Scale) (*Table, error) {
			cfg := DefaultComparisonConfig()
			cfg.Total = s.scaleRuns(cfg.Total)
			if cfg.Checkpoint > cfg.Total {
				cfg.Checkpoint = cfg.Total
			}
			return Fig13(cfg)
		},
		"fig14": func(s Scale) (*Table, error) {
			cfg := DefaultComparisonConfig()
			cfg.Total = s.scaleRuns(cfg.Total)
			if cfg.Checkpoint > cfg.Total {
				cfg.Checkpoint = cfg.Total
			}
			return Fig14(cfg)
		},
		"eq2": func(s Scale) (*Table, error) {
			cfg := DefaultEq2Config()
			cfg.Runs = s.scaleRuns(cfg.Runs)
			return Eq2(cfg)
		},
	}
}

// IDs returns the registered experiment identifiers, sorted.
func IDs() []string {
	reg := Registry()
	out := make([]string, 0, len(reg))
	for id := range reg {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Run executes one experiment by ID.
func Run(id string, scale Scale) (*Table, error) {
	r, ok := Registry()[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (have %v)", id, IDs())
	}
	return r(scale)
}
