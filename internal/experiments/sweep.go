package experiments

import (
	"fmt"
	"math/rand/v2"

	"probsum/internal/conflict"
	"probsum/internal/core"
	"probsum/internal/stats"
	"probsum/internal/workload"
)

// SweepConfig parameterizes the redundant-covering and non-cover
// sweeps (Figures 6–10).
type SweepConfig struct {
	// KValues and MValues are the subscription-set sizes and attribute
	// counts to sweep; the paper uses k = 10..310 step 30 and
	// m ∈ {10, 15, 20}.
	KValues []int
	MValues []int
	// Runs is the number of instances averaged per (k, m) point
	// (paper: 1000).
	Runs int
	// Delta is the error probability (paper: 1e-10 for these sweeps).
	Delta float64
	// Seed drives all randomness.
	Seed uint64
	// GapFrac is the uncovered fraction for the non-cover scenario.
	GapFrac float64
}

// DefaultSweepConfig returns the paper's parameters for Figures 6–10.
func DefaultSweepConfig() SweepConfig {
	ks := make([]int, 0, 11)
	for k := 10; k <= 310; k += 30 {
		ks = append(ks, k)
	}
	return SweepConfig{
		KValues: ks,
		MValues: []int{10, 15, 20},
		Runs:    1000,
		Delta:   1e-10,
		Seed:    1,
		GapFrac: 0.05,
	}
}

// sweepPoint aggregates one (k, m) cell of a sweep.
type sweepPoint struct {
	reduction    float64 // recognized redundant / total redundant
	log10DBefore float64 // Equation 1 bound on the full set
	log10DAfter  float64 // Equation 1 bound on the MCS survivors
	actualTrials float64 // RSPC guesses executed by the full pipeline
}

// runSweep evaluates one scenario family over the (k, m) grid.
// gen builds an instance for a given k, m and per-run RNG.
// measureTrials additionally runs the full checker pipeline to record
// executed RSPC guesses; it is enabled only for the non-cover sweep
// (Figure 10) — on covered instances the pipeline would execute the
// full trial budget by design, which is the paper's point about d
// feasibility, not something to average over thousands of runs.
func runSweep(cfg SweepConfig, measureTrials bool, gen func(rng *rand.Rand, k, m int) workload.Instance) (map[[2]int]sweepPoint, error) {
	out := make(map[[2]int]sweepPoint, len(cfg.KValues)*len(cfg.MValues))
	for _, m := range cfg.MValues {
		for _, k := range cfg.KValues {
			reds := make([]float64, 0, cfg.Runs)
			dBefore := make([]float64, 0, cfg.Runs)
			dAfter := make([]float64, 0, cfg.Runs)
			trials := make([]float64, 0, cfg.Runs)
			for run := 0; run < cfg.Runs; run++ {
				seed := cfg.Seed ^ uint64(k)<<40 ^ uint64(m)<<20 ^ uint64(run)
				rng := rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))
				in := gen(rng, k, m)

				tbl, err := conflict.Build(in.S, in.Set)
				if err != nil {
					return nil, err
				}
				dBefore = append(dBefore, core.Log10TrialBound(cfg.Delta, core.EstimateLogRho(tbl, nil)))

				mcs := core.MCS(tbl)
				dAfter = append(dAfter, core.Log10TrialBound(cfg.Delta, core.EstimateLogRho(tbl, mcs.Alive)))

				// Reduction metric: removed ground-truth-redundant
				// members over total redundant members.
				removedRedundant := 0
				for _, idx := range in.RedundantIdx {
					if !mcs.Alive[idx] {
						removedRedundant++
					}
				}
				reds = append(reds, stats.Ratio(float64(removedRedundant), float64(len(in.RedundantIdx))))

				if measureTrials {
					// Full pipeline for the actual-iterations metric.
					checker, err := core.NewChecker(
						core.WithErrorProbability(cfg.Delta),
						core.WithSeed(seed|1, seed^0xabcdef),
						core.WithMaxTrials(core.DefaultMaxTrials),
					)
					if err != nil {
						return nil, err
					}
					res, err := checker.Covered(in.S, in.Set)
					if err != nil {
						return nil, err
					}
					trials = append(trials, float64(res.ExecutedTrials))
				}
			}
			out[[2]int{k, m}] = sweepPoint{
				reduction:    stats.Mean(reds),
				log10DBefore: stats.Mean(dBefore),
				log10DAfter:  stats.Mean(dAfter),
				actualTrials: stats.Mean(trials),
			}
		}
	}
	return out, nil
}

// sweepCache memoizes sweep results so the figure pairs sharing a
// scenario (6/7 and 8/9/10) run it once per configuration.
var sweepCache = map[string]map[[2]int]sweepPoint{}

func cacheKey(name string, cfg SweepConfig) string {
	return fmt.Sprintf("%s|%v|%v|%d|%g|%d|%g", name, cfg.KValues, cfg.MValues, cfg.Runs, cfg.Delta, cfg.Seed, cfg.GapFrac)
}

func redundantSweep(cfg SweepConfig) (map[[2]int]sweepPoint, error) {
	key := cacheKey("redundant", cfg)
	if got, ok := sweepCache[key]; ok {
		return got, nil
	}
	res, err := runSweep(cfg, false, func(rng *rand.Rand, k, m int) workload.Instance {
		return workload.RedundantCovering(rng, workload.Config{K: k, M: m})
	})
	if err == nil {
		sweepCache[key] = res
	}
	return res, err
}

func nonCoverSweep(cfg SweepConfig) (map[[2]int]sweepPoint, error) {
	key := cacheKey("noncover", cfg)
	if got, ok := sweepCache[key]; ok {
		return got, nil
	}
	res, err := runSweep(cfg, true, func(rng *rand.Rand, k, m int) workload.Instance {
		return workload.NonCover(rng, workload.Config{K: k, M: m}, cfg.GapFrac)
	})
	if err == nil {
		sweepCache[key] = res
	}
	return res, err
}

// sweepTable renders one metric of a sweep into a figure table.
func sweepTable(id, title string, cfg SweepConfig, points map[[2]int]sweepPoint,
	cols func(m int) []string, cells func(p sweepPoint) []string) *Table {
	t := &Table{ID: id, Title: title, Columns: []string{"k"}}
	for _, m := range cfg.MValues {
		t.Columns = append(t.Columns, cols(m)...)
	}
	for _, k := range cfg.KValues {
		row := []string{fi(k)}
		for _, m := range cfg.MValues {
			row = append(row, cells(points[[2]int{k, m}])...)
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Fig6 reproduces Figure 6: the fraction of redundant subscriptions
// MCS removes in the redundant covering scenario.
func Fig6(cfg SweepConfig) (*Table, error) {
	points, err := redundantSweep(cfg)
	if err != nil {
		return nil, err
	}
	return sweepTable("fig6", "MCS redundant-subscription reduction, redundant covering scenario",
		cfg, points,
		func(m int) []string { return []string{fmt.Sprintf("reduction(m=%d)", m)} },
		func(p sweepPoint) []string { return []string{f(p.reduction)} },
	), nil
}

// Fig7 reproduces Figure 7: the theoretical log10 d (Equation 1)
// before and after MCS for the redundant covering scenario.
func Fig7(cfg SweepConfig) (*Table, error) {
	points, err := redundantSweep(cfg)
	if err != nil {
		return nil, err
	}
	return sweepTable("fig7", "theoretical log10(d), redundant covering scenario",
		cfg, points,
		func(m int) []string {
			return []string{fmt.Sprintf("log10d(m=%d)", m), fmt.Sprintf("log10d(m=%d,MCS)", m)}
		},
		func(p sweepPoint) []string { return []string{f(p.log10DBefore), f(p.log10DAfter)} },
	), nil
}

// Fig8 reproduces Figure 8: MCS reduction for the non-cover scenario
// (the entire set is redundant).
func Fig8(cfg SweepConfig) (*Table, error) {
	points, err := nonCoverSweep(cfg)
	if err != nil {
		return nil, err
	}
	return sweepTable("fig8", "MCS redundant-subscription reduction, non-cover scenario",
		cfg, points,
		func(m int) []string { return []string{fmt.Sprintf("reduction(m=%d)", m)} },
		func(p sweepPoint) []string { return []string{f(p.reduction)} },
	), nil
}

// Fig9 reproduces Figure 9: theoretical log10 d before/after MCS for
// the non-cover scenario.
func Fig9(cfg SweepConfig) (*Table, error) {
	points, err := nonCoverSweep(cfg)
	if err != nil {
		return nil, err
	}
	return sweepTable("fig9", "theoretical log10(d), non-cover scenario",
		cfg, points,
		func(m int) []string {
			return []string{fmt.Sprintf("log10d(m=%d)", m), fmt.Sprintf("log10d(m=%d,MCS)", m)}
		},
		func(p sweepPoint) []string { return []string{f(p.log10DBefore), f(p.log10DAfter)} },
	), nil
}

// Fig10 reproduces Figure 10: the RSPC guesses the full pipeline
// actually executes in the non-cover scenario (near zero: MCS usually
// empties the set first).
func Fig10(cfg SweepConfig) (*Table, error) {
	points, err := nonCoverSweep(cfg)
	if err != nil {
		return nil, err
	}
	return sweepTable("fig10", "actual RSPC iterations, non-cover scenario",
		cfg, points,
		func(m int) []string { return []string{fmt.Sprintf("iters(m=%d)", m)} },
		func(p sweepPoint) []string { return []string{f(p.actualTrials)} },
	), nil
}
