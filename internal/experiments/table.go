// Package experiments regenerates every table and figure of the
// paper's evaluation (Section 6) plus the Section 5 propagation
// analysis. Each runner is deterministic given its seed and returns a
// Table whose rows correspond to the data series of the original plot;
// EXPERIMENTS.md records the paper-vs-measured comparison.
package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// Table is a rendered experiment result.
type Table struct {
	// ID is the experiment identifier ("fig6" … "fig14", "eq2").
	ID string
	// Title describes what the paper's figure shows.
	Title string
	// Columns names the row cells.
	Columns []string
	// Rows holds pre-formatted cells.
	Rows [][]string
	// Notes carry caveats (caps hit, calibration reminders).
	Notes []string
}

// Fprint renders the table as aligned ASCII.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	printRow := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	printRow(t.Columns)
	for _, row := range t.Rows {
		printRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// WriteCSV emits the table as CSV (header + rows).
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns); err != nil {
		return fmt.Errorf("experiments: write csv header: %w", err)
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("experiments: write csv row: %w", err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("experiments: flush csv: %w", err)
	}
	return nil
}

// f formats a float compactly.
func f(v float64) string { return fmt.Sprintf("%.4g", v) }

// fi formats an int.
func fi(v int) string { return fmt.Sprintf("%d", v) }
