package experiments

import (
	"fmt"
	"math/rand/v2"

	"probsum/internal/core"
	"probsum/internal/stats"
	"probsum/internal/workload"
)

// ExtremeConfig parameterizes the extreme non-cover experiment
// (Figures 11 and 12).
type ExtremeConfig struct {
	// K and M are fixed by the paper at 50 subscriptions and 5
	// attributes.
	K, M int
	// GapFracs sweeps the uncovered range size (paper: 0.5%..4.5% in
	// 0.5% steps).
	GapFracs []float64
	// Deltas are the error probabilities (paper: 1e-3, 1e-6, 1e-10).
	Deltas []float64
	// Runs per point (paper: 3000).
	Runs int
	// Seed drives all randomness.
	Seed uint64
}

// DefaultExtremeConfig returns the paper's parameters.
func DefaultExtremeConfig() ExtremeConfig {
	gaps := make([]float64, 0, 9)
	for g := 0.005; g < 0.0475; g += 0.005 {
		gaps = append(gaps, g)
	}
	return ExtremeConfig{
		K:        50,
		M:        5,
		GapFracs: gaps,
		Deltas:   []float64{1e-3, 1e-6, 1e-10},
		Runs:     3000,
		Seed:     1,
	}
}

// extremePoint aggregates one (gap, delta) cell.
type extremePoint struct {
	meanTrials float64
	falseYes   int
}

var extremeCache = map[string]map[[2]int]extremePoint{}

// runExtreme evaluates the RSPC-only pipeline (MCS and fast paths
// disabled — with them enabled the tiled construction is solved
// deterministically in zero trials; Figures 11/12 characterize the
// probabilistic part in isolation, see DESIGN.md).
func runExtreme(cfg ExtremeConfig) (map[[2]int]extremePoint, error) {
	key := fmt.Sprintf("%+v", cfg)
	if got, ok := extremeCache[key]; ok {
		return got, nil
	}
	out := make(map[[2]int]extremePoint)
	for gi, gap := range cfg.GapFracs {
		for di, delta := range cfg.Deltas {
			trials := make([]float64, 0, cfg.Runs)
			falseYes := 0
			for run := 0; run < cfg.Runs; run++ {
				seed := cfg.Seed ^ uint64(gi)<<40 ^ uint64(di)<<20 ^ uint64(run)
				rng := rand.New(rand.NewPCG(seed, seed^0x51f15e))
				in := workload.ExtremeNonCover(rng, workload.Config{K: cfg.K, M: cfg.M}, gap)

				checker, err := core.NewChecker(
					core.WithErrorProbability(delta),
					core.WithSeed(seed|1, seed^0xfeed),
					core.WithMCS(false),
					core.WithFastPaths(false),
					core.WithMaxTrials(core.DefaultMaxTrials),
				)
				if err != nil {
					return nil, err
				}
				res, err := checker.Covered(in.S, in.Set)
				if err != nil {
					return nil, err
				}
				trials = append(trials, float64(res.ExecutedTrials))
				if res.Decision.IsCovered() {
					falseYes++ // ground truth is non-cover by construction
				}
			}
			out[[2]int{gi, di}] = extremePoint{meanTrials: stats.Mean(trials), falseYes: falseYes}
		}
	}
	extremeCache[key] = out
	return out, nil
}

// Fig11 reproduces Figure 11: average RSPC guesses versus gap size for
// each error probability.
func Fig11(cfg ExtremeConfig) (*Table, error) {
	points, err := runExtreme(cfg)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "fig11",
		Title: fmt.Sprintf("average actual iterations, extreme non-cover (k=%d, m=%d, %d runs)", cfg.K, cfg.M, cfg.Runs),
		Notes: []string{"RSPC-only pipeline: MCS/fast paths disabled (they solve this scenario deterministically; see fig11x ablation)"},
	}
	t.Columns = []string{"gap%"}
	for _, d := range cfg.Deltas {
		t.Columns = append(t.Columns, fmt.Sprintf("iters(err=%.0e)", d))
	}
	for gi, gap := range cfg.GapFracs {
		row := []string{fmt.Sprintf("%.1f", gap*100)}
		for di := range cfg.Deltas {
			row = append(row, f(points[[2]int{gi, di}].meanTrials))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Fig12 reproduces Figure 12: the number of false YES decisions (a
// non-covered subscription declared covered) per Runs runs.
func Fig12(cfg ExtremeConfig) (*Table, error) {
	points, err := runExtreme(cfg)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "fig12",
		Title: fmt.Sprintf("false decisions in %d runs, extreme non-cover (k=%d, m=%d)", cfg.Runs, cfg.K, cfg.M),
		Notes: []string{"Algorithm 2 overestimates rho by a fixed 0.5% edge offset, so the false rate is delta^(rho/(rho+0.005)) — sqrt(delta) at the smallest gap, decaying toward delta (see DESIGN.md)"},
	}
	t.Columns = []string{"gap%"}
	for _, d := range cfg.Deltas {
		t.Columns = append(t.Columns, fmt.Sprintf("false(err=%.0e)", d))
	}
	for gi, gap := range cfg.GapFracs {
		row := []string{fmt.Sprintf("%.1f", gap*100)}
		for di := range cfg.Deltas {
			row = append(row, fi(points[[2]int{gi, di}].falseYes))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Fig11x is an ablation beyond the paper: the same extreme scenario
// with the full pipeline enabled. MCS empties the set (every entry is
// conflict-free across the gap), so the answer is deterministic with
// zero RSPC trials — evidence for the paper's Section 6.5 conclusion
// that the combination of MCS and RSPC beats either alone.
func Fig11x(cfg ExtremeConfig) (*Table, error) {
	t := &Table{
		ID:    "fig11x",
		Title: "ablation: extreme non-cover with the full pipeline (MCS + fast paths)",
	}
	t.Columns = []string{"gap%", "meanIters", "falseYes", "emptyMCSRate"}
	for gi, gap := range cfg.GapFracs {
		trials := make([]float64, 0, cfg.Runs)
		falseYes, emptyMCS := 0, 0
		for run := 0; run < cfg.Runs; run++ {
			seed := cfg.Seed ^ uint64(gi)<<40 ^ 0xa ^ uint64(run)
			rng := rand.New(rand.NewPCG(seed, seed^0x51f15e))
			in := workload.ExtremeNonCover(rng, workload.Config{K: cfg.K, M: cfg.M}, gap)
			checker, err := core.NewChecker(
				core.WithErrorProbability(cfg.Deltas[0]),
				core.WithSeed(seed|1, seed^0xfeed),
			)
			if err != nil {
				return nil, err
			}
			res, err := checker.Covered(in.S, in.Set)
			if err != nil {
				return nil, err
			}
			trials = append(trials, float64(res.ExecutedTrials))
			if res.Decision.IsCovered() {
				falseYes++
			}
			if res.Reason == core.ReasonEmptyMCS {
				emptyMCS++
			}
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.1f", gap*100),
			f(stats.Mean(trials)),
			fi(falseYes),
			f(float64(emptyMCS) / float64(cfg.Runs)),
		})
	}
	return t, nil
}
