package experiments

import (
	"fmt"
	"math"
	"math/rand/v2"

	"probsum/internal/stats"
)

// Eq2Config parameterizes the Section 5 propagation analysis: a new
// subscription s travels a chain of n brokers; at each hop the
// probabilistic check erroneously declares it covered with probability
// (1-ρw)^d, stopping propagation. A publication matching s (and no
// covering subscription) appears at broker i with probability
// ρ(1-ρ)^(i-1) and is found iff s reached broker i.
type Eq2Config struct {
	// NValues are the chain lengths to evaluate.
	NValues []int
	// Rho is the per-broker probability of hosting the matching
	// publication.
	Rho float64
	// RhoW is the point-witness density seen by each broker's check.
	RhoW float64
	// D is the RSPC trial budget at each broker.
	D int
	// Runs is the Monte-Carlo sample count for the simulated column.
	Runs int
	// Seed drives the simulation.
	Seed uint64
}

// DefaultEq2Config returns a representative parameterization: a small
// witness density and modest d make per-hop errors visible.
func DefaultEq2Config() Eq2Config {
	return Eq2Config{
		NValues: []int{1, 2, 3, 4, 5, 6, 8, 10, 15, 20},
		Rho:     0.2,
		RhoW:    0.01,
		D:       100,
		Runs:    200000,
		Seed:    1,
	}
}

// Eq2ClosedForm evaluates Equation 2 of the paper literally:
//
//	P = Σ_{i=1..n} ρ·[(1-ρ)·(1-(1-ρw)^d)]^(i-1)
func Eq2ClosedForm(n int, rho, rhoW float64, d int) float64 {
	stopProb := math.Pow(1-rhoW, float64(d)) // per-hop false-cover probability
	base := (1 - rho) * (1 - stopProb)
	sum := 0.0
	term := rho
	for i := 1; i <= n; i++ {
		sum += term
		term *= base
	}
	return sum
}

// eq2Simulate estimates the same probability by direct Monte Carlo.
func eq2Simulate(cfg Eq2Config, n int, rng *rand.Rand) float64 {
	stopProb := math.Pow(1-cfg.RhoW, float64(cfg.D))
	found := 0
	for run := 0; run < cfg.Runs; run++ {
		// Place the publication: broker i with prob rho*(1-rho)^(i-1);
		// with the residual probability it appears nowhere.
		pubAt := 0
		for i := 1; i <= n; i++ {
			if rng.Float64() < cfg.Rho {
				pubAt = i
				break
			}
		}
		if pubAt == 0 {
			continue
		}
		// Propagate s: it must survive pubAt-1 probabilistic checks
		// (the check at broker i happens before forwarding to i+1).
		reached := true
		for hop := 1; hop < pubAt; hop++ {
			if rng.Float64() < stopProb {
				reached = false
				break
			}
		}
		if reached {
			found++
		}
	}
	return stats.Ratio(float64(found), float64(cfg.Runs))
}

// Eq2 produces the Section 5 table: closed-form Equation 2 versus
// Monte-Carlo simulation over chain length, plus the no-error ceiling
// (1-(1-ρ)^n) for reference.
func Eq2(cfg Eq2Config) (*Table, error) {
	if cfg.Rho <= 0 || cfg.Rho >= 1 {
		return nil, fmt.Errorf("experiments: rho must be in (0,1), got %g", cfg.Rho)
	}
	rng := rand.New(rand.NewPCG(cfg.Seed, cfg.Seed^0xec2))
	t := &Table{
		ID:      "eq2",
		Title:   fmt.Sprintf("Eq. 2 delivery probability along a broker chain (rho=%g, rhoW=%g, d=%d)", cfg.Rho, cfg.RhoW, cfg.D),
		Columns: []string{"n", "eq2", "simulated", "noErrorCeiling"},
	}
	for _, n := range cfg.NValues {
		closed := Eq2ClosedForm(n, cfg.Rho, cfg.RhoW, cfg.D)
		sim := eq2Simulate(cfg, n, rng)
		ceiling := 1 - math.Pow(1-cfg.Rho, float64(n))
		t.Rows = append(t.Rows, []string{fi(n), f(closed), f(sim), f(ceiling)})
	}
	return t, nil
}
