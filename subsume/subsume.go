// Package subsume is the public API for probabilistic subsumption
// checking in content-based publish/subscribe systems, implementing
// Ouksel, Jurca, Podnar & Aberer, "Efficient Probabilistic Subsumption
// Checking for Content-Based Publish/Subscribe Systems" (Middleware
// 2006).
//
// A Subscription is a conjunction of range predicates over integer
// attributes — geometrically an axis-aligned box; a Publication is a
// point. The central operation is the group-subsumption question: is a
// subscription covered by the UNION of a set of subscriptions? The
// problem is co-NP complete, and Checker answers it with the paper's
// Monte-Carlo pipeline: deterministic fast paths, the minimized cover
// set reduction, and randomized point-witness search with a
// caller-chosen error probability δ. NO answers are always exact and
// carry an explicit witness; YES answers are exact on the pairwise
// path and wrong with probability at most δ otherwise.
//
// Basic use:
//
//	schema := subsume.NewSchema(
//		subsume.Attr("price", 0, 10_000),
//		subsume.Attr("qty", 0, 1_000),
//	)
//	s1 := subsume.NewSubscription(schema).Range("price", 0, 500).Build()
//	s2 := subsume.NewSubscription(schema).Range("price", 400, 900).Build()
//	s := subsume.NewSubscription(schema).Range("price", 100, 800).Build()
//
//	chk, _ := subsume.NewChecker(subsume.WithErrorProbability(1e-6))
//	res, _ := chk.Covered(s, []subsume.Subscription{s1, s2})
//	if res.Covered() {
//		// s need not be propagated: s1 ∨ s2 already covers it.
//	}
package subsume

import (
	"fmt"

	"probsum/internal/core"
	"probsum/internal/interval"
	"probsum/internal/subscription"
)

// Subscription is a conjunction of range predicates (a box in the
// attribute space). Build one with NewSubscription or FromIntervals.
type Subscription = subscription.Subscription

// Publication is a point in the attribute space.
type Publication = subscription.Publication

// Schema declares attribute names and their (ordered, finite) domains.
type Schema = subscription.Schema

// ErrUnsatisfiable is returned when a checked subscription is empty.
var ErrUnsatisfiable = core.ErrUnsatisfiable

// Attribute declares one schema attribute.
type Attribute struct {
	Name   string
	Lo, Hi int64
}

// Attr is shorthand for an Attribute literal.
func Attr(name string, lo, hi int64) Attribute {
	return Attribute{Name: name, Lo: lo, Hi: hi}
}

// NewSchema builds a schema from attribute declarations. It panics on
// invalid declarations (empty names, duplicate names, empty domains):
// schemas are static program structure, not runtime input.
func NewSchema(attrs ...Attribute) *Schema {
	names := make([]string, len(attrs))
	domains := make([]interval.Interval, len(attrs))
	for i, a := range attrs {
		names[i] = a.Name
		domains[i] = interval.New(a.Lo, a.Hi)
	}
	s, err := subscription.NewSchema(names, domains)
	if err != nil {
		panic(fmt.Sprintf("subsume: invalid schema: %v", err))
	}
	return s
}

// UniformSchema builds a schema with m attributes x1..xm over [lo, hi],
// the shape used throughout the paper's evaluation.
func UniformSchema(m int, lo, hi int64) *Schema {
	return subscription.UniformSchema(m, lo, hi)
}

// Builder constructs a subscription against a schema. Attributes not
// constrained default to their full domain ("not significant" in the
// paper's terms).
type Builder struct {
	schema *Schema
	sub    Subscription
	err    error
}

// NewSubscription starts a builder over the schema.
func NewSubscription(schema *Schema) *Builder {
	return &Builder{schema: schema, sub: subscription.FullOver(schema)}
}

// Range constrains the named attribute to [lo, hi].
func (b *Builder) Range(attr string, lo, hi int64) *Builder {
	if b.err != nil {
		return b
	}
	i, ok := b.schema.AttributeIndex(attr)
	if !ok {
		b.err = fmt.Errorf("subsume: unknown attribute %q", attr)
		return b
	}
	b.sub.Bounds[i] = interval.New(lo, hi)
	return b
}

// Eq constrains the named attribute to a single value.
func (b *Builder) Eq(attr string, v int64) *Builder { return b.Range(attr, v, v) }

// Build validates and returns the subscription, panicking on builder
// misuse (unknown attribute, bound outside the domain). Use Checked
// when the input is untrusted.
func (b *Builder) Build() Subscription {
	s, err := b.Checked()
	if err != nil {
		panic(fmt.Sprintf("subsume: %v", err))
	}
	return s
}

// Checked validates and returns the subscription and any error.
func (b *Builder) Checked() (Subscription, error) {
	if b.err != nil {
		return Subscription{}, b.err
	}
	if err := b.sub.Validate(b.schema); err != nil {
		return Subscription{}, err
	}
	return b.sub.Clone(), nil
}

// FromIntervals builds a subscription directly from [lo, hi] pairs, one
// per attribute in schema order.
func FromIntervals(pairs ...[2]int64) Subscription {
	bounds := make([]interval.Interval, len(pairs))
	for i, p := range pairs {
		bounds[i] = interval.New(p[0], p[1])
	}
	return Subscription{Bounds: bounds}
}

// NewPublication builds a publication from attribute values in schema
// order.
func NewPublication(values ...int64) Publication {
	return subscription.NewPublication(values...)
}

// Decision classifies a coverage answer.
type Decision = core.Decision

// Decision values.
const (
	// NotCovered is a definite NO backed by a witness.
	NotCovered = core.NotCovered
	// Covered is a definite YES (single-subscription cover).
	Covered = core.Covered
	// CoveredProbably is a probabilistic YES with error at most δ.
	CoveredProbably = core.CoveredProbably
)

// Result carries the decision, its evidence, and cost accounting; see
// the fields of core.Result.
type Result struct {
	inner core.Result
}

// Decision returns the three-valued outcome.
func (r Result) Decision() Decision { return r.inner.Decision }

// Covered reports whether the subscription may be suppressed (exact or
// probabilistic YES).
func (r Result) Covered() bool { return r.inner.Decision.IsCovered() }

// PointWitness returns the witness point proving non-coverage, or nil.
// The point lies inside the tested subscription and outside every
// member of ReducedSet; by the paper's Proposition 4 that proves
// non-coverage by the full set, though the point itself may fall
// inside a subscription the reduction removed as redundant.
func (r Result) PointWitness() []int64 { return r.inner.PointWitness }

// PolyhedronWitness returns the witness box proving non-coverage; the
// zero Subscription when none was produced.
func (r Result) PolyhedronWitness() Subscription { return r.inner.PolyhedronWitness }

// CoveringIndex returns the index of the single covering subscription
// for a pairwise YES, or -1.
func (r Result) CoveringIndex() int { return r.inner.CoveringRow }

// ReducedSet returns the indices surviving the minimized-cover-set
// reduction (the paper's S'), or nil.
func (r Result) ReducedSet() []int { return r.inner.ReducedSet }

// Trials returns the number of Monte-Carlo guesses executed.
func (r Result) Trials() int { return r.inner.ExecutedTrials }

// ErrorBoundExponent returns log10 of the theoretical trial bound d
// (Equation 1 of the paper).
func (r Result) ErrorBoundExponent() float64 { return r.inner.Log10D }

// Detail exposes the full internal result for diagnostics.
func (r Result) Detail() core.Result { return r.inner }

// Option configures a Checker.
type Option = core.Option

// WithErrorProbability sets the acceptable false-YES probability δ
// (default 1e-6).
func WithErrorProbability(delta float64) Option { return core.WithErrorProbability(delta) }

// WithMaxTrials caps Monte-Carlo guesses per query (default 100 000).
func WithMaxTrials(n int) Option { return core.WithMaxTrials(n) }

// WithSeed makes the checker's randomness reproducible.
func WithSeed(s1, s2 uint64) Option { return core.WithSeed(s1, s2) }

// WithMCS toggles the minimized-cover-set reduction (default on).
func WithMCS(on bool) Option { return core.WithMCS(on) }

// WithFastPaths toggles the deterministic short-circuits (default on).
func WithFastPaths(on bool) Option { return core.WithFastPaths(on) }

// Checker answers group-subsumption questions. Create one per
// goroutine; a Checker is not safe for concurrent use.
type Checker struct {
	inner *core.Checker
}

// NewChecker builds a checker with the paper's default configuration.
func NewChecker(opts ...Option) (*Checker, error) {
	c, err := core.NewChecker(opts...)
	if err != nil {
		return nil, err
	}
	return &Checker{inner: c}, nil
}

// Covered decides whether s ⊑ (set[0] ∨ … ∨ set[k-1]).
func (c *Checker) Covered(s Subscription, set []Subscription) (Result, error) {
	res, err := c.inner.Covered(s, set)
	if err != nil {
		return Result{}, err
	}
	return Result{inner: res}, nil
}

// CoveredInto is Covered for the hot path: the outcome is written into
// res, reusing its storage and the checker's internal scratch, so a
// caller that keeps one Result per checker performs zero steady-state
// heap allocations (only definite-NO answers allocate, to copy their
// witness out). res is overwritten entirely; slices previously read
// from it are invalidated by the next call.
func (c *Checker) CoveredInto(res *Result, s Subscription, set []Subscription) error {
	return c.inner.CoveredInto(&res.inner, s, set)
}

// CheckerPool hands out checkers to concurrent callers: a Checker owns
// a random stream and reusable scratch, so it must never be shared
// across goroutines — Get one per in-flight check (or per worker) and
// Put it back. Checkers are seeded reproducibly from the pool seed,
// each with an independent stream.
type CheckerPool struct {
	inner *core.CheckerPool
}

// NewCheckerPool builds a pool whose checkers use opts; any WithSeed
// among them is overridden by the pool's per-checker seed derivation.
func NewCheckerPool(seed uint64, opts ...Option) (*CheckerPool, error) {
	p, err := core.NewCheckerPool(seed, opts...)
	if err != nil {
		return nil, err
	}
	return &CheckerPool{inner: p}, nil
}

// Get checks a checker out of the pool, creating one when empty.
func (p *CheckerPool) Get() *Checker { return &Checker{inner: p.inner.Get()} }

// Put returns a checker for reuse; it must not be used afterwards.
func (p *CheckerPool) Put(c *Checker) {
	if c != nil {
		p.inner.Put(c.inner)
	}
}

// CoveredBySingle reports whether one subscription covers another —
// the classical pairwise check, exact and fast (O(m)).
func CoveredBySingle(s, by Subscription) bool { return by.Covers(s) }

// BoxMatchMode selects matching semantics for imprecise (box)
// publications: MatchCertain requires the subscription to cover the
// whole box, MatchPossible only an intersection (the paper's Section 1
// approximate-matching setting).
type BoxMatchMode = subscription.BoxMatchMode

// Box-publication matching modes.
const (
	MatchCertain  = subscription.MatchCertain
	MatchPossible = subscription.MatchPossible
)

// MatchesBox reports whether subscription s matches an imprecise
// publication represented as a box, under the given mode.
func MatchesBox(s Subscription, box Subscription, mode BoxMatchMode) bool {
	return s.MatchesBox(box, mode)
}

// Exact answers the subsumption question by exhaustive enumeration.
// It is exponential in the number of attributes and refuses boxes with
// more than ~4M points; intended for tests and tiny domains.
func Exact(s Subscription, set []Subscription) (bool, error) {
	covered, err := core.ExhaustiveCover(s, set)
	if err != nil {
		return false, err
	}
	return covered, nil
}
