package subsume_test

// Shard-balance pin (ISSUE 5 satellite): the stockticker workload used
// to land 245 of its 392 subscriptions in one of four shards under the
// default locality-first router — measurable via
// TableMetrics.ShardOccupancy since PR 3. The rendezvous router must
// spread the same workload without breaking any coverage semantics.

import (
	"math/rand/v2"
	"testing"

	"probsum/subsume"
)

// stocktickerWorkload reproduces examples/stockticker's subscription
// population exactly (same seeds, same construction): per desk one
// broad symbol-block subscription plus 48 per-trader refinements.
func stocktickerWorkload(t *testing.T, schema *subsume.Schema) (ids []subsume.ID, subs []subsume.Subscription) {
	t.Helper()
	const (
		symbols  = 400
		desks    = 8
		traders  = 48
		priceMax = 100_000
	)
	for d := 0; d < desks; d++ {
		rng := rand.New(rand.NewPCG(uint64(d), 99))
		symLo := int64(d * symbols / desks)
		symHi := int64((d+1)*symbols/desks - 1)
		ids = append(ids, subsume.ID(d*10_000))
		subs = append(subs, subsume.NewSubscription(schema).Range("sym", symLo, symHi).Build())
		for tr := 1; tr <= traders; tr++ {
			sym := symLo + rng.Int64N(symHi-symLo+1)
			lo := rng.Int64N(priceMax / 2)
			ids = append(ids, subsume.ID(d*10_000+tr))
			subs = append(subs, subsume.NewSubscription(schema).
				Range("sym", sym, sym).
				Range("price", lo, lo+rng.Int64N(priceMax-lo)).
				Range("size", rng.Int64N(10_000), 1_000_000).
				Build())
		}
	}
	return ids, subs
}

func occupancy(t *testing.T, tbl *subsume.Table) (occ []int, total, maxShard int) {
	t.Helper()
	m := tbl.Metrics()
	for _, n := range m.ShardOccupancy {
		total += n
		if n > maxShard {
			maxShard = n
		}
	}
	return m.ShardOccupancy, total, maxShard
}

func TestRendezvousRouterBalancesStockticker(t *testing.T) {
	const shards = 4
	schema := subsume.NewSchema(
		subsume.Attr("sym", 0, 399),
		subsume.Attr("price", 0, 100_000),
		subsume.Attr("size", 0, 1_000_000),
	)
	ids, subs := stocktickerWorkload(t, schema)

	build := func(opts ...subsume.TableOption) *subsume.Table {
		t.Helper()
		base := []subsume.TableOption{
			subsume.WithShards(shards),
			subsume.WithTableSchema(schema),
			subsume.WithTableSeed(2026),
		}
		tbl, err := subsume.NewTable(subsume.Group, append(base, opts...)...)
		if err != nil {
			t.Fatal(err)
		}
		for i, id := range ids {
			if _, err := tbl.Subscribe(id, subs[i]); err != nil {
				t.Fatal(err)
			}
		}
		return tbl
	}

	defTbl := build()
	rdvTbl := build(subsume.WithRendezvousPlacement())

	defOcc, defTotal, defMax := occupancy(t, defTbl)
	rdvOcc, rdvTotal, rdvMax := occupancy(t, rdvTbl)
	if defTotal != len(ids) || rdvTotal != len(ids) {
		t.Fatalf("occupancy totals %d/%d, want %d", defTotal, rdvTotal, len(ids))
	}
	t.Logf("default router occupancy: %v (max %d/%d)", defOcc, defMax, defTotal)
	t.Logf("rendezvous occupancy:     %v (max %d/%d)", rdvOcc, rdvMax, rdvTotal)

	// The regression being fixed: the default router clumps the
	// majority of the workload into one shard.
	if defMax*2 <= defTotal {
		t.Fatalf("default router no longer clumps (max %d of %d) — update this pin", defMax, defTotal)
	}
	// The fix: no shard holds more than ~40%% of the population (a
	// perfectly even split would be 25%% per shard).
	if rdvMax*5 > rdvTotal*2 {
		t.Fatalf("rendezvous router still clumps: max shard holds %d of %d", rdvMax, rdvTotal)
	}

	// Placement must not change WHAT is stored or matched — only
	// where. Both tables hold the same population and match
	// identically.
	if defTbl.Len() != rdvTbl.Len() {
		t.Fatalf("table sizes diverge: %d vs %d", defTbl.Len(), rdvTbl.Len())
	}
	rng := rand.New(rand.NewPCG(17, 23))
	for i := 0; i < 200; i++ {
		p := subsume.NewPublication(rng.Int64N(400), rng.Int64N(100_001), rng.Int64N(1_000_001))
		a, b := defTbl.Match(p), rdvTbl.Match(p)
		if len(a) != len(b) {
			t.Fatalf("match %d diverges: %d vs %d ids", i, len(a), len(b))
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("match %d diverges at %d: %v vs %v", i, j, a[j], b[j])
			}
		}
	}
}
