// Table: the maintained coverage table, the paper's payoff operation.
// A broker does not ask one-shot Covered questions — it keeps the set
// of forwarded subscriptions and suppresses arrivals the active set
// already covers. Table packages that machinery (internal/store) as an
// embeddable, concurrency-safe component: hash-sharded stores, a
// cross-shard merge for coverage decisions that span shards, batch
// admission for arrival bursts, and Algorithm 5 matching.
package subsume

import (
	"fmt"

	"probsum/internal/core"
	"probsum/internal/store"
)

// Policy selects how a Table reduces arriving subscriptions.
type Policy int

// Coverage policies.
const (
	// Flood keeps every subscription active (no reduction).
	Flood Policy = iota + 1
	// Pairwise suppresses a subscription only when a single active
	// subscription covers it (classical deterministic systems).
	Pairwise
	// Group suppresses a subscription when the probabilistic checker
	// decides the active set jointly covers it (the paper's
	// contribution).
	Group
)

// String returns the policy name.
func (p Policy) String() string {
	switch p {
	case Flood:
		return "flood"
	case Pairwise:
		return "pairwise"
	case Group:
		return "group"
	default:
		return "unknown"
	}
}

func (p Policy) toStore() (store.Policy, error) {
	switch p {
	case Flood:
		return store.PolicyNone, nil
	case Pairwise:
		return store.PolicyPairwise, nil
	case Group:
		return store.PolicyGroup, nil
	default:
		return 0, fmt.Errorf("subsume: invalid policy %d", p)
	}
}

// ID identifies a subscription within a Table.
type ID = store.ID

// Status reports where a subscription lives: StatusActive entries
// drive routing and matching; StatusCovered entries are suppressed by
// the active set and stored in the cover forest.
type Status = store.Status

// Status values.
const (
	StatusActive  = store.StatusActive
	StatusCovered = store.StatusCovered
)

// SubscribeResult reports how an arrival was classified; see the
// fields of store.SubscribeResult.
type SubscribeResult = store.SubscribeResult

// UnsubscribeResult reports a removal and any promotions it caused.
type UnsubscribeResult = store.UnsubscribeResult

// UnsubscribeBatchResult reports a batch removal: how many IDs were
// removed and which covered subscriptions the burst promoted.
type UnsubscribeBatchResult = store.UnsubscribeBatchResult

// ShardStats sizes one shard of a Table.
type ShardStats = store.ShardStats

// TableSnapshot is a point-in-time size report, per shard and total.
type TableSnapshot = store.ShardedSnapshot

// TableMetrics are a Table's cumulative operation counters.
type TableMetrics = store.ShardedMetrics

// ErrDuplicateID is returned when subscribing an ID already in use.
var ErrDuplicateID = store.ErrDuplicateID

// TableOption configures a Table.
type TableOption func(*tableConfig)

type tableConfig struct {
	shards       int
	seed         uint64
	copts        []core.Option
	reversePrune bool
	pruning      bool
	schema       *Schema
	router       Router
	rendezvous   bool
}

// Router maps a subscription to a shard-selection hash — under the
// default placement the shard is the hash modulo the shard count;
// under WithRendezvousPlacement it is the rendezvous placement key.
// See WithShardRouter.
type Router = store.Router

// WithShards sets the shard count (default 1). A single shard keeps
// the exact semantics of one sequential coverage table; more shards
// add concurrency at a documented cost: group coverage weakens to
// PER-SHARD unions, so a set of subscriptions spread across shards is
// never considered jointly and a sharded table may keep subscriptions
// active that a one-shard table would suppress. The weakening is sound
// (it errs toward forwarding, never toward losing publications).
func WithShards(n int) TableOption {
	return func(c *tableConfig) { c.shards = n }
}

// WithTableSeed seeds the checker pool per-shard checkers are drawn
// from under Group (default 1). With one shard the checker is built
// directly from the WithTableChecker options instead, so an explicit
// WithSeed there is honored exactly.
func WithTableSeed(seed uint64) TableOption {
	return func(c *tableConfig) { c.seed = seed }
}

// WithTableChecker appends checker options (WithErrorProbability,
// WithMaxTrials, …) applied to every per-shard checker under Group.
func WithTableChecker(opts ...Option) TableOption {
	return func(c *tableConfig) { c.copts = append(c.copts, opts...) }
}

// WithTableReversePrune enables demoting existing active subscriptions
// that an arrival covers (the Section 4.4 multi-level forest). With
// more than one shard, demotion scans only the arrival's home shard.
func WithTableReversePrune(enabled bool) TableOption {
	return func(c *tableConfig) { c.reversePrune = enabled }
}

// WithTableCandidatePruning toggles the per-attribute candidate index
// in every shard (default on).
func WithTableCandidatePruning(enabled bool) TableOption {
	return func(c *tableConfig) { c.pruning = enabled }
}

// WithTableSchema makes shard routing schema-aware: the dominant
// (most selective) bound is judged relative to its domain, so boxes
// concentrated in the same region of the same attribute tend to share
// a shard and coverage relations stay intra-shard.
func WithTableSchema(schema *Schema) TableOption {
	return func(c *tableConfig) { c.schema = schema }
}

// WithShardRouter replaces the shard-placement hash entirely with a
// custom function. Routing is a placement heuristic only; correctness
// never depends on it.
func WithShardRouter(r Router) TableOption {
	return func(c *tableConfig) { c.router = r }
}

// WithRendezvousPlacement switches the table to balance-first shard
// placement: subscriptions carry a fine-grained dominant-bound key
// (or the WithShardRouter value), every shard ranks the key by salted
// rendezvous hash, and activation takes the less-occupied of the two
// top-ranked shards. Use it when the default locality-first router
// clumps a skewed workload into one shard — covered subscriptions
// always live with their coverer, so a broad subscription drags its
// covered population into its own shard and only load-aware placement
// spreads those piles (measure with TableMetrics.ShardOccupancy). The
// tradeoff is weaker placement locality: coverage leans more on the
// (sound) cross-shard admission scan.
func WithRendezvousPlacement() TableOption {
	return func(c *tableConfig) { c.rendezvous = true }
}

// Table is a maintained coverage table, safe for concurrent callers.
// Subscriptions are admitted covered when the active set (per shard)
// already covers them and active otherwise; Match answers publication
// routing across the whole table. Concurrency races always resolve
// toward keeping subscriptions active — the direction that forwards
// more and never loses publications.
type Table struct {
	sh     *store.Sharded
	policy Policy
}

// NewTable builds a coverage table under the given policy.
func NewTable(policy Policy, opts ...TableOption) (*Table, error) {
	sp, err := policy.toStore()
	if err != nil {
		return nil, err
	}
	cfg := tableConfig{shards: 1, seed: 1, pruning: true}
	for _, opt := range opts {
		opt(&cfg)
	}
	sopts := []store.ShardedOption{
		store.WithShards(cfg.shards),
		store.WithShardSeed(cfg.seed),
		store.WithShardReversePrune(cfg.reversePrune),
		store.WithShardCandidatePruning(cfg.pruning),
	}
	if len(cfg.copts) > 0 {
		sopts = append(sopts, store.WithShardCheckerOptions(cfg.copts...))
	}
	if cfg.schema != nil {
		sopts = append(sopts, store.WithShardSchema(cfg.schema))
	}
	if cfg.router != nil {
		sopts = append(sopts, store.WithShardRouter(cfg.router))
	}
	if cfg.rendezvous {
		sopts = append(sopts, store.WithShardRendezvous(true))
	}
	sh, err := store.NewSharded(sp, sopts...)
	if err != nil {
		return nil, err
	}
	return &Table{sh: sh, policy: policy}, nil
}

// Policy returns the table's coverage policy.
func (t *Table) Policy() Policy { return t.policy }

// Shards returns the shard count.
func (t *Table) Shards() int { return t.sh.ShardCount() }

// Subscribe admits one subscription under a caller-chosen unique ID.
func (t *Table) Subscribe(id ID, s Subscription) (SubscribeResult, error) {
	return t.sh.Subscribe(id, s)
}

// SubscribeBatch admits an arrival burst in one call. The burst is
// processed in descending box-volume order inside a single critical
// section, so within-burst coverage is found immediately and broad
// subscriptions suppress the narrow ones arriving alongside them;
// results are returned in input order. On burst workloads this is
// substantially faster than per-item Subscribe (see
// BenchmarkTableSubscribeBatch).
func (t *Table) SubscribeBatch(ids []ID, subs []Subscription) ([]SubscribeResult, error) {
	return t.sh.SubscribeBatch(ids, subs)
}

// Unsubscribe removes id, promoting covered subscriptions whose cover
// no longer holds (and, across shards, re-covering promoted ones into
// shards that still cover them). Removing an unknown ID is a no-op.
func (t *Table) Unsubscribe(id ID) (UnsubscribeResult, error) {
	return t.sh.Unsubscribe(id)
}

// UnsubscribeBatch removes a cancellation burst in one call, sharing a
// single promotion-cascade frontier: each surviving subscription that
// lost coverers to the burst is re-validated exactly once against the
// post-removal active set, instead of once per removed coverer as a
// per-item loop would (see BenchmarkTableUnsubscribeBatch). Unknown
// IDs are skipped; Promoted lists the subscriptions left active, in
// ID order.
func (t *Table) UnsubscribeBatch(ids []ID) (UnsubscribeBatchResult, error) {
	return t.sh.UnsubscribeBatch(ids)
}

// Match returns the sorted IDs of every stored subscription matching
// p — active and covered, via the paper's Algorithm 5 descent.
func (t *Table) Match(p Publication) []ID { return t.sh.Match(p) }

// Get returns the subscription and status for id.
func (t *Table) Get(id ID) (Subscription, Status, bool) { return t.sh.Get(id) }

// ActiveIDs returns the sorted IDs of the active set across shards.
func (t *Table) ActiveIDs() []ID { return t.sh.ActiveIDs() }

// Len returns the total number of stored subscriptions.
func (t *Table) Len() int { return t.Snapshot().Len }

// ActiveLen returns the active-set size across shards.
func (t *Table) ActiveLen() int { return t.Snapshot().Active }

// CoveredLen returns the covered-set size across shards.
func (t *Table) CoveredLen() int { return t.Snapshot().Covered }

// Snapshot reports current sizes, per shard and total.
func (t *Table) Snapshot() TableSnapshot { return t.sh.Snapshot() }

// Metrics reports cumulative operation counters.
func (t *Table) Metrics() TableMetrics { return t.sh.Metrics() }
