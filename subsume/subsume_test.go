package subsume_test

import (
	"testing"

	"probsum/subsume"
)

func schema2D(t *testing.T) *subsume.Schema {
	t.Helper()
	return subsume.NewSchema(
		subsume.Attr("x1", 0, 10000),
		subsume.Attr("x2", 0, 10000),
	)
}

func TestBuilderAndChecker(t *testing.T) {
	schema := schema2D(t)
	// The paper's Table 3 example through the public API.
	s1 := subsume.NewSubscription(schema).Range("x1", 820, 850).Range("x2", 1001, 1007).Build()
	s2 := subsume.NewSubscription(schema).Range("x1", 840, 880).Range("x2", 1002, 1009).Build()
	s := subsume.NewSubscription(schema).Range("x1", 830, 870).Range("x2", 1003, 1006).Build()

	chk, err := subsume.NewChecker(subsume.WithSeed(1, 2), subsume.WithErrorProbability(1e-9))
	if err != nil {
		t.Fatal(err)
	}
	res, err := chk.Covered(s, []subsume.Subscription{s1, s2})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Covered() {
		t.Fatalf("Table 3 example must be covered, got %v", res.Decision())
	}
	exact, err := subsume.Exact(s, []subsume.Subscription{s1, s2})
	if err != nil {
		t.Fatal(err)
	}
	if !exact {
		t.Fatal("exact oracle disagrees")
	}
}

func TestCheckerNonCoverWitness(t *testing.T) {
	schema := schema2D(t)
	s1 := subsume.NewSubscription(schema).Range("x1", 820, 850).Range("x2", 1002, 1009).Build()
	s2 := subsume.NewSubscription(schema).Range("x1", 840, 870).Range("x2", 1001, 1007).Build()
	s := subsume.NewSubscription(schema).Range("x1", 830, 890).Range("x2", 1003, 1006).Build()

	chk, err := subsume.NewChecker(subsume.WithSeed(3, 4))
	if err != nil {
		t.Fatal(err)
	}
	res, err := chk.Covered(s, []subsume.Subscription{s1, s2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Covered() {
		t.Fatal("Table 6 example must not be covered")
	}
	w := res.PolyhedronWitness()
	if !w.IsSatisfiable() {
		t.Fatal("expected a polyhedron witness")
	}
	if !s.Covers(w) || w.Intersects(s1) || w.Intersects(s2) {
		t.Errorf("witness %v is not genuine", w)
	}
}

func TestBuilderErrors(t *testing.T) {
	schema := schema2D(t)
	if _, err := subsume.NewSubscription(schema).Range("nope", 0, 1).Checked(); err == nil {
		t.Error("unknown attribute accepted")
	}
	if _, err := subsume.NewSubscription(schema).Range("x1", 0, 99999).Checked(); err == nil {
		t.Error("out-of-domain bound accepted")
	}
	if _, err := subsume.NewSubscription(schema).Range("x1", 9, 3).Checked(); err == nil {
		t.Error("empty range accepted")
	}
	defer func() {
		if recover() == nil {
			t.Error("Build did not panic on builder misuse")
		}
	}()
	subsume.NewSubscription(schema).Range("nope", 0, 1).Build()
}

func TestNewSchemaPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewSchema did not panic on duplicate names")
		}
	}()
	subsume.NewSchema(subsume.Attr("a", 0, 1), subsume.Attr("a", 0, 1))
}

func TestEqAndPublication(t *testing.T) {
	schema := schema2D(t)
	s := subsume.NewSubscription(schema).Eq("x1", 42).Build()
	if !s.Matches(subsume.NewPublication(42, 7)) {
		t.Error("Eq constraint should match")
	}
	if s.Matches(subsume.NewPublication(43, 7)) {
		t.Error("Eq constraint should reject other values")
	}
}

func TestFromIntervalsAndCoveredBySingle(t *testing.T) {
	a := subsume.FromIntervals([2]int64{0, 10}, [2]int64{0, 10})
	b := subsume.FromIntervals([2]int64{2, 8}, [2]int64{2, 8})
	if !subsume.CoveredBySingle(b, a) {
		t.Error("b should be covered by a")
	}
	if subsume.CoveredBySingle(a, b) {
		t.Error("a should not be covered by b")
	}
}

func TestUniformSchema(t *testing.T) {
	sc := subsume.UniformSchema(3, 0, 99)
	if sc.Len() != 3 {
		t.Fatalf("Len = %d", sc.Len())
	}
	s := subsume.NewSubscription(sc).Range("x2", 5, 10).Build()
	if s.Bounds[1].Lo != 5 || s.Bounds[1].Hi != 10 {
		t.Errorf("bounds = %v", s.Bounds)
	}
}

func TestResultAccessors(t *testing.T) {
	schema := schema2D(t)
	big := subsume.NewSubscription(schema).Build() // full space
	s := subsume.NewSubscription(schema).Range("x1", 10, 20).Build()
	chk, err := subsume.NewChecker(subsume.WithSeed(9, 9))
	if err != nil {
		t.Fatal(err)
	}
	res, err := chk.Covered(s, []subsume.Subscription{big})
	if err != nil {
		t.Fatal(err)
	}
	if res.Decision() != subsume.Covered {
		t.Fatalf("decision = %v", res.Decision())
	}
	if res.CoveringIndex() != 0 {
		t.Errorf("covering index = %d", res.CoveringIndex())
	}
	if res.Trials() != 0 {
		t.Errorf("pairwise path should not guess, trials = %d", res.Trials())
	}
}

func TestCheckerUnsatisfiable(t *testing.T) {
	chk, err := subsume.NewChecker()
	if err != nil {
		t.Fatal(err)
	}
	bad := subsume.FromIntervals([2]int64{5, 1})
	if _, err := chk.Covered(bad, nil); err == nil {
		t.Error("unsatisfiable subscription accepted")
	}
}

func TestCoveredIntoAndPool(t *testing.T) {
	schema := schema2D(t)
	s1 := subsume.NewSubscription(schema).Range("x1", 820, 850).Range("x2", 1001, 1007).Build()
	s2 := subsume.NewSubscription(schema).Range("x1", 840, 880).Range("x2", 1002, 1009).Build()
	s := subsume.NewSubscription(schema).Range("x1", 830, 870).Range("x2", 1003, 1006).Build()
	set := []subsume.Subscription{s1, s2}

	pool, err := subsume.NewCheckerPool(7, subsume.WithErrorProbability(1e-9))
	if err != nil {
		t.Fatal(err)
	}
	chk := pool.Get()
	defer pool.Put(chk)
	var res subsume.Result
	for i := 0; i < 3; i++ {
		if err := chk.CoveredInto(&res, s, set); err != nil {
			t.Fatal(err)
		}
		if !res.Covered() {
			t.Fatalf("iteration %d: Table 3 example must be covered, got %v", i, res.Decision())
		}
	}
}
