package subsume

// JSON codecs for schemas, subscriptions, and publications — the
// formats the CLI tools (cmd/psclient) and any external tooling
// exchange. They are thin re-exports of the internal codec so
// programs built on the public API alone can parse user input:
//
//	schema:       [{"name":"x1","lo":0,"hi":10000}, ...]
//	subscription: {"x1":[100,500],"x2":[0,50]}   (omitted attrs = full domain)
//	publication:  {"x1":42,"x2":7}               (omitted attrs = domain low end)

import "probsum/internal/subscription"

// MarshalSchema encodes a schema as JSON.
func MarshalSchema(s *Schema) ([]byte, error) { return subscription.MarshalSchema(s) }

// UnmarshalSchema decodes a JSON schema declaration.
func UnmarshalSchema(data []byte) (*Schema, error) { return subscription.UnmarshalSchema(data) }

// MarshalSubscription encodes a subscription against its schema.
func MarshalSubscription(s Subscription, schema *Schema) ([]byte, error) {
	return subscription.MarshalSubscription(s, schema)
}

// UnmarshalSubscription decodes a JSON subscription against a schema.
func UnmarshalSubscription(data []byte, schema *Schema) (Subscription, error) {
	return subscription.UnmarshalSubscription(data, schema)
}

// MarshalPublication encodes a publication against its schema.
func MarshalPublication(p Publication, schema *Schema) ([]byte, error) {
	return subscription.MarshalPublication(p, schema)
}

// UnmarshalPublication decodes a JSON publication against a schema.
func UnmarshalPublication(data []byte, schema *Schema) (Publication, error) {
	return subscription.UnmarshalPublication(data, schema)
}
