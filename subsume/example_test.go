package subsume_test

import (
	"fmt"

	"probsum/subsume"
)

// The paper's running example: two subscriptions jointly cover a third
// that neither covers alone.
func ExampleChecker_Covered() {
	schema := subsume.NewSchema(
		subsume.Attr("x1", 0, 10000),
		subsume.Attr("x2", 0, 10000),
	)
	s1 := subsume.NewSubscription(schema).Range("x1", 820, 850).Range("x2", 1001, 1007).Build()
	s2 := subsume.NewSubscription(schema).Range("x1", 840, 880).Range("x2", 1002, 1009).Build()
	s := subsume.NewSubscription(schema).Range("x1", 830, 870).Range("x2", 1003, 1006).Build()

	chk, _ := subsume.NewChecker(
		subsume.WithErrorProbability(1e-6),
		subsume.WithSeed(1, 2),
	)
	res, _ := chk.Covered(s, []subsume.Subscription{s1, s2})
	fmt.Println("covered:", res.Covered())
	// Output:
	// covered: true
}

// A definite NO always carries a geometric witness.
func ExampleResult_PolyhedronWitness() {
	schema := subsume.NewSchema(
		subsume.Attr("x1", 0, 10000),
		subsume.Attr("x2", 0, 10000),
	)
	s1 := subsume.NewSubscription(schema).Range("x1", 820, 850).Range("x2", 1002, 1009).Build()
	s2 := subsume.NewSubscription(schema).Range("x1", 840, 870).Range("x2", 1001, 1007).Build()
	s := subsume.NewSubscription(schema).Range("x1", 830, 890).Range("x2", 1003, 1006).Build()

	chk, _ := subsume.NewChecker(subsume.WithSeed(1, 2))
	res, _ := chk.Covered(s, []subsume.Subscription{s1, s2})
	fmt.Println("covered:", res.Covered())
	fmt.Println("uncovered region:", res.PolyhedronWitness())
	// Output:
	// covered: false
	// uncovered region: [871,890]x[1003,1006]
}

// Publications are points; matching a single subscription is exact.
func ExampleSubscription_Matches() {
	schema := subsume.NewSchema(
		subsume.Attr("price", 0, 1000),
		subsume.Attr("qty", 0, 100),
	)
	s := subsume.NewSubscription(schema).Range("price", 100, 500).Build()
	fmt.Println(s.Matches(subsume.NewPublication(250, 7)))
	fmt.Println(s.Matches(subsume.NewPublication(800, 7)))
	// Output:
	// true
	// false
}
