package subsume_test

import (
	"fmt"

	"probsum/subsume"
)

// The paper's running example: two subscriptions jointly cover a third
// that neither covers alone.
func ExampleChecker_Covered() {
	schema := subsume.NewSchema(
		subsume.Attr("x1", 0, 10000),
		subsume.Attr("x2", 0, 10000),
	)
	s1 := subsume.NewSubscription(schema).Range("x1", 820, 850).Range("x2", 1001, 1007).Build()
	s2 := subsume.NewSubscription(schema).Range("x1", 840, 880).Range("x2", 1002, 1009).Build()
	s := subsume.NewSubscription(schema).Range("x1", 830, 870).Range("x2", 1003, 1006).Build()

	chk, _ := subsume.NewChecker(
		subsume.WithErrorProbability(1e-6),
		subsume.WithSeed(1, 2),
	)
	res, _ := chk.Covered(s, []subsume.Subscription{s1, s2})
	fmt.Println("covered:", res.Covered())
	// Output:
	// covered: true
}

// A definite NO always carries a geometric witness.
func ExampleResult_PolyhedronWitness() {
	schema := subsume.NewSchema(
		subsume.Attr("x1", 0, 10000),
		subsume.Attr("x2", 0, 10000),
	)
	s1 := subsume.NewSubscription(schema).Range("x1", 820, 850).Range("x2", 1002, 1009).Build()
	s2 := subsume.NewSubscription(schema).Range("x1", 840, 870).Range("x2", 1001, 1007).Build()
	s := subsume.NewSubscription(schema).Range("x1", 830, 890).Range("x2", 1003, 1006).Build()

	chk, _ := subsume.NewChecker(subsume.WithSeed(1, 2))
	res, _ := chk.Covered(s, []subsume.Subscription{s1, s2})
	fmt.Println("covered:", res.Covered())
	fmt.Println("uncovered region:", res.PolyhedronWitness())
	// Output:
	// covered: false
	// uncovered region: [871,890]x[1003,1006]
}

// Publications are points; matching a single subscription is exact.
func ExampleSubscription_Matches() {
	schema := subsume.NewSchema(
		subsume.Attr("price", 0, 1000),
		subsume.Attr("qty", 0, 100),
	)
	s := subsume.NewSubscription(schema).Range("price", 100, 500).Build()
	fmt.Println(s.Matches(subsume.NewPublication(250, 7)))
	fmt.Println(s.Matches(subsume.NewPublication(800, 7)))
	// Output:
	// true
	// false
}

// A Table is the maintained form of the coverage question a broker
// actually asks: admit a burst of subscriptions, suppress the ones the
// active set already covers, route publications, and promote covered
// subscriptions when their coverer cancels. Tables are safe for
// concurrent callers; sharding distributes the load.
func ExampleTable() {
	schema := subsume.NewSchema(
		subsume.Attr("price", 0, 10_000),
		subsume.Attr("qty", 0, 1_000),
	)
	tbl, _ := subsume.NewTable(subsume.Group,
		subsume.WithShards(4),
		subsume.WithTableSchema(schema),
		subsume.WithTableSeed(1),
	)

	broad := subsume.NewSubscription(schema).Range("price", 0, 5000).Build()
	mid := subsume.NewSubscription(schema).Range("price", 4000, 8000).Build()
	narrow := subsume.NewSubscription(schema).
		Range("price", 1000, 2000).Range("qty", 0, 500).Build()

	// One arrival burst: the batch path admits the broad subscriptions
	// first, so narrow is suppressed on arrival — whichever shard its
	// coverer lives in.
	results, _ := tbl.SubscribeBatch(
		[]subsume.ID{1, 2, 3},
		[]subsume.Subscription{broad, mid, narrow},
	)
	for i, r := range results {
		fmt.Printf("sub %d: %v %v\n", i+1, r.Status, r.Coverers)
	}
	fmt.Println("active:", tbl.ActiveLen(), "covered:", tbl.CoveredLen())

	// Publications match against the whole table (Algorithm 5).
	fmt.Println("match (1500, 100):", tbl.Match(subsume.NewPublication(1500, 100)))

	// When the coverer cancels, the suppressed subscription surfaces.
	ures, _ := tbl.Unsubscribe(1)
	fmt.Println("promoted:", ures.Promoted)
	// Output:
	// sub 1: active []
	// sub 2: active []
	// sub 3: covered [1]
	// active: 2 covered: 1
	// match (1500, 100): [1 3]
	// promoted: [3]
}
