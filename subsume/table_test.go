package subsume_test

import (
	"math/rand/v2"
	"slices"
	"sync"
	"testing"

	"probsum/internal/core"
	"probsum/internal/store"
	"probsum/subsume"
)

func tableSchema() *subsume.Schema {
	return subsume.NewSchema(
		subsume.Attr("x", 0, 999),
		subsume.Attr("y", 0, 999),
	)
}

func randomTableSub(rng *rand.Rand, schema *subsume.Schema) subsume.Subscription {
	loX, loY := rng.Int64N(800), rng.Int64N(800)
	return subsume.NewSubscription(schema).
		Range("x", loX, loX+10+rng.Int64N(180)).
		Range("y", loY, loY+10+rng.Int64N(180)).
		Build()
}

// TestTableSingleShardStoreParity drives a churn script with batches
// through the public Table (one shard, explicit seed) and a raw
// internal store with an identically seeded checker: statuses, active
// sets, and Match results must agree exactly — the acceptance pin
// that WithShards(1) is the sequential coverage table.
func TestTableSingleShardStoreParity(t *testing.T) {
	schema := tableSchema()
	tbl, err := subsume.NewTable(subsume.Group,
		subsume.WithShards(1),
		subsume.WithTableSchema(schema),
		subsume.WithTableChecker(subsume.WithSeed(7, 8), subsume.WithMaxTrials(5000)),
	)
	if err != nil {
		t.Fatal(err)
	}
	chk, err := core.NewChecker(core.WithSeed(7, 8), core.WithMaxTrials(5000))
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := store.New(store.PolicyGroup, store.WithChecker(chk))
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewPCG(81, 82))
	var live []subsume.ID
	next := subsume.ID(0)
	for step := 0; step < 200; step++ {
		switch op := rng.IntN(10); {
		case op < 4:
			next++
			s := randomTableSub(rng, schema)
			got, err := tbl.Subscribe(next, s)
			if err != nil {
				t.Fatal(err)
			}
			want, err := oracle.Subscribe(next, s)
			if err != nil {
				t.Fatal(err)
			}
			if got.Status != want.Status || !slices.Equal(got.Coverers, want.Coverers) {
				t.Fatalf("step %d: %+v vs oracle %+v", step, got, want)
			}
			live = append(live, next)
		case op < 7:
			n := 2 + rng.IntN(6)
			ids := make([]subsume.ID, n)
			subs := make([]subsume.Subscription, n)
			for i := range ids {
				next++
				ids[i] = next
				subs[i] = randomTableSub(rng, schema)
			}
			got, err := tbl.SubscribeBatch(ids, subs)
			if err != nil {
				t.Fatal(err)
			}
			want, err := oracle.SubscribeBatch(ids, subs)
			if err != nil {
				t.Fatal(err)
			}
			for i := range want {
				if got[i].Status != want[i].Status {
					t.Fatalf("step %d item %d: %+v vs oracle %+v", step, i, got[i], want[i])
				}
			}
			live = append(live, ids...)
		case len(live) > 0:
			i := rng.IntN(len(live))
			id := live[i]
			live = slices.Delete(live, i, i+1)
			got, err := tbl.Unsubscribe(id)
			if err != nil {
				t.Fatal(err)
			}
			want, err := oracle.Unsubscribe(id)
			if err != nil {
				t.Fatal(err)
			}
			if got.Existed != want.Existed || !slices.Equal(got.Promoted, want.Promoted) {
				t.Fatalf("step %d: %+v vs oracle %+v", step, got, want)
			}
		}
		if got, want := tbl.ActiveIDs(), oracle.ActiveIDs(); !slices.Equal(got, want) {
			t.Fatalf("step %d: active %v vs oracle %v", step, got, want)
		}
		p := subsume.NewPublication(rng.Int64N(1000), rng.Int64N(1000))
		if got, want := tbl.Match(p), oracle.Match(p); !slices.Equal(got, want) {
			t.Fatalf("step %d: Match %v vs oracle %v", step, got, want)
		}
	}
	if tbl.Len() != oracle.Len() || tbl.ActiveLen() != oracle.ActiveLen() || tbl.CoveredLen() != oracle.CoveredLen() {
		t.Fatalf("sizes diverged: table %d/%d/%d oracle %d/%d/%d",
			tbl.Len(), tbl.ActiveLen(), tbl.CoveredLen(),
			oracle.Len(), oracle.ActiveLen(), oracle.CoveredLen())
	}
}

// TestTableConcurrent exercises the full public surface from
// concurrent goroutines on a sharded Group table (run under -race)
// and checks the accounting afterwards.
func TestTableConcurrent(t *testing.T) {
	schema := tableSchema()
	tbl, err := subsume.NewTable(subsume.Group,
		subsume.WithShards(4),
		subsume.WithTableSchema(schema),
		subsume.WithTableSeed(99),
		subsume.WithTableChecker(subsume.WithMaxTrials(2000)),
	)
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 6
	counts := make([]int, goroutines) // surviving subscriptions per goroutine
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(uint64(g)+7, uint64(g)+11))
			base := subsume.ID(g * 1_000_000)
			var mine []subsume.ID
			for i := 0; i < 120; i++ {
				switch op := rng.IntN(10); {
				case op < 4:
					id := base + subsume.ID(i)
					if _, err := tbl.Subscribe(id, randomTableSub(rng, schema)); err != nil {
						t.Errorf("g%d subscribe: %v", g, err)
						return
					}
					mine = append(mine, id)
				case op < 6:
					n := 2 + rng.IntN(4)
					ids := make([]subsume.ID, n)
					subs := make([]subsume.Subscription, n)
					for j := range ids {
						ids[j] = base + subsume.ID(10_000+i*10+j)
						subs[j] = randomTableSub(rng, schema)
					}
					if _, err := tbl.SubscribeBatch(ids, subs); err != nil {
						t.Errorf("g%d batch: %v", g, err)
						return
					}
					mine = append(mine, ids...)
				case op < 7 && len(mine) > 0:
					j := rng.IntN(len(mine))
					if _, err := tbl.Unsubscribe(mine[j]); err != nil {
						t.Errorf("g%d unsubscribe: %v", g, err)
						return
					}
					mine = slices.Delete(mine, j, j+1)
				case op == 7 && len(mine) > 3:
					// Cancellation burst through the shared-frontier path.
					n := 2 + rng.IntN(2)
					burst := make([]subsume.ID, n)
					for j := range burst {
						burst[j] = mine[len(mine)-1-j]
					}
					res, err := tbl.UnsubscribeBatch(burst)
					if err != nil {
						t.Errorf("g%d unsubscribe batch: %v", g, err)
						return
					}
					if res.Removed != n {
						t.Errorf("g%d unsubscribe batch removed %d, want %d", g, res.Removed, n)
						return
					}
					mine = mine[:len(mine)-n]
				case op < 9:
					tbl.Match(subsume.NewPublication(rng.Int64N(1000), rng.Int64N(1000)))
				default:
					tbl.Snapshot()
				}
			}
			counts[g] = len(mine)
		}(g)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	want := 0
	for _, c := range counts {
		want += c
	}
	snap := tbl.Snapshot()
	if snap.Len != want {
		t.Fatalf("Len = %d, want %d survivors", snap.Len, want)
	}
	if snap.Active+snap.Covered != snap.Len {
		t.Fatalf("active %d + covered %d != %d", snap.Active, snap.Covered, snap.Len)
	}
	m := tbl.Metrics()
	if m.Subscribes == 0 || m.Batches == 0 || m.Unsubscribes == 0 || m.Matches == 0 {
		t.Fatalf("metrics missed activity: %+v", m)
	}
	if m.BatchItems < m.Batches*2 {
		t.Fatalf("batch accounting off: %+v", m)
	}
}

// TestTableBatchSuppression pins what the batch path buys on bursts:
// processed largest-first, the burst's broad subscriptions admit first
// and the narrow ones are suppressed, whereas per-item admission in
// arrival order activates narrow subscriptions that arrived early.
func TestTableBatchSuppression(t *testing.T) {
	schema := tableSchema()
	parent := subsume.NewSubscription(schema).Range("x", 0, 900).Range("y", 0, 900).Build()
	children := make([]subsume.Subscription, 8)
	rng := rand.New(rand.NewPCG(5, 6))
	for i := range children {
		lo := rng.Int64N(700)
		children[i] = subsume.NewSubscription(schema).
			Range("x", lo, lo+50).Range("y", lo, lo+50).Build()
	}
	// Arrival order: children first, parent last.
	burst := append(slices.Clone(children), parent)
	ids := make([]subsume.ID, len(burst))
	for i := range ids {
		ids[i] = subsume.ID(i + 1)
	}

	newTable := func() *subsume.Table {
		tbl, err := subsume.NewTable(subsume.Pairwise, subsume.WithTableSchema(schema))
		if err != nil {
			t.Fatal(err)
		}
		return tbl
	}
	perItem := newTable()
	for i, s := range burst {
		if _, err := perItem.Subscribe(ids[i], s); err != nil {
			t.Fatal(err)
		}
	}
	batched := newTable()
	if _, err := batched.SubscribeBatch(ids, burst); err != nil {
		t.Fatal(err)
	}
	if got := perItem.ActiveLen(); got != len(burst) {
		t.Fatalf("per-item in arrival order should keep all active (no reverse prune), got %d", got)
	}
	if got := batched.ActiveLen(); got != 1 {
		t.Fatalf("batch should admit only the parent active, got %d", got)
	}
	if got := batched.Metrics().Suppressed; got != uint64(len(children)) {
		t.Fatalf("Suppressed = %d, want %d", got, len(children))
	}
}

// TestTableValidation covers the public error paths.
func TestTableValidation(t *testing.T) {
	if _, err := subsume.NewTable(subsume.Policy(42)); err == nil {
		t.Error("invalid policy accepted")
	}
	if _, err := subsume.NewTable(subsume.Group, subsume.WithShards(-1)); err == nil {
		t.Error("negative shard count accepted")
	}
	tbl, err := subsume.NewTable(subsume.Flood)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Policy() != subsume.Flood || tbl.Shards() != 1 {
		t.Fatalf("defaults off: policy=%v shards=%d", tbl.Policy(), tbl.Shards())
	}
	s := subsume.FromIntervals([2]int64{0, 9})
	if _, err := tbl.Subscribe(1, s); err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.Subscribe(1, s); err == nil {
		t.Error("duplicate ID accepted")
	}
	if _, _, ok := tbl.Get(1); !ok {
		t.Error("Get lost the subscription")
	}
	for _, p := range []subsume.Policy{subsume.Flood, subsume.Pairwise, subsume.Group, subsume.Policy(0)} {
		if p.String() == "" {
			t.Errorf("empty String for %d", int(p))
		}
	}
}
