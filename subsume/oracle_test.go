package subsume_test

// TestTableOracleEquivalence (ISSUE 4): randomized subscribe /
// unsubscribe / batch workloads checked against the exact pairwise
// oracle — brute-force interval mathematics over the live set —
// across shard counts {1, 4}, and then re-checked over the wire: the
// same workload fed through a TCP broker as SUBBATCH/UNSUBBATCH
// frames must notify exactly the brute-force matching set for every
// probe. It extends the per-op store oracle tests (internal/store) to
// the batch and wire-fed paths.

import (
	"context"
	"fmt"
	"math/rand/v2"
	"slices"
	"testing"
	"time"

	"probsum/pubsub"
	"probsum/subsume"
)

// oracleWorkload scripts one deterministic randomized run: the mix of
// per-item and batch operations applied identically to every table
// under test.
type oracleOp struct {
	subscribe   []subsume.ID // batch when >1
	unsubscribe []subsume.ID
}

func oracleBox(rng *rand.Rand) subsume.Subscription {
	lo1, lo2 := rng.Int64N(80), rng.Int64N(80)
	w1, w2 := 1+rng.Int64N(40), 1+rng.Int64N(40)
	return subsume.NewSubscription(oracleSchema).
		Range("x1", lo1, min64(lo1+w1, 100)).
		Range("x2", lo2, min64(lo2+w2, 100)).
		Build()
}

var oracleSchema = subsume.NewSchema(
	subsume.Attr("x1", 0, 100),
	subsume.Attr("x2", 0, 100),
)

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// buildOracleWorkload generates ops and the subscription bodies; the
// same rng seed yields the same workload for every table and for the
// wire-fed run.
func buildOracleWorkload(seed uint64, steps int) (ops []oracleOp, subs map[subsume.ID]subsume.Subscription) {
	rng := rand.New(rand.NewPCG(seed, seed|1))
	subs = make(map[subsume.ID]subsume.Subscription)
	var live []subsume.ID
	next := subsume.ID(1)
	for i := 0; i < steps; i++ {
		switch r := rng.IntN(10); {
		case r < 4: // single subscribe
			id := next
			next++
			subs[id] = oracleBox(rng)
			live = append(live, id)
			ops = append(ops, oracleOp{subscribe: []subsume.ID{id}})
		case r < 7: // batch subscribe, 2..8 items
			n := 2 + rng.IntN(7)
			var ids []subsume.ID
			for j := 0; j < n; j++ {
				id := next
				next++
				subs[id] = oracleBox(rng)
				live = append(live, id)
				ids = append(ids, id)
			}
			ops = append(ops, oracleOp{subscribe: ids})
		case r < 9: // single unsubscribe
			if len(live) == 0 {
				continue
			}
			j := rng.IntN(len(live))
			id := live[j]
			live = slices.Delete(live, j, j+1)
			ops = append(ops, oracleOp{unsubscribe: []subsume.ID{id}})
		default: // batch unsubscribe, up to 6 items
			if len(live) == 0 {
				continue
			}
			n := 1 + rng.IntN(min(6, len(live)))
			var ids []subsume.ID
			for j := 0; j < n; j++ {
				k := rng.IntN(len(live))
				ids = append(ids, live[k])
				live = slices.Delete(live, k, k+1)
			}
			ops = append(ops, oracleOp{unsubscribe: ids})
		}
	}
	return ops, subs
}

// oracleMatch is the exact pairwise oracle for publication matching:
// brute force over the live set.
func oracleMatch(live map[subsume.ID]subsume.Subscription, p subsume.Publication) []subsume.ID {
	var out []subsume.ID
	for id, s := range live {
		if s.Matches(p) {
			out = append(out, id)
		}
	}
	slices.Sort(out)
	return out
}

// checkTableAgainstOracle verifies the order-independent exact
// invariants: stored set == live set, Match == brute force, and every
// covered subscription has an active coverer (pairwise soundness).
func checkTableAgainstOracle(t *testing.T, step int, tbl *subsume.Table, live map[subsume.ID]subsume.Subscription, rng *rand.Rand) {
	t.Helper()
	if got := tbl.Len(); got != len(live) {
		t.Fatalf("step %d: table holds %d subscriptions, oracle %d", step, got, len(live))
	}
	actives := tbl.ActiveIDs()
	activeSet := make(map[subsume.ID]bool, len(actives))
	for _, id := range actives {
		activeSet[id] = true
	}
	for id, want := range live {
		s, status, ok := tbl.Get(id)
		if !ok {
			t.Fatalf("step %d: live id %d missing from table", step, id)
		}
		if !s.Equal(want) {
			t.Fatalf("step %d: id %d stored %v, oracle %v", step, id, s, want)
		}
		if status == subsume.StatusCovered {
			coverer := false
			for _, a := range actives {
				as, _, _ := tbl.Get(a)
				if a != id && as.Covers(want) {
					coverer = true
					break
				}
			}
			if !coverer {
				t.Fatalf("step %d: id %d is covered but no active subscription covers %v", step, id, want)
			}
		} else if !activeSet[id] {
			t.Fatalf("step %d: id %d has status %v but is not in ActiveIDs", step, id, status)
		}
	}
	for probe := 0; probe < 8; probe++ {
		p := subsume.NewPublication(rng.Int64N(101), rng.Int64N(101))
		got := tbl.Match(p)
		want := oracleMatch(live, p)
		if !slices.Equal(got, want) {
			t.Fatalf("step %d: Match(%v) = %v, oracle %v", step, p, got, want)
		}
	}
}

func TestTableOracleEquivalence(t *testing.T) {
	const steps = 120
	ops, subs := buildOracleWorkload(0xC0DEC, steps)

	for _, shards := range []int{1, 4} {
		t.Run(fmt.Sprintf("shards-%d", shards), func(t *testing.T) {
			tbl, err := subsume.NewTable(subsume.Pairwise,
				subsume.WithShards(shards), subsume.WithTableSchema(oracleSchema))
			if err != nil {
				t.Fatal(err)
			}
			probeRNG := rand.New(rand.NewPCG(99, 7))
			live := make(map[subsume.ID]subsume.Subscription)
			for step, op := range ops {
				switch {
				case len(op.subscribe) == 1:
					id := op.subscribe[0]
					if _, err := tbl.Subscribe(id, subs[id]); err != nil {
						t.Fatalf("step %d: %v", step, err)
					}
					live[id] = subs[id]
				case len(op.subscribe) > 1:
					bodies := make([]subsume.Subscription, len(op.subscribe))
					for i, id := range op.subscribe {
						bodies[i] = subs[id]
						live[id] = subs[id]
					}
					if _, err := tbl.SubscribeBatch(op.subscribe, bodies); err != nil {
						t.Fatalf("step %d: %v", step, err)
					}
				case len(op.unsubscribe) == 1:
					if _, err := tbl.Unsubscribe(op.unsubscribe[0]); err != nil {
						t.Fatalf("step %d: %v", step, err)
					}
					delete(live, op.unsubscribe[0])
				default:
					if _, err := tbl.UnsubscribeBatch(op.unsubscribe); err != nil {
						t.Fatalf("step %d: %v", step, err)
					}
					for _, id := range op.unsubscribe {
						delete(live, id)
					}
				}
				checkTableAgainstOracle(t, step, tbl, live, probeRNG)
			}
		})
	}

	t.Run("wire-fed", func(t *testing.T) { oracleOverWire(t, ops, subs) })
}

// oracleOverWire replays the workload through a real TCP broker as
// SUBBATCH/UNSUBBATCH frames and checks every probe publication
// notifies exactly the oracle's matching set.
func oracleOverWire(t *testing.T, ops []oracleOp, subs map[subsume.ID]subsume.Subscription) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	tr, err := pubsub.NewTCPTransport(pubsub.Pairwise, pubsub.Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer scancel()
		tr.Shutdown(sctx)
	}()
	if _, err := tr.AddBroker("B1"); err != nil {
		t.Fatal(err)
	}
	sub, err := tr.Open(ctx, "sub", "B1")
	if err != nil {
		t.Fatal(err)
	}
	pub, err := tr.Open(ctx, "pub", "B1")
	if err != nil {
		t.Fatal(err)
	}

	b, _ := tr.Broker("B1")
	subName := func(id subsume.ID) string { return fmt.Sprintf("w%d", id) }
	probeRNG := rand.New(rand.NewPCG(4242, 17))
	live := make(map[subsume.ID]subsume.Subscription)
	wantReceived, fences, probes := 0, 0, 0

	// fence orders a subscriber-connection frame behind everything the
	// subscriber sent before it: readers handle a connection's frames
	// in order, so once the fence subscription is admitted, every
	// earlier subscribe/unsubscribe on that connection has been too.
	// The fence box lies far outside the probe domain.
	fence := func() {
		fences++
		id := fmt.Sprintf("fence%d", fences)
		fenceBox := subsume.FromIntervals([2]int64{9999, 9999}, [2]int64{9999, 9999})
		if err := sub.Subscribe(ctx, id, fenceBox); err != nil {
			t.Fatal(err)
		}
		wantReceived++
		deadline := time.Now().Add(10 * time.Second)
		for b.Metrics().SubsReceived < wantReceived {
			if time.Now().After(deadline) {
				t.Fatalf("fence %d never admitted (metrics %+v)", fences, b.Metrics())
			}
			time.Sleep(500 * time.Microsecond)
		}
	}

	for step, op := range ops {
		switch {
		case len(op.subscribe) > 0:
			batch := make([]pubsub.BatchSub, len(op.subscribe))
			for i, id := range op.subscribe {
				batch[i] = pubsub.BatchSub{SubID: subName(id), Sub: subs[id]}
				live[id] = subs[id]
			}
			if err := sub.SubscribeBatch(ctx, batch); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
			wantReceived += len(batch)
		default:
			ids := make([]string, len(op.unsubscribe))
			for i, id := range op.unsubscribe {
				ids[i] = subName(id)
				delete(live, id)
			}
			if err := sub.UnsubscribeBatch(ctx, ids); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
		}
		// Probe every few steps (each probe costs a fence round trip).
		if step%5 != 4 {
			continue
		}
		fence()
		p := subsume.NewPublication(probeRNG.Int64N(101), probeRNG.Int64N(101))
		probes++
		pubID := fmt.Sprintf("probe%d", probes)
		if err := pub.Publish(ctx, pubID, p); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		want := oracleMatch(live, p)
		got := make([]string, 0, len(want))
		for len(got) < len(want) {
			select {
			case n, ok := <-sub.Notifications():
				if !ok {
					t.Fatalf("step %d: notification stream closed", step)
				}
				if n.PubID != pubID {
					t.Fatalf("step %d: unexpected notification %+v while probing %s", step, n, pubID)
				}
				got = append(got, n.SubID)
			case <-time.After(5 * time.Second):
				t.Fatalf("step %d: probe %s delivered %d of %d notifications (got %v, want %v)",
					step, pubID, len(got), len(want), got, want)
			}
		}
		wantNames := make([]string, len(want))
		for i, id := range want {
			wantNames[i] = subName(id)
		}
		slices.Sort(wantNames)
		slices.Sort(got)
		if !slices.Equal(got, wantNames) {
			t.Fatalf("step %d: probe %v notified %v, oracle %v", step, p, got, wantNames)
		}
		// No strays beyond the oracle set.
		select {
		case n := <-sub.Notifications():
			t.Fatalf("step %d: extra notification %+v beyond the oracle set", step, n)
		case <-time.After(50 * time.Millisecond):
		}
	}
}
