// Broker network: the paper's Figure 1 walkthrough.
//
// Nine brokers, two subscribers (S1 at B1, S2 at B6 with s2 ⊑ s1) and
// two publishers (P1 at B9, P2 at B5). The example reproduces the
// delivery trees the paper traces and prints per-broker publication
// traffic so the reverse-path + covering behavior is visible.
//
// Run with: go run ./examples/brokernet
package main

import (
	"fmt"
	"log"

	"probsum/pubsub"
	"probsum/subsume"
)

func main() {
	schema := subsume.NewSchema(
		subsume.Attr("x1", 0, 100),
		subsume.Attr("x2", 0, 100),
	)

	net, err := pubsub.NewNetwork(pubsub.Pairwise, pubsub.Config{})
	if err != nil {
		log.Fatal(err)
	}
	for i := 1; i <= 9; i++ {
		must(net.AddBroker(fmt.Sprintf("B%d", i)))
	}
	// Figure 1's overlay (see DESIGN.md for the edge derivation).
	for _, e := range [][2]string{
		{"B1", "B3"}, {"B2", "B3"}, {"B3", "B4"},
		{"B4", "B5"}, {"B4", "B6"}, {"B4", "B7"},
		{"B7", "B8"}, {"B7", "B9"},
	} {
		must(net.Connect(e[0], e[1]))
	}
	must(net.AttachClient("S1", "B1"))
	must(net.AttachClient("S2", "B6"))
	must(net.AttachClient("P1", "B9"))
	must(net.AttachClient("P2", "B5"))

	// s1 is broad; s2 ⊑ s1 is S2's narrower interest.
	s1 := subsume.NewSubscription(schema).Range("x1", 0, 100).Range("x2", 0, 100).Build()
	s2 := subsume.NewSubscription(schema).Range("x1", 40, 60).Range("x2", 40, 60).Build()

	must(net.Subscribe("S1", "s1", s1))
	before := net.Metrics()
	must(net.Subscribe("S2", "s2", s2))
	after := net.Metrics()
	fmt.Printf("s1 flooded over %d links\n", before.SubsForwarded)
	fmt.Printf("s2 (covered by s1) travelled only %d links; %d forwards suppressed\n",
		after.SubsForwarded-before.SubsForwarded, after.SubsSuppressed)

	// n1 matches s2 (and therefore s1): the paper's delivery tree is
	// B9, B7, B4, B3, B1, B6.
	must(net.Publish("P1", "n1", subsume.NewPublication(50, 50)))
	printTree(net, "n1 (from P1@B9, matches s1 and s2)", 1)

	// n2 matches only s1: delivery tree B5, B4, B3, B1.
	must(net.Publish("P2", "n2", subsume.NewPublication(10, 10)))
	printTree(net, "n2 (from P2@B5, matches s1 only)", 2)

	fmt.Printf("\nS1 notifications: %d (expected 2)\n", len(net.Notifications("S1")))
	fmt.Printf("S2 notifications: %d (expected 1)\n", len(net.Notifications("S2")))
}

// printTree lists the brokers that have seen exactly `upto`
// publications so far — i.e. the cumulative delivery trees.
func printTree(net *pubsub.Network, label string, upto int) {
	fmt.Printf("\ndelivery tree for %s:\n  ", label)
	for _, id := range net.Brokers() {
		m, err := net.BrokerMetrics(id)
		if err != nil {
			log.Fatal(err)
		}
		if m.PubsReceived > 0 {
			fmt.Printf("%s(saw %d) ", id, m.PubsReceived)
		}
	}
	fmt.Println()
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
