// Broker network: the paper's Figure 1 walkthrough, on either
// transport.
//
// Nine brokers, two subscribers (S1 at B1, S2 at B6 with s2 ⊑ s1) and
// two publishers (P1 at B9, P2 at B5). The example reproduces the
// delivery trees the paper traces and prints per-broker publication
// traffic so the reverse-path + covering behavior is visible.
//
// The same client program runs on the deterministic in-process
// simulator or over real TCP sockets — that is the point of the
// transport abstraction. Run with:
//
//	go run ./examples/brokernet                  # both, compare results
//	go run ./examples/brokernet -transport sim   # simulator only
//	go run ./examples/brokernet -transport tcp   # real sockets only
//	go run ./examples/brokernet -policy group    # probabilistic coverage
//	go run ./examples/brokernet -codec json      # pin TCP to the PR-3 JSON codec
//
// The scenario ends with a subscription burst sent as ONE batch frame
// (SUBBATCH): the brokers admit it into each coverage table as a
// single batch call, so the broad member suppresses the narrow ones
// before anything extra crosses a link.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"sort"
	"time"

	"probsum/pubsub"
	"probsum/subsume"
)

func main() {
	transport := flag.String("transport", "both", "sim | tcp | both")
	policyIn := flag.String("policy", "pairwise", "coverage policy: flood | pairwise | group")
	codecIn := flag.String("codec", "binary", "TCP wire codec cap: binary | json")
	flag.Parse()

	policy, err := pubsub.ParsePolicy(*policyIn)
	if err != nil {
		log.Fatal(err)
	}
	codec, err := pubsub.ParseWireCodec(*codecIn)
	if err != nil {
		log.Fatal(err)
	}
	cfg := pubsub.Config{Seed: 7}

	newTransport := func(kind string) pubsub.Transport {
		switch kind {
		case "sim":
			tr, err := pubsub.NewSimTransport(policy, cfg)
			if err != nil {
				log.Fatal(err)
			}
			return tr
		case "tcp":
			tr, err := pubsub.NewTCPTransport(policy, cfg,
				pubsub.WithWireCodec(codec), pubsub.WithDialWireCodec(codec))
			if err != nil {
				log.Fatal(err)
			}
			return tr
		default:
			log.Fatalf("unknown transport %q (want sim | tcp | both)", kind)
			return nil
		}
	}

	kinds := []string{*transport}
	if *transport == "both" {
		kinds = []string{"sim", "tcp"}
	}
	results := make(map[string]map[string][]string)
	for _, kind := range kinds {
		fmt.Printf("=== %s transport (policy %s) ===\n", kind, policy)
		results[kind] = run(newTransport(kind))
		fmt.Println()
	}
	if *transport == "both" {
		a, b := fmt.Sprint(results["sim"]), fmt.Sprint(results["tcp"])
		if a == b {
			fmt.Println("sim and tcp delivered identical notification sets ✓")
		} else {
			fmt.Printf("MISMATCH:\n  sim: %s\n  tcp: %s\n", a, b)
		}
	}
}

// run drives the Figure 1 scenario on any transport and returns each
// subscriber's notification set.
func run(tr pubsub.Transport) map[string][]string {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	schema := subsume.NewSchema(
		subsume.Attr("x1", 0, 100),
		subsume.Attr("x2", 0, 100),
	)

	for i := 1; i <= 9; i++ {
		if _, err := tr.AddBroker(fmt.Sprintf("B%d", i)); err != nil {
			log.Fatal(err)
		}
	}
	// Figure 1's overlay (see DESIGN.md for the edge derivation).
	for _, e := range [][2]string{
		{"B1", "B3"}, {"B2", "B3"}, {"B3", "B4"},
		{"B4", "B5"}, {"B4", "B6"}, {"B4", "B7"},
		{"B7", "B8"}, {"B7", "B9"},
	} {
		must(tr.Connect(e[0], e[1]))
	}
	s1c := open(tr, ctx, "S1", "B1")
	s2c := open(tr, ctx, "S2", "B6")
	p1c := open(tr, ctx, "P1", "B9")
	p2c := open(tr, ctx, "P2", "B5")

	// s1 is broad; s2 ⊑ s1 is S2's narrower interest.
	s1 := subsume.NewSubscription(schema).Range("x1", 0, 100).Range("x2", 0, 100).Build()
	s2 := subsume.NewSubscription(schema).Range("x1", 40, 60).Range("x2", 40, 60).Build()

	must(s1c.Subscribe(ctx, "s1", s1))
	must(tr.Settle(ctx))
	before := totalMetrics(tr)
	must(s2c.Subscribe(ctx, "s2", s2))
	must(tr.Settle(ctx))
	after := totalMetrics(tr)
	fmt.Printf("s1 flooded over %d links\n", before.SubsForwarded)
	fmt.Printf("s2 (covered by s1) travelled only %d links; %d forwards suppressed\n",
		after.SubsForwarded-before.SubsForwarded, after.SubsSuppressed)

	// n1 matches s2 (and therefore s1): the paper's delivery tree is
	// B9, B7, B4, B3, B1, B6.
	must(p1c.Publish(ctx, "n1", subsume.NewPublication(50, 50)))
	must(tr.Settle(ctx))
	printTree(tr, "n1 (from P1@B9, matches s1 and s2)")

	// n2 matches only s1: delivery tree B5, B4, B3, B1.
	must(p2c.Publish(ctx, "n2", subsume.NewPublication(10, 10)))
	must(tr.Settle(ctx))
	printTree(tr, "n2 (from P2@B5, matches s1 only)")

	// Batch phase: S2 announces a burst as ONE SUBBATCH frame. The
	// brokers admit it with a single batch call per coverage table, so
	// the broad member (b-wide) suppresses the narrow ones within the
	// burst and only it crosses further links.
	preBatch := totalMetrics(tr)
	must(s2c.SubscribeBatch(ctx, []pubsub.BatchSub{
		{SubID: "b-narrow1", Sub: subsume.NewSubscription(schema).Range("x1", 10, 20).Range("x2", 10, 20).Build()},
		{SubID: "b-wide", Sub: subsume.NewSubscription(schema).Range("x1", 0, 30).Range("x2", 0, 30).Build()},
		{SubID: "b-narrow2", Sub: subsume.NewSubscription(schema).Range("x1", 12, 18).Range("x2", 12, 18).Build()},
	}))
	must(tr.Settle(ctx))
	postBatch := totalMetrics(tr)
	fmt.Printf("\nbatch of 3: %d forwards, %d suppressed (within-burst coverage)\n",
		postBatch.SubsForwarded-preBatch.SubsForwarded,
		postBatch.SubsSuppressed-preBatch.SubsSuppressed)

	// n3 lands inside all three burst members (and s1).
	must(p1c.Publish(ctx, "n3", subsume.NewPublication(15, 15)))
	must(tr.Settle(ctx))

	// Cancel the whole burst as one UNSUBBATCH frame, then prove it.
	must(s2c.UnsubscribeBatch(ctx, []string{"b-narrow1", "b-wide", "b-narrow2"}))
	must(tr.Settle(ctx))
	must(p2c.Publish(ctx, "n4", subsume.NewPublication(15, 15)))
	must(tr.Settle(ctx))

	// Collect the deliveries: S1 sees every publication; S2 sees n1
	// (s2) and n3 three times (each burst member matches).
	out := map[string][]string{
		"S1": collect(s1c, 4),
		"S2": collect(s2c, 4),
	}
	fmt.Printf("\nS1 notifications: %d (expected 4)\n", len(out["S1"]))
	fmt.Printf("S2 notifications: %d (expected 4)\n", len(out["S2"]))

	sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer scancel()
	must(tr.Shutdown(sctx))
	return out
}

func open(tr pubsub.Transport, ctx context.Context, name, brokerID string) *pubsub.Client {
	c, err := tr.Open(ctx, name, brokerID)
	if err != nil {
		log.Fatal(err)
	}
	return c
}

// collect reads want notifications (with a deadline) and returns them
// as sorted "subID/pubID" strings.
func collect(c *pubsub.Client, want int) []string {
	var got []string
	for len(got) < want {
		select {
		case n, ok := <-c.Notifications():
			if !ok {
				log.Fatalf("%s: stream closed after %d notifications", c.Name(), len(got))
			}
			got = append(got, n.SubID+"/"+n.PubID)
		case <-time.After(5 * time.Second):
			log.Fatalf("%s: timed out after %d notifications", c.Name(), len(got))
		}
	}
	sort.Strings(got)
	return got
}

// totalMetrics sums the per-broker counters.
func totalMetrics(tr pubsub.Transport) pubsub.Metrics {
	var sum pubsub.Metrics
	for _, id := range tr.Brokers() {
		b, _ := tr.Broker(id)
		sum.Add(b.Metrics())
	}
	return sum
}

// printTree lists the brokers that have seen publications so far —
// i.e. the cumulative delivery trees.
func printTree(tr pubsub.Transport, label string) {
	fmt.Printf("\ndelivery tree for %s:\n  ", label)
	for _, id := range tr.Brokers() {
		b, _ := tr.Broker(id)
		if m := b.Metrics(); m.PubsReceived > 0 {
			fmt.Printf("%s(saw %d) ", id, m.PubsReceived)
		}
	}
	fmt.Println()
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
