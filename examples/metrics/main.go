// Metrics demo: the unified observability surface on a live TCP
// overlay, end to end.
//
// Two brokers link up over TCP, a subscriber attaches to B2 and a
// publisher to B1, and a burst of publications flows across the wire.
// B1's metrics registry — the same one `brokerd -metrics-addr`
// serves — is mounted on a real HTTP listener and scraped three ways:
//
//   - /metrics       Prometheus text: per-link frame counts by kind,
//     publish-path stage histograms (decode, match,
//     route, enqueue, write), queue depths, broker
//     counters, route-table footprint
//   - /metrics.json  the same registry as one JSON document
//   - /flight        the flight recorder (peer up/down, drops)
//
// The demo exits non-zero when any core series is missing or zero —
// the CI smoke for the scrape pipeline. A ClientStats attached to
// both clients cross-checks the wire numbers from the client side:
// every publication must resolve to a positive publish-to-notify
// latency sample.
//
// Run with: go run ./examples/metrics
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"probsum/pubsub"
	"probsum/subsume"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "metrics demo: %v\n", err)
		os.Exit(1)
	}
}

const probes = 50

func run() error {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	tr, err := pubsub.NewTCPTransport(pubsub.Pairwise, pubsub.Config{})
	if err != nil {
		return err
	}
	defer tr.Shutdown(context.Background())
	b1, err := tr.AddBroker("B1")
	if err != nil {
		return err
	}
	if _, err := tr.AddBroker("B2"); err != nil {
		return err
	}
	if err := tr.Connect("B1", "B2"); err != nil {
		return err
	}

	schema := subsume.NewSchema(
		subsume.Attr("x1", 0, 100),
		subsume.Attr("x2", 0, 100),
	)
	sub, err := tr.Open(ctx, "S", "B2")
	if err != nil {
		return err
	}
	pub, err := tr.Open(ctx, "P", "B1")
	if err != nil {
		return err
	}
	stats := pubsub.NewClientStats()
	sub.SetStats(stats)
	pub.SetStats(stats)

	s := subsume.NewSubscription(schema).Range("x1", 0, 100).Range("x2", 0, 100).Build()
	if err := sub.Subscribe(ctx, "s1", s); err != nil {
		return err
	}
	if err := tr.Settle(ctx); err != nil {
		return err
	}
	for i := 0; i < probes; i++ {
		if err := pub.Publish(ctx, fmt.Sprintf("p%04d", i), subsume.NewPublication(50, 50)); err != nil {
			return err
		}
	}
	if err := tr.Settle(ctx); err != nil {
		return err
	}
	for i := 0; i < probes; i++ {
		select {
		case <-sub.Notifications():
		case <-ctx.Done():
			return fmt.Errorf("timed out waiting for notification %d/%d", i+1, probes)
		}
	}

	// Serve the registry exactly the way brokerd -metrics-addr does.
	reg := b1.Observability()
	if reg == nil {
		return fmt.Errorf("TCP broker exposes no registry")
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: reg.Handler()}
	go srv.Serve(ln)
	defer srv.Close()
	baseURL := "http://" + ln.Addr().String()

	text, err := fetch(baseURL + "/metrics")
	if err != nil {
		return err
	}
	// Core counters and histogram counts must be present AND nonzero;
	// gauges (queue depth is legitimately zero at rest) just present.
	for _, series := range []string{
		"probsum_broker_pubs_received",
		"probsum_broker_pubs_forwarded",
		"probsum_publish_stage_decode_ns_count",
		"probsum_publish_stage_match_ns_count",
		"probsum_publish_stage_route_ns_count",
		"probsum_publish_stage_enqueue_ns_count",
		"probsum_publish_stage_write_ns_count",
	} {
		if err := requireNonzero(text, series); err != nil {
			return err
		}
	}
	for _, series := range []string{
		"probsum_send_queue_depth_total",
		"probsum_route_tables",
		"probsum_route_entries",
		`probsum_link_frames_sent_total{link="B2",kind="publish"}`,
	} {
		if !strings.Contains(text, series) {
			return fmt.Errorf("/metrics missing series %s", series)
		}
	}
	fmt.Printf("scraped /metrics: %d lines, core series present and nonzero\n", strings.Count(text, "\n"))

	var doc struct {
		Counters   map[string]int64 `json:"counters"`
		Histograms map[string]struct {
			Count uint64 `json:"count"`
			P50Ns int64  `json:"p50_ns"`
			P99Ns int64  `json:"p99_ns"`
		} `json:"histograms"`
	}
	body, err := fetch(baseURL + "/metrics.json")
	if err != nil {
		return err
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		return fmt.Errorf("/metrics.json: %w", err)
	}
	if got := doc.Counters["broker_pubs_received"]; got < probes {
		return fmt.Errorf("/metrics.json broker_pubs_received = %d, want >= %d", got, probes)
	}
	w := doc.Histograms["publish_stage_write_ns"]
	if w.Count == 0 {
		return fmt.Errorf("/metrics.json publish_stage_write_ns has no observations")
	}
	fmt.Printf("scraped /metrics.json: %d pubs received, write stage p50 %v over %d frames\n",
		doc.Counters["broker_pubs_received"], time.Duration(w.P50Ns), w.Count)

	flight, err := fetch(baseURL + "/flight")
	if err != nil {
		return err
	}
	if !strings.Contains(flight, "peer_up") {
		return fmt.Errorf("/flight missing the peer_up event of the B1-B2 link:\n%s", flight)
	}
	fmt.Printf("scraped /flight: %d events, B1-B2 peer_up recorded\n", strings.Count(flight, "\n"))

	snap := stats.Snapshot()
	if snap.Count != probes {
		return fmt.Errorf("client stats measured %d/%d probes", snap.Count, probes)
	}
	fmt.Printf("client side: %d probes, publish-to-notify p50 %v p99 %v\n",
		snap.Count, time.Duration(snap.Quantile(0.50)), time.Duration(snap.Quantile(0.99)))
	fmt.Println("metrics demo OK")
	return nil
}

// fetch GETs a URL and returns the body, insisting on 200.
func fetch(url string) (string, error) {
	resp, err := http.Get(url)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("%s: HTTP %d", url, resp.StatusCode)
	}
	return string(body), nil
}

// requireNonzero finds `series value` in Prometheus text and insists
// the value is positive.
func requireNonzero(text, series string) error {
	for _, line := range strings.Split(text, "\n") {
		fields := strings.Fields(line)
		if len(fields) == 2 && fields[0] == series {
			if fields[1] == "0" {
				return fmt.Errorf("series %s is zero", series)
			}
			return nil
		}
	}
	return fmt.Errorf("/metrics missing series %s", series)
}
