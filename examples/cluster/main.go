// Cluster demo: a self-assembling, self-healing broker overlay that
// survives a broker being killed and revived mid-traffic.
//
// Three brokers form the chain B1–B2–B3 from one declarative topology
// file (written to a temp file and loaded with cluster.LoadTopology,
// exactly as three `brokerd -cluster overlay.json` daemons would). A
// subscriber attaches to B1, a publisher to B3, so every delivery
// crosses the whole chain. Mid-traffic the middle broker is killed:
// the survivors' failure detectors walk it alive → suspect → dead and
// publications stop arriving. Then B2 is restarted on the same
// address: the survivors' reconnect loops re-dial it, the re-attached
// link re-announces each side's coverage roots as one SUBBATCH, and
// delivery resumes without the subscriber or publisher doing anything.
//
// Run with: go run ./examples/cluster
// Exits non-zero if post-heal delivery does not resume (CI smoke).
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"os"
	"path/filepath"
	"time"

	"probsum/pubsub"
	"probsum/pubsub/cluster"
	"probsum/subsume"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "cluster demo: %v\n", err)
		os.Exit(1)
	}
}

// freeAddrs reserves concrete loopback addresses: a restarted broker
// must come back on the SAME address, so the topology cannot use :0.
func freeAddrs(n int) ([]string, error) {
	out := make([]string, n)
	for i := range out {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		out[i] = ln.Addr().String()
		ln.Close()
	}
	return out, nil
}

func run() error {
	addrs, err := freeAddrs(3)
	if err != nil {
		return err
	}
	topo := &cluster.Topology{
		Policy: "pairwise",
		Nodes: []cluster.TopologyNode{
			{ID: "B1", Listen: addrs[0]},
			{ID: "B2", Listen: addrs[1]},
			{ID: "B3", Listen: addrs[2]},
		},
		Links: [][2]string{{"B1", "B2"}, {"B2", "B3"}},
	}
	// Round-trip through a real file: this is the overlay.json every
	// brokerd daemon of the cluster would be pointed at.
	data, err := json.MarshalIndent(topo, "", "  ")
	if err != nil {
		return err
	}
	path := filepath.Join(os.TempDir(), fmt.Sprintf("overlay-%d.json", os.Getpid()))
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	defer os.Remove(path)
	if topo, err = cluster.LoadTopology(path); err != nil {
		return err
	}
	fmt.Printf("topology %s: 3 brokers, chain B1–B2–B3\n", path)

	// Test-sized detector timings so the demo runs in seconds.
	cfg := cluster.Config{
		PingEvery:     50 * time.Millisecond,
		SuspectMisses: 2,
		DeadAfter:     200 * time.Millisecond,
		GossipEvery:   100 * time.Millisecond,
		ReconnectMin:  50 * time.Millisecond,
		ReconnectMax:  400 * time.Millisecond,
		TickEvery:     20 * time.Millisecond,
	}

	start := func(id string) (*cluster.Node, *pubsub.Broker, error) { return cluster.Start(topo, id, cfg) }
	n1, b1, err := start("B1")
	if err != nil {
		return err
	}
	defer shutdown(n1, b1)
	n2, b2, err := start("B2")
	if err != nil {
		return err
	}
	n3, b3, err := start("B3")
	if err != nil {
		return err
	}
	defer shutdown(n3, b3)

	if err := waitFor(10*time.Second, "cluster assembly", func() bool {
		for _, v := range [][2]*cluster.Node{{n1, n2}, {n2, n1}, {n2, n3}, {n3, n2}} {
			if m, ok := v[0].Member(memberID(v[1])); !ok || m.State != cluster.StateAlive {
				return false
			}
		}
		return true
	}); err != nil {
		return err
	}
	fmt.Printf("assembled: B1 sees [%s], B3 sees [%s]\n", n1, n3)

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	sub, err := pubsub.Dial(ctx, b1.Addr(), "subscriber")
	if err != nil {
		return err
	}
	defer sub.Close()
	schema := subsume.NewSchema(subsume.Attr("x", 0, 1000), subsume.Attr("y", 0, 1000))
	box, err := subsume.NewSubscription(schema).Range("x", 0, 500).Range("y", 0, 500).Checked()
	if err != nil {
		return err
	}
	if err := sub.Subscribe(ctx, "s1", box); err != nil {
		return err
	}
	if err := waitFor(5*time.Second, "subscription to flood the chain", func() bool {
		return b3.Metrics().SubsReceived == 1
	}); err != nil {
		return err
	}

	pub, err := pubsub.Dial(ctx, b3.Addr(), "publisher")
	if err != nil {
		return err
	}
	defer pub.Close()

	// Phase 1: steady traffic across the healthy chain.
	got := publishPhase(ctx, "steady", pub, sub, 0, 10)
	fmt.Printf("phase 1 (healthy chain): %d/10 delivered\n", got)
	if got != 10 {
		return fmt.Errorf("healthy chain dropped publications (%d/10)", got)
	}

	// Kill the middle broker mid-traffic.
	fmt.Println("killing B2 …")
	n2.Close()
	sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
	b2.Shutdown(sctx)
	scancel()
	if err := waitFor(10*time.Second, "failure detection", func() bool {
		m, _ := n1.Member("B2")
		return m.State == cluster.StateDead
	}); err != nil {
		return err
	}
	fmt.Printf("B1 declared B2 dead: [%s]\n", n1)

	// Phase 2: traffic into the cut. Publications cannot cross; the
	// protocol's loss tolerance (at-most-once transport) absorbs them.
	got = publishPhase(ctx, "outage", pub, sub, 100, 10)
	fmt.Printf("phase 2 (B2 down): %d/10 delivered (expected 0)\n", got)

	// Revive B2 on the same address, from the same topology file.
	fmt.Println("restarting B2 …")
	n2b, b2b, err := start("B2")
	if err != nil {
		return err
	}
	defer shutdown(n2b, b2b)
	if err := waitFor(15*time.Second, "link healing", func() bool {
		m1, _ := n1.Member("B2")
		m3, _ := n3.Member("B2")
		return m1.State == cluster.StateAlive && m3.State == cluster.StateAlive &&
			b3.Metrics().SubsReceived >= 1 && b2b.Metrics().SubsReceived >= 1
	}); err != nil {
		return err
	}
	fmt.Printf("healed: B1 sees [%s]; B2 relearned %d subscription(s) from the root re-announcement\n",
		n1, b2b.Metrics().SubsReceived)

	// Phase 3: delivery resumes with no client action.
	got = publishPhase(ctx, "healed", pub, sub, 200, 10)
	fmt.Printf("phase 3 (healed chain): %d/10 delivered\n", got)
	if got < 8 {
		return fmt.Errorf("post-heal delivery did not resume (%d/10)", got)
	}
	fmt.Println("cluster healed itself: kill + restart survived without reconfiguring anything")
	return nil
}

// publishPhase sends count publications (IDs base..base+count-1) and
// reports how many reach the subscriber within a bounded wait.
func publishPhase(ctx context.Context, phase string, pub, sub *pubsub.Client, base, count int) int {
	delivered := 0
	for i := 0; i < count; i++ {
		pubID := fmt.Sprintf("%s-%d", phase, base+i)
		if err := pub.Publish(ctx, pubID, subsume.NewPublication(int64(10*i%500), int64(7*i%500))); err != nil {
			log.Printf("publish %s: %v", pubID, err)
			continue
		}
		timeout := time.After(time.Second)
	recv:
		for {
			select {
			case n, ok := <-sub.Notifications():
				if !ok {
					return delivered
				}
				if n.PubID == pubID {
					delivered++
					break recv
				}
			case <-timeout:
				break recv
			}
		}
	}
	return delivered
}

func memberID(n *cluster.Node) string {
	ms := n.Members()
	return ms[0].ID // self is always first
}

func shutdown(n *cluster.Node, b *pubsub.Broker) {
	n.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	b.Shutdown(ctx)
}

func waitFor(d time.Duration, what string, cond func() bool) error {
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			return fmt.Errorf("timed out waiting for %s", what)
		}
		time.Sleep(20 * time.Millisecond)
	}
	return nil
}
