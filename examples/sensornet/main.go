// Sensor network: resource-scarce pub/sub under lossy links.
//
// The paper motivates probabilistic subsumption with sensor networks,
// where "published content is often inaccurate or redundant" and
// applications trade delivery guarantees for efficiency. This example
// runs a 4x4 grid of sensor-field brokers with injected link loss,
// compares subscription traffic under flooding versus group coverage,
// and measures how many sensor readings still reach the sink.
//
// Run with: go run ./examples/sensornet
package main

import (
	"fmt"
	"log"
	"math/rand/v2"

	"probsum/pubsub"
	"probsum/subsume"
)

const (
	gridSide  = 4
	nReadings = 200
)

func main() {
	schema := subsume.NewSchema(
		subsume.Attr("region", 0, 1023),    // sensor region code
		subsume.Attr("tempC10", -400, 850), // temperature, tenths of °C
		subsume.Attr("battery", 0, 100),    // percent
	)

	for _, policy := range []pubsub.Policy{pubsub.Flood, pubsub.Group} {
		delivered, subMsgs, dropped := run(policy, schema)
		fmt.Printf("%-8s policy: %3d/%d readings delivered, %3d subscription messages, %d messages lost to the radio\n",
			policy, delivered, nReadings, subMsgs, dropped)
	}
	fmt.Println("\ngroup coverage cuts subscription traffic while the delivery rate stays")
	fmt.Println("within the loss level the lossy links already impose — the paper's point")
	fmt.Println("about sensor networks tolerating probabilistic suppression.")
}

// run builds the grid, registers overlapping monitoring tasks at the
// sink, then streams sensor readings from the far corner region.
func run(policy pubsub.Policy, schema *subsume.Schema) (delivered, subMsgs, dropped int) {
	net, err := pubsub.NewNetwork(policy, pubsub.Config{
		ErrorProbability: 1e-6,
		Seed:             42,
		DropRate:         0.02, // 2% radio loss per hop
	})
	if err != nil {
		log.Fatal(err)
	}
	name := func(x, y int) string { return fmt.Sprintf("n%d_%d", x, y) }
	for y := 0; y < gridSide; y++ {
		for x := 0; x < gridSide; x++ {
			must(net.AddBroker(name(x, y)))
		}
	}
	for y := 0; y < gridSide; y++ {
		for x := 0; x < gridSide; x++ {
			if x+1 < gridSide {
				must(net.Connect(name(x, y), name(x+1, y)))
			}
			if y+1 < gridSide {
				must(net.Connect(name(x, y), name(x, y+1)))
			}
		}
	}
	must(net.AttachClient("sink", name(0, 0)))
	must(net.AttachClient("field", name(gridSide-1, gridSide-1)))

	// Monitoring tasks: many overlapping temperature watches over the
	// same few regions — the redundancy group coverage exploits.
	rng := rand.New(rand.NewPCG(7, 11))
	for i := 0; i < 60; i++ {
		region := rng.Int64N(4) * 256
		lo := -50 + rng.Int64N(200)
		sub := subsume.NewSubscription(schema).
			Range("region", region, region+255).
			Range("tempC10", lo, lo+300+rng.Int64N(300)).
			Range("battery", 10*rng.Int64N(3), 100).
			Build()
		must(net.Subscribe("sink", fmt.Sprintf("task/%d", i), sub))
	}

	// Sensor readings from region 0 (watched by ~a quarter of tasks).
	readings := 0
	for i := 0; i < nReadings; i++ {
		p := subsume.NewPublication(
			rng.Int64N(256),
			rng.Int64N(500),
			20+rng.Int64N(80),
		)
		must(net.Publish("field", fmt.Sprintf("r%d", i), p))
		readings++
	}

	// Count distinct readings that reached the sink (a reading can
	// match several tasks; count it once).
	seen := map[string]bool{}
	for _, n := range net.Notifications("sink") {
		seen[fmt.Sprint(n.Pub)] = true
	}
	m := net.Metrics()
	return len(seen), m.SubsForwarded, net.Dropped()
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
