// Scale smoke: 200 simulated brokers on a ring+chords overlay,
// running the SWIM-style membership protocol (random probing, delta
// gossip, hash-armed anti-entropy) to convergence and through a
// steady-state measurement window — deterministically, in one
// process, on a manual clock.
//
// Run with: go run ./examples/scale
// Exits non-zero when the protocol regresses (CI smoke): convergence
// over 20 rounds, any full-snapshot frame in steady state, or
// steady-state traffic above 4 KiB per member per round.
package main

import (
	"fmt"
	"os"
	"time"

	"probsum/pubsub/cluster/scale"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "scale: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	start := time.Now()
	rep, err := scale.Run(scale.Config{N: 200, Seed: 1})
	if err != nil {
		return err
	}
	fmt.Printf("200 brokers, %d overlay links (max degree %d)\n", rep.Links, rep.MaxDegree)
	fmt.Printf("converged in %d rounds (%v simulated, %v wall)\n",
		rep.ConvergedRound, rep.ConvergedTime, time.Since(start).Round(time.Millisecond))
	fmt.Printf("steady state: %.0f bytes/member/round, %d delta frames, %d full-snapshot frames\n",
		rep.SteadyBytesPerMemberRound, rep.SteadyDeltaFrames, rep.SteadyFullGossipFrames)

	if rep.ConvergedRound > 20 {
		return fmt.Errorf("regression: convergence took %d rounds (bound 20)", rep.ConvergedRound)
	}
	if rep.SteadyFullGossipFrames != 0 {
		return fmt.Errorf("regression: %d full-snapshot frames in steady state (bound 0)", rep.SteadyFullGossipFrames)
	}
	if rep.SteadyBytesPerMemberRound > 4096 {
		return fmt.Errorf("regression: %.0f bytes/member/round in steady state (bound 4096)", rep.SteadyBytesPerMemberRound)
	}
	fmt.Println("scale smoke PASSED")
	return nil
}
