// Chaos demo: kill -9 a durable broker mid-traffic and watch it come
// back from its journal.
//
// Two brokers link up over TCP with the membership layer running: B1
// is DURABLE (journal + snapshots in a temp -data-dir) and runs as a
// separate OS process — this same binary re-executed in child mode —
// while the survivor B2 runs in-process. A subscriber attaches to B1,
// a publisher to B2, and after a warm-up delivery the demo SIGKILLs
// the B1 process: no drain, no final snapshot, exactly a machine
// crash. While B1 is down the survivor accepts another subscription
// whose forward dies on the dead wire. Then B1 restarts from the same
// data directory: it recovers its subscriptions, clients, and dedup
// window from disk, the survivor's reconnect loop re-dials it, and
// the link-digest reconciliation running inside gossip squares both
// sides — including the subscription B1 never saw. The demo verifies
// digest convergence in both directions and end-to-end delivery for
// every subscription, old and mid-outage, WITHOUT any client
// re-subscribing.
//
// Run with: go run ./examples/chaos
// Exits non-zero if recovery or reconciliation fails (CI smoke).
package main

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net"
	"os"
	"os/exec"
	"strings"
	"time"

	"probsum/internal/interval"
	"probsum/internal/subscription"
	"probsum/pubsub"
	"probsum/pubsub/cluster"
)

func main() {
	if os.Getenv("CHAOS_CHILD") == "1" {
		runChild()
		return
	}
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "chaos demo: %v\n", err)
		os.Exit(1)
	}
}

func clusterConfig() cluster.Config {
	return cluster.Config{
		PingEvery:     200 * time.Millisecond,
		SuspectMisses: 2,
		DeadAfter:     time.Second,
		GossipEvery:   300 * time.Millisecond,
		ReconnectMin:  200 * time.Millisecond,
		ReconnectMax:  time.Second,
	}
}

// runChild is the durable broker process: listen, recover, report,
// answer digest queries over stdin until killed or told to quit.
func runChild() {
	b, err := pubsub.ListenBroker(os.Getenv("CHAOS_ID"), os.Getenv("CHAOS_ADDR"), pubsub.Pairwise, pubsub.Config{},
		pubsub.WithDataDir(os.Getenv("CHAOS_DATA")), pubsub.WithJournalSync(1))
	if err != nil {
		fmt.Printf("ERR %v\n", err)
		os.Exit(1)
	}
	peerID := os.Getenv("CHAOS_PEER_ID")
	n := cluster.Attach(b, clusterConfig())
	n.AddMember(cluster.Member{ID: peerID, Addr: os.Getenv("CHAOS_PEER_ADDR")}, true)
	if rs, ok := b.Recovery(); ok {
		fmt.Printf("RECOVERED subs=%d clients=%d neighbors=%d snapshot=%d journal=%d skipped=%d truncated=%v\n",
			rs.Subscriptions, rs.Clients, rs.Neighbors, rs.SnapshotOps, rs.JournalRecords, rs.Skipped, rs.Truncated)
	}
	fmt.Println("READY")
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		switch sc.Text() {
		case "digest":
			out, ok := b.LinkDigest(peerID)
			recv := b.ReceivedDigest(peerID)
			fmt.Printf("DIGEST ok=%v out=%d/%d recv=%d/%d\n", ok, out.Count, out.Root, recv.Count, recv.Root)
		case "quit":
			n.Close()
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			b.Shutdown(ctx)
			cancel()
			return
		}
	}
}

// child drives one durable broker process.
type child struct {
	cmd   *exec.Cmd
	stdin io.WriteCloser
	lines chan string
}

func startChild(id, addr, dir, peerID, peerAddr string) (*child, error) {
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(),
		"CHAOS_CHILD=1", "CHAOS_ID="+id, "CHAOS_ADDR="+addr, "CHAOS_DATA="+dir,
		"CHAOS_PEER_ID="+peerID, "CHAOS_PEER_ADDR="+peerAddr)
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return nil, err
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	c := &child{cmd: cmd, stdin: stdin, lines: make(chan string, 64)}
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			select {
			case c.lines <- sc.Text():
			default:
			}
		}
		close(c.lines)
	}()
	return c, nil
}

func (c *child) expect(prefix string, d time.Duration) (string, error) {
	deadline := time.After(d)
	for {
		select {
		case line, ok := <-c.lines:
			if !ok {
				return "", fmt.Errorf("broker process exited while waiting for %q", prefix)
			}
			if strings.HasPrefix(line, prefix) {
				return line, nil
			}
		case <-deadline:
			return "", fmt.Errorf("timeout waiting for broker process line %q", prefix)
		}
	}
}

func freeAddr() (string, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	defer ln.Close()
	return ln.Addr().String(), nil
}

func waitFor(d time.Duration, what string, cond func() bool) error {
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			return fmt.Errorf("timeout waiting for %s", what)
		}
		time.Sleep(20 * time.Millisecond)
	}
	return nil
}

func tile(lo, hi int64) pubsub.Subscription {
	return subscription.New(interval.New(lo, hi), interval.New(lo, hi))
}

// expectDelivery publishes under fresh IDs until the subscriber sees
// one under the wanted subscription (publication transport is
// at-most-once over a settling link).
func expectDelivery(ctx context.Context, pub, sub *pubsub.Client, prefix string, p pubsub.Publication, wantSub string) error {
	for i := 0; i < 8; i++ {
		pubID := fmt.Sprintf("%s-%d", prefix, i)
		if err := pub.Publish(ctx, pubID, p); err != nil {
			return err
		}
		timeout := time.After(time.Second)
	recv:
		for {
			select {
			case n, ok := <-sub.Notifications():
				if !ok {
					return fmt.Errorf("notification stream closed waiting for %s", pubID)
				}
				if n.PubID == pubID {
					if n.SubID != wantSub {
						return fmt.Errorf("%s delivered under %s, want %s", pubID, n.SubID, wantSub)
					}
					return nil
				}
			case <-timeout:
				break recv
			}
		}
	}
	return fmt.Errorf("no %s-* publication delivered", prefix)
}

func run() error {
	childAddr, err := freeAddr()
	if err != nil {
		return err
	}
	dir, err := os.MkdirTemp("", "probsum-chaos-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	// Survivor B2, in-process.
	b2, err := pubsub.ListenBroker("B2", "127.0.0.1:0", pubsub.Pairwise, pubsub.Config{})
	if err != nil {
		return err
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		b2.Shutdown(ctx)
	}()
	n2 := cluster.Attach(b2, clusterConfig())
	defer n2.Close()
	n2.AddMember(cluster.Member{ID: "B1", Addr: childAddr}, true)

	// Durable B1 as a separate process.
	fmt.Printf("starting durable broker B1 (pid below) on %s, data dir %s\n", childAddr, dir)
	c1, err := startChild("B1", childAddr, dir, "B2", b2.Addr())
	if err != nil {
		return err
	}
	if _, err := c1.expect("READY", 10*time.Second); err != nil {
		return err
	}
	fmt.Printf("B1 up (pid %d); waiting for the overlay link\n", c1.cmd.Process.Pid)
	if err := waitFor(10*time.Second, "cluster assembly", func() bool {
		m, ok := n2.Member("B1")
		return ok && m.State == cluster.StateAlive
	}); err != nil {
		return err
	}

	ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
	defer cancel()
	alice, err := pubsub.Dial(ctx, childAddr, "alice")
	if err != nil {
		return err
	}
	defer alice.Close()
	bob, err := pubsub.Dial(ctx, b2.Addr(), "bob")
	if err != nil {
		return err
	}
	defer bob.Close()

	if err := alice.Subscribe(ctx, "s1", tile(0, 100)); err != nil {
		return err
	}
	if err := waitFor(5*time.Second, "s1 to cross to the survivor", func() bool {
		return b2.Metrics().SubsReceived >= 1
	}); err != nil {
		return err
	}
	if err := expectDelivery(ctx, bob, alice, "warm", subscription.NewPublication(50, 50), "s1"); err != nil {
		return fmt.Errorf("pre-crash delivery: %w", err)
	}
	fmt.Println("warm-up delivery B2→B1→alice OK; journal has the state")

	fmt.Printf("kill -9 %d\n", c1.cmd.Process.Pid)
	c1.cmd.Process.Kill()
	c1.cmd.Wait()
	if err := waitFor(10*time.Second, "survivor to declare B1 dead", func() bool {
		m, _ := n2.Member("B1")
		return m.State == cluster.StateDead
	}); err != nil {
		return err
	}
	fmt.Println("survivor declared B1 dead")

	// A subscription the dead broker never sees: its forward dies on
	// the wire. Reconciliation must carry it over after the restart.
	carol, err := pubsub.Dial(ctx, b2.Addr(), "carol")
	if err != nil {
		return err
	}
	defer carol.Close()
	if err := carol.Subscribe(ctx, "s2", tile(400, 500)); err != nil {
		return err
	}
	fmt.Println("carol subscribed s2 at the survivor while B1 is down")

	fmt.Println("restarting B1 from the same data directory")
	c2, err := startChild("B1", childAddr, dir, "B2", b2.Addr())
	if err != nil {
		return err
	}
	rec, err := c2.expect("RECOVERED", 10*time.Second)
	if err != nil {
		return err
	}
	fmt.Println(rec)
	if !strings.Contains(rec, "subs=1 ") || !strings.Contains(rec, "clients=1 ") {
		return fmt.Errorf("recovery stats %q: the journal did not restore the pre-crash state", rec)
	}
	if _, err := c2.expect("READY", 10*time.Second); err != nil {
		return err
	}
	if err := waitFor(15*time.Second, "survivor to heal the link", func() bool {
		m, _ := n2.Member("B1")
		return m.State == cluster.StateAlive
	}); err != nil {
		return err
	}
	fmt.Println("link healed")

	// Digest convergence in both directions: each side's sender digest
	// must equal the other side's receiver digest.
	if err := waitFor(15*time.Second, "link digests to converge", func() bool {
		fmt.Fprintln(c2.stdin, "digest")
		line, err := c2.expect("DIGEST", 5*time.Second)
		if err != nil {
			return false
		}
		sOut, ok := b2.LinkDigest("B1")
		if !ok {
			return false
		}
		sRecv := b2.ReceivedDigest("B1")
		return line == fmt.Sprintf("DIGEST ok=true out=%d/%d recv=%d/%d",
			sRecv.Count, sRecv.Root, sOut.Count, sOut.Root)
	}); err != nil {
		return fmt.Errorf("reconciliation failed: %w", err)
	}
	fmt.Println("link digests converged in both directions")

	// No client re-subscribed. Alice re-dials (her TCP connection died
	// with the process) and both subscriptions must route end to end.
	alice2, err := pubsub.Dial(ctx, childAddr, "alice")
	if err != nil {
		return err
	}
	defer alice2.Close()
	if err := expectDelivery(ctx, bob, alice2, "post1", subscription.NewPublication(60, 60), "s1"); err != nil {
		return fmt.Errorf("recovered subscription s1 does not route: %w", err)
	}
	fmt.Println("recovered subscription s1 routes B2→B1→alice (no re-subscribe)")
	if err := expectDelivery(ctx, alice2, carol, "post2", subscription.NewPublication(450, 450), "s2"); err != nil {
		return fmt.Errorf("mid-outage subscription s2 does not route: %w", err)
	}
	fmt.Println("mid-outage subscription s2 routes B1→B2→carol (reconciled over)")

	fmt.Fprintln(c2.stdin, "quit")
	c2.cmd.Wait()
	fmt.Println("chaos demo OK: kill -9, restart from disk, reconcile, deliver")
	return nil
}
