// Stock ticker: a concurrent subscription feed against one shared
// coverage table.
//
// A subsume.Table is safe for concurrent callers, so one table can
// serve many trading desks at once: each desk goroutine registers its
// interests as a burst through SubscribeBatch — a broad desk-level
// subscription plus many narrow per-trader refinements — while ticker
// goroutines concurrently route trades with Match. The batch path
// admits each burst largest-first, so the desk-level subscription
// suppresses the per-trader ones on arrival and the active set (what
// a broker would forward upstream) stays a fraction of the population.
//
// Run with: go run ./examples/stockticker
package main

import (
	"fmt"
	"log"
	"math/rand/v2"
	"sync"
	"sync/atomic"

	"probsum/subsume"
)

const (
	symbols  = 400 // symbol universe, attribute "sym"
	desks    = 8   // concurrent subscriber goroutines
	traders  = 48  // per-trader subscriptions per desk
	tickers  = 4   // concurrent publisher goroutines
	tickerN  = 500 // trades per ticker goroutine
	priceMax = 100_000
)

func main() {
	schema := subsume.NewSchema(
		subsume.Attr("sym", 0, symbols-1),
		subsume.Attr("price", 0, priceMax), // cents
		subsume.Attr("size", 0, 1_000_000),
	)
	// Rendezvous placement spreads the desk piles: covered trader
	// subscriptions live with their desk-level coverer, so under the
	// default locality-first router one shard used to hold 245 of the
	// 392 subscriptions; load-aware placement keeps every shard under
	// ~40% (see TableMetrics.ShardOccupancy).
	table, err := subsume.NewTable(subsume.Group,
		subsume.WithShards(4),
		subsume.WithTableSchema(schema),
		subsume.WithTableSeed(2026),
		subsume.WithRendezvousPlacement(),
	)
	if err != nil {
		log.Fatal(err)
	}

	// Phase 1: every desk subscribes concurrently, one burst each.
	var wg sync.WaitGroup
	for d := 0; d < desks; d++ {
		wg.Add(1)
		go func(d int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(uint64(d), 99))
			// The desk watches a contiguous symbol block end to end.
			symLo := int64(d * symbols / desks)
			symHi := int64((d+1)*symbols/desks - 1)
			ids := []subsume.ID{subsume.ID(d * 10_000)}
			subs := []subsume.Subscription{
				subsume.NewSubscription(schema).Range("sym", symLo, symHi).Build(),
			}
			// Traders refine: single symbol, a price band, a size floor.
			for tr := 1; tr <= traders; tr++ {
				sym := symLo + rng.Int64N(symHi-symLo+1)
				lo := rng.Int64N(priceMax / 2)
				ids = append(ids, subsume.ID(d*10_000+tr))
				subs = append(subs, subsume.NewSubscription(schema).
					Range("sym", sym, sym).
					Range("price", lo, lo+rng.Int64N(priceMax-lo)).
					Range("size", rng.Int64N(10_000), 1_000_000).
					Build())
			}
			if _, err := table.SubscribeBatch(ids, subs); err != nil {
				log.Fatalf("desk %d: %v", d, err)
			}
		}(d)
	}
	wg.Wait()

	snap := table.Snapshot()
	fmt.Printf("subscriptions: %d total, %d active, %d covered (%.0f%% suppressed)\n",
		snap.Len, snap.Active, snap.Covered, 100*float64(snap.Covered)/float64(snap.Len))
	fmt.Printf("shards: %d, per-shard sizes:", len(snap.Shards))
	for _, s := range snap.Shards {
		fmt.Printf(" %d", s.Len)
	}
	fmt.Println()

	// Phase 2: tickers publish trades concurrently while a churn
	// goroutine cancels and re-adds desk subscriptions (promoting and
	// re-suppressing traders under the feed).
	var delivered atomic.Int64
	for g := 0; g < tickers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(uint64(g), 7))
			for i := 0; i < tickerN; i++ {
				trade := subsume.NewPublication(
					rng.Int64N(symbols), rng.Int64N(priceMax+1), rng.Int64N(1_000_001),
				)
				delivered.Add(int64(len(table.Match(trade))))
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for d := 0; d < desks; d++ {
			if _, err := table.Unsubscribe(subsume.ID(d * 10_000)); err != nil {
				log.Fatalf("churn: %v", err)
			}
			sub, err := subsume.NewSubscription(schema).
				Range("sym", int64(d*symbols/desks), int64((d+1)*symbols/desks-1)).
				Checked()
			if err != nil {
				log.Fatalf("churn: %v", err)
			}
			if _, err := table.Subscribe(subsume.ID(d*10_000+9_999), sub); err != nil {
				log.Fatalf("churn: %v", err)
			}
		}
	}()
	wg.Wait()

	m := table.Metrics()
	fmt.Printf("routed %d trades, %d matches delivered\n", tickers*tickerN, delivered.Load())
	fmt.Printf("table metrics: %d subscribes (%d batched), %d suppressed (%d cross-shard), %d promotions, %d migrations\n",
		m.Subscribes, m.BatchItems, m.Suppressed, m.CrossShardSuppressed, m.Promotions, m.Migrations)
}
