// Bike rental: the paper's Section 3 motivating scenario.
//
// A sensor-enriched bicycle rental system where rental posts publish
// available bikes and users subscribe with preferences (Table 1 of
// the paper). The example shows how verbose preferences compile into
// range subscriptions, how publications match, and how group coverage
// keeps the subscription table small as many similar users subscribe.
//
// Run with: go run ./examples/bikerental
package main

import (
	"fmt"
	"log"
	"math/rand/v2"

	"probsum/subsume"
)

// Attribute encoding per the paper: bike IDs classify the bike type,
// brands are enumerated, rental-post IDs encode location, dates are
// epoch seconds.
const (
	brandX = 1
	brandY = 2

	t1600 = 1143820800 // 2006-03-31T16:00:00Z
	t2000 = 1143835200 // 2006-03-31T20:00:00Z
	t1200 = 1143806400 // 2006-03-31T12:00:00Z
	t1400 = 1143813600 // 2006-03-31T14:00:00Z
	t1823 = 1143829385 // 2006-03-31T18:23:05Z
	t1223 = 1143807785 // 2006-03-31T12:23:05Z
)

func main() {
	schema := subsume.NewSchema(
		subsume.Attr("bID", 1, 100_000),
		subsume.Attr("size", 10, 30),
		subsume.Attr("brand", 1, 100),
		subsume.Attr("rpID", 1, 1000),
		subsume.Attr("date", 0, 2_000_000_000),
	)

	// s1: "lady mountain bike size 19, brand X, Friday evening, near
	// home" — Table 1, row 1.
	s1 := subsume.NewSubscription(schema).
		Range("bID", 1000, 1999).
		Eq("size", 19).
		Eq("brand", brandX).
		Range("rpID", 820, 840).
		Range("date", t1600, t2000).
		Build()

	// s2: "any bike size 17-19 in my current vicinity over lunch" —
	// Table 1, row 2 (brand unconstrained).
	s2 := subsume.NewSubscription(schema).
		Range("bID", 1, 1999).
		Range("size", 17, 19).
		Range("rpID", 10, 12).
		Range("date", t1200, t1400).
		Build()

	// Publications from rental posts detecting available bikes.
	p1 := subsume.NewPublication(1036, 19, brandX, 825, t1823)
	p2 := subsume.NewPublication(1035, 17, brandY, 11, t1223)

	fmt.Println("matching (paper Table 1):")
	for _, c := range []struct {
		name string
		sub  subsume.Subscription
		pub  subsume.Publication
	}{
		{"s1 vs p1", s1, p1}, {"s1 vs p2", s1, p2},
		{"s2 vs p1", s2, p1}, {"s2 vs p2", s2, p2},
	} {
		fmt.Printf("  %s: %v\n", c.name, c.sub.Matches(c.pub))
	}

	// Many users near the same rental posts define similar weekend
	// preferences; group coverage suppresses most of them.
	checker, err := subsume.NewChecker(subsume.WithErrorProbability(1e-6), subsume.WithSeed(7, 8))
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(99, 100))
	var active []subsume.Subscription
	suppressed := 0
	for i := 0; i < 400; i++ {
		sub := randomWeekendPreference(rng, schema)
		res, err := checker.Covered(sub, active)
		if err != nil {
			log.Fatal(err)
		}
		if res.Covered() {
			suppressed++
			continue
		}
		active = append(active, sub)
	}
	fmt.Printf("\n400 similar user subscriptions -> %d active, %d suppressed by group coverage (%.0f%%)\n",
		len(active), suppressed, float64(suppressed)/4.0)
}

// randomWeekendPreference generates a plausible user subscription:
// popular bike categories, common sizes, a favorite rental area, and
// the Friday-evening window with per-user slack.
func randomWeekendPreference(rng *rand.Rand, schema *subsume.Schema) subsume.Subscription {
	category := []int64{1000, 2000, 3000}[rng.IntN(3)]
	size := 17 + 2*rng.Int64N(3) // 17, 19, or 21
	area := 800 + rng.Int64N(5)*10
	start := int64(t1600) - rng.Int64N(4)*900
	end := int64(t2000) + rng.Int64N(4)*900
	b := subsume.NewSubscription(schema).
		Range("bID", category, category+999).
		Range("size", size-1, size+1).
		Range("rpID", area, area+20+rng.Int64N(10)).
		Range("date", start, end)
	if rng.IntN(3) == 0 { // a third of users insist on brand X
		b = b.Eq("brand", brandX)
	}
	return b.Build()
}
