// Quickstart: group-subsumption checking in a dozen lines.
//
// Two existing subscriptions jointly cover a third one even though
// neither covers it alone — the case classical pairwise systems miss
// and this library decides probabilistically (the paper's Table 3
// example, plus a non-covered variant producing an explicit witness).
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"probsum/subsume"
)

func main() {
	schema := subsume.NewSchema(
		subsume.Attr("x1", 0, 10_000),
		subsume.Attr("x2", 0, 10_000),
	)

	s1 := subsume.NewSubscription(schema).Range("x1", 820, 850).Range("x2", 1001, 1007).Build()
	s2 := subsume.NewSubscription(schema).Range("x1", 840, 880).Range("x2", 1002, 1009).Build()
	existing := []subsume.Subscription{s1, s2}

	checker, err := subsume.NewChecker(
		subsume.WithErrorProbability(1e-6),
		subsume.WithSeed(42, 43), // reproducible demo output
	)
	if err != nil {
		log.Fatal(err)
	}

	// Covered: s ⊑ s1 ∨ s2, although neither s1 nor s2 covers s alone.
	s := subsume.NewSubscription(schema).Range("x1", 830, 870).Range("x2", 1003, 1006).Build()
	res, err := checker.Covered(s, existing)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("s  = %v\ncovered by union: %v (decision %v, %d trials)\n\n",
		s, res.Covered(), res.Decision(), res.Trials())

	// Not covered: widening s past both subscriptions produces a
	// definite NO with a geometric witness.
	wide := subsume.NewSubscription(schema).Range("x1", 830, 890).Range("x2", 1003, 1006).Build()
	res, err = checker.Covered(wide, existing)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("s' = %v\ncovered by union: %v\n", wide, res.Covered())
	if w := res.PolyhedronWitness(); w.IsSatisfiable() {
		fmt.Printf("witness region no subscription covers: %v\n", w)
	}
}
