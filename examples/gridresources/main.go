// Grid resource discovery: the paper's second Section 3 scenario.
//
// Services announce computational capabilities as subscriptions
// (Table 2 of the paper); jobs publish requirements. The broker
// overlay routes each job to every service whose announcement matches,
// while group coverage keeps announcement traffic low as services with
// overlapping capability windows register.
//
// Run with: go run ./examples/gridresources
package main

import (
	"fmt"
	"log"
	"math/rand/v2"

	"probsum/pubsub"
	"probsum/subsume"
)

func main() {
	schema := subsume.NewSchema(
		subsume.Attr("cpu", 0, 10_000),     // available CPU cycles (millions)
		subsume.Attr("disk", 0, 1000),      // kB of scratch disk
		subsume.Attr("memMB", 0, 64_000),   // RAM in MB
		subsume.Attr("service", 1, 10_000), // service-name ID range
		subsume.Attr("tstart", 0, 100_000), // availability window
	)

	// A three-broker data-center overlay: scheduler <-> core <-> edge.
	net, err := pubsub.NewNetwork(pubsub.Group, pubsub.Config{ErrorProbability: 1e-6, Seed: 11})
	if err != nil {
		log.Fatal(err)
	}
	for _, b := range []string{"scheduler", "core", "edge"} {
		if err := net.AddBroker(b); err != nil {
			log.Fatal(err)
		}
	}
	must(net.Connect("scheduler", "core"))
	must(net.Connect("core", "edge"))

	// Table 2's service announcement: cpu 3000-3500, disk 40-50kB,
	// 1 GB memory, a.service.org, 16:00-20:00 window.
	must(net.AttachClient("svc-a", "edge"))
	tableTwo := subsume.NewSubscription(schema).
		Range("cpu", 3000, 3500).
		Range("disk", 40, 50).
		Eq("memMB", 1024).
		Eq("service", 42). // a.service.org
		Range("tstart", 57_600, 72_000).
		Build()
	must(net.Subscribe("svc-a", "svc-a/0", tableTwo))

	// A fleet of worker services with overlapping capability windows
	// registers at the edge broker.
	rng := rand.New(rand.NewPCG(5, 6))
	for i := 0; i < 120; i++ {
		cpuLo := rng.Int64N(4000)
		sub := subsume.NewSubscription(schema).
			Range("cpu", cpuLo, cpuLo+1000+rng.Int64N(3000)).
			Range("disk", 0, 50+rng.Int64N(500)).
			Range("memMB", 0, 2048*(1+rng.Int64N(8))).
			Range("service", 1, 10_000).
			Range("tstart", rng.Int64N(20_000), 50_000+rng.Int64N(50_000)).
			Build()
		must(net.Subscribe("svc-a", fmt.Sprintf("svc-a/%d", i+1), sub))
	}
	m := net.Metrics()
	fmt.Printf("announcements: %d forwarded, %d suppressed by group coverage\n",
		m.SubsForwarded, m.SubsSuppressed)

	// Jobs arrive at the scheduler; Table 2's p1 matches the announced
	// service, p2 (too little memory offered for its need profile)
	// does not match Table 2's service.
	must(net.AttachClient("jobs", "scheduler"))
	p1 := subsume.NewPublication(3500, 45, 1024, 42, 57_600)
	p2 := subsume.NewPublication(1035, 45, 512, 99, 44_000)
	must(net.Publish("jobs", "job-1", p1))
	must(net.Publish("jobs", "job-2", p2))

	matched := map[string]bool{}
	for _, n := range net.Notifications("svc-a") {
		if n.SubID == "svc-a/0" {
			matched[fmt.Sprint(n.Pub)] = true
		}
	}
	fmt.Printf("job-1 reached Table 2's service: %v (paper: matches)\n", matched[fmt.Sprint(p1)])
	fmt.Printf("job-2 reached Table 2's service: %v (paper: no match)\n", matched[fmt.Sprint(p2)])
	fmt.Printf("total notifications delivered to the service fleet: %d\n", len(net.Notifications("svc-a")))
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
