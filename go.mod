module probsum

go 1.24
