package pubsub

// frameReader: the stream side of the codec. One instance wraps each
// inbound connection; it sniffs every frame (JSON line or binary
// header, see codec.go) so mixed-codec streams need no per-connection
// mode, reuses one payload buffer across frames (pooled decode: a
// connection's frames never allocate fresh payload storage once the
// buffer has grown to the connection's frame sizes), and exposes a
// non-blocking tryRead so readers can coalesce frames that are
// already buffered without risking a stall on a partial frame.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"time"

	"probsum/internal/obs"
)

// frameReaderBufSize is the bufio window; frames larger than it still
// decode on the blocking path, but cannot be coalesced by tryRead.
const frameReaderBufSize = 64 << 10

type frameReader struct {
	r       *bufio.Reader
	payload []byte // reused binary-payload scratch

	// hist/clock, when set (server-side readers), time the decode
	// stage: unmarshal only, never the blocking socket read. Both nil
	// or both set.
	hist  *obs.Histogram
	clock func() time.Time
}

func newFrameReader(r io.Reader) *frameReader {
	return &frameReader{r: bufio.NewReaderSize(r, frameReaderBufSize)}
}

// instrument attaches decode-stage timing; zero overhead when unset.
func (fr *frameReader) instrument(hist *obs.Histogram, clock func() time.Time) {
	fr.hist, fr.clock = hist, clock
}

// observeDecode records one decode duration starting at t0.
func (fr *frameReader) observeDecode(t0 time.Time) {
	fr.hist.Observe(fr.clock().Sub(t0))
}

// grow returns the reusable payload buffer resized to n bytes.
func (fr *frameReader) grow(n int) []byte {
	if cap(fr.payload) < n {
		fr.payload = make([]byte, n)
	}
	return fr.payload[:n]
}

// read blocks until one full frame is decoded (or the stream errors).
func (fr *frameReader) read(f *Frame) error {
	first, err := fr.r.Peek(1)
	if err != nil {
		return err
	}
	if first[0] == binMagic {
		var hdr [binHeader]byte
		if _, err := io.ReadFull(fr.r, hdr[:]); err != nil {
			return err
		}
		n, err := parseBinaryHeader(hdr[:])
		if err != nil {
			return err
		}
		payload := fr.grow(n)
		if _, err := io.ReadFull(fr.r, payload); err != nil {
			return err
		}
		var t0 time.Time
		if fr.hist != nil {
			t0 = fr.clock()
		}
		msg, err := decodeBinaryMessage(payload)
		if fr.hist != nil {
			fr.observeDecode(t0)
		}
		// One outsized frame must not pin its buffer for the life of
		// the connection — drop anything beyond the bufio window and
		// fall back to the steady-state size on the next frame.
		if cap(fr.payload) > frameReaderBufSize {
			fr.payload = nil
		}
		if err != nil {
			return err
		}
		*f = Frame{Msg: msg}
		return nil
	}
	line, err := fr.r.ReadBytes('\n')
	if err != nil {
		return err
	}
	var t0 time.Time
	if fr.hist != nil {
		t0 = fr.clock()
	}
	*f = Frame{}
	if err := json.Unmarshal(line, f); err != nil {
		return fmt.Errorf("pubsub: json frame: %w", err)
	}
	if fr.hist != nil {
		fr.observeDecode(t0)
	}
	return nil
}

// tryRead decodes the next frame ONLY if it is already fully buffered
// and reports whether it did. It never touches the underlying reader,
// so a reader goroutine can drain everything the kernel already
// delivered — coalescing a burst — and fall back to the blocking read
// when the stream runs dry mid-frame.
func (fr *frameReader) tryRead(f *Frame) (bool, error) {
	n := fr.r.Buffered()
	if n == 0 {
		return false, nil
	}
	buf, err := fr.r.Peek(n)
	if err != nil {
		return false, err
	}
	if buf[0] == binMagic {
		if n < binHeader {
			return false, nil
		}
		plen, err := parseBinaryHeader(buf)
		if err != nil {
			return false, err
		}
		if n < binHeader+plen {
			return false, nil
		}
		var t0 time.Time
		if fr.hist != nil {
			t0 = fr.clock()
		}
		msg, err := decodeBinaryMessage(buf[binHeader : binHeader+plen])
		if fr.hist != nil {
			fr.observeDecode(t0)
		}
		if err != nil {
			return false, err
		}
		fr.r.Discard(binHeader + plen)
		*f = Frame{Msg: msg}
		return true, nil
	}
	i := bytes.IndexByte(buf, '\n')
	if i < 0 {
		// No full JSON line buffered (possibly a frame larger than the
		// window); let the blocking path handle it.
		return false, nil
	}
	var t0 time.Time
	if fr.hist != nil {
		t0 = fr.clock()
	}
	*f = Frame{}
	if err := json.Unmarshal(buf[:i+1], f); err != nil {
		return false, fmt.Errorf("pubsub: json frame: %w", err)
	}
	if fr.hist != nil {
		fr.observeDecode(t0)
	}
	fr.r.Discard(i + 1)
	return true, nil
}
