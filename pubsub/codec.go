package pubsub

// Wire codecs: how a Frame becomes bytes on a TCP connection.
//
// Two codecs share the stream:
//
//   - CodecJSON is the PR-3 format — one JSON object per line, as
//     written by encoding/json. It remains the format of the
//     handshake (hello and ack frames are ALWAYS JSON, so version
//     negotiation itself never depends on the negotiated version) and
//     the fallback for peers that never advertised anything newer.
//   - CodecBinary is the length-prefixed binary format: a 6-byte
//     header (magic 0xBF, version, uint32 little-endian payload
//     length) followed by a varint-encoded payload. 0xBF is a UTF-8
//     continuation byte, so no JSON value can start with it — every
//     frame on the wire is self-describing and a decoder handles
//     mixed streams without per-connection state.
//
// A sender may emit binary frames only after the remote end said it
// decodes them (the `codec` field of its hello or ack); see tcp.go
// for the negotiation. Decoding is therefore strictly more liberal
// than encoding, which is what keeps old JSON-only peers working
// against new brokers in both directions.
//
// # Binary frame layout (version 1)
//
//	offset 0      magic 0xBF
//	offset 1      version (0x01)
//	offset 2..5   payload length, uint32 little-endian (≤ 16 MiB)
//	offset 6..    payload
//
//	payload       kind byte (broker.MsgKind), then kind-specific:
//	  subscribe          subID, subscription
//	  unsubscribe        subID
//	  publish            pubID, publication
//	  notify             subID, pubID, publication
//	  subscribe-batch    uvarint n, then n × (subID, subscription)
//	  unsubscribe-batch  uvarint n, then n × subID
//
//	string        uvarint byte length, raw bytes
//	subscription  uvarint bound count, then per bound varint lo, hi
//	publication   uvarint value count, then varint values
//
// Encoding appends into pooled buffers and writes each frame with one
// Write call; decoding parses in place from the connection's read
// buffer — the payload is never copied into an intermediate frame,
// only the fields that outlive it (strings, bounds, values) are
// materialized.

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"sync"
	"unicode/utf8"

	"probsum/internal/broker"
	"probsum/internal/interval"
	"probsum/internal/subscription"
)

// WireCodec identifies a frame encoding on the TCP transport.
type WireCodec uint8

// Wire codecs. The numeric value doubles as the version advertised in
// hello/ack frames: 0 means "JSON only" (what PR-3 peers implicitly
// advertise by omitting the field), 1 means "binary v1 decoded here"
// (PR-4 builds), 2 means "binary v2": the same framing and payload
// grammar as v1 extended with the PUBBATCH and cluster-control
// (ping/pong/gossip) message kinds. The version a peer advertises
// therefore caps both the FRAMING it is sent and the VOCABULARY:
// senders split publish batches (and never send control kinds) toward
// peers that advertised less than 2, exactly as PR-4 already split
// SUBBATCH toward peers that advertised nothing.
const (
	// CodecJSON is newline-delimited JSON — the PR-3 wire format.
	CodecJSON WireCodec = 0
	// CodecBinary is the length-prefixed binary format, version 1.
	CodecBinary WireCodec = 1
	// CodecBinary2 adds the publish-batch and cluster-control kinds.
	CodecBinary2 WireCodec = 2
	// CodecBinary3 adds the durability/reconciliation vocabulary: the
	// optional link-digest field piggybacked on gossip frames and the
	// sync-request / sync-roots anti-entropy kinds. Toward peers that
	// advertised less, senders strip the digest and drop sync frames —
	// the link then simply keeps PR-5 semantics (forward healing only).
	CodecBinary3 WireCodec = 3
	// CodecBinary4 adds the SWIM-scale membership vocabulary: the
	// ping-req indirect-probe and gossip-delta kinds, plus optional
	// membership deltas piggybacked on ping/pong frames. Toward peers
	// that advertised less, senders drop the new kinds and strip the
	// piggybacked deltas — the link then keeps PR-5/6 full-snapshot
	// gossip semantics.
	CodecBinary4 WireCodec = 4
	// CodecBinary5 adds the structured-routing vocabulary: the
	// route-announce kind that carries subscriptions hop-by-hop toward
	// a rendezvous broker. Toward peers that advertised less, senders
	// rewrite a route announce as its flood form (a subscribe-batch
	// with the same items) — the link then keeps flood semantics, which
	// routed delivery is a strict subset of.
	CodecBinary5 WireCodec = 5
)

// String returns the codec name.
func (c WireCodec) String() string {
	switch c {
	case CodecJSON:
		return "json"
	case CodecBinary:
		return "binary-v1"
	case CodecBinary2:
		return "binary-v2"
	case CodecBinary3:
		return "binary-v3"
	case CodecBinary4:
		return "binary-v4"
	case CodecBinary5:
		return "binary"
	default:
		return fmt.Sprintf("codec(%d)", uint8(c))
	}
}

// ParseWireCodec parses a codec name as accepted by the CLI tools:
// "json", "binary" (the latest binary version), and the pinned
// historical vocabularies "binary-v1" (PR-4), "binary-v2" (PR-5),
// "binary-v3" (PR-6/7), and "binary-v4" (PR-8), for interop tests and
// staged rollouts.
func ParseWireCodec(s string) (WireCodec, error) {
	switch s {
	case "json":
		return CodecJSON, nil
	case "binary":
		return CodecBinary5, nil
	case "binary-v1":
		return CodecBinary, nil
	case "binary-v2":
		return CodecBinary2, nil
	case "binary-v3":
		return CodecBinary3, nil
	case "binary-v4":
		return CodecBinary4, nil
	default:
		return 0, fmt.Errorf("pubsub: unknown wire codec %q (want json | binary | binary-v1 | binary-v2 | binary-v3 | binary-v4)", s)
	}
}

// negotiate returns the codec to write with, given our own cap and
// what the remote advertised it decodes: the smaller of the two binary
// versions when both sides decode binary, JSON otherwise.
func (c WireCodec) negotiate(remote WireCodec) WireCodec {
	if c >= CodecBinary && remote >= CodecBinary {
		return min(c, remote)
	}
	return CodecJSON
}

const (
	binMagic = 0xBF
	// binVersion and binVersion2 are the header version bytes. The
	// byte is tied to the MESSAGE KIND, not the negotiated codec: the
	// PR-4 kinds keep emitting byte-identical v1 frames (so v1 decoders
	// and the committed fuzz corpus are untouched), while the kinds v1
	// decoders do not know travel under the v2 byte — a v1 peer that is
	// accidentally sent one fails at the header, the cheapest place.
	binVersion  = 1
	binVersion2 = 2
	binVersion3 = 3
	binVersion4 = 4
	binVersion5 = 5
	binHeader   = 6
	// maxBinaryPayload bounds a decoded frame; hostile length fields
	// cannot force large allocations past it.
	maxBinaryPayload = 16 << 20
)

// frameMinCodec is the wire vocabulary registry: for every frame
// kind, the minimum negotiated codec a destination must have
// advertised before a frame of that kind may be sent to it. brokervet's
// wirecheck pass enforces that the registry stays total over the Msg*
// kinds and that every kind above the JSON baseline keeps a
// version-gated case in the transport's send path (tcpServer.send),
// so "added a frame kind, forgot the gate" fails the build instead of
// the fuzz corpus.
var frameMinCodec = map[broker.MsgKind]WireCodec{
	broker.MsgSubscribe:        CodecJSON,
	broker.MsgUnsubscribe:      CodecJSON,
	broker.MsgPublish:          CodecJSON,
	broker.MsgNotify:           CodecJSON,
	broker.MsgSubscribeBatch:   CodecBinary,
	broker.MsgUnsubscribeBatch: CodecBinary,
	broker.MsgPublishBatch:     CodecBinary2,
	broker.MsgPing:             CodecBinary2,
	broker.MsgPong:             CodecBinary2,
	broker.MsgGossip:           CodecBinary2,
	broker.MsgSyncRequest:      CodecBinary3,
	broker.MsgSyncRoots:        CodecBinary3,
	broker.MsgPingReq:          CodecBinary4,
	broker.MsgGossipDelta:      CodecBinary4,
	broker.MsgRouteAnnounce:    CodecBinary5,
}

// wireVersionOf returns the header version byte for a message. The
// byte is tied to the VOCABULARY the frame uses, not the negotiated
// codec: PR-4 kinds keep emitting byte-identical v1 frames, PR-5
// kinds v2 frames, and only the durability vocabulary — the sync
// kinds, and gossip when it actually piggybacks a digest — travels
// under the v3 byte, so an older peer accidentally sent one fails at
// the header, the cheapest place. The kind→vocabulary mapping is
// frameMinCodec's; kinds at the JSON baseline ride the v1 binary
// framing.
func wireVersionOf(m *broker.Message) byte {
	switch m.Kind {
	case broker.MsgGossip:
		if m.Digest != nil {
			return binVersion3
		}
	case broker.MsgPing, broker.MsgPong:
		if len(m.Members) > 0 {
			return binVersion4
		}
	}
	if v := frameMinCodec[m.Kind]; v >= CodecBinary {
		return byte(v)
	}
	return binVersion
}

// encBufPool pools encode scratch buffers across writers, readers'
// replies, and client sends.
var encBufPool = sync.Pool{
	New: func() any { b := make([]byte, 0, 4096); return &b },
}

func getEncBuf() *[]byte  { return encBufPool.Get().(*[]byte) }
func putEncBuf(b *[]byte) { *b = (*b)[:0]; encBufPool.Put(b) }

// MarshalFrame appends the wire encoding of fr under the given codec
// to buf and returns the extended slice. JSON frames are terminated
// by a newline, binary frames by their length prefix. Handshake
// frames (hello and ack) are JSON-only by protocol; marshaling one as
// binary is an error.
func MarshalFrame(codec WireCodec, buf []byte, fr *Frame) ([]byte, error) {
	switch codec {
	case CodecJSON:
		data, err := json.Marshal(fr)
		if err != nil {
			return buf, err
		}
		buf = append(buf, data...)
		return append(buf, '\n'), nil
	case CodecBinary, CodecBinary2, CodecBinary3, CodecBinary4, CodecBinary5:
		return appendBinaryFrame(buf, fr)
	default:
		return buf, fmt.Errorf("pubsub: cannot marshal under codec %d", codec)
	}
}

// UnmarshalFrame decodes the first frame in data — either codec,
// sniffed from the first byte — returning the frame and the number of
// bytes consumed. A JSON frame without a trailing newline consumes
// the whole input; a binary frame needs its full length-prefixed
// extent present or an error is returned.
func UnmarshalFrame(data []byte) (Frame, int, error) {
	var fr Frame
	if len(data) == 0 {
		return fr, 0, fmt.Errorf("pubsub: empty frame")
	}
	if data[0] == binMagic {
		n, err := decodeBinaryFrame(data, &fr)
		return fr, n, err
	}
	end := len(data)
	if i := bytes.IndexByte(data, '\n'); i >= 0 {
		end = i + 1
	}
	if err := json.Unmarshal(data[:end], &fr); err != nil {
		return Frame{}, 0, fmt.Errorf("pubsub: json frame: %w", err)
	}
	return fr, end, nil
}

// appendBinaryFrame appends the binary encoding of fr to buf.
func appendBinaryFrame(buf []byte, fr *Frame) ([]byte, error) {
	if fr.Msg == nil {
		return buf, fmt.Errorf("pubsub: binary codec carries only message frames (handshake stays JSON)")
	}
	start := len(buf)
	buf = append(buf, binMagic, wireVersionOf(fr.Msg), 0, 0, 0, 0)
	var err error
	if buf, err = appendBinaryMessage(buf, fr.Msg); err != nil {
		return buf[:start], err
	}
	payload := len(buf) - start - binHeader
	if payload > maxBinaryPayload {
		return buf[:start], fmt.Errorf("pubsub: frame payload %d exceeds %d bytes", payload, maxBinaryPayload)
	}
	binary.LittleEndian.PutUint32(buf[start+2:start+binHeader], uint32(payload))
	return buf, nil
}

func appendBinaryMessage(buf []byte, m *broker.Message) ([]byte, error) {
	buf = append(buf, byte(m.Kind))
	switch m.Kind {
	case broker.MsgSubscribe:
		buf = appendString(buf, m.SubID)
		buf = appendSubscription(buf, m.Sub)
	case broker.MsgUnsubscribe:
		buf = appendString(buf, m.SubID)
	case broker.MsgPublish:
		buf = appendString(buf, m.PubID)
		buf = appendPublication(buf, m.Pub)
	case broker.MsgNotify:
		buf = appendString(buf, m.SubID)
		buf = appendString(buf, m.PubID)
		buf = appendPublication(buf, m.Pub)
	case broker.MsgSubscribeBatch:
		buf = binary.AppendUvarint(buf, uint64(len(m.Subs)))
		for _, it := range m.Subs {
			buf = appendString(buf, it.SubID)
			buf = appendSubscription(buf, it.Sub)
		}
	case broker.MsgUnsubscribeBatch:
		buf = binary.AppendUvarint(buf, uint64(len(m.SubIDs)))
		for _, id := range m.SubIDs {
			buf = appendString(buf, id)
		}
	case broker.MsgPublishBatch:
		buf = binary.AppendUvarint(buf, uint64(len(m.Pubs)))
		for _, it := range m.Pubs {
			buf = appendString(buf, it.PubID)
			buf = appendPublication(buf, it.Pub)
		}
	case broker.MsgPing, broker.MsgPong:
		buf = binary.AppendUvarint(buf, m.Seq)
		// Optional piggybacked membership deltas (v4). Like the gossip
		// digest below, absence keeps the frame byte-identical to the
		// v2 encoding; v2/v3 decoders reject trailing bytes, so deltas
		// only travel toward peers that advertised v4 (see tcp.go).
		if len(m.Members) > 0 {
			buf = appendMembers(buf, m.Members)
		}
	case broker.MsgGossip, broker.MsgGossipDelta:
		buf = appendMembers(buf, m.Members)
		// The delta frame (v4, new vocabulary) carries a REQUIRED
		// member-view hash between the update batch and the optional
		// link digest — the anti-entropy trigger that keeps delta-only
		// dissemination complete.
		if m.Kind == broker.MsgGossipDelta {
			buf = binary.LittleEndian.AppendUint64(buf, m.MemberHash)
		}
		// Optional link digest (v3): presence byte, count, fixed root.
		// Absent, the full-gossip frame is byte-identical to the v2
		// encoding — the invariant that keeps v2 decoders and the
		// committed corpus working (v2 decoders reject trailing bytes,
		// so a digest can only travel toward peers that advertised v3;
		// see tcp.go).
		if m.Digest != nil {
			buf = append(buf, 1)
			buf = binary.AppendUvarint(buf, uint64(m.Digest.Count))
			buf = binary.LittleEndian.AppendUint64(buf, m.Digest.Root)
		}
	case broker.MsgPingReq:
		var flags byte
		if m.Ack {
			flags = 1
		}
		buf = append(buf, flags)
		buf = appendString(buf, m.Target)
		buf = binary.AppendUvarint(buf, m.Seq)
		buf = appendMembers(buf, m.Members)
	case broker.MsgSyncRequest:
		buf = binary.AppendUvarint(buf, uint64(len(m.Buckets)))
		for _, v := range m.Buckets {
			buf = binary.LittleEndian.AppendUint64(buf, v)
		}
	case broker.MsgSyncRoots:
		buf = binary.LittleEndian.AppendUint64(buf, m.Mask)
		buf = binary.AppendUvarint(buf, uint64(len(m.Subs)))
		for _, it := range m.Subs {
			buf = appendString(buf, it.SubID)
			buf = appendSubscription(buf, it.Sub)
		}
	case broker.MsgRouteAnnounce:
		buf = appendString(buf, m.Target)
		buf = binary.AppendUvarint(buf, uint64(len(m.Subs)))
		for _, it := range m.Subs {
			buf = appendString(buf, it.SubID)
			buf = appendSubscription(buf, it.Sub)
		}
	default:
		return buf, fmt.Errorf("pubsub: cannot encode message kind %v", m.Kind)
	}
	return buf, nil
}

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// appendMembers appends a uvarint-counted member-record list — the
// shared payload shape of gossip, gossip-delta, ping-req, and the v4
// ping/pong piggyback tail.
func appendMembers(buf []byte, ms []broker.MemberInfo) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(ms)))
	for _, mb := range ms {
		buf = appendString(buf, mb.ID)
		buf = appendString(buf, mb.Addr)
		buf = binary.AppendUvarint(buf, mb.Incarnation)
		buf = append(buf, mb.State)
	}
	return buf
}

func appendSubscription(buf []byte, s subscription.Subscription) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s.Bounds)))
	for _, b := range s.Bounds {
		buf = binary.AppendVarint(buf, b.Lo)
		buf = binary.AppendVarint(buf, b.Hi)
	}
	return buf
}

func appendPublication(buf []byte, p subscription.Publication) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(p.Values)))
	for _, v := range p.Values {
		buf = binary.AppendVarint(buf, v)
	}
	return buf
}

// parseBinaryHeader validates a complete 6-byte binary frame header
// (hdr[0] is known to be the magic byte) and returns the payload
// length — the single copy of the header contract shared by
// UnmarshalFrame and the stream reader's blocking and buffered paths.
func parseBinaryHeader(hdr []byte) (int, error) {
	if hdr[1] < binVersion || hdr[1] > binVersion5 {
		return 0, fmt.Errorf("pubsub: unsupported binary frame version %d", hdr[1])
	}
	n := int(binary.LittleEndian.Uint32(hdr[2:binHeader]))
	if n > maxBinaryPayload {
		return 0, fmt.Errorf("pubsub: frame payload %d exceeds %d bytes", n, maxBinaryPayload)
	}
	return n, nil
}

// decodeBinaryFrame decodes one header-prefixed binary frame from
// data, returning the bytes consumed. data[0] is known to be the
// magic byte.
func decodeBinaryFrame(data []byte, fr *Frame) (int, error) {
	if len(data) < binHeader {
		return 0, fmt.Errorf("pubsub: truncated binary header (%d bytes)", len(data))
	}
	n, err := parseBinaryHeader(data)
	if err != nil {
		return 0, err
	}
	if len(data) < binHeader+n {
		return 0, fmt.Errorf("pubsub: truncated binary frame (%d of %d payload bytes)", len(data)-binHeader, n)
	}
	msg, err := decodeBinaryMessage(data[binHeader : binHeader+n])
	if err != nil {
		return 0, err
	}
	*fr = Frame{Msg: msg}
	return binHeader + n, nil
}

// decodeBinaryMessage parses a payload in place: the input slice is
// only borrowed (callers reuse their read buffers); every field that
// outlives the call is materialized.
func decodeBinaryMessage(payload []byte) (*broker.Message, error) {
	d := binDecoder{buf: payload}
	kind := broker.MsgKind(d.byte())
	msg := &broker.Message{Kind: kind}
	switch kind {
	case broker.MsgSubscribe:
		msg.SubID = d.string()
		msg.Sub = d.subscription()
	case broker.MsgUnsubscribe:
		msg.SubID = d.string()
	case broker.MsgPublish:
		msg.PubID = d.string()
		msg.Pub = d.publication()
	case broker.MsgNotify:
		msg.SubID = d.string()
		msg.PubID = d.string()
		msg.Pub = d.publication()
	case broker.MsgSubscribeBatch:
		// Every item needs at least 2 bytes, bounding the count by the
		// remaining payload before allocating.
		n := d.count(2)
		if d.err == nil {
			msg.Subs = make([]broker.BatchSub, n)
			for i := range msg.Subs {
				msg.Subs[i].SubID = d.string()
				msg.Subs[i].Sub = d.subscription()
			}
		}
	case broker.MsgUnsubscribeBatch:
		n := d.count(1)
		if d.err == nil {
			msg.SubIDs = make([]string, n)
			for i := range msg.SubIDs {
				msg.SubIDs[i] = d.string()
			}
		}
	case broker.MsgPublishBatch:
		n := d.count(2)
		if d.err == nil {
			msg.Pubs = make([]broker.BatchPub, n)
			for i := range msg.Pubs {
				msg.Pubs[i].PubID = d.string()
				msg.Pubs[i].Pub = d.publication()
			}
		}
	case broker.MsgPing, broker.MsgPong:
		msg.Seq = d.uvarint()
		// Optional v4 piggybacked membership deltas after the seq.
		if d.err == nil && len(d.buf) > 0 {
			msg.Members = d.members()
		}
	case broker.MsgGossip, broker.MsgGossipDelta:
		msg.Members = d.members()
		if msg.Kind == broker.MsgGossipDelta {
			msg.MemberHash = d.u64()
			if d.err == nil && msg.MemberHash == 0 {
				d.fail("zero gossip-delta member hash")
			}
		}
		// Optional v3 link digest: presence byte after the member list.
		if d.err == nil && len(d.buf) > 0 {
			if p := d.byte(); p != 1 {
				d.fail("bad gossip digest presence byte %d", p)
			} else {
				count := d.uvarint()
				if count > uint64(^uint32(0)) {
					d.fail("gossip digest count %d overflows", count)
				}
				root := d.u64()
				if d.err == nil {
					msg.Digest = &broker.LinkDigest{Count: uint32(count), Root: root}
				}
			}
		}
	case broker.MsgPingReq:
		if flags := d.byte(); d.err == nil && flags > 1 {
			d.fail("bad ping-req flags byte %d", flags)
		} else {
			msg.Ack = flags == 1
		}
		msg.Target = d.string()
		msg.Seq = d.uvarint()
		msg.Members = d.members()
	case broker.MsgSyncRequest:
		n := d.count(8)
		if d.err == nil {
			msg.Buckets = make([]uint64, n)
			for i := range msg.Buckets {
				msg.Buckets[i] = d.u64()
			}
		}
	case broker.MsgSyncRoots:
		msg.Mask = d.u64()
		n := d.count(2)
		if d.err == nil {
			msg.Subs = make([]broker.BatchSub, n)
			for i := range msg.Subs {
				msg.Subs[i].SubID = d.string()
				msg.Subs[i].Sub = d.subscription()
			}
		}
	case broker.MsgRouteAnnounce:
		msg.Target = d.string()
		n := d.count(2)
		if d.err == nil {
			msg.Subs = make([]broker.BatchSub, n)
			for i := range msg.Subs {
				msg.Subs[i].SubID = d.string()
				msg.Subs[i].Sub = d.subscription()
			}
		}
	default:
		return nil, fmt.Errorf("pubsub: unknown binary message kind %d", kind)
	}
	if d.err != nil {
		return nil, d.err
	}
	if len(d.buf) != 0 {
		return nil, fmt.Errorf("pubsub: %d trailing bytes after %v payload", len(d.buf), kind)
	}
	return msg, nil
}

// binDecoder is a cursor over a binary payload with sticky errors, so
// decode call sites read like the frame layout.
type binDecoder struct {
	buf []byte
	err error
}

func (d *binDecoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("pubsub: "+format, args...)
	}
}

func (d *binDecoder) byte() byte {
	if d.err != nil {
		return 0
	}
	if len(d.buf) == 0 {
		d.fail("truncated payload")
		return 0
	}
	b := d.buf[0]
	d.buf = d.buf[1:]
	return b
}

func (d *binDecoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf)
	if n <= 0 {
		d.fail("bad uvarint")
		return 0
	}
	d.buf = d.buf[n:]
	return v
}

// u64 reads a fixed 8-byte little-endian value (digest roots and
// bucket hashes: random 64-bit values that varint encoding would only
// inflate).
func (d *binDecoder) u64() uint64 {
	if d.err != nil {
		return 0
	}
	if len(d.buf) < 8 {
		d.fail("truncated u64")
		return 0
	}
	v := binary.LittleEndian.Uint64(d.buf)
	d.buf = d.buf[8:]
	return v
}

func (d *binDecoder) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf)
	if n <= 0 {
		d.fail("bad varint")
		return 0
	}
	d.buf = d.buf[n:]
	return v
}

// count reads an element count and validates it against the bytes
// actually remaining (each element occupies at least minBytes), so a
// hostile count cannot force a large allocation.
func (d *binDecoder) count(minBytes int) int {
	v := d.uvarint()
	if d.err != nil {
		return 0
	}
	if v > uint64(len(d.buf)/minBytes) {
		d.fail("count %d exceeds remaining payload", v)
		return 0
	}
	return int(v)
}

// string reads a length-prefixed identifier. IDs are UTF-8 text by
// protocol (the JSON codec could not represent anything else
// faithfully), so invalid bytes are a decode error.
func (d *binDecoder) string() string {
	n := d.count(1)
	if d.err != nil {
		return ""
	}
	if !utf8.Valid(d.buf[:n]) {
		d.fail("identifier is not valid UTF-8")
		return ""
	}
	s := string(d.buf[:n])
	d.buf = d.buf[n:]
	return s
}

// members reads a uvarint-counted member-record list. Every record
// needs at least 4 bytes (two empty strings, an incarnation, a state
// byte), bounding the count before allocating.
func (d *binDecoder) members() []broker.MemberInfo {
	n := d.count(4)
	if d.err != nil {
		return nil
	}
	ms := make([]broker.MemberInfo, n)
	for i := range ms {
		ms[i].ID = d.string()
		ms[i].Addr = d.string()
		ms[i].Incarnation = d.uvarint()
		ms[i].State = d.byte()
	}
	return ms
}

func (d *binDecoder) subscription() subscription.Subscription {
	n := d.count(2)
	if d.err != nil || n == 0 {
		return subscription.Subscription{}
	}
	bounds := make([]interval.Interval, n)
	for i := range bounds {
		bounds[i].Lo = d.varint()
		bounds[i].Hi = d.varint()
	}
	if d.err != nil {
		return subscription.Subscription{}
	}
	return subscription.Subscription{Bounds: bounds}
}

func (d *binDecoder) publication() subscription.Publication {
	n := d.count(1)
	if d.err != nil || n == 0 {
		return subscription.Publication{}
	}
	values := make([]int64, n)
	for i := range values {
		values[i] = d.varint()
	}
	if d.err != nil {
		return subscription.Publication{}
	}
	return subscription.Publication{Values: values}
}
