package pubsub

import (
	"context"
	"fmt"
	"sync"

	"probsum/internal/broker"
	"probsum/internal/obs"
	"probsum/internal/simnet"
	"probsum/internal/store"
)

// SimTransport hosts the overlay on the deterministic in-process
// simulator: every client operation enqueues its message and runs the
// network to quiescence before returning, so a run is a pure function
// of its inputs — the paper's evaluation regime. Notifications are
// pushed onto each client's channel as part of the operation that
// produced them.
//
// SimTransport methods are safe for concurrent use (a single mutex
// serializes the simulator), but determinism of course only holds for
// a deterministic caller.
type SimTransport struct {
	policy store.Policy
	cfg    Config

	mu       sync.Mutex
	net      *simnet.Network
	brokers  map[string]*Broker
	clients  map[string]*simClient
	shutdown bool
}

// NewSimTransport creates an empty simulated overlay with the given
// coverage policy and tuning; AddBroker applies exactly the options
// Network.AddBroker does, so sim transports and Networks built from
// the same Config make identical coverage decisions.
func NewSimTransport(policy Policy, cfg Config) (*SimTransport, error) {
	sp, err := policy.toStore()
	if err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	var opts []simnet.Option
	if cfg.DropRate > 0 || cfg.DupRate > 0 {
		opts = append(opts, simnet.WithFailures(cfg.DropRate, cfg.DupRate, cfg.Seed^0xfa11))
	}
	return &SimTransport{
		policy:  sp,
		cfg:     cfg,
		net:     simnet.New(opts...),
		brokers: make(map[string]*Broker),
		clients: make(map[string]*simClient),
	}, nil
}

var _ Transport = (*SimTransport)(nil)

// AddBroker creates a broker node.
func (t *SimTransport) AddBroker(id string) (*Broker, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	opts := []broker.Option{
		broker.WithSeed(t.cfg.Seed),
		broker.WithTableOptions(t.cfg.TableOptions()...),
	}
	if err := t.net.AddBroker(id, t.policy, opts...); err != nil {
		return nil, err
	}
	b := &Broker{id: id, impl: simBroker{b: t.net.Broker(id)}}
	t.brokers[id] = b
	return b, nil
}

// Broker returns a previously added broker.
func (t *SimTransport) Broker(id string) (*Broker, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	b, ok := t.brokers[id]
	return b, ok
}

// Brokers lists broker IDs, sorted.
func (t *SimTransport) Brokers() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.net.BrokerIDs()
}

// Connect links two brokers bidirectionally.
func (t *SimTransport) Connect(a, b string) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.net.Connect(a, b)
}

// Open attaches a client endpoint to a broker. Simulated clients are
// persistent: opening an already used name is an error.
func (t *SimTransport) Open(ctx context.Context, clientName, brokerID string) (*Client, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.shutdown {
		return nil, fmt.Errorf("pubsub: transport is shut down")
	}
	if err := t.net.AttachClient(clientName, brokerID); err != nil {
		return nil, err
	}
	sc := &simClient{t: t, name: clientName}
	c := &Client{name: clientName, impl: sc, q: newNotifyQueue()}
	sc.c = c
	t.clients[clientName] = sc
	return c, nil
}

// Settle is immediate: every simulated operation already ran the
// network to quiescence.
func (t *SimTransport) Settle(ctx context.Context) error { return ctx.Err() }

// Dropped reports how many broker-to-broker messages failure injection
// discarded.
func (t *SimTransport) Dropped() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.net.Dropped()
}

// Shutdown closes every client stream. The simulated network has no
// goroutines to stop.
func (t *SimTransport) Shutdown(ctx context.Context) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.shutdown = true
	for _, sc := range t.clients {
		sc.c.q.finish()
	}
	return ctx.Err()
}

// simBroker adapts a simulator broker to brokerImpl.
type simBroker struct{ b *broker.Broker }

func (s simBroker) addr() string     { return "" }
func (s simBroker) metrics() Metrics { return s.b.Metrics() }
func (s simBroker) connectPeer(id, addr string) error {
	return fmt.Errorf("pubsub: sim brokers peer via Transport.Connect, not ConnectPeer")
}
func (s simBroker) dialPeer(id, addr string) (bool, error) { return false, s.connectPeer(id, addr) }
func (s simBroker) shutdown(ctx context.Context) error     { return ctx.Err() }
func (s simBroker) core() *broker.Broker                   { return s.b }

// Simulated brokers have no wire ports: the cluster layer drives
// simulated overlays through its own simnet adapter (see
// pubsub/cluster), not through these hooks.
func (s simBroker) sendPeer(id string, msg broker.Message) bool { return false }
func (s simBroker) setPeerHooks(up, down func(peer string))     {}
func (s simBroker) setControlHandler(h broker.ControlHandler)   { s.b.SetControlHandler(h) }
func (s simBroker) peerCluster(id string) uint8                 { return 0 }
func (s simBroker) peerWireCodec(id string) WireCodec           { return CodecBinary3 }
func (s simBroker) journalRef() *BrokerJournal                  { return nil }
func (s simBroker) recoveryStats() (RecoveryStats, bool)        { return RecoveryStats{}, false }
func (s simBroker) observability() *obs.Registry                { return nil }

// simClient adapts a simulator client port to clientImpl.
type simClient struct {
	t        *SimTransport
	c        *Client
	name     string
	consumed int // prefix of simnet.Delivered already pushed to the queue
}

// send enqueues the message, runs the network to quiescence, and
// pushes the resulting deliveries (for every client) onto the
// notification channels.
func (sc *simClient) send(ctx context.Context, msg broker.Message) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	t := sc.t
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.shutdown {
		return fmt.Errorf("pubsub: transport is shut down")
	}
	var err error
	switch msg.Kind {
	case broker.MsgSubscribe:
		err = t.net.ClientSubscribe(sc.name, msg.SubID, msg.Sub)
	case broker.MsgUnsubscribe:
		err = t.net.ClientUnsubscribe(sc.name, msg.SubID)
	case broker.MsgPublish:
		err = t.net.ClientPublish(sc.name, msg.PubID, msg.Pub)
	case broker.MsgSubscribeBatch:
		err = t.net.ClientSubscribeBatch(sc.name, msg.Subs)
	case broker.MsgUnsubscribeBatch:
		err = t.net.ClientUnsubscribeBatch(sc.name, msg.SubIDs)
	case broker.MsgPublishBatch:
		err = t.net.ClientPublishBatch(sc.name, msg.Pubs)
	default:
		err = fmt.Errorf("pubsub: unsupported client message kind %v", msg.Kind)
	}
	if err != nil {
		return err
	}
	if _, err := t.net.Run(); err != nil {
		return err
	}
	t.drainLocked()
	return nil
}

func (sc *simClient) close() error { return nil }

// drainLocked pushes every not-yet-consumed delivery onto its client's
// notification queue. Caller holds t.mu.
func (t *SimTransport) drainLocked() {
	for _, sc := range t.clients {
		msgs := t.net.Delivered(sc.name)
		for _, m := range msgs[sc.consumed:] {
			if m.Kind == broker.MsgNotify {
				sc.c.q.push(Notification{SubID: m.SubID, PubID: m.PubID, Pub: m.Pub})
			}
		}
		sc.consumed = len(msgs)
	}
}
