package pubsub

// ClientStats measures end-to-end publish-to-notify latency from the
// client's side of the wire, using the same histogram code as the
// broker registry: attach one ClientStats to a publishing client and
// a subscribing client (often the same process), and every delivery
// whose publication ID was marked at publish time lands in the
// histogram. This is how `psclient -stats` and paperbench's
// publish_notify entries measure latency without any broker-side
// cooperation.

import (
	"sync"
	"time"

	"probsum/internal/obs"
)

// ClientStats correlates publish timestamps with notify arrivals.
// Safe for concurrent use; one instance may be shared across multiple
// clients (publisher and subscriber ends).
type ClientStats struct {
	clock   func() time.Time
	hist    *obs.Histogram
	keepRaw bool

	mu sync.Mutex
	// +guarded_by:mu
	pending map[string]time.Time
	// +guarded_by:mu
	raw []time.Duration
}

// ClientStatsOption configures NewClientStats.
type ClientStatsOption func(*ClientStats)

// WithStatsClock injects the clock (default time.Now) — harnesses
// with simulated time pass their own.
func WithStatsClock(clock func() time.Time) ClientStatsOption {
	return func(cs *ClientStats) { cs.clock = clock }
}

// WithRawSamples keeps every measured latency, so callers needing
// exact percentiles (paperbench's gated entries) are not limited to
// the histogram's log2 resolution. Memory grows with sample count.
func WithRawSamples() ClientStatsOption {
	return func(cs *ClientStats) { cs.keepRaw = true }
}

// NewClientStats returns an empty latency collector.
func NewClientStats(opts ...ClientStatsOption) *ClientStats {
	cs := &ClientStats{
		clock:   time.Now,
		hist:    obs.NewHistogram(),
		pending: make(map[string]time.Time),
	}
	for _, opt := range opts {
		opt(cs)
	}
	return cs
}

// markPublished stamps a publication's departure. Called by
// Client.Publish/PublishBatch on clients this ClientStats is attached
// to; harnesses driving raw messages may call MarkPublished directly.
func (cs *ClientStats) markPublished(pubID string) {
	now := cs.clock()
	cs.mu.Lock()
	cs.pending[pubID] = now
	cs.mu.Unlock()
}

// MarkPublished is the exported form of markPublished for harnesses
// that publish outside an attached Client.
func (cs *ClientStats) MarkPublished(pubID string) { cs.markPublished(pubID) }

// observeDelivery resolves one notify arrival against its publish
// stamp. Unknown IDs (published elsewhere, or already resolved — the
// first matching delivery wins) are ignored.
func (cs *ClientStats) observeDelivery(pubID string) {
	now := cs.clock()
	cs.mu.Lock()
	t0, ok := cs.pending[pubID]
	if ok {
		delete(cs.pending, pubID)
	}
	if ok && cs.keepRaw {
		cs.raw = append(cs.raw, now.Sub(t0))
	}
	cs.mu.Unlock()
	if ok {
		cs.hist.Observe(now.Sub(t0))
	}
}

// MarkDelivered is the exported form of observeDelivery for
// harnesses that consume deliveries outside an attached Client.
func (cs *ClientStats) MarkDelivered(pubID string) { cs.observeDelivery(pubID) }

// Snapshot returns the latency histogram so far.
func (cs *ClientStats) Snapshot() obs.HistSnapshot { return cs.hist.Snapshot() }

// RawSamples returns a copy of the kept samples (WithRawSamples).
func (cs *ClientStats) RawSamples() []time.Duration {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	out := make([]time.Duration, len(cs.raw))
	copy(out, cs.raw)
	return out
}

// Pending reports publications still awaiting their first delivery.
func (cs *ClientStats) Pending() int {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	return len(cs.pending)
}

// SetStats attaches a latency collector to this client: subsequent
// Publish/PublishBatch calls stamp departure times and every
// delivered notification is matched against them. Pass nil to detach.
// Attach the SAME ClientStats to the publishing and the subscribing
// client to measure end-to-end publish-to-notify latency.
func (c *Client) SetStats(cs *ClientStats) {
	c.statsMu.Lock()
	c.stats = cs
	c.statsMu.Unlock()
	c.q.setStats(cs)
}

func (c *Client) clientStats() *ClientStats {
	c.statsMu.Lock()
	defer c.statsMu.Unlock()
	return c.stats
}
