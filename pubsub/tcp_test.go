package pubsub

import (
	"context"
	"fmt"
	"testing"
	"time"

	"probsum/internal/interval"
	"probsum/internal/subscription"
)

func box(lo1, hi1, lo2, hi2 int64) Subscription {
	return subscription.New(interval.New(lo1, hi1), interval.New(lo2, hi2))
}

// testCtx returns a context that fails the test run long before the go
// test timeout would.
func testCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	t.Cleanup(cancel)
	return ctx
}

func listenTestBroker(t *testing.T, id string, policy Policy, opts ...TCPOption) *Broker {
	t.Helper()
	b, err := ListenBroker(id, "127.0.0.1:0", policy, Config{
		ErrorProbability: 1e-9,
		MaxTrials:        10_000,
		Seed:             3,
	}, opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		b.Shutdown(ctx)
	})
	return b
}

func dialTest(t *testing.T, addr, name string) *Client {
	t.Helper()
	c, err := Dial(testCtx(t), addr, name)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// recvOne reads one notification with a deadline.
func recvOne(t *testing.T, c *Client, d time.Duration) (Notification, bool) {
	t.Helper()
	select {
	case n, ok := <-c.Notifications():
		if !ok {
			t.Fatal("notification channel closed")
		}
		return n, true
	case <-time.After(d):
		return Notification{}, false
	}
}

// waitMetric polls until cond on the broker metrics holds.
func waitMetric(t *testing.T, b *Broker, d time.Duration, cond func(Metrics) bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond(b.Metrics()) {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("metrics condition not reached: %+v", b.Metrics())
}

func TestTCPSingleBrokerLoopback(t *testing.T) {
	b := listenTestBroker(t, "B1", Pairwise)
	ctx := testCtx(t)
	sub := dialTest(t, b.Addr(), "alice")
	pub := dialTest(t, b.Addr(), "bob")

	if err := sub.Subscribe(ctx, "s1", box(0, 50, 0, 50)); err != nil {
		t.Fatal(err)
	}
	waitMetric(t, b, 2*time.Second, func(m Metrics) bool { return m.SubsReceived == 1 })
	if err := pub.Publish(ctx, "p1", subscription.NewPublication(25, 25)); err != nil {
		t.Fatal(err)
	}
	n, ok := recvOne(t, sub, 2*time.Second)
	if !ok {
		t.Fatal("notification did not arrive")
	}
	if n.SubID != "s1" || n.PubID != "p1" {
		t.Fatalf("notification = %+v", n)
	}
}

func TestTCPTwoBrokerOverlay(t *testing.T) {
	b1 := listenTestBroker(t, "B1", Pairwise)
	b2 := listenTestBroker(t, "B2", Pairwise)
	// Bidirectional overlay link: each side dials the other.
	if err := b1.ConnectPeer("B2", b2.Addr()); err != nil {
		t.Fatal(err)
	}
	if err := b2.ConnectPeer("B1", b1.Addr()); err != nil {
		t.Fatal(err)
	}
	ctx := testCtx(t)
	sub := dialTest(t, b1.Addr(), "alice")
	pub := dialTest(t, b2.Addr(), "bob")

	if err := sub.Subscribe(ctx, "s1", box(10, 20, 10, 20)); err != nil {
		t.Fatal(err)
	}
	waitMetric(t, b2, 2*time.Second, func(m Metrics) bool { return m.SubsReceived == 1 })
	if err := pub.Publish(ctx, "p1", subscription.NewPublication(15, 15)); err != nil {
		t.Fatal(err)
	}
	if _, ok := recvOne(t, sub, 2*time.Second); !ok {
		t.Fatal("cross-broker notification did not arrive")
	}

	// Unsubscribe and verify silence.
	if err := sub.Unsubscribe(ctx, "s1"); err != nil {
		t.Fatal(err)
	}
	waitMetric(t, b1, 2*time.Second, func(m Metrics) bool { return m.UnsubsForwarded == 1 })
	if err := pub.Publish(ctx, "p2", subscription.NewPublication(15, 15)); err != nil {
		t.Fatal(err)
	}
	if n, ok := recvOne(t, sub, 300*time.Millisecond); ok {
		t.Fatalf("unexpected delivery after unsubscribe: %+v", n)
	}
}

func TestTCPCoverageSuppression(t *testing.T) {
	b1 := listenTestBroker(t, "B1", Pairwise)
	b2 := listenTestBroker(t, "B2", Pairwise)
	if err := b1.ConnectPeer("B2", b2.Addr()); err != nil {
		t.Fatal(err)
	}
	if err := b2.ConnectPeer("B1", b1.Addr()); err != nil {
		t.Fatal(err)
	}
	ctx := testCtx(t)
	sub := dialTest(t, b1.Addr(), "alice")

	if err := sub.Subscribe(ctx, "big", box(0, 100, 0, 100)); err != nil {
		t.Fatal(err)
	}
	if err := sub.Subscribe(ctx, "small", box(40, 60, 40, 60)); err != nil {
		t.Fatal(err)
	}
	waitMetric(t, b1, 2*time.Second, func(m Metrics) bool {
		return m.SubsSuppressed >= 1 && m.SubsForwarded == 1
	})
}

func TestTCPDialErrors(t *testing.T) {
	if _, err := Dial(testCtx(t), "127.0.0.1:1", "x"); err == nil {
		t.Error("dial to closed port succeeded")
	}
	b := listenTestBroker(t, "B1", Flood)
	if err := b.ConnectPeer("ghost", "127.0.0.1:1"); err == nil {
		t.Error("peer dial to closed port succeeded")
	}
}

// TestTCPPeerDisconnectMidPublish drives publications through an
// overlay while the downstream peer dies mid-stream: the surviving
// broker must keep serving its local subscriber, dropping frames for
// the vanished peer without stalling or erroring the publisher path.
func TestTCPPeerDisconnectMidPublish(t *testing.T) {
	b1 := listenTestBroker(t, "B1", Pairwise)
	b2 := listenTestBroker(t, "B2", Pairwise)
	if err := b1.ConnectPeer("B2", b2.Addr()); err != nil {
		t.Fatal(err)
	}
	if err := b2.ConnectPeer("B1", b1.Addr()); err != nil {
		t.Fatal(err)
	}
	ctx := testCtx(t)
	local := dialTest(t, b1.Addr(), "local")   // subscriber at B1
	remote := dialTest(t, b2.Addr(), "remote") // subscriber at B2
	pub := dialTest(t, b1.Addr(), "pub")       // publisher at B1

	s := box(0, 100, 0, 100)
	if err := local.Subscribe(ctx, "sl", s); err != nil {
		t.Fatal(err)
	}
	if err := remote.Subscribe(ctx, "sr", s); err != nil {
		t.Fatal(err)
	}
	waitMetric(t, b1, 2*time.Second, func(m Metrics) bool { return m.SubsReceived == 2 })

	const total = 50
	for i := 0; i < total; i++ {
		if i == total/2 {
			// Kill B2 abruptly mid-burst (expired context = hard close).
			done, cancel := context.WithCancel(context.Background())
			cancel()
			b2.Shutdown(done)
		}
		if err := pub.Publish(ctx, fmt.Sprintf("p%d", i), subscription.NewPublication(50, 50)); err != nil {
			t.Fatal(err)
		}
	}
	// The local subscriber receives every publication despite the dead
	// peer link.
	for i := 0; i < total; i++ {
		if _, ok := recvOne(t, local, 2*time.Second); !ok {
			t.Fatalf("local notification %d did not arrive after peer death", i)
		}
	}
	waitMetric(t, b1, 2*time.Second, func(m Metrics) bool { return m.PubsReceived == total })
}

// TestTCPClientReconnect closes a subscriber's connection and redials
// under the same name: the broker keeps the subscription state, the
// new connection takes over the delivery stream.
func TestTCPClientReconnect(t *testing.T) {
	b := listenTestBroker(t, "B1", Pairwise)
	ctx := testCtx(t)
	sub := dialTest(t, b.Addr(), "alice")
	pub := dialTest(t, b.Addr(), "bob")

	if err := sub.Subscribe(ctx, "s1", box(0, 50, 0, 50)); err != nil {
		t.Fatal(err)
	}
	waitMetric(t, b, 2*time.Second, func(m Metrics) bool { return m.SubsReceived == 1 })
	if err := pub.Publish(ctx, "p1", subscription.NewPublication(10, 10)); err != nil {
		t.Fatal(err)
	}
	if _, ok := recvOne(t, sub, 2*time.Second); !ok {
		t.Fatal("pre-reconnect notification did not arrive")
	}

	// Drop the connection; the broker-side port dies, the subscription
	// survives.
	if err := sub.Close(); err != nil {
		t.Fatal(err)
	}
	sub2 := dialTest(t, b.Addr(), "alice")
	// Wait for the server to have registered the replacement port: a
	// publish delivered to the new connection proves it.
	deadline := time.Now().Add(5 * time.Second)
	got := false
	for i := 0; !got; i++ {
		if time.Now().After(deadline) {
			t.Fatal("no delivery on reconnected client")
		}
		if err := pub.Publish(ctx, fmt.Sprintf("r%d", i), subscription.NewPublication(20, 20)); err != nil {
			t.Fatal(err)
		}
		_, got = recvOne(t, sub2, 500*time.Millisecond)
	}
}

// TestTCPShutdownDrainsInFlight queues a burst of matched
// notifications and shuts the broker down: every notification the
// broker accepted (counted in its metrics) must still reach the
// subscriber before its channel closes.
func TestTCPShutdownDrainsInFlight(t *testing.T) {
	b := listenTestBroker(t, "B1", Pairwise)
	ctx := testCtx(t)
	sub := dialTest(t, b.Addr(), "alice")
	pub := dialTest(t, b.Addr(), "bob")

	if err := sub.Subscribe(ctx, "s1", box(0, 100, 0, 100)); err != nil {
		t.Fatal(err)
	}
	waitMetric(t, b, 2*time.Second, func(m Metrics) bool { return m.SubsReceived == 1 })

	const total = 100
	for i := 0; i < total; i++ {
		if err := pub.Publish(ctx, fmt.Sprintf("p%d", i), subscription.NewPublication(50, 50)); err != nil {
			t.Fatal(err)
		}
	}
	// Wait until the broker has matched the whole burst, then shut
	// down while (some of) the notifications are still queued on the
	// subscriber's writer.
	waitMetric(t, b, 5*time.Second, func(m Metrics) bool { return m.Notifications == total })
	sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := b.Shutdown(sctx); err != nil {
		t.Fatalf("graceful shutdown: %v", err)
	}
	// The channel must deliver all 100 and then close (connection gone).
	got := 0
	for range sub.Notifications() {
		got++
	}
	if got != total {
		t.Fatalf("drained %d notifications, want %d", got, total)
	}
}

// TestTCPServeHardShutdown exercises the drain-timeout path: a
// subscriber that never reads eventually fills its queue; shutdown
// with an expired context must still terminate promptly.
func TestTCPServeHardShutdown(t *testing.T) {
	b := listenTestBroker(t, "B1", Pairwise, WithSendQueue(4))
	ctx := testCtx(t)
	sub := dialTest(t, b.Addr(), "alice")
	pub := dialTest(t, b.Addr(), "bob")
	_ = sub

	if err := sub.Subscribe(ctx, "s1", box(0, 100, 0, 100)); err != nil {
		t.Fatal(err)
	}
	waitMetric(t, b, 2*time.Second, func(m Metrics) bool { return m.SubsReceived == 1 })
	for i := 0; i < 64; i++ {
		if err := pub.Publish(ctx, fmt.Sprintf("p%d", i), subscription.NewPublication(50, 50)); err != nil {
			t.Fatal(err)
		}
	}
	done, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	b.Shutdown(done) // returns ctx error; termination is what matters
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("hard shutdown took %v", elapsed)
	}
}
