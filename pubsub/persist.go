package pubsub

// Durability bridge: implements the broker's Journal hook over
// internal/persist and replays stored state back into a fresh broker.
//
// Record grammar (one persist record = one durability event; the
// payload reuses the binary wire codec for message bodies, so the
// fuzz-hardened decoder is the only parser):
//
//	attach : kind=1 | flags byte (bit0 = client) | port string
//	message: kind=2 | from string | binary message payload
//	pubids : kind=3 | uvarint n | n strings
//	members: kind=4 | uvarint n | n × (id, addr, uvarint incarnation, state byte)
//
// A snapshot is the same records concatenated, each prefixed with a
// uvarint length — the compacted operation list of
// Broker.SnapshotTo, written atomically by the store. Recovery
// replays the snapshot, then the journal tail, through the exact
// code paths live traffic uses (ConnectNeighbor / AttachClient /
// Handle), with outputs discarded: a restarted broker rebuilds its
// reverse paths, coverage tables, received sets, and dedup window
// without announcing anything, and the link-digest reconciliation
// protocol squares whatever diverged from its peers while it was
// down.

import (
	"encoding/binary"
	"fmt"
	"sync"

	"probsum/internal/broker"
	"probsum/internal/persist"
)

// Record kind bytes of the durability log.
const (
	recAttach  = 1
	recMessage = 2
	recPubIDs  = 3
	recMembers = 4
)

// encodeAttachRecord builds an attach record.
func encodeAttachRecord(port string, client bool) []byte {
	var flags byte
	if client {
		flags = 1
	}
	buf := []byte{recAttach, flags}
	return appendString(buf, port)
}

// encodeMessageRecord builds a message record; nil on unencodable
// kinds (only state-changing kinds are journaled, all encodable).
func encodeMessageRecord(from string, msg *broker.Message) []byte {
	buf := []byte{recMessage}
	buf = appendString(buf, from)
	buf, err := appendBinaryMessage(buf, msg)
	if err != nil {
		return nil
	}
	return buf
}

// encodePubIDsRecord builds a publication-ID record.
func encodePubIDsRecord(pubIDs []string) []byte {
	buf := []byte{recPubIDs}
	buf = binary.AppendUvarint(buf, uint64(len(pubIDs)))
	for _, id := range pubIDs {
		buf = appendString(buf, id)
	}
	return buf
}

// encodeMembersRecord builds a membership record (the member-list
// payload reuses the wire codec's encoding, so the fuzz-hardened
// decoder is the only parser). Nil for an empty list.
func encodeMembersRecord(ms []broker.MemberInfo) []byte {
	if len(ms) == 0 {
		return nil
	}
	return appendMembers([]byte{recMembers}, ms)
}

// decodeMembersRecord parses a membership record payload (including
// its kind byte).
func decodeMembersRecord(payload []byte) ([]broker.MemberInfo, error) {
	d := binDecoder{buf: payload[1:]}
	ms := d.members()
	if d.err != nil {
		return nil, d.err
	}
	if len(d.buf) != 0 {
		return nil, fmt.Errorf("pubsub: %d trailing bytes after members record", len(d.buf))
	}
	if len(ms) == 0 {
		return nil, fmt.Errorf("pubsub: empty members record")
	}
	return ms, nil
}

// encodeSnapshotOp renders one compacted snapshot operation as a
// record payload.
func encodeSnapshotOp(op *broker.SnapshotOp) []byte {
	switch {
	case op.Attach:
		return encodeAttachRecord(op.Port, op.Client)
	case op.Msg != nil:
		return encodeMessageRecord(op.From, op.Msg)
	default:
		return encodePubIDsRecord(op.PubIDs)
	}
}

// encodeSnapshot renders the full operation list as one blob of
// length-prefixed records.
func encodeSnapshot(ops []broker.SnapshotOp) []byte {
	var blob []byte
	for i := range ops {
		rec := encodeSnapshotOp(&ops[i])
		if rec == nil {
			continue
		}
		blob = binary.AppendUvarint(blob, uint64(len(rec)))
		blob = append(blob, rec...)
	}
	return blob
}

// applyRecord replays one record payload into a broker. Outputs are
// discarded: recovery rebuilds state, it does not re-announce.
func applyRecord(b *broker.Broker, payload []byte) error {
	if len(payload) == 0 {
		return fmt.Errorf("pubsub: empty durability record")
	}
	switch payload[0] {
	case recAttach:
		d := binDecoder{buf: payload[1:]}
		flags := d.byte()
		port := d.string()
		if d.err != nil {
			return d.err
		}
		if len(d.buf) != 0 {
			return fmt.Errorf("pubsub: %d trailing bytes after attach record", len(d.buf))
		}
		if port == "" {
			return fmt.Errorf("pubsub: attach record with empty port")
		}
		if flags&1 != 0 {
			b.AttachClient(port)
			return nil
		}
		return b.ConnectNeighbor(port)
	case recMessage:
		d := binDecoder{buf: payload[1:]}
		from := d.string()
		if d.err != nil {
			return d.err
		}
		msg, err := decodeBinaryMessage(d.buf)
		if err != nil {
			return err
		}
		_, err = b.Handle(from, *msg)
		return err
	case recPubIDs:
		d := binDecoder{buf: payload[1:]}
		n := d.count(1)
		if d.err != nil {
			return d.err
		}
		ids := make([]string, 0, n)
		for i := 0; i < n; i++ {
			ids = append(ids, d.string())
		}
		if d.err != nil {
			return d.err
		}
		b.MarkPubsSeen(ids)
		return nil
	case recMembers:
		// Membership belongs to the cluster layer, not the broker;
		// recovery collects the decoded list into RecoveryStats (see
		// RecoverBroker) and the record is otherwise a validated no-op
		// here, so FuzzLogReplay and foreign callers treat it as any
		// other record.
		_, err := decodeMembersRecord(payload)
		return err
	default:
		return fmt.Errorf("pubsub: unknown durability record kind %d", payload[0])
	}
}

// BrokerJournal implements broker.Journal over a persist.Store:
// every state-changing arrival is appended as one record, fsynced in
// batches, and compacted away by periodic snapshots. Per the Journal
// contract I/O errors are swallowed (routing never fails because a
// disk write did); the first one is retained for Err.
type BrokerJournal struct {
	b     *broker.Broker
	store persist.Store

	mu sync.Mutex
	// +guarded_by:mu
	unsynced int
	// +guarded_by:mu
	err error
	// memberSource, when set, supplies the current cluster member list
	// for snapshots, so compaction preserves the latest membership
	// record alongside the broker's routing state.
	// +guarded_by:mu
	memberSource func() []broker.MemberInfo

	// SyncEvery is the fsync batch size: the journal syncs after
	// every n-th record (1 = sync every record; the constructor
	// default is 64). A crash loses at most the unsynced tail —
	// exactly what the digest reconciliation protocol repairs.
	syncEvery int
}

// NewBrokerJournal wraps a store as the durability journal for b.
// Call AFTER RecoverBroker (so replayed operations are not
// re-recorded) and attach with b.SetJournal. syncEvery <= 0 selects
// the default batch of 64.
func NewBrokerJournal(b *broker.Broker, st persist.Store, syncEvery int) *BrokerJournal {
	if syncEvery <= 0 {
		syncEvery = 64
	}
	return &BrokerJournal{b: b, store: st, syncEvery: syncEvery}
}

// append writes one record and applies the fsync batching policy.
// Safe for concurrent use; called under the broker's locks, so it
// must never call back into the broker.
func (j *BrokerJournal) append(rec []byte) {
	if rec == nil {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.store.Append(rec); err != nil {
		if j.err == nil {
			j.err = err
		}
		return
	}
	j.unsynced++
	if j.unsynced >= j.syncEvery {
		if err := j.store.Sync(); err != nil && j.err == nil {
			j.err = err
		}
		j.unsynced = 0
	}
}

// RecordAttach implements broker.Journal.
func (j *BrokerJournal) RecordAttach(port string, client bool) {
	j.append(encodeAttachRecord(port, client))
}

// RecordMessage implements broker.Journal.
func (j *BrokerJournal) RecordMessage(from string, msg *broker.Message) {
	j.append(encodeMessageRecord(from, msg))
}

// RecordPubSeen implements broker.Journal.
func (j *BrokerJournal) RecordPubSeen(pubID string) {
	j.append(encodePubIDsRecord([]string{pubID}))
}

// RecordMembers appends the cluster member list as one membership
// record; later records supersede earlier ones on recovery. Called by
// the cluster layer on membership changes (debounced by its ticker).
func (j *BrokerJournal) RecordMembers(ms []broker.MemberInfo) {
	j.append(encodeMembersRecord(ms))
}

// SetMemberSource registers the function snapshots call to capture
// the current member list (cluster.Attach passes Node.WireMembers).
// The source is invoked under the journal lock and the broker's
// snapshot freeze, so it must not call back into the journal or the
// broker.
func (j *BrokerJournal) SetMemberSource(src func() []broker.MemberInfo) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.memberSource = src
}

// Sync forces the journal tail to stable storage now, regardless of
// the batching policy.
func (j *BrokerJournal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.unsynced = 0
	if err := j.store.Sync(); err != nil {
		if j.err == nil {
			j.err = err
		}
		return err
	}
	return nil
}

// Snapshot freezes the broker, writes its compacted state as the new
// snapshot, and resets the journal — the log-compaction step. The
// broker's exclusive lock is held across the store write, so no
// record can race into the discarded journal generation.
func (j *BrokerJournal) Snapshot() error {
	return j.b.SnapshotTo(func(ops []broker.SnapshotOp) error {
		j.mu.Lock()
		defer j.mu.Unlock()
		blob := encodeSnapshot(ops)
		if j.memberSource != nil {
			if rec := encodeMembersRecord(j.memberSource()); rec != nil {
				blob = binary.AppendUvarint(blob, uint64(len(rec)))
				blob = append(blob, rec...)
			}
		}
		if err := j.store.WriteSnapshot(blob); err != nil {
			if j.err == nil {
				j.err = err
			}
			return err
		}
		j.unsynced = 0
		return nil
	})
}

// Err returns the first I/O error the journal swallowed (nil when
// none): the observable signal that durability is degraded.
func (j *BrokerJournal) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// RecoveryStats summarizes a RecoverBroker run.
type RecoveryStats struct {
	// SnapshotOps is the number of operations replayed from the
	// snapshot (0 when none existed).
	SnapshotOps int
	// JournalRecords is the number of journal records replayed.
	JournalRecords int
	// Skipped counts records that failed to decode or apply and were
	// skipped (state divergence left for digest reconciliation).
	Skipped int
	// Truncated reports whether a torn journal tail was discarded.
	Truncated bool
	// DroppedBytes is the size of the discarded tail.
	DroppedBytes int64
	// Subscriptions, Clients, Neighbors describe the recovered
	// routing state.
	Subscriptions int
	Clients       int
	Neighbors     int
	// Members is the last membership record found in the log (nil when
	// none): the cluster view persisted before the crash. cluster.Attach
	// adopts it so a cold restart rejoins the overlay without a seed
	// node.
	Members []broker.MemberInfo
}

// RecoverBroker replays a store's snapshot and journal into a fresh
// broker, rebuilding its pre-crash routing state without announcing
// anything. Individual records that fail to apply are skipped and
// counted, not fatal: the digest reconciliation protocol repairs the
// resulting divergence, and a recovered-but-imperfect broker beats a
// dead one. Only a corrupt snapshot blob aborts (it passed its CRC,
// so failure means a foreign or incompatible file). Attach the
// journal (SetJournal) only after this returns.
func RecoverBroker(b *broker.Broker, st persist.Store) (RecoveryStats, error) {
	var stats RecoveryStats
	blob, ok, err := st.LoadSnapshot()
	if err != nil {
		return stats, err
	}
	if ok {
		for len(blob) > 0 {
			n, w := binary.Uvarint(blob)
			if w <= 0 || n > uint64(len(blob)-w) {
				return stats, fmt.Errorf("pubsub: corrupt snapshot framing at op %d", stats.SnapshotOps)
			}
			rec := blob[w : w+int(n)]
			blob = blob[w+int(n):]
			if len(rec) > 0 && rec[0] == recMembers {
				ms, err := decodeMembersRecord(rec)
				if err != nil {
					stats.Skipped++
					continue
				}
				stats.Members = ms // last record wins
				stats.SnapshotOps++
				continue
			}
			if err := applyRecord(b, rec); err != nil {
				stats.Skipped++
				continue
			}
			stats.SnapshotOps++
		}
	}
	rstats, err := st.Replay(func(rec []byte) error {
		if len(rec) > 0 && rec[0] == recMembers {
			ms, err := decodeMembersRecord(rec)
			if err != nil {
				stats.Skipped++
				return nil
			}
			stats.Members = ms // last record wins
			stats.JournalRecords++
			return nil
		}
		if err := applyRecord(b, rec); err != nil {
			stats.Skipped++
			return nil
		}
		stats.JournalRecords++
		return nil
	})
	if err != nil {
		return stats, err
	}
	stats.Truncated = rstats.Truncated
	stats.DroppedBytes = rstats.DroppedBytes
	stats.Subscriptions = b.SubscriptionCount()
	stats.Clients, stats.Neighbors = b.PortCounts()
	return stats, nil
}

// SnapshotBroker writes a broker's compacted state as the store's
// snapshot without attaching a journal — the final flush of a
// graceful shutdown.
func SnapshotBroker(b *broker.Broker, st persist.Store) error {
	return b.SnapshotTo(func(ops []broker.SnapshotOp) error {
		return st.WriteSnapshot(encodeSnapshot(ops))
	})
}
