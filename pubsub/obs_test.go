package pubsub_test

// End-to-end observability: a two-broker TCP overlay must surface
// per-link frame counts by kind, nonzero publish-stage histograms,
// queue depths, and the route-table footprint through the registry —
// and the same traffic must land in an attached ClientStats as
// publish-to-notify latency.

import (
	"context"
	"strings"
	"testing"
	"time"

	"probsum/pubsub"
	"probsum/subsume"
)

func TestTCPObservabilityEndToEnd(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	tr, err := pubsub.NewTCPTransport(pubsub.Pairwise, pubsub.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Shutdown(context.Background())

	b1, err := tr.AddBroker("B1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.AddBroker("B2"); err != nil {
		t.Fatal(err)
	}
	if err := tr.Connect("B1", "B2"); err != nil {
		t.Fatal(err)
	}

	schema := subsume.NewSchema(
		subsume.Attr("x1", 0, 100),
		subsume.Attr("x2", 0, 100),
	)
	sub, err := tr.Open(ctx, "S", "B2")
	if err != nil {
		t.Fatal(err)
	}
	pub, err := tr.Open(ctx, "P", "B1")
	if err != nil {
		t.Fatal(err)
	}

	stats := pubsub.NewClientStats(pubsub.WithRawSamples())
	sub.SetStats(stats)
	pub.SetStats(stats)

	s := subsume.NewSubscription(schema).Range("x1", 0, 100).Range("x2", 0, 100).Build()
	if err := sub.Subscribe(ctx, "s1", s); err != nil {
		t.Fatal(err)
	}
	if err := tr.Settle(ctx); err != nil {
		t.Fatal(err)
	}
	const pubs = 20
	for i := 0; i < pubs; i++ {
		if err := pub.Publish(ctx, "p"+string(rune('a'+i)), subsume.NewPublication(50, 50)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.Settle(ctx); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < pubs; i++ {
		select {
		case <-sub.Notifications():
		case <-ctx.Done():
			t.Fatal("timed out waiting for notifications")
		}
	}

	// Client-side latency: every publication was delivered, so every
	// stamp must be resolved with a nonzero latency.
	if got := stats.Snapshot().Count; got != pubs {
		t.Errorf("client latency samples = %d, want %d", got, pubs)
	}
	if stats.Pending() != 0 {
		t.Errorf("pending publish stamps = %d, want 0", stats.Pending())
	}
	if raw := stats.RawSamples(); len(raw) != pubs {
		t.Errorf("raw samples = %d, want %d", len(raw), pubs)
	} else {
		for _, d := range raw {
			if d <= 0 {
				t.Errorf("non-positive latency sample %v", d)
			}
		}
	}

	reg := b1.Observability()
	if reg == nil {
		t.Fatal("TCP broker returned nil registry")
	}
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	// Core series the CI smoke also greps for: broker counters,
	// per-link frames by kind, stage histograms, queue depth, route
	// footprint.
	for _, want := range []string{
		"probsum_broker_pubs_received",
		`probsum_link_frames_sent_total{link="B2",kind="publish"}`,
		"probsum_publish_stage_match_ns_count",
		"probsum_publish_stage_route_ns_count",
		"probsum_publish_stage_enqueue_ns_count",
		"probsum_publish_stage_write_ns_count",
		"probsum_publish_stage_decode_ns_count",
		"probsum_send_queue_depth_total",
		"probsum_route_tables",
		"probsum_route_entries",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("scrape missing %q", want)
		}
	}
	if t.Failed() {
		t.Logf("scrape:\n%s", out)
	}

	j := reg.JSON()
	if j.Counters["broker_pubs_received"] < pubs {
		t.Errorf("broker_pubs_received = %d, want >= %d", j.Counters["broker_pubs_received"], pubs)
	}
	for _, h := range []string{"publish_stage_match_ns", "publish_stage_route_ns",
		"publish_stage_enqueue_ns", "publish_stage_write_ns", "publish_stage_decode_ns"} {
		if j.Histograms[h].Count == 0 {
			t.Errorf("histogram %s has zero observations", h)
		}
	}
	if link, ok := j.Links["B2"]; !ok || link.Sent["publish"] == 0 {
		t.Errorf("link B2 publish frames not counted: %+v", j.Links)
	}

	// The simulator transport carries no registry by design.
	sim, err := pubsub.NewSimTransport(pubsub.Pairwise, pubsub.Config{})
	if err != nil {
		t.Fatal(err)
	}
	sb1, err := sim.AddBroker("S1")
	if err != nil {
		t.Fatal(err)
	}
	if sb1.Observability() != nil {
		t.Error("sim broker should have nil registry")
	}
}

func TestClientStatsUnknownDeliveryIgnored(t *testing.T) {
	now := time.Unix(0, 0)
	cs := pubsub.NewClientStats(pubsub.WithStatsClock(func() time.Time {
		now = now.Add(time.Millisecond)
		return now
	}))
	cs.MarkPublished("p1")
	// Unknown ID: ignored. Known ID: observed once; repeat ignored.
	cs.MarkDelivered("nope")
	if got := cs.Snapshot().Count; got != 0 {
		t.Fatalf("unknown delivery counted: %d", got)
	}
	cs.MarkDelivered("p1")
	cs.MarkDelivered("p1")
	if got := cs.Snapshot().Count; got != 1 {
		t.Fatalf("samples = %d, want 1 (duplicate delivery must not re-count)", got)
	}
	if cs.Pending() != 0 {
		t.Fatalf("pending = %d, want 0", cs.Pending())
	}
}
