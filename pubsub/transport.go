package pubsub

// Transport abstraction: one public surface over the deterministic
// in-process simulator and the concurrent TCP broker stack, so the
// same program runs in-process (tests, examples, experiments) or over
// real sockets (deployment) by swapping the constructor.
//
//	tr, _ := pubsub.NewSimTransport(pubsub.Pairwise, pubsub.Config{})
//	// or: tr, _ = pubsub.NewTCPTransport(pubsub.Pairwise, pubsub.Config{})
//	tr.AddBroker("B1")
//	tr.AddBroker("B2")
//	tr.Connect("B1", "B2")
//	sub, _ := tr.Open(ctx, "alice", "B1")
//	pub, _ := tr.Open(ctx, "bob", "B2")
//	sub.Subscribe(ctx, "s1", s)
//	tr.Settle(ctx)
//	pub.Publish(ctx, "p1", p)
//	n := <-sub.Notifications()

import (
	"context"
	"fmt"
	"sync"

	"probsum/internal/broker"
	"probsum/internal/obs"
	"probsum/subsume"
)

// Transport hosts a broker overlay and connects clients to it. The two
// implementations are SimTransport (deterministic, in-process, the
// paper's evaluation harness) and TCPTransport (real sockets, one
// listener per broker, concurrent message handling). Both guarantee
// the same protocol semantics; they differ in timing: simnet runs
// every operation to quiescence before returning, TCP is asynchronous
// and needs Settle (or application-level acknowledgment) between
// causally dependent operations.
type Transport interface {
	// AddBroker creates a broker node under the transport's policy and
	// config.
	AddBroker(id string) (*Broker, error)
	// Broker returns a previously added broker.
	Broker(id string) (*Broker, bool)
	// Brokers lists broker IDs, sorted.
	Brokers() []string
	// Connect links two brokers bidirectionally.
	Connect(a, b string) error
	// Open attaches a client endpoint (unique name per transport) to a
	// broker and returns its handle.
	Open(ctx context.Context, clientName, brokerID string) (*Client, error)
	// Settle blocks until the overlay is quiescent: queued messages
	// processed and broker counters stable. On the simulator this is
	// immediate (operations already run to quiescence); on TCP it polls
	// the local brokers' metrics until they stop changing.
	Settle(ctx context.Context) error
	// Shutdown stops every broker and client. On TCP the context bounds
	// the graceful drain of in-flight frames.
	Shutdown(ctx context.Context) error
}

// Broker is a broker handle, transport-independent. TCP brokers
// additionally listen on a real address and can peer with brokers in
// other processes via ConnectPeer.
type Broker struct {
	id   string
	impl brokerImpl
}

// brokerImpl is the transport-specific side of a Broker.
type brokerImpl interface {
	addr() string
	metrics() Metrics
	connectPeer(id, addr string) error
	// dialPeer is connectPeer reporting whether THIS call established
	// the link (false+nil when a live link already existed).
	dialPeer(id, addr string) (established bool, err error)
	shutdown(ctx context.Context) error
	// core exposes the underlying protocol state machine (root-set
	// export, control-handler attachment).
	core() *broker.Broker
	// sendPeer queues one message toward a peer broker under the
	// transport's vocabulary negotiation; false when no live link (or,
	// for control kinds, no cluster-capable link) exists.
	sendPeer(id string, msg broker.Message) bool
	// setPeerHooks registers link up/down callbacks; setControlHandler
	// attaches the cluster control dispatcher and turns on the cluster
	// advertisement.
	setPeerHooks(up, down func(peer string))
	setControlHandler(h broker.ControlHandler)
	// peerCluster reports the cluster protocol version a peer
	// advertised (0 = none).
	peerCluster(id string) uint8
	// peerWireCodec reports the wire codec a peer advertised.
	peerWireCodec(id string) WireCodec
	// journalRef returns the durability journal (nil without one);
	// recoveryStats the boot-time replay summary.
	journalRef() *BrokerJournal
	recoveryStats() (RecoveryStats, bool)
	// observability returns the broker's metrics registry; nil on
	// transports without one (the simulator reads broker state
	// directly).
	observability() *obs.Registry
}

// ID returns the broker identifier.
func (b *Broker) ID() string { return b.id }

// Addr returns the broker's listen address ("host:port"); empty for
// in-process transports.
func (b *Broker) Addr() string { return b.impl.addr() }

// Metrics returns the broker's activity counters.
func (b *Broker) Metrics() Metrics { return b.impl.metrics() }

// ConnectPeer dials a neighbor broker at a real address and registers
// the overlay link — the cross-process form of Transport.Connect. For
// a bidirectional overlay the remote side must dial back (its own
// ConnectPeer); an inbound hello auto-registers the reverse link for
// routing, but only an outbound dial gives this side a channel to
// forward on. In-process brokers return an error: their links are
// wired through Transport.Connect.
func (b *Broker) ConnectPeer(id, addr string) error { return b.impl.connectPeer(id, addr) }

// DialPeer is ConnectPeer with an extra result: established reports
// whether THIS call created the outbound link (false with a nil error
// when a live link already existed — connecting twice is still
// success). The cluster reconnect loop uses the distinction: only a
// genuinely re-established connection proves the peer reachable and
// carries the link sync, while a no-op dial against an existing —
// possibly stalled — connection proves nothing.
func (b *Broker) DialPeer(id, addr string) (established bool, err error) {
	return b.impl.dialPeer(id, addr)
}

// Shutdown stops the broker, draining in-flight work within the
// context's deadline. In-process brokers stop with their transport and
// treat this as a no-op.
func (b *Broker) Shutdown(ctx context.Context) error { return b.impl.shutdown(ctx) }

// SendPeer queues one protocol message toward a peer broker, under the
// same wire-vocabulary negotiation as broker-originated traffic
// (legacy splits for batches, control-frame gating). It reports
// whether a live link existed; delivery stays best-effort. This is the
// cluster layer's send primitive — ordinary applications publish
// through clients, not through broker links.
func (b *Broker) SendPeer(peer string, msg broker.Message) bool {
	return b.impl.sendPeer(peer, msg)
}

// SetPeerHooks registers callbacks invoked when a peer overlay link is
// established (up: an outbound connection completed) or lost (down: a
// link's connection died). Events are delivered at-least-once on
// separate goroutines; the cluster membership layer consumes them to
// drive its failure detector and reconnect loop.
func (b *Broker) SetPeerHooks(up, down func(peer string)) {
	b.impl.setPeerHooks(up, down)
}

// SetControlHandler attaches the cluster layer's dispatcher for
// overlay-control messages (ping/pong/gossip) and turns on the cluster
// advertisement in this broker's hellos and acks. Handlers run outside
// the broker's routing locks and must be safe for concurrent callers.
func (b *Broker) SetControlHandler(h broker.ControlHandler) {
	b.impl.setControlHandler(h)
}

// PeerRoots exports the active subscriptions of the coverage table for
// one peer — the forwarding roots that peer must know. The cluster
// healing protocol re-announces them as one SUBBATCH when a lost link
// is restored.
func (b *Broker) PeerRoots(peer string) []BatchSub {
	return b.impl.core().NeighborRoots(peer)
}

// Core returns the underlying broker engine — the handle
// cluster.AttachRouter wires rendezvous routing through.
func (b *Broker) Core() *broker.Broker { return b.impl.core() }

// PeerClusterVersion reports the cluster protocol version a peer
// advertised in its hello or ack (0 = no cluster layer).
func (b *Broker) PeerClusterVersion(peer string) uint8 {
	return b.impl.peerCluster(peer)
}

// PeerWireCodec reports the wire codec a peer advertised in its hello
// or ack (CodecJSON when it never advertised one). The cluster layer
// uses it to piggyback link digests only toward peers whose decoder
// accepts them.
func (b *Broker) PeerWireCodec(peer string) WireCodec {
	return b.impl.peerWireCodec(peer)
}

// LinkDigest returns this broker's sender-side digest of the
// subscriptions it announced toward peer (false when no coverage
// table for the peer exists yet).
func (b *Broker) LinkDigest(peer string) (broker.LinkDigest, bool) {
	return b.impl.core().LinkDigest(peer)
}

// ReceivedDigest returns this broker's receiver-side digest of the
// live subscriptions it received over the link from peer. Two brokers
// agree on a link exactly when each side's LinkDigest root equals the
// other side's ReceivedDigest root.
func (b *Broker) ReceivedDigest(peer string) broker.LinkDigest {
	return b.impl.core().ReceivedDigest(peer)
}

// Journal returns the broker's durability journal, nil when it runs
// without a data directory (see WithDataDir).
func (b *Broker) Journal() *BrokerJournal { return b.impl.journalRef() }

// Recovery returns the boot-time recovery statistics; ok is false
// when the broker is not durable.
func (b *Broker) Recovery() (RecoveryStats, bool) { return b.impl.recoveryStats() }

// Observability returns the broker's metrics registry: per-link frame
// counts, publish-stage histograms, queue depths, route-table
// footprint, and the flight recorder, exported over HTTP via its
// Handler (see cmd/brokerd's -metrics-addr). Nil on in-process
// simulator brokers, which are inspected directly.
func (b *Broker) Observability() *obs.Registry { return b.impl.observability() }

// NeighborTableMetrics returns the coverage-table operation counters
// for one peer port — how the subscriptions forwarded to that peer
// were admitted (per-item vs batch, suppressed, promoted). The
// cluster tests pin through it that a healed link's root
// re-announcement arrives as ONE batch admission.
func (b *Broker) NeighborTableMetrics(peer string) (subsume.TableMetrics, bool) {
	return b.impl.core().NeighborTableMetrics(peer)
}

// Client is a subscriber/publisher endpoint, transport-independent.
// Operations are context-aware; notifications stream on a channel.
// A Client is safe for concurrent use.
type Client struct {
	name string
	impl clientImpl
	q    *notifyQueue

	statsMu sync.Mutex
	// stats, when attached (SetStats), stamps publish departures for
	// end-to-end latency measurement.
	// +guarded_by:statsMu
	stats *ClientStats
}

// clientImpl is the transport-specific side of a Client.
type clientImpl interface {
	send(ctx context.Context, msg broker.Message) error
	close() error
}

// Name returns the client's endpoint name.
func (c *Client) Name() string { return c.name }

// Subscribe announces a subscription under a globally unique ID.
func (c *Client) Subscribe(ctx context.Context, subID string, s Subscription) error {
	if subID == "" {
		return fmt.Errorf("pubsub: empty subscription id")
	}
	return c.impl.send(ctx, broker.Message{Kind: broker.MsgSubscribe, SubID: subID, Sub: s})
}

// SubscribeBatch announces a subscription burst as ONE protocol
// message: each broker admits the whole burst into its per-neighbor
// coverage tables with a single batch call (broad subscriptions
// suppress narrow ones arriving alongside them) and forwards the
// surviving items onward as one frame, so the burst stays batched
// end to end across the overlay. An empty burst is a no-op.
func (c *Client) SubscribeBatch(ctx context.Context, subs []BatchSub) error {
	if len(subs) == 0 {
		return nil
	}
	for i, it := range subs {
		if it.SubID == "" {
			return fmt.Errorf("pubsub: batch item %d has empty subscription id", i)
		}
	}
	return c.impl.send(ctx, broker.Message{Kind: broker.MsgSubscribeBatch, Subs: subs})
}

// Unsubscribe cancels a previously announced subscription.
func (c *Client) Unsubscribe(ctx context.Context, subID string) error {
	if subID == "" {
		return fmt.Errorf("pubsub: empty subscription id")
	}
	return c.impl.send(ctx, broker.Message{Kind: broker.MsgUnsubscribe, SubID: subID})
}

// UnsubscribeBatch cancels a burst of subscriptions as ONE protocol
// message: each broker removes the burst from its per-neighbor tables
// with a single batch call sharing one promotion-cascade frontier.
// An empty burst is a no-op.
func (c *Client) UnsubscribeBatch(ctx context.Context, subIDs []string) error {
	if len(subIDs) == 0 {
		return nil
	}
	for i, id := range subIDs {
		if id == "" {
			return fmt.Errorf("pubsub: batch item %d has empty subscription id", i)
		}
	}
	return c.impl.send(ctx, broker.Message{Kind: broker.MsgUnsubscribeBatch, SubIDs: subIDs})
}

// Publish sends a publication under a globally unique ID (the overlay
// deduplicates on it).
func (c *Client) Publish(ctx context.Context, pubID string, p Publication) error {
	if pubID == "" {
		return fmt.Errorf("pubsub: empty publication id")
	}
	if cs := c.clientStats(); cs != nil {
		cs.markPublished(pubID)
	}
	return c.impl.send(ctx, broker.Message{Kind: broker.MsgPublish, PubID: pubID, Pub: p})
}

// PublishBatch sends a burst of publications as ONE protocol message:
// the broker pays its routing lock once for the whole frame and
// re-forwards the matching publications per neighbor as one batch, so
// a deliberate producer-side burst stays batched end to end across the
// overlay. Publications are processed in slice order with the same
// dedup and delivery semantics as per-item Publish. An empty burst is
// a no-op. Against brokers that predate the PUBBATCH frame the burst
// is transparently sent as per-item frames.
func (c *Client) PublishBatch(ctx context.Context, pubs []BatchPub) error {
	if len(pubs) == 0 {
		return nil
	}
	for i, it := range pubs {
		if it.PubID == "" {
			return fmt.Errorf("pubsub: batch item %d has empty publication id", i)
		}
	}
	if cs := c.clientStats(); cs != nil {
		for _, it := range pubs {
			cs.markPublished(it.PubID)
		}
	}
	return c.impl.send(ctx, broker.Message{Kind: broker.MsgPublishBatch, Pubs: pubs})
}

// Notifications returns the client's delivery stream. The channel is
// fed in delivery order and closed after the last delivery once the
// client's connection ends; notifications already delivered to the
// client are never dropped as long as the channel is being read.
// Calling Close discards anything still unread.
func (c *Client) Notifications() <-chan Notification { return c.q.ch }

// Close detaches the client and discards unread notifications. On TCP
// this closes the connection; the broker keeps the client's
// subscriptions (a later Open/Dial with the same name resumes them).
func (c *Client) Close() error {
	err := c.impl.close()
	c.q.abandon()
	return err
}

// notifyQueue decouples notification producers (transport goroutines,
// or the simulator's synchronous delivery) from the consumer-facing
// channel: pushes never block, ordering is preserved, and buffering is
// unbounded so a slow reader cannot stall the overlay.
//
// Teardown has two flavors matching its two sides: finish (producer
// gone — drain what is buffered to the reader, then close the
// channel) and abandon (consumer gone — drop everything now). A
// client whose connection ended still delivers its tail; a client
// that was Closed stops immediately.
type notifyQueue struct {
	mu       sync.Mutex
	cond     *sync.Cond
	buf      []Notification
	finished bool
	// stats, when attached, observes delivery arrival times against
	// their publish stamps (see ClientStats).
	// +guarded_by:mu
	stats *ClientStats

	ch  chan Notification
	die chan struct{}
}

func newNotifyQueue() *notifyQueue {
	q := &notifyQueue{ch: make(chan Notification, 16), die: make(chan struct{})}
	q.cond = sync.NewCond(&q.mu)
	go q.pump()
	return q
}

// push appends one notification; a finished queue drops it.
func (q *notifyQueue) push(n Notification) {
	q.mu.Lock()
	cs := q.stats
	if !q.finished {
		q.buf = append(q.buf, n)
		q.cond.Signal()
	}
	q.mu.Unlock()
	if cs != nil {
		// Latency is measured at ARRIVAL (the transport handed the
		// notification over), not at consumption from the channel — a
		// slow reader must not inflate broker latency figures.
		cs.observeDelivery(n.PubID)
	}
}

// setStats attaches a delivery-latency collector (nil detaches).
func (q *notifyQueue) setStats(cs *ClientStats) {
	q.mu.Lock()
	q.stats = cs
	q.mu.Unlock()
}

// pump moves notifications from the buffer to the channel, closing the
// channel once the queue is finished and drained, or abandoned.
func (q *notifyQueue) pump() {
	for {
		q.mu.Lock()
		for len(q.buf) == 0 && !q.finished {
			q.cond.Wait()
		}
		if len(q.buf) == 0 {
			q.mu.Unlock()
			close(q.ch)
			return
		}
		n := q.buf[0]
		q.buf = q.buf[1:]
		q.mu.Unlock()
		select {
		case q.ch <- n:
		case <-q.die:
			close(q.ch)
			return
		}
	}
}

// finish marks the producer side done: no more pushes are accepted,
// buffered notifications still flow to the reader, and the channel
// closes after the last one.
func (q *notifyQueue) finish() {
	q.mu.Lock()
	q.finished = true
	q.cond.Signal()
	q.mu.Unlock()
}

// abandon marks the consumer side gone: buffered notifications are
// dropped and the channel closes immediately.
func (q *notifyQueue) abandon() {
	q.mu.Lock()
	if !q.finished {
		q.finished = true
	}
	select {
	case <-q.die:
	default:
		close(q.die)
	}
	q.cond.Signal()
	q.mu.Unlock()
}
