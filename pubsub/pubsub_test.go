package pubsub_test

import (
	"fmt"
	"testing"

	"probsum/pubsub"
	"probsum/subsume"
)

func buildChain(t *testing.T, policy pubsub.Policy, brokers int) *pubsub.Network {
	t.Helper()
	n, err := pubsub.NewNetwork(policy, pubsub.Config{ErrorProbability: 1e-9, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= brokers; i++ {
		if err := n.AddBroker(fmt.Sprintf("B%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i < brokers; i++ {
		if err := n.Connect(fmt.Sprintf("B%d", i), fmt.Sprintf("B%d", i+1)); err != nil {
			t.Fatal(err)
		}
	}
	return n
}

func TestEndToEndDelivery(t *testing.T) {
	schema := subsume.UniformSchema(2, 0, 100)
	for _, policy := range []pubsub.Policy{pubsub.Flood, pubsub.Pairwise, pubsub.Group} {
		t.Run(policy.String(), func(t *testing.T) {
			n := buildChain(t, policy, 4)
			if err := n.AttachClient("alice", "B1"); err != nil {
				t.Fatal(err)
			}
			if err := n.AttachClient("pub", "B4"); err != nil {
				t.Fatal(err)
			}
			s := subsume.NewSubscription(schema).Range("x1", 10, 50).Build()
			if err := n.Subscribe("alice", "a1", s); err != nil {
				t.Fatal(err)
			}
			if err := n.Publish("pub", "p1", subsume.NewPublication(30, 30)); err != nil {
				t.Fatal(err)
			}
			got := n.Notifications("alice")
			if len(got) != 1 || got[0].SubID != "a1" {
				t.Fatalf("notifications = %+v", got)
			}
			// Non-matching publication is not delivered.
			if err := n.Publish("pub", "p2", subsume.NewPublication(90, 90)); err != nil {
				t.Fatal(err)
			}
			if got := n.Notifications("alice"); len(got) != 1 {
				t.Fatalf("unexpected delivery: %+v", got)
			}
		})
	}
}

func TestGroupPolicySuppressesUnionCovered(t *testing.T) {
	schema := subsume.UniformSchema(2, 0, 100)
	nGroup := buildChain(t, pubsub.Group, 3)
	nPair := buildChain(t, pubsub.Pairwise, 3)
	for _, n := range []*pubsub.Network{nGroup, nPair} {
		if err := n.AttachClient("c", "B1"); err != nil {
			t.Fatal(err)
		}
		left := subsume.NewSubscription(schema).Range("x1", 0, 60).Build()
		right := subsume.NewSubscription(schema).Range("x1", 40, 100).Build()
		mid := subsume.NewSubscription(schema).Range("x1", 20, 80).Range("x2", 10, 90).Build()
		for id, s := range map[string]pubsub.Subscription{"left": left, "right": right} {
			if err := n.Subscribe("c", id, s); err != nil {
				t.Fatal(err)
			}
		}
		if err := n.Subscribe("c", "mid", mid); err != nil {
			t.Fatal(err)
		}
	}
	// Group coverage suppresses "mid" on every link; pairwise cannot.
	g, p := nGroup.Metrics(), nPair.Metrics()
	if g.SubsForwarded >= p.SubsForwarded {
		t.Errorf("group forwarded %d >= pairwise %d", g.SubsForwarded, p.SubsForwarded)
	}
	if g.SubsSuppressed == 0 {
		t.Error("group policy suppressed nothing")
	}
}

func TestUnsubscribeStopsDelivery(t *testing.T) {
	schema := subsume.UniformSchema(2, 0, 100)
	n := buildChain(t, pubsub.Pairwise, 3)
	n.AttachClient("c", "B1")
	n.AttachClient("pub", "B3")
	s := subsume.NewSubscription(schema).Range("x1", 0, 50).Build()
	if err := n.Subscribe("c", "s1", s); err != nil {
		t.Fatal(err)
	}
	if err := n.Unsubscribe("c", "s1"); err != nil {
		t.Fatal(err)
	}
	if err := n.Publish("pub", "p1", subsume.NewPublication(25, 25)); err != nil {
		t.Fatal(err)
	}
	if got := n.Notifications("c"); len(got) != 0 {
		t.Fatalf("delivery after unsubscribe: %+v", got)
	}
}

func TestMetricsAndAccessors(t *testing.T) {
	n := buildChain(t, pubsub.Flood, 2)
	ids := n.Brokers()
	if len(ids) != 2 || ids[0] != "B1" {
		t.Fatalf("brokers = %v", ids)
	}
	if _, err := n.BrokerMetrics("B1"); err != nil {
		t.Fatal(err)
	}
	if _, err := n.BrokerMetrics("nope"); err == nil {
		t.Error("unknown broker metrics accepted")
	}
}

func TestPolicyValidation(t *testing.T) {
	if _, err := pubsub.NewNetwork(pubsub.Policy(99), pubsub.Config{}); err == nil {
		t.Error("invalid policy accepted")
	}
	for p, want := range map[pubsub.Policy]string{
		pubsub.Flood: "flood", pubsub.Pairwise: "pairwise", pubsub.Group: "group",
		pubsub.Policy(9): "unknown",
	} {
		if p.String() != want {
			t.Errorf("Policy(%d).String() = %q", p, p.String())
		}
	}
}
