package pubsub

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"probsum/internal/broker"
	"probsum/internal/interval"
	"probsum/internal/subscription"
)

// codecTestFrames is one message frame of every kind, shared by the
// round-trip tests, the fuzz seeds, and the corpus generator.
func codecTestFrames() []Frame {
	sub := subscription.New(interval.New(0, 50), interval.New(-10, 1000))
	sub2 := subscription.New(interval.New(3, 3), interval.New(0, 0))
	pub := subscription.NewPublication(25, 500)
	return []Frame{
		{Msg: &broker.Message{Kind: broker.MsgSubscribe, SubID: "alice/1", Sub: sub}},
		{Msg: &broker.Message{Kind: broker.MsgUnsubscribe, SubID: "alice/1"}},
		{Msg: &broker.Message{Kind: broker.MsgPublish, PubID: "p-1", Pub: pub}},
		{Msg: &broker.Message{Kind: broker.MsgNotify, SubID: "alice/1", PubID: "p-1", Pub: pub}},
		{Msg: &broker.Message{Kind: broker.MsgSubscribeBatch, Subs: []broker.BatchSub{
			{SubID: "b/1", Sub: sub},
			{SubID: "b/2", Sub: sub2},
		}}},
		{Msg: &broker.Message{Kind: broker.MsgUnsubscribeBatch, SubIDs: []string{"b/1", "b/2"}}},
		// The v2 vocabulary: producer-side publish batches and the
		// cluster membership control frames.
		{Msg: &broker.Message{Kind: broker.MsgPublishBatch, Pubs: []broker.BatchPub{
			{PubID: "p-1", Pub: pub},
			{PubID: "p-2", Pub: subscription.NewPublication(3)},
		}}},
		{Msg: &broker.Message{Kind: broker.MsgPing, Seq: 42}},
		{Msg: &broker.Message{Kind: broker.MsgPong, Seq: 42}},
		{Msg: &broker.Message{Kind: broker.MsgGossip, Members: []broker.MemberInfo{
			{ID: "B1", Addr: "10.0.0.7:7001", Incarnation: 3, State: broker.MemberAlive},
			{ID: "B2", Incarnation: 1, State: broker.MemberDead},
		}}},
		// The v3 vocabulary: gossip piggybacking a link digest, and the
		// digest-mismatch sync exchange.
		{Msg: &broker.Message{Kind: broker.MsgGossip, Members: []broker.MemberInfo{
			{ID: "B1", Addr: "10.0.0.7:7001", Incarnation: 3, State: broker.MemberAlive},
		}, Digest: &broker.LinkDigest{Count: 7, Root: 0xC0FFEE}}},
		{Msg: &broker.Message{Kind: broker.MsgSyncRequest, Buckets: []uint64{0, 1, ^uint64(0)}}},
		{Msg: &broker.Message{Kind: broker.MsgSyncRoots, Mask: 0b1010, Subs: []broker.BatchSub{
			{SubID: "b/1", Sub: sub},
		}}},
		// The v4 vocabulary: indirect probes (both directions) and
		// bounded delta gossip with its required member-view hash, plus
		// the ping/pong piggyback tail.
		{Msg: &broker.Message{Kind: broker.MsgPingReq, Target: "B3", Seq: 9, Members: []broker.MemberInfo{
			{ID: "B4", Addr: "10.0.0.9:7001", Incarnation: 2, State: broker.MemberSuspect},
		}}},
		{Msg: &broker.Message{Kind: broker.MsgPingReq, Ack: true, Target: "B3", Seq: 9}},
		{Msg: &broker.Message{Kind: broker.MsgPing, Seq: 7, Members: []broker.MemberInfo{
			{ID: "B5", Incarnation: 4, State: broker.MemberAlive},
		}}},
		{Msg: &broker.Message{Kind: broker.MsgGossipDelta, MemberHash: 0xFEED, Members: []broker.MemberInfo{
			{ID: "B6", Addr: "10.0.0.11:7001", Incarnation: 1, State: broker.MemberAlive},
		}}},
		{Msg: &broker.Message{Kind: broker.MsgGossipDelta, MemberHash: 1,
			Digest: &broker.LinkDigest{Count: 3, Root: 0xBEEF}}},
		// Degenerate payloads the codec must carry faithfully.
		{Msg: &broker.Message{Kind: broker.MsgPublish, PubID: ""}},
		{Msg: &broker.Message{Kind: broker.MsgSubscribeBatch}},
		{Msg: &broker.Message{Kind: broker.MsgPublishBatch}},
		{Msg: &broker.Message{Kind: broker.MsgGossip}},
		{Msg: &broker.Message{Kind: broker.MsgPing}},
	}
}

// canonMsg reduces a message to its canonical JSON so nil-vs-empty
// slice differences (invisible on the wire) do not fail comparisons.
func canonMsg(t testing.TB, m *broker.Message) string {
	t.Helper()
	data, err := json.Marshal(m)
	if err != nil {
		t.Fatalf("canon: %v", err)
	}
	return string(data)
}

func TestCodecRoundTrip(t *testing.T) {
	for _, codec := range []WireCodec{CodecJSON, CodecBinary} {
		for _, fr := range codecTestFrames() {
			data, err := MarshalFrame(codec, nil, &fr)
			if err != nil {
				t.Fatalf("%v marshal %+v: %v", codec, fr.Msg, err)
			}
			got, n, err := UnmarshalFrame(data)
			if err != nil {
				t.Fatalf("%v unmarshal %+v: %v", codec, fr.Msg, err)
			}
			if n != len(data) {
				t.Fatalf("%v consumed %d of %d bytes", codec, n, len(data))
			}
			if got.Msg == nil {
				t.Fatalf("%v round trip lost the message", codec)
			}
			if canonMsg(t, got.Msg) != canonMsg(t, fr.Msg) {
				t.Fatalf("%v round trip:\n in  %s\n out %s", codec, canonMsg(t, fr.Msg), canonMsg(t, got.Msg))
			}
		}
	}
}

// TestCodecCrossDecode pins that the two codecs agree on the shared
// message fields: binary-encoded frames re-encoded as JSON decode to
// the same message, and vice versa.
func TestCodecCrossDecode(t *testing.T) {
	for _, fr := range codecTestFrames() {
		bin, err := MarshalFrame(CodecBinary, nil, &fr)
		if err != nil {
			t.Fatal(err)
		}
		viaBin, _, err := UnmarshalFrame(bin)
		if err != nil {
			t.Fatal(err)
		}
		jsn, err := MarshalFrame(CodecJSON, nil, &viaBin)
		if err != nil {
			t.Fatal(err)
		}
		viaJSON, _, err := UnmarshalFrame(jsn)
		if err != nil {
			t.Fatal(err)
		}
		if canonMsg(t, viaJSON.Msg) != canonMsg(t, fr.Msg) {
			t.Fatalf("binary→json cross decode:\n in  %s\n out %s",
				canonMsg(t, fr.Msg), canonMsg(t, viaJSON.Msg))
		}
	}
}

func TestCodecHandshakeFramesAreJSONOnly(t *testing.T) {
	hello := Frame{Hello: "B1", Codec: uint8(CodecBinary)}
	if _, err := MarshalFrame(CodecBinary, nil, &hello); err == nil {
		t.Fatal("binary marshal of a hello frame succeeded")
	}
	data, err := MarshalFrame(CodecJSON, nil, &hello)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := UnmarshalFrame(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Hello != "B1" || WireCodec(got.Codec) != CodecBinary {
		t.Fatalf("hello round trip = %+v", got)
	}
}

func TestCodecDecodeRejects(t *testing.T) {
	valid, err := MarshalFrame(CodecBinary, nil, &codecTestFrames()[0])
	if err != nil {
		t.Fatal(err)
	}
	// A frame whose length prefix claims one payload byte more than
	// its kind consumes.
	trailing := append(append([]byte{}, valid...), 0)
	trailing[2]++
	cases := map[string][]byte{
		"empty":             {},
		"truncated header":  valid[:3],
		"truncated payload": valid[:len(valid)-1],
		"bad version":       {binMagic, 0x7F, 0, 0, 0, 0},
		"trailing bytes":    trailing,
		"oversized length":  {binMagic, binVersion, 0xFF, 0xFF, 0xFF, 0xFF},
		"hostile count":     {binMagic, binVersion, 3, 0, 0, 0, byte(broker.MsgUnsubscribeBatch), 0xFF, 0x7F},
		"unknown kind":      {binMagic, binVersion, 1, 0, 0, 0, 0x63},
		"not json":          []byte("garbage\n"),
		// v4 grammar rejects: the delta member-view hash is required and
		// never zero; the ping-req flags byte has two defined values.
		"zero delta hash":   {binMagic, binVersion4, 10, 0, 0, 0, byte(broker.MsgGossipDelta), 0, 0, 0, 0, 0, 0, 0, 0, 0},
		"bad pingreq flags": {binMagic, binVersion4, 2, 0, 0, 0, byte(broker.MsgPingReq), 2},
	}
	for name, data := range cases {
		if _, _, err := UnmarshalFrame(data); err == nil {
			t.Errorf("%s: decode succeeded", name)
		}
	}
}

// TestFrameReaderMixedStream feeds one stream holding JSON and binary
// frames back to back and checks the reader sniffs each correctly.
func TestFrameReaderMixedStream(t *testing.T) {
	frames := codecTestFrames()
	var stream []byte
	var err error
	for i, fr := range frames {
		codec := CodecJSON
		if i%2 == 1 {
			codec = CodecBinary
		}
		if stream, err = MarshalFrame(codec, stream, &fr); err != nil {
			t.Fatal(err)
		}
	}
	r := newFrameReader(bytes.NewReader(stream))
	for i, want := range frames {
		var got Frame
		if err := r.read(&got); err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if canonMsg(t, got.Msg) != canonMsg(t, want.Msg) {
			t.Fatalf("frame %d:\n in  %s\n out %s", i, canonMsg(t, want.Msg), canonMsg(t, got.Msg))
		}
	}
}

// TestFrameReaderTryReadCoalesces pins the coalescing contract: with
// a burst fully buffered, tryRead yields every complete frame and
// stops — without blocking — at a partial tail frame.
func TestFrameReaderTryReadCoalesces(t *testing.T) {
	pubFrame := func(id string) Frame {
		return Frame{Msg: &broker.Message{Kind: broker.MsgPublish, PubID: id, Pub: subscription.NewPublication(1, 2)}}
	}
	var stream []byte
	var err error
	for _, id := range []string{"p1", "p2", "p3"} {
		fr := pubFrame(id)
		if stream, err = MarshalFrame(CodecBinary, stream, &fr); err != nil {
			t.Fatal(err)
		}
	}
	tail := pubFrame("p4")
	tailBytes, err := MarshalFrame(CodecBinary, nil, &tail)
	if err != nil {
		t.Fatal(err)
	}
	stream = append(stream, tailBytes[:len(tailBytes)-3]...) // partial frame

	r := newFrameReader(bytes.NewReader(stream))
	var first Frame
	if err := r.read(&first); err != nil {
		t.Fatal(err)
	}
	if first.Msg.PubID != "p1" {
		t.Fatalf("first frame = %+v", first.Msg)
	}
	var got []string
	for {
		var fr Frame
		ok, err := r.tryRead(&fr)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		got = append(got, fr.Msg.PubID)
	}
	if !reflect.DeepEqual(got, []string{"p2", "p3"}) {
		t.Fatalf("coalesced %v, want [p2 p3]", got)
	}
}
