package pubsub

// Durability bridge tests: journal → crash → recover round trips over
// the in-memory store, fsync-batching loss semantics, snapshot
// compaction, and — over real TCP — publication dedup surviving a
// broker restart (the at-most-once guarantee holds ACROSS crashes for
// every publication the journal captured).

import (
	"context"
	"fmt"
	"testing"
	"time"

	"probsum/internal/broker"
	"probsum/internal/persist"
	"probsum/internal/store"
	"probsum/internal/subscription"
)

func newJournaledBroker(t *testing.T, st persist.Store, syncEvery int) (*broker.Broker, *BrokerJournal) {
	t.Helper()
	b, err := broker.New("B1", store.PolicyPairwise)
	if err != nil {
		t.Fatal(err)
	}
	j := NewBrokerJournal(b, st, syncEvery)
	b.SetJournal(j)
	return b, j
}

// populate drives a small but representative state through the
// broker: a client, a neighbor, two subscriptions, one publication.
func populate(t *testing.T, b *broker.Broker) {
	t.Helper()
	b.AttachClient("alice")
	if err := b.ConnectNeighbor("N1"); err != nil {
		t.Fatal(err)
	}
	for _, m := range []broker.Message{
		{Kind: broker.MsgSubscribe, SubID: "s1", Sub: box(0, 50, 0, 50)},
		{Kind: broker.MsgSubscribe, SubID: "s2", Sub: box(60, 90, 60, 90)},
	} {
		if _, err := b.Handle("alice", m); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := b.Handle("N1", broker.Message{Kind: broker.MsgPublish, PubID: "p1", Pub: subscription.NewPublication(10, 10)}); err != nil {
		t.Fatal(err)
	}
}

// notifySet extracts the delivered (To, SubID) pairs of a Handle
// output.
func notifySet(outs []broker.Outbound) map[string]bool {
	set := make(map[string]bool)
	for _, o := range outs {
		if o.Msg.Kind == broker.MsgNotify {
			set[o.To+"/"+o.Msg.SubID] = true
		}
	}
	return set
}

func TestJournalRecoverRoundTrip(t *testing.T) {
	st := persist.NewMemStore()
	b, _ := newJournaledBroker(t, st, 1) // fsync every record: crash loses nothing
	populate(t, b)
	st.Crash()

	b2, err := broker.New("B1", store.PolicyPairwise)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := RecoverBroker(b2, st)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Subscriptions != 2 || stats.Clients != 1 || stats.Neighbors != 1 {
		t.Fatalf("recovered stats = %+v, want 2 subs, 1 client, 1 neighbor", stats)
	}
	if stats.Skipped != 0 || stats.Truncated {
		t.Fatalf("clean journal recovered with loss: %+v", stats)
	}

	// The recovered broker routes exactly like the original...
	probe := broker.Message{Kind: broker.MsgPublish, PubID: "p2", Pub: subscription.NewPublication(70, 70)}
	outs1, err := b.Handle("N1", probe)
	if err != nil {
		t.Fatal(err)
	}
	outs2, err := b2.Handle("N1", probe)
	if err != nil {
		t.Fatal(err)
	}
	want, got := notifySet(outs1), notifySet(outs2)
	if len(want) == 0 || !setsEqualStr(want, got) {
		t.Fatalf("recovered routing diverges: %v vs %v", got, want)
	}
	// ...including the dedup window: the journaled p1 stays dropped.
	outs, err := b2.Handle("N1", broker.Message{Kind: broker.MsgPublish, PubID: "p1", Pub: subscription.NewPublication(10, 10)})
	if err != nil {
		t.Fatal(err)
	}
	if len(notifySet(outs)) != 0 {
		t.Fatalf("replayed publication re-delivered after recovery: %+v", outs)
	}
}

func setsEqualStr(a, b map[string]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// TestJournalCrashLosesOnlyUnsyncedTail pins the fsync-batching
// contract: a crash drops at most the records appended since the last
// sync — everything before the explicit Sync survives.
func TestJournalCrashLosesOnlyUnsyncedTail(t *testing.T) {
	st := persist.NewMemStore()
	b, j := newJournaledBroker(t, st, 1000) // batch far larger than the test
	b.AttachClient("alice")
	if _, err := b.Handle("alice", broker.Message{Kind: broker.MsgSubscribe, SubID: "s1", Sub: box(0, 50, 0, 50)}); err != nil {
		t.Fatal(err)
	}
	if err := j.Sync(); err != nil {
		t.Fatal(err)
	}
	// s2 lands after the sync and dies with the crash.
	if _, err := b.Handle("alice", broker.Message{Kind: broker.MsgSubscribe, SubID: "s2", Sub: box(60, 90, 60, 90)}); err != nil {
		t.Fatal(err)
	}
	st.Crash()

	b2, err := broker.New("B1", store.PolicyPairwise)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := RecoverBroker(b2, st)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Subscriptions != 1 || stats.Clients != 1 {
		t.Fatalf("recovered stats = %+v, want exactly the synced prefix (1 sub, 1 client)", stats)
	}
}

// TestSnapshotCompactsJournal pins log compaction: after a snapshot,
// recovery replays the snapshot plus only the records appended since.
func TestSnapshotCompactsJournal(t *testing.T) {
	st := persist.NewMemStore()
	b, j := newJournaledBroker(t, st, 1)
	populate(t, b)
	if err := j.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Handle("alice", broker.Message{Kind: broker.MsgSubscribe, SubID: "s3", Sub: box(200, 300, 200, 300)}); err != nil {
		t.Fatal(err)
	}
	st.Crash()

	b2, err := broker.New("B1", store.PolicyPairwise)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := RecoverBroker(b2, st)
	if err != nil {
		t.Fatal(err)
	}
	if stats.SnapshotOps == 0 {
		t.Fatalf("recovery ignored the snapshot: %+v", stats)
	}
	if stats.JournalRecords != 1 {
		t.Fatalf("journal not compacted by the snapshot: %+v", stats)
	}
	if stats.Subscriptions != 3 {
		t.Fatalf("recovered %d subscriptions, want 3", stats.Subscriptions)
	}
}

// testMembers builds a small member list in wire form.
func testMembers(incs ...uint64) []broker.MemberInfo {
	ms := make([]broker.MemberInfo, len(incs))
	for i, inc := range incs {
		ms[i] = broker.MemberInfo{
			ID:          fmt.Sprintf("B%d", i+1),
			Addr:        fmt.Sprintf("127.0.0.1:%d", 7001+i),
			Incarnation: inc,
			State:       0,
		}
	}
	return ms
}

func membersEqual(a, b []broker.MemberInfo) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestMembersRecordRoundTrip pins durable membership through the
// journal: the LAST membership record wins on recovery, broker
// routing records interleave untouched, and the member list is not
// replayed into the broker (membership belongs to the cluster layer).
func TestMembersRecordRoundTrip(t *testing.T) {
	st := persist.NewMemStore()
	b, j := newJournaledBroker(t, st, 1)
	populate(t, b)
	j.RecordMembers(testMembers(1, 1))
	j.RecordMembers(testMembers(2, 1, 5)) // supersedes the first
	st.Crash()

	b2, err := broker.New("B1", store.PolicyPairwise)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := RecoverBroker(b2, st)
	if err != nil {
		t.Fatal(err)
	}
	if !membersEqual(stats.Members, testMembers(2, 1, 5)) {
		t.Fatalf("recovered members = %+v, want the last record", stats.Members)
	}
	if stats.Skipped != 0 {
		t.Fatalf("membership records counted as skipped: %+v", stats)
	}
	if stats.Subscriptions != 2 || stats.Clients != 1 || stats.Neighbors != 1 {
		t.Fatalf("routing state lost around membership records: %+v", stats)
	}
}

// TestSnapshotCarriesMembers pins the compaction path: a snapshot
// taken with a member source preserves the membership record even
// though every journaled RecordMembers call was compacted away.
func TestSnapshotCarriesMembers(t *testing.T) {
	st := persist.NewMemStore()
	b, j := newJournaledBroker(t, st, 1)
	populate(t, b)
	j.RecordMembers(testMembers(1)) // will be compacted away
	want := testMembers(3, 2)
	j.SetMemberSource(func() []broker.MemberInfo { return want })
	if err := j.Snapshot(); err != nil {
		t.Fatal(err)
	}
	st.Crash()

	b2, err := broker.New("B1", store.PolicyPairwise)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := RecoverBroker(b2, st)
	if err != nil {
		t.Fatal(err)
	}
	if stats.JournalRecords != 0 {
		t.Fatalf("journal not compacted: %+v", stats)
	}
	if !membersEqual(stats.Members, want) {
		t.Fatalf("snapshot members = %+v, want %+v", stats.Members, want)
	}
}

// TestRestartDedupSurvivesRestart is the satellite (d) semantics pin
// over real TCP: a publication ID consumed before a restart is still
// recognized as a duplicate after recovery from the data directory —
// and the caveat this buys is at-MOST-once, never at-least-once.
func TestRestartDedupSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	b := listenTestBroker(t, "B1", Pairwise, WithDataDir(dir), WithJournalSync(1))
	addr := b.Addr()
	ctx := testCtx(t)
	sub := dialTest(t, addr, "alice")
	pub := dialTest(t, addr, "bob")
	if err := sub.Subscribe(ctx, "s1", box(0, 50, 0, 50)); err != nil {
		t.Fatal(err)
	}
	waitMetric(t, b, 2*time.Second, func(m Metrics) bool { return m.SubsReceived == 1 })
	if err := pub.Publish(ctx, "p1", subscription.NewPublication(25, 25)); err != nil {
		t.Fatal(err)
	}
	if _, ok := recvOne(t, sub, 2*time.Second); !ok {
		t.Fatal("pre-restart delivery did not arrive")
	}

	// Graceful restart from the same directory.
	sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := b.Shutdown(sctx); err != nil {
		t.Fatal(err)
	}
	b2 := listenTestBroker(t, "B1", Pairwise, WithDataDir(dir), WithJournalSync(1))
	rs, ok := b2.Recovery()
	if !ok || rs.Subscriptions != 1 {
		t.Fatalf("recovery = %+v, %v; want the subscription back", rs, ok)
	}
	sub2 := dialTest(t, b2.Addr(), "alice") // no re-subscribe
	pub2 := dialTest(t, b2.Addr(), "bob")

	// Wait until the server has bound the re-dialed connection to the
	// recovered port: a fresh-ID probe delivering proves it (dialing
	// returns before the hello is processed server-side).
	deadline := time.Now().Add(5 * time.Second)
	for bound := false; !bound; {
		if time.Now().After(deadline) {
			t.Fatal("re-dialed client never received a warm-up probe")
		}
		if err := pub2.Publish(ctx, fmt.Sprintf("warm-%d", time.Now().UnixNano()), subscription.NewPublication(25, 25)); err != nil {
			t.Fatal(err)
		}
		_, bound = recvOne(t, sub2, 500*time.Millisecond)
	}

	// The same producer retrying p1 after the restart: a duplicate,
	// dropped. A fresh p2 flows normally.
	if err := pub2.Publish(ctx, "p1", subscription.NewPublication(25, 25)); err != nil {
		t.Fatal(err)
	}
	if err := pub2.Publish(ctx, "p2", subscription.NewPublication(25, 25)); err != nil {
		t.Fatal(err)
	}
	n, ok := recvOne(t, sub2, 2*time.Second)
	if !ok {
		t.Fatal("post-restart delivery did not arrive")
	}
	if n.PubID != "p2" {
		t.Fatalf("post-restart delivery = %+v, want p2 only (p1 is a journaled duplicate)", n)
	}
	if extra, ok := recvOne(t, sub2, 300*time.Millisecond); ok {
		t.Fatalf("duplicate p1 re-delivered after restart: %+v", extra)
	}
}
