package pubsub_test

import (
	"context"
	"fmt"
	"sort"
	"testing"
	"time"

	"probsum/pubsub"
	"probsum/subsume"
)

// runBrokernet drives the Figure 1 scenario (the brokernet example's
// topology) against any transport and returns each subscriber's
// notification set as sorted "subID/pubID" pairs. The scenario is
// sequenced with Settle between causally dependent phases, so both
// transports see the same arrival structure.
func runBrokernet(t *testing.T, tr pubsub.Transport) map[string][]string {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	schema := subsume.NewSchema(
		subsume.Attr("x1", 0, 100),
		subsume.Attr("x2", 0, 100),
	)
	for i := 1; i <= 9; i++ {
		if _, err := tr.AddBroker(fmt.Sprintf("B%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range [][2]string{
		{"B1", "B3"}, {"B2", "B3"}, {"B3", "B4"},
		{"B4", "B5"}, {"B4", "B6"}, {"B4", "B7"},
		{"B7", "B8"}, {"B7", "B9"},
	} {
		if err := tr.Connect(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	s1c, err := tr.Open(ctx, "S1", "B1")
	if err != nil {
		t.Fatal(err)
	}
	s2c, err := tr.Open(ctx, "S2", "B6")
	if err != nil {
		t.Fatal(err)
	}
	p1c, err := tr.Open(ctx, "P1", "B9")
	if err != nil {
		t.Fatal(err)
	}
	p2c, err := tr.Open(ctx, "P2", "B5")
	if err != nil {
		t.Fatal(err)
	}

	s1 := subsume.NewSubscription(schema).Range("x1", 0, 100).Range("x2", 0, 100).Build()
	s2 := subsume.NewSubscription(schema).Range("x1", 40, 60).Range("x2", 40, 60).Build()

	if err := s1c.Subscribe(ctx, "s1", s1); err != nil {
		t.Fatal(err)
	}
	if err := tr.Settle(ctx); err != nil {
		t.Fatal(err)
	}
	if err := s2c.Subscribe(ctx, "s2", s2); err != nil {
		t.Fatal(err)
	}
	if err := tr.Settle(ctx); err != nil {
		t.Fatal(err)
	}

	if err := p1c.Publish(ctx, "n1", subsume.NewPublication(50, 50)); err != nil {
		t.Fatal(err)
	}
	if err := p2c.Publish(ctx, "n2", subsume.NewPublication(10, 10)); err != nil {
		t.Fatal(err)
	}
	if err := tr.Settle(ctx); err != nil {
		t.Fatal(err)
	}

	// Batch phase: S2 announces a burst as one SUBBATCH frame, a
	// publication probes it, a partial UNSUBBATCH cancels two of the
	// three, and a final probe hits the survivor.
	t1 := subsume.NewSubscription(schema).Range("x1", 0, 10).Range("x2", 0, 10).Build()
	t2 := subsume.NewSubscription(schema).Range("x1", 20, 30).Range("x2", 20, 30).Build()
	t3 := subsume.NewSubscription(schema).Range("x1", 70, 90).Range("x2", 70, 90).Build()
	err = s2c.SubscribeBatch(ctx, []pubsub.BatchSub{
		{SubID: "t1", Sub: t1}, {SubID: "t2", Sub: t2}, {SubID: "t3", Sub: t3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Settle(ctx); err != nil {
		t.Fatal(err)
	}
	if err := p1c.Publish(ctx, "n3", subsume.NewPublication(5, 5)); err != nil {
		t.Fatal(err)
	}
	if err := tr.Settle(ctx); err != nil {
		t.Fatal(err)
	}
	if err := s2c.UnsubscribeBatch(ctx, []string{"t1", "t3"}); err != nil {
		t.Fatal(err)
	}
	if err := tr.Settle(ctx); err != nil {
		t.Fatal(err)
	}
	if err := p2c.Publish(ctx, "n4", subsume.NewPublication(25, 25)); err != nil {
		t.Fatal(err)
	}
	if err := tr.Settle(ctx); err != nil {
		t.Fatal(err)
	}

	// s1 matches every publication; s2 only n1, t1 only n3 (then it is
	// cancelled), t2 only n4.
	want := map[string]int{"S1": 4, "S2": 3}
	out := make(map[string][]string)
	for name, c := range map[string]*pubsub.Client{"S1": s1c, "S2": s2c} {
		var got []string
		for len(got) < want[name] {
			select {
			case n, ok := <-c.Notifications():
				if !ok {
					t.Fatalf("%s: channel closed after %d notifications", name, len(got))
				}
				got = append(got, n.SubID+"/"+n.PubID)
			case <-time.After(5 * time.Second):
				t.Fatalf("%s: timed out after %d notifications (%v)", name, len(got), got)
			}
		}
		// No extras beyond the expected set.
		select {
		case n := <-c.Notifications():
			t.Fatalf("%s: unexpected extra notification %+v", name, n)
		case <-time.After(200 * time.Millisecond):
		}
		sort.Strings(got)
		out[name] = got
	}
	sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer scancel()
	if err := tr.Shutdown(sctx); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestTransportEquivalence is the acceptance check of the transport
// redesign: the same client program — including SUBBATCH/UNSUBBATCH
// bursts — produces identical notification sets on the deterministic
// simulator and over real TCP sockets, for every coverage policy and
// every codec pairing (all-binary, JSON-pinned brokers modeling old
// peers, JSON-pinned clients modeling old clients).
func TestTransportEquivalence(t *testing.T) {
	cfg := pubsub.Config{ErrorProbability: 1e-9, Seed: 7}
	tcpVariants := []struct {
		name string
		opts []pubsub.TCPOption
	}{
		{"tcp-binary", nil},
		{"tcp-json-brokers", []pubsub.TCPOption{pubsub.WithWireCodec(pubsub.CodecJSON)}},
		{"tcp-json-clients", []pubsub.TCPOption{pubsub.WithDialWireCodec(pubsub.CodecJSON)}},
	}
	for _, policy := range []pubsub.Policy{pubsub.Flood, pubsub.Pairwise, pubsub.Group} {
		t.Run(policy.String(), func(t *testing.T) {
			sim, err := pubsub.NewSimTransport(policy, cfg)
			if err != nil {
				t.Fatal(err)
			}
			simOut := runBrokernet(t, sim)

			for _, variant := range tcpVariants {
				t.Run(variant.name, func(t *testing.T) {
					tcp, err := pubsub.NewTCPTransport(policy, cfg, variant.opts...)
					if err != nil {
						t.Fatal(err)
					}
					tcpOut := runBrokernet(t, tcp)

					for client, wantSet := range simOut {
						gotSet := tcpOut[client]
						if fmt.Sprint(wantSet) != fmt.Sprint(gotSet) {
							t.Errorf("%s: sim %v != tcp %v", client, wantSet, gotSet)
						}
					}
					if len(tcpOut) != len(simOut) {
						t.Errorf("client sets differ: sim %v, tcp %v", simOut, tcpOut)
					}
				})
			}
		})
	}
}

// TestSimTransportMatchesNetwork pins the sim transport to the
// original Network facade: same scenario, same deliveries.
func TestSimTransportMatchesNetwork(t *testing.T) {
	cfg := pubsub.Config{ErrorProbability: 1e-9, Seed: 7}
	net, err := pubsub.NewNetwork(pubsub.Pairwise, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		if err := net.AddBroker(fmt.Sprintf("B%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := net.Connect("B1", "B2"); err != nil {
		t.Fatal(err)
	}
	if err := net.Connect("B2", "B3"); err != nil {
		t.Fatal(err)
	}
	if err := net.AttachClient("alice", "B1"); err != nil {
		t.Fatal(err)
	}
	if err := net.AttachClient("bob", "B3"); err != nil {
		t.Fatal(err)
	}
	schema := subsume.UniformSchema(2, 0, 100)
	s := subsume.NewSubscription(schema).Range("x1", 10, 50).Build()
	if err := net.Subscribe("alice", "a1", s); err != nil {
		t.Fatal(err)
	}
	if err := net.Publish("bob", "p1", subsume.NewPublication(30, 30)); err != nil {
		t.Fatal(err)
	}
	netNotifs := net.Notifications("alice")

	ctx := context.Background()
	tr, err := pubsub.NewSimTransport(pubsub.Pairwise, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		if _, err := tr.AddBroker(fmt.Sprintf("B%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.Connect("B1", "B2"); err != nil {
		t.Fatal(err)
	}
	if err := tr.Connect("B2", "B3"); err != nil {
		t.Fatal(err)
	}
	alice, err := tr.Open(ctx, "alice", "B1")
	if err != nil {
		t.Fatal(err)
	}
	bob, err := tr.Open(ctx, "bob", "B3")
	if err != nil {
		t.Fatal(err)
	}
	if err := alice.Subscribe(ctx, "a1", s); err != nil {
		t.Fatal(err)
	}
	if err := bob.Publish(ctx, "p1", subsume.NewPublication(30, 30)); err != nil {
		t.Fatal(err)
	}
	var got []pubsub.Notification
	for len(got) < len(netNotifs) {
		select {
		case n := <-alice.Notifications():
			got = append(got, n)
		case <-time.After(2 * time.Second):
			t.Fatalf("transport delivered %d notifications, Network delivered %d", len(got), len(netNotifs))
		}
	}
	for i, n := range got {
		if fmt.Sprint(n) != fmt.Sprint(netNotifs[i]) {
			t.Errorf("notification %d: transport %+v, Network %+v", i, n, netNotifs[i])
		}
	}
}
