package pubsub

// Fuzz layer pinning the wire codec (ISSUE 4): decoding arbitrary
// bytes never panics or over-reads, and every decodable frame
// round-trips identically through both codecs — including the
// JSON↔binary cross-decode of the shared message fields. The seed
// corpus under testdata/fuzz/ holds one well-formed frame per message
// kind in each codec plus malformed prefixes; regenerate it with
//
//	go test ./pubsub -run TestWriteFuzzCorpus -write-fuzz-corpus

import (
	"probsum/internal/broker"
	"probsum/internal/persist"
	"probsum/internal/store"
	"probsum/internal/subscription"

	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"unicode/utf8"
)

// wireKind reports whether k is a protocol message kind both codecs
// express — through MsgGossipDelta since the v4 vocabulary (indirect
// probes and bounded delta gossip).
func wireKind(k broker.MsgKind) bool {
	return k >= broker.MsgSubscribe && k <= broker.MsgGossipDelta
}

// wireClean reports whether every identifier in the message is valid
// UTF-8. The binary codec enforces this on decode (IDs are text by
// protocol); hostile JSON can still smuggle invalid bytes into a
// decoded string, and such messages cannot round-trip through
// encoding/json (which substitutes U+FFFD on encode), so the fuzz
// properties skip them.
func wireClean(m *broker.Message) bool {
	if !utf8.ValidString(m.SubID) || !utf8.ValidString(m.PubID) || !utf8.ValidString(m.Target) {
		return false
	}
	// The binary decoder rejects a gossip-delta frame without its
	// member-view hash (the anti-entropy trigger is not optional), but
	// schemaless JSON can omit the field; such a message cannot
	// round-trip through the binary codec, so the properties skip it.
	if m.Kind == broker.MsgGossipDelta && m.MemberHash == 0 {
		return false
	}
	for _, it := range m.Subs {
		if !utf8.ValidString(it.SubID) {
			return false
		}
	}
	for _, id := range m.SubIDs {
		if !utf8.ValidString(id) {
			return false
		}
	}
	for _, it := range m.Pubs {
		if !utf8.ValidString(it.PubID) {
			return false
		}
	}
	for _, mb := range m.Members {
		if !utf8.ValidString(mb.ID) || !utf8.ValidString(mb.Addr) {
			return false
		}
	}
	return true
}

// fuzzSeeds returns the seed inputs shared by both fuzz targets and
// the checked-in corpus: every message kind in both codecs, plus
// malformed variants.
func fuzzSeeds(tb testing.TB) [][]byte {
	var seeds [][]byte
	for _, fr := range codecTestFrames() {
		for _, codec := range []WireCodec{CodecJSON, CodecBinary} {
			data, err := MarshalFrame(codec, nil, &fr)
			if err != nil {
				tb.Fatal(err)
			}
			seeds = append(seeds, data)
		}
	}
	hello, err := MarshalFrame(CodecJSON, nil, &Frame{Hello: "B1", Client: true, Addr: "127.0.0.1:7001", Codec: 1})
	if err != nil {
		tb.Fatal(err)
	}
	ack, err := MarshalFrame(CodecJSON, nil, &Frame{Ack: "B2", Codec: 1})
	if err != nil {
		tb.Fatal(err)
	}
	seeds = append(seeds,
		hello,
		ack,
		[]byte("{\n"),
		[]byte("null\n"),
		[]byte{binMagic},
		[]byte{binMagic, binVersion, 0xFF, 0xFF, 0xFF, 0x00},
		[]byte{binMagic, binVersion, 2, 0, 0, 0, 0x05, 0xFF},
		// v2-header malformed variants: truncated gossip member count,
		// and a v2 frame carrying a v1 kind (legal — version bytes cap
		// the vocabulary, not the payload grammar).
		[]byte{binMagic, binVersion2, 2, 0, 0, 0, 0x0a, 0xFF},
		[]byte{binMagic, binVersion2, 0xFF, 0xFF, 0xFF, 0x7F},
		// v4-header malformed variants: a gossip-delta truncated before
		// its required member-view hash, a gossip-delta whose hash is
		// the reserved zero, a ping-req with an undefined flags byte,
		// and a ping-req truncated before its piggyback member list.
		[]byte{binMagic, binVersion4, 2, 0, 0, 0, byte(broker.MsgGossipDelta), 0x00},
		[]byte{binMagic, binVersion4, 10, 0, 0, 0, byte(broker.MsgGossipDelta), 0x00, 0, 0, 0, 0, 0, 0, 0, 0},
		[]byte{binMagic, binVersion4, 2, 0, 0, 0, byte(broker.MsgPingReq), 0x02},
		[]byte{binMagic, binVersion4, 6, 0, 0, 0, byte(broker.MsgPingReq), 0x00, 0x02, 'B', '3', 0x07},
	)
	return seeds
}

// FuzzFrameDecode: arbitrary bytes must never panic the decoder; a
// successful decode must report a sane consumed length and yield a
// frame the encoder accepts back.
func FuzzFrameDecode(f *testing.F) {
	for _, s := range fuzzSeeds(f) {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		fr, n, err := UnmarshalFrame(data)
		if err != nil {
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		if fr.Msg == nil {
			return // handshake or empty frame
		}
		if !wireKind(fr.Msg.Kind) || !wireClean(fr.Msg) {
			// JSON (being schemaless) can carry kinds outside the
			// protocol and non-UTF-8 identifier bytes; the binary codec
			// rejects both and the broker kills such connections at
			// dispatch.
			return
		}
		// Whatever decoded must re-encode under both codecs.
		if _, err := MarshalFrame(CodecBinary, nil, &fr); err != nil {
			t.Fatalf("binary re-encode of decoded frame: %v", err)
		}
		if _, err := MarshalFrame(CodecJSON, nil, &fr); err != nil {
			t.Fatalf("json re-encode of decoded frame: %v", err)
		}
	})
}

// FuzzFrameRoundTrip: any decodable input must survive
// decode → encode → decode identically in BOTH codecs — the binary
// re-encode pins round-trip identity, the JSON re-encode pins the
// cross-codec agreement on shared fields.
func FuzzFrameRoundTrip(f *testing.F) {
	for _, s := range fuzzSeeds(f) {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		fr, _, err := UnmarshalFrame(data)
		if err != nil || fr.Msg == nil || !wireKind(fr.Msg.Kind) || !wireClean(fr.Msg) {
			return
		}
		// Canonicalize through the binary codec first: it encodes
		// exactly the kind's protocol fields, where schemaless (and
		// case-insensitive) JSON can smuggle extras — e.g. a batch
		// payload on a plain subscribe — that no encoder emits.
		bin, err := MarshalFrame(CodecBinary, nil, &fr)
		if err != nil {
			t.Fatalf("binary canonicalization encode: %v", err)
		}
		canon, _, err := UnmarshalFrame(bin)
		if err != nil {
			t.Fatalf("binary canonicalization decode: %v", err)
		}
		want := canonMsg(t, canon.Msg)
		for _, codec := range []WireCodec{CodecJSON, CodecBinary} {
			enc, err := MarshalFrame(codec, nil, &canon)
			if err != nil {
				t.Fatalf("%v encode: %v", codec, err)
			}
			got, n, err := UnmarshalFrame(enc)
			if err != nil {
				t.Fatalf("%v re-decode: %v", codec, err)
			}
			if n != len(enc) {
				t.Fatalf("%v re-decode consumed %d of %d bytes", codec, n, len(enc))
			}
			if got.Msg == nil || canonMsg(t, got.Msg) != want {
				t.Fatalf("%v round trip:\n in  %s\n out %+v", codec, want, got.Msg)
			}
		}
	})
}

// logReplaySeeds builds seed journal images for FuzzLogReplay: a
// well-formed journal covering every record kind (written through the
// real DirStore so the file magic and CRC framing are authentic),
// torn and bit-flipped variants, and degenerate prefixes.
func logReplaySeeds(tb testing.TB) [][]byte {
	dir := tb.TempDir()
	st, err := persist.Open(dir)
	if err != nil {
		tb.Fatal(err)
	}
	recs := [][]byte{
		encodeAttachRecord("alice", true),
		encodeAttachRecord("N1", false),
		encodeMessageRecord("alice", &broker.Message{Kind: broker.MsgSubscribe, SubID: "s1", Sub: box(0, 50, 0, 50)}),
		encodeMessageRecord("alice", &broker.Message{Kind: broker.MsgSubscribe, SubID: "s2", Sub: box(60, 90, 60, 90)}),
		encodeMessageRecord("N1", &broker.Message{Kind: broker.MsgPublish, PubID: "p1", Pub: subscription.NewPublication(10, 10)}),
		encodeMessageRecord("alice", &broker.Message{Kind: broker.MsgUnsubscribe, SubID: "s2"}),
		encodePubIDsRecord([]string{"p1", "p2"}),
	}
	for _, r := range recs {
		if r == nil {
			tb.Fatal("seed record failed to encode")
		}
		if err := st.Append(r); err != nil {
			tb.Fatal(err)
		}
	}
	if err := st.Sync(); err != nil {
		tb.Fatal(err)
	}
	if err := st.Close(); err != nil {
		tb.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "journal.wal"))
	if err != nil {
		tb.Fatal(err)
	}
	seeds := [][]byte{
		data,
		data[:len(data)/2],  // torn mid-record
		data[:len(data)-1],  // torn final byte
		{},                  // empty journal
		[]byte("PSUM"),      // partial magic
		[]byte("bogusfile"), // foreign file
	}
	if len(data) > 40 {
		bad := append([]byte(nil), data...)
		bad[30] ^= 0xFF // CRC mismatch mid-journal cuts the valid prefix there
		seeds = append(seeds, bad)
	}
	return seeds
}

// FuzzLogReplay: an arbitrary byte string treated as a journal image
// must never panic the replay path — the scanner recovers the longest
// valid record prefix, the record applier either applies or skips
// each one, and the broker that absorbed whatever replayed remains
// fully usable.
func FuzzLogReplay(f *testing.F) {
	for _, s := range logReplaySeeds(f) {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		b, err := broker.New("R", store.PolicyPairwise)
		if err != nil {
			t.Fatal(err)
		}
		applied := 0
		stats, err := persist.ScanJournal(data, func(rec []byte) error {
			if applyRecord(b, rec) == nil {
				applied++
			}
			return nil
		})
		if err != nil {
			t.Fatalf("scan returned an error although the apply callback never did: %v", err)
		}
		if applied > stats.Records {
			t.Fatalf("applied %d records but the scanner only validated %d", applied, stats.Records)
		}
		if stats.Truncated != (stats.DroppedBytes > 0) {
			t.Fatalf("inconsistent truncation report: %+v", stats)
		}
		// The longest-valid-prefix recovery is deterministic.
		again, err := persist.ScanJournal(data, nil)
		if err != nil {
			t.Fatal(err)
		}
		if again != stats {
			t.Fatalf("re-scan diverged: %+v vs %+v", again, stats)
		}
		// Whatever replayed, the broker still serves traffic.
		b.AttachClient("fuzz-probe-client")
		if _, err := b.Handle("fuzz-probe-client", broker.Message{
			Kind: broker.MsgSubscribe, SubID: "fuzz-probe-sub", Sub: box(0, 1, 0, 1),
		}); err != nil {
			t.Fatalf("broker unusable after replay: %v", err)
		}
	})
}

var writeFuzzCorpus = flag.Bool("write-fuzz-corpus", false, "regenerate the checked-in fuzz seed corpus under testdata/fuzz")

// TestWriteFuzzCorpus regenerates the seed corpus files (golden-file
// update pattern); without the flag it only verifies the checked-in
// corpus is present and decodes or fails cleanly.
func TestWriteFuzzCorpus(t *testing.T) {
	targets := map[string]func(testing.TB) [][]byte{
		"FuzzFrameDecode":    fuzzSeeds,
		"FuzzFrameRoundTrip": fuzzSeeds,
		"FuzzLogReplay":      logReplaySeeds,
	}
	if *writeFuzzCorpus {
		for target, seedsOf := range targets {
			dir := filepath.Join("testdata", "fuzz", target)
			if err := os.MkdirAll(dir, 0o755); err != nil {
				t.Fatal(err)
			}
			for i, seed := range seedsOf(t) {
				// The Go fuzz corpus file format: a version header and
				// one Go-syntax literal per fuzz argument.
				body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", seed)
				name := filepath.Join(dir, fmt.Sprintf("seed-%02d", i))
				if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
					t.Fatal(err)
				}
			}
		}
		return
	}
	for target := range targets {
		files, err := filepath.Glob(filepath.Join("testdata", "fuzz", target, "seed-*"))
		if err != nil {
			t.Fatal(err)
		}
		if len(files) == 0 {
			t.Fatalf("no checked-in corpus for %s (run with -write-fuzz-corpus)", target)
		}
		for _, f := range files {
			data, err := os.ReadFile(f)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.HasPrefix(data, []byte("go test fuzz v1\n")) {
				t.Errorf("%s: not a go fuzz corpus file", f)
			}
		}
	}
}
