package pubsub

// Observability wiring for the TCP transport: every tcpServer owns an
// obs.Registry and threads its histograms and per-link frame stats
// through the frame path. The broker core's counters, routing-table
// footprint, rendezvous-owner load, recovery stats, and send-queue
// depths are registered as pull callbacks — scrapes read them, the
// hot paths never touch the registry.

import (
	"time"

	"probsum/internal/broker"
	"probsum/internal/obs"
)

// Registry names for the publish-stage histograms. The full publish
// pipeline reads: decode → match → route → enqueue → write.
const (
	histFrameDecode  = "publish_stage_decode_ns"
	histMatch        = "publish_stage_match_ns"
	histRoute        = "publish_stage_route_ns"
	histFrameEnqueue = "publish_stage_enqueue_ns"
	histFrameWrite   = "publish_stage_write_ns"
)

// newServerRegistry builds the registry for one tcpServer and wires
// the broker core into it: publish-stage observer, counter callbacks,
// route-table gauges, and the flight recorder.
func newServerRegistry(core *broker.Broker) *obs.Registry {
	reg := obs.NewRegistry(obs.NewFlightRecorder(512, time.Now))
	reg.SetKindNamer(func(k int) string { return broker.MsgKind(k).String() })
	core.SetPublishObserver(&broker.PublishObserver{
		Clock: time.Now,
		Match: reg.Histogram(histMatch),
		Route: reg.Histogram(histRoute),
	})
	registerBrokerMetrics(reg, core)
	reg.RegisterGauge("route_tables", func() int64 {
		tables, _ := core.RouteTableStats()
		return int64(tables)
	})
	reg.RegisterGauge("route_entries", func() int64 {
		_, entries := core.RouteTableStats()
		return int64(entries)
	})
	reg.RegisterGaugeVec("rendezvous_owner_load", func(emit func(string, int64)) {
		for target, n := range core.RouteTargetLoad() {
			emit(target, int64(n))
		}
	})
	return reg
}

// registerBrokerMetrics exposes every broker.Metrics counter as its
// own series. Each callback snapshots the atomics at scrape time.
func registerBrokerMetrics(reg *obs.Registry, core *broker.Broker) {
	for name, pick := range map[string]func(broker.Metrics) int{
		"broker_subs_received":     func(m broker.Metrics) int { return m.SubsReceived },
		"broker_subs_forwarded":    func(m broker.Metrics) int { return m.SubsForwarded },
		"broker_subs_suppressed":   func(m broker.Metrics) int { return m.SubsSuppressed },
		"broker_dup_subs_dropped":  func(m broker.Metrics) int { return m.DupSubsDropped },
		"broker_unsubs_forwarded":  func(m broker.Metrics) int { return m.UnsubsForwarded },
		"broker_pubs_received":     func(m broker.Metrics) int { return m.PubsReceived },
		"broker_pubs_forwarded":    func(m broker.Metrics) int { return m.PubsForwarded },
		"broker_dup_pubs_dropped":  func(m broker.Metrics) int { return m.DupPubsDropped },
		"broker_notifications":     func(m broker.Metrics) int { return m.Notifications },
		"broker_promotions":        func(m broker.Metrics) int { return m.Promotions },
		"broker_sync_requests":     func(m broker.Metrics) int { return m.SyncRequests },
		"broker_sync_roots_resent": func(m broker.Metrics) int { return m.SyncRootsResent },
		"broker_sync_stale_pruned": func(m broker.Metrics) int { return m.SyncStalePruned },
		"broker_control_dropped":   func(m broker.Metrics) int { return m.ControlDropped },
		"broker_routed_subs":       func(m broker.Metrics) int { return m.RoutedSubs },
		"broker_route_forwards":    func(m broker.Metrics) int { return m.RouteForwards },
		"broker_routed_pubs":       func(m broker.Metrics) int { return m.RoutedPubs },
	} {
		pick := pick
		reg.RegisterCounter(name, func() int64 { return int64(pick(core.Metrics())) })
	}
}

// registerQueueDepths exposes per-port send-queue depth as a labeled
// gauge family (and the sum as a plain gauge).
func registerQueueDepths(reg *obs.Registry, s *tcpServer) {
	depths := func(emit func(string, int64)) {
		s.mu.Lock()
		defer s.mu.Unlock()
		for name, p := range s.ports {
			emit(name, int64(len(p.ch)))
		}
	}
	reg.RegisterGaugeVec("send_queue_depth", depths)
	reg.RegisterGauge("send_queue_depth_total", func() int64 {
		var total int64
		depths(func(_ string, v int64) { total += v })
		return total
	})
}

// registerRecoveryStats exposes the boot-time journal replay figures.
func registerRecoveryStats(reg *obs.Registry, rec RecoveryStats) {
	reg.RegisterGauge("recovery_snapshot_ops", func() int64 { return int64(rec.SnapshotOps) })
	reg.RegisterGauge("recovery_journal_records", func() int64 { return int64(rec.JournalRecords) })
	reg.RegisterGauge("recovery_skipped", func() int64 { return int64(rec.Skipped) })
	reg.RegisterGauge("recovery_dropped_bytes", func() int64 { return rec.DroppedBytes })
	reg.RegisterGauge("recovery_subscriptions", func() int64 { return int64(rec.Subscriptions) })
	reg.RegisterGauge("recovery_clients", func() int64 { return int64(rec.Clients) })
	reg.RegisterGauge("recovery_neighbors", func() int64 { return int64(rec.Neighbors) })
	reg.RegisterGauge("recovery_truncated", func() int64 {
		if rec.Truncated {
			return 1
		}
		return 0
	})
}
