package pubsub_test

// Wire-path benchmarks, bodies shared with cmd/paperbench through
// internal/benchcases so the BENCH_*.json trajectory lines up with
// `go test -bench` output. (External test package: benchcases imports
// pubsub, so an in-package test file could not import it back.)
//
//	go test -run '^$' -bench BenchmarkTCPPublish -benchtime 2000x ./pubsub
//	go test -run '^$' -bench BenchmarkWireCodec ./pubsub

import (
	"fmt"
	"testing"

	"probsum/internal/benchcases"
	"probsum/pubsub"
)

// BenchmarkTCPPublish dimensions: serialized is the pre-redesign
// one-mutex ablation; json is the concurrent pipeline on the PR-3
// JSON codec (the committed baseline the binary codec must beat);
// binary is the negotiated length-prefixed codec with publish
// coalescing — the production path; pubbatch batches deliberately on
// the producer side (Client.PublishBatch, 16 per PUBBATCH frame).
func BenchmarkTCPPublish(b *testing.B) {
	b.Run("serialized", benchcases.TCPPublishSerialized)
	b.Run("json", benchcases.TCPPublishJSON)
	b.Run("binary", benchcases.TCPPublishBinary)
	b.Run("pubbatch", benchcases.TCPPublishBatch)
}

// BenchmarkWireCodec measures frame marshal/unmarshal for both codecs
// on the wire-dominant shapes: single publish frames and 64-item
// subscription-batch frames.
func BenchmarkWireCodec(b *testing.B) {
	for _, shape := range []string{"pub", "subbatch"} {
		for _, codec := range []pubsub.WireCodec{pubsub.CodecJSON, pubsub.CodecBinary} {
			b.Run(fmt.Sprintf("%s-encode/%s", shape, codec), func(b *testing.B) {
				benchcases.WireCodecEncode(b, codec, shape)
			})
			b.Run(fmt.Sprintf("%s-decode/%s", shape, codec), func(b *testing.B) {
				benchcases.WireCodecDecode(b, codec, shape)
			})
		}
	}
}

// BenchmarkTCPSubscribeBurst measures a 256-subscription burst plus
// its cancellation through a two-broker overlay: one frame per
// subscription versus one SUBBATCH/UNSUBBATCH pair feeding batch
// admission.
func BenchmarkTCPSubscribeBurst(b *testing.B) {
	b.Run("peritem", func(b *testing.B) { benchcases.TCPSubscribeBurst(b, false) })
	b.Run("batch", func(b *testing.B) { benchcases.TCPSubscribeBurst(b, true) })
}
