package pubsub

// Wire-path benchmark: publish throughput through one TCP broker with
// multiple concurrent client connections, comparing the concurrent
// dispatch pipeline against the serialized baseline (the pre-redesign
// one-mutex server, preserved behind WithSerializedDispatch). With 4
// publisher connections the concurrent mode should beat the
// serialized one — publish matching runs under the broker's shared
// lock and JSON encoding is pushed to per-port writers, so the
// pipeline scales with connections while the baseline funnels every
// frame through one critical section.
//
// Run with:
//
//	go test -run '^$' -bench BenchmarkTCPPublish -benchtime 2000x ./pubsub

import (
	"context"
	"fmt"
	"math/rand/v2"
	"sync"
	"testing"
	"time"

	"probsum/internal/interval"
	"probsum/internal/subscription"
)

const benchPublishers = 4 // concurrent publisher connections

func benchTCPPublish(b *testing.B, opts ...TCPOption) {
	ctx := context.Background()
	hub, err := ListenBroker("HUB", "127.0.0.1:0", Pairwise, Config{}, opts...)
	if err != nil {
		b.Fatal(err)
	}
	defer func() {
		sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		hub.Shutdown(sctx)
	}()

	// 4 subscriber connections, each holding 256 random boxes; every
	// publication lands in a handful of them, so each publish pays for
	// matching plus notification fan-out.
	rng := rand.New(rand.NewPCG(11, 12))
	const (
		subClients    = 4
		subsPerClient = 256
	)
	var drainers sync.WaitGroup
	for i := 0; i < subClients; i++ {
		sub, err := Dial(ctx, hub.Addr(), fmt.Sprintf("sub%d", i))
		if err != nil {
			b.Fatal(err)
		}
		defer sub.Close()
		for j := 0; j < subsPerClient; j++ {
			lo1, lo2 := rng.Int64N(90), rng.Int64N(90)
			s := subscription.New(interval.New(lo1, lo1+10), interval.New(lo2, lo2+10))
			if err := sub.Subscribe(ctx, fmt.Sprintf("s%d-%d", i, j), s); err != nil {
				b.Fatal(err)
			}
		}
		drainers.Add(1)
		go func(c *Client) {
			defer drainers.Done()
			for range c.Notifications() {
			}
		}(sub)
	}
	want := subClients * subsPerClient
	waitFor(b, 10*time.Second, func() bool { return hub.Metrics().SubsReceived == want })

	pubs := make([]*Client, benchPublishers)
	for i := range pubs {
		c, err := Dial(ctx, hub.Addr(), fmt.Sprintf("pub%d", i))
		if err != nil {
			b.Fatal(err)
		}
		defer c.Close()
		pubs[i] = c
	}

	before := hub.Metrics().PubsReceived
	b.ResetTimer()
	var wg sync.WaitGroup
	for i, c := range pubs {
		wg.Add(1)
		go func(i int, c *Client) {
			defer wg.Done()
			prng := rand.New(rand.NewPCG(uint64(i), 99))
			for n := i; n < b.N; n += benchPublishers {
				p := subscription.NewPublication(prng.Int64N(101), prng.Int64N(101))
				if err := c.Publish(ctx, fmt.Sprintf("b%d-%d", i, n), p); err != nil {
					b.Error(err)
					return
				}
			}
		}(i, c)
	}
	wg.Wait()
	// The op ends when the broker has processed the publication, not
	// merely when the frame left the client.
	waitFor(b, 60*time.Second, func() bool { return hub.Metrics().PubsReceived >= before+b.N })
	b.StopTimer()
}

func waitFor(b *testing.B, d time.Duration, cond func() bool) {
	b.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			b.Fatal("benchmark condition not reached")
		}
		time.Sleep(200 * time.Microsecond)
	}
}

// BenchmarkTCPPublish measures end-to-end publish throughput over
// real sockets with 4 concurrent publisher connections:
// serialized is the pre-redesign baseline (one global dispatch
// mutex); concurrent is the pipeline (readers dispatch in parallel
// under the broker's shared lock, per-port writers encode).
func BenchmarkTCPPublish(b *testing.B) {
	for _, mode := range []struct {
		name string
		opts []TCPOption
	}{
		{"serialized", []TCPOption{WithSerializedDispatch()}},
		{"concurrent", nil},
	} {
		b.Run(mode.name, func(b *testing.B) { benchTCPPublish(b, mode.opts...) })
	}
}
